#include "src/common/table.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace lore {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_numeric_row(const std::vector<double>& cells, int precision) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (double c : cells) formatted.push_back(fmt_sig(c, precision));
  add_row(std::move(formatted));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(widths[c] - row[c].size(), ' ');
      os << (c + 1 < row.size() ? "  " : "");
    }
    os << "\n";
  };
  emit(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w;
  os << std::string(total + 2 * (widths.size() - 1), '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) os << row[c] << (c + 1 < row.size() ? "," : "");
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string fmt_sig(double v, int digits) {
  std::ostringstream os;
  os.precision(digits);
  os << v;
  return os.str();
}

}  // namespace lore
