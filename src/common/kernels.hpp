// Shared low-level compute kernels.
//
// One header for the innermost loops the whole repo leans on, so every user
// (dense ML in `src/ml/matrix`, the bit-packed HDC engine in `src/ml/hdc`,
// future bitwise fault masks) pulls the same implementation:
//
//   * dense float kernels: `dot`, `axpy`, `l2_distance` — deliberately plain
//     sequential accumulation so results stay bit-identical across call sites
//     and refactors (no reassociation, no FMA contract surprises);
//   * bit kernels over little-endian `uint64_t` word arrays: popcounts,
//     XOR/XNOR combines, and a dim-bit rotate with carry — the packed
//     hypervector primitives (bind = XOR, Hamming = XOR + popcount,
//     permute = rotate).
//
// Bit layout convention: component `i` of a `dim`-bit vector lives in word
// `i / 64`, bit `i % 64`. Words past `dim` bits (the tail) must be kept zero
// by callers; `tail_mask` is the canonical mask for re-establishing that
// invariant after a shifting operation.
#pragma once

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace lore::kernels {

// ---------------------------------------------------------------------------
// Dense float kernels.

/// Dot product of equal-length spans (sequential accumulation).
inline double dot(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

/// In-place a += s * b.
inline void axpy(std::span<double> a, double s, std::span<const double> b) {
  assert(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += s * b[i];
}

/// Squared Euclidean distance (callers take the sqrt when they need it).
inline double l2_distance_sq(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

// ---------------------------------------------------------------------------
// Bit kernels (little-endian uint64_t word arrays).

inline constexpr std::size_t kWordBits = 64;

/// Number of 64-bit words needed to hold `bits` bits.
constexpr std::size_t word_count(std::size_t bits) {
  return (bits + kWordBits - 1) / kWordBits;
}

/// Mask of the valid bits in the last word of a `bits`-bit vector
/// (all-ones when `bits` is a multiple of 64). `bits` must be > 0.
constexpr std::uint64_t tail_mask(std::size_t bits) {
  const std::size_t rem = bits % kWordBits;
  return rem == 0 ? ~0ULL : (~0ULL >> (kWordBits - rem));
}

/// Total population count of a word array.
inline std::size_t popcount_words(std::span<const std::uint64_t> w) {
  std::size_t n = 0;
  for (const std::uint64_t x : w) n += static_cast<std::size_t>(std::popcount(x));
  return n;
}

/// popcount(a XOR b) — the Hamming distance of two packed bit vectors
/// (both tails must be zero so the tail contributes nothing).
inline std::size_t xor_popcount(std::span<const std::uint64_t> a,
                                std::span<const std::uint64_t> b) {
  assert(a.size() == b.size());
  std::size_t n = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    n += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
  return n;
}

/// out = a XOR b, word-parallel.
inline void xor_words(std::span<std::uint64_t> out, std::span<const std::uint64_t> a,
                      std::span<const std::uint64_t> b) {
  assert(out.size() == a.size() && a.size() == b.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = a[i] ^ b[i];
}

/// out |= in << k over a multi-word array (k < 64 * in.size()); bits shifted
/// past the top are dropped, vacated low bits are left untouched.
inline void or_shifted_left(std::span<std::uint64_t> out,
                            std::span<const std::uint64_t> in, std::size_t k) {
  assert(out.size() == in.size());
  const std::size_t ws = k / kWordBits, bs = k % kWordBits;
  for (std::size_t j = out.size(); j-- > ws;) {
    std::uint64_t v = in[j - ws] << bs;
    if (bs != 0 && j >= ws + 1) v |= in[j - ws - 1] >> (kWordBits - bs);
    out[j] |= v;
  }
}

/// out |= in >> k over a multi-word array (k < 64 * in.size()).
inline void or_shifted_right(std::span<std::uint64_t> out,
                             std::span<const std::uint64_t> in, std::size_t k) {
  assert(out.size() == in.size());
  const std::size_t ws = k / kWordBits, bs = k % kWordBits;
  for (std::size_t j = 0; j + ws < out.size(); ++j) {
    std::uint64_t v = in[j + ws] >> bs;
    if (bs != 0 && j + ws + 1 < in.size()) v |= in[j + ws + 1] << (kWordBits - bs);
    out[j] |= v;
  }
}

namespace detail {
/// lut[byte][b] = byte bit b set ? -1 : +1, for block-unpacking sign words.
inline constexpr auto kSignLut = [] {
  struct Table {
    std::int8_t v[256][8];
  } t{};
  for (int byte = 0; byte < 256; ++byte)
    for (int b = 0; b < 8; ++b)
      t.v[byte][b] = (byte >> b) & 1 ? std::int8_t{-1} : std::int8_t{1};
  return t;
}();
}  // namespace detail

/// Expand one packed sign word into 64 ±1 int8 components (bit set = -1).
inline void unpack_sign_word(std::int8_t out[64], std::uint64_t word) {
  for (std::size_t byte = 0; byte < 8; ++byte) {
    const auto& row = detail::kSignLut.v[(word >> (8 * byte)) & 0xff];
    for (std::size_t b = 0; b < 8; ++b) out[8 * byte + b] = row[b];
  }
}

/// Carry-save ripple add of one bit vector into a stack of bit-plane
/// counters: per component i, the count held across planes (Σ_p plane_p[i]
/// << p) grows by `v[i] << shift`. Planes are appended as carries overflow
/// the stack; `scratch` is caller-provided carry storage (resized here) so
/// hot loops can amortize the allocation. Word-parallel: each pass is one
/// XOR + AND over the word array, and the loop ends as soon as the carry
/// dies, so an N-add sequence costs O(words) amortized per add (binary
/// counter increment argument), not O(components).
inline void ripple_add_planes(std::vector<std::vector<std::uint64_t>>& planes,
                              std::span<const std::uint64_t> v, std::size_t shift,
                              std::vector<std::uint64_t>& scratch) {
  scratch.assign(v.begin(), v.end());
  for (std::size_t idx = shift; true; ++idx) {
    while (idx >= planes.size()) planes.emplace_back(v.size(), 0);
    auto& plane = planes[idx];
    std::uint64_t alive = 0;
    for (std::size_t i = 0; i < v.size(); ++i) {
      const std::uint64_t carry = scratch[i];
      scratch[i] = plane[i] & carry;
      plane[i] ^= carry;
      alive |= scratch[i];
    }
    if (alive == 0) return;
  }
}

/// Rotate a `dim`-bit vector left by `k`: result bit (i + k) mod dim = input
/// bit i. Word-level shifts with carry across word boundaries; the tail of
/// `out` is re-masked so the zero-tail invariant holds. `in` must have a zero
/// tail and `out` must not alias `in`.
inline void rotate_left_bits(std::span<std::uint64_t> out,
                             std::span<const std::uint64_t> in, std::size_t dim,
                             std::size_t k) {
  assert(out.size() == in.size() && in.size() == word_count(dim));
  if (dim == 0) return;
  k %= dim;
  for (auto& w : out) w = 0;
  if (k == 0) {
    for (std::size_t i = 0; i < in.size(); ++i) out[i] = in[i];
    return;
  }
  or_shifted_left(out, in, k);        // input bits [0, dim-k) -> output [k, dim)
  or_shifted_right(out, in, dim - k); // input bits [dim-k, dim) wrap to [0, k)
  out[out.size() - 1] &= tail_mask(dim);
}

}  // namespace lore::kernels
