// Shared low-level compute kernels.
//
// One header for the innermost loops the whole repo leans on, so every user
// (dense ML in `src/ml/matrix`, the bit-packed HDC engine in `src/ml/hdc`,
// future bitwise fault masks) pulls the same implementation:
//
//   * dense float kernels: `dot`, `axpy`, `l2_distance` — deliberately plain
//     sequential accumulation so results stay bit-identical across call sites
//     and refactors (no reassociation, no FMA contract surprises);
//   * bit kernels over little-endian `uint64_t` word arrays: popcounts,
//     XOR/XNOR combines, and a dim-bit rotate with carry — the packed
//     hypervector primitives (bind = XOR, Hamming = XOR + popcount,
//     permute = rotate);
//   * batch trial kernels for the allocation-free campaign hot path
//     (DESIGN.md §11): per-chunk trial-seed generation, output-window
//     mismatch counting, word copies, and status tallies. These follow the
//     packed/scalar split of the HDC engine: `scalar::` holds the
//     bit-identical reference, and the unqualified entry points dispatch at
//     runtime to an AVX2 variant when the build (`-DLORE_SIMD=ON`), the host
//     CPU, and the environment (`LORE_SIMD_SCALAR` unset) all allow it.
//
// Bit layout convention: component `i` of a `dim`-bit vector lives in word
// `i / 64`, bit `i % 64`. Words past `dim` bits (the tail) must be kept zero
// by callers; `tail_mask` is the canonical mask for re-establishing that
// invariant after a shifting operation.
#pragma once

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

/// True when the AVX2 kernel variants are compiled into the binary. The
/// `-DLORE_SIMD=OFF` build (which defines LORE_SIMD_DISABLED) and non-x86
/// targets compile only the scalar reference; dispatch then always resolves
/// to it.
#if defined(__x86_64__) && !defined(LORE_SIMD_DISABLED)
#define LORE_SIMD_COMPILED 1
#else
#define LORE_SIMD_COMPILED 0
#endif

namespace lore::kernels {

// ---------------------------------------------------------------------------
// Dense float kernels.

/// Dot product of equal-length spans (sequential accumulation).
inline double dot(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

/// In-place a += s * b.
inline void axpy(std::span<double> a, double s, std::span<const double> b) {
  assert(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += s * b[i];
}

/// Squared Euclidean distance (callers take the sqrt when they need it).
inline double l2_distance_sq(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

// ---------------------------------------------------------------------------
// Bit kernels (little-endian uint64_t word arrays).

inline constexpr std::size_t kWordBits = 64;

/// Number of 64-bit words needed to hold `bits` bits.
constexpr std::size_t word_count(std::size_t bits) {
  return (bits + kWordBits - 1) / kWordBits;
}

/// Mask of the valid bits in the last word of a `bits`-bit vector
/// (all-ones when `bits` is a multiple of 64). `bits` must be > 0.
constexpr std::uint64_t tail_mask(std::size_t bits) {
  const std::size_t rem = bits % kWordBits;
  return rem == 0 ? ~0ULL : (~0ULL >> (kWordBits - rem));
}

/// Total population count of a word array.
inline std::size_t popcount_words(std::span<const std::uint64_t> w) {
  std::size_t n = 0;
  for (const std::uint64_t x : w) n += static_cast<std::size_t>(std::popcount(x));
  return n;
}

/// popcount(a XOR b) — the Hamming distance of two packed bit vectors
/// (both tails must be zero so the tail contributes nothing).
inline std::size_t xor_popcount(std::span<const std::uint64_t> a,
                                std::span<const std::uint64_t> b) {
  assert(a.size() == b.size());
  std::size_t n = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    n += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
  return n;
}

/// out = a XOR b, word-parallel.
inline void xor_words(std::span<std::uint64_t> out, std::span<const std::uint64_t> a,
                      std::span<const std::uint64_t> b) {
  assert(out.size() == a.size() && a.size() == b.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = a[i] ^ b[i];
}

/// out |= in << k over a multi-word array (k < 64 * in.size()); bits shifted
/// past the top are dropped, vacated low bits are left untouched.
inline void or_shifted_left(std::span<std::uint64_t> out,
                            std::span<const std::uint64_t> in, std::size_t k) {
  assert(out.size() == in.size());
  const std::size_t ws = k / kWordBits, bs = k % kWordBits;
  for (std::size_t j = out.size(); j-- > ws;) {
    std::uint64_t v = in[j - ws] << bs;
    if (bs != 0 && j >= ws + 1) v |= in[j - ws - 1] >> (kWordBits - bs);
    out[j] |= v;
  }
}

/// out |= in >> k over a multi-word array (k < 64 * in.size()).
inline void or_shifted_right(std::span<std::uint64_t> out,
                             std::span<const std::uint64_t> in, std::size_t k) {
  assert(out.size() == in.size());
  const std::size_t ws = k / kWordBits, bs = k % kWordBits;
  for (std::size_t j = 0; j + ws < out.size(); ++j) {
    std::uint64_t v = in[j + ws] >> bs;
    if (bs != 0 && j + ws + 1 < in.size()) v |= in[j + ws + 1] << (kWordBits - bs);
    out[j] |= v;
  }
}

namespace detail {
/// lut[byte][b] = byte bit b set ? -1 : +1, for block-unpacking sign words.
inline constexpr auto kSignLut = [] {
  struct Table {
    std::int8_t v[256][8];
  } t{};
  for (int byte = 0; byte < 256; ++byte)
    for (int b = 0; b < 8; ++b)
      t.v[byte][b] = (byte >> b) & 1 ? std::int8_t{-1} : std::int8_t{1};
  return t;
}();
}  // namespace detail

/// Expand one packed sign word into 64 ±1 int8 components (bit set = -1).
inline void unpack_sign_word(std::int8_t out[64], std::uint64_t word) {
  for (std::size_t byte = 0; byte < 8; ++byte) {
    const auto& row = detail::kSignLut.v[(word >> (8 * byte)) & 0xff];
    for (std::size_t b = 0; b < 8; ++b) out[8 * byte + b] = row[b];
  }
}

/// Carry-save ripple add of one bit vector into a stack of bit-plane
/// counters: per component i, the count held across planes (Σ_p plane_p[i]
/// << p) grows by `v[i] << shift`. Planes are appended as carries overflow
/// the stack; `scratch` is caller-provided carry storage (resized here) so
/// hot loops can amortize the allocation. Word-parallel: each pass is one
/// XOR + AND over the word array, and the loop ends as soon as the carry
/// dies, so an N-add sequence costs O(words) amortized per add (binary
/// counter increment argument), not O(components).
inline void ripple_add_planes(std::vector<std::vector<std::uint64_t>>& planes,
                              std::span<const std::uint64_t> v, std::size_t shift,
                              std::vector<std::uint64_t>& scratch) {
  scratch.assign(v.begin(), v.end());
  for (std::size_t idx = shift; true; ++idx) {
    while (idx >= planes.size()) planes.emplace_back(v.size(), 0);
    auto& plane = planes[idx];
    std::uint64_t alive = 0;
    for (std::size_t i = 0; i < v.size(); ++i) {
      const std::uint64_t carry = scratch[i];
      scratch[i] = plane[i] & carry;
      plane[i] ^= carry;
      alive |= scratch[i];
    }
    if (alive == 0) return;
  }
}

/// Rotate a `dim`-bit vector left by `k`: result bit (i + k) mod dim = input
/// bit i. Word-level shifts with carry across word boundaries; the tail of
/// `out` is re-masked so the zero-tail invariant holds. `in` must have a zero
/// tail and `out` must not alias `in`.
inline void rotate_left_bits(std::span<std::uint64_t> out,
                             std::span<const std::uint64_t> in, std::size_t dim,
                             std::size_t k) {
  assert(out.size() == in.size() && in.size() == word_count(dim));
  if (dim == 0) return;
  k %= dim;
  for (auto& w : out) w = 0;
  if (k == 0) {
    for (std::size_t i = 0; i < in.size(); ++i) out[i] = in[i];
    return;
  }
  or_shifted_left(out, in, k);        // input bits [0, dim-k) -> output [k, dim)
  or_shifted_right(out, in, dim - k); // input bits [dim-k, dim) wrap to [0, k)
  out[out.size() - 1] &= tail_mask(dim);
}

// ---------------------------------------------------------------------------
// Panel layout for batched ML inference (DESIGN.md §13).
//
// Feature rows are packed into blocks ("panels") of `kPanelLanes` rows with
// the features of one block interleaved lane-wise: one feature of 4
// consecutive rows is one contiguous 4-double load. The blocked kernels below
// run 4 independent rows per pass, each accumulating feature-sequentially in
// exactly the order of the per-sample reference — vectorization is across
// rows, never within a row's accumulation, which is what keeps scalar and
// AVX2 results bit-identical (no reassociation, no FMA contraction).
//
// Only kNN uses panels: its training block is packed once at fit() and then
// streamed by every query, so the layout cost is amortized away. The SVM and
// tree-ensemble kernels read row-major feature blocks directly instead —
// packing per predict_batch call costs more memory traffic than their tiny
// per-row arithmetic saves, and tree traversal in panel layout needs either
// hardware gathers (a measured ~3x pessimization on gather-mitigated Intel
// cores) or strided loads that defeat the row's cache-line locality.

inline constexpr std::size_t kPanelLanes = 4;

/// Rows rounded up to a whole number of panel lanes.
constexpr std::size_t panel_rows_padded(std::size_t rows) {
  return (rows + kPanelLanes - 1) / kPanelLanes * kPanelLanes;
}

/// Doubles needed to hold a `rows` x `cols` block in panel layout.
constexpr std::size_t panel_size(std::size_t rows, std::size_t cols) {
  return panel_rows_padded(rows) * cols;
}

/// Flat index of element (row, col) in panel layout.
constexpr std::size_t panel_index(std::size_t row, std::size_t col, std::size_t cols) {
  return (row / kPanelLanes) * (kPanelLanes * cols) + col * kPanelLanes +
         row % kPanelLanes;
}

/// Flattened structure-of-arrays forest for batched tree-ensemble traversal:
/// the nodes of every tree share five parallel arrays (gather-friendly), and
/// `root[t]` indexes tree t's root. `feature[n] < 0` marks node n a leaf
/// whose payload is `value[n]`; interior nodes branch left when
/// x[feature] <= threshold, exactly like ml::DecisionTree.
struct TreeSoa {
  std::vector<std::int32_t> feature;
  std::vector<double> threshold;
  std::vector<std::int32_t> left, right;
  std::vector<double> value;
  std::vector<std::int32_t> root;

  std::size_t tree_count() const { return root.size(); }
  std::size_t node_count() const { return feature.size(); }
};

// ---------------------------------------------------------------------------
// Batch trial kernels with runtime SIMD dispatch (DESIGN.md §11).

/// Implementation selected by the dispatched batch-kernel entry points.
enum class Dispatch : std::uint8_t { kScalar, kAvx2 };

const char* dispatch_name(Dispatch d);

/// Strongest implementation this process may use: kAvx2 when compiled in,
/// supported by the host CPU, and not vetoed by LORE_SIMD_SCALAR=1 in the
/// environment; kScalar otherwise.
Dispatch best_dispatch();

/// The implementation the dispatched entry points currently use (initialized
/// lazily from `best_dispatch`).
Dispatch active_dispatch();

/// Override the active implementation — the differential test hook. Requests
/// for an unavailable implementation clamp to kScalar.
void set_dispatch(Dispatch d);

/// Bit-identical scalar reference implementations. Always compiled; the
/// differential suite (tests/common/simd_kernels_test) proves the dispatched
/// paths equal to these at every size.
namespace scalar {

/// splitmix64 finalizer of `base_seed ^ index` — the engine-wide per-trial
/// seed function (`lore::trial_seed` forwards here).
inline std::uint64_t trial_seed_at(std::uint64_t base_seed, std::uint64_t index) {
  std::uint64_t z = (base_seed ^ index) + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// out[i] = trial_seed_at(base_seed, first_index + i).
inline void fill_trial_seeds(std::span<std::uint64_t> out, std::uint64_t base_seed,
                             std::uint64_t first_index) {
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = trial_seed_at(base_seed, first_index + i);
}

/// Number of positions where a and b differ.
inline std::size_t count_mismatch_u32(std::span<const std::uint32_t> a,
                                      std::span<const std::uint32_t> b) {
  assert(a.size() == b.size());
  std::size_t n = 0;
  for (std::size_t i = 0; i < a.size(); ++i) n += a[i] != b[i];
  return n;
}

/// dst = src (no aliasing).
inline void copy_u32(std::span<std::uint32_t> dst, std::span<const std::uint32_t> src) {
  assert(dst.size() == src.size());
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = src[i];
}

/// Number of bytes equal to `value` (status-vector tallies).
inline std::size_t count_equal_u8(std::span<const std::uint8_t> v, std::uint8_t value) {
  std::size_t n = 0;
  for (const std::uint8_t x : v) n += x == value;
  return n;
}

/// Pack a row-major [rows x cols] block into panel layout (see panel_index);
/// the padding lanes of a final partial panel are zeroed so blocked kernels
/// can run them harmlessly.
inline void pack_row_panels(std::span<double> out, const double* src, std::size_t rows,
                            std::size_t cols) {
  assert(out.size() == panel_size(rows, cols));
  const std::size_t padded = panel_rows_padded(rows);
  for (std::size_t r = 0; r < padded; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      out[panel_index(r, c, cols)] = r < rows ? src[r * cols + c] : 0.0;
}

/// out[qi * rows + r] = squared L2 distance between query qi and panel row r,
/// for `qn` (1..kPanelLanes) queries per call. Each (query, row) pair
/// accumulates feature-sequentially, exactly like `l2_distance_sq`, so every
/// result is bit-identical to the per-row reference. The scalar walk is
/// query-major (one full panel pass per query): sharing the panel pass across
/// queries only pays in the register-tiled AVX2 variant, and measured slower
/// here — the campaign-scale panel sits in cache anyway.
inline void l2_sq_blocked(std::span<double> out, const double* q, std::size_t qn,
                          std::span<const double> panel, std::size_t rows,
                          std::size_t cols) {
  assert(qn >= 1 && qn <= kPanelLanes && out.size() >= qn * rows &&
         panel.size() == panel_size(rows, cols));
  for (std::size_t qi = 0; qi < qn; ++qi) {
    const double* qv = q + qi * cols;
    double* out_q = out.data() + qi * rows;
    for (std::size_t base = 0; base < rows; base += kPanelLanes) {
      const double* block = panel.data() + (base / kPanelLanes) * kPanelLanes * cols;
      const std::size_t lanes = std::min(kPanelLanes, rows - base);
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        double s = 0.0;
        for (std::size_t c = 0; c < cols; ++c) {
          const double d = block[c * kPanelLanes + lane] - qv[c];
          s += d * d;
        }
        out_q[base + lane] = s;
      }
    }
  }
}

/// out[r] = dot(w, row r of the row-major [rows x cols] block `x`), four
/// independent feature-sequential accumulation chains in flight (bit-identical
/// to the `dot` reference — interleaving rows never reorders a row's sum).
inline void dot_rows(std::span<double> out, std::span<const double> w, const double* x,
                     std::size_t rows, std::size_t cols) {
  assert(out.size() >= rows && w.size() == cols);
  std::size_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    const double* a = x + r * cols;
    const double* b = a + cols;
    const double* c2 = b + cols;
    const double* d = c2 + cols;
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    for (std::size_t c = 0; c < cols; ++c) {
      const double wc = w[c];
      s0 += wc * a[c];
      s1 += wc * b[c];
      s2 += wc * c2[c];
      s3 += wc * d[c];
    }
    out[r] = s0;
    out[r + 1] = s1;
    out[r + 2] = s2;
    out[r + 3] = s3;
  }
  for (; r < rows; ++r) {
    const double* row = x + r * cols;
    double s = 0.0;
    for (std::size_t c = 0; c < cols; ++c) s += w[c] * row[c];
    out[r] = s;
  }
}

/// Indices of the `out_idx.size()` smallest values under the total order
/// (value, index) — ties break toward the lower index, so the selected set
/// and its output order (ascending) are unique regardless of implementation.
/// The kNN top-k primitive.
inline void top_k_select(std::span<const double> values, std::span<std::uint32_t> out_idx) {
  const std::size_t k = out_idx.size();
  assert(k > 0 && k <= values.size());
  std::size_t filled = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double v = values[i];
    if (filled == k && !(v < values[out_idx[k - 1]])) continue;
    std::size_t pos = filled < k ? filled++ : k - 1;
    while (pos > 0 && v < values[out_idx[pos - 1]]) {
      out_idx[pos] = out_idx[pos - 1];
      --pos;
    }
    out_idx[pos] = static_cast<std::uint32_t>(i);
  }
}

/// out[r] += scale * leaf_value(tree, row r of the row-major block `x`) for
/// every tree of `forest`, accumulated tree-by-tree in forest order — the
/// same per-sample accumulation sequence as the reference
/// (base + sum of lr * tree.predict_value), so margins stay bit-identical.
/// Four rows traverse in interleaved lockstep: each step issues four
/// independent node loads, hiding the pointer-chase latency the one-row-at-
/// a-time walk is bound by. Lanes that reach a leaf park until the slowest
/// lane finishes the tree.
inline void tree_accumulate_rows(std::span<double> out, const TreeSoa& forest,
                                 const double* x, std::size_t rows, std::size_t cols,
                                 double scale) {
  assert(out.size() >= rows);
  const std::int32_t* feat = forest.feature.data();
  const double* thr = forest.threshold.data();
  const std::int32_t* lft = forest.left.data();
  const std::int32_t* rgt = forest.right.data();
  const double* val = forest.value.data();
  std::size_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    const double* x0 = x + r * cols;
    const double* x1 = x0 + cols;
    const double* x2 = x1 + cols;
    const double* x3 = x2 + cols;
    double s0 = out[r], s1 = out[r + 1], s2 = out[r + 2], s3 = out[r + 3];
    for (std::size_t t = 0; t < forest.tree_count(); ++t) {
      std::int32_t n0 = forest.root[t], n1 = n0, n2 = n0, n3 = n0;
      std::int32_t f0 = feat[n0], f1 = f0, f2 = f0, f3 = f0;
      while (std::max(std::max(f0, f1), std::max(f2, f3)) >= 0) {
        if (f0 >= 0) {
          n0 = x0[f0] <= thr[n0] ? lft[n0] : rgt[n0];
          f0 = feat[n0];
        }
        if (f1 >= 0) {
          n1 = x1[f1] <= thr[n1] ? lft[n1] : rgt[n1];
          f1 = feat[n1];
        }
        if (f2 >= 0) {
          n2 = x2[f2] <= thr[n2] ? lft[n2] : rgt[n2];
          f2 = feat[n2];
        }
        if (f3 >= 0) {
          n3 = x3[f3] <= thr[n3] ? lft[n3] : rgt[n3];
          f3 = feat[n3];
        }
      }
      s0 += scale * val[n0];
      s1 += scale * val[n1];
      s2 += scale * val[n2];
      s3 += scale * val[n3];
    }
    out[r] = s0;
    out[r + 1] = s1;
    out[r + 2] = s2;
    out[r + 3] = s3;
  }
  for (; r < rows; ++r) {
    const double* row = x + r * cols;
    double s = out[r];
    for (std::size_t t = 0; t < forest.tree_count(); ++t) {
      std::int32_t node = forest.root[t];
      while (feat[node] >= 0) node = row[feat[node]] <= thr[node] ? lft[node] : rgt[node];
      s += scale * val[node];
    }
    out[r] = s;
  }
}

}  // namespace scalar

#if LORE_SIMD_COMPILED
/// AVX2 variants (src/common/simd.cpp, compiled with target("avx2") so the
/// rest of the binary keeps the baseline ISA; call only when
/// `best_dispatch() == kAvx2`).
namespace avx2 {
void fill_trial_seeds(std::span<std::uint64_t> out, std::uint64_t base_seed,
                      std::uint64_t first_index);
std::size_t count_mismatch_u32(std::span<const std::uint32_t> a,
                               std::span<const std::uint32_t> b);
void copy_u32(std::span<std::uint32_t> dst, std::span<const std::uint32_t> src);
std::size_t count_equal_u8(std::span<const std::uint8_t> v, std::uint8_t value);
void l2_sq_blocked(std::span<double> out, const double* q, std::size_t qn,
                   std::span<const double> panel, std::size_t rows, std::size_t cols);
void top_k_select(std::span<const double> values, std::span<std::uint32_t> out_idx);
}  // namespace avx2
#endif

// Dispatched entry points — what the campaign engine calls.

inline void fill_trial_seeds(std::span<std::uint64_t> out, std::uint64_t base_seed,
                             std::uint64_t first_index) {
#if LORE_SIMD_COMPILED
  if (active_dispatch() == Dispatch::kAvx2)
    return avx2::fill_trial_seeds(out, base_seed, first_index);
#endif
  scalar::fill_trial_seeds(out, base_seed, first_index);
}

inline std::size_t count_mismatch_u32(std::span<const std::uint32_t> a,
                                      std::span<const std::uint32_t> b) {
#if LORE_SIMD_COMPILED
  if (active_dispatch() == Dispatch::kAvx2) return avx2::count_mismatch_u32(a, b);
#endif
  return scalar::count_mismatch_u32(a, b);
}

inline void copy_u32(std::span<std::uint32_t> dst, std::span<const std::uint32_t> src) {
#if LORE_SIMD_COMPILED
  if (active_dispatch() == Dispatch::kAvx2) return avx2::copy_u32(dst, src);
#endif
  scalar::copy_u32(dst, src);
}

inline std::size_t count_equal_u8(std::span<const std::uint8_t> v, std::uint8_t value) {
#if LORE_SIMD_COMPILED
  if (active_dispatch() == Dispatch::kAvx2) return avx2::count_equal_u8(v, value);
#endif
  return scalar::count_equal_u8(v, value);
}

/// Panel packing is a pure memory shuffle (no arithmetic to vectorize away
/// from the reference); exposed unqualified for a uniform call surface.
inline void pack_row_panels(std::span<double> out, const double* src, std::size_t rows,
                            std::size_t cols) {
  scalar::pack_row_panels(out, src, rows, cols);
}

inline void l2_sq_blocked(std::span<double> out, const double* q, std::size_t qn,
                          std::span<const double> panel, std::size_t rows,
                          std::size_t cols) {
#if LORE_SIMD_COMPILED
  if (active_dispatch() == Dispatch::kAvx2)
    return avx2::l2_sq_blocked(out, q, qn, panel, rows, cols);
#endif
  scalar::l2_sq_blocked(out, q, qn, panel, rows, cols);
}

inline void top_k_select(std::span<const double> values, std::span<std::uint32_t> out_idx) {
#if LORE_SIMD_COMPILED
  if (active_dispatch() == Dispatch::kAvx2) return avx2::top_k_select(values, out_idx);
#endif
  scalar::top_k_select(values, out_idx);
}

/// `dot_rows` and `tree_accumulate_rows` have no AVX2 variant on purpose:
/// both read row-major rows, so cross-row vectorization needs either strided
/// loads or hardware gathers, and gathers measure ~3x SLOWER than the
/// interleaved scalar walk on gather-mitigated Intel cores. The scalar
/// kernels already extract the available parallelism (four independent
/// dependency chains in flight); exposed unqualified for a uniform surface.
inline void dot_rows(std::span<double> out, std::span<const double> w, const double* x,
                     std::size_t rows, std::size_t cols) {
  scalar::dot_rows(out, w, x, rows, cols);
}

inline void tree_accumulate_rows(std::span<double> out, const TreeSoa& forest,
                                 const double* x, std::size_t rows, std::size_t cols,
                                 double scale) {
  scalar::tree_accumulate_rows(out, forest, x, rows, cols, scale);
}

}  // namespace lore::kernels
