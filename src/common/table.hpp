// Minimal aligned-column table printer used by benches to emit the data
// series behind each reproduced figure.
#pragma once

#include <string>
#include <vector>

namespace lore {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; each cell is already formatted text.
  void add_row(std::vector<std::string> cells);
  /// Convenience: format doubles with `precision` significant digits.
  void add_numeric_row(const std::vector<double>& cells, int precision = 6);

  std::size_t rows() const { return rows_.size(); }
  /// Structured access (the machine-readable bench artifacts export these).
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& data() const { return rows_; }
  /// Render with padded columns, header underline, trailing newline.
  std::string to_string() const;
  /// Render as CSV (no padding), suitable for plotting scripts.
  std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed significant digits (helper for bench output).
std::string fmt_sig(double v, int digits = 6);

}  // namespace lore
