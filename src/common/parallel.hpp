// Deterministic parallel campaign execution.
//
// Every statistical campaign in LORE (fault-injection sweeps, Monte Carlo
// rollback trials, cell-characterization grids) is a loop of independent
// trials. This header provides the one execution engine they all share: a
// small thread pool plus `parallel_for_trials`, whose **counter-based
// per-trial RNG seeding** (splitmix64 of `base_seed ^ trial_index`) makes the
// results bit-identical regardless of thread count or scheduling order. Each
// trial writes into its own pre-sized result slot, so merged output is always
// in trial order and no synchronization touches the data path.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/rng.hpp"

namespace lore {

/// Seed of one trial in a campaign: splitmix64 finalizer of
/// `base_seed ^ trial_index`. A pure function of (base_seed, trial_index) —
/// the scheduling of trials onto threads can never change a trial's stream,
/// and any single trial can be replayed in isolation from its seed.
std::uint64_t trial_seed(std::uint64_t base_seed, std::uint64_t trial_index);

/// Resolve a `threads` knob against the machine and the trial count:
/// 0 = hardware_concurrency (at least 1), otherwise the requested count,
/// clamped to `n` so tiny campaigns never over-spawn.
unsigned resolve_threads(unsigned threads, std::size_t n);

/// A small fixed-size worker pool. Jobs are arbitrary callables; the first
/// exception thrown by any job is captured and rethrown from `wait()`. Later
/// job exceptions in the same batch are not lost silently: they are counted,
/// reported through the obs counter `pool.suppressed_exceptions`, and the
/// count is appended to the rethrown message. The pool stays usable after an
/// exception (subsequent submits run normally).
class ThreadPool {
 public:
  /// `threads` = 0 picks hardware_concurrency.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue one job.
  void submit(std::function<void()> job);

  /// Block until every submitted job has finished; rethrows the first
  /// exception raised by a job (if any) after the queue has drained.
  void wait();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // signals workers: job available / stop
  std::condition_variable done_cv_;  // signals wait(): all jobs finished
  std::size_t pending_ = 0;          // queued + running jobs
  bool stop_ = false;
  std::exception_ptr first_error_;
  std::size_t suppressed_errors_ = 0;  // job exceptions after the first
};

/// Run `fn(i)` for every `i` in [0, n) across `threads` workers (0 = all
/// cores, 1 = plain serial loop). Trials are claimed from an atomic cursor
/// in small adaptive chunks (so sub-microsecond trial bodies don't serialize
/// on the claim counter), so callers must not depend on execution order —
/// only on `i`.
void parallel_for(std::size_t n, unsigned threads,
                  const std::function<void(std::size_t)>& fn);

/// Chunked variant for batch execution: `fn(begin, end)` is called for
/// contiguous disjoint ranges covering [0, n), each at most `chunk` indices
/// (`chunk` = 0 behaves as 1). Workers claim whole ranges from one atomic
/// counter — the work-distribution engine of the allocation-free campaign
/// path (DESIGN.md §11). Range boundaries are deterministic (multiples of
/// `chunk`); which worker runs which range is not.
void parallel_for_chunks(std::size_t n, unsigned threads, std::size_t chunk,
                         const std::function<void(std::size_t, std::size_t)>& fn);

/// The deterministic campaign executor: `fn(i, rng)` runs for every trial
/// `i` in [0, n), where `rng` is freshly seeded with
/// `trial_seed(base_seed, i)`. Outputs are bit-identical for every thread
/// count, including the serial path.
void parallel_for_trials(std::size_t n, std::uint64_t base_seed, unsigned threads,
                         const std::function<void(std::size_t, Rng&)>& fn);

/// Map-style wrapper: collect one result per trial, merged in trial order
/// into a pre-sized buffer (each trial owns its slot — no merge races).
template <typename T, typename Fn>
std::vector<T> parallel_trials(std::size_t n, std::uint64_t base_seed, unsigned threads,
                               Fn&& fn) {
  std::vector<T> out(n);
  parallel_for_trials(n, base_seed, threads,
                      [&](std::size_t i, Rng& rng) { out[i] = fn(i, rng); });
  return out;
}

}  // namespace lore
