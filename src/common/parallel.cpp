#include "src/common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <string>
#include <utility>

#include "src/common/kernels.hpp"
#include "src/obs/obs.hpp"

namespace lore {

std::uint64_t trial_seed(std::uint64_t base_seed, std::uint64_t trial_index) {
  // splitmix64 finalizer — a bijection, so distinct trial indices under one
  // base seed always get distinct, decorrelated seeds. The implementation
  // lives in kernels.hpp so the batched seed kernel (and its SIMD variant)
  // share the exact same definition.
  return kernels::scalar::trial_seed_at(base_seed, trial_index);
}

unsigned resolve_threads(unsigned threads, std::size_t n) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  if (n < threads) threads = static_cast<unsigned>(std::max<std::size_t>(1, n));
  return threads;
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned count = resolve_threads(threads, ~std::size_t{0});
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  std::size_t depth;
  {
    std::lock_guard lock(mu_);
    queue_.push_back(std::move(job));
    depth = ++pending_;
  }
  work_cv_.notify_one();
  // Queue pressure at submit time: how many jobs were queued or running when
  // this one arrived (submit is per-strand, so the map lookup is cold-path).
  if (obs::kCompiledIn && obs::enabled())
    obs::MetricsRegistry::global()
        .histogram("parallel.queue_depth", obs::Histogram::linear_bounds(0.0, 64.0, 33))
        .observe(static_cast<double>(depth));
}

void ThreadPool::wait() {
  std::unique_lock lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  if (first_error_) {
    auto error = std::exchange(first_error_, nullptr);
    const std::size_t suppressed = std::exchange(suppressed_errors_, 0);
    lock.unlock();
    if (suppressed == 0) std::rethrow_exception(error);
    // Later failures in the batch must not vanish: tally them and carry the
    // count in the rethrown message so callers see the blast radius.
    if (obs::kCompiledIn && obs::enabled())
      obs::MetricsRegistry::global().counter("pool.suppressed_exceptions").add(suppressed);
    try {
      std::rethrow_exception(error);
    } catch (const std::exception& e) {
      throw std::runtime_error(std::string(e.what()) + " (+" +
                               std::to_string(suppressed) +
                               " suppressed job exception(s))");
    }
    // Non-std exceptions propagate as-is from the rethrow above.
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    std::exception_ptr error;
    try {
      job();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard lock(mu_);
      if (error) {
        if (!first_error_) first_error_ = error;
        else ++suppressed_errors_;
      }
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

void parallel_for(std::size_t n, unsigned threads,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const unsigned team = resolve_threads(threads, n);

  // Engine instrumentation: trial count and team size are deterministic;
  // the per-trial latency histogram is wall-clock and therefore not part of
  // the determinism contract. Trials can be sub-microsecond, so latency is
  // sampled — every 16th trial by index (schedule-independent) — keeping the
  // common-path cost of an instrumented campaign to one branch per trial.
  constexpr std::size_t kLatencySampleStride = 16;
  obs::Histogram* latency = nullptr;
  if (obs::kCompiledIn && obs::enabled()) {
    auto& registry = obs::MetricsRegistry::global();
    registry.counter("parallel.trials").add(n);
    registry.gauge("parallel.threads").set(static_cast<double>(team));
    latency = &registry.histogram("parallel.trial_latency_us");
  }
  const auto run_one = [&](std::size_t i) {
    if (latency && i % kLatencySampleStride == 0) {
      const double start = obs::TraceRecorder::now_us();
      fn(i);
      latency->observe(obs::TraceRecorder::now_us() - start);
    } else {
      fn(i);
    }
  };

  if (team <= 1) {
    for (std::size_t i = 0; i < n; ++i) run_one(i);
    return;
  }
  // One strand per worker; trials are claimed from a shared cursor so uneven
  // trial costs balance across the team. Claims take `claim` indices at a
  // time: one-at-a-time claiming serialized sub-microsecond trial bodies on
  // the cursor's cache line (the old ~1.4x-at-8-threads ceiling), while a
  // bounded claim size keeps tail imbalance to at most `claim - 1` trials
  // per worker. Correctness never depends on who runs which trial — results
  // are keyed by index alone.
  const std::size_t claim =
      std::clamp<std::size_t>(n / (static_cast<std::size_t>(team) * 8), 1, 64);
  obs::Counter* claims_counter = nullptr;
  if (obs::kCompiledIn && obs::enabled())
    claims_counter = &obs::MetricsRegistry::global().counter("parallel.claims");
  std::atomic<std::size_t> cursor{0};
  ThreadPool pool(team);
  for (unsigned w = 0; w < team; ++w) {
    pool.submit([&] {
      std::size_t my_claims = 0;
      for (;;) {
        const std::size_t begin = cursor.fetch_add(claim, std::memory_order_relaxed);
        if (begin >= n) break;
        ++my_claims;
        const std::size_t end = std::min(n, begin + claim);
        for (std::size_t i = begin; i < end; ++i) run_one(i);
      }
      if (claims_counter && my_claims) claims_counter->add(my_claims);
    });
  }
  pool.wait();
}

void parallel_for_chunks(std::size_t n, unsigned threads, std::size_t chunk,
                         const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (chunk == 0) chunk = 1;
  const std::size_t num_chunks = (n + chunk - 1) / chunk;
  const unsigned team = resolve_threads(threads, num_chunks);

  obs::Counter* chunks_counter = nullptr;
  if (obs::kCompiledIn && obs::enabled()) {
    auto& registry = obs::MetricsRegistry::global();
    registry.counter("parallel.trials").add(n);
    registry.gauge("parallel.threads").set(static_cast<double>(team));
    chunks_counter = &registry.counter("parallel.chunks");
  }

  if (team <= 1) {
    for (std::size_t begin = 0; begin < n; begin += chunk)
      fn(begin, std::min(n, begin + chunk));
    if (chunks_counter) chunks_counter->add(num_chunks);
    return;
  }
  std::atomic<std::size_t> cursor{0};
  ThreadPool pool(team);
  for (unsigned w = 0; w < team; ++w) {
    pool.submit([&] {
      std::size_t my_chunks = 0;
      for (;;) {
        const std::size_t begin = cursor.fetch_add(chunk, std::memory_order_relaxed);
        if (begin >= n) break;
        ++my_chunks;
        fn(begin, std::min(n, begin + chunk));
      }
      if (chunks_counter && my_chunks) chunks_counter->add(my_chunks);
    });
  }
  pool.wait();
}

void parallel_for_trials(std::size_t n, std::uint64_t base_seed, unsigned threads,
                         const std::function<void(std::size_t, Rng&)>& fn) {
  // Resolve the completion counter once; per-trial updates are lock-free.
  obs::Counter* completed = nullptr;
  if (obs::kCompiledIn && obs::enabled())
    completed = &obs::MetricsRegistry::global().counter("parallel.trials_completed");
  parallel_for(n, threads, [&](std::size_t i) {
    Rng rng(trial_seed(base_seed, i));
    fn(i, rng);
    if (completed) completed->add(1);
    LORE_OBS_EVENT(obs::EventKind::kTrialCompleted, i, 0.0);
  });
}

}  // namespace lore
