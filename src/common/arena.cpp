#include "src/common/arena.hpp"

#include <cassert>

#include "src/obs/obs.hpp"

namespace lore {

Arena::Arena(std::size_t first_block)
    : first_block_(first_block ? first_block : 1024) {}

Arena::~Arena() {
  for (auto& b : blocks_) ::operator delete(b.data, std::align_val_t{kMaxAlign});
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  assert(align > 0 && (align & (align - 1)) == 0 && align <= kMaxAlign);
  if (bytes == 0) bytes = 1;
  for (;;) {
    if (block_index_ < blocks_.size()) {
      Block& b = blocks_[block_index_];
      // Block bases are kMaxAlign-aligned, so aligning the offset aligns the
      // pointer for any supported `align`.
      const std::size_t aligned = (offset_ + align - 1) & ~(align - 1);
      if (aligned + bytes <= b.size) {
        void* p = b.data + aligned;
        used_ += (aligned - offset_) + bytes;
        offset_ = aligned + bytes;
        if (used_ > high_water_) high_water_ = used_;
        return p;
      }
      // This block is full for the request; move on (its tail is not counted
      // in used_ — high_water tracks granted bytes plus alignment padding).
      ++block_index_;
      offset_ = 0;
      continue;
    }
    std::size_t want =
        blocks_.empty() ? first_block_ : std::min(kMaxBlock, blocks_.back().size * 2);
    if (want < bytes + align) want = bytes + align;
    Block b;
    b.data = static_cast<char*>(::operator new(want, std::align_val_t{kMaxAlign}));
    b.size = want;
    blocks_.push_back(b);
    block_index_ = blocks_.size() - 1;
    offset_ = 0;
  }
}

void Arena::reset() {
  block_index_ = 0;
  offset_ = 0;
  used_ = 0;
  if (high_water_ > published_high_water_) publish_high_water();
}

std::size_t Arena::capacity() const {
  std::size_t total = 0;
  for (const auto& b : blocks_) total += b.size;
  return total;
}

void Arena::publish_high_water() {
  published_high_water_ = high_water_;
  // Gauge semantics: the max high-water any arena has reported. The
  // read-compare-set below is racy across threads, but each writer only ever
  // raises the value toward the true max, and steady-state campaigns stop
  // publishing entirely once their footprint stabilizes.
  if (obs::kCompiledIn && obs::enabled()) {
    auto& gauge = obs::MetricsRegistry::global().gauge("arena.bytes_high_water");
    const double hw = static_cast<double>(high_water_);
    if (gauge.value() < hw) gauge.set(hw);
  }
}

Arena& Arena::for_thread() {
  thread_local Arena arena;
  return arena;
}

}  // namespace lore
