// Resilient campaign runtime — the one API every long-running statistical
// campaign in LORE shares (Sec. III fault-injection/AVF sweeps, the Fig. 5
// rollback Monte Carlo, circuit stuck-at and cell-characterization grids).
//
// A `CampaignSpec` names everything about a campaign: its identity (trial
// count, base seed, a domain fingerprint) and its resilience policy (worker
// threads, per-trial deadline, overall budget, retry/backoff, checkpoint path
// and interval). `run_campaign<Record>` executes it on top of the
// deterministic engine of parallel.hpp and adds what a multi-hour production
// run needs to survive preemption, hangs, and crashes:
//
//  * checkpoint/resume — completed trial payloads are periodically written to
//    an atomically-renamed, CRC-guarded file; on start a matching checkpoint
//    (identity hash + build tag) is loaded and only the missing trial indices
//    re-run. Because every trial's RNG stream is a pure function of
//    (base_seed, index), a resumed campaign is bit-identical to an
//    uninterrupted one at any thread count.
//  * per-trial deadlines — each attempt gets a `CancelToken`; bodies poll it
//    (`throw_if_cancelled`) and a timed-out trial is retried with exponential
//    backoff, then recorded as `TrialStatus::kTimeout` instead of aborting
//    the run. Trial exceptions are likewise retried, tallied, and degraded
//    into the final `CampaignReport`.
//  * observability — trials-complete counters, checkpoint-write histogram,
//    timeout/retry counters and an ETA gauge through `src/obs`.
//
// The convention for campaign call sites (see DESIGN.md §9): each domain
// exposes `<name>_run(..., const CampaignSpec&, <Options>)` returning records
// plus the `CampaignReport`, and a thin `<name>(...)` convenience returning
// just the domain payload. (The legacy `Rng&`-drawing overloads were removed
// after every in-repo caller migrated; the compat pins in
// tests/resilience/campaign_compat_test.cpp cover the modern entry points.)
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <functional>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <type_traits>
#include <vector>

#include "src/common/arena.hpp"
#include "src/common/kernels.hpp"
#include "src/common/parallel.hpp"
#include "src/common/rng.hpp"
#include "src/obs/obs.hpp"

namespace lore {

/// True when checkpoint persistence is compiled in. With -DLORE_CHECKPOINT=OFF
/// (which defines LORE_CHECKPOINT_DISABLED) the file I/O half of the runtime
/// compiles down to a pass-through: `write_checkpoint` fails benignly,
/// `load_checkpoint` always reports "no checkpoint", and campaigns simply run
/// start-to-finish like plain `parallel_for_trials`.
#ifdef LORE_CHECKPOINT_DISABLED
inline constexpr bool kCheckpointCompiledIn = false;
#else
inline constexpr bool kCheckpointCompiledIn = true;
#endif

/// Final disposition of one trial in a campaign.
enum class TrialStatus : std::uint8_t {
  kOk,       // completed (possibly after retries), record present
  kTimeout,  // every attempt exceeded the per-trial deadline
  kFailed,   // every attempt threw a non-timeout exception
  kSkipped,  // never attempted (overall budget exhausted / per-run trial cap)
  kPruned,   // skipped as predicted-benign by the prune stage (DESIGN.md §13)
};

const char* trial_status_name(TrialStatus s);

/// Thrown by trial bodies (via CancelToken::throw_if_cancelled) when their
/// deadline has passed; the engine converts it into a timeout + retry rather
/// than a campaign failure.
struct TrialTimeout : std::runtime_error {
  TrialTimeout() : std::runtime_error("trial deadline exceeded") {}
};

/// Cooperative cancellation handle passed to every trial attempt. Bodies poll
/// `cancelled()` (or call `throw_if_cancelled()`) at natural phase boundaries
/// — per gate, per grid row, per scheduler — and must signal cancellation by
/// throwing (normal return always counts as success). A default-constructed
/// token never cancels.
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;

  static CancelToken with_deadline(Clock::time_point deadline) {
    CancelToken t;
    t.has_deadline_ = true;
    t.deadline_ = deadline;
    return t;
  }

  bool cancelled() const { return has_deadline_ && Clock::now() >= deadline_; }

  void throw_if_cancelled() const {
    if (cancelled()) throw TrialTimeout();
  }

 private:
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
};

/// Everything that defines a campaign. The *identity* fields (trials,
/// base_seed, domain) determine the records and are hashed into checkpoints;
/// the *policy* fields (threads, deadlines, budget, checkpointing, retries)
/// only shape execution, so a checkpoint taken under one policy resumes
/// cleanly under another — e.g. interrupt at 4 threads, resume at 32.
struct CampaignSpec {
  // -- identity --------------------------------------------------------------
  std::size_t trials = 0;
  std::uint64_t base_seed = 0;
  /// Campaign-kind + payload fingerprint (set by the domain entry point, e.g.
  /// "arch.fault/9f3a..."); folded into the checkpoint identity hash so a
  /// checkpoint can never be replayed against a different workload.
  std::string domain{};

  // -- policy ----------------------------------------------------------------
  /// Worker threads (0 = hardware_concurrency, 1 = serial).
  unsigned threads = 0;
  /// Per-trial deadline; 0 = none. Timed-out trials retry, then degrade.
  std::chrono::milliseconds trial_deadline{0};
  /// Wall-clock budget for this invocation; 0 = none. Trials not started
  /// before it expires are left kSkipped (and picked up by a resume).
  std::chrono::milliseconds overall_budget{0};
  /// Extra attempts after a timeout or trial exception.
  unsigned max_retries = 2;
  /// Backoff before retry k is `retry_backoff << k`.
  std::chrono::milliseconds retry_backoff{1};
  /// Checkpoint file; empty = checkpointing off.
  std::string checkpoint_path{};
  /// Completed trials between checkpoint writes.
  std::size_t checkpoint_every = 64;
  /// Cap on trials attempted by this invocation (0 = unlimited) — lets an
  /// operator run a huge campaign in bounded slices, one resume per slice.
  std::size_t max_trials_per_run = 0;

  /// FNV-1a over the identity fields only.
  std::uint64_t identity_hash() const;
};

/// Aggregate outcome of one `run_campaign` invocation.
struct CampaignReport {
  std::size_t trials = 0;
  std::size_t completed = 0;  // includes trials restored from a checkpoint
  std::size_t resumed = 0;    // subset of completed restored from a checkpoint
  std::size_t timeouts = 0;   // trials whose final status is kTimeout
  std::size_t failed = 0;     // trials whose final status is kFailed
  std::size_t skipped = 0;    // never attempted (budget / per-run cap)
  std::size_t pruned = 0;            // skipped as predicted-benign
  std::size_t prune_audits = 0;      // predicted-benign trials executed anyway
  std::size_t prune_false_benign = 0;  // audits whose true outcome was not benign
  bool prune_disabled = false;  // the controller tripped during this run
  std::size_t retries = 0;         // attempts beyond the first, all trials
  std::size_t timeout_attempts = 0;     // individual attempts that timed out
  std::size_t suppressed_exceptions = 0;  // attempts that threw (non-timeout)
  std::size_t checkpoints_written = 0;
  bool loaded_checkpoint = false;
  std::string first_error;  // message of the first suppressed trial exception

  bool complete() const { return completed == trials; }
};

/// Records + per-trial status + report. `records[i]` is value-initialized
/// whenever `status[i] != kOk`.
template <typename Record>
struct CampaignResult {
  std::vector<Record> records;
  std::vector<TrialStatus> status;
  CampaignReport report;
};

/// Thrown by ByteReader on truncated/corrupt payload bytes.
struct CheckpointError : std::runtime_error {
  explicit CheckpointError(const std::string& what) : std::runtime_error(what) {}
};

/// Little-endian byte serialization for checkpoint payloads.
class ByteWriter {
 public:
  void put_u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void put_u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) put_u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void put_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) put_u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void put_f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    put_u64(bits);
  }
  void put_bytes(const void* data, std::size_t n) {
    buf_.append(static_cast<const char*>(data), n);
  }
  void put_str(std::string_view s) {
    put_u32(static_cast<std::uint32_t>(s.size()));
    buf_.append(s);
  }
  std::string take() && { return std::move(buf_); }
  const std::string& str() const { return buf_; }

 private:
  std::string buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  std::uint8_t get_u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint32_t get_u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(get_u8()) << (8 * i);
    return v;
  }
  std::uint64_t get_u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(get_u8()) << (8 * i);
    return v;
  }
  double get_f64() {
    const std::uint64_t bits = get_u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  void get_bytes(void* out, std::size_t n) {
    need(n);
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
  }
  std::string get_str() {
    const std::uint32_t n = get_u32();
    need(n);
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }
  bool exhausted() const { return pos_ == data_.size(); }

 private:
  void need(std::size_t n) const {
    if (data_.size() - pos_ < n) throw CheckpointError("truncated payload");
  }
  std::string_view data_;
  std::size_t pos_ = 0;
};

/// Default codec for trivially-copyable records. Domain records with pointers
/// or containers define their own codec struct with the same two members.
template <typename Record>
struct PodCodec {
  static_assert(std::is_trivially_copyable_v<Record>,
                "PodCodec needs a trivially copyable Record; write a custom codec");
  static void encode(ByteWriter& w, const Record& r) { w.put_bytes(&r, sizeof r); }
  static Record decode(ByteReader& r) {
    Record rec{};
    r.get_bytes(&rec, sizeof rec);
    return rec;
  }
};

// ---------------------------------------------------------------------------
// Checkpoint persistence (exposed so tests and tooling can craft/inspect
// files; campaigns only ever touch it through run_campaign).

struct CheckpointEntry {
  std::uint64_t trial = 0;
  std::string payload;
};

struct CampaignCheckpoint {
  std::uint64_t identity = 0;  // CampaignSpec::identity_hash() of the producer
  std::string build_tag;       // git-describe of the producing binary
  std::uint64_t trials = 0;
  std::vector<CheckpointEntry> entries;
};

/// git-describe tag baked into this binary (LORE_BUILD_TAG; "unknown" when
/// built outside git). Checkpoints from a different build are not trusted.
std::string checkpoint_build_tag();

/// Serialize to the LORECKP1 wire format (magic, version, identity, build
/// tag, trial count, entries, trailing CRC-32) — the exact bytes
/// `write_checkpoint` puts on disk, reused by the campaign fabric as the
/// shard hand-off payload (DESIGN.md §12).
std::string encode_checkpoint(const CampaignCheckpoint& ck);

/// Parse + validate LORECKP1 bytes against `spec`: magic, version, CRC,
/// identity hash, trial count, build tag, entry ranges. Any problem warns on
/// stderr — naming `source` (a file path or "shard 3 from worker-1") and,
/// for identity/build-tag mismatches, both the expected and found values so
/// a mis-routed payload is diagnosable — and returns nullopt.
std::optional<CampaignCheckpoint> decode_checkpoint(std::string_view bytes,
                                                    const CampaignSpec& spec,
                                                    std::string_view source);

/// Serialize + CRC-guard + atomically rename into place (write to
/// `path.tmp`, fsync-free rename). Returns false on I/O failure or when
/// checkpointing is compiled out.
bool write_checkpoint(const std::string& path, const CampaignCheckpoint& ck);

/// Load `path` and validate magic, version, CRC, identity hash, trial count,
/// and build tag against `spec`. Any problem — missing file aside — warns on
/// stderr with the reason and returns nullopt, so a corrupted/truncated/stale
/// checkpoint degrades to a fresh run instead of poisoning it.
std::optional<CampaignCheckpoint> load_checkpoint(const std::string& path,
                                                  const CampaignSpec& spec);

/// `$LORE_CHECKPOINT_DIR/<name>.ckpt` when the environment variable is set
/// and non-empty, otherwise "" (checkpointing off). The hook benches use so
/// `LORE_CHECKPOINT_DIR=... reproduce.sh` is interruptible end-to-end.
std::string default_checkpoint_path(std::string_view campaign_name);

// ---------------------------------------------------------------------------
// Shard construction + checkpoint merge — the campaign fabric's hand-off
// units (DESIGN.md §12). A coordinator splits a spec's [0, trials) index
// range into contiguous shards, workers run each shard with the identical
// counter-based per-trial seeding, results travel back as LORECKP1 payloads,
// and the coordinator folds them together entry by entry. Because every
// trial's stream is a pure function of (base_seed, index), the merged result
// is bit-identical to a single-process run at any shard/worker count.

/// Half-open sub-range [begin, end) of a campaign's trial indices.
struct TrialRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
  friend bool operator==(const TrialRange&, const TrialRange&) = default;
};

/// Split [0, trials) into `shard_count` contiguous near-equal ranges (the
/// first `trials % shard_count` ranges are one longer). Empty ranges are
/// never produced: asking for more shards than trials yields `trials`
/// one-trial shards.
std::vector<TrialRange> shard_trial_ranges(std::size_t trials, std::size_t shard_count);

/// Merge `from`'s entries into `into`, discarding duplicates by trial index
/// (first valid result wins — the fabric's rule for stolen-then-completed
/// straggler shards) and entries outside [0, into.trials). `seen` is the
/// merger's occupancy bitmap, one byte per trial of `into`; it is updated in
/// place so a long-lived merger stays O(new entries). Returns the number of
/// entries accepted.
std::size_t merge_checkpoint_entries(CampaignCheckpoint& into,
                                     const CampaignCheckpoint& from,
                                     std::vector<std::uint8_t>& seen);

/// Convenience over the three-argument form: rebuilds the occupancy bitmap
/// from `into`'s current entries each call (fine for tests and one-shot
/// merges).
std::size_t merge_checkpoint_entries(CampaignCheckpoint& into,
                                     const CampaignCheckpoint& from);

/// Decode a (fully or partially) merged checkpoint into campaign records:
/// entries become kOk records via `Codec`, absent trials stay kSkipped.
/// Throws CheckpointError on a corrupt payload (fabric payloads are CRC-
/// verified on receipt, so this indicates a codec mismatch).
template <typename Record, typename Codec = PodCodec<Record>>
CampaignResult<Record> result_from_checkpoint(const CampaignSpec& spec,
                                              const CampaignCheckpoint& ck) {
  CampaignResult<Record> out;
  out.records.resize(spec.trials);
  out.status.assign(spec.trials, TrialStatus::kSkipped);
  out.report.trials = spec.trials;
  for (const auto& e : ck.entries) {
    const auto i = static_cast<std::size_t>(e.trial);
    if (i >= spec.trials || out.status[i] == TrialStatus::kOk) continue;
    ByteReader r(e.payload);
    out.records[i] = Codec::decode(r);
    out.status[i] = TrialStatus::kOk;
    ++out.report.completed;
  }
  out.report.skipped = spec.trials - out.report.completed;
  return out;
}

// ---------------------------------------------------------------------------
// Engine

namespace campaign_detail {

/// Type-erased core: trial bodies return their record pre-serialized, so the
/// whole checkpoint/deadline/retry machinery lives in one non-template
/// translation unit.
using RawTrialFn = std::function<std::string(std::size_t, Rng&, const CancelToken&)>;

struct RawResult {
  std::vector<std::string> payloads;
  std::vector<TrialStatus> status;
  CampaignReport report;
};

RawResult run_campaign_raw(const CampaignSpec& spec, const RawTrialFn& trial);

/// Worker half of the fabric hand-off: run trials [range.begin, range.end)
/// of `spec` — each seeded `trial_seed(spec.base_seed, global_index)`, the
/// same contract as run_campaign — and return their encoded payloads as a
/// LORECKP1-ready checkpoint (identity + build tag filled in, one entry per
/// trial in index order). Failed trials retry up to spec.max_retries times
/// with backoff; a trial that still fails propagates its exception, failing
/// the shard as a unit (the coordinator re-dispatches it).
CampaignCheckpoint run_campaign_shard_raw(const CampaignSpec& spec, TrialRange range,
                                          const RawTrialFn& trial);

}  // namespace campaign_detail

/// Typed wrapper over `run_campaign_shard_raw`: encode each record of the
/// sub-range through `Codec`, exactly as run_campaign's checkpoint writer
/// would.
template <typename Record, typename Codec = PodCodec<Record>, typename TrialFn>
CampaignCheckpoint run_campaign_shard(const CampaignSpec& spec, TrialRange range,
                                      TrialFn&& trial) {
  return campaign_detail::run_campaign_shard_raw(
      spec, range, [&](std::size_t i, Rng& rng, const CancelToken& cancel) {
        ByteWriter w;
        Codec::encode(w, trial(i, rng, cancel));
        return std::move(w).take();
      });
}

/// Run a campaign under `spec`. `trial(i, rng, cancel)` computes the record of
/// trial `i` from an rng seeded with `trial_seed(spec.base_seed, i)` — the
/// identical contract to `parallel_for_trials`, so results are bit-identical
/// for every thread count, across interrupt/resume, and across retries.
template <typename Record, typename Codec = PodCodec<Record>>
CampaignResult<Record> run_campaign(
    const CampaignSpec& spec,
    const std::function<Record(std::size_t, Rng&, const CancelToken&)>& trial) {
  const auto raw = campaign_detail::run_campaign_raw(
      spec, [&](std::size_t i, Rng& rng, const CancelToken& cancel) {
        ByteWriter w;
        Codec::encode(w, trial(i, rng, cancel));
        return std::move(w).take();
      });
  CampaignResult<Record> out;
  out.records.resize(spec.trials);
  for (std::size_t i = 0; i < spec.trials; ++i) {
    if (raw.status[i] != TrialStatus::kOk) continue;
    ByteReader r(raw.payloads[i]);
    out.records[i] = Codec::decode(r);
  }
  out.status = raw.status;
  out.report = raw.report;
  return out;
}

// ---------------------------------------------------------------------------
// Batched (allocation-free) campaign execution — DESIGN.md §11.

/// Runtime switch for the batched fast path (initialized from the
/// environment: LORE_SIMD_SCALAR=1 starts it off, forcing the legacy
/// per-trial reference path everywhere). The differential suite toggles this
/// to prove batched == reference bit-identically.
bool campaign_batch_enabled();
void set_campaign_batch_enabled(bool on);

/// Chunk-size resolution: explicit request > LORE_TRIAL_CHUNK environment
/// variable > 256. Always >= 1.
std::size_t resolve_trial_chunk(std::size_t requested);

/// True when `spec` carries no resilience policy that requires the
/// serializing reference engine: no checkpointing, no per-trial deadline, no
/// overall budget, no per-run trial cap. Such "plain" specs are eligible for
/// the batched fast path.
bool plain_campaign_spec(const CampaignSpec& spec);

/// True when `run_campaign_batched` would take the fast path for `spec`.
inline bool campaign_uses_batch(const CampaignSpec& spec) {
  return campaign_batch_enabled() && plain_campaign_spec(spec);
}

struct BatchOptions {
  /// Trials per chunk (0 = resolve_trial_chunk default).
  std::size_t chunk = 0;
  /// Force the serializing reference engine regardless of spec/switch — the
  /// differential test hook.
  bool force_reference = false;
};

// ---------------------------------------------------------------------------
// Online predict-and-prune stage (DESIGN.md §13).

/// Audit-fraction resolution: explicit request in [0, 1] > LORE_PRUNE_AUDIT
/// environment variable > 0.05. The audit fraction is the share of
/// predicted-benign trials that execute anyway so the live false-benign rate
/// is measurable (and feeds back into training).
double resolve_prune_audit(double requested);

/// True when pruned trial `index` is selected for audit: a pure function of
/// (audit_seed, index), so the audit subsample is identical at any thread or
/// chunk count — the same determinism contract as trial seeding.
inline bool prune_audit_selected(std::uint64_t audit_seed, std::size_t index,
                                 double fraction) {
  if (fraction >= 1.0) return true;
  if (fraction <= 0.0) return false;
  const std::uint64_t z = kernels::scalar::trial_seed_at(audit_seed, index);
  return static_cast<double>(z >> 11) * 0x1.0p-53 < fraction;
}

/// Shared safety breaker for predict-and-prune campaigns: counts pruned /
/// audited / false-benign trials and disables pruning for good when the
/// audit-measured false-benign rate crosses the alert threshold (with at
/// least `min_audits` audits behind it). Tripping publishes obs counters and
/// a kAlert event into the PR 5 health loop — graceful degradation back to
/// full execution, never silent accuracy loss. Thread-safe; share one
/// controller across campaigns to accumulate audit statistics.
class PruneController {
 public:
  struct Config {
    /// False-benign rate (false_benign / audits) that trips the breaker.
    double false_benign_alert = 0.2;
    /// Audits required before the rate is trusted.
    std::size_t min_audits = 20;
  };

  PruneController() = default;
  explicit PruneController(Config cfg) : cfg_(cfg) {}

  bool enabled() const { return !tripped_.load(std::memory_order_relaxed); }
  bool tripped() const { return tripped_.load(std::memory_order_relaxed); }

  void record_pruned(std::size_t n) {
    pruned_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Record one audited trial's ground truth; may trip the breaker.
  void record_audit(bool was_benign);
  /// Manually trip (health loop / operator hook).
  void disable(const char* reason);

  std::size_t pruned() const { return pruned_.load(std::memory_order_relaxed); }
  std::size_t audits() const { return audits_.load(std::memory_order_relaxed); }
  std::size_t false_benign() const {
    return false_benign_.load(std::memory_order_relaxed);
  }
  double false_benign_rate() const {
    const auto a = audits();
    return a == 0 ? 0.0 : static_cast<double>(false_benign()) / static_cast<double>(a);
  }
  const Config& config() const { return cfg_; }

 private:
  Config cfg_{};
  std::atomic<std::size_t> pruned_{0}, audits_{0}, false_benign_{0};
  std::atomic<bool> tripped_{false};
};

/// Prune-stage hooks for `run_campaign_pruned`. With no `predict` hook the
/// engine degenerates to `run_campaign_batched` exactly. `predict` scores one
/// chunk's trials — `benign[i - begin] = 1` marks trial i predicted-benign —
/// from whatever descriptor the domain derives from the trial seed (the seed
/// span holds `trial_seed(spec.base_seed, i)` for the chunk, the same seeds
/// the trial bodies will draw). `is_benign` maps an executed Record to ground
/// truth for audit statistics; `on_executed` observes every executed trial
/// (prediction feedback / training — sampling is the callee's business).
template <typename Record>
struct PruneHooks {
  std::function<void(std::size_t begin, std::size_t end,
                     std::span<const std::uint64_t> seeds, std::span<std::uint8_t> benign)>
      predict;
  std::function<bool(const Record&)> is_benign;
  std::function<void(std::size_t index, const Record& record, bool predicted_benign,
                     bool audited)>
      on_executed;
  /// Fraction of predicted-benign trials executed anyway as audits
  /// (< 0 = resolve_prune_audit: LORE_PRUNE_AUDIT or 0.05).
  double audit_fraction = -1.0;
  /// Seed of the audit subsample (0 = derived from spec.base_seed).
  std::uint64_t audit_seed = 0;
  /// Optional shared breaker; when it trips, later chunks execute in full.
  PruneController* controller = nullptr;
};

/// Batched campaign executor with an optional predict-and-prune stage. Same
/// record/status/report contract and the same per-trial semantics as
/// `run_campaign` — an *executed* trial `i` always computes from a fresh Rng
/// seeded with `trial_seed(spec.base_seed, i)`, failed trials retry up to
/// `spec.max_retries` times with backoff, and executed results are
/// bit-identical for every thread count AND to the reference engine. What
/// changes is the execution shape: plain specs (see `plain_campaign_spec`)
/// run in chunks of trials claimed by `parallel_for_chunks`, per-chunk seed
/// buffers come from the thread-local Arena and the batched seed kernel, and
/// records are written straight into their slots — no per-trial
/// encode/decode round trip, no per-trial heap traffic, no per-trial ring
/// events (progress counters are maintained per chunk; the Aggregator's
/// trials/s rates derive from counter deltas and keep working).
///
/// The prune stage (DESIGN.md §13) runs when `hooks.predict` is set: each
/// chunk is scored before execution, predicted-benign trials are skipped
/// with `TrialStatus::kPruned` (value-initialized record), except for a
/// seeded audit fraction that executes anyway so the live false-benign rate
/// stays measurable. Which trials are pruned is a pure function of
/// (predictions, audit_seed) — never of thread or chunk boundaries — so
/// `audit_fraction = 1.0` reproduces prune=off outcomes bit-identically at
/// any thread count. A tripped PruneController stops pruning on chunks that
/// score after the trip; trials already marked kPruned stay pruned.
///
/// Non-plain specs and `force_reference` fall back to `run_campaign`
/// wholesale (checkpoint/resume, deadlines, and budgets keep their exact
/// semantics) — the reference engine never prunes, so hooks are ignored on
/// that path and every trial executes.
template <typename Record, typename Codec = PodCodec<Record>, typename TrialFn>
CampaignResult<Record> run_campaign_pruned(const CampaignSpec& spec, TrialFn&& trial,
                                           const PruneHooks<Record>& hooks,
                                           const BatchOptions& opt = {}) {
  if (opt.force_reference || !campaign_batch_enabled() || !plain_campaign_spec(spec)) {
    return run_campaign<Record, Codec>(
        spec, std::function<Record(std::size_t, Rng&, const CancelToken&)>(
                  std::forward<TrialFn>(trial)));
  }
  const std::size_t n = spec.trials;
  CampaignResult<Record> out;
  out.records.resize(n);
  out.status.assign(n, TrialStatus::kSkipped);
  out.report.trials = n;
  if (n == 0) return out;

  std::atomic<std::size_t> retries{0}, suppressed{0};
  std::atomic<std::size_t> audits{0}, false_benign{0};
  std::mutex err_mu;
  std::string first_error;
  const std::size_t chunk = resolve_trial_chunk(opt.chunk);
  const bool pruning = static_cast<bool>(hooks.predict);
  const double audit_fraction = pruning ? resolve_prune_audit(hooks.audit_fraction) : 0.0;
  // Decorrelate the audit subsample from the trial seed stream by default.
  const std::uint64_t audit_seed =
      hooks.audit_seed != 0 ? hooks.audit_seed : spec.base_seed ^ 0x9e3779b97f4a7c15ULL;

  obs::Counter* completed_counter = nullptr;
  obs::Counter* pruned_counter = nullptr;
  obs::Counter* audit_counter = nullptr;
  obs::Counter* false_benign_counter = nullptr;
  obs::Gauge* progress_gauge = nullptr;
  std::atomic<std::size_t> completed_so_far{0};
  if (obs::kCompiledIn && obs::enabled()) {
    auto& registry = obs::MetricsRegistry::global();
    completed_counter = &registry.counter("campaign.trials_completed");
    progress_gauge = &registry.gauge("campaign.progress");
    if (pruning) {
      pruned_counter = &registry.counter("campaign.trials_pruned");
      audit_counter = &registry.counter("campaign.prune_audits");
      false_benign_counter = &registry.counter("campaign.prune_false_benign");
    }
  }

  // Chunk spans nest under the caller's ambient span (a fabric shard span, a
  // scenario stage, ...), so a fleet trace shows each worker's chunk-level
  // progress; the scope also stamps chunk events for the flight recorder.
  const obs::TraceContext trace_ctx = obs::current_trace_context();
  parallel_for_chunks(n, spec.threads, chunk, [&](std::size_t begin, std::size_t end) {
    obs::TraceContextScope trace_scope(trace_ctx);
    LORE_OBS_SPAN(chunk_span, "campaign.chunk");
    Arena& arena = Arena::for_thread();
    ArenaScope epoch(arena);
    const auto seeds = arena.alloc<std::uint64_t>(end - begin);
    kernels::fill_trial_seeds(seeds, spec.base_seed, begin);
    // Re-evaluated per chunk so a controller trip stops pruning on every
    // chunk scored after it.
    const bool prune_chunk =
        pruning && (hooks.controller == nullptr || hooks.controller->enabled());
    std::span<std::uint8_t> benign;
    if (prune_chunk) {
      benign = arena.alloc<std::uint8_t>(end - begin, /*zeroed=*/true);
      hooks.predict(begin, end, std::span<const std::uint64_t>(seeds), benign);
    }
    const CancelToken cancel;  // plain specs have no deadline
    std::size_t chunk_ok = 0, chunk_retries = 0, chunk_suppressed = 0;
    std::size_t chunk_pruned = 0, chunk_audits = 0, chunk_false_benign = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const bool predicted_benign = prune_chunk && benign[i - begin] != 0;
      const bool audited =
          predicted_benign && prune_audit_selected(audit_seed, i, audit_fraction);
      if (predicted_benign && !audited) {
        out.status[i] = TrialStatus::kPruned;
        out.records[i] = Record{};
        ++chunk_pruned;
        continue;
      }
      for (unsigned attempt = 0; attempt <= spec.max_retries; ++attempt) {
        if (attempt > 0) {
          ++chunk_retries;
          std::this_thread::sleep_for(spec.retry_backoff * (1u << (attempt - 1)));
        }
        try {
          // Fresh stream per attempt — identical to the reference engine.
          Rng rng(seeds[i - begin]);
          out.records[i] = trial(i, rng, cancel);
          out.status[i] = TrialStatus::kOk;
          ++chunk_ok;
          break;
        } catch (const std::exception& e) {
          ++chunk_suppressed;
          out.status[i] = TrialStatus::kFailed;
          std::lock_guard lock(err_mu);
          if (first_error.empty()) first_error = e.what();
        } catch (...) {
          ++chunk_suppressed;
          out.status[i] = TrialStatus::kFailed;
          std::lock_guard lock(err_mu);
          if (first_error.empty()) first_error = "unknown trial exception";
        }
      }
      if (out.status[i] != TrialStatus::kOk) {
        out.records[i] = Record{};
        continue;
      }
      if (audited) {
        const bool truth = hooks.is_benign ? hooks.is_benign(out.records[i]) : true;
        ++chunk_audits;
        if (!truth) ++chunk_false_benign;
        if (hooks.controller) hooks.controller->record_audit(truth);
      }
      if (hooks.on_executed)
        hooks.on_executed(i, out.records[i], predicted_benign, audited);
    }
    if (chunk_retries) retries.fetch_add(chunk_retries, std::memory_order_relaxed);
    if (chunk_suppressed)
      suppressed.fetch_add(chunk_suppressed, std::memory_order_relaxed);
    if (chunk_pruned && hooks.controller) hooks.controller->record_pruned(chunk_pruned);
    // Prune decisions as structured events (not just a counter): a = trials
    // pruned in this chunk, value = first trial index of the chunk — enough
    // for intervals, traces, and the post-mortem toolkit to reconstruct
    // which ranges were skipped and under which span.
    if (chunk_pruned)
      LORE_OBS_EVENT(obs::EventKind::kTrialsPruned, chunk_pruned,
                     static_cast<double>(begin));
    if (chunk_audits) audits.fetch_add(chunk_audits, std::memory_order_relaxed);
    if (chunk_false_benign)
      false_benign.fetch_add(chunk_false_benign, std::memory_order_relaxed);
    if (pruned_counter && chunk_pruned) pruned_counter->add(chunk_pruned);
    if (audit_counter && chunk_audits) audit_counter->add(chunk_audits);
    if (false_benign_counter && chunk_false_benign)
      false_benign_counter->add(chunk_false_benign);
    if (completed_counter && chunk_ok) {
      completed_counter->add(chunk_ok);
      const auto done =
          completed_so_far.fetch_add(chunk_ok, std::memory_order_relaxed) + chunk_ok;
      progress_gauge->set(static_cast<double>(done) / static_cast<double>(n));
    }
  });

  const auto status_bytes = std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(out.status.data()), n);
  out.report.completed =
      kernels::count_equal_u8(status_bytes, static_cast<std::uint8_t>(TrialStatus::kOk));
  out.report.failed = kernels::count_equal_u8(
      status_bytes, static_cast<std::uint8_t>(TrialStatus::kFailed));
  out.report.pruned = kernels::count_equal_u8(
      status_bytes, static_cast<std::uint8_t>(TrialStatus::kPruned));
  out.report.prune_audits = audits.load(std::memory_order_relaxed);
  out.report.prune_false_benign = false_benign.load(std::memory_order_relaxed);
  out.report.prune_disabled =
      pruning && hooks.controller != nullptr && hooks.controller->tripped();
  out.report.retries = retries.load(std::memory_order_relaxed);
  out.report.suppressed_exceptions = suppressed.load(std::memory_order_relaxed);
  out.report.first_error = std::move(first_error);
  return out;
}

/// `run_campaign_pruned` with no prune stage — the PR 6 batched fast path.
template <typename Record, typename Codec = PodCodec<Record>, typename TrialFn>
CampaignResult<Record> run_campaign_batched(const CampaignSpec& spec, TrialFn&& trial,
                                            const BatchOptions& opt = {}) {
  return run_campaign_pruned<Record, Codec>(spec, std::forward<TrialFn>(trial),
                                            PruneHooks<Record>{}, opt);
}

}  // namespace lore
