#include "src/common/campaign.hpp"

#include <array>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

#include "src/obs/obs.hpp"

#ifndef LORE_BUILD_TAG
#define LORE_BUILD_TAG "unknown"
#endif

namespace lore {
namespace {

constexpr char kMagic[8] = {'L', 'O', 'R', 'E', 'C', 'K', 'P', '1'};
constexpr std::uint32_t kVersion = 1;

/// CRC-32 (IEEE 802.3, reflected), table built on first use.
std::uint32_t crc32(const char* data, std::size_t n) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c >> 1) ^ (0xedb88320u & (0u - (c & 1u)));
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xffffffffu;
  for (std::size_t i = 0; i < n; ++i)
    crc = (crc >> 8) ^ table[(crc ^ static_cast<std::uint8_t>(data[i])) & 0xffu];
  return crc ^ 0xffffffffu;
}

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

void warn_checkpoint(std::string_view source, const char* reason) {
  std::fprintf(stderr, "lore: checkpoint %.*s: %s; ignored\n",
               static_cast<int>(source.size()), source.data(), reason);
}

}  // namespace

namespace {

/// LORE_SIMD_SCALAR=1 forces the full scalar/per-trial reference path: the
/// batched engine starts disabled alongside the SIMD kernels (one switch,
/// one bit-identity contract — DESIGN.md §11).
bool batch_enabled_from_env() {
  const char* env = std::getenv("LORE_SIMD_SCALAR");
  return !(env && *env && *env != '0');
}

std::atomic<bool> g_batch_enabled{batch_enabled_from_env()};

}  // namespace

bool campaign_batch_enabled() { return g_batch_enabled.load(std::memory_order_relaxed); }

void set_campaign_batch_enabled(bool on) {
  g_batch_enabled.store(on, std::memory_order_relaxed);
}

std::size_t resolve_trial_chunk(std::size_t requested) {
  if (requested > 0) return requested;
  static const std::size_t env_chunk = [] {
    const char* env = std::getenv("LORE_TRIAL_CHUNK");
    if (!env || !*env) return std::size_t{0};
    const long v = std::atol(env);
    return v > 0 ? static_cast<std::size_t>(v) : std::size_t{0};
  }();
  return env_chunk > 0 ? env_chunk : 256;
}

bool plain_campaign_spec(const CampaignSpec& spec) {
  return spec.checkpoint_path.empty() && spec.trial_deadline.count() == 0 &&
         spec.overall_budget.count() == 0 && spec.max_trials_per_run == 0;
}

const char* trial_status_name(TrialStatus s) {
  switch (s) {
    case TrialStatus::kOk: return "ok";
    case TrialStatus::kTimeout: return "timeout";
    case TrialStatus::kFailed: return "failed";
    case TrialStatus::kSkipped: return "skipped";
    case TrialStatus::kPruned: return "pruned";
  }
  return "?";
}

double resolve_prune_audit(double requested) {
  if (requested >= 0.0) return requested > 1.0 ? 1.0 : requested;
  static const double env_audit = [] {
    const char* env = std::getenv("LORE_PRUNE_AUDIT");
    if (!env || !*env) return -1.0;
    const double v = std::atof(env);
    return v >= 0.0 ? (v > 1.0 ? 1.0 : v) : -1.0;
  }();
  return env_audit >= 0.0 ? env_audit : 0.05;
}

void PruneController::record_audit(bool was_benign) {
  const auto a = audits_.fetch_add(1, std::memory_order_relaxed) + 1;
  const auto fb = false_benign_.fetch_add(was_benign ? 0 : 1, std::memory_order_relaxed) +
                  (was_benign ? 0 : 1);
  if (was_benign || a < cfg_.min_audits) return;
  const double rate = static_cast<double>(fb) / static_cast<double>(a);
  if (rate > cfg_.false_benign_alert) disable("campaign.prune.false_benign");
}

void PruneController::disable(const char* reason) {
  if (tripped_.exchange(true, std::memory_order_relaxed)) return;  // first trip only
  if (obs::kCompiledIn && obs::enabled()) {
    obs::MetricsRegistry::global().counter("campaign.prune_trips").add(1);
    if (obs::EventRing::global().enabled())
      obs::emit_event(obs::EventKind::kAlert, audits(), false_benign_rate(), reason);
  }
}

std::uint64_t CampaignSpec::identity_hash() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  const std::uint64_t t = trials;
  h = fnv1a(h, &t, sizeof t);
  h = fnv1a(h, &base_seed, sizeof base_seed);
  h = fnv1a(h, domain.data(), domain.size());
  return h;
}

std::string checkpoint_build_tag() { return LORE_BUILD_TAG; }

std::string default_checkpoint_path(std::string_view campaign_name) {
  const char* dir = std::getenv("LORE_CHECKPOINT_DIR");
  if (!dir || !*dir) return {};
  std::string path(dir);
  path += '/';
  path += campaign_name;
  path += ".ckpt";
  return path;
}

std::string encode_checkpoint(const CampaignCheckpoint& ck) {
  ByteWriter w;
  w.put_bytes(kMagic, sizeof kMagic);
  w.put_u32(kVersion);
  w.put_u64(ck.identity);
  w.put_str(ck.build_tag);
  w.put_u64(ck.trials);
  w.put_u64(ck.entries.size());
  for (const auto& e : ck.entries) {
    w.put_u64(e.trial);
    w.put_str(e.payload);
  }
  std::string bytes = std::move(w).take();
  const std::uint32_t crc = crc32(bytes.data(), bytes.size());
  for (int i = 0; i < 4; ++i) bytes.push_back(static_cast<char>(crc >> (8 * i)));
  return bytes;
}

std::optional<CampaignCheckpoint> decode_checkpoint(std::string_view bytes,
                                                    const CampaignSpec& spec,
                                                    std::string_view source) {
  if (bytes.size() < sizeof kMagic + 4) {
    warn_checkpoint(source, "payload too short");
    return std::nullopt;
  }
  const std::size_t body_len = bytes.size() - 4;
  std::uint32_t stored_crc = 0;
  for (int i = 0; i < 4; ++i)
    stored_crc |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[body_len + i]))
                  << (8 * i);
  if (crc32(bytes.data(), body_len) != stored_crc) {
    warn_checkpoint(source, "CRC mismatch (corrupted or torn payload)");
    return std::nullopt;
  }

  try {
    ByteReader r(bytes.substr(0, body_len));
    char magic[sizeof kMagic];
    r.get_bytes(magic, sizeof magic);
    if (std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
      warn_checkpoint(source, "bad magic");
      return std::nullopt;
    }
    if (r.get_u32() != kVersion) {
      warn_checkpoint(source, "unsupported version");
      return std::nullopt;
    }
    CampaignCheckpoint ck;
    ck.identity = r.get_u64();
    ck.build_tag = r.get_str();
    ck.trials = r.get_u64();
    // Mis-routed payloads (a shard for a different campaign, a checkpoint
    // from another workload) are an expected fabric failure mode: name both
    // sides of every mismatch so the operator can tell *which* campaign the
    // stray payload belonged to.
    if (ck.identity != spec.identity_hash()) {
      char msg[192];
      std::snprintf(msg, sizeof msg,
                    "identity mismatch (expected %016llx, found %016llx, "
                    "payload build tag \"%s\")",
                    static_cast<unsigned long long>(spec.identity_hash()),
                    static_cast<unsigned long long>(ck.identity),
                    ck.build_tag.c_str());
      warn_checkpoint(source, msg);
      return std::nullopt;
    }
    if (ck.trials != spec.trials) {
      char msg[128];
      std::snprintf(msg, sizeof msg, "trial count mismatch (expected %llu, found %llu)",
                    static_cast<unsigned long long>(spec.trials),
                    static_cast<unsigned long long>(ck.trials));
      warn_checkpoint(source, msg);
      return std::nullopt;
    }
    if (ck.build_tag != checkpoint_build_tag()) {
      char msg[192];
      std::snprintf(msg, sizeof msg, "stale build tag (expected \"%s\", found \"%s\")",
                    checkpoint_build_tag().c_str(), ck.build_tag.c_str());
      warn_checkpoint(source, msg);
      return std::nullopt;
    }
    const std::uint64_t count = r.get_u64();
    ck.entries.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      CheckpointEntry e;
      e.trial = r.get_u64();
      if (e.trial >= ck.trials) {
        warn_checkpoint(source, "trial index out of range");
        return std::nullopt;
      }
      e.payload = r.get_str();
      ck.entries.push_back(std::move(e));
    }
    return ck;
  } catch (const CheckpointError&) {
    warn_checkpoint(source, "truncated");
    return std::nullopt;
  }
}

#ifdef LORE_CHECKPOINT_DISABLED

bool write_checkpoint(const std::string&, const CampaignCheckpoint&) { return false; }

std::optional<CampaignCheckpoint> load_checkpoint(const std::string&,
                                                  const CampaignSpec&) {
  return std::nullopt;
}

#else

bool write_checkpoint(const std::string& path, const CampaignCheckpoint& ck) {
  const std::string bytes = encode_checkpoint(ck);

  // Write to a sibling temp file and rename into place: a SIGKILL mid-write
  // leaves either the previous checkpoint or a stray .tmp — never a torn file
  // at `path`.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return false;
  bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::optional<CampaignCheckpoint> load_checkpoint(const std::string& path,
                                                  const CampaignSpec& spec) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return std::nullopt;  // no checkpoint yet: silent fresh start
  std::string bytes;
  char buf[1 << 16];
  for (std::size_t n; (n = std::fread(buf, 1, sizeof buf, f)) > 0;) bytes.append(buf, n);
  std::fclose(f);
  return decode_checkpoint(bytes, spec, path);
}

#endif  // LORE_CHECKPOINT_DISABLED

std::vector<TrialRange> shard_trial_ranges(std::size_t trials, std::size_t shard_count) {
  std::vector<TrialRange> out;
  if (trials == 0 || shard_count == 0) return out;
  if (shard_count > trials) shard_count = trials;
  out.reserve(shard_count);
  const std::size_t base = trials / shard_count;
  const std::size_t extra = trials % shard_count;
  std::size_t begin = 0;
  for (std::size_t s = 0; s < shard_count; ++s) {
    const std::size_t len = base + (s < extra ? 1 : 0);
    out.push_back({begin, begin + len});
    begin += len;
  }
  return out;
}

std::size_t merge_checkpoint_entries(CampaignCheckpoint& into,
                                     const CampaignCheckpoint& from,
                                     std::vector<std::uint8_t>& seen) {
  seen.resize(static_cast<std::size_t>(into.trials), 0);
  std::size_t accepted = 0;
  for (const auto& e : from.entries) {
    const auto i = static_cast<std::size_t>(e.trial);
    if (i >= into.trials || seen[i]) continue;
    seen[i] = 1;
    into.entries.push_back(e);
    ++accepted;
  }
  return accepted;
}

std::size_t merge_checkpoint_entries(CampaignCheckpoint& into,
                                     const CampaignCheckpoint& from) {
  std::vector<std::uint8_t> seen(static_cast<std::size_t>(into.trials), 0);
  for (const auto& e : into.entries)
    if (e.trial < into.trials) seen[static_cast<std::size_t>(e.trial)] = 1;
  return merge_checkpoint_entries(into, from, seen);
}

namespace campaign_detail {

CampaignCheckpoint run_campaign_shard_raw(const CampaignSpec& spec, TrialRange range,
                                          const RawTrialFn& trial) {
  CampaignCheckpoint ck;
  ck.identity = spec.identity_hash();
  ck.build_tag = checkpoint_build_tag();
  ck.trials = spec.trials;
  if (range.end > spec.trials) range.end = spec.trials;
  if (range.begin >= range.end) return ck;

  const std::size_t n = range.size();
  const bool obs_on = obs::kCompiledIn && obs::enabled();
  // Carry the caller's trace position (the worker's shard span) into the
  // parallel bodies so per-trial events land under the right span — in the
  // live ring AND the flight recorder, where they form the last-N record of
  // what this worker was doing if it dies mid-shard.
  const obs::TraceContext trace_ctx = obs::current_trace_context();
  ck.entries.resize(n);
  parallel_for(n, spec.threads, [&](std::size_t j) {
    obs::TraceContextScope trace_scope(trace_ctx);
    const std::size_t idx = range.begin + j;
    for (unsigned attempt = 0;; ++attempt) {
      if (attempt > 0) {
        std::this_thread::sleep_for(spec.retry_backoff * (1u << (attempt - 1)));
        LORE_OBS_EVENT(obs::EventKind::kTrialRetry, idx, attempt);
      }
      try {
        // Fresh stream per attempt, seeded from the *global* trial index —
        // the invariant that makes a sharded run merge bit-identical to a
        // single-process one.
        const double t0 = obs::TraceRecorder::now_us();
        Rng rng(trial_seed(spec.base_seed, idx));
        ck.entries[j] = {static_cast<std::uint64_t>(idx),
                         trial(idx, rng, CancelToken())};
        LORE_OBS_EVENT(obs::EventKind::kTrialCompleted, idx,
                       obs::TraceRecorder::now_us() - t0);
        // The fabric coordinator derives fleet throughput from scraping this
        // counter off each worker's /metrics endpoint.
        if (obs_on)
          obs::MetricsRegistry::global().counter("campaign.trials_completed").add(1);
        return;
      } catch (...) {
        LORE_OBS_EVENT(obs::EventKind::kTrialFailed, idx, attempt);
        if (attempt >= spec.max_retries) throw;  // shard fails as a unit
      }
    }
  });
  return ck;
}

RawResult run_campaign_raw(const CampaignSpec& spec, const RawTrialFn& trial) {
  using Clock = CancelToken::Clock;
  const auto t_start = Clock::now();
  const std::size_t n = spec.trials;

  RawResult res;
  res.payloads.resize(n);
  res.status.assign(n, TrialStatus::kSkipped);
  res.report.trials = n;

  const bool checkpointing =
      kCheckpointCompiledIn && !spec.checkpoint_path.empty() && spec.checkpoint_every > 0;

  // `done[i]` is the publication flag of slot i: the owning worker stores the
  // payload, then releases the flag; the checkpoint writer acquires it before
  // reading the slot. Resumed slots are published before workers start.
  std::unique_ptr<std::atomic<std::uint8_t>[]> done(new std::atomic<std::uint8_t>[n]);
  for (std::size_t i = 0; i < n; ++i) done[i].store(0, std::memory_order_relaxed);

  if (checkpointing) {
    if (auto ck = load_checkpoint(spec.checkpoint_path, spec)) {
      for (auto& e : ck->entries) {
        const auto i = static_cast<std::size_t>(e.trial);
        if (res.status[i] == TrialStatus::kOk) continue;  // duplicate entry
        res.payloads[i] = std::move(e.payload);
        res.status[i] = TrialStatus::kOk;
        done[i].store(1, std::memory_order_relaxed);
        ++res.report.resumed;
      }
      res.report.loaded_checkpoint = true;
    }
  }

  std::vector<std::size_t> missing;
  missing.reserve(n - res.report.resumed);
  for (std::size_t i = 0; i < n; ++i)
    if (res.status[i] != TrialStatus::kOk) missing.push_back(i);
  if (spec.max_trials_per_run && missing.size() > spec.max_trials_per_run)
    missing.resize(spec.max_trials_per_run);

  std::atomic<std::size_t> completed{res.report.resumed};
  std::atomic<std::size_t> newly_completed{0};
  std::atomic<std::size_t> retries{0}, timeout_attempts{0}, suppressed{0};
  std::atomic<std::size_t> checkpoints_written{0};
  std::atomic<std::size_t> since_checkpoint{0};
  std::mutex io_mu;    // serializes checkpoint writes
  std::mutex err_mu;   // guards first_error
  std::string first_error;

  const bool obs_on = obs::kCompiledIn && obs::enabled();
  if (obs_on) {
    obs::MetricsRegistry::global().counter("campaign.trials_resumed")
        .add(res.report.resumed);
    obs::MetricsRegistry::global().gauge("campaign.progress")
        .set(n ? static_cast<double>(res.report.resumed) / static_cast<double>(n) : 1.0);
  }

  // Snapshot every published slot into the checkpoint file. Runs concurrently
  // with trial execution: unpublished slots are simply absent from this
  // snapshot and appear in the next one.
  const auto write_snapshot = [&] {
    CampaignCheckpoint ck;
    ck.identity = spec.identity_hash();
    ck.build_tag = checkpoint_build_tag();
    ck.trials = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (done[i].load(std::memory_order_acquire) == 0) continue;
      ck.entries.push_back({static_cast<std::uint64_t>(i), res.payloads[i]});
    }
    const auto w0 = Clock::now();
    if (write_checkpoint(spec.checkpoint_path, ck)) {
      checkpoints_written.fetch_add(1, std::memory_order_relaxed);
      const double us =
          std::chrono::duration<double, std::micro>(Clock::now() - w0).count();
      LORE_OBS_EVENT(obs::EventKind::kCheckpointWritten, ck.entries.size(), us);
      if (obs_on) {
        auto& reg = obs::MetricsRegistry::global();
        reg.histogram("campaign.checkpoint_write_us").observe(us);
        reg.counter("campaign.checkpoints").add(1);
        // ETA from this run's own throughput (resumed trials cost nothing).
        const auto fresh = newly_completed.load(std::memory_order_relaxed);
        const auto total_done = completed.load(std::memory_order_relaxed);
        if (fresh > 0 && total_done < n) {
          const double elapsed_s =
              std::chrono::duration<double>(Clock::now() - t_start).count();
          reg.gauge("campaign.eta_s")
              .set(elapsed_s / static_cast<double>(fresh) *
                   static_cast<double>(n - total_done));
        }
      }
    }
  };

  // Annotate every trial event with the caller's ambient span (campaign or
  // scenario-stage span) across the thread hop into the pool.
  const obs::TraceContext trace_ctx = obs::current_trace_context();
  parallel_for(missing.size(), spec.threads, [&](std::size_t j) {
    obs::TraceContextScope trace_scope(trace_ctx);
    const std::size_t idx = missing[j];
    if (spec.overall_budget.count() > 0 && Clock::now() - t_start >= spec.overall_budget)
      return;  // stays kSkipped; a resume picks it up

    bool last_was_timeout = false;
    for (unsigned attempt = 0; attempt <= spec.max_retries; ++attempt) {
      if (attempt > 0) {
        retries.fetch_add(1, std::memory_order_relaxed);
        if (obs_on)
          obs::MetricsRegistry::global().counter("campaign.retries").add(1);
        LORE_OBS_EVENT(obs::EventKind::kTrialRetry, idx, attempt);
        std::this_thread::sleep_for(spec.retry_backoff * (1u << (attempt - 1)));
      }
      const CancelToken cancel =
          spec.trial_deadline.count() > 0
              ? CancelToken::with_deadline(Clock::now() + spec.trial_deadline)
              : CancelToken();
      const auto a0 = Clock::now();
      try {
        // A fresh stream per attempt: a retried trial replays the exact
        // stream of its first attempt, keeping resumed/retried campaigns
        // bit-identical to uninterrupted ones.
        Rng rng(trial_seed(spec.base_seed, idx));
        std::string payload = trial(idx, rng, cancel);
        res.payloads[idx] = std::move(payload);
        res.status[idx] = TrialStatus::kOk;
        done[idx].store(1, std::memory_order_release);
        completed.fetch_add(1, std::memory_order_relaxed);
        newly_completed.fetch_add(1, std::memory_order_relaxed);
        if (obs_on) {
          auto& reg = obs::MetricsRegistry::global();
          reg.counter("campaign.trials_completed").add(1);
          reg.gauge("campaign.progress")
              .set(static_cast<double>(completed.load(std::memory_order_relaxed)) /
                   static_cast<double>(n));
        }
        LORE_OBS_EVENT(
            obs::EventKind::kTrialCompleted, idx,
            (std::chrono::duration<double, std::micro>(Clock::now() - a0).count()));
        if (checkpointing &&
            since_checkpoint.fetch_add(1, std::memory_order_relaxed) + 1 >=
                spec.checkpoint_every) {
          since_checkpoint.store(0, std::memory_order_relaxed);
          // Only one writer at a time; if another write is in flight the next
          // interval catches this batch.
          if (io_mu.try_lock()) {
            write_snapshot();
            io_mu.unlock();
          }
        }
        return;
      } catch (const TrialTimeout&) {
        last_was_timeout = true;
        timeout_attempts.fetch_add(1, std::memory_order_relaxed);
        if (obs_on)
          obs::MetricsRegistry::global().counter("campaign.timeouts").add(1);
        LORE_OBS_EVENT(obs::EventKind::kTrialTimeout, idx, attempt);
      } catch (const std::exception& e) {
        last_was_timeout = false;
        suppressed.fetch_add(1, std::memory_order_relaxed);
        if (obs_on)
          obs::MetricsRegistry::global().counter("campaign.trial_failures").add(1);
        LORE_OBS_EVENT(obs::EventKind::kTrialFailed, idx, attempt);
        std::lock_guard lock(err_mu);
        if (first_error.empty()) first_error = e.what();
      } catch (...) {
        last_was_timeout = false;
        suppressed.fetch_add(1, std::memory_order_relaxed);
        if (obs_on)
          obs::MetricsRegistry::global().counter("campaign.trial_failures").add(1);
        LORE_OBS_EVENT(obs::EventKind::kTrialFailed, idx, attempt);
        std::lock_guard lock(err_mu);
        if (first_error.empty()) first_error = "unknown trial exception";
      }
    }
    res.status[idx] = last_was_timeout ? TrialStatus::kTimeout : TrialStatus::kFailed;
  });

  // Final snapshot so an interrupt between intervals loses nothing, and a
  // finished campaign's checkpoint replays instantly on the next invocation.
  if (checkpointing && newly_completed.load(std::memory_order_relaxed) > 0) {
    std::lock_guard lock(io_mu);
    write_snapshot();
  }

  auto& rep = res.report;
  for (const auto s : res.status) {
    switch (s) {
      case TrialStatus::kOk: break;
      case TrialStatus::kTimeout: ++rep.timeouts; break;
      case TrialStatus::kFailed: ++rep.failed; break;
      case TrialStatus::kSkipped: ++rep.skipped; break;
      case TrialStatus::kPruned: ++rep.pruned; break;  // reference engine never prunes
    }
  }
  rep.completed = completed.load(std::memory_order_relaxed);
  rep.retries = retries.load(std::memory_order_relaxed);
  rep.timeout_attempts = timeout_attempts.load(std::memory_order_relaxed);
  rep.suppressed_exceptions = suppressed.load(std::memory_order_relaxed);
  rep.checkpoints_written = checkpoints_written.load(std::memory_order_relaxed);
  rep.first_error = std::move(first_error);
  if (obs_on)
    obs::MetricsRegistry::global().gauge("campaign.progress")
        .set(n ? static_cast<double>(rep.completed) / static_cast<double>(n) : 1.0);
  return res;
}

}  // namespace campaign_detail
}  // namespace lore
