// Descriptive statistics and histogram utilities used by every Monte Carlo
// harness and bench in LORE.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace lore {

/// Streaming mean/variance/min/max (Welford). O(1) memory; safe to merge.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 for fewer than two samples).
  double variance() const;
  double stddev() const;
  /// Standard error of the mean.
  double sem() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch helpers over a span of samples.
double mean(std::span<const double> xs);
double variance(std::span<const double> xs);
double stddev(std::span<const double> xs);
/// Linear-interpolated quantile, q in [0, 1]. Copies and sorts internally.
double quantile(std::span<const double> xs, double q);
double median(std::span<const double> xs);
/// Pearson correlation coefficient; 0 if either side is constant.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to end bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add(std::span<const double> xs);

  std::size_t bins() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_[bin]; }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;
  /// Fraction of all samples in this bin (0 if histogram empty).
  double fraction(std::size_t bin) const;

  /// ASCII rendering, one row per bin, bar scaled to `width` chars.
  std::string render(std::size_t width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace lore
