// Runtime SIMD dispatch + AVX2 batch-kernel variants (DESIGN.md §11).
//
// The AVX2 functions are compiled with __attribute__((target("avx2"))) so
// the translation unit — and the rest of the binary — keeps the baseline
// ISA; they are only ever called after `best_dispatch()` has confirmed the
// host CPU supports AVX2. Every variant is proven bit-identical to its
// `kernels::scalar::` reference by the differential suite
// (tests/common/simd_kernels_test.cpp, ctest label `simd`).
#include "src/common/kernels.hpp"

#include <atomic>
#include <bit>
#include <cstdlib>

#if LORE_SIMD_COMPILED
#include <immintrin.h>
#endif

namespace lore::kernels {
namespace {

std::atomic<Dispatch> g_dispatch{Dispatch::kScalar};
std::atomic<bool> g_dispatch_init{false};

bool avx2_supported() {
#if LORE_SIMD_COMPILED
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

}  // namespace

const char* dispatch_name(Dispatch d) {
  switch (d) {
    case Dispatch::kScalar: return "scalar";
    case Dispatch::kAvx2: return "avx2";
  }
  return "?";
}

Dispatch best_dispatch() {
  const char* env = std::getenv("LORE_SIMD_SCALAR");
  if (env && *env && *env != '0') return Dispatch::kScalar;
  return avx2_supported() ? Dispatch::kAvx2 : Dispatch::kScalar;
}

Dispatch active_dispatch() {
  // Benign init race: concurrent first callers all compute the same
  // best_dispatch() value.
  if (!g_dispatch_init.load(std::memory_order_acquire)) {
    g_dispatch.store(best_dispatch(), std::memory_order_relaxed);
    g_dispatch_init.store(true, std::memory_order_release);
  }
  return g_dispatch.load(std::memory_order_relaxed);
}

void set_dispatch(Dispatch d) {
  if (d == Dispatch::kAvx2 && !avx2_supported()) d = Dispatch::kScalar;
  g_dispatch.store(d, std::memory_order_relaxed);
  g_dispatch_init.store(true, std::memory_order_release);
}

#if LORE_SIMD_COMPILED

namespace avx2 {
namespace {

/// 4-lane 64-bit multiply from 32x32->64 partial products (AVX2 has no
/// 64-bit multiply): lo(a)*lo(b) + ((lo(a)*hi(b) + hi(a)*lo(b)) << 32).
__attribute__((target("avx2"))) inline __m256i mul64(__m256i a, __m256i b) {
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(a_hi, b), _mm256_mul_epu32(a, b_hi));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

}  // namespace

__attribute__((target("avx2"))) void fill_trial_seeds(std::span<std::uint64_t> out,
                                                      std::uint64_t base_seed,
                                                      std::uint64_t first_index) {
  const __m256i base = _mm256_set1_epi64x(static_cast<long long>(base_seed));
  const __m256i c1 = _mm256_set1_epi64x(static_cast<long long>(0x9e3779b97f4a7c15ULL));
  const __m256i c2 = _mm256_set1_epi64x(static_cast<long long>(0xbf58476d1ce4e5b9ULL));
  const __m256i c3 = _mm256_set1_epi64x(static_cast<long long>(0x94d049bb133111ebULL));
  const __m256i four = _mm256_set1_epi64x(4);
  __m256i idx = _mm256_add_epi64(
      _mm256_set1_epi64x(static_cast<long long>(first_index)),
      _mm256_set_epi64x(3, 2, 1, 0));
  std::size_t i = 0;
  for (; i + 4 <= out.size(); i += 4) {
    __m256i z = _mm256_add_epi64(_mm256_xor_si256(base, idx), c1);
    z = mul64(_mm256_xor_si256(z, _mm256_srli_epi64(z, 30)), c2);
    z = mul64(_mm256_xor_si256(z, _mm256_srli_epi64(z, 27)), c3);
    z = _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out.data() + i), z);
    idx = _mm256_add_epi64(idx, four);
  }
  for (; i < out.size(); ++i) out[i] = scalar::trial_seed_at(base_seed, first_index + i);
}

__attribute__((target("avx2"))) std::size_t count_mismatch_u32(
    std::span<const std::uint32_t> a, std::span<const std::uint32_t> b) {
  assert(a.size() == b.size());
  std::size_t mismatches = 0;
  std::size_t i = 0;
  for (; i + 8 <= a.size(); i += 8) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.data() + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b.data() + i));
    const __m256i eq = _mm256_cmpeq_epi32(va, vb);
    const unsigned mask =
        static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(eq)));
    mismatches += 8 - static_cast<std::size_t>(std::popcount(mask & 0xffu));
  }
  for (; i < a.size(); ++i) mismatches += a[i] != b[i];
  return mismatches;
}

__attribute__((target("avx2"))) void copy_u32(std::span<std::uint32_t> dst,
                                              std::span<const std::uint32_t> src) {
  assert(dst.size() == src.size());
  std::size_t i = 0;
  for (; i + 8 <= dst.size(); i += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src.data() + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst.data() + i), v);
  }
  for (; i < dst.size(); ++i) dst[i] = src[i];
}

__attribute__((target("avx2"))) std::size_t count_equal_u8(
    std::span<const std::uint8_t> v, std::uint8_t value) {
  const __m256i needle = _mm256_set1_epi8(static_cast<char>(value));
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 32 <= v.size(); i += 32) {
    const __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v.data() + i));
    const unsigned mask =
        static_cast<unsigned>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(x, needle)));
    count += static_cast<std::size_t>(std::popcount(mask));
  }
  for (; i < v.size(); ++i) count += v[i] == value;
  return count;
}

}  // namespace avx2

#endif  // LORE_SIMD_COMPILED

}  // namespace lore::kernels
