// Runtime SIMD dispatch + AVX2 batch-kernel variants (DESIGN.md §11).
//
// The AVX2 functions are compiled with __attribute__((target("avx2"))) so
// the translation unit — and the rest of the binary — keeps the baseline
// ISA; they are only ever called after `best_dispatch()` has confirmed the
// host CPU supports AVX2. Every variant is proven bit-identical to its
// `kernels::scalar::` reference by the differential suite
// (tests/common/simd_kernels_test.cpp, ctest label `simd`).
#include "src/common/kernels.hpp"

#include <atomic>
#include <bit>
#include <cstdlib>

#if LORE_SIMD_COMPILED
#include <immintrin.h>
#endif

namespace lore::kernels {
namespace {

std::atomic<Dispatch> g_dispatch{Dispatch::kScalar};
std::atomic<bool> g_dispatch_init{false};

bool avx2_supported() {
#if LORE_SIMD_COMPILED
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

}  // namespace

const char* dispatch_name(Dispatch d) {
  switch (d) {
    case Dispatch::kScalar: return "scalar";
    case Dispatch::kAvx2: return "avx2";
  }
  return "?";
}

Dispatch best_dispatch() {
  const char* env = std::getenv("LORE_SIMD_SCALAR");
  if (env && *env && *env != '0') return Dispatch::kScalar;
  return avx2_supported() ? Dispatch::kAvx2 : Dispatch::kScalar;
}

Dispatch active_dispatch() {
  // Benign init race: concurrent first callers all compute the same
  // best_dispatch() value.
  if (!g_dispatch_init.load(std::memory_order_acquire)) {
    g_dispatch.store(best_dispatch(), std::memory_order_relaxed);
    g_dispatch_init.store(true, std::memory_order_release);
  }
  return g_dispatch.load(std::memory_order_relaxed);
}

void set_dispatch(Dispatch d) {
  if (d == Dispatch::kAvx2 && !avx2_supported()) d = Dispatch::kScalar;
  g_dispatch.store(d, std::memory_order_relaxed);
  g_dispatch_init.store(true, std::memory_order_release);
}

#if LORE_SIMD_COMPILED

namespace avx2 {
namespace {

/// 4-lane 64-bit multiply from 32x32->64 partial products (AVX2 has no
/// 64-bit multiply): lo(a)*lo(b) + ((lo(a)*hi(b) + hi(a)*lo(b)) << 32).
__attribute__((target("avx2"))) inline __m256i mul64(__m256i a, __m256i b) {
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(a_hi, b), _mm256_mul_epu32(a, b_hi));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

}  // namespace

__attribute__((target("avx2"))) void fill_trial_seeds(std::span<std::uint64_t> out,
                                                      std::uint64_t base_seed,
                                                      std::uint64_t first_index) {
  const __m256i base = _mm256_set1_epi64x(static_cast<long long>(base_seed));
  const __m256i c1 = _mm256_set1_epi64x(static_cast<long long>(0x9e3779b97f4a7c15ULL));
  const __m256i c2 = _mm256_set1_epi64x(static_cast<long long>(0xbf58476d1ce4e5b9ULL));
  const __m256i c3 = _mm256_set1_epi64x(static_cast<long long>(0x94d049bb133111ebULL));
  const __m256i four = _mm256_set1_epi64x(4);
  __m256i idx = _mm256_add_epi64(
      _mm256_set1_epi64x(static_cast<long long>(first_index)),
      _mm256_set_epi64x(3, 2, 1, 0));
  std::size_t i = 0;
  for (; i + 4 <= out.size(); i += 4) {
    __m256i z = _mm256_add_epi64(_mm256_xor_si256(base, idx), c1);
    z = mul64(_mm256_xor_si256(z, _mm256_srli_epi64(z, 30)), c2);
    z = mul64(_mm256_xor_si256(z, _mm256_srli_epi64(z, 27)), c3);
    z = _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out.data() + i), z);
    idx = _mm256_add_epi64(idx, four);
  }
  for (; i < out.size(); ++i) out[i] = scalar::trial_seed_at(base_seed, first_index + i);
}

__attribute__((target("avx2"))) std::size_t count_mismatch_u32(
    std::span<const std::uint32_t> a, std::span<const std::uint32_t> b) {
  assert(a.size() == b.size());
  std::size_t mismatches = 0;
  std::size_t i = 0;
  for (; i + 8 <= a.size(); i += 8) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.data() + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b.data() + i));
    const __m256i eq = _mm256_cmpeq_epi32(va, vb);
    const unsigned mask =
        static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(eq)));
    mismatches += 8 - static_cast<std::size_t>(std::popcount(mask & 0xffu));
  }
  for (; i < a.size(); ++i) mismatches += a[i] != b[i];
  return mismatches;
}

__attribute__((target("avx2"))) void copy_u32(std::span<std::uint32_t> dst,
                                              std::span<const std::uint32_t> src) {
  assert(dst.size() == src.size());
  std::size_t i = 0;
  for (; i + 8 <= dst.size(); i += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src.data() + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst.data() + i), v);
  }
  for (; i < dst.size(); ++i) dst[i] = src[i];
}

__attribute__((target("avx2"))) std::size_t count_equal_u8(
    std::span<const std::uint8_t> v, std::uint8_t value) {
  const __m256i needle = _mm256_set1_epi8(static_cast<char>(value));
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 32 <= v.size(); i += 32) {
    const __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v.data() + i));
    const unsigned mask =
        static_cast<unsigned>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(x, needle)));
    count += static_cast<std::size_t>(std::popcount(mask));
  }
  for (; i < v.size(); ++i) count += v[i] == value;
  return count;
}

// --- Batched ML inference kernels (DESIGN.md §13) --------------------------
//
// Vectorization is across panel lanes (4 independent rows per pass); each
// lane's accumulation stays feature-sequential in the reference order, and
// there is no FMA (explicit mul then add), so every result is bit-identical
// to kernels::scalar. No gathers anywhere: they measure ~3x slower than
// interleaved scalar loads on gather-mitigated Intel cores, which is also
// why the row-major dot/tree kernels have no AVX2 variant at all.

namespace {

/// Spill one block-accumulator to the valid lanes of `out`.
__attribute__((target("avx2"))) inline void store_l2_lanes(double* out, __m256d acc,
                                                           std::size_t lanes) {
  double tmp[kPanelLanes];
  _mm256_storeu_pd(tmp, acc);
  for (std::size_t l = 0; l < lanes; ++l) out[l] = tmp[l];
}

}  // namespace

__attribute__((target("avx2"))) void l2_sq_blocked(std::span<double> out, const double* q,
                                                   std::size_t qn,
                                                   std::span<const double> panel,
                                                   std::size_t rows, std::size_t cols) {
  assert(qn >= 1 && qn <= kPanelLanes && out.size() >= qn * rows &&
         panel.size() == panel_size(rows, cols));
  std::size_t base = 0;
  if (qn == kPanelLanes) {
    // Full query tile: two panel blocks x four queries = eight independent
    // accumulation chains in flight. A single chain is bound by the 4-cycle
    // vaddpd latency (one feature step per 4 cycles); eight chains keep the
    // FP ports saturated instead. Padding lanes are zero, so both blocks
    // always run full width and only the valid lanes are stored.
    const std::size_t padded = panel_rows_padded(rows);
    for (; base + 2 * kPanelLanes <= padded; base += 2 * kPanelLanes) {
      const double* b0 = panel.data() + base * cols;
      const double* b1 = b0 + kPanelLanes * cols;
      __m256d a00 = _mm256_setzero_pd(), a01 = _mm256_setzero_pd(),
              a02 = _mm256_setzero_pd(), a03 = _mm256_setzero_pd();
      __m256d a10 = _mm256_setzero_pd(), a11 = _mm256_setzero_pd(),
              a12 = _mm256_setzero_pd(), a13 = _mm256_setzero_pd();
      for (std::size_t c = 0; c < cols; ++c) {
        const __m256d v0 = _mm256_loadu_pd(b0 + c * kPanelLanes);
        const __m256d v1 = _mm256_loadu_pd(b1 + c * kPanelLanes);
        __m256d qb = _mm256_set1_pd(q[c]);
        __m256d d0 = _mm256_sub_pd(v0, qb), d1 = _mm256_sub_pd(v1, qb);
        a00 = _mm256_add_pd(a00, _mm256_mul_pd(d0, d0));
        a10 = _mm256_add_pd(a10, _mm256_mul_pd(d1, d1));
        qb = _mm256_set1_pd(q[cols + c]);
        d0 = _mm256_sub_pd(v0, qb);
        d1 = _mm256_sub_pd(v1, qb);
        a01 = _mm256_add_pd(a01, _mm256_mul_pd(d0, d0));
        a11 = _mm256_add_pd(a11, _mm256_mul_pd(d1, d1));
        qb = _mm256_set1_pd(q[2 * cols + c]);
        d0 = _mm256_sub_pd(v0, qb);
        d1 = _mm256_sub_pd(v1, qb);
        a02 = _mm256_add_pd(a02, _mm256_mul_pd(d0, d0));
        a12 = _mm256_add_pd(a12, _mm256_mul_pd(d1, d1));
        qb = _mm256_set1_pd(q[3 * cols + c]);
        d0 = _mm256_sub_pd(v0, qb);
        d1 = _mm256_sub_pd(v1, qb);
        a03 = _mm256_add_pd(a03, _mm256_mul_pd(d0, d0));
        a13 = _mm256_add_pd(a13, _mm256_mul_pd(d1, d1));
      }
      const std::size_t l0 = std::min(kPanelLanes, rows - base);
      const std::size_t l1 =
          rows > base + kPanelLanes ? std::min(kPanelLanes, rows - base - kPanelLanes) : 0;
      store_l2_lanes(out.data() + base, a00, l0);
      store_l2_lanes(out.data() + rows + base, a01, l0);
      store_l2_lanes(out.data() + 2 * rows + base, a02, l0);
      store_l2_lanes(out.data() + 3 * rows + base, a03, l0);
      if (l1 != 0) {
        store_l2_lanes(out.data() + base + kPanelLanes, a10, l1);
        store_l2_lanes(out.data() + rows + base + kPanelLanes, a11, l1);
        store_l2_lanes(out.data() + 2 * rows + base + kPanelLanes, a12, l1);
        store_l2_lanes(out.data() + 3 * rows + base + kPanelLanes, a13, l1);
      }
    }
  }
  for (; base < rows; base += kPanelLanes) {
    const double* block = panel.data() + (base / kPanelLanes) * kPanelLanes * cols;
    // One accumulator per query; the panel block is loaded once per feature
    // and reused by every query in the tile.
    __m256d acc[kPanelLanes] = {_mm256_setzero_pd(), _mm256_setzero_pd(),
                                _mm256_setzero_pd(), _mm256_setzero_pd()};
    for (std::size_t c = 0; c < cols; ++c) {
      const __m256d bv = _mm256_loadu_pd(block + c * kPanelLanes);
      for (std::size_t qi = 0; qi < qn; ++qi) {
        const __m256d d = _mm256_sub_pd(bv, _mm256_set1_pd(q[qi * cols + c]));
        acc[qi] = _mm256_add_pd(acc[qi], _mm256_mul_pd(d, d));
      }
    }
    const std::size_t lanes = std::min(kPanelLanes, rows - base);
    for (std::size_t qi = 0; qi < qn; ++qi)
      store_l2_lanes(out.data() + qi * rows + base, acc[qi], lanes);
  }
}

__attribute__((target("avx2"))) void top_k_select(std::span<const double> values,
                                                  std::span<std::uint32_t> out_idx) {
  const std::size_t k = out_idx.size();
  assert(k > 0 && k <= values.size());
  std::size_t filled = 0;
  // Insertion under the (value, index) total order — identical rule to the
  // scalar reference, so both produce the same unique result.
  const auto insert = [&](std::size_t idx) {
    const double v = values[idx];
    if (filled == k && !(v < values[out_idx[k - 1]])) return;
    std::size_t pos = filled < k ? filled++ : k - 1;
    while (pos > 0 && v < values[out_idx[pos - 1]]) {
      out_idx[pos] = out_idx[pos - 1];
      --pos;
    }
    out_idx[pos] = static_cast<std::uint32_t>(idx);
  };
  std::size_t i = 0;
  for (; i < values.size() && filled < k; ++i) insert(i);
  // Steady state: most candidates lose to the current k-th best, so scan 4 at
  // a time and only fall into the insertion path when a lane beats it.
  for (; i + 4 <= values.size(); i += 4) {
    const __m256d v = _mm256_loadu_pd(values.data() + i);
    const __m256d worst = _mm256_set1_pd(values[out_idx[k - 1]]);
    if (_mm256_movemask_pd(_mm256_cmp_pd(v, worst, _CMP_LT_OQ)) == 0) continue;
    for (std::size_t l = 0; l < 4; ++l) insert(i + l);
  }
  for (; i < values.size(); ++i) insert(i);
}

}  // namespace avx2

#endif  // LORE_SIMD_COMPILED

}  // namespace lore::kernels
