// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every stochastic component in LORE (fault injectors, Monte Carlo harnesses,
// ML weight initialization, workload generators) takes an explicit Rng so that
// experiments are reproducible from a single seed and independent streams can
// be split without correlation.
#pragma once

#include <cstdint>
#include <vector>

namespace lore {

/// xoshiro256** by Blackman & Vigna — fast, high-quality, 256-bit state.
/// Seeded through splitmix64 so that nearby seeds give unrelated streams.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Marsaglia polar method (cached spare).
  double normal();
  /// Normal with given mean / stddev.
  double normal(double mean, double stddev);
  /// Bernoulli trial.
  bool bernoulli(double p);
  /// Exponential with given rate lambda (> 0).
  double exponential(double lambda);
  /// Geometric: number of failures before first success, success prob p in (0,1].
  std::uint64_t geometric(double p);
  /// Poisson with mean lambda (inversion for small, normal approx for large).
  std::uint64_t poisson(double lambda);
  /// Weibull(shape k, scale lambda).
  double weibull(double shape, double scale);
  /// Lognormal with given log-mean and log-stddev.
  double lognormal(double mu, double sigma);

  /// Derive an independent child stream (for per-worker / per-trial streams).
  Rng split();

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Sample k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

 private:
  std::uint64_t s_[4]{};
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace lore
