#include "src/common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace lore {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::sem() const {
  return n_ > 1 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double quantile(std::span<const double> xs, double q) {
  assert(q >= 0.0 && q <= 1.0);
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double pearson(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs), my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx, dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  bin = std::clamp<std::ptrdiff_t>(bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::add(std::span<const double> xs) {
  for (double x : xs) add(x);
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin + 1); }

double Histogram::fraction(std::size_t bin) const {
  return total_ ? static_cast<double>(counts_[bin]) / static_cast<double>(total_) : 0.0;
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar = counts_[b] * width / peak;
    os << "[";
    os.precision(4);
    os << bin_lo(b) << ", " << bin_hi(b) << ") ";
    os << std::string(bar, '#') << " " << counts_[b] << "\n";
  }
  return os.str();
}

}  // namespace lore
