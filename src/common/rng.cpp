#include "src/common/rng.hpp"

#include <cassert>
#include <cmath>

namespace lore {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  has_spare_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  assert(n > 0);
  // Lemire's nearly-divisionless bounded sampling.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::exponential(double lambda) {
  assert(lambda > 0.0);
  return -std::log1p(-uniform()) / lambda;
}

std::uint64_t Rng::geometric(double p) {
  assert(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  // Inversion: floor(log(U) / log(1-p)). Clamp before the cast: for tiny p
  // the quotient can exceed the uint64 range (the cast would be UB).
  const double u = 1.0 - uniform();  // in (0, 1]
  const double n = std::floor(std::log(u) / std::log1p(-p));
  constexpr double kMax = 9.0e18;
  return n >= kMax ? static_cast<std::uint64_t>(kMax) : static_cast<std::uint64_t>(n);
}

std::uint64_t Rng::poisson(double lambda) {
  assert(lambda >= 0.0);
  if (lambda <= 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth's multiplication method.
    const double limit = std::exp(-lambda);
    double prod = uniform();
    std::uint64_t n = 0;
    while (prod > limit) {
      prod *= uniform();
      ++n;
    }
    return n;
  }
  // Normal approximation with continuity correction for large lambda.
  const double x = normal(lambda, std::sqrt(lambda));
  return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

double Rng::weibull(double shape, double scale) {
  assert(shape > 0.0 && scale > 0.0);
  return scale * std::pow(-std::log1p(-uniform()), 1.0 / shape);
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

Rng Rng::split() {
  // Two draws feed a fresh splitmix seed: child stream is decorrelated.
  return Rng(next_u64() ^ rotl(next_u64(), 32));
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  assert(k <= n);
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  // Partial Fisher-Yates: first k positions become the sample.
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(uniform_index(n - i));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

}  // namespace lore
