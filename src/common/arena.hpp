// Thread-local bump allocator for the campaign trial hot path.
//
// Every batch-executed trial needs short-lived scratch (per-chunk seed
// buffers, structure-of-arrays site columns, undo logs). Allocating that from
// the heap per trial is exactly the overhead the batch engine exists to
// remove, so the hot path draws it from an `Arena` instead: a chain of
// malloc'd blocks handed out by pointer bump. `reset()` rewinds the cursor
// but keeps every block, so after the first chunk of a campaign has warmed
// the arena up, the steady state does **zero** heap traffic — allocation is
// a pointer add, deallocation is free.
//
// Guarantees:
//   * `allocate(bytes, align)` returns storage aligned to `align` (any power
//     of two up to `kMaxAlign`); `alloc<T>(n)` aligns to alignof(T).
//   * Allocation sequences replay identically after `reset()`: the k-th
//     allocation of one epoch returns the same address as the k-th
//     allocation of the previous epoch when the size/align sequence matches
//     (blocks are reused in order). Trial scratch therefore stays cache-hot
//     across trials.
//   * `high_water()` tracks the largest in-use byte count (including
//     alignment padding) ever reached; each new maximum is published to the
//     obs gauge `arena.bytes_high_water` (max over all arenas) so a long
//     campaign's scratch footprint is observable.
//   * `Arena::for_thread()` returns this thread's arena: no locks, no false
//     sharing, and TSan-clean by construction (see tests/common/arena_test).
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <span>
#include <vector>

namespace lore {

class Arena {
 public:
  /// Largest alignment `allocate` supports (cache-line).
  static constexpr std::size_t kMaxAlign = 64;

  /// `first_block` is the size of the block allocated on first use; later
  /// blocks double until `kMaxBlock`.
  explicit Arena(std::size_t first_block = 64 * 1024);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Aligned raw storage. `align` must be a power of two <= kMaxAlign.
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t));

  /// `n` default-constructible Ts (trivially destructible: the arena never
  /// runs destructors). Value-initialized when `zeroed`.
  template <typename T>
  std::span<T> alloc(std::size_t n, bool zeroed = false) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage is reclaimed without running destructors");
    T* p = static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
    if (zeroed)
      for (std::size_t i = 0; i < n; ++i) p[i] = T{};
    return {p, n};
  }

  /// Rewind to empty, keeping every block for reuse. Publishes a new
  /// high-water mark to obs if this epoch set one.
  void reset();

  /// Bytes handed out (including alignment padding) since the last reset.
  std::size_t used() const { return used_; }
  /// Max `used()` ever observed (updated continuously, not just at reset).
  std::size_t high_water() const { return high_water_; }
  /// Total bytes owned across all blocks.
  std::size_t capacity() const;
  /// Number of blocks owned (stable once the arena has warmed up).
  std::size_t block_count() const { return blocks_.size(); }

  /// This thread's arena (created on first use, freed at thread exit).
  static Arena& for_thread();

 private:
  struct Block {
    char* data = nullptr;
    std::size_t size = 0;
  };

  static constexpr std::size_t kMaxBlock = 8 * 1024 * 1024;

  void publish_high_water();

  std::vector<Block> blocks_;
  std::size_t first_block_;
  std::size_t block_index_ = 0;  // block currently being bumped
  std::size_t offset_ = 0;       // bump cursor within blocks_[block_index_]
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
  std::size_t published_high_water_ = 0;
};

/// RAII epoch: resets `arena` on scope exit, so a chunk body can carve any
/// scratch it likes and hand the memory back wholesale.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena) : arena_(arena) {}
  ~ArenaScope() { arena_.reset(); }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena& arena_;
};

}  // namespace lore
