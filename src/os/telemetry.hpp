// Large-scale error-log mining (Sec. III-B2, [22],[23]): production systems
// accumulate months of node telemetry (temperature, utilization, corrected-
// error counts); gradient-boosted trees mine the traces to predict which
// nodes will fail soon, and unsupervised clustering surfaces the recurring
// error modes. LORE generates the telemetry corpus with a hidden
// degradation process (DESIGN.md substitution #4) and runs both analyses.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/rng.hpp"
#include "src/ml/dataset.hpp"

namespace lore::os {

/// One node-epoch telemetry record.
struct TelemetryRecord {
  std::size_t node = 0;
  std::size_t epoch = 0;
  double temperature_k = 330.0;
  double utilization = 0.5;
  double power_w = 100.0;
  /// Corrected (single-bit ECC) errors this epoch — the early symptom.
  std::uint32_t corrected_errors = 0;
  /// Uncorrected error event this epoch (the failure being predicted).
  bool failure = false;
};

struct FleetConfig {
  std::size_t nodes = 48;
  std::size_t epochs = 200;
  /// Fraction of nodes carrying a latent defect that degrades over time.
  double defective_fraction = 0.25;
  /// Baseline corrected-error rate per epoch for healthy nodes.
  double healthy_ce_rate = 0.3;
  std::uint64_t seed = 103;
};

/// Generate the fleet trace: defective nodes heat up under load, their
/// corrected-error rate grows with an ageing factor, and uncorrected
/// failures fire with probability rising in (temperature, CE history).
std::vector<TelemetryRecord> generate_fleet_telemetry(const FleetConfig& cfg);

/// Feature dimension of the sliding-window failure predictor.
inline constexpr std::size_t kTelemetryFeatureDim = 7;

/// Features summarizing a node's trailing `window` epochs ending at `epoch`:
/// mean/max temperature, mean utilization, CE total, CE trend, power mean,
/// epochs observed.
std::vector<double> telemetry_features(const std::vector<TelemetryRecord>& trace,
                                       std::size_t node, std::size_t epoch,
                                       std::size_t window);

/// Build the prediction dataset: features at epoch e, label = node suffers an
/// uncorrected failure within the next `horizon` epochs. Records within
/// `window` of the trace start are skipped.
ml::Dataset failure_prediction_dataset(const std::vector<TelemetryRecord>& trace,
                                       std::size_t window, std::size_t horizon);

}  // namespace lore::os
