#include "src/os/sim.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/common/stats.hpp"

namespace lore::os {

SystemSimulator::SystemSimulator(Platform platform, TaskSet tasks,
                                 std::vector<std::size_t> task_to_core, SimConfig cfg)
    : platform_(std::move(platform)),
      tasks_(std::move(tasks)),
      task_to_core_(std::move(task_to_core)),
      cfg_(cfg) {
  assert(task_to_core_.size() == tasks_.size());
  for (auto c : task_to_core_) {
    assert(c < platform_.num_cores());
    (void)c;
  }
}

SimResult SystemSimulator::run(Governor* governor) {
  lore::Rng rng(cfg_.seed);
  SerModel ser(cfg_.ser);
  SimResult result;

  const std::size_t n_cores = platform_.num_cores();
  std::vector<std::vector<Job>> queues(n_cores);
  std::vector<double> next_release(tasks_.size(), 0.0);
  std::vector<double> utilization(n_cores, 0.0);
  std::vector<double> busy_ms(n_cores, 0.0);
  lore::RunningStats temp_stats;
  std::vector<lore::RunningStats> core_temp(n_cores);
  std::vector<double> core_busy_total(n_cores, 0.0);
  MwtfAccumulator mwtf;

  SystemStatus status;
  status.core_utilization.assign(n_cores, 0.0);
  status.core_temperature_k.assign(n_cores, 0.0);
  double last_control_ms = -1e9;
  std::size_t misses_epoch = 0, faults_epoch = 0;

  const double tick = cfg_.tick_ms;
  for (double now = 0.0; now < cfg_.duration_ms; now += tick) {
    // Release jobs.
    for (std::size_t t = 0; t < tasks_.size(); ++t) {
      while (next_release[t] <= now) {
        Job job;
        job.task = t;
        job.release_ms = next_release[t];
        job.abs_deadline_ms = next_release[t] + tasks_[t].deadline_ms;
        // Work in reference gigacycles: wcet_ms at the reference core's max
        // frequency -> wcet_s * f_GHz gigacycles.
        job.remaining_gcycles = tasks_[t].wcet_ms * 1e-3 * platform_.max_freq_ghz();
        job.executions_left = tasks_[t].replicas;
        queues[task_to_core_[t]].push_back(job);
        ++result.jobs_released;
        next_release[t] += tasks_[t].period_ms;
      }
    }

    // Governor control epoch.
    if (governor != nullptr && now - last_control_ms >= cfg_.control_period_ms) {
      for (std::size_t c = 0; c < n_cores; ++c) {
        status.core_utilization[c] =
            cfg_.control_period_ms > 0.0
                ? std::min(1.0, busy_ms[c] / cfg_.control_period_ms)
                : 0.0;
        status.core_temperature_k[c] = platform_.core(c).temperature_k;
        busy_ms[c] = 0.0;
      }
      status.time_ms = now;
      status.recent_misses = misses_epoch;
      status.recent_faults = faults_epoch;
      misses_epoch = 0;
      faults_epoch = 0;
      governor->control(platform_, status);
      last_control_ms = now;
    }

    // Execute one tick per core under EDF.
    for (std::size_t c = 0; c < n_cores; ++c) {
      auto& q = queues[c];
      // Drop jobs past their deadline.
      for (auto it = q.begin(); it != q.end();) {
        if (now >= it->abs_deadline_ms && it->remaining_gcycles > 0.0) {
          ++result.deadline_misses;
          ++misses_epoch;
          it = q.erase(it);
        } else {
          ++it;
        }
      }
      if (q.empty()) {
        utilization[c] = 0.0;
        continue;
      }
      // Wake-on-demand: a sleeping/idle-parked core with pending work
      // transitions back to active, losing this tick to the wake latency.
      if (platform_.core(c).power_state != PowerState::kActive) {
        platform_.set_power_state(c, PowerState::kActive);
        ++result.core_wakeups;
        utilization[c] = 0.0;
        continue;
      }
      // EDF: earliest absolute deadline first.
      auto job_it = std::min_element(q.begin(), q.end(), [](const Job& a, const Job& b) {
        return a.abs_deadline_ms < b.abs_deadline_ms;
      });
      Job& job = *job_it;
      const double capacity = platform_.capacity_gops(c);  // gcycles per second
      const double work = capacity * tick * 1e-3;
      const double used_fraction =
          work > 0.0 ? std::min(1.0, job.remaining_gcycles / work) : 0.0;
      job.remaining_gcycles -= work;
      utilization[c] = used_fraction;
      busy_ms[c] += used_fraction * tick;
      core_busy_total[c] += used_fraction * tick;

      // Soft error sampling over the executed slice.
      const auto& level = platform_.ladder()[platform_.core(c).vf_index];
      const double avf = platform_.core(c).type.avf_factor * tasks_[job.task].avf;
      const double p_fault =
          ser.failure_probability(used_fraction * tick * 1e-3, avf, level, platform_.ladder());
      if (used_fraction > 0.0 && rng.bernoulli(p_fault)) {
        ++result.soft_errors;
        ++faults_epoch;
        job.corrupted = true;
      }

      if (job.remaining_gcycles <= 0.0) {
        // One execution (replica) finished.
        if (job.corrupted && job.executions_left > 1) {
          // Replica comparison catches the error: re-execute.
          ++result.masked_faults;
          --job.executions_left;
          job.corrupted = false;
          job.remaining_gcycles =
              tasks_[job.task].wcet_ms * 1e-3 * platform_.max_freq_ghz();
        } else {
          ++result.jobs_completed;
          if (job.corrupted) ++result.sdc_failures;
          const double work_units = tasks_[job.task].wcet_ms;
          mwtf.add(work_units, job.corrupted ? 1.0 : 0.0);
          q.erase(job_it);
        }
      }
    }

    result.energy_j += platform_.step(tick * 1e-3, utilization);
    for (std::size_t c = 0; c < n_cores; ++c) {
      temp_stats.add(platform_.core(c).temperature_k);
      core_temp[c].add(platform_.core(c).temperature_k);
    }
  }

  result.peak_temperature_k = 0.0;
  for (std::size_t c = 0; c < n_cores; ++c)
    result.peak_temperature_k =
        std::max(result.peak_temperature_k, platform_.core(c).peak_temperature_k);
  result.avg_temperature_k = temp_stats.mean();
  result.mwtf = mwtf.mwtf();

  // Lifetime: evaluate the wear-out mechanisms per core at its average
  // operating condition; series system (sum of rates).
  const auto mechanisms = device::standard_mechanisms();
  double rate = 0.0;
  for (std::size_t c = 0; c < n_cores; ++c) {
    const auto& core = platform_.core(c);
    device::LifetimeCondition cond;
    cond.temperature = core_temp[c].mean();
    cond.vdd = platform_.ladder()[core.vf_index].voltage;
    cond.current_density =
        0.5 + core_busy_total[c] / std::max(1.0, cfg_.duration_ms);
    cond.thermal_cycle_amplitude =
        std::max(1.0, core.peak_temperature_k - core.min_temperature_k);
    cond.thermal_cycles_per_day = 500.0;  // embedded duty cycling
    cond.duty_cycle = std::min(1.0, core_busy_total[c] / cfg_.duration_ms + 0.05);
    cond.toggle_rate_ghz = platform_.ladder()[core.vf_index].freq_ghz *
                           cond.duty_cycle;
    rate += 1.0 / device::combined_mttf_years(mechanisms, cond);
  }
  result.mttf_years = rate > 0.0 ? 1.0 / rate : 1e9;
  if (governor != nullptr) governor->end_episode();
  return result;
}

void StaticGovernor::control(Platform& platform, const SystemStatus& status) {
  (void)status;
  for (std::size_t c = 0; c < platform.num_cores(); ++c) platform.set_vf(c, vf_index_);
}

void TimeoutDpmGovernor::control(Platform& platform, const SystemStatus& status) {
  if (inner_ != nullptr) inner_->control(platform, status);
  if (idle_epochs_.size() != platform.num_cores())
    idle_epochs_.assign(platform.num_cores(), 0);
  for (std::size_t c = 0; c < platform.num_cores(); ++c) {
    if (status.core_utilization[c] <= 1e-9) {
      if (++idle_epochs_[c] >= idle_threshold_ &&
          platform.core(c).power_state == PowerState::kActive)
        platform.set_power_state(c, PowerState::kSleep);
    } else {
      idle_epochs_[c] = 0;
    }
  }
}

void TimeoutDpmGovernor::end_episode() {
  if (inner_ != nullptr) inner_->end_episode();
  idle_epochs_.clear();
}

void OndemandGovernor::control(Platform& platform, const SystemStatus& status) {
  for (std::size_t c = 0; c < platform.num_cores(); ++c) {
    const double u = status.core_utilization[c];
    std::size_t vf = platform.core(c).vf_index;
    if (u > up_ && vf + 1 < platform.ladder().size()) ++vf;
    else if (u < down_ && vf > 0) --vf;
    platform.set_vf(c, vf);
  }
}

}  // namespace lore::os
