#include "src/os/platform.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lore::os {

std::vector<VfLevel> default_vf_ladder() {
  return {{0.60, 0.4}, {0.70, 0.8}, {0.80, 1.2}, {0.90, 1.6}, {1.00, 2.0}};
}

CoreType make_big_core() { return CoreType{}; }

CoreType make_little_core() {
  CoreType t;
  t.name = "little";
  t.perf_factor = 0.45;
  t.ceff_nf = 0.35;
  t.leakage_ref_w = 0.05;
  t.avf_factor = 0.55;  // smaller state, less exposure
  t.rth_k_per_w = 32.0;
  t.thermal_tau_s = 0.05;
  return t;
}

Platform::Platform(std::vector<CoreType> cores, PlatformConfig cfg) : cfg_(std::move(cfg)) {
  assert(!cores.empty() && !cfg_.ladder.empty());
  cores_.reserve(cores.size());
  for (auto& type : cores) {
    Core c;
    c.type = std::move(type);
    c.temperature_k = cfg_.ambient_k;
    c.peak_temperature_k = cfg_.ambient_k;
    c.min_temperature_k = cfg_.ambient_k;
    cores_.push_back(std::move(c));
  }
}

void Platform::set_vf(std::size_t core, std::size_t vf_index) {
  assert(core < cores_.size() && vf_index < cfg_.ladder.size());
  cores_[core].vf_index = vf_index;
}

void Platform::set_power_state(std::size_t core, PowerState state) {
  assert(core < cores_.size());
  cores_[core].power_state = state;
}

double Platform::core_power_w(std::size_t core, double utilization) const {
  assert(core < cores_.size());
  const Core& c = cores_[core];
  if (c.power_state == PowerState::kOff) return 0.0;
  const VfLevel& vf = cfg_.ladder[c.vf_index];
  // Leakage: exponential in voltage, super-linear in temperature.
  const double leak = c.type.leakage_ref_w * std::exp(3.0 * (vf.voltage - 0.8)) *
                      std::exp(0.012 * (c.temperature_k - 330.0));
  switch (c.power_state) {
    case PowerState::kSleep: return 0.1 * leak;
    case PowerState::kIdle: return leak;
    case PowerState::kActive: {
      const double dynamic = c.type.ceff_nf * vf.voltage * vf.voltage * vf.freq_ghz *
                             std::clamp(utilization, 0.0, 1.0);
      return dynamic + leak;
    }
    case PowerState::kOff: return 0.0;
  }
  return 0.0;
}

double Platform::step(double dt_s, const std::vector<double>& utilization) {
  assert(utilization.size() == cores_.size() && dt_s > 0.0);
  double energy = 0.0;
  std::vector<double> new_temp(cores_.size());
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    Core& c = cores_[i];
    const double power = core_power_w(i, utilization[i]);
    energy += power * dt_s;
    // Lumped RC toward the steady-state temperature at this power.
    const double t_target = cfg_.ambient_k + power * c.type.rth_k_per_w;
    const double alpha = 1.0 - std::exp(-dt_s / c.type.thermal_tau_s);
    double t = c.temperature_k + alpha * (t_target - c.temperature_k);
    // Neighbour coupling (linear chain layout).
    double coupling = 0.0;
    if (i > 0) coupling += cores_[i - 1].temperature_k - c.temperature_k;
    if (i + 1 < cores_.size()) coupling += cores_[i + 1].temperature_k - c.temperature_k;
    t += cfg_.neighbour_coupling * alpha * coupling;
    new_temp[i] = t;
  }
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    Core& c = cores_[i];
    c.temperature_k = new_temp[i];
    c.peak_temperature_k = std::max(c.peak_temperature_k, new_temp[i]);
    c.min_temperature_k = std::min(c.min_temperature_k, new_temp[i]);
    c.utilization = utilization[i];
  }
  return energy;
}

double Platform::capacity_gops(std::size_t core) const {
  assert(core < cores_.size());
  const Core& c = cores_[core];
  if (c.power_state != PowerState::kActive) return 0.0;
  return cfg_.ladder[c.vf_index].freq_ghz * c.type.perf_factor;
}

double Platform::max_freq_ghz() const {
  double hi = 0.0;
  for (const auto& vf : cfg_.ladder) hi = std::max(hi, vf.freq_ghz);
  return hi;
}

}  // namespace lore::os
