// Soft-error-rate model (Sec. IV): lowering V-f levels saves energy but
// raises the transient-fault rate exponentially — the classic trade-off the
// paper's DVFS discussion revolves around — plus the derived reliability
// metrics: functional reliability of a task execution and mean workload to
// failure (MWTF, [2]).
#pragma once

#include <cstddef>

#include "src/common/rng.hpp"
#include "src/ml/mlp.hpp"
#include "src/os/platform.hpp"

namespace lore::os {

struct SerParams {
  /// Raw SER at the highest V-f level (faults per second, architectural).
  double lambda0_per_s = 1e-5;
  /// Exponential sensitivity: each full swing from max to min frequency
  /// multiplies the rate by 10^d.
  double d_exponent = 3.0;
};

class SerModel {
 public:
  explicit SerModel(SerParams params = {}) : p_(params) {}

  /// Raw fault rate at a V-f level (per second), given the ladder's range.
  /// Classic Zhu/Aydin model: lambda(f) = lambda0 * 10^(d*(1-fn)/(1-fn_min)).
  double rate_per_s(const VfLevel& level, const std::vector<VfLevel>& ladder) const;

  /// Probability that a task executing for `exec_s` seconds on a core at the
  /// given level and AVF suffers an uncorrected soft error.
  double failure_probability(double exec_s, double avf, const VfLevel& level,
                             const std::vector<VfLevel>& ladder) const;

  /// Functional reliability of the execution (1 - failure probability).
  double reliability(double exec_s, double avf, const VfLevel& level,
                     const std::vector<VfLevel>& ladder) const {
    return 1.0 - failure_probability(exec_s, avf, level, ladder);
  }

 private:
  SerParams p_;
};

/// Learned SER estimator ([43],[1]: "a neural network can be trained for
/// quick and accurate SER estimation"): an MLP learns log-rate as a function
/// of (voltage, frequency) from samples of the physical model, standing in
/// for a model trained on radiation-test data.
struct LearnedSerConfig {
  std::size_t samples = 400;
  ml::MlpConfig mlp{.hidden = {16, 16}, .epochs = 250};
  std::uint64_t seed = 113;
};

class LearnedSerModel {
 public:
  using Config = LearnedSerConfig;

  explicit LearnedSerModel(Config cfg = {}) : cfg_(cfg) {}

  /// Fit against the ground-truth model over the ladder's V-f envelope.
  void train(const SerModel& truth, const std::vector<VfLevel>& ladder, lore::Rng& rng);
  bool trained() const { return trained_; }

  /// Predicted raw fault rate (per second) at an operating point.
  double rate_per_s(const VfLevel& level) const;

  /// Mean relative error against the truth over random operating points.
  double validation_error(const SerModel& truth, const std::vector<VfLevel>& ladder,
                          std::size_t samples, std::uint64_t seed) const;

 private:
  Config cfg_;
  ml::MlpRegressor model_{ml::MlpConfig{}};
  bool trained_ = false;
};

/// Mean workload to failure: work units completed per expected failure.
/// Computed from accumulated (work, expected-failure) statistics.
struct MwtfAccumulator {
  double work_done = 0.0;
  double expected_failures = 0.0;

  void add(double work, double failure_probability) {
    work_done += work;
    expected_failures += failure_probability;
  }
  double mwtf() const {
    return expected_failures > 0.0 ? work_done / expected_failures : 1e18;
  }
};

}  // namespace lore::os
