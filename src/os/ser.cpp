#include "src/os/ser.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lore::os {

double SerModel::rate_per_s(const VfLevel& level, const std::vector<VfLevel>& ladder) const {
  assert(!ladder.empty());
  double f_min = ladder.front().freq_ghz, f_max = ladder.front().freq_ghz;
  for (const auto& vf : ladder) {
    f_min = std::min(f_min, vf.freq_ghz);
    f_max = std::max(f_max, vf.freq_ghz);
  }
  assert(f_max > 0.0);
  const double fn = level.freq_ghz / f_max;
  const double fn_min = f_min / f_max;
  if (fn_min >= 1.0) return p_.lambda0_per_s;
  const double exponent = p_.d_exponent * (1.0 - fn) / (1.0 - fn_min);
  return p_.lambda0_per_s * std::pow(10.0, exponent);
}

double SerModel::failure_probability(double exec_s, double avf, const VfLevel& level,
                                     const std::vector<VfLevel>& ladder) const {
  assert(exec_s >= 0.0 && avf >= 0.0);
  const double lambda = rate_per_s(level, ladder) * avf;
  return 1.0 - std::exp(-lambda * exec_s);
}

void LearnedSerModel::train(const SerModel& truth, const std::vector<VfLevel>& ladder,
                            lore::Rng& rng) {
  assert(!ladder.empty());
  double v_lo = ladder.front().voltage, v_hi = v_lo;
  double f_lo = ladder.front().freq_ghz, f_hi = f_lo;
  for (const auto& vf : ladder) {
    v_lo = std::min(v_lo, vf.voltage);
    v_hi = std::max(v_hi, vf.voltage);
    f_lo = std::min(f_lo, vf.freq_ghz);
    f_hi = std::max(f_hi, vf.freq_ghz);
  }
  ml::Matrix x;
  std::vector<double> y;
  for (std::size_t s = 0; s < cfg_.samples; ++s) {
    VfLevel level{rng.uniform(v_lo, v_hi), rng.uniform(f_lo, f_hi)};
    const double row[] = {level.voltage, level.freq_ghz};
    x.push_row(row);
    y.push_back(std::log(truth.rate_per_s(level, ladder)));  // rates span decades
  }
  model_ = ml::MlpRegressor(cfg_.mlp);
  model_.fit(x, y);
  trained_ = true;
}

double LearnedSerModel::rate_per_s(const VfLevel& level) const {
  assert(trained_);
  const double row[] = {level.voltage, level.freq_ghz};
  return std::exp(model_.predict(row));
}

double LearnedSerModel::validation_error(const SerModel& truth,
                                         const std::vector<VfLevel>& ladder,
                                         std::size_t samples, std::uint64_t seed) const {
  assert(trained_ && samples > 0);
  lore::Rng rng(seed);
  double v_lo = ladder.front().voltage, v_hi = v_lo;
  double f_lo = ladder.front().freq_ghz, f_hi = f_lo;
  for (const auto& vf : ladder) {
    v_lo = std::min(v_lo, vf.voltage);
    v_hi = std::max(v_hi, vf.voltage);
    f_lo = std::min(f_lo, vf.freq_ghz);
    f_hi = std::max(f_hi, vf.freq_ghz);
  }
  double total = 0.0;
  for (std::size_t s = 0; s < samples; ++s) {
    VfLevel level{rng.uniform(v_lo, v_hi), rng.uniform(f_lo, f_hi)};
    const double t = truth.rate_per_s(level, ladder);
    total += std::abs(rate_per_s(level) - t) / t;
  }
  return total / static_cast<double>(samples);
}

}  // namespace lore::os
