#include "src/os/tasks.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace lore::os {

TaskSet generate_taskset(const TaskSetConfig& cfg) {
  assert(cfg.num_tasks > 0 && cfg.total_utilization > 0.0);
  lore::Rng rng(cfg.seed);

  // UUniFast: unbiased utilization split.
  std::vector<double> util(cfg.num_tasks);
  double sum = cfg.total_utilization;
  for (std::size_t i = 0; i + 1 < cfg.num_tasks; ++i) {
    const double next =
        sum * std::pow(rng.uniform(), 1.0 / static_cast<double>(cfg.num_tasks - 1 - i));
    util[i] = sum - next;
    sum = next;
  }
  util[cfg.num_tasks - 1] = sum;

  TaskSet tasks(cfg.num_tasks);
  for (std::size_t i = 0; i < cfg.num_tasks; ++i) {
    Task& t = tasks[i];
    t.id = i;
    t.period_ms = std::exp(rng.uniform(std::log(cfg.min_period_ms), std::log(cfg.max_period_ms)));
    t.deadline_ms = t.period_ms;
    t.wcet_ms = std::max(0.05, util[i] * t.period_ms);
    t.wcet_lo_ms = cfg.lo_budget_fraction * t.wcet_ms;
    t.criticality =
        rng.bernoulli(cfg.high_criticality_fraction) ? Criticality::kHigh : Criticality::kLow;
    t.avf = rng.uniform(0.3, 1.0);
    t.replicas = 1;
  }
  return tasks;
}

double total_utilization(const TaskSet& tasks) {
  double u = 0.0;
  for (const auto& t : tasks) u += t.wcet_ms / t.period_ms;
  return u;
}

std::vector<std::size_t> partition_worst_fit(const TaskSet& tasks,
                                             const std::vector<double>& core_capacity) {
  assert(!core_capacity.empty());
  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return tasks[a].wcet_ms / tasks[a].period_ms > tasks[b].wcet_ms / tasks[b].period_ms;
  });
  std::vector<double> load(core_capacity.size(), 0.0);
  std::vector<std::size_t> assignment(tasks.size(), 0);
  for (auto ti : order) {
    // Core with the most remaining normalized room.
    std::size_t best = 0;
    double best_room = -1e30;
    for (std::size_t c = 0; c < core_capacity.size(); ++c) {
      const double room = core_capacity[c] - load[c];
      if (room > best_room) {
        best_room = room;
        best = c;
      }
    }
    assignment[ti] = best;
    load[best] += tasks[ti].wcet_ms / tasks[ti].period_ms;
  }
  return assignment;
}

}  // namespace lore::os
