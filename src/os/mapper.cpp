#include "src/os/mapper.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lore::os {

TaskCoreProfile profile_task_on_core(const Task& task, const CoreType& core,
                                     const VfLevel& level,
                                     const std::vector<VfLevel>& ladder,
                                     const SerModel& ser, double max_freq_ghz) {
  TaskCoreProfile p;
  // Execution time scales inversely with the core's delivered throughput.
  const double speed = level.freq_ghz * core.perf_factor;
  assert(speed > 0.0);
  p.exec_time_ms = task.wcet_ms * max_freq_ghz / speed;
  p.failure_probability = ser.failure_probability(
      p.exec_time_ms * 1e-3, core.avf_factor * task.avf, level, ladder);
  return p;
}

std::vector<double> MwtfMapper::features(const Task& task, const CoreType& core,
                                         const VfLevel& level) {
  return {task.wcet_ms, std::log(task.period_ms), task.avf,
          core.perf_factor, core.avf_factor, level.voltage, level.freq_ghz};
}

void MwtfMapper::train(const Platform& platform, const SerModel& ser) {
  lore::Rng rng(cfg_.seed);
  ml::Matrix x, y;
  for (std::size_t s = 0; s < cfg_.training_samples; ++s) {
    Task t;
    t.wcet_ms = rng.uniform(0.5, 40.0);
    t.period_ms = rng.uniform(20.0, 300.0);
    t.avf = rng.uniform(0.1, 1.0);
    const auto& core = platform.core(rng.uniform_index(platform.num_cores())).type;
    const auto& level = platform.ladder()[rng.uniform_index(platform.ladder().size())];
    const auto profile =
        profile_task_on_core(t, core, level, platform.ladder(), ser, platform.max_freq_ghz());
    x.push_row(features(t, core, level));
    // Log-scale both targets: times and probabilities span decades.
    const double targets[] = {std::log(profile.exec_time_ms),
                              std::log(profile.failure_probability + 1e-15)};
    y.push_row(targets);
  }
  model_ = ml::MlpVectorRegressor(cfg_.mlp);
  model_.fit(x, y);
  trained_ = true;
}

TaskCoreProfile MwtfMapper::predict(const Task& task, const CoreType& core,
                                    const VfLevel& level,
                                    const std::vector<VfLevel>& ladder,
                                    double max_freq_ghz) const {
  (void)ladder;
  (void)max_freq_ghz;
  assert(trained_);
  const auto out = model_.predict(features(task, core, level));
  return {std::exp(out[0]), std::exp(out[1])};
}

std::vector<std::size_t> MwtfMapper::map(const TaskSet& tasks, const Platform& platform,
                                         const SerModel& ser,
                                         double utilization_cap) const {
  assert(trained_);
  (void)ser;
  std::vector<double> load(platform.num_cores(), 0.0);
  std::vector<std::size_t> assignment(tasks.size(), 0);

  // Heaviest tasks first so the cap binds sensibly.
  std::vector<std::size_t> order(tasks.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return tasks[a].wcet_ms / tasks[a].period_ms > tasks[b].wcet_ms / tasks[b].period_ms;
  });

  for (auto ti : order) {
    const Task& t = tasks[ti];
    double best_score = -1e30;
    std::size_t best_core = 0;
    for (std::size_t c = 0; c < platform.num_cores(); ++c) {
      const auto& core = platform.core(c);
      const auto& level = platform.ladder()[core.vf_index];
      const auto p = predict(t, core.type, level, platform.ladder(), platform.max_freq_ghz());
      const double util = p.exec_time_ms / t.period_ms;
      if (load[c] + util > utilization_cap) continue;
      // MWTF contribution: work per expected failure, discounted by load.
      const double mwtf = t.wcet_ms / (p.failure_probability + 1e-12);
      const double score = std::log(mwtf) - 2.0 * (load[c] + util);
      if (score > best_score) {
        best_score = score;
        best_core = c;
      }
    }
    if (best_score == -1e30) {
      // Every core is over the cap: least-loaded fallback.
      best_core = static_cast<std::size_t>(
          std::min_element(load.begin(), load.end()) - load.begin());
    }
    assignment[ti] = best_core;
    const auto& core = platform.core(best_core);
    const auto p = profile_task_on_core(t, core.type, platform.ladder()[core.vf_index],
                                        platform.ladder(), SerModel{}, platform.max_freq_ghz());
    load[best_core] += p.exec_time_ms / t.period_ms;
  }
  return assignment;
}

std::vector<std::size_t> map_random(const TaskSet& tasks, std::size_t num_cores,
                                    lore::Rng& rng) {
  std::vector<std::size_t> out(tasks.size());
  for (auto& c : out) c = static_cast<std::size_t>(rng.uniform_index(num_cores));
  return out;
}

std::vector<std::size_t> map_performance_only(const TaskSet& tasks, const Platform& platform,
                                              double utilization_cap) {
  // Sort cores by delivered speed; fill fastest first.
  std::vector<std::size_t> cores(platform.num_cores());
  for (std::size_t i = 0; i < cores.size(); ++i) cores[i] = i;
  std::sort(cores.begin(), cores.end(), [&](std::size_t a, std::size_t b) {
    return platform.capacity_gops(a) > platform.capacity_gops(b);
  });
  std::vector<double> load(platform.num_cores(), 0.0);
  std::vector<std::size_t> assignment(tasks.size(), 0);
  for (std::size_t ti = 0; ti < tasks.size(); ++ti) {
    bool placed = false;
    for (auto c : cores) {
      const auto& core = platform.core(c);
      const double speed =
          platform.ladder()[core.vf_index].freq_ghz * core.type.perf_factor;
      const double util =
          tasks[ti].wcet_ms * platform.max_freq_ghz() / speed / tasks[ti].period_ms;
      if (load[c] + util <= utilization_cap) {
        assignment[ti] = c;
        load[c] += util;
        placed = true;
        break;
      }
    }
    if (!placed) assignment[ti] = cores.front();
  }
  return assignment;
}

std::vector<double> predicted_core_temperatures(const TaskSet& tasks,
                                                const std::vector<std::size_t>& mapping,
                                                const Platform& platform) {
  assert(mapping.size() == tasks.size());
  std::vector<double> load(platform.num_cores(), 0.0);
  for (std::size_t ti = 0; ti < tasks.size(); ++ti) {
    const auto& core = platform.core(mapping[ti]);
    const double speed =
        platform.ladder()[core.vf_index].freq_ghz * core.type.perf_factor;
    load[mapping[ti]] +=
        tasks[ti].wcet_ms * platform.max_freq_ghz() / speed / tasks[ti].period_ms;
  }
  std::vector<double> temps(platform.num_cores());
  for (std::size_t c = 0; c < platform.num_cores(); ++c) {
    const double power = platform.core_power_w(c, std::min(1.0, load[c]));
    temps[c] = platform.config().ambient_k + power * platform.core(c).type.rth_k_per_w;
  }
  return temps;
}

std::vector<std::size_t> map_thermal_aware(const TaskSet& tasks, const Platform& platform) {
  std::vector<std::size_t> mapping(tasks.size(), 0);
  std::vector<double> load(platform.num_cores(), 0.0);

  // Heaviest first; each task goes where the post-placement steady
  // temperature is lowest.
  std::vector<std::size_t> order(tasks.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return tasks[a].wcet_ms / tasks[a].period_ms > tasks[b].wcet_ms / tasks[b].period_ms;
  });
  for (auto ti : order) {
    std::size_t best = 0;
    double best_temp = 1e30;
    for (std::size_t c = 0; c < platform.num_cores(); ++c) {
      const auto& core = platform.core(c);
      const double speed =
          platform.ladder()[core.vf_index].freq_ghz * core.type.perf_factor;
      const double util =
          tasks[ti].wcet_ms * platform.max_freq_ghz() / speed / tasks[ti].period_ms;
      if (load[c] + util > 1.0) continue;  // infeasible placement
      const double power = platform.core_power_w(c, std::min(1.0, load[c] + util));
      const double temp =
          platform.config().ambient_k + power * core.type.rth_k_per_w;
      if (temp < best_temp) {
        best_temp = temp;
        best = c;
      }
    }
    mapping[ti] = best;
    const auto& core = platform.core(best);
    const double speed =
        platform.ladder()[core.vf_index].freq_ghz * core.type.perf_factor;
    load[best] += tasks[ti].wcet_ms * platform.max_freq_ghz() / speed / tasks[ti].period_ms;
  }
  return mapping;
}

double mapping_mwtf(const TaskSet& tasks, const std::vector<std::size_t>& mapping,
                    const Platform& platform, const SerModel& ser) {
  assert(mapping.size() == tasks.size());
  MwtfAccumulator acc;
  for (std::size_t ti = 0; ti < tasks.size(); ++ti) {
    const auto& core = platform.core(mapping[ti]);
    const auto p = profile_task_on_core(tasks[ti], core.type,
                                        platform.ladder()[core.vf_index], platform.ladder(),
                                        ser, platform.max_freq_ghz());
    // Weight by release rate: jobs per second of this task.
    const double jobs_per_s = 1000.0 / tasks[ti].period_ms;
    acc.add(tasks[ti].wcet_ms * jobs_per_s, p.failure_probability * jobs_per_s);
  }
  return acc.mwtf();
}

}  // namespace lore::os
