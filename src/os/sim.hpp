// Discrete-time system simulator tying the OS layer together: per-core EDF
// scheduling of periodic tasks, DVFS/DPM control through a pluggable
// governor, soft errors from the SER model (replicated tasks recover by
// re-execution, unreplicated ones suffer SDCs), thermal/power integration,
// and lifetime metrics bridged to the device-level wear-out models.
#pragma once

#include <functional>
#include <memory>

#include "src/device/lifetime.hpp"
#include "src/os/platform.hpp"
#include "src/os/ser.hpp"
#include "src/os/tasks.hpp"

namespace lore::os {

/// Observation handed to the governor each control epoch.
struct SystemStatus {
  double time_ms = 0.0;
  std::vector<double> core_utilization;
  std::vector<double> core_temperature_k;
  /// Deadline misses and soft errors since the previous control epoch.
  std::size_t recent_misses = 0;
  std::size_t recent_faults = 0;
};

/// DVFS/DPM policy. Called every control epoch; mutates platform V-f/power
/// states. end_episode() lets learning policies decay exploration.
class Governor {
 public:
  virtual ~Governor() = default;
  virtual void control(Platform& platform, const SystemStatus& status) = 0;
  virtual void end_episode() {}
  virtual std::string name() const = 0;
};

struct SimConfig {
  double tick_ms = 1.0;
  double duration_ms = 20000.0;
  double control_period_ms = 20.0;
  SerParams ser{};
  /// Device-stress scale: how many equivalent operating years one simulated
  /// second represents when feeding lifetime models (acceleration factor).
  double mc_trials = 0;  // reserved
  std::uint64_t seed = 73;
};

struct SimResult {
  double energy_j = 0.0;
  std::size_t jobs_released = 0;
  std::size_t jobs_completed = 0;
  std::size_t deadline_misses = 0;
  std::size_t soft_errors = 0;          // raw fault events
  std::size_t core_wakeups = 0;         // DPM sleep->active transitions
  std::size_t sdc_failures = 0;         // unmasked (no replica) faults
  std::size_t masked_faults = 0;        // caught by replication, re-executed
  double peak_temperature_k = 0.0;
  double avg_temperature_k = 0.0;
  double mwtf = 0.0;
  /// System MTTF (years) from the five device wear-out mechanisms evaluated
  /// at each core's average operating condition, combined in series.
  double mttf_years = 0.0;

  double deadline_miss_rate() const {
    return jobs_released ? static_cast<double>(deadline_misses) /
                               static_cast<double>(jobs_released)
                         : 0.0;
  }
};

class SystemSimulator {
 public:
  SystemSimulator(Platform platform, TaskSet tasks, std::vector<std::size_t> task_to_core,
                  SimConfig cfg = {});

  /// Run the full simulation under the governor (nullptr = static levels).
  SimResult run(Governor* governor);

  const Platform& platform() const { return platform_; }

 private:
  struct Job {
    std::size_t task = 0;
    double release_ms = 0.0;
    double abs_deadline_ms = 0.0;
    double remaining_gcycles = 0.0;
    std::size_t executions_left = 1;  // replicas pending
    bool corrupted = false;
  };

  Platform platform_;
  TaskSet tasks_;
  std::vector<std::size_t> task_to_core_;
  SimConfig cfg_;
};

/// Fixed V-f level on every core.
class StaticGovernor final : public Governor {
 public:
  explicit StaticGovernor(std::size_t vf_index) : vf_index_(vf_index) {}
  void control(Platform& platform, const SystemStatus& status) override;
  std::string name() const override { return "static"; }

 private:
  std::size_t vf_index_;
};

/// Linux-ondemand-style: scale frequency with utilization.
class OndemandGovernor final : public Governor {
 public:
  OndemandGovernor(double up_threshold = 0.8, double down_threshold = 0.3)
      : up_(up_threshold), down_(down_threshold) {}
  void control(Platform& platform, const SystemStatus& status) override;
  std::string name() const override { return "ondemand"; }

 private:
  double up_, down_;
};

/// Dynamic power management wrapper (the paper's third OS knob): runs an
/// inner governor for DVFS and additionally puts cores to sleep after a
/// number of fully idle control epochs. The simulator wakes sleeping cores
/// on demand, charging one control tick of wake latency.
class TimeoutDpmGovernor final : public Governor {
 public:
  TimeoutDpmGovernor(Governor* inner, std::size_t idle_epochs_to_sleep = 3)
      : inner_(inner), idle_threshold_(idle_epochs_to_sleep) {}

  void control(Platform& platform, const SystemStatus& status) override;
  void end_episode() override;
  std::string name() const override { return "dpm+" + (inner_ ? inner_->name() : "none"); }

 private:
  Governor* inner_;
  std::size_t idle_threshold_;
  std::vector<std::size_t> idle_epochs_;
};

}  // namespace lore::os
