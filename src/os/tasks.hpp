// Periodic real-time task model with mixed-criticality attributes (Sec. IV
// and the Sec. VI-B open challenge): WCET budgets per criticality level,
// replicas for fault tolerance, and UUniFast task-set generation.
#pragma once

#include <cstddef>
#include <vector>

#include "src/common/rng.hpp"

namespace lore::os {

enum class Criticality : std::uint8_t { kLow, kHigh };

struct Task {
  std::size_t id = 0;
  double period_ms = 100.0;
  double deadline_ms = 100.0;  // relative deadline
  /// WCET on the reference core at maximum frequency (the HI-mode budget).
  double wcet_ms = 10.0;
  /// Optimistic LO-mode budget for mixed-criticality scheduling.
  double wcet_lo_ms = 10.0;
  Criticality criticality = Criticality::kLow;
  /// Task-level vulnerability scale (how much architectural state it exposes).
  double avf = 1.0;
  /// Number of redundant executions (1 = no redundancy).
  std::size_t replicas = 1;
};

using TaskSet = std::vector<Task>;

struct TaskSetConfig {
  std::size_t num_tasks = 8;
  /// Total utilization at the reference core's max frequency.
  double total_utilization = 1.6;
  double min_period_ms = 20.0;
  double max_period_ms = 200.0;
  /// Fraction of tasks marked high-criticality.
  double high_criticality_fraction = 0.3;
  /// LO budget = lo_budget_fraction * wcet.
  double lo_budget_fraction = 0.6;
  std::uint64_t seed = 71;
};

/// UUniFast utilization split + log-uniform periods.
TaskSet generate_taskset(const TaskSetConfig& cfg);

/// Sum of wcet/period over the set.
double total_utilization(const TaskSet& tasks);

/// Worst-fit decreasing partition of tasks onto `num_cores` cores by
/// utilization; returns task -> core. Capacity weights scale per-core room
/// (e.g. little cores get less).
std::vector<std::size_t> partition_worst_fit(const TaskSet& tasks,
                                             const std::vector<double>& core_capacity);

}  // namespace lore::os
