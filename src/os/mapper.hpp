// NN-based MWTF-aware task mapping for heterogeneous multicores ([2],
// Sec. IV-A3): a neural network learns per-(core-type, task) vulnerability ×
// execution-time outcomes from profiled runs, then mapping maximizes the mean
// workload to failure while balancing load.
#pragma once

#include <cstdint>

#include "src/ml/mlp.hpp"
#include "src/os/platform.hpp"
#include "src/os/ser.hpp"
#include "src/os/tasks.hpp"

namespace lore::os {

/// Profile of running one task on one core type at one V-f level: the
/// quantities [2]'s estimator predicts.
struct TaskCoreProfile {
  double exec_time_ms = 0.0;
  double failure_probability = 0.0;
};

/// Ground-truth profiler (the "measurement" the NN learns to replace).
TaskCoreProfile profile_task_on_core(const Task& task, const CoreType& core,
                                     const VfLevel& level,
                                     const std::vector<VfLevel>& ladder,
                                     const SerModel& ser, double max_freq_ghz);

struct MwtfMapperConfig {
  std::size_t training_samples = 600;
  ml::MlpConfig mlp{.hidden = {24, 24}, .epochs = 200};
  std::uint64_t seed = 79;
};

class MwtfMapper {
 public:
  explicit MwtfMapper(MwtfMapperConfig cfg = {}) : cfg_(cfg) {}

  /// Learn the vulnerability/time surface over random synthetic tasks on the
  /// platform's core types.
  void train(const Platform& platform, const SerModel& ser);
  bool trained() const { return trained_; }

  /// Predicted profile (what the NN believes).
  TaskCoreProfile predict(const Task& task, const CoreType& core, const VfLevel& level,
                          const std::vector<VfLevel>& ladder, double max_freq_ghz) const;

  /// Greedy MWTF-maximizing assignment: each task goes to the core whose
  /// predicted work/failure ratio is best, subject to a utilization cap.
  std::vector<std::size_t> map(const TaskSet& tasks, const Platform& platform,
                               const SerModel& ser, double utilization_cap = 0.9) const;

 private:
  static std::vector<double> features(const Task& task, const CoreType& core,
                                      const VfLevel& level);

  MwtfMapperConfig cfg_;
  ml::MlpVectorRegressor model_{};
  bool trained_ = false;
};

/// Baselines for the E11 comparison.
std::vector<std::size_t> map_random(const TaskSet& tasks, std::size_t num_cores,
                                    lore::Rng& rng);
/// Performance-only: everything to the fastest cores (utilization-capped).
std::vector<std::size_t> map_performance_only(const TaskSet& tasks, const Platform& platform,
                                              double utilization_cap = 0.9);

/// Thermal-aware allocation ([39],[40]): greedily place each task on the core
/// whose predicted steady-state temperature after placement is lowest,
/// spreading heat to tame the peak temperature and thermal cycling that
/// dominate lifetime reliability.
std::vector<std::size_t> map_thermal_aware(const TaskSet& tasks, const Platform& platform);

/// Predicted steady-state temperature of each core for a mapping (ambient +
/// Rth * power at the mapped utilization).
std::vector<double> predicted_core_temperatures(const TaskSet& tasks,
                                                const std::vector<std::size_t>& mapping,
                                                const Platform& platform);

/// Analytic MWTF of a mapping (ground truth, not the NN estimate).
double mapping_mwtf(const TaskSet& tasks, const std::vector<std::size_t>& mapping,
                    const Platform& platform, const SerModel& ser);

}  // namespace lore::os
