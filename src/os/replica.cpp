#include "src/os/replica.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace lore::os {

void ReplicaManager::observe(std::size_t faults, std::size_t jobs) {
  if (jobs == 0) return;
  const double observed = static_cast<double>(faults) / static_cast<double>(jobs);
  if (!seeded_) {
    estimate_ = observed;
    seeded_ = true;
  } else {
    estimate_ = (1.0 - cfg_.smoothing) * estimate_ + cfg_.smoothing * observed;
  }
  estimate_ = std::clamp(estimate_, 1e-9, 1.0);
}

double ReplicaManager::expected_cost(std::size_t replicas) const {
  assert(replicas >= 1);
  const double overhead = cfg_.replication_cost * static_cast<double>(replicas - 1);
  // With r replicas a failure escapes only if every copy is corrupted.
  const double escape = std::pow(estimate_, static_cast<double>(replicas));
  return overhead + cfg_.failure_penalty * escape;
}

std::size_t ReplicaManager::recommended_replicas() const {
  std::size_t best = 1;
  double best_cost = expected_cost(1);
  for (std::size_t r = 2; r <= cfg_.max_replicas; ++r) {
    const double cost = expected_cost(r);
    if (cost < best_cost) {
      best_cost = cost;
      best = r;
    }
  }
  return best;
}

McSimResult simulate_mixed_criticality(const TaskSet& tasks, const McSimConfig& cfg) {
  lore::Rng rng(cfg.seed);
  McSimResult result;

  struct Job {
    std::size_t task;
    double abs_deadline_ms;
    double remaining_ms;   // actual demand left
    double budget_left_ms; // LO budget left (overrun detection)
  };
  std::vector<Job> queue;
  std::vector<double> next_release(tasks.size(), 0.0);
  bool hi_mode = false;

  for (double now = 0.0; now < cfg.duration_ms; now += cfg.tick_ms) {
    // Releases.
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      while (next_release[t] <= now) {
        const bool is_hi = tasks[t].criticality == Criticality::kHigh;
        if (is_hi) ++result.hi_jobs;
        else ++result.lo_jobs;
        if (hi_mode && !is_hi) {
          ++result.lo_dropped;  // LO tasks are shed in HI mode
        } else {
          Job job;
          job.task = t;
          job.abs_deadline_ms = next_release[t] + tasks[t].deadline_ms;
          const double demand =
              tasks[t].wcet_lo_ms * rng.uniform(0.6, is_hi ? cfg.overrun_factor : 1.0);
          job.remaining_ms = std::min(demand, is_hi ? tasks[t].wcet_ms : tasks[t].wcet_lo_ms);
          job.budget_left_ms = tasks[t].wcet_lo_ms;
          queue.push_back(job);
        }
        next_release[t] += tasks[t].period_ms;
      }
    }

    // Deadline enforcement.
    for (auto it = queue.begin(); it != queue.end();) {
      if (now >= it->abs_deadline_ms && it->remaining_ms > 0.0) {
        if (tasks[it->task].criticality == Criticality::kHigh) ++result.hi_misses;
        it = queue.erase(it);
      } else {
        ++it;
      }
    }

    if (queue.empty()) {
      // Idle instant: return to LO mode.
      if (hi_mode) hi_mode = false;
      continue;
    }

    // EDF pick.
    auto job_it = std::min_element(queue.begin(), queue.end(), [](const Job& a, const Job& b) {
      return a.abs_deadline_ms < b.abs_deadline_ms;
    });
    Job& job = *job_it;
    const double slice = std::min(cfg.tick_ms, job.remaining_ms);
    job.remaining_ms -= slice;
    job.budget_left_ms -= slice;

    // LO-budget overrun of a HI task: mode switch, shed LO jobs.
    if (!hi_mode && job.budget_left_ms < 0.0 &&
        tasks[job.task].criticality == Criticality::kHigh) {
      hi_mode = true;
      ++result.mode_switches;
      for (auto it = queue.begin(); it != queue.end();) {
        if (tasks[it->task].criticality == Criticality::kLow) {
          ++result.lo_dropped;
          it = queue.erase(it);
        } else {
          ++it;
        }
      }
      // The running job may have been invalidated by the erase; re-find it.
      continue;
    }

    if (job.remaining_ms <= 0.0) {
      if (tasks[job.task].criticality == Criticality::kLow) ++result.lo_completed;
      queue.erase(job_it);
    }
  }
  return result;
}

}  // namespace lore::os
