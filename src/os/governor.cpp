#include "src/os/governor.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/obs/obs.hpp"

namespace lore::os {

RlDvfsGovernor::RlDvfsGovernor(std::size_t num_vf_levels, RlGovernorConfig cfg)
    : cfg_(cfg),
      num_vf_(num_vf_levels),
      learner_(cfg.temp_bins * cfg.util_bins * num_vf_levels, 3, cfg.learner) {
  assert(num_vf_levels > 0);
}

std::size_t RlDvfsGovernor::encode(double temperature_k, double utilization,
                                   std::size_t vf) const {
  const double tn = (temperature_k - cfg_.temp_lo_k) / (cfg_.temp_hi_k - cfg_.temp_lo_k);
  auto tb = static_cast<std::ptrdiff_t>(tn * static_cast<double>(cfg_.temp_bins));
  tb = std::clamp<std::ptrdiff_t>(tb, 0, static_cast<std::ptrdiff_t>(cfg_.temp_bins) - 1);
  auto ub = static_cast<std::ptrdiff_t>(utilization * static_cast<double>(cfg_.util_bins));
  ub = std::clamp<std::ptrdiff_t>(ub, 0, static_cast<std::ptrdiff_t>(cfg_.util_bins) - 1);
  return (static_cast<std::size_t>(tb) * cfg_.util_bins + static_cast<std::size_t>(ub)) *
             num_vf_ +
         vf;
}

double RlDvfsGovernor::reward(const Platform& platform, const SystemStatus& status,
                              std::size_t core) const {
  const auto& vf = platform.ladder()[platform.core(core).vf_index];
  // Energy proxy: dynamic power of the epoch, normalized to the top level.
  const auto& top = platform.ladder().back();
  const double energy = (vf.voltage * vf.voltage * vf.freq_ghz) /
                        (top.voltage * top.voltage * top.freq_ghz) *
                        status.core_utilization[core];
  const double temp_excess =
      std::max(0.0, status.core_temperature_k[core] - cfg_.temp_limit_k) / 10.0;
  const double misses = static_cast<double>(status.recent_misses);
  const double faults = static_cast<double>(status.recent_faults);
  return -cfg_.w_energy * energy - cfg_.w_temp * temp_excess - cfg_.w_miss * misses -
         cfg_.w_fault * faults;
}

void RlDvfsGovernor::control(Platform& platform, const SystemStatus& status) {
  const std::size_t n = platform.num_cores();
  if (previous_.size() != n) {
    previous_.assign(n, {0, 1});
    has_previous_ = false;
  }
  // Per-epoch instrumentation: the control loop is serial, so last-writer
  // gauges are deterministic. Reward/temperature are aggregated over cores.
  double reward_sum = 0.0;
  double max_temp_k = 0.0;
  std::size_t action_counts[3] = {0, 0, 0};
  for (std::size_t c = 0; c < n; ++c) {
    max_temp_k = std::max(max_temp_k, status.core_temperature_k[c]);
    const std::size_t state =
        encode(status.core_temperature_k[c], status.core_utilization[c],
               platform.core(c).vf_index);
    if (has_previous_ && !frozen_) {
      const auto [prev_state, prev_action] = previous_[c];
      const double r = reward(platform, status, c);
      reward_sum += r;
      learner_.update(prev_state, prev_action, r, state);
    }
    const std::size_t action =
        frozen_ ? learner_.best_action(state) : learner_.select_action(state);
    ++action_counts[action];
    std::size_t vf = platform.core(c).vf_index;
    if (action == 0 && vf > 0) --vf;
    else if (action == 2 && vf + 1 < num_vf_) ++vf;
    platform.set_vf(c, vf);
    previous_[c] = {state, action};
  }
  LORE_OBS_COUNT("governor.control_epochs", 1);
  LORE_OBS_COUNT("governor.actions.lower", action_counts[0]);
  LORE_OBS_COUNT("governor.actions.hold", action_counts[1]);
  LORE_OBS_COUNT("governor.actions.raise", action_counts[2]);
  LORE_OBS_GAUGE("governor.temperature_k", max_temp_k);
  LORE_OBS_GAUGE("governor.epsilon", learner_.epsilon());
  if (has_previous_ && !frozen_ && n > 0)
    LORE_OBS_GAUGE("governor.reward", reward_sum / static_cast<double>(n));
  has_previous_ = true;
}

void RlDvfsGovernor::end_episode() {
  if (!frozen_) learner_.end_episode();
  has_previous_ = false;
}

std::unique_ptr<RlDvfsGovernor> train_rl_governor(
    const Platform& platform, const TaskSet& tasks,
    const std::vector<std::size_t>& mapping, const SimConfig& sim_cfg,
    std::size_t episodes, RlGovernorConfig cfg) {
  auto governor = std::make_unique<RlDvfsGovernor>(platform.ladder().size(), cfg);
  for (std::size_t e = 0; e < episodes; ++e) {
    LORE_OBS_SPAN(span, "os.governor.episode");
    LORE_OBS_COUNT("governor.episodes", 1);
    SimConfig episode_cfg = sim_cfg;
    episode_cfg.seed = sim_cfg.seed + e;  // fresh fault realizations per episode
    SystemSimulator sim(platform, tasks, mapping, episode_cfg);
    sim.run(governor.get());
  }
  return governor;
}

}  // namespace lore::os
