// Adaptive replica management (Sec. IV-A4, [45]): the environment's fault
// rate drifts (radiation, temperature); the manager learns the current rate
// from observed faults and picks the replica count that minimizes expected
// cost = execution overhead + failure penalty.
#pragma once

#include <cstddef>

#include "src/common/rng.hpp"
#include "src/os/tasks.hpp"

namespace lore::os {

struct ReplicaManagerConfig {
  /// Exponential smoothing factor for the fault-rate estimate.
  double smoothing = 0.2;
  /// Cost of one redundant execution relative to one unit of work.
  double replication_cost = 1.0;
  /// Penalty of one uncaught failure in the same units.
  double failure_penalty = 400.0;
  std::size_t max_replicas = 3;
};

class ReplicaManager {
 public:
  explicit ReplicaManager(ReplicaManagerConfig cfg = {}) : cfg_(cfg) {}

  /// Feed one observation window: `faults` raw fault events over `jobs`
  /// executed jobs. Updates the learned per-job fault-probability estimate.
  void observe(std::size_t faults, std::size_t jobs);

  /// Current per-job fault probability estimate.
  double fault_probability() const { return estimate_; }

  /// Expected cost per job with `replicas` copies: replication overhead plus
  /// the penalty of all copies being corrupted (replicas catch a fault when
  /// at least one copy survives; failures need every comparison to agree on
  /// a wrong value — modeled as p^replicas).
  double expected_cost(std::size_t replicas) const;

  /// Cost-minimizing replica count under the current estimate.
  std::size_t recommended_replicas() const;

 private:
  ReplicaManagerConfig cfg_;
  double estimate_ = 1e-4;
  bool seeded_ = false;
};

/// Mixed-criticality EDF simulation (the Sec. VI-B extension): LO mode admits
/// every task with optimistic budgets; a HI task overrunning its LO budget
/// triggers HI mode, which drops LO tasks until an idle instant. Metrics are
/// the HI-task deadline-miss count (must stay ~0) and LO-task QoS.
struct McSimConfig {
  double tick_ms = 0.5;
  double duration_ms = 20000.0;
  /// Actual execution demand is wcet_lo * U(0.6, overrun_factor); values
  /// above 1.0 let HI tasks exceed their LO budgets.
  double overrun_factor = 1.3;
  /// Only HI tasks may overrun; LO tasks are truncated at their LO budget.
  std::uint64_t seed = 83;
};

struct McSimResult {
  std::size_t hi_jobs = 0;
  std::size_t hi_misses = 0;
  std::size_t lo_jobs = 0;
  std::size_t lo_completed = 0;
  std::size_t lo_dropped = 0;
  std::size_t mode_switches = 0;

  double lo_qos() const {
    return lo_jobs ? static_cast<double>(lo_completed) / static_cast<double>(lo_jobs) : 1.0;
  }
};

/// Single-core mixed-criticality EDF run at unit speed.
McSimResult simulate_mixed_criticality(const TaskSet& tasks, const McSimConfig& cfg);

}  // namespace lore::os
