// Multi/many-core platform model for the OS-level reliability experiments
// (Sec. IV): heterogeneous cores with per-core DVFS (V-f levels), DPM power
// states, a lumped-RC thermal model with neighbour coupling, and power
// accounting (dynamic CV^2f + temperature-dependent leakage).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace lore::os {

/// One DVFS operating point.
struct VfLevel {
  double voltage = 0.8;   // V
  double freq_ghz = 1.0;  // GHz
};

/// The standard five-level DVFS ladder used across experiments.
std::vector<VfLevel> default_vf_ladder();

enum class PowerState : std::uint8_t { kActive, kIdle, kSleep, kOff };

/// Static properties of a core type (heterogeneous platforms mix these).
struct CoreType {
  std::string name = "big";
  /// Instructions-per-cycle factor relative to the reference core.
  double perf_factor = 1.0;
  /// Effective switched capacitance (nF): dynamic power = ceff * V^2 * f.
  double ceff_nf = 1.0;
  /// Leakage at nominal V and 330 K (W); grows with V and temperature.
  double leakage_ref_w = 0.15;
  /// Architectural vulnerability factor scale of this microarchitecture
  /// (bigger, wider cores expose more state).
  double avf_factor = 1.0;
  /// Thermal resistance to ambient (K/W) and time constant (s).
  double rth_k_per_w = 25.0;
  double thermal_tau_s = 0.08;
};

CoreType make_big_core();
CoreType make_little_core();

/// Dynamic state of one core.
struct Core {
  CoreType type;
  std::size_t vf_index = 0;
  PowerState power_state = PowerState::kActive;
  double temperature_k = 330.0;
  /// Utilization of the last accounting interval in [0, 1].
  double utilization = 0.0;
  /// Peak temperature seen so far.
  double peak_temperature_k = 330.0;
  /// Lifetime thermal swing tracking (for thermal cycling).
  double min_temperature_k = 330.0;
};

struct PlatformConfig {
  double ambient_k = 318.0;
  /// Thermal coupling conductance between adjacent cores (fraction of the
  /// temperature difference equalized per tau).
  double neighbour_coupling = 0.12;
  std::vector<VfLevel> ladder = default_vf_ladder();
};

class Platform {
 public:
  Platform(std::vector<CoreType> cores, PlatformConfig cfg = {});

  std::size_t num_cores() const { return cores_.size(); }
  const Core& core(std::size_t i) const { return cores_[i]; }
  const std::vector<VfLevel>& ladder() const { return cfg_.ladder; }
  const PlatformConfig& config() const { return cfg_; }

  void set_vf(std::size_t core, std::size_t vf_index);
  void set_power_state(std::size_t core, PowerState state);

  /// Instantaneous power of a core at the given utilization (W).
  double core_power_w(std::size_t core, double utilization) const;

  /// Advance the thermal/power state by dt seconds with the given per-core
  /// utilizations; returns the energy consumed in this step (J).
  double step(double dt_s, const std::vector<double>& utilization);

  /// Work capacity of a core in "reference-core gigacycles per second":
  /// freq * perf_factor; zero when not active.
  double capacity_gops(std::size_t core) const;

  double max_freq_ghz() const;

 private:
  std::vector<Core> cores_;
  PlatformConfig cfg_;
};

}  // namespace lore::os
