// Learning-based DVFS management (Sec. IV-A/B): a tabular Q-learning governor
// whose state is the discretized (temperature, utilization, current V-f) of a
// core and whose reward trades off energy, thermal safety, deadline misses,
// and soft errors — the multi-objective the paper's RL citations
// ([39],[40],[43],[44],[47]) optimize.
#pragma once

#include <memory>

#include "src/ml/qlearning.hpp"
#include "src/os/sim.hpp"

namespace lore::os {

struct RlGovernorConfig {
  std::size_t temp_bins = 6;
  std::size_t util_bins = 5;
  double temp_lo_k = 315.0;
  double temp_hi_k = 400.0;
  /// Thermal safety limit: exceeding it is penalized steeply.
  double temp_limit_k = 370.0;
  double w_energy = 1.0;
  double w_temp = 5.0;
  double w_miss = 3.0;
  double w_fault = 3.0;
  ml::QLearnerConfig learner{.alpha = 0.2, .gamma = 0.85, .epsilon = 0.25,
                             .epsilon_decay = 0.97, .epsilon_min = 0.02};
};

/// Actions: lower V-f, hold, raise V-f (per core, shared Q-table so all cores
/// contribute experience).
class RlDvfsGovernor final : public Governor {
 public:
  RlDvfsGovernor(std::size_t num_vf_levels, RlGovernorConfig cfg = {});

  void control(Platform& platform, const SystemStatus& status) override;
  void end_episode() override;
  std::string name() const override { return "rl-dvfs"; }

  /// Exploitation-only mode for evaluation after training.
  void freeze() { frozen_ = true; }
  const ml::QLearner& learner() const { return learner_; }

 private:
  std::size_t encode(double temperature_k, double utilization, std::size_t vf) const;
  double reward(const Platform& platform, const SystemStatus& status,
                std::size_t core) const;

  RlGovernorConfig cfg_;
  std::size_t num_vf_;
  ml::QLearner learner_;
  bool frozen_ = false;
  /// Previous (state, action) per core for the delayed TD update.
  std::vector<std::pair<std::size_t, std::size_t>> previous_;
  bool has_previous_ = false;
};

/// Train the RL governor over several episodes of the simulator and return
/// the trained governor ready to freeze for evaluation.
std::unique_ptr<RlDvfsGovernor> train_rl_governor(
    const Platform& platform, const TaskSet& tasks,
    const std::vector<std::size_t>& mapping, const SimConfig& sim_cfg,
    std::size_t episodes, RlGovernorConfig cfg = {});

}  // namespace lore::os
