#include "src/os/telemetry.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lore::os {

std::vector<TelemetryRecord> generate_fleet_telemetry(const FleetConfig& cfg) {
  assert(cfg.nodes > 0 && cfg.epochs > 1);
  lore::Rng rng(cfg.seed);

  struct NodeState {
    bool defective = false;
    double degradation = 0.0;   // hidden ageing state
    double load_bias = 0.5;     // persistent workload intensity
    double temp = 330.0;
  };
  std::vector<NodeState> nodes(cfg.nodes);
  for (auto& n : nodes) {
    n.defective = rng.bernoulli(cfg.defective_fraction);
    n.load_bias = rng.uniform(0.2, 0.9);
  }

  std::vector<TelemetryRecord> trace;
  trace.reserve(cfg.nodes * cfg.epochs);
  for (std::size_t e = 0; e < cfg.epochs; ++e) {
    for (std::size_t i = 0; i < cfg.nodes; ++i) {
      auto& n = nodes[i];
      TelemetryRecord r;
      r.node = i;
      r.epoch = e;
      r.utilization = std::clamp(n.load_bias + rng.normal(0.0, 0.1), 0.0, 1.0);
      r.power_w = 60.0 + 180.0 * r.utilization + rng.normal(0.0, 5.0);
      // First-order thermal tracking of power.
      const double t_target = 318.0 + 0.25 * r.power_w;
      n.temp += 0.5 * (t_target - n.temp) + rng.normal(0.0, 0.5);
      r.temperature_k = n.temp;

      if (n.defective) {
        // Hidden degradation accelerates with temperature (Arrhenius-ish).
        n.degradation += 0.002 * std::exp((n.temp - 330.0) / 15.0);
      }
      const double ce_rate =
          cfg.healthy_ce_rate * (1.0 + 0.02 * (n.temp - 330.0)) +
          40.0 * n.degradation * r.utilization;
      r.corrected_errors =
          static_cast<std::uint32_t>(rng.poisson(std::max(0.01, ce_rate)));

      // Uncorrected failure: rare for healthy nodes, rising steeply once a
      // defective node's degradation and temperature compound.
      const double failure_rate =
          1e-4 + (n.defective ? 0.25 * n.degradation * n.degradation *
                                    std::exp((n.temp - 330.0) / 20.0)
                              : 0.0);
      r.failure = rng.bernoulli(std::min(0.5, failure_rate));
      trace.push_back(r);
    }
  }
  return trace;
}

std::vector<double> telemetry_features(const std::vector<TelemetryRecord>& trace,
                                       std::size_t node, std::size_t epoch,
                                       std::size_t window) {
  assert(window >= 2);
  double temp_sum = 0.0, temp_max = 0.0, util_sum = 0.0, power_sum = 0.0;
  double ce_total = 0.0, ce_first_half = 0.0, ce_second_half = 0.0;
  std::size_t count = 0;
  for (const auto& r : trace) {
    if (r.node != node || r.epoch > epoch || r.epoch + window <= epoch) continue;
    ++count;
    temp_sum += r.temperature_k;
    temp_max = std::max(temp_max, r.temperature_k);
    util_sum += r.utilization;
    power_sum += r.power_w;
    ce_total += r.corrected_errors;
    if (r.epoch + window / 2 <= epoch) ce_first_half += r.corrected_errors;
    else ce_second_half += r.corrected_errors;
  }
  const double n = std::max<double>(1.0, static_cast<double>(count));
  return {temp_sum / n,       temp_max, util_sum / n, ce_total,
          ce_second_half - ce_first_half,  // CE trend: the tell-tale symptom
          power_sum / n,      static_cast<double>(count)};
}

ml::Dataset failure_prediction_dataset(const std::vector<TelemetryRecord>& trace,
                                       std::size_t window, std::size_t horizon) {
  assert(!trace.empty() && horizon >= 1);
  std::size_t num_nodes = 0, num_epochs = 0;
  for (const auto& r : trace) {
    num_nodes = std::max(num_nodes, r.node + 1);
    num_epochs = std::max(num_epochs, r.epoch + 1);
  }
  // Index failures per node for the horizon lookup.
  std::vector<std::vector<bool>> failed(num_nodes, std::vector<bool>(num_epochs, false));
  for (const auto& r : trace) failed[r.node][r.epoch] = r.failure;

  ml::Dataset d;
  // Sample every 'window/2' epochs to bound correlation between rows.
  for (std::size_t node = 0; node < num_nodes; ++node) {
    for (std::size_t e = window; e + horizon < num_epochs; e += std::max<std::size_t>(1, window / 2)) {
      bool label = false;
      for (std::size_t h = 1; h <= horizon; ++h) label |= failed[node][e + h];
      d.add(telemetry_features(trace, node, e, window), label ? 1 : 0);
    }
  }
  return d;
}

}  // namespace lore::os
