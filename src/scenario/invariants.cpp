#include "src/scenario/invariants.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/table.hpp"

namespace lore::scenario {

namespace {

void add(std::vector<InvariantFinding>& out, std::string id, Severity severity,
         std::string message, double measured, double bound) {
  out.push_back(InvariantFinding{.id = std::move(id),
                                 .severity = severity,
                                 .message = std::move(message),
                                 .measured = measured,
                                 .bound = bound});
}

/// Circuit → OS: the aged-silicon safe frequency must bound everything the
/// governor actually commanded.
void check_guardband(const ScenarioResult& r, std::vector<InvariantFinding>& out) {
  if (!r.device || !r.os) return;
  const double used = r.os->max_freq_used_ghz;
  const double safe = r.device->safe_fmax_ghz;
  if (used > safe * (1.0 + 1e-9)) {
    add(out, "guardband.os_vs_circuit", Severity::kViolation,
        "OS governor commanded " + fmt_sig(used, 4) + " GHz but the aged-silicon "
        "guardband (" + fmt_sig(r.device->guardband, 4) + "x) only allows " +
        fmt_sig(safe, 4) + " GHz",
        used, safe);
  } else {
    add(out, "guardband.os_vs_circuit", Severity::kInfo,
        "max commanded frequency " + fmt_sig(used, 4) + " GHz within the aged limit " +
            fmt_sig(safe, 4) + " GHz",
        used, safe);
  }
}

/// OS: HI-criticality deadlines must hold at every overrun level.
void check_criticality(const ScenarioResult& r, std::vector<InvariantFinding>& out) {
  if (!r.mixed_criticality) return;
  for (const MixedCritRow& row : r.mixed_criticality->rows) {
    const double miss_rate =
        row.hi_jobs ? static_cast<double>(row.hi_misses) / static_cast<double>(row.hi_jobs)
                    : 0.0;
    if (miss_rate > 0.02) {
      add(out, "criticality.hi_deadlines", Severity::kViolation,
          "HI miss rate " + fmt_sig(miss_rate, 3) + " at overrun factor " +
              fmt_sig(row.overrun_factor, 3) + " (bound 0.02)",
          miss_rate, 0.02);
    } else if (miss_rate > 0.0) {
      add(out, "criticality.hi_deadlines", Severity::kWarning,
          "nonzero HI miss rate " + fmt_sig(miss_rate, 3) + " at overrun factor " +
              fmt_sig(row.overrun_factor, 3),
          miss_rate, 0.0);
    }
  }
}

/// Replica manager: its recommendation must minimize its own cost model,
/// and its learned rate should track the true rate after enough windows.
void check_replica(const ScenarioResult& r, std::vector<InvariantFinding>& out) {
  if (!r.replica_drift) return;
  const auto& phases = r.spec.replica_drift->phases;
  for (std::size_t i = 0; i < r.replica_drift->rows.size(); ++i) {
    const ReplicaPhaseRow& row = r.replica_drift->rows[i];
    if (!row.costs.empty()) {
      const std::size_t argmin =
          1 + static_cast<std::size_t>(
                  std::min_element(row.costs.begin(), row.costs.end()) - row.costs.begin());
      if (row.replicas != argmin) {
        add(out, "replica.model_consistency", Severity::kViolation,
            "phase '" + row.phase + "': recommended " + std::to_string(row.replicas) +
                " replicas but expected_cost is minimized at " + std::to_string(argmin),
            static_cast<double>(row.replicas), static_cast<double>(argmin));
      }
    }
    const std::size_t windows = i < phases.size() ? phases[i].windows : 0;
    if (windows >= 5) {
      const double tolerance = std::max(row.true_rate * 0.5, 0.02);
      if (std::fabs(row.estimated_rate - row.true_rate) > tolerance) {
        add(out, "replica.estimate_tracking", Severity::kWarning,
            "phase '" + row.phase + "': estimate " + fmt_sig(row.estimated_rate, 3) +
                " drifted from true rate " + fmt_sig(row.true_rate, 3) + " after " +
                std::to_string(windows) + " windows",
            row.estimated_rate, row.true_rate);
      }
    }
  }
}

/// OS error model: replication can only mask faults that happened, so
/// masked + SDC outcomes can never exceed raw soft-error events.
void check_masking(const ScenarioResult& r, std::vector<InvariantFinding>& out) {
  if (!r.os) return;
  const double classified =
      static_cast<double>(r.os->masked_faults + r.os->sdc_failures);
  const double raw = static_cast<double>(r.os->soft_errors);
  if (classified > raw) {
    add(out, "replica.masking_accounting", Severity::kViolation,
        "masked (" + std::to_string(r.os->masked_faults) + ") + SDC (" +
            std::to_string(r.os->sdc_failures) + ") outcomes exceed the " +
            std::to_string(r.os->soft_errors) + " raw soft errors",
        classified, raw);
  }
}

/// Campaign accounting: reports must balance and derived rates stay in
/// range; a degraded (incomplete) campaign is worth a warning.
void check_fault_accounting(const ScenarioResult& r, std::vector<InvariantFinding>& out) {
  for (std::size_t i = 0; i < r.faults.size(); ++i) {
    const FaultStageResult& f = r.faults[i];
    if (f.avf < 0.0 || f.avf > 1.0 || f.corruption_factor < 0.0 ||
        f.corruption_factor > 1.0) {
      add(out, "fault.rate_range", Severity::kViolation,
          "fault campaign " + std::to_string(i) + ": AVF " + fmt_sig(f.avf, 3) +
              " / corruption factor " + fmt_sig(f.corruption_factor, 3) +
              " outside [0,1]",
          f.avf, 1.0);
    }
    if (!f.report.complete()) {
      add(out, "fault.campaign_degraded", Severity::kWarning,
          "fault campaign " + std::to_string(i) + ": only " +
              std::to_string(f.report.completed) + "/" + std::to_string(f.report.trials) +
              " trials completed",
          static_cast<double>(f.report.completed), static_cast<double>(f.report.trials));
    }
  }
}

/// Rollback: deadline hit rates must not *improve* as the error probability
/// grows (small Monte Carlo tolerance).
void check_rollback_monotone(const ScenarioResult& r, std::vector<InvariantFinding>& out) {
  if (!r.rollback) return;
  const auto& points = r.rollback->experiment.points;
  for (rollback::SchedulerKind kind : r.rollback->schedulers) {
    for (std::size_t i = 1; i < points.size(); ++i) {
      const double prev = points[i - 1].hit_rate.at(kind);
      const double curr = points[i].hit_rate.at(kind);
      if (curr > prev + 0.05) {
        add(out, "rollback.monotone_hit_rate", Severity::kViolation,
            rollback::scheduler_name(kind) + ": hit rate rose from " + fmt_sig(prev, 3) +
                " to " + fmt_sig(curr, 3) + " as p grew to " + fmt_sig(points[i].p, 3),
            curr, prev + 0.05);
      }
    }
  }
}

/// Thermal ceiling from the spec (0 = unchecked).
void check_thermal(const ScenarioResult& r, std::vector<InvariantFinding>& out) {
  if (!r.os || !r.spec.os || r.spec.os->temp_limit_k <= 0.0) return;
  const double limit = r.spec.os->temp_limit_k;
  if (r.os->peak_temperature_k > limit) {
    add(out, "thermal.peak_within_limit", Severity::kViolation,
        "peak temperature " + fmt_sig(r.os->peak_temperature_k, 4) + " K above the " +
            fmt_sig(limit, 4) + " K ceiling",
        r.os->peak_temperature_k, limit);
  }
}

/// Learning loop: training should not end worse than it started (stochastic
/// — a warning, not a violation).
void check_crosslayer(const ScenarioResult& r, std::vector<InvariantFinding>& out) {
  if (!r.crosslayer || r.crosslayer->training.episode_rewards.size() < 20) return;
  const double early = r.crosslayer->training.early_mean();
  const double late = r.crosslayer->training.late_mean();
  const double tolerance = 0.1 * std::fabs(early) + 1e-9;
  if (late < early - tolerance) {
    add(out, "crosslayer.learning_progress", Severity::kWarning,
        "late-training mean reward " + fmt_sig(late, 4) + " below early mean " +
            fmt_sig(early, 4),
        late, early);
  }
}

}  // namespace

std::string severity_name(Severity s) {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kViolation: return "violation";
  }
  return "?";
}

std::vector<InvariantFinding> check_invariants(const ScenarioResult& result) {
  std::vector<InvariantFinding> findings;
  check_guardband(result, findings);
  check_criticality(result, findings);
  check_replica(result, findings);
  check_masking(result, findings);
  check_fault_accounting(result, findings);
  check_rollback_monotone(result, findings);
  check_thermal(result, findings);
  check_crosslayer(result, findings);
  return findings;
}

std::size_t count_violations(const std::vector<InvariantFinding>& findings) {
  std::size_t n = 0;
  for (const auto& f : findings) n += f.severity == Severity::kViolation ? 1 : 0;
  return n;
}

std::size_t count_warnings(const std::vector<InvariantFinding>& findings) {
  std::size_t n = 0;
  for (const auto& f : findings) n += f.severity == Severity::kWarning ? 1 : 0;
  return n;
}

obs::Json findings_to_json(const std::vector<InvariantFinding>& findings) {
  obs::Json a = obs::Json::array();
  for (const auto& f : findings) {
    obs::Json e = obs::Json::object();
    e["id"] = f.id;
    e["severity"] = severity_name(f.severity);
    e["message"] = f.message;
    e["measured"] = f.measured;
    e["bound"] = f.bound;
    a.push_back(std::move(e));
  }
  return a;
}

}  // namespace lore::scenario
