// The declarative scenario DSL (DESIGN.md §14): one `ScenarioSpec` names
// everything a cross-layer experiment is made of — workload mix, fault
// model(s), thermal trace, OS governor/mapping policy, criticality levels,
// replica drift, rollback schedulers, the closed learning loop, and the
// campaign knobs — as plain data with a JSON codec on `obs::Json`. The
// composition engine (engine.hpp) instantiates the referenced layer models
// and runs every requested stage; the generator (generate.hpp) enumerates
// this space deterministically; the invariant checker (invariants.hpp)
// cross-examines the stage results against each other.
//
// Stage presence is optionality-driven: a spec with only `faults` runs a
// plain injection campaign; adding `device` + `os` members turns on the
// aging→guardband→governor chain and its differential check. Unknown JSON
// keys are tolerated (forward compatibility); wrong *types* on known keys
// are hard errors with a JSON-path diagnostic, and the file loader maps
// parse errors to file:line:column.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/json.hpp"

namespace lore::scenario {

inline constexpr std::string_view kScenarioSchema = "lore.scenario.v1";

/// Decode failure: what() carries the JSON path of the offending member
/// ("scenario.os.tasks.num_tasks: expected integer") or, from the file
/// loader, a file:line:column prefix.
class SpecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Campaign-policy knobs shared by every campaign the scenario spawns
/// (mirrors the policy half of `lore::CampaignSpec`; identity fields come
/// from the stages).
struct CampaignKnobs {
  /// Worker threads (0 = hardware_concurrency, 1 = serial). Results are
  /// bit-identical for every value — the repo's standing determinism
  /// contract.
  unsigned threads = 0;
  /// Base seed for the scenario's campaigns; unset = ScenarioSpec::seed.
  /// Campaign i derives its own stream via trial_seed(base, i).
  std::optional<std::uint64_t> base_seed;
  /// Write LORECKP1 checkpoints under name-derived default paths.
  bool checkpoint = false;
  double trial_deadline_ms = 0.0;  // 0 = none
  double overall_budget_ms = 0.0;  // 0 = none
  unsigned max_retries = 2;
};

/// One synthetic workload from src/arch/workloads.hpp. `name` is one of
/// dot_product, matmul, bubble_sort, checksum, fibonacci, find_max,
/// random_program (the same names the fabric params use).
struct WorkloadSpec {
  std::string name = "dot_product";
  std::size_t scale = 12;
  std::uint64_t wseed = 42;
};

/// One fault-injection campaign over a workload of the mix.
struct FaultModelSpec {
  /// "arch.fault" (functional ISA injector) or "arch.pipeline" (latch
  /// faults in the 5-stage pipeline model).
  std::string layer = "arch.fault";
  /// arch.fault only: register | memory | instruction.
  std::string target = "register";
  /// Index into ScenarioSpec::workloads.
  std::size_t workload = 0;
  std::size_t trials = 200;
};

/// One step of the ambient-temperature trace. The OS stage simulates each
/// phase back to back; the device stage ages under the time-weighted mean.
struct ThermalPhase {
  double duration_ms = 5000.0;
  double ambient_k = 318.0;
};

/// Transistor/circuit stage: NBTI+HCI threshold shift after `years` of
/// stress, turned into a delay guardband by the alpha-power law and into
/// the maximum frequency the OS may safely command.
struct DeviceSpec {
  double years = 5.0;
  double vdd = 0.8;
  double duty_cycle = 0.5;
  double toggle_rate_ghz = 0.5;
  /// Channel self-heating above ambient (K) — the SHE offset fed into the
  /// aging evaluation on top of the thermal trace.
  double self_heat_rise_k = 20.0;
  double vth0 = 0.35;
  /// Alpha-power-law delay exponent: delay ∝ (V - Vth)^-alpha.
  double alpha = 1.3;
  double nominal_fmax_ghz = 2.0;
  /// Extra static margin multiplied onto the aging guardband.
  double margin = 1.0;
};

/// Task-set generation knobs (mirrors os::TaskSetConfig defaults).
struct TasksetSpec {
  std::size_t num_tasks = 8;
  double utilization = 1.6;
  double min_period_ms = 20.0;
  double max_period_ms = 200.0;
  double hi_fraction = 0.3;
  double lo_budget_fraction = 0.6;
  std::uint64_t seed = 71;
};

/// OS stage: the DVFS/DPM-governed multicore simulator over the thermal
/// trace, one run per thermal phase.
struct OsSpec {
  /// static | ondemand | dpm | rl
  std::string governor = "ondemand";
  /// static governor: the pinned ladder index.
  std::size_t vf_index = 2;
  std::size_t big_cores = 2;
  std::size_t little_cores = 2;
  /// worst_fit | performance | thermal
  std::string mapping = "worst_fit";
  double duration_ms = 4000.0;  // per thermal phase
  double tick_ms = 1.0;
  double control_period_ms = 20.0;
  std::uint64_t sim_seed = 73;
  /// rl governor: training episodes before the frozen evaluation run.
  std::size_t rl_episodes = 4;
  TasksetSpec tasks{};
  double ser_lambda0_per_s = 1e-5;
  double ser_d_exponent = 3.0;
  /// Thermal ceiling checked by the invariant pass (0 = unchecked).
  double temp_limit_k = 0.0;
};

struct CriticalityOverride {
  std::size_t task = 0;
  std::string level = "high";  // high | low
};

/// Mixed-criticality EDF stage: one simulation per overrun factor.
struct MixedCritSpec {
  TasksetSpec tasks{};
  std::vector<CriticalityOverride> force_criticality;
  std::vector<double> overrun_factors = {1.3};
  double duration_ms = 20000.0;
  double tick_ms = 0.5;
  std::uint64_t sim_seed = 83;
};

struct ReplicaPhase {
  std::string name = "phase";
  double fault_rate = 0.001;
  std::size_t windows = 10;
};

/// Adaptive-replica stage: feed the manager Bernoulli fault observations
/// whose true rate steps per phase, and record its estimate/choice.
struct ReplicaDriftSpec {
  std::uint64_t seed = 43;
  std::size_t jobs_per_window = 1000;
  std::vector<ReplicaPhase> phases;
};

/// Rollback/cycle-noise stage: the Sec. V Monte Carlo sweep.
struct RollbackSpec {
  /// Tokens: ds | ds-1.5x | ds-2x | wcet | ds-ml
  std::vector<std::string> schedulers = {"ds", "ds-1.5x", "ds-2x", "wcet", "ds-ml"};
  std::size_t runs_per_point = 100;
  /// Unset = the experiment default (97) — independent of the scenario seed
  /// so committed specs reproduce the legacy figures verbatim.
  std::optional<std::uint64_t> base_seed;
  /// Empty = the paper's default probability grid.
  std::vector<double> error_probabilities;
};

/// Closed learning-loop stage (Fig. 1): Q-learning V-f control with the
/// cross-layer reward, plus fixed-policy baselines.
struct CrossLayerSpec {
  std::uint64_t env_seed = 101;
  double alpha = 0.1;
  double gamma = 0.9;
  double epsilon = 0.2;
  double epsilon_decay = 0.995;
  std::uint64_t learner_seed = 31;
  std::size_t episodes = 120;
  std::size_t steps_per_episode = 200;
  std::size_t eval_episodes = 10;
  bool fixed_policy_baselines = true;
};

/// The whole scenario. Stages run in layer order: device → arch faults →
/// OS sim → mixed criticality → replica drift → rollback → cross-layer
/// loop; absent optionals are skipped.
struct ScenarioSpec {
  std::string name = "scenario";
  std::string description{};
  std::uint64_t seed = 1;
  CampaignKnobs campaign{};
  std::vector<WorkloadSpec> workloads;
  std::vector<FaultModelSpec> faults;
  std::vector<ThermalPhase> thermal;
  std::optional<DeviceSpec> device;
  std::optional<OsSpec> os;
  std::optional<MixedCritSpec> mixed_criticality;
  std::optional<ReplicaDriftSpec> replica_drift;
  std::optional<RollbackSpec> rollback;
  std::optional<CrossLayerSpec> crosslayer;
};

/// Serialize (round-trips through scenario_from_json bit-exactly).
obs::Json to_json(const ScenarioSpec& spec);

/// Decode. Unknown keys are ignored; known keys of the wrong type, bad
/// enum tokens, and out-of-range stage references throw SpecError with the
/// offending JSON path.
ScenarioSpec scenario_from_json(const obs::Json& doc);

/// Parse a JSON text. JSON-level errors gain an `origin:line:column`
/// prefix computed from the parser's byte offset.
ScenarioSpec parse_scenario(std::string_view text, const std::string& origin = "<string>");

/// Load a `.scenario.json` file; all diagnostics carry file:line:column.
ScenarioSpec load_scenario_file(const std::string& path);

}  // namespace lore::scenario
