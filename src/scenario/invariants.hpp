// Differential cross-layer invariant checking: after a scenario runs, the
// stages' results must agree with each other across abstraction levels —
// the circuit-level guardband bounds the frequencies the OS governor used,
// HI-criticality deadlines hold under injected overruns, the replica
// manager's choice minimizes its own cost model, fault accounting balances,
// and rollback hit rates degrade monotonically with the error rate.
// Violations come back as structured findings (the sweep driver's currency),
// never as asserts: a generated scenario that breaks an invariant is a
// *result*, not a crash.
#pragma once

#include <string>
#include <vector>

#include "src/obs/json.hpp"
#include "src/scenario/engine.hpp"

namespace lore::scenario {

enum class Severity : std::uint8_t { kInfo, kWarning, kViolation };

std::string severity_name(Severity s);

/// One checked cross-layer property. `measured` and `bound` carry the two
/// sides of the comparison for reporting (0 when not meaningful).
struct InvariantFinding {
  std::string id;        // e.g. "guardband.os_vs_circuit"
  Severity severity = Severity::kInfo;
  std::string message;
  double measured = 0.0;
  double bound = 0.0;
};

/// Run every applicable check. Deterministic: same result → same findings
/// in the same order.
std::vector<InvariantFinding> check_invariants(const ScenarioResult& result);

std::size_t count_violations(const std::vector<InvariantFinding>& findings);
std::size_t count_warnings(const std::vector<InvariantFinding>& findings);

obs::Json findings_to_json(const std::vector<InvariantFinding>& findings);

}  // namespace lore::scenario
