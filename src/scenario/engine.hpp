// The scenario composition engine: instantiate the layer models a
// `ScenarioSpec` names — device aging/self-heat, arch fault injectors, OS
// governor/mapper/replica policies, rollback schedules, the Fig. 1 learning
// loop — and run every requested stage on the resilient `run_campaign`
// runtime. Stage results keep the raw records so the invariant checker
// (invariants.hpp) can cross-examine layers against each other.
//
// Determinism: every campaign the scenario spawns derives its seed as
// trial_seed(campaign.base_seed or spec.seed, stage index), and every
// entry point used here is per-trial counter-seeded — so a scenario's
// results are bit-identical at any thread count, across resume, and across
// fabric workers (the "scenario.fault" runner below executes the exact same
// trial bodies shard-wise).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/arch/fault.hpp"
#include "src/arch/workloads.hpp"
#include "src/common/campaign.hpp"
#include "src/core/framework.hpp"
#include "src/obs/json.hpp"
#include "src/os/sim.hpp"
#include "src/rollback/montecarlo.hpp"
#include "src/scenario/spec.hpp"

namespace lore::scenario {

/// Device/circuit stage output: aged threshold shift → alpha-power delay
/// guardband → the maximum frequency the platform may safely run at.
struct DeviceStageResult {
  double stress_temperature_k = 0.0;
  double delta_vth_v = 0.0;
  /// Aged/fresh delay ratio (>= 1).
  double guardband = 1.0;
  double safe_fmax_ghz = 0.0;
};

/// One fault-injection campaign's output.
struct FaultStageResult {
  std::string layer;
  std::string target;
  std::size_t workload = 0;
  std::vector<arch::FaultRecord> records;
  CampaignReport report;
  double avf = 0.0;
  double corruption_factor = 0.0;
};

struct OsPhaseResult {
  double ambient_k = 0.0;
  os::SimResult sim;
  /// Highest frequency any active core was commanded to during the phase.
  double max_freq_used_ghz = 0.0;
};

struct OsStageResult {
  std::string governor;
  std::vector<OsPhaseResult> phases;
  double max_freq_used_ghz = 0.0;
  double peak_temperature_k = 0.0;
  double total_energy_j = 0.0;
  std::size_t jobs_released = 0;
  std::size_t deadline_misses = 0;
  std::size_t soft_errors = 0;
  std::size_t sdc_failures = 0;
  std::size_t masked_faults = 0;
};

struct MixedCritRow {
  double overrun_factor = 0.0;
  std::size_t hi_jobs = 0;
  std::size_t hi_misses = 0;
  std::size_t mode_switches = 0;
  double lo_qos = 1.0;
};

struct MixedCritStageResult {
  std::vector<MixedCritRow> rows;
};

struct ReplicaPhaseRow {
  std::string phase;
  double true_rate = 0.0;
  double estimated_rate = 0.0;
  std::size_t replicas = 1;
  /// expected_cost(r) for r = 1..max_replicas under the estimate at the end
  /// of the phase (for the model-consistency invariant).
  std::vector<double> costs;
};

struct ReplicaStageResult {
  std::vector<ReplicaPhaseRow> rows;
};

struct RollbackStageResult {
  std::vector<rollback::SchedulerKind> schedulers;
  rollback::ExperimentResult experiment;
};

struct CrossLayerStageResult {
  core::TrainingReport training;
  double learned_eval = 0.0;
  /// Mean reward of each fixed V-f policy, index = ladder level.
  std::vector<double> fixed_policy_rewards;
};

struct ScenarioResult {
  ScenarioSpec spec;
  std::optional<DeviceStageResult> device;
  std::vector<FaultStageResult> faults;
  std::optional<OsStageResult> os;
  std::optional<MixedCritStageResult> mixed_criticality;
  std::optional<ReplicaStageResult> replica_drift;
  std::optional<RollbackStageResult> rollback;
  std::optional<CrossLayerStageResult> crosslayer;
  double wall_seconds = 0.0;

  /// Campaign trials executed across stages (fault campaigns + rollback
  /// Monte Carlo runs) — the sweep throughput denominator.
  std::size_t total_trials() const;
};

/// Run every stage the spec requests. Throws SpecError on semantic problems
/// the codec cannot see (e.g. a vf_index beyond the ladder).
ScenarioResult run_scenario(const ScenarioSpec& spec);

/// Key numbers of a result as JSON (for artifacts and the example runner's
/// --json mode). Deterministic except for the `wall_seconds` member.
obs::Json result_to_json(const ScenarioResult& result);

/// FNV-1a over every deterministic bit of a result — fault records, OS
/// totals, mixed-criticality/replica rows, rollback hit rates, learning
/// rewards; wall-clock excluded. Equal fingerprints across thread counts /
/// resume / fabric shards are the scenario determinism contract
/// (`lore_scenario --verify`).
std::uint64_t result_fingerprint(const ScenarioResult& result);

// ---- building blocks shared with the fabric runner and tests --------------

/// Seed of fault campaign `fault_index` (trial_seed over the scenario base).
std::uint64_t fault_campaign_seed(const ScenarioSpec& spec, std::size_t fault_index);

/// Campaign spec (identity + policy, no domain fingerprint) for one fault
/// model of the scenario.
CampaignSpec fault_campaign_spec(const ScenarioSpec& spec, std::size_t fault_index);

/// Same, with the domain fingerprint resolved exactly as a worker will —
/// what a fabric coordinator validates shard payloads against.
CampaignSpec resolved_fault_spec(const ScenarioSpec& spec, std::size_t fault_index);

arch::FaultTarget target_from_name(const std::string& name);
arch::Workload build_workload(const WorkloadSpec& w);

/// Register the "scenario.fault" kind with the fabric runner registry:
/// params {"scenario": <spec json>, "fault": i} rebuild the workload in the
/// worker and run the shard through the same `*_campaign_shard` entry
/// points `run_scenario` uses. Idempotent; call before spawning workers.
void register_scenario_runners();

/// Params object the "scenario.fault" kind expects.
obs::Json fault_shard_params(const ScenarioSpec& spec, std::size_t fault_index);

/// Decode a merged checkpoint of fault campaign `fault_index` into records
/// (dispatches on the fault's layer).
CampaignResult<arch::FaultRecord> fault_records_from_checkpoint(
    const ScenarioSpec& spec, std::size_t fault_index, const CampaignCheckpoint& ck);

}  // namespace lore::scenario
