// Counter-seeded generative scenario sweeps: `ScenarioGenerator::at(i)` is a
// pure function of (base_seed, i) — the same per-index derivation
// (`trial_seed`) the campaign engine uses per trial — so a sweep is
// enumerable in any order, shardable, and bit-reproducible: same seed, same
// scenarios, same findings. The generator fuzzes scenario space with small
// stage sizes (a 100-scenario sweep stays in benchtop time) and can plant
// deliberately undersized guardbands to exercise the invariant checker.
#pragma once

#include <cstdint>
#include <vector>

#include "src/obs/json.hpp"
#include "src/scenario/invariants.hpp"
#include "src/scenario/spec.hpp"

namespace lore::scenario {

struct GeneratorConfig {
  std::uint64_t base_seed = 2026;
  /// Fault-campaign trial bounds per generated campaign.
  std::size_t min_fault_trials = 24;
  std::size_t max_fault_trials = 96;
  /// Per-phase OS simulation length (kept short for sweep throughput).
  double os_duration_ms = 400.0;
  double mc_duration_ms = 1500.0;
  std::size_t rollback_runs = 4;
  /// Probability that a generated scenario deliberately under-margins its
  /// guardband (the planted violation the checker must catch). 0 = never.
  double planted_violation_rate = 0.0;
};

class ScenarioGenerator {
 public:
  explicit ScenarioGenerator(GeneratorConfig cfg = {}) : cfg_(cfg) {}

  /// Scenario `index` of the sweep — deterministic, order-independent.
  ScenarioSpec at(std::size_t index) const;

  const GeneratorConfig& config() const { return cfg_; }

 private:
  GeneratorConfig cfg_;
};

/// One swept scenario's outcome.
struct SweepOutcome {
  std::string name;
  std::size_t index = 0;
  std::size_t trials = 0;
  std::vector<InvariantFinding> findings;
};

struct SweepReport {
  std::uint64_t base_seed = 0;
  std::size_t scenarios = 0;
  std::size_t trials = 0;
  std::size_t violations = 0;
  std::size_t warnings = 0;
  double wall_seconds = 0.0;
  std::vector<SweepOutcome> outcomes;

  double trials_per_second() const {
    return wall_seconds > 0.0 ? static_cast<double>(trials) / wall_seconds : 0.0;
  }

  /// FNV-1a over every outcome's (name, finding ids/severities/measured) —
  /// the determinism pin: same seed → same fingerprint, independent of
  /// wall-clock. Excludes timing.
  std::uint64_t findings_fingerprint() const;

  /// Summary + per-finding list (wall-clock members included; the
  /// fingerprint member is what determinism comparisons should use).
  obs::Json to_json() const;
};

/// Run scenarios [0, count) of the generator's space and check invariants
/// on each.
SweepReport run_sweep(const GeneratorConfig& cfg, std::size_t count);

}  // namespace lore::scenario
