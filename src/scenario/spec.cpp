#include "src/scenario/spec.hpp"

#include <algorithm>
#include <cstdio>
#include <string>

namespace lore::scenario {

namespace {

using obs::Json;

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw SpecError(path + ": " + what);
}

const Json* find_member(const Json& j, const char* key) {
  return j.type() == Json::Type::kObject ? j.find(key) : nullptr;
}

void expect_object(const Json& j, const std::string& path) {
  if (j.type() != Json::Type::kObject) fail(path, "expected object");
}

double get_double(const Json& j, const char* key, double def, const std::string& path) {
  const Json* m = find_member(j, key);
  if (!m) return def;
  if (!m->is_number()) fail(path + "." + key, "expected number");
  return m->as_double();
}

std::int64_t get_integer(const Json& j, const char* key, std::int64_t def,
                         const std::string& path) {
  const Json* m = find_member(j, key);
  if (!m) return def;
  if (m->type() != Json::Type::kInt) fail(path + "." + key, "expected integer");
  return m->as_int();
}

std::uint64_t get_u64(const Json& j, const char* key, std::uint64_t def,
                      const std::string& path) {
  const std::int64_t v = get_integer(j, key, static_cast<std::int64_t>(def), path);
  if (v < 0) fail(path + "." + key, "expected non-negative integer");
  return static_cast<std::uint64_t>(v);
}

std::size_t get_size(const Json& j, const char* key, std::size_t def,
                     const std::string& path) {
  return static_cast<std::size_t>(get_u64(j, key, def, path));
}

bool get_bool(const Json& j, const char* key, bool def, const std::string& path) {
  const Json* m = find_member(j, key);
  if (!m) return def;
  if (m->type() != Json::Type::kBool) fail(path + "." + key, "expected boolean");
  return m->as_bool();
}

std::string get_string(const Json& j, const char* key, const std::string& def,
                       const std::string& path) {
  const Json* m = find_member(j, key);
  if (!m) return def;
  if (m->type() != Json::Type::kString) fail(path + "." + key, "expected string");
  return m->as_string();
}

std::vector<double> get_double_array(const Json& j, const char* key,
                                     std::vector<double> def, const std::string& path) {
  const Json* m = find_member(j, key);
  if (!m) return def;
  if (m->type() != Json::Type::kArray) fail(path + "." + key, "expected array of numbers");
  std::vector<double> out;
  out.reserve(m->size());
  for (std::size_t i = 0; i < m->size(); ++i) {
    const Json& e = m->at(i);
    if (!e.is_number())
      fail(path + "." + key + "[" + std::to_string(i) + "]", "expected number");
    out.push_back(e.as_double());
  }
  return out;
}

void check_token(const std::string& value, std::initializer_list<const char*> allowed,
                 const std::string& path) {
  for (const char* t : allowed)
    if (value == t) return;
  std::string msg = "unknown token '" + value + "' (expected one of:";
  for (const char* t : allowed) msg += std::string(" ") + t;
  fail(path, msg + ")");
}

// ---- per-struct decoders ---------------------------------------------------

CampaignKnobs decode_campaign(const Json& j, const std::string& path) {
  expect_object(j, path);
  CampaignKnobs k;
  k.threads = static_cast<unsigned>(get_u64(j, "threads", k.threads, path));
  if (find_member(j, "base_seed")) k.base_seed = get_u64(j, "base_seed", 0, path);
  k.checkpoint = get_bool(j, "checkpoint", k.checkpoint, path);
  k.trial_deadline_ms = get_double(j, "trial_deadline_ms", k.trial_deadline_ms, path);
  k.overall_budget_ms = get_double(j, "overall_budget_ms", k.overall_budget_ms, path);
  k.max_retries = static_cast<unsigned>(get_u64(j, "max_retries", k.max_retries, path));
  return k;
}

WorkloadSpec decode_workload(const Json& j, const std::string& path) {
  expect_object(j, path);
  WorkloadSpec w;
  w.name = get_string(j, "name", w.name, path);
  check_token(w.name,
              {"dot_product", "matmul", "bubble_sort", "checksum", "fibonacci",
               "find_max", "random_program"},
              path + ".name");
  w.scale = get_size(j, "scale", w.scale, path);
  w.wseed = get_u64(j, "wseed", w.wseed, path);
  return w;
}

FaultModelSpec decode_fault(const Json& j, const std::string& path) {
  expect_object(j, path);
  FaultModelSpec f;
  f.layer = get_string(j, "layer", f.layer, path);
  check_token(f.layer, {"arch.fault", "arch.pipeline"}, path + ".layer");
  f.target = get_string(j, "target", f.target, path);
  check_token(f.target, {"register", "memory", "instruction"}, path + ".target");
  f.workload = get_size(j, "workload", f.workload, path);
  f.trials = get_size(j, "trials", f.trials, path);
  return f;
}

ThermalPhase decode_thermal(const Json& j, const std::string& path) {
  expect_object(j, path);
  ThermalPhase p;
  p.duration_ms = get_double(j, "duration_ms", p.duration_ms, path);
  p.ambient_k = get_double(j, "ambient_k", p.ambient_k, path);
  return p;
}

DeviceSpec decode_device(const Json& j, const std::string& path) {
  expect_object(j, path);
  DeviceSpec d;
  d.years = get_double(j, "years", d.years, path);
  d.vdd = get_double(j, "vdd", d.vdd, path);
  d.duty_cycle = get_double(j, "duty_cycle", d.duty_cycle, path);
  d.toggle_rate_ghz = get_double(j, "toggle_rate_ghz", d.toggle_rate_ghz, path);
  d.self_heat_rise_k = get_double(j, "self_heat_rise_k", d.self_heat_rise_k, path);
  d.vth0 = get_double(j, "vth0", d.vth0, path);
  d.alpha = get_double(j, "alpha", d.alpha, path);
  d.nominal_fmax_ghz = get_double(j, "nominal_fmax_ghz", d.nominal_fmax_ghz, path);
  d.margin = get_double(j, "margin", d.margin, path);
  return d;
}

TasksetSpec decode_taskset(const Json& j, const std::string& path) {
  expect_object(j, path);
  TasksetSpec t;
  t.num_tasks = get_size(j, "num_tasks", t.num_tasks, path);
  t.utilization = get_double(j, "utilization", t.utilization, path);
  t.min_period_ms = get_double(j, "min_period_ms", t.min_period_ms, path);
  t.max_period_ms = get_double(j, "max_period_ms", t.max_period_ms, path);
  t.hi_fraction = get_double(j, "hi_fraction", t.hi_fraction, path);
  t.lo_budget_fraction = get_double(j, "lo_budget_fraction", t.lo_budget_fraction, path);
  t.seed = get_u64(j, "seed", t.seed, path);
  return t;
}

OsSpec decode_os(const Json& j, const std::string& path) {
  expect_object(j, path);
  OsSpec o;
  o.governor = get_string(j, "governor", o.governor, path);
  check_token(o.governor, {"static", "ondemand", "dpm", "rl"}, path + ".governor");
  o.vf_index = get_size(j, "vf_index", o.vf_index, path);
  o.big_cores = get_size(j, "big_cores", o.big_cores, path);
  o.little_cores = get_size(j, "little_cores", o.little_cores, path);
  o.mapping = get_string(j, "mapping", o.mapping, path);
  check_token(o.mapping, {"worst_fit", "performance", "thermal"}, path + ".mapping");
  o.duration_ms = get_double(j, "duration_ms", o.duration_ms, path);
  o.tick_ms = get_double(j, "tick_ms", o.tick_ms, path);
  o.control_period_ms = get_double(j, "control_period_ms", o.control_period_ms, path);
  o.sim_seed = get_u64(j, "sim_seed", o.sim_seed, path);
  o.rl_episodes = get_size(j, "rl_episodes", o.rl_episodes, path);
  if (const Json* t = find_member(j, "tasks")) o.tasks = decode_taskset(*t, path + ".tasks");
  o.ser_lambda0_per_s = get_double(j, "ser_lambda0_per_s", o.ser_lambda0_per_s, path);
  o.ser_d_exponent = get_double(j, "ser_d_exponent", o.ser_d_exponent, path);
  o.temp_limit_k = get_double(j, "temp_limit_k", o.temp_limit_k, path);
  return o;
}

MixedCritSpec decode_mixed_crit(const Json& j, const std::string& path) {
  expect_object(j, path);
  MixedCritSpec m;
  if (const Json* t = find_member(j, "tasks")) m.tasks = decode_taskset(*t, path + ".tasks");
  if (const Json* f = find_member(j, "force_criticality")) {
    if (f->type() != Json::Type::kArray)
      fail(path + ".force_criticality", "expected array");
    for (std::size_t i = 0; i < f->size(); ++i) {
      const std::string p = path + ".force_criticality[" + std::to_string(i) + "]";
      const Json& e = f->at(i);
      expect_object(e, p);
      CriticalityOverride o;
      o.task = get_size(e, "task", o.task, p);
      o.level = get_string(e, "level", o.level, p);
      check_token(o.level, {"high", "low"}, p + ".level");
      m.force_criticality.push_back(o);
    }
  }
  m.overrun_factors = get_double_array(j, "overrun_factors", m.overrun_factors, path);
  m.duration_ms = get_double(j, "duration_ms", m.duration_ms, path);
  m.tick_ms = get_double(j, "tick_ms", m.tick_ms, path);
  m.sim_seed = get_u64(j, "sim_seed", m.sim_seed, path);
  return m;
}

ReplicaDriftSpec decode_replica(const Json& j, const std::string& path) {
  expect_object(j, path);
  ReplicaDriftSpec r;
  r.seed = get_u64(j, "seed", r.seed, path);
  r.jobs_per_window = get_size(j, "jobs_per_window", r.jobs_per_window, path);
  if (const Json* ph = find_member(j, "phases")) {
    if (ph->type() != Json::Type::kArray) fail(path + ".phases", "expected array");
    for (std::size_t i = 0; i < ph->size(); ++i) {
      const std::string p = path + ".phases[" + std::to_string(i) + "]";
      const Json& e = ph->at(i);
      expect_object(e, p);
      ReplicaPhase phase;
      phase.name = get_string(e, "name", phase.name, p);
      phase.fault_rate = get_double(e, "fault_rate", phase.fault_rate, p);
      phase.windows = get_size(e, "windows", phase.windows, p);
      r.phases.push_back(std::move(phase));
    }
  }
  return r;
}

RollbackSpec decode_rollback(const Json& j, const std::string& path) {
  expect_object(j, path);
  RollbackSpec r;
  if (const Json* s = find_member(j, "schedulers")) {
    if (s->type() != Json::Type::kArray) fail(path + ".schedulers", "expected array");
    r.schedulers.clear();
    for (std::size_t i = 0; i < s->size(); ++i) {
      const std::string p = path + ".schedulers[" + std::to_string(i) + "]";
      const Json& e = s->at(i);
      if (e.type() != Json::Type::kString) fail(p, "expected string");
      check_token(e.as_string(), {"ds", "ds-1.5x", "ds-2x", "wcet", "ds-ml"}, p);
      r.schedulers.push_back(e.as_string());
    }
  }
  r.runs_per_point = get_size(j, "runs_per_point", r.runs_per_point, path);
  if (find_member(j, "base_seed")) r.base_seed = get_u64(j, "base_seed", 0, path);
  r.error_probabilities =
      get_double_array(j, "error_probabilities", r.error_probabilities, path);
  return r;
}

CrossLayerSpec decode_crosslayer(const Json& j, const std::string& path) {
  expect_object(j, path);
  CrossLayerSpec c;
  c.env_seed = get_u64(j, "env_seed", c.env_seed, path);
  c.alpha = get_double(j, "alpha", c.alpha, path);
  c.gamma = get_double(j, "gamma", c.gamma, path);
  c.epsilon = get_double(j, "epsilon", c.epsilon, path);
  c.epsilon_decay = get_double(j, "epsilon_decay", c.epsilon_decay, path);
  c.learner_seed = get_u64(j, "learner_seed", c.learner_seed, path);
  c.episodes = get_size(j, "episodes", c.episodes, path);
  c.steps_per_episode = get_size(j, "steps_per_episode", c.steps_per_episode, path);
  c.eval_episodes = get_size(j, "eval_episodes", c.eval_episodes, path);
  c.fixed_policy_baselines =
      get_bool(j, "fixed_policy_baselines", c.fixed_policy_baselines, path);
  return c;
}

// ---- per-struct encoders ---------------------------------------------------

Json encode_campaign(const CampaignKnobs& k) {
  Json j = Json::object();
  j["threads"] = static_cast<std::int64_t>(k.threads);
  if (k.base_seed) j["base_seed"] = static_cast<std::int64_t>(*k.base_seed);
  j["checkpoint"] = k.checkpoint;
  j["trial_deadline_ms"] = k.trial_deadline_ms;
  j["overall_budget_ms"] = k.overall_budget_ms;
  j["max_retries"] = static_cast<std::int64_t>(k.max_retries);
  return j;
}

Json encode_taskset(const TasksetSpec& t) {
  Json j = Json::object();
  j["num_tasks"] = static_cast<std::int64_t>(t.num_tasks);
  j["utilization"] = t.utilization;
  j["min_period_ms"] = t.min_period_ms;
  j["max_period_ms"] = t.max_period_ms;
  j["hi_fraction"] = t.hi_fraction;
  j["lo_budget_fraction"] = t.lo_budget_fraction;
  j["seed"] = static_cast<std::int64_t>(t.seed);
  return j;
}

Json encode_doubles(const std::vector<double>& v) {
  Json a = Json::array();
  for (double d : v) a.push_back(d);
  return a;
}

}  // namespace

Json to_json(const ScenarioSpec& spec) {
  Json j = Json::object();
  j["schema"] = std::string(kScenarioSchema);
  j["name"] = spec.name;
  if (!spec.description.empty()) j["description"] = spec.description;
  j["seed"] = static_cast<std::int64_t>(spec.seed);
  j["campaign"] = encode_campaign(spec.campaign);
  if (!spec.workloads.empty()) {
    Json a = Json::array();
    for (const auto& w : spec.workloads) {
      Json e = Json::object();
      e["name"] = w.name;
      e["scale"] = static_cast<std::int64_t>(w.scale);
      e["wseed"] = static_cast<std::int64_t>(w.wseed);
      a.push_back(std::move(e));
    }
    j["workloads"] = std::move(a);
  }
  if (!spec.faults.empty()) {
    Json a = Json::array();
    for (const auto& f : spec.faults) {
      Json e = Json::object();
      e["layer"] = f.layer;
      e["target"] = f.target;
      e["workload"] = static_cast<std::int64_t>(f.workload);
      e["trials"] = static_cast<std::int64_t>(f.trials);
      a.push_back(std::move(e));
    }
    j["faults"] = std::move(a);
  }
  if (!spec.thermal.empty()) {
    Json a = Json::array();
    for (const auto& p : spec.thermal) {
      Json e = Json::object();
      e["duration_ms"] = p.duration_ms;
      e["ambient_k"] = p.ambient_k;
      a.push_back(std::move(e));
    }
    j["thermal"] = std::move(a);
  }
  if (spec.device) {
    const DeviceSpec& d = *spec.device;
    Json e = Json::object();
    e["years"] = d.years;
    e["vdd"] = d.vdd;
    e["duty_cycle"] = d.duty_cycle;
    e["toggle_rate_ghz"] = d.toggle_rate_ghz;
    e["self_heat_rise_k"] = d.self_heat_rise_k;
    e["vth0"] = d.vth0;
    e["alpha"] = d.alpha;
    e["nominal_fmax_ghz"] = d.nominal_fmax_ghz;
    e["margin"] = d.margin;
    j["device"] = std::move(e);
  }
  if (spec.os) {
    const OsSpec& o = *spec.os;
    Json e = Json::object();
    e["governor"] = o.governor;
    e["vf_index"] = static_cast<std::int64_t>(o.vf_index);
    e["big_cores"] = static_cast<std::int64_t>(o.big_cores);
    e["little_cores"] = static_cast<std::int64_t>(o.little_cores);
    e["mapping"] = o.mapping;
    e["duration_ms"] = o.duration_ms;
    e["tick_ms"] = o.tick_ms;
    e["control_period_ms"] = o.control_period_ms;
    e["sim_seed"] = static_cast<std::int64_t>(o.sim_seed);
    e["rl_episodes"] = static_cast<std::int64_t>(o.rl_episodes);
    e["tasks"] = encode_taskset(o.tasks);
    e["ser_lambda0_per_s"] = o.ser_lambda0_per_s;
    e["ser_d_exponent"] = o.ser_d_exponent;
    e["temp_limit_k"] = o.temp_limit_k;
    j["os"] = std::move(e);
  }
  if (spec.mixed_criticality) {
    const MixedCritSpec& m = *spec.mixed_criticality;
    Json e = Json::object();
    e["tasks"] = encode_taskset(m.tasks);
    if (!m.force_criticality.empty()) {
      Json a = Json::array();
      for (const auto& o : m.force_criticality) {
        Json ov = Json::object();
        ov["task"] = static_cast<std::int64_t>(o.task);
        ov["level"] = o.level;
        a.push_back(std::move(ov));
      }
      e["force_criticality"] = std::move(a);
    }
    e["overrun_factors"] = encode_doubles(m.overrun_factors);
    e["duration_ms"] = m.duration_ms;
    e["tick_ms"] = m.tick_ms;
    e["sim_seed"] = static_cast<std::int64_t>(m.sim_seed);
    j["mixed_criticality"] = std::move(e);
  }
  if (spec.replica_drift) {
    const ReplicaDriftSpec& r = *spec.replica_drift;
    Json e = Json::object();
    e["seed"] = static_cast<std::int64_t>(r.seed);
    e["jobs_per_window"] = static_cast<std::int64_t>(r.jobs_per_window);
    Json a = Json::array();
    for (const auto& p : r.phases) {
      Json ph = Json::object();
      ph["name"] = p.name;
      ph["fault_rate"] = p.fault_rate;
      ph["windows"] = static_cast<std::int64_t>(p.windows);
      a.push_back(std::move(ph));
    }
    e["phases"] = std::move(a);
    j["replica_drift"] = std::move(e);
  }
  if (spec.rollback) {
    const RollbackSpec& r = *spec.rollback;
    Json e = Json::object();
    Json s = Json::array();
    for (const auto& name : r.schedulers) s.push_back(name);
    e["schedulers"] = std::move(s);
    e["runs_per_point"] = static_cast<std::int64_t>(r.runs_per_point);
    if (r.base_seed) e["base_seed"] = static_cast<std::int64_t>(*r.base_seed);
    if (!r.error_probabilities.empty())
      e["error_probabilities"] = encode_doubles(r.error_probabilities);
    j["rollback"] = std::move(e);
  }
  if (spec.crosslayer) {
    const CrossLayerSpec& c = *spec.crosslayer;
    Json e = Json::object();
    e["env_seed"] = static_cast<std::int64_t>(c.env_seed);
    e["alpha"] = c.alpha;
    e["gamma"] = c.gamma;
    e["epsilon"] = c.epsilon;
    e["epsilon_decay"] = c.epsilon_decay;
    e["learner_seed"] = static_cast<std::int64_t>(c.learner_seed);
    e["episodes"] = static_cast<std::int64_t>(c.episodes);
    e["steps_per_episode"] = static_cast<std::int64_t>(c.steps_per_episode);
    e["eval_episodes"] = static_cast<std::int64_t>(c.eval_episodes);
    e["fixed_policy_baselines"] = c.fixed_policy_baselines;
    j["crosslayer"] = std::move(e);
  }
  return j;
}

ScenarioSpec scenario_from_json(const Json& doc) {
  const std::string root = "scenario";
  expect_object(doc, root);
  const std::string schema = get_string(doc, "schema", std::string(kScenarioSchema), root);
  if (schema != kScenarioSchema)
    fail(root + ".schema", "unsupported schema '" + schema + "' (this build reads " +
                               std::string(kScenarioSchema) + ")");
  ScenarioSpec spec;
  spec.name = get_string(doc, "name", spec.name, root);
  spec.description = get_string(doc, "description", spec.description, root);
  spec.seed = get_u64(doc, "seed", spec.seed, root);
  if (const Json* c = find_member(doc, "campaign"))
    spec.campaign = decode_campaign(*c, root + ".campaign");
  if (const Json* w = find_member(doc, "workloads")) {
    if (w->type() != Json::Type::kArray) fail(root + ".workloads", "expected array");
    for (std::size_t i = 0; i < w->size(); ++i)
      spec.workloads.push_back(
          decode_workload(w->at(i), root + ".workloads[" + std::to_string(i) + "]"));
  }
  if (const Json* f = find_member(doc, "faults")) {
    if (f->type() != Json::Type::kArray) fail(root + ".faults", "expected array");
    for (std::size_t i = 0; i < f->size(); ++i) {
      const std::string p = root + ".faults[" + std::to_string(i) + "]";
      FaultModelSpec fm = decode_fault(f->at(i), p);
      if (fm.workload >= spec.workloads.size())
        fail(p + ".workload", "workload index " + std::to_string(fm.workload) +
                                  " out of range (have " +
                                  std::to_string(spec.workloads.size()) + " workloads)");
      spec.faults.push_back(std::move(fm));
    }
  }
  if (const Json* t = find_member(doc, "thermal")) {
    if (t->type() != Json::Type::kArray) fail(root + ".thermal", "expected array");
    for (std::size_t i = 0; i < t->size(); ++i)
      spec.thermal.push_back(
          decode_thermal(t->at(i), root + ".thermal[" + std::to_string(i) + "]"));
  }
  if (const Json* d = find_member(doc, "device"))
    spec.device = decode_device(*d, root + ".device");
  if (const Json* o = find_member(doc, "os")) spec.os = decode_os(*o, root + ".os");
  if (const Json* m = find_member(doc, "mixed_criticality"))
    spec.mixed_criticality = decode_mixed_crit(*m, root + ".mixed_criticality");
  if (const Json* r = find_member(doc, "replica_drift"))
    spec.replica_drift = decode_replica(*r, root + ".replica_drift");
  if (const Json* r = find_member(doc, "rollback"))
    spec.rollback = decode_rollback(*r, root + ".rollback");
  if (const Json* c = find_member(doc, "crosslayer"))
    spec.crosslayer = decode_crosslayer(*c, root + ".crosslayer");
  return spec;
}

ScenarioSpec parse_scenario(std::string_view text, const std::string& origin) {
  Json doc;
  try {
    doc = Json::parse(text);
  } catch (const obs::JsonParseError& e) {
    // Map the parser's byte offset to a 1-based line:column in the original
    // text so editors can jump straight to the defect.
    std::size_t line = 1, col = 1;
    const std::size_t stop = std::min(e.offset(), text.size());
    for (std::size_t i = 0; i < stop; ++i) {
      if (text[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw SpecError(origin + ":" + std::to_string(line) + ":" + std::to_string(col) +
                    ": " + e.what());
  }
  try {
    return scenario_from_json(doc);
  } catch (const SpecError& e) {
    throw SpecError(origin + ": " + e.what());
  }
}

ScenarioSpec load_scenario_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw SpecError(path + ": cannot open scenario file");
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return parse_scenario(text, path);
}

}  // namespace lore::scenario
