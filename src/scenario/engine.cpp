#include "src/scenario/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <memory>

#include "src/arch/pipeline.hpp"
#include "src/device/aging.hpp"
#include "src/common/parallel.hpp"
#include "src/core/crosslayer.hpp"
#include "src/fabric/runners.hpp"
#include "src/os/governor.hpp"
#include "src/os/mapper.hpp"
#include "src/os/platform.hpp"
#include "src/obs/obs.hpp"
#include "src/os/replica.hpp"
#include "src/os/tasks.hpp"

namespace lore::scenario {

namespace {

/// Pass-through governor that remembers the highest frequency any active
/// core was commanded to — the measured side of the guardband invariant.
class RecordingGovernor final : public os::Governor {
 public:
  explicit RecordingGovernor(os::Governor* inner) : inner_(inner) {}

  void control(os::Platform& platform, const os::SystemStatus& status) override {
    if (inner_) inner_->control(platform, status);
    for (std::size_t i = 0; i < platform.num_cores(); ++i) {
      const os::Core& core = platform.core(i);
      if (core.power_state != os::PowerState::kActive) continue;
      max_freq_ghz_ =
          std::max(max_freq_ghz_, platform.ladder()[core.vf_index].freq_ghz);
    }
  }
  void end_episode() override {
    if (inner_) inner_->end_episode();
  }
  std::string name() const override { return inner_ ? inner_->name() : "static-levels"; }

  double max_freq_ghz() const { return max_freq_ghz_; }

 private:
  os::Governor* inner_;
  double max_freq_ghz_ = 0.0;
};

os::TaskSetConfig to_taskset_config(const TasksetSpec& t) {
  os::TaskSetConfig cfg;
  cfg.num_tasks = t.num_tasks;
  cfg.total_utilization = t.utilization;
  cfg.min_period_ms = t.min_period_ms;
  cfg.max_period_ms = t.max_period_ms;
  cfg.high_criticality_fraction = t.hi_fraction;
  cfg.lo_budget_fraction = t.lo_budget_fraction;
  cfg.seed = t.seed;
  return cfg;
}

rollback::SchedulerKind scheduler_from_token(const std::string& token) {
  if (token == "ds") return rollback::SchedulerKind::kDs;
  if (token == "ds-1.5x") return rollback::SchedulerKind::kDs15;
  if (token == "ds-2x") return rollback::SchedulerKind::kDs2;
  if (token == "wcet") return rollback::SchedulerKind::kWcet;
  if (token == "ds-ml") return rollback::SchedulerKind::kDsLearned;
  throw SpecError("scenario.rollback.schedulers: unknown scheduler '" + token + "'");
}

std::chrono::milliseconds to_ms(double ms) {
  return std::chrono::milliseconds(static_cast<std::int64_t>(ms));
}

// ---- stages ----------------------------------------------------------------

DeviceStageResult run_device_stage(const ScenarioSpec& spec) {
  const DeviceSpec& d = *spec.device;
  // Time-weighted ambient of the thermal trace plus the SHE channel rise.
  double ambient_k = 318.0;
  if (!spec.thermal.empty()) {
    double weighted = 0.0, total = 0.0;
    for (const ThermalPhase& p : spec.thermal) {
      weighted += p.ambient_k * p.duration_ms;
      total += p.duration_ms;
    }
    if (total > 0.0) ambient_k = weighted / total;
  }
  DeviceStageResult out;
  out.stress_temperature_k = ambient_k + d.self_heat_rise_k;

  const device::AgingModel aging;
  out.delta_vth_v = aging.delta_vth(device::StressCondition{
      .vdd = d.vdd,
      .temperature = out.stress_temperature_k,
      .duty_cycle = d.duty_cycle,
      .toggle_rate_ghz = d.toggle_rate_ghz,
      .years = d.years});

  // Alpha-power law: gate delay ∝ Vdd / (Vdd - Vth)^alpha, so the aged/fresh
  // delay ratio at constant Vdd is ((Vdd-Vth0)/(Vdd-Vth0-ΔVth))^alpha.
  const double overdrive = d.vdd - d.vth0;
  const double aged_overdrive = overdrive - out.delta_vth_v;
  if (overdrive <= 0.0 || aged_overdrive <= 0.0) {
    out.guardband = 10.0;  // device effectively dead at this Vdd
  } else {
    out.guardband = std::pow(overdrive / aged_overdrive, d.alpha);
  }
  out.safe_fmax_ghz = d.nominal_fmax_ghz / (out.guardband * d.margin);
  return out;
}

FaultStageResult run_fault_stage(const ScenarioSpec& spec, std::size_t fault_index) {
  const FaultModelSpec& f = spec.faults[fault_index];
  const arch::Workload workload = build_workload(spec.workloads[f.workload]);
  const CampaignSpec cs = fault_campaign_spec(spec, fault_index);

  FaultStageResult out;
  out.layer = f.layer;
  out.target = f.target;
  out.workload = f.workload;
  if (f.layer == "arch.pipeline") {
    auto result = arch::pipeline_campaign_run(workload, cs);
    out.records = std::move(result.records);
    out.report = result.report;
  } else {
    const arch::FaultInjector injector(workload);
    auto result = injector.campaign_run(cs, target_from_name(f.target));
    out.records = std::move(result.records);
    out.report = result.report;
  }
  out.avf = arch::avf(out.records);
  out.corruption_factor = arch::architectural_corruption_factor(out.records);
  return out;
}

OsStageResult run_os_stage(const ScenarioSpec& spec) {
  const OsSpec& o = *spec.os;
  OsStageResult out;
  out.governor = o.governor;

  std::vector<os::CoreType> core_types;
  for (std::size_t i = 0; i < o.big_cores; ++i) core_types.push_back(os::make_big_core());
  for (std::size_t i = 0; i < o.little_cores; ++i)
    core_types.push_back(os::make_little_core());
  if (core_types.empty())
    throw SpecError("scenario.os: big_cores + little_cores must be > 0");

  const os::TaskSet tasks = os::generate_taskset(to_taskset_config(o.tasks));

  // One phase at the default ambient when the spec has no thermal trace.
  std::vector<ThermalPhase> phases = spec.thermal;
  if (phases.empty()) phases.push_back(ThermalPhase{.duration_ms = o.duration_ms});

  for (std::size_t pi = 0; pi < phases.size(); ++pi) {
    os::PlatformConfig pc;
    pc.ambient_k = phases[pi].ambient_k;
    os::Platform platform(core_types, pc);
    if (o.vf_index >= platform.ladder().size())
      throw SpecError("scenario.os.vf_index: index " + std::to_string(o.vf_index) +
                      " beyond the " + std::to_string(platform.ladder().size()) +
                      "-level ladder");

    std::vector<std::size_t> mapping;
    if (o.mapping == "performance") {
      mapping = os::map_performance_only(tasks, platform);
    } else if (o.mapping == "thermal") {
      mapping = os::map_thermal_aware(tasks, platform);
    } else {
      std::vector<double> capacity;
      for (const auto& t : core_types) capacity.push_back(t.perf_factor);
      mapping = os::partition_worst_fit(tasks, capacity);
    }

    os::SimConfig sc;
    sc.tick_ms = o.tick_ms;
    sc.duration_ms = o.duration_ms;
    sc.control_period_ms = o.control_period_ms;
    sc.ser = os::SerParams{.lambda0_per_s = o.ser_lambda0_per_s,
                           .d_exponent = o.ser_d_exponent};
    sc.seed = pi == 0 ? o.sim_seed : trial_seed(o.sim_seed, pi);

    os::StaticGovernor static_gov(o.vf_index);
    os::OndemandGovernor ondemand_gov;
    os::TimeoutDpmGovernor dpm_gov(&ondemand_gov);
    std::unique_ptr<os::RlDvfsGovernor> rl_gov;
    os::Governor* inner = nullptr;
    if (o.governor == "static") {
      inner = &static_gov;
    } else if (o.governor == "ondemand") {
      inner = &ondemand_gov;
    } else if (o.governor == "dpm") {
      inner = &dpm_gov;
    } else {  // "rl" (codec-validated)
      rl_gov = os::train_rl_governor(platform, tasks, mapping, sc, o.rl_episodes);
      rl_gov->freeze();
      inner = rl_gov.get();
    }
    RecordingGovernor recorder(inner);

    os::SystemSimulator sim(platform, tasks, mapping, sc);
    OsPhaseResult phase;
    phase.ambient_k = phases[pi].ambient_k;
    phase.sim = sim.run(&recorder);
    phase.max_freq_used_ghz = recorder.max_freq_ghz();
    out.max_freq_used_ghz = std::max(out.max_freq_used_ghz, phase.max_freq_used_ghz);
    out.peak_temperature_k = std::max(out.peak_temperature_k, phase.sim.peak_temperature_k);
    out.total_energy_j += phase.sim.energy_j;
    out.jobs_released += phase.sim.jobs_released;
    out.deadline_misses += phase.sim.deadline_misses;
    out.soft_errors += phase.sim.soft_errors;
    out.sdc_failures += phase.sim.sdc_failures;
    out.masked_faults += phase.sim.masked_faults;
    out.phases.push_back(std::move(phase));
  }
  return out;
}

MixedCritStageResult run_mixed_crit_stage(const ScenarioSpec& spec) {
  const MixedCritSpec& m = *spec.mixed_criticality;
  os::TaskSet tasks = os::generate_taskset(to_taskset_config(m.tasks));
  for (const CriticalityOverride& o : m.force_criticality) {
    if (o.task >= tasks.size())
      throw SpecError("scenario.mixed_criticality.force_criticality: task index " +
                      std::to_string(o.task) + " out of range");
    tasks[o.task].criticality =
        o.level == "high" ? os::Criticality::kHigh : os::Criticality::kLow;
  }
  MixedCritStageResult out;
  for (double overrun : m.overrun_factors) {
    const auto r = os::simulate_mixed_criticality(
        tasks, os::McSimConfig{.tick_ms = m.tick_ms,
                               .duration_ms = m.duration_ms,
                               .overrun_factor = overrun,
                               .seed = m.sim_seed});
    out.rows.push_back(MixedCritRow{.overrun_factor = overrun,
                                    .hi_jobs = r.hi_jobs,
                                    .hi_misses = r.hi_misses,
                                    .mode_switches = r.mode_switches,
                                    .lo_qos = r.lo_qos()});
  }
  return out;
}

ReplicaStageResult run_replica_stage(const ScenarioSpec& spec) {
  const ReplicaDriftSpec& rd = *spec.replica_drift;
  os::ReplicaManager mgr;
  lore::Rng rng(rd.seed);
  ReplicaStageResult out;
  for (const ReplicaPhase& phase : rd.phases) {
    for (std::size_t w = 0; w < phase.windows; ++w) {
      std::size_t faults = 0;
      for (std::size_t j = 0; j < rd.jobs_per_window; ++j)
        faults += rng.bernoulli(phase.fault_rate) ? 1 : 0;
      mgr.observe(faults, rd.jobs_per_window);
    }
    ReplicaPhaseRow row;
    row.phase = phase.name;
    row.true_rate = phase.fault_rate;
    row.estimated_rate = mgr.fault_probability();
    row.replicas = mgr.recommended_replicas();
    for (std::size_t r = 1; r <= os::ReplicaManagerConfig{}.max_replicas; ++r)
      row.costs.push_back(mgr.expected_cost(r));
    out.rows.push_back(std::move(row));
  }
  return out;
}

RollbackStageResult run_rollback_stage(const ScenarioSpec& spec) {
  const RollbackSpec& rb = *spec.rollback;
  rollback::ExperimentConfig cfg;
  cfg.runs_per_point = rb.runs_per_point;
  if (!rb.error_probabilities.empty()) cfg.error_probabilities = rb.error_probabilities;
  if (rb.base_seed) cfg.campaign.base_seed = *rb.base_seed;
  cfg.campaign.threads = spec.campaign.threads;
  cfg.campaign.max_retries = spec.campaign.max_retries;
  if (spec.campaign.trial_deadline_ms > 0.0)
    cfg.campaign.trial_deadline = to_ms(spec.campaign.trial_deadline_ms);

  RollbackStageResult out;
  for (const std::string& token : rb.schedulers)
    out.schedulers.push_back(scheduler_from_token(token));
  out.experiment = rollback::run_experiment(cfg, out.schedulers);
  return out;
}

CrossLayerStageResult run_crosslayer_stage(const ScenarioSpec& spec) {
  const CrossLayerSpec& cl = *spec.crosslayer;
  core::CrossLayerConfig env_cfg;
  env_cfg.seed = cl.env_seed;
  core::CrossLayerEnvironment env(env_cfg);

  ml::QLearnerConfig learner_cfg;
  learner_cfg.alpha = cl.alpha;
  learner_cfg.gamma = cl.gamma;
  learner_cfg.epsilon = cl.epsilon;
  learner_cfg.epsilon_decay = cl.epsilon_decay;
  learner_cfg.seed = cl.learner_seed;
  core::LearningController controller(learner_cfg);

  CrossLayerStageResult out;
  out.training = controller.train(env, cl.episodes, cl.steps_per_episode);
  out.learned_eval = controller.evaluate(env, cl.eval_episodes, cl.steps_per_episode);
  if (cl.fixed_policy_baselines) {
    // Same evaluation protocol as the learned policy — env state (and its
    // RNG stream) carries across policies exactly like the legacy bench.
    for (std::size_t vf = 0; vf < env.num_actions(); ++vf) {
      double total = 0.0;
      std::size_t count = 0;
      for (std::size_t episode = 0; episode < cl.eval_episodes; ++episode) {
        env.reset();
        for (std::size_t s = 0; s < cl.steps_per_episode; ++s) {
          total += env.step(vf).reward;
          ++count;
        }
      }
      out.fixed_policy_rewards.push_back(count ? total / static_cast<double>(count) : 0.0);
    }
  }
  return out;
}

}  // namespace

std::size_t ScenarioResult::total_trials() const {
  std::size_t trials = 0;
  for (const FaultStageResult& f : faults) trials += f.report.trials;
  if (rollback) trials += rollback->experiment.campaign_report.trials;
  return trials;
}

arch::FaultTarget target_from_name(const std::string& name) {
  if (name == "register") return arch::FaultTarget::kRegister;
  if (name == "memory") return arch::FaultTarget::kMemory;
  if (name == "instruction") return arch::FaultTarget::kInstruction;
  throw SpecError("scenario.faults.target: unknown target '" + name + "'");
}

arch::Workload build_workload(const WorkloadSpec& w) {
  obs::Json params = obs::Json::object();
  params["workload"] = w.name;
  params["scale"] = static_cast<std::int64_t>(w.scale);
  params["wseed"] = static_cast<std::int64_t>(w.wseed);
  auto workload = fabric::workload_from_params(params);
  if (!workload) throw SpecError("scenario.workloads: unknown workload '" + w.name + "'");
  return std::move(*workload);
}

std::uint64_t fault_campaign_seed(const ScenarioSpec& spec, std::size_t fault_index) {
  const std::uint64_t base = spec.campaign.base_seed.value_or(spec.seed);
  return trial_seed(base, fault_index);
}

CampaignSpec fault_campaign_spec(const ScenarioSpec& spec, std::size_t fault_index) {
  const FaultModelSpec& f = spec.faults.at(fault_index);
  CampaignSpec cs;
  cs.trials = f.trials;
  cs.base_seed = fault_campaign_seed(spec, fault_index);
  cs.threads = spec.campaign.threads;
  cs.max_retries = spec.campaign.max_retries;
  if (spec.campaign.trial_deadline_ms > 0.0)
    cs.trial_deadline = to_ms(spec.campaign.trial_deadline_ms);
  if (spec.campaign.overall_budget_ms > 0.0)
    cs.overall_budget = to_ms(spec.campaign.overall_budget_ms);
  if (spec.campaign.checkpoint)
    cs.checkpoint_path = default_checkpoint_path("scenario_" + spec.name + "_fault" +
                                                 std::to_string(fault_index));
  return cs;
}

CampaignSpec resolved_fault_spec(const ScenarioSpec& spec, std::size_t fault_index) {
  const FaultModelSpec& f = spec.faults.at(fault_index);
  const arch::Workload workload = build_workload(spec.workloads[f.workload]);
  const CampaignSpec cs = fault_campaign_spec(spec, fault_index);
  if (f.layer == "arch.pipeline") return arch::pipeline_campaign_spec(workload, cs);
  const arch::FaultInjector injector(workload);
  return injector.resolved_spec(cs, target_from_name(f.target));
}

CampaignResult<arch::FaultRecord> fault_records_from_checkpoint(
    const ScenarioSpec& spec, std::size_t fault_index, const CampaignCheckpoint& ck) {
  const FaultModelSpec& f = spec.faults.at(fault_index);
  const CampaignSpec cs = resolved_fault_spec(spec, fault_index);
  if (f.layer == "arch.pipeline") return arch::pipeline_records_from_checkpoint(cs, ck);
  return arch::FaultInjector::records_from_checkpoint(cs, ck);
}

obs::Json fault_shard_params(const ScenarioSpec& spec, std::size_t fault_index) {
  obs::Json params = obs::Json::object();
  params["scenario"] = to_json(spec);
  params["fault"] = static_cast<std::int64_t>(fault_index);
  return params;
}

void register_scenario_runners() {
  fabric::register_runner("scenario.fault", [](const fabric::ShardJob& job) {
    const ScenarioSpec spec = scenario_from_json(job.params.at("scenario"));
    const std::size_t fault_index =
        static_cast<std::size_t>(job.params.at("fault").as_int());
    if (fault_index >= spec.faults.size())
      throw SpecError("scenario.fault shard: fault index out of range");
    const FaultModelSpec& f = spec.faults[fault_index];
    const arch::Workload workload = build_workload(spec.workloads[f.workload]);
    if (f.layer == "arch.pipeline")
      return arch::pipeline_campaign_shard(workload, job.spec, job.range);
    const arch::FaultInjector injector(workload);
    return injector.campaign_shard(job.spec, job.range, target_from_name(f.target));
  });
}

ScenarioResult run_scenario(const ScenarioSpec& spec) {
  const auto start = std::chrono::steady_clock::now();
  // Each stage runs under its own span so a traced scenario (local or shipped
  // to a fabric worker) decomposes into per-stage intervals; campaign-level
  // spans/events emitted inside a stage nest under it via the ambient context.
  LORE_OBS_SPAN(scenario_span, "scenario.run");
  ScenarioResult result;
  result.spec = spec;
  if (spec.device) {
    LORE_OBS_SPAN(stage_span, "scenario.stage/device");
    result.device = run_device_stage(spec);
  }
  for (std::size_t i = 0; i < spec.faults.size(); ++i) {
    LORE_OBS_SPAN(stage_span, "scenario.stage/fault." + std::to_string(i));
    result.faults.push_back(run_fault_stage(spec, i));
  }
  if (spec.os) {
    LORE_OBS_SPAN(stage_span, "scenario.stage/os");
    result.os = run_os_stage(spec);
  }
  if (spec.mixed_criticality) {
    LORE_OBS_SPAN(stage_span, "scenario.stage/mixed_crit");
    result.mixed_criticality = run_mixed_crit_stage(spec);
  }
  if (spec.replica_drift) {
    LORE_OBS_SPAN(stage_span, "scenario.stage/replica");
    result.replica_drift = run_replica_stage(spec);
  }
  if (spec.rollback) {
    LORE_OBS_SPAN(stage_span, "scenario.stage/rollback");
    result.rollback = run_rollback_stage(spec);
  }
  if (spec.crosslayer) {
    LORE_OBS_SPAN(stage_span, "scenario.stage/crosslayer");
    result.crosslayer = run_crosslayer_stage(spec);
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return result;
}

namespace {

void fp_mix(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
}

void fp_mix_u64(std::uint64_t& h, std::uint64_t v) { fp_mix(h, &v, sizeof v); }

void fp_mix_double(std::uint64_t& h, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  fp_mix(h, &bits, sizeof bits);
}

}  // namespace

std::uint64_t result_fingerprint(const ScenarioResult& result) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  if (result.device) {
    fp_mix_double(h, result.device->delta_vth_v);
    fp_mix_double(h, result.device->guardband);
    fp_mix_double(h, result.device->safe_fmax_ghz);
  }
  for (const FaultStageResult& f : result.faults) {
    fp_mix_u64(h, f.report.trials);
    fp_mix_u64(h, f.report.completed);
    for (const arch::FaultRecord& rec : f.records) {
      fp_mix_u64(h, static_cast<std::uint64_t>(rec.site.target));
      fp_mix_u64(h, rec.site.index);
      fp_mix_u64(h, rec.site.bit);
      fp_mix_u64(h, rec.site.cycle);
      fp_mix_u64(h, static_cast<std::uint64_t>(rec.outcome));
      fp_mix_u64(h, static_cast<std::uint64_t>(rec.active_instruction));
      fp_mix_u64(h, rec.trial_seed);
    }
  }
  if (result.os) {
    fp_mix_double(h, result.os->max_freq_used_ghz);
    fp_mix_double(h, result.os->peak_temperature_k);
    fp_mix_double(h, result.os->total_energy_j);
    fp_mix_u64(h, result.os->jobs_released);
    fp_mix_u64(h, result.os->deadline_misses);
    fp_mix_u64(h, result.os->soft_errors);
    fp_mix_u64(h, result.os->sdc_failures);
    fp_mix_u64(h, result.os->masked_faults);
  }
  if (result.mixed_criticality) {
    for (const MixedCritRow& r : result.mixed_criticality->rows) {
      fp_mix_double(h, r.overrun_factor);
      fp_mix_u64(h, r.hi_jobs);
      fp_mix_u64(h, r.hi_misses);
      fp_mix_u64(h, r.mode_switches);
      fp_mix_double(h, r.lo_qos);
    }
  }
  if (result.replica_drift) {
    for (const ReplicaPhaseRow& r : result.replica_drift->rows) {
      fp_mix_double(h, r.estimated_rate);
      fp_mix_u64(h, r.replicas);
      for (double c : r.costs) fp_mix_double(h, c);
    }
  }
  if (result.rollback) {
    for (const auto& point : result.rollback->experiment.points) {
      fp_mix_double(h, point.p);
      fp_mix_double(h, point.avg_rollbacks_per_segment);
      for (rollback::SchedulerKind kind : result.rollback->schedulers)
        fp_mix_double(h, point.hit_rate.at(kind));
    }
  }
  if (result.crosslayer) {
    for (double r : result.crosslayer->training.episode_rewards) fp_mix_double(h, r);
    fp_mix_double(h, result.crosslayer->learned_eval);
    for (double r : result.crosslayer->fixed_policy_rewards) fp_mix_double(h, r);
  }
  return h;
}

obs::Json result_to_json(const ScenarioResult& result) {
  using obs::Json;
  Json j = Json::object();
  j["schema"] = "lore.scenario_result.v1";
  j["name"] = result.spec.name;
  j["seed"] = static_cast<std::int64_t>(result.spec.seed);
  j["wall_seconds"] = result.wall_seconds;
  j["total_trials"] = static_cast<std::int64_t>(result.total_trials());
  if (result.device) {
    Json d = Json::object();
    d["stress_temperature_k"] = result.device->stress_temperature_k;
    d["delta_vth_v"] = result.device->delta_vth_v;
    d["guardband"] = result.device->guardband;
    d["safe_fmax_ghz"] = result.device->safe_fmax_ghz;
    j["device"] = std::move(d);
  }
  if (!result.faults.empty()) {
    Json a = Json::array();
    for (const FaultStageResult& f : result.faults) {
      Json e = Json::object();
      e["layer"] = f.layer;
      e["target"] = f.target;
      e["trials"] = static_cast<std::int64_t>(f.report.trials);
      e["completed"] = static_cast<std::int64_t>(f.report.completed);
      e["avf"] = f.avf;
      e["corruption_factor"] = f.corruption_factor;
      a.push_back(std::move(e));
    }
    j["faults"] = std::move(a);
  }
  if (result.os) {
    Json o = Json::object();
    o["governor"] = result.os->governor;
    o["phases"] = static_cast<std::int64_t>(result.os->phases.size());
    o["max_freq_used_ghz"] = result.os->max_freq_used_ghz;
    o["peak_temperature_k"] = result.os->peak_temperature_k;
    o["energy_j"] = result.os->total_energy_j;
    o["jobs_released"] = static_cast<std::int64_t>(result.os->jobs_released);
    o["deadline_misses"] = static_cast<std::int64_t>(result.os->deadline_misses);
    o["soft_errors"] = static_cast<std::int64_t>(result.os->soft_errors);
    o["sdc_failures"] = static_cast<std::int64_t>(result.os->sdc_failures);
    o["masked_faults"] = static_cast<std::int64_t>(result.os->masked_faults);
    j["os"] = std::move(o);
  }
  if (result.mixed_criticality) {
    Json a = Json::array();
    for (const MixedCritRow& r : result.mixed_criticality->rows) {
      Json e = Json::object();
      e["overrun_factor"] = r.overrun_factor;
      e["hi_jobs"] = static_cast<std::int64_t>(r.hi_jobs);
      e["hi_misses"] = static_cast<std::int64_t>(r.hi_misses);
      e["mode_switches"] = static_cast<std::int64_t>(r.mode_switches);
      e["lo_qos"] = r.lo_qos;
      a.push_back(std::move(e));
    }
    j["mixed_criticality"] = std::move(a);
  }
  if (result.replica_drift) {
    Json a = Json::array();
    for (const ReplicaPhaseRow& r : result.replica_drift->rows) {
      Json e = Json::object();
      e["phase"] = r.phase;
      e["true_rate"] = r.true_rate;
      e["estimated_rate"] = r.estimated_rate;
      e["replicas"] = static_cast<std::int64_t>(r.replicas);
      a.push_back(std::move(e));
    }
    j["replica_drift"] = std::move(a);
  }
  if (result.rollback) {
    Json a = Json::array();
    for (const auto& point : result.rollback->experiment.points) {
      Json e = Json::object();
      e["p"] = point.p;
      Json rates = Json::object();
      for (rollback::SchedulerKind kind : result.rollback->schedulers)
        rates[rollback::scheduler_name(kind)] = point.hit_rate.at(kind);
      e["hit_rate"] = std::move(rates);
      a.push_back(std::move(e));
    }
    j["rollback"] = std::move(a);
  }
  if (result.crosslayer) {
    Json c = Json::object();
    c["episodes"] = static_cast<std::int64_t>(result.crosslayer->training.episode_rewards.size());
    c["early_mean"] = result.crosslayer->training.early_mean();
    c["late_mean"] = result.crosslayer->training.late_mean();
    c["learned_eval"] = result.crosslayer->learned_eval;
    Json fixed = Json::array();
    for (double r : result.crosslayer->fixed_policy_rewards) fixed.push_back(r);
    c["fixed_policy_rewards"] = std::move(fixed);
    j["crosslayer"] = std::move(c);
  }
  return j;
}

}  // namespace lore::scenario
