// Umbrella for the scenario subsystem (DESIGN.md §14): the declarative spec
// + JSON codec, the cross-layer composition engine, the differential
// invariant checker, and the counter-seeded generative sweep driver.
#pragma once

#include "src/scenario/engine.hpp"
#include "src/scenario/generate.hpp"
#include "src/scenario/invariants.hpp"
#include "src/scenario/spec.hpp"
