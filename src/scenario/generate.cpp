#include "src/scenario/generate.hpp"

#include <chrono>
#include <cstdio>
#include <cstring>

#include "src/common/parallel.hpp"
#include "src/common/rng.hpp"
#include "src/scenario/engine.hpp"

namespace lore::scenario {

namespace {

/// Per-workload scale ranges sized so a single campaign trial stays cheap
/// (matmul cost is cubic in its scale, random_program linear, etc.).
struct WorkloadRange {
  const char* name;
  std::size_t min_scale, max_scale;
};

constexpr WorkloadRange kWorkloadRanges[] = {
    {"dot_product", 8, 16}, {"matmul", 3, 5},   {"bubble_sort", 8, 14},
    {"checksum", 8, 24},    {"fibonacci", 8, 16}, {"find_max", 8, 24},
    {"random_program", 20, 60},
};

WorkloadSpec draw_workload(Rng& rng) {
  const WorkloadRange& range =
      kWorkloadRanges[rng.uniform_index(std::size(kWorkloadRanges))];
  WorkloadSpec w;
  w.name = range.name;
  w.scale = static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(range.min_scale),
                      static_cast<std::int64_t>(range.max_scale)));
  w.wseed = rng.next_u64();
  return w;
}

void fnv_mix(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
}

void fnv_mix_double(std::uint64_t& h, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  fnv_mix(h, &bits, sizeof bits);
}

}  // namespace

ScenarioSpec ScenarioGenerator::at(std::size_t index) const {
  Rng rng(trial_seed(cfg_.base_seed, index));
  ScenarioSpec spec;
  spec.name = "gen-" + std::to_string(index);
  spec.seed = rng.next_u64();

  const bool planted = cfg_.planted_violation_rate > 0.0 &&
                       rng.bernoulli(cfg_.planted_violation_rate);

  // Workload mix + fault campaigns (always present: every scenario injects).
  const std::size_t num_workloads = 1 + rng.uniform_index(2);
  for (std::size_t i = 0; i < num_workloads; ++i) spec.workloads.push_back(draw_workload(rng));
  const std::size_t num_faults = 1 + rng.uniform_index(2);
  for (std::size_t i = 0; i < num_faults; ++i) {
    FaultModelSpec f;
    f.layer = rng.bernoulli(0.3) ? "arch.pipeline" : "arch.fault";
    static constexpr const char* kTargets[] = {"register", "memory", "instruction"};
    f.target = kTargets[rng.uniform_index(3)];
    f.workload = rng.uniform_index(spec.workloads.size());
    f.trials = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(cfg_.min_fault_trials),
                        static_cast<std::int64_t>(cfg_.max_fault_trials)));
    spec.faults.push_back(std::move(f));
  }

  // Thermal trace.
  if (rng.bernoulli(0.6) || planted) {
    const std::size_t phases = 1 + rng.uniform_index(3);
    for (std::size_t i = 0; i < phases; ++i)
      spec.thermal.push_back(ThermalPhase{.duration_ms = rng.uniform(200.0, 800.0),
                                          .ambient_k = rng.uniform(310.0, 335.0)});
  }

  // Device aging stage.
  if (rng.bernoulli(0.7) || planted) {
    DeviceSpec d;
    d.years = rng.uniform(1.0, 12.0);
    d.vdd = rng.uniform(0.75, 0.85);
    d.duty_cycle = rng.uniform(0.3, 0.7);
    d.toggle_rate_ghz = rng.uniform(0.3, 1.0);
    d.self_heat_rise_k = rng.uniform(10.0, 30.0);
    if (planted) {
      // Deliberately under-margined: nominal fmax at the ladder top with a
      // fat static margin pushes safe_fmax well below what the (static,
      // top-level) governor below will command.
      d.years = rng.uniform(10.0, 20.0);
      d.nominal_fmax_ghz = 2.0;
      d.margin = rng.uniform(1.25, 1.6);
    } else {
      d.nominal_fmax_ghz = rng.uniform(2.2, 3.0);
      d.margin = 1.0;
    }
    spec.device = d;
  }

  // OS stage.
  if (rng.bernoulli(0.55) || planted) {
    OsSpec o;
    if (planted) {
      o.governor = "static";
      o.vf_index = 4;  // ladder top — guaranteed to breach the planted margin
    } else {
      const double pick = rng.uniform(0.0, 1.0);
      if (pick < 0.3) {
        o.governor = "static";
        o.vf_index = rng.uniform_index(5);
      } else if (pick < 0.8) {
        o.governor = "ondemand";
      } else {
        o.governor = "dpm";
      }
    }
    o.big_cores = 1 + rng.uniform_index(2);
    o.little_cores = rng.uniform_index(3);
    const double map_pick = rng.uniform(0.0, 1.0);
    o.mapping = map_pick < 0.7 ? "worst_fit" : (map_pick < 0.85 ? "performance" : "thermal");
    o.duration_ms = cfg_.os_duration_ms;
    o.sim_seed = rng.next_u64();
    o.tasks.num_tasks = 3 + rng.uniform_index(4);
    o.tasks.utilization = rng.uniform(0.4, 1.2);
    o.tasks.seed = rng.next_u64();
    if (rng.bernoulli(0.3)) o.temp_limit_k = 380.0;
    spec.os = o;
  }

  // Mixed criticality.
  if (rng.bernoulli(0.4)) {
    MixedCritSpec m;
    m.tasks.num_tasks = 4 + rng.uniform_index(5);
    m.tasks.utilization = rng.uniform(0.5, 0.8);
    m.tasks.hi_fraction = rng.uniform(0.3, 0.5);
    m.tasks.seed = rng.next_u64();
    m.overrun_factors = {1.0, rng.uniform(1.2, 1.6), rng.uniform(1.8, 2.4)};
    m.duration_ms = cfg_.mc_duration_ms;
    m.sim_seed = rng.next_u64();
    spec.mixed_criticality = m;
  }

  // Replica drift.
  if (rng.bernoulli(0.4)) {
    ReplicaDriftSpec r;
    r.seed = rng.next_u64();
    r.jobs_per_window = 400;
    static constexpr double kRates[] = {0.001, 0.01, 0.05, 0.08};
    const std::size_t phases = 2 + rng.uniform_index(2);
    for (std::size_t i = 0; i < phases; ++i)
      r.phases.push_back(ReplicaPhase{.name = "phase" + std::to_string(i),
                                      .fault_rate = kRates[rng.uniform_index(4)],
                                      .windows = 6 + rng.uniform_index(7)});
    spec.replica_drift = r;
  }

  // Rollback sweep (small grid — the Monte Carlo runs dominate sweep time).
  if (rng.bernoulli(0.25)) {
    RollbackSpec r;
    static constexpr const char* kTokens[] = {"ds", "ds-1.5x", "ds-2x", "wcet"};
    const std::size_t first = rng.uniform_index(4);
    r.schedulers = {kTokens[first], kTokens[(first + 1 + rng.uniform_index(3)) % 4]};
    r.runs_per_point = cfg_.rollback_runs;
    r.base_seed = rng.next_u64();
    r.error_probabilities = {1e-7, 3e-6, 3e-5};
    spec.rollback = r;
  }

  // Closed learning loop (rare: the expensive stage).
  if (rng.bernoulli(0.1)) {
    CrossLayerSpec c;
    c.env_seed = rng.next_u64();
    c.episodes = 8;
    c.steps_per_episode = 40;
    c.eval_episodes = 3;
    spec.crosslayer = c;
  }

  return spec;
}

std::uint64_t SweepReport::findings_fingerprint() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const SweepOutcome& o : outcomes) {
    fnv_mix(h, o.name.data(), o.name.size());
    const std::uint64_t trials64 = o.trials;
    fnv_mix(h, &trials64, sizeof trials64);
    for (const InvariantFinding& f : o.findings) {
      fnv_mix(h, f.id.data(), f.id.size());
      const unsigned char sev = static_cast<unsigned char>(f.severity);
      fnv_mix(h, &sev, 1);
      fnv_mix_double(h, f.measured);
      fnv_mix_double(h, f.bound);
    }
  }
  return h;
}

obs::Json SweepReport::to_json() const {
  obs::Json j = obs::Json::object();
  j["schema"] = "lore.scenario_sweep.v1";
  j["base_seed"] = static_cast<std::int64_t>(base_seed);
  j["scenarios"] = static_cast<std::int64_t>(scenarios);
  j["trials"] = static_cast<std::int64_t>(trials);
  j["violations"] = static_cast<std::int64_t>(violations);
  j["warnings"] = static_cast<std::int64_t>(warnings);
  j["wall_seconds"] = wall_seconds;
  j["trials_per_second"] = trials_per_second();
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(findings_fingerprint()));
  j["findings_fingerprint"] = std::string(buf);
  obs::Json arr = obs::Json::array();
  for (const SweepOutcome& o : outcomes) {
    if (o.findings.empty()) continue;  // only interesting scenarios in the artifact
    obs::Json e = obs::Json::object();
    e["name"] = o.name;
    e["index"] = static_cast<std::int64_t>(o.index);
    e["trials"] = static_cast<std::int64_t>(o.trials);
    e["findings"] = findings_to_json(o.findings);
    arr.push_back(std::move(e));
  }
  j["outcomes"] = std::move(arr);
  return j;
}

SweepReport run_sweep(const GeneratorConfig& cfg, std::size_t count) {
  const auto start = std::chrono::steady_clock::now();
  const ScenarioGenerator gen(cfg);
  SweepReport report;
  report.base_seed = cfg.base_seed;
  report.scenarios = count;
  for (std::size_t i = 0; i < count; ++i) {
    const ScenarioSpec spec = gen.at(i);
    const ScenarioResult result = run_scenario(spec);
    SweepOutcome outcome;
    outcome.name = spec.name;
    outcome.index = i;
    outcome.trials = result.total_trials();
    outcome.findings = check_invariants(result);
    report.trials += outcome.trials;
    report.violations += count_violations(outcome.findings);
    report.warnings += count_warnings(outcome.findings);
    report.outcomes.push_back(std::move(outcome));
  }
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return report;
}

}  // namespace lore::scenario
