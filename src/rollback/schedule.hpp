// Cycle-noise mitigation (Sec. V-C): budget scheduling per segment plus
// speed scaling. Four algorithms from the paper — DS (dynamic-scenario
// based, tightest budgets), DS-1.5x, DS-2x, and WCET (most conservative) —
// plus LORE's learning-based extension (the paper: "cycle-noise mitigation
// can be optimized by learning-based approaches to improve its prediction
// accuracy of execution time").
#pragma once

#include <string>
#include <vector>

#include "src/ml/linear.hpp"
#include "src/rollback/adpcm.hpp"
#include "src/rollback/error_model.hpp"

namespace lore::rollback {

enum class SchedulerKind : std::uint8_t { kDs, kDs15, kDs2, kWcet, kDsLearned };

std::string scheduler_name(SchedulerKind kind);

struct MitigationConfig {
  /// Speed headroom of the processor: max over nominal frequency. The
  /// mitigation controller may raise speed up to this ratio to absorb
  /// rollback-induced cycle noise.
  double speed_ratio = 2.0;
  CheckpointParams checkpoint{};
};

/// Per-segment budgets in nominal-speed cycles for the four static
/// algorithms. DS budgets equal the segment window (segment + checkpoint);
/// the scaled variants multiply them; WCET gives every segment the worst
/// window of the set.
std::vector<double> static_budgets(SchedulerKind kind, const std::vector<Segment>& segments,
                                   const CheckpointParams& checkpoint);

/// Learning-based budgets: a ridge regressor trained on observed
/// (window -> committed cycles) pairs from calibration runs predicts each
/// segment's execution time; budgets add a small safety margin.
class LearnedBudgetScheduler {
 public:
  explicit LearnedBudgetScheduler(double safety_margin = 1.1)
      : safety_margin_(safety_margin) {}

  /// Calibrate from `runs` Monte Carlo runs at the given error probability
  /// (in deployment this is the observed field error rate).
  void calibrate(const std::vector<Segment>& segments, double p,
                 const CheckpointParams& checkpoint, std::size_t runs, lore::Rng& rng);

  bool calibrated() const { return calibrated_; }
  /// Budgets are clamped to [segment window, worst-case window]: the learned
  /// scheduler reallocates within the WCET envelope — it cannot grant itself
  /// more time than the most conservative static allocation would.
  std::vector<double> budgets(const std::vector<Segment>& segments,
                              const CheckpointParams& checkpoint) const;

 private:
  double safety_margin_;
  ml::RidgeRegression model_{1e-6};
  bool calibrated_ = false;
};

/// Outcome of simulating one application run under one budget assignment.
struct RunOutcome {
  double mean_rollbacks_per_segment = 0.0;
  /// Fraction of segments whose cumulative completion met the cumulative
  /// deadline (slack carries over; the controller may run at max speed).
  double deadline_hit_rate = 0.0;
  std::uint64_t total_cycles = 0;
};

/// Simulate one run: sample rollbacks per segment from Eq. (2), account
/// committed cycles, check each segment's cumulative deadline assuming the
/// mitigation controller absorbs noise with up to `speed_ratio` speedup.
RunOutcome simulate_run(const std::vector<Segment>& segments,
                        const std::vector<double>& budgets_cycles, double p,
                        const MitigationConfig& cfg, lore::Rng& rng);

}  // namespace lore::rollback
