// IMA ADPCM encoder and the workload segmentation used by Section V of the
// paper. The authors benchmarked TACLeBench's ADPCM lower sub-band block on
// the Ariane RISC-V RTL and segmented it into 40k-270k-cycle atomic units;
// LORE substitutes a real integer ADPCM encoder with an operation-count cycle
// model and reproduces the same segment-length distribution (DESIGN.md
// substitution #2).
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/rng.hpp"

namespace lore::rollback {

/// IMA ADPCM codec state.
struct AdpcmState {
  std::int32_t predictor = 0;
  int step_index = 0;
};

/// Encode one 16-bit PCM sample to a 4-bit code, updating state.
std::uint8_t adpcm_encode_sample(AdpcmState& state, std::int16_t sample);
/// Decode a 4-bit code back to PCM (for the round-trip test).
std::int16_t adpcm_decode_sample(AdpcmState& state, std::uint8_t code);

/// Encode a PCM buffer; returns the 4-bit codes (one per sample).
std::vector<std::uint8_t> adpcm_encode(std::vector<std::int16_t> const& pcm);
std::vector<std::int16_t> adpcm_decode(std::vector<std::uint8_t> const& codes);

/// Synthetic "audio": a sum of drifting sinusoids plus noise, deterministic
/// per seed.
std::vector<std::int16_t> synth_audio(std::size_t samples, std::uint64_t seed);

/// One atomic re-executable unit of the application (Sec. V-B).
struct Segment {
  std::uint64_t nominal_cycles = 0;
};

struct SegmentationConfig {
  /// The paper's range: segments of 40k-270k cycles.
  std::uint64_t min_cycles = 40000;
  std::uint64_t max_cycles = 270000;
  std::size_t num_segments = 24;
  std::uint64_t seed = 89;
};

/// Segment the ADPCM encoding of a synthetic audio buffer: per-block cycle
/// cost comes from an operation-count model of the encoder inner loop, with
/// block sizes chosen so nominal cycles land in [min, max].
std::vector<Segment> segment_adpcm_workload(const SegmentationConfig& cfg);

/// Cycle cost of encoding `samples` PCM samples (operation-count model of
/// the inner loop on a single-issue in-order core).
std::uint64_t adpcm_cycle_cost(std::size_t samples);

}  // namespace lore::rollback
