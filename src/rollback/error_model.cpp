#include "src/rollback/error_model.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lore::rollback {

double prob_error_free(double p, std::uint64_t cycles) {
  assert(p >= 0.0 && p <= 1.0);
  if (p <= 0.0) return 1.0;
  if (p >= 1.0) return cycles == 0 ? 1.0 : 0.0;
  // (1-p)^n via expm1/log1p for numerical stability at tiny p, huge n.
  return std::exp(static_cast<double>(cycles) * std::log1p(-p));
}

double prob_rollbacks(double p, std::uint64_t cycles, std::uint64_t n) {
  const double q = prob_error_free(p, cycles);
  return std::pow(1.0 - q, static_cast<double>(n)) * q;
}

double expected_rollbacks(double p, std::uint64_t cycles) {
  const double q = prob_error_free(p, cycles);
  if (q <= 0.0) return 1e300;  // attempts essentially never succeed
  return (1.0 - q) / q;
}

std::uint64_t sample_rollbacks(double p, std::uint64_t cycles, lore::Rng& rng) {
  const double q = prob_error_free(p, cycles);
  // Essentially-never-succeeding attempts: cap the count so downstream cycle
  // arithmetic stays in range ("the run never converges" regime).
  constexpr std::uint64_t kCap = 1000000;
  if (q <= 1e-12) return kCap;
  return std::min<std::uint64_t>(kCap, rng.geometric(q));
}

std::uint64_t segment_total_cycles(std::uint64_t nominal_cycles, std::uint64_t rollbacks,
                                   const CheckpointParams& params) {
  // (n+1) attempts, each runs the segment and its checkpoint routine;
  // n rollback routines in between.
  return (rollbacks + 1) * (nominal_cycles + params.checkpoint_cycles) +
         rollbacks * params.rollback_cycles;
}

double expected_segment_cycles(double p, std::uint64_t nominal_cycles,
                               const CheckpointParams& params) {
  const std::uint64_t window = nominal_cycles + params.checkpoint_cycles;
  const double n = expected_rollbacks(p, window);
  return (n + 1.0) * static_cast<double>(window) +
         n * static_cast<double>(params.rollback_cycles);
}

std::uint64_t sample_segment_cycles(double p, std::uint64_t nominal_cycles,
                                    const CheckpointParams& params, lore::Rng& rng,
                                    std::uint64_t* rollbacks_out) {
  // The vulnerable window of an attempt is the segment plus its checkpoint.
  const std::uint64_t window = nominal_cycles + params.checkpoint_cycles;
  const std::uint64_t n = sample_rollbacks(p, window, rng);
  if (rollbacks_out != nullptr) *rollbacks_out = n;
  return segment_total_cycles(nominal_cycles, n, params);
}

}  // namespace lore::rollback
