#include "src/rollback/optimize.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lore::rollback {

double expected_cycles_with_k_checkpoints(double p, std::uint64_t nominal_cycles,
                                          std::size_t k, const CheckpointParams& params) {
  assert(k >= 1);
  const std::uint64_t sub_cycles = std::max<std::uint64_t>(1, nominal_cycles / k);
  // The final sub-segment absorbs the division remainder.
  const std::uint64_t last_cycles = nominal_cycles - sub_cycles * (k - 1);
  double total = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const std::uint64_t nc = i + 1 == k ? last_cycles : sub_cycles;
    total += expected_segment_cycles(p, nc, params);
  }
  return total;
}

CheckpointPlan optimize_checkpoints(double p, std::uint64_t nominal_cycles,
                                    const CheckpointParams& params, std::size_t max_k) {
  assert(max_k >= 1);
  CheckpointPlan best;
  best.checkpoints = 1;
  best.expected_cycles = expected_cycles_with_k_checkpoints(p, nominal_cycles, 1, params);
  // The cost is unimodal in k: expand until it stops improving (with a small
  // patience window to ride out integer-division plateaus).
  std::size_t since_improvement = 0;
  for (std::size_t k = 2; k <= max_k && since_improvement < 8; ++k) {
    const double cost = expected_cycles_with_k_checkpoints(p, nominal_cycles, k, params);
    if (cost < best.expected_cycles) {
      best.expected_cycles = cost;
      best.checkpoints = k;
      since_improvement = 0;
    } else {
      ++since_improvement;
    }
  }
  const double error_free =
      static_cast<double>(nominal_cycles + params.checkpoint_cycles);
  best.overhead_factor = best.expected_cycles / error_free;
  return best;
}

double approximate_optimal_checkpoints(double p, std::uint64_t nominal_cycles,
                                       const CheckpointParams& params) {
  if (p <= 0.0) return 1.0;
  const double c = static_cast<double>(params.checkpoint_cycles);
  const double k = static_cast<double>(nominal_cycles) * std::sqrt(p / (2.0 * c));
  return std::max(1.0, k);
}

}  // namespace lore::rollback
