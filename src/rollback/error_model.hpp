// Register-level error model of Sec. V-A and the checkpointing/rollback
// timing model of Sec. V-B, implementing the paper's equations directly:
//
//   (1)  Pr(N_e = 0) = (1 - p)^{n_c}
//   (2)  Pr(N_rb = n) = (1 - (1-p)^{n_c})^n (1-p)^{n_c}
//
// A cycle is erroneous when any pipeline register holds a wrong value; the
// per-cycle probability p is static over time. Errors are unlimited in count
// and may also strike re-computations — the properties the paper highlights
// over prior bounded-error models.
#pragma once

#include <cstdint>

#include "src/common/rng.hpp"

namespace lore::rollback {

/// Eq. (1): probability an interval of `cycles` is error-free.
double prob_error_free(double p, std::uint64_t cycles);

/// Geometric success probability of one segment attempt: q = (1-p)^{n_c}.
inline double attempt_success_probability(double p, std::uint64_t cycles) {
  return prob_error_free(p, cycles);
}

/// Eq. (2): probability mass of exactly `n` rollbacks for a segment of
/// `cycles` cycles.
double prob_rollbacks(double p, std::uint64_t cycles, std::uint64_t n);

/// Closed-form mean of Eq. (2): E[N_rb] = (1-q)/q.
double expected_rollbacks(double p, std::uint64_t cycles);

/// Sample a rollback count from Eq. (2).
std::uint64_t sample_rollbacks(double p, std::uint64_t cycles, lore::Rng& rng);

/// Timing parameters of the checkpointing and rollback-recovery system
/// (Sec. V-B; the 100/48-cycle costs follow OCEAN [51]).
struct CheckpointParams {
  std::uint64_t checkpoint_cycles = 100;
  std::uint64_t rollback_cycles = 48;
};

/// Total cycles to commit one segment given its rollback count: every attempt
/// pays the segment plus a checkpoint, every rollback adds the restore cost.
std::uint64_t segment_total_cycles(std::uint64_t nominal_cycles, std::uint64_t rollbacks,
                                   const CheckpointParams& params);

/// Expected committed cycles of a segment under error probability p. Note the
/// error window of an attempt includes the checkpoint routine itself.
double expected_segment_cycles(double p, std::uint64_t nominal_cycles,
                               const CheckpointParams& params);

/// Sample a segment's total cycles (errors can hit re-computations too).
std::uint64_t sample_segment_cycles(double p, std::uint64_t nominal_cycles,
                                    const CheckpointParams& params, lore::Rng& rng,
                                    std::uint64_t* rollbacks_out = nullptr);

}  // namespace lore::rollback
