// Checkpoint-interval optimization (Sec. V-D / [51]): "execution time
// overhead can be minimized by optimizing the number of checkpoints". For a
// segment of n_c cycles split into k checkpointed sub-segments, each attempt
// window shrinks to n_c/k + c but every sub-segment pays the checkpoint cost;
// the expected committed cycles are convex in k, so a small search finds the
// optimum.
#pragma once

#include "src/rollback/error_model.hpp"

namespace lore::rollback {

/// Expected committed cycles for a segment of `nominal_cycles` split into
/// `k` checkpointed sub-segments at error probability p.
double expected_cycles_with_k_checkpoints(double p, std::uint64_t nominal_cycles,
                                          std::size_t k, const CheckpointParams& params);

struct CheckpointPlan {
  std::size_t checkpoints = 1;
  double expected_cycles = 0.0;
  /// Overhead vs the error-free single-checkpoint execution.
  double overhead_factor = 1.0;
};

/// Cost-minimizing checkpoint count in [1, max_k].
CheckpointPlan optimize_checkpoints(double p, std::uint64_t nominal_cycles,
                                    const CheckpointParams& params, std::size_t max_k = 256);

/// First-order analytic approximation of the optimal count (Young/Daly-style
/// for the geometric re-execution model): k* ≈ n_c * sqrt(p / (2 c)), with c
/// the checkpoint cost. Clamped to >= 1. Useful as a sanity cross-check and
/// as a fast seed for the exact search.
double approximate_optimal_checkpoints(double p, std::uint64_t nominal_cycles,
                                       const CheckpointParams& params);

}  // namespace lore::rollback
