// Monte Carlo harness reproducing Fig. 5 and Fig. 6 of the paper: sweep the
// per-cycle error probability, run 100 simulations per point, and report the
// average rollbacks per segment and the per-scheduler deadline hit rates.
#pragma once

#include <map>

#include "src/common/campaign.hpp"
#include "src/rollback/schedule.hpp"

namespace lore::rollback {

struct ExperimentConfig {
  SegmentationConfig segmentation{};
  MitigationConfig mitigation{};
  /// Error probabilities swept (the paper spans ~1e-8 .. 1e-3).
  std::vector<double> error_probabilities = default_probability_grid();
  std::size_t runs_per_point = 100;  // the paper's count
  /// Execution/resilience knobs of the Monte Carlo campaign (threads,
  /// deadlines, checkpoint path — src/common/campaign.hpp). `campaign.trials`
  /// and `campaign.domain` are derived from the sweep and overridden;
  /// `campaign.base_seed` (default 97) seeds every run and calibration
  /// stream. Per-(point, run) counter-based seeding keeps results
  /// bit-identical for any thread count and across interrupt/resume.
  lore::CampaignSpec campaign = default_campaign_spec();

  static lore::CampaignSpec default_campaign_spec();
  static std::vector<double> default_probability_grid();
};

struct SweepPoint {
  double p = 0.0;
  double avg_rollbacks_per_segment = 0.0;   // Fig. 5 series
  double sem_rollbacks = 0.0;               // standard error over runs
  std::map<SchedulerKind, double> hit_rate; // Fig. 6 series
};

struct ExperimentResult {
  std::vector<Segment> segments;
  std::vector<SweepPoint> points;
  /// Resilience report of the underlying campaign (one trial per Monte Carlo
  /// run). When it is not `complete()`, each point's statistics cover only
  /// the runs that finished.
  lore::CampaignReport campaign_report;

  /// Error probability where the average hit rate of a scheduler first drops
  /// below 0.5 (the "error rate wall" position).
  double wall_position(SchedulerKind kind) const;
};

/// Run the full Section V experiment for the given scheduler set.
ExperimentResult run_experiment(const ExperimentConfig& cfg,
                                const std::vector<SchedulerKind>& schedulers);

}  // namespace lore::rollback
