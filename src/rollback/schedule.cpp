#include "src/rollback/schedule.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lore::rollback {

std::string scheduler_name(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kDs: return "DS";
    case SchedulerKind::kDs15: return "DS 1.5x";
    case SchedulerKind::kDs2: return "DS 2x";
    case SchedulerKind::kWcet: return "WCET";
    case SchedulerKind::kDsLearned: return "DS-ML";
  }
  return "?";
}

std::vector<double> static_budgets(SchedulerKind kind, const std::vector<Segment>& segments,
                                   const CheckpointParams& checkpoint) {
  assert(!segments.empty());
  std::vector<double> budgets(segments.size());
  double worst_window = 0.0;
  for (const auto& s : segments)
    worst_window = std::max(
        worst_window, static_cast<double>(s.nominal_cycles + checkpoint.checkpoint_cycles));
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const double window =
        static_cast<double>(segments[i].nominal_cycles + checkpoint.checkpoint_cycles);
    switch (kind) {
      case SchedulerKind::kDs: budgets[i] = window; break;
      case SchedulerKind::kDs15: budgets[i] = 1.5 * window; break;
      case SchedulerKind::kDs2: budgets[i] = 2.0 * window; break;
      case SchedulerKind::kWcet: budgets[i] = worst_window; break;
      case SchedulerKind::kDsLearned:
        assert(false && "use LearnedBudgetScheduler for DS-ML");
        budgets[i] = window;
        break;
    }
  }
  return budgets;
}

void LearnedBudgetScheduler::calibrate(const std::vector<Segment>& segments, double p,
                                       const CheckpointParams& checkpoint, std::size_t runs,
                                       lore::Rng& rng) {
  ml::Matrix x;
  std::vector<double> y;
  for (std::size_t r = 0; r < runs; ++r) {
    for (const auto& seg : segments) {
      const auto cycles = sample_segment_cycles(p, seg.nominal_cycles, checkpoint, rng);
      const double window =
          static_cast<double>(seg.nominal_cycles + checkpoint.checkpoint_cycles);
      const double features[] = {window};
      x.push_row(features);
      y.push_back(static_cast<double>(cycles));
    }
  }
  model_.fit(x, y);
  calibrated_ = true;
}

std::vector<double> LearnedBudgetScheduler::budgets(const std::vector<Segment>& segments,
                                                    const CheckpointParams& checkpoint) const {
  assert(calibrated_);
  double worst_window = 0.0;
  for (const auto& s : segments)
    worst_window = std::max(
        worst_window, static_cast<double>(s.nominal_cycles + checkpoint.checkpoint_cycles));
  std::vector<double> out(segments.size());
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const double window =
        static_cast<double>(segments[i].nominal_cycles + checkpoint.checkpoint_cycles);
    const double features[] = {window};
    // Never below the error-free window, never above the WCET allocation:
    // the learner reallocates slack, it does not extend the deadline.
    out[i] = std::clamp(safety_margin_ * model_.predict(features), window, worst_window);
  }
  return out;
}

RunOutcome simulate_run(const std::vector<Segment>& segments,
                        const std::vector<double>& budgets_cycles, double p,
                        const MitigationConfig& cfg, lore::Rng& rng) {
  assert(segments.size() == budgets_cycles.size());
  RunOutcome out;
  double cum_deadline = 0.0;   // nominal-speed cycle budget consumed so far
  double cum_executed = 0.0;   // committed cycles normalized to nominal speed
  std::size_t hits = 0;
  std::uint64_t total_rollbacks = 0;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    std::uint64_t rollbacks = 0;
    const std::uint64_t cycles =
        sample_segment_cycles(p, segments[i].nominal_cycles, cfg.checkpoint, rng, &rollbacks);
    total_rollbacks += rollbacks;
    out.total_cycles += cycles;
    cum_deadline += budgets_cycles[i];
    // The controller can run up to speed_ratio faster: committed cycles cost
    // cycles/speed_ratio nominal-speed cycles at best.
    cum_executed += static_cast<double>(cycles) / cfg.speed_ratio;
    if (cum_executed <= cum_deadline) ++hits;
  }
  out.mean_rollbacks_per_segment =
      static_cast<double>(total_rollbacks) / static_cast<double>(segments.size());
  out.deadline_hit_rate = static_cast<double>(hits) / static_cast<double>(segments.size());
  return out;
}

}  // namespace lore::rollback
