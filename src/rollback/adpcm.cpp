#include "src/rollback/adpcm.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lore::rollback {
namespace {

constexpr int kStepTable[89] = {
    7,     8,     9,     10,    11,    12,    13,    14,    16,    17,    19,
    21,    23,    25,    28,    31,    34,    37,    41,    45,    50,    55,
    60,    66,    73,    80,    88,    97,    107,   118,   130,   143,   157,
    173,   190,   209,   230,   253,   279,   307,   337,   371,   408,   449,
    494,   544,   598,   658,   724,   796,   876,   963,   1060,  1166,  1282,
    1411,  1552,  1707,  1878,  2066,  2272,  2499,  2749,  3024,  3327,  3660,
    4026,  4428,  4871,  5358,  5894,  6484,  7132,  7845,  8630,  9493,  10442,
    11487, 12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794,
    32767};

constexpr int kIndexTable[16] = {-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8};

}  // namespace

std::uint8_t adpcm_encode_sample(AdpcmState& state, std::int16_t sample) {
  const int step = kStepTable[state.step_index];
  int diff = static_cast<int>(sample) - state.predictor;
  std::uint8_t code = 0;
  if (diff < 0) {
    code = 8;
    diff = -diff;
  }
  // Successive approximation of diff / step in 3 bits.
  int delta = step >> 3;
  if (diff >= step) {
    code |= 4;
    diff -= step;
    delta += step;
  }
  if (diff >= step >> 1) {
    code |= 2;
    diff -= step >> 1;
    delta += step >> 1;
  }
  if (diff >= step >> 2) {
    code |= 1;
    delta += step >> 2;
  }
  state.predictor += (code & 8) ? -delta : delta;
  state.predictor = std::clamp(state.predictor, -32768, 32767);
  state.step_index = std::clamp(state.step_index + kIndexTable[code], 0, 88);
  return code;
}

std::int16_t adpcm_decode_sample(AdpcmState& state, std::uint8_t code) {
  const int step = kStepTable[state.step_index];
  int delta = step >> 3;
  if (code & 4) delta += step;
  if (code & 2) delta += step >> 1;
  if (code & 1) delta += step >> 2;
  state.predictor += (code & 8) ? -delta : delta;
  state.predictor = std::clamp(state.predictor, -32768, 32767);
  state.step_index = std::clamp(state.step_index + kIndexTable[code & 0xF], 0, 88);
  return static_cast<std::int16_t>(state.predictor);
}

std::vector<std::uint8_t> adpcm_encode(std::vector<std::int16_t> const& pcm) {
  AdpcmState state;
  std::vector<std::uint8_t> out;
  out.reserve(pcm.size());
  for (auto s : pcm) out.push_back(adpcm_encode_sample(state, s));
  return out;
}

std::vector<std::int16_t> adpcm_decode(std::vector<std::uint8_t> const& codes) {
  AdpcmState state;
  std::vector<std::int16_t> out;
  out.reserve(codes.size());
  for (auto c : codes) out.push_back(adpcm_decode_sample(state, c));
  return out;
}

std::vector<std::int16_t> synth_audio(std::size_t samples, std::uint64_t seed) {
  lore::Rng rng(seed);
  const double f1 = rng.uniform(0.005, 0.03);
  const double f2 = rng.uniform(0.05, 0.15);
  std::vector<std::int16_t> pcm(samples);
  double drift = 0.0;
  for (std::size_t i = 0; i < samples; ++i) {
    drift += rng.normal(0.0, 0.002);
    const double t = static_cast<double>(i);
    const double v = 8000.0 * std::sin(2.0 * M_PI * f1 * t + drift) +
                     3000.0 * std::sin(2.0 * M_PI * f2 * t) + rng.normal(0.0, 400.0);
    pcm[i] = static_cast<std::int16_t>(std::clamp(v, -32000.0, 32000.0));
  }
  return pcm;
}

std::uint64_t adpcm_cycle_cost(std::size_t samples) {
  // Inner loop of the encoder on a single-issue in-order core: roughly
  // 35 ALU/branch ops + 6 loads/stores (2-cycle) per sample, plus loop
  // overhead.
  return static_cast<std::uint64_t>(samples) * (35 + 6 * 2) + 20;
}

std::vector<Segment> segment_adpcm_workload(const SegmentationConfig& cfg) {
  assert(cfg.max_cycles > cfg.min_cycles && cfg.num_segments > 0);
  lore::Rng rng(cfg.seed);
  std::vector<Segment> segments;
  segments.reserve(cfg.num_segments);

  const double cycles_per_sample =
      static_cast<double>(adpcm_cycle_cost(1000) - 20) / 1000.0;
  for (std::size_t s = 0; s < cfg.num_segments; ++s) {
    // Draw the block length so the segment lands uniformly in the paper's
    // cycle range (the encoder genuinely runs; this fixes its block size).
    const auto target = static_cast<std::uint64_t>(
        rng.uniform(static_cast<double>(cfg.min_cycles), static_cast<double>(cfg.max_cycles)));
    const auto block_samples =
        static_cast<std::size_t>(static_cast<double>(target) / cycles_per_sample);
    // Run the encoder over the block (keeps the workload real and lets the
    // cost model stay honest).
    const auto pcm = synth_audio(std::min<std::size_t>(block_samples, 8192),
                                 rng.next_u64());
    const auto codes = adpcm_encode(pcm);
    assert(codes.size() == pcm.size());
    segments.push_back(Segment{adpcm_cycle_cost(block_samples)});
  }
  return segments;
}

}  // namespace lore::rollback
