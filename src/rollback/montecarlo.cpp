#include "src/rollback/montecarlo.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/common/parallel.hpp"
#include "src/common/stats.hpp"
#include "src/obs/obs.hpp"

namespace lore::rollback {
namespace {

/// Domain-separation tag so DS-ML calibration streams never overlap the
/// Monte Carlo run streams derived from the same experiment seed.
constexpr std::uint64_t kCalibrationTag = 0x63616c6962726174ULL;  // "calibrat"

/// Outcomes of one Monte Carlo run, aligned with the scheduler list.
struct RunSample {
  double rollbacks = 0.0;
  std::vector<double> hit_rate;
};

}  // namespace

std::vector<double> ExperimentConfig::default_probability_grid() {
  std::vector<double> grid;
  for (double exponent = -8.0; exponent <= -3.01; exponent += 0.25)
    grid.push_back(std::pow(10.0, exponent));
  return grid;
}

double ExperimentResult::wall_position(SchedulerKind kind) const {
  for (const auto& point : points) {
    const auto it = point.hit_rate.find(kind);
    if (it != point.hit_rate.end() && it->second < 0.5) return point.p;
  }
  return points.empty() ? 0.0 : points.back().p;
}

ExperimentResult run_experiment(const ExperimentConfig& cfg,
                                const std::vector<SchedulerKind>& schedulers) {
  assert(!schedulers.empty());
  LORE_OBS_SPAN(span, "rollback.experiment");
  LORE_OBS_TIMER(timer, "rollback.experiment_us");
  ExperimentResult result;
  result.segments = segment_adpcm_workload(cfg.segmentation);

  // Static budgets are p-independent; DS-ML recalibrates per point (it sees
  // the field error rate through its calibration runs).
  std::map<SchedulerKind, std::vector<double>> budgets;
  for (auto kind : schedulers)
    if (kind != SchedulerKind::kDsLearned)
      budgets[kind] = static_budgets(kind, result.segments, cfg.mitigation.checkpoint);

  for (std::size_t pi = 0; pi < cfg.error_probabilities.size(); ++pi) {
    const double p = cfg.error_probabilities[pi];
    LORE_OBS_SPAN(point_span, "rollback.sweep_point");
    LORE_OBS_TIMER(point_timer, "rollback.point_us");
    LORE_OBS_COUNT("rollback.sweep_points", 1);
    LORE_OBS_COUNT("rollback.mc_runs", cfg.runs_per_point);
    SweepPoint point;
    point.p = p;

    const bool wants_learned =
        std::find(schedulers.begin(), schedulers.end(), SchedulerKind::kDsLearned) !=
        schedulers.end();
    if (wants_learned) {
      // DS-ML recalibrates at every sweep point: in deployment it would
      // track the observed field error rate.
      LearnedBudgetScheduler learned;
      lore::Rng calib_rng(lore::trial_seed(cfg.seed ^ kCalibrationTag, pi));
      learned.calibrate(result.segments, p, cfg.mitigation.checkpoint, 10, calib_rng);
      budgets[SchedulerKind::kDsLearned] =
          learned.budgets(result.segments, cfg.mitigation.checkpoint);
    }

    // The runs of a point are independent trials: each draws its stream from
    // the (point, run) counter, runs every scheduler against the same error
    // realization (paired comparison), and fills its own result slot.
    const std::uint64_t point_seed = lore::trial_seed(cfg.seed, pi);
    const auto samples = lore::parallel_trials<RunSample>(
        cfg.runs_per_point, point_seed, cfg.threads,
        [&](std::size_t run, lore::Rng&) {
          RunSample sample;
          sample.hit_rate.reserve(schedulers.size());
          for (auto kind : schedulers) {
            lore::Rng run_rng(lore::trial_seed(point_seed, run));
            const auto outcome = simulate_run(result.segments, budgets.at(kind), p,
                                              cfg.mitigation, run_rng);
            sample.hit_rate.push_back(outcome.deadline_hit_rate);
            if (sample.hit_rate.size() == 1)
              sample.rollbacks = outcome.mean_rollbacks_per_segment;
          }
          return sample;
        });

    // Merge serially in run order: the accumulation sequence — and thus the
    // floating-point result — is identical for every thread count.
    lore::RunningStats rollback_stats;
    std::vector<lore::RunningStats> hit_stats(schedulers.size());
    for (const auto& sample : samples) {
      rollback_stats.add(sample.rollbacks);
      for (std::size_t k = 0; k < schedulers.size(); ++k)
        hit_stats[k].add(sample.hit_rate[k]);
    }
    point.avg_rollbacks_per_segment = rollback_stats.mean();
    point.sem_rollbacks = rollback_stats.sem();
    for (std::size_t k = 0; k < schedulers.size(); ++k)
      point.hit_rate[schedulers[k]] = hit_stats[k].mean();
    result.points.push_back(std::move(point));
  }
  return result;
}

}  // namespace lore::rollback
