#include "src/rollback/montecarlo.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/common/stats.hpp"

namespace lore::rollback {

std::vector<double> ExperimentConfig::default_probability_grid() {
  std::vector<double> grid;
  for (double exponent = -8.0; exponent <= -3.01; exponent += 0.25)
    grid.push_back(std::pow(10.0, exponent));
  return grid;
}

double ExperimentResult::wall_position(SchedulerKind kind) const {
  for (const auto& point : points) {
    const auto it = point.hit_rate.find(kind);
    if (it != point.hit_rate.end() && it->second < 0.5) return point.p;
  }
  return points.empty() ? 0.0 : points.back().p;
}

ExperimentResult run_experiment(const ExperimentConfig& cfg,
                                const std::vector<SchedulerKind>& schedulers) {
  assert(!schedulers.empty());
  ExperimentResult result;
  result.segments = segment_adpcm_workload(cfg.segmentation);
  lore::Rng rng(cfg.seed);

  // Static budgets are p-independent; DS-ML recalibrates per point (it sees
  // the field error rate through its calibration runs).
  std::map<SchedulerKind, std::vector<double>> budgets;
  for (auto kind : schedulers)
    if (kind != SchedulerKind::kDsLearned)
      budgets[kind] = static_budgets(kind, result.segments, cfg.mitigation.checkpoint);

  for (double p : cfg.error_probabilities) {
    SweepPoint point;
    point.p = p;

    const bool wants_learned =
        std::find(schedulers.begin(), schedulers.end(), SchedulerKind::kDsLearned) !=
        schedulers.end();
    if (wants_learned) {
      // DS-ML recalibrates at every sweep point: in deployment it would
      // track the observed field error rate.
      LearnedBudgetScheduler learned;
      lore::Rng calib_rng = rng.split();
      learned.calibrate(result.segments, p, cfg.mitigation.checkpoint, 10, calib_rng);
      budgets[SchedulerKind::kDsLearned] =
          learned.budgets(result.segments, cfg.mitigation.checkpoint);
    }

    lore::RunningStats rollback_stats;
    std::map<SchedulerKind, lore::RunningStats> hit_stats;
    for (std::size_t run = 0; run < cfg.runs_per_point; ++run) {
      // Every scheduler sees the same error realization for this run
      // (paired comparison): reuse one RNG stream per (point, run).
      const std::uint64_t run_seed = rng.next_u64();
      bool rollbacks_recorded = false;
      for (auto kind : schedulers) {
        lore::Rng run_rng(run_seed);
        const auto outcome =
            simulate_run(result.segments, budgets.at(kind), p, cfg.mitigation, run_rng);
        hit_stats[kind].add(outcome.deadline_hit_rate);
        if (!rollbacks_recorded) {
          rollback_stats.add(outcome.mean_rollbacks_per_segment);
          rollbacks_recorded = true;
        }
      }
    }
    point.avg_rollbacks_per_segment = rollback_stats.mean();
    point.sem_rollbacks = rollback_stats.sem();
    for (auto kind : schedulers) point.hit_rate[kind] = hit_stats[kind].mean();
    result.points.push_back(std::move(point));
  }
  return result;
}

}  // namespace lore::rollback
