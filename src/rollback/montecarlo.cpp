#include "src/rollback/montecarlo.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "src/common/parallel.hpp"
#include "src/common/stats.hpp"
#include "src/obs/obs.hpp"

namespace lore::rollback {
namespace {

/// Domain-separation tag so DS-ML calibration streams never overlap the
/// Monte Carlo run streams derived from the same experiment seed.
constexpr std::uint64_t kCalibrationTag = 0x63616c6962726174ULL;  // "calibrat"

/// Outcomes of one Monte Carlo run, aligned with the scheduler list.
struct RunSample {
  double rollbacks = 0.0;
  std::vector<double> hit_rate;
};

struct RunSampleCodec {
  static void encode(lore::ByteWriter& w, const RunSample& r) {
    w.put_f64(r.rollbacks);
    w.put_u64(r.hit_rate.size());
    for (const double v : r.hit_rate) w.put_f64(v);
  }
  static RunSample decode(lore::ByteReader& r) {
    RunSample rec;
    rec.rollbacks = r.get_f64();
    const std::uint64_t n = r.get_u64();
    rec.hit_rate.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) rec.hit_rate.push_back(r.get_f64());
    return rec;
  }
};

/// Experiment fingerprint folded into the campaign identity: the sweep grid,
/// run count, scheduler set, and every workload/mitigation parameter that
/// shapes a run's outcome.
std::string experiment_domain(const ExperimentConfig& cfg,
                              const std::vector<SchedulerKind>& schedulers) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  const auto mix_f64 = [&mix](double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    mix(bits);
  };
  for (const double p : cfg.error_probabilities) mix_f64(p);
  mix(cfg.runs_per_point);
  for (const auto kind : schedulers) mix(static_cast<std::uint64_t>(kind));
  mix(cfg.segmentation.min_cycles);
  mix(cfg.segmentation.max_cycles);
  mix(cfg.segmentation.num_segments);
  mix(cfg.segmentation.seed);
  mix_f64(cfg.mitigation.speed_ratio);
  mix(cfg.mitigation.checkpoint.checkpoint_cycles);
  mix(cfg.mitigation.checkpoint.rollback_cycles);
  char buf[64];
  std::snprintf(buf, sizeof buf, "rollback.montecarlo/%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace

lore::CampaignSpec ExperimentConfig::default_campaign_spec() {
  lore::CampaignSpec spec;
  spec.base_seed = 97;  // the historical experiment seed
  return spec;
}

std::vector<double> ExperimentConfig::default_probability_grid() {
  std::vector<double> grid;
  for (double exponent = -8.0; exponent <= -3.01; exponent += 0.25)
    grid.push_back(std::pow(10.0, exponent));
  return grid;
}

double ExperimentResult::wall_position(SchedulerKind kind) const {
  for (const auto& point : points) {
    const auto it = point.hit_rate.find(kind);
    if (it != point.hit_rate.end() && it->second < 0.5) return point.p;
  }
  return points.empty() ? 0.0 : points.back().p;
}

ExperimentResult run_experiment(const ExperimentConfig& cfg,
                                const std::vector<SchedulerKind>& schedulers) {
  assert(!schedulers.empty());
  LORE_OBS_SPAN(span, "rollback.experiment");
  LORE_OBS_TIMER(timer, "rollback.experiment_us");
  ExperimentResult result;
  result.segments = segment_adpcm_workload(cfg.segmentation);

  const std::size_t n_points = cfg.error_probabilities.size();
  const std::size_t runs = cfg.runs_per_point;
  LORE_OBS_COUNT("rollback.sweep_points", n_points);
  LORE_OBS_COUNT("rollback.mc_runs", n_points * runs);

  // Static budgets are p-independent; DS-ML recalibrates per point (it sees
  // the field error rate through its calibration runs). Both are computed
  // serially up front — they are cheap and every Monte Carlo trial reads them
  // read-only, so the campaign body stays a pure function of its trial index.
  std::map<SchedulerKind, std::vector<double>> budgets;
  for (auto kind : schedulers)
    if (kind != SchedulerKind::kDsLearned)
      budgets[kind] = static_budgets(kind, result.segments, cfg.mitigation.checkpoint);

  const bool wants_learned =
      std::find(schedulers.begin(), schedulers.end(), SchedulerKind::kDsLearned) !=
      schedulers.end();
  std::vector<std::vector<double>> learned_budgets(wants_learned ? n_points : 0);
  for (std::size_t pi = 0; wants_learned && pi < n_points; ++pi) {
    LearnedBudgetScheduler learned;
    lore::Rng calib_rng(lore::trial_seed(cfg.campaign.base_seed ^ kCalibrationTag, pi));
    learned.calibrate(result.segments, cfg.error_probabilities[pi],
                      cfg.mitigation.checkpoint, 10, calib_rng);
    learned_budgets[pi] = learned.budgets(result.segments, cfg.mitigation.checkpoint);
  }

  // One campaign trial per (sweep point, run): trial pi*runs+run draws its
  // stream from the (point, run) counter — ignoring the engine's trial rng —
  // so the realizations are exactly the ones the pre-campaign serial sweep
  // produced, and each run plays every scheduler against the same error
  // realization (paired comparison).
  lore::CampaignSpec spec = cfg.campaign;
  spec.trials = n_points * runs;
  if (spec.domain.empty()) spec.domain = experiment_domain(cfg, schedulers);

  auto campaign = lore::run_campaign_batched<RunSample, RunSampleCodec>(
      spec, [&](std::size_t t, lore::Rng&, const lore::CancelToken& cancel) {
        const std::size_t pi = t / runs;
        const std::size_t run = t % runs;
        const double p = cfg.error_probabilities[pi];
        const std::uint64_t point_seed = lore::trial_seed(cfg.campaign.base_seed, pi);
        RunSample sample;
        sample.hit_rate.reserve(schedulers.size());
        for (auto kind : schedulers) {
          cancel.throw_if_cancelled();
          const auto& budget = kind == SchedulerKind::kDsLearned
                                   ? learned_budgets[pi]
                                   : budgets.at(kind);
          lore::Rng run_rng(lore::trial_seed(point_seed, run));
          const auto outcome =
              simulate_run(result.segments, budget, p, cfg.mitigation, run_rng);
          sample.hit_rate.push_back(outcome.deadline_hit_rate);
          if (sample.hit_rate.size() == 1)
            sample.rollbacks = outcome.mean_rollbacks_per_segment;
        }
        return sample;
      });
  result.campaign_report = campaign.report;

  // Merge serially in (point, run) order over the runs that completed: the
  // accumulation sequence — and thus the floating-point result — is identical
  // for every thread count and across interrupt/resume.
  for (std::size_t pi = 0; pi < n_points; ++pi) {
    SweepPoint point;
    point.p = cfg.error_probabilities[pi];
    lore::RunningStats rollback_stats;
    std::vector<lore::RunningStats> hit_stats(schedulers.size());
    for (std::size_t run = 0; run < runs; ++run) {
      const std::size_t t = pi * runs + run;
      if (campaign.status[t] != lore::TrialStatus::kOk) continue;
      const auto& sample = campaign.records[t];
      rollback_stats.add(sample.rollbacks);
      for (std::size_t k = 0; k < schedulers.size(); ++k)
        hit_stats[k].add(sample.hit_rate[k]);
    }
    point.avg_rollbacks_per_segment = rollback_stats.mean();
    point.sem_rollbacks = rollback_stats.sem();
    for (std::size_t k = 0; k < schedulers.size(); ++k)
      point.hit_rate[schedulers[k]] = hit_stats[k].mean();
    result.points.push_back(std::move(point));
  }
  return result;
}

}  // namespace lore::rollback
