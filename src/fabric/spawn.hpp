// Launching local fabric workers. Two flavors:
//
//  * fork_local_worker — plain fork(); the child runs `run_worker` in the
//    same binary image and `_exit`s. ONLY safe while the parent is still
//    single-threaded, i.e. between Coordinator::bind() and serve() — which is
//    exactly why that lifecycle is split in two.
//  * spawn_self_worker — fork + execve("/proc/self/exe") with
//    LORE_FABRIC_WORKER=<host:port> in the child environment. Safe from
//    multi-threaded parents (benches); requires the binary to call
//    `maybe_run_worker_from_env()` early in main (LORE_BENCH_MAIN does).
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <string>

namespace lore::fabric {

struct SpawnOptions {
  std::string host = "127.0.0.1";
  /// Shard-execution threads in the worker (0 = spec's count).
  unsigned threads = 0;
  /// Worker /metrics port (-2 none, 0 ephemeral) — see WorkerConfig.
  int metrics_port = 0;
};

/// fork() a worker child connecting to `port`. The child closes
/// `close_in_child` (the coordinator's listen fd) if >= 0, runs the worker
/// loop, and _exit()s. Returns the child pid, or -1 on fork failure.
/// Parent must be single-threaded at the call.
pid_t fork_local_worker(std::uint16_t port, const SpawnOptions& opts = {},
                        int close_in_child = -1);

/// fork + execve(/proc/self/exe) with LORE_FABRIC_WORKER/LORE_FABRIC_THREADS/
/// LORE_FABRIC_METRICS_PORT set (and LORE_SERVE stripped so the re-executed
/// binary doesn't fight over the parent's exposition port). Returns the
/// child pid, or -1 on failure.
pid_t spawn_self_worker(std::uint16_t port, const SpawnOptions& opts = {});

/// If LORE_FABRIC_WORKER=<host:port> is set, run the worker loop and
/// std::exit with its status — never returns in that case. Call first thing
/// in main() of any binary used with spawn_self_worker.
void maybe_run_worker_from_env();

/// waitpid for the child; returns its exit status (-1 on wait failure).
int wait_worker(pid_t pid);

/// SIGKILL + reap. For the killed-worker re-dispatch tests.
void kill_worker(pid_t pid);

}  // namespace lore::fabric
