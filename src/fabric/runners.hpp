// Campaign-kind registry — how a fabric worker knows what code a shard
// assignment means. A kind names a campaign entry point ("arch.fault",
// "arch.pipeline"); its JSON params rebuild the workload deterministically
// in the worker process, and its runner executes one trial sub-range into a
// LORECKP1 checkpoint via the domain's `*_campaign_shard` entry point. The
// registry is extensible so tests (and future domains) can add kinds; the
// two arch kinds are built in.
//
// Params understood by the built-in kinds:
//   arch.fault    {"workload": <name>, "scale": N, "wseed": S,
//                  "target": "register"|"memory"|"instruction"}
//   arch.pipeline {"workload": <name>, "scale": N, "wseed": S}
// with <name> one of dot_product, matmul, bubble_sort, checksum, fibonacci,
// find_max, random_program.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/arch/fault.hpp"
#include "src/arch/workloads.hpp"
#include "src/common/campaign.hpp"
#include "src/obs/json.hpp"

namespace lore::fabric {

/// One shard assignment, as decoded from an `assign` frame.
struct ShardJob {
  std::string kind;
  obs::Json params;
  CampaignSpec spec;
  TrialRange range;
};

using ShardRunner = std::function<CampaignCheckpoint(const ShardJob&)>;

/// Register/overwrite a kind. Thread-safe; typically called before workers
/// are spawned so forked children inherit the registration.
void register_runner(const std::string& kind, ShardRunner runner);

/// Runner for `kind`, or an empty function when unknown.
ShardRunner find_runner(const std::string& kind);

/// Rebuild the workload a params object names (shared by the built-in
/// runners and the lore_fabric driver). nullopt on an unknown name.
std::optional<arch::Workload> workload_from_params(const obs::Json& params);

/// Resolve `spec`'s campaign identity exactly as a worker executing
/// (kind, params) will — i.e. fill the domain fingerprint — so the
/// coordinator can validate shard payloads before any worker exists.
/// nullopt for an unknown kind or bad params.
std::optional<CampaignSpec> resolve_job_spec(const std::string& kind,
                                             const obs::Json& params,
                                             const CampaignSpec& spec);

/// Decode a merged checkpoint of a built-in arch kind into records.
/// nullopt for kinds without a FaultRecord payload.
std::optional<CampaignResult<arch::FaultRecord>> records_from_checkpoint(
    const std::string& kind, const CampaignSpec& spec, const CampaignCheckpoint& ck);

}  // namespace lore::fabric
