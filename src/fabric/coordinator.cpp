#include "src/fabric/coordinator.hpp"

#include <netinet/in.h>
#include <sys/socket.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "src/fabric/protocol.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/netutil.hpp"
#include "src/obs/scrape.hpp"

namespace lore::fabric {

namespace {

std::string peer_address(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (getpeername(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0 ||
      addr.sin_family != AF_INET)
    return "127.0.0.1";
  char buf[16];
  const auto ip = ntohl(addr.sin_addr.s_addr);
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (ip >> 24) & 0xff, (ip >> 16) & 0xff,
                (ip >> 8) & 0xff, ip & 0xff);
  return buf;
}

}  // namespace

Coordinator::~Coordinator() {
  if (serving_ || listen_fd_.load() >= 0) finish();
}

bool Coordinator::bind(const CoordinatorConfig& cfg) {
  cfg_ = cfg;
  const auto sock = obs::listen_tcp(cfg.bind_address, cfg.port);
  if (!sock) return false;
  listen_fd_.store(sock->fd);
  listen_port_ = sock->port;
  return true;
}

void Coordinator::serve(const FabricJob& job) {
  std::size_t shards = cfg_.shard_count;
  if (shards == 0) shards = 4 * std::max(1u, cfg_.expected_workers);
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = job;
    table_.emplace(job.spec.trials, shards);
    merged_ = CampaignCheckpoint{};
    merged_.identity = job.spec.identity_hash();
    merged_.build_tag = checkpoint_build_tag();
    merged_.trials = job.spec.trials;
    seen_.assign(job.spec.trials, 0);
    trials_done_ = 0;
    publish_gauges_locked();
  }
  serving_ = true;
  stopping_.store(false);
  accept_thread_ = std::thread(&Coordinator::accept_loop, this);
  if (cfg_.scrape_interval.count() > 0)
    scrape_thread_ = std::thread(&Coordinator::scrape_loop, this);
}

void Coordinator::accept_loop() {
  for (;;) {
    const int fd = obs::accept_retry(listen_fd_.load());
    if (fd < 0) return;  // listener closed by finish()
    if (stopping_.load()) {
      obs::close_fd(fd);
      return;
    }
    std::string host = peer_address(fd);
    std::lock_guard<std::mutex> lock(mu_);
    conn_fds_.push_back(fd);
    handlers_.emplace_back(&Coordinator::handle_connection, this, fd, std::move(host));
  }
}

obs::Json Coordinator::next_directive_locked(std::optional<std::size_t>& held_shard) {
  held_shard.reset();
  if (!table_ || table_->all_done()) {
    obs::Json head = obs::Json::object();
    head["type"] = "shutdown";
    return head;
  }
  const auto shard = table_->acquire(ShardTable::Clock::now(), cfg_.steal_after);
  if (!shard) {
    obs::Json head = obs::Json::object();
    head["type"] = "wait";
    head["ms"] = static_cast<std::int64_t>(cfg_.wait_hint.count());
    return head;
  }
  held_shard = *shard;
  const TrialRange range = table_->info(*shard).range;
  obs::Json head = obs::Json::object();
  head["type"] = "assign";
  head["shard"] = static_cast<std::int64_t>(*shard);
  head["kind"] = job_.kind;
  head["begin"] = static_cast<std::int64_t>(range.begin);
  head["end"] = static_cast<std::int64_t>(range.end);
  head["spec"] = spec_to_json(job_.spec);
  head["params"] = job_.params;
  return head;
}

void Coordinator::handle_connection(int fd, std::string peer_host) {
  std::optional<std::size_t> held_shard;
  std::size_t worker_index = static_cast<std::size_t>(-1);

  for (;;) {
    std::optional<Frame> msg = recv_frame(fd);
    if (!msg) break;
    const std::string type = msg->type();

    Frame reply;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (type == "hello") {
        WorkerInfo info;
        if (const obs::Json* n = msg->head.find("worker"))
          if (n->type() == obs::Json::Type::kString) info.name = n->as_string();
        if (const obs::Json* p = msg->head.find("metrics_port"))
          if (p->is_number())
            info.metrics_port = static_cast<int>(p->as_int());
        info.host = std::move(peer_host);
        info.alive = true;
        worker_index = workers_.size();
        workers_.push_back(std::move(info));
      } else if (type == "result") {
        const obs::Json* s = msg->head.find("shard");
        const std::int64_t shard = s && s->is_number()
                                       ? s->as_int()
                                       : -1;
        const std::string source =
            "shard " + std::to_string(shard) + " from " +
            (worker_index < workers_.size() ? workers_[worker_index].name
                                            : std::string("<unknown>"));
        std::optional<CampaignCheckpoint> ck =
            decode_checkpoint(msg->body, job_.spec, source);
        if (ck && shard >= 0) {
          const std::size_t fresh = merge_checkpoint_entries(merged_, *ck, seen_);
          duplicates_discarded_ += ck->entries.size() - fresh;
          trials_done_ += fresh;
          table_->complete(static_cast<std::size_t>(shard));
          held_shard.reset();
          if (table_->all_done()) done_cv_.notify_all();
        } else {
          // Invalid payload (CRC, identity, truncation): count it, put the
          // shard back in play, and keep the worker — the next assign may
          // succeed.
          ++payload_rejects_;
          if (shard >= 0) table_->abandon(static_cast<std::size_t>(shard));
          held_shard.reset();
        }
      } else if (type == "error") {
        const obs::Json* m = msg->head.find("message");
        std::fprintf(stderr, "lore-fabric: worker error: %s\n",
                     m && m->type() == obs::Json::Type::kString
                         ? m->as_string().c_str()
                         : "(no message)");
        if (held_shard) table_->abandon(*held_shard);
        held_shard.reset();
      } else if (type != "ready") {
        break;  // protocol violation; drop the connection
      }
      reply.head = next_directive_locked(held_shard);
      publish_gauges_locked();
    }
    if (!send_frame(fd, reply)) break;
  }

  // Connection gone: release anything it still held so another worker can
  // pick it up (the SIGKILLed-worker re-dispatch path).
  std::lock_guard<std::mutex> lock(mu_);
  if (held_shard && table_) table_->abandon(*held_shard);
  if (worker_index < workers_.size()) workers_[worker_index].alive = false;
  publish_gauges_locked();
  obs::close_fd(fd);
  std::erase(conn_fds_, fd);
}

void Coordinator::scrape_loop() {
  while (!stopping_.load()) {
    std::this_thread::sleep_for(cfg_.scrape_interval);
    if (stopping_.load()) return;

    // Snapshot scrape targets without holding the lock during network I/O.
    struct Target {
      std::size_t index;
      std::string host;
      int port;
    };
    std::vector<Target> targets;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (std::size_t i = 0; i < workers_.size(); ++i)
        if (workers_[i].alive && workers_[i].metrics_port >= 0)
          targets.push_back({i, workers_[i].host, workers_[i].metrics_port});
    }

    double rate_sum = 0.0;
    std::vector<std::pair<std::size_t, double>> observed;
    const auto now = std::chrono::steady_clock::now();
    for (const Target& t : targets) {
      const auto doc = obs::scrape_metrics_json(
          t.host, static_cast<std::uint16_t>(t.port));
      if (!doc) continue;
      const auto v = obs::metric_value(*doc, "counters", "campaign.trials_completed");
      if (v) observed.push_back({t.index, *v});
    }

    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [i, trials] : observed) {
      WorkerInfo& w = workers_[i];
      if (w.last_scrape.time_since_epoch().count() != 0) {
        const double dt = std::chrono::duration<double>(now - w.last_scrape).count();
        if (dt > 0 && trials >= w.last_trials)
          rate_sum += (trials - w.last_trials) / dt;
      }
      w.last_trials = trials;
      w.last_scrape = now;
    }
    fleet_trials_per_s_ = rate_sum;
    publish_gauges_locked();
  }
}

void Coordinator::publish_gauges_locked() {
  auto& reg = obs::MetricsRegistry::global();
  std::size_t alive = 0;
  for (const auto& w : workers_) alive += w.alive;
  reg.gauge("fleet.workers_alive").set(static_cast<double>(alive));
  reg.gauge("fleet.workers_seen").set(static_cast<double>(workers_.size()));
  if (table_) {
    reg.gauge("fleet.shards_pending").set(static_cast<double>(table_->pending()));
    reg.gauge("fleet.shards_inflight").set(static_cast<double>(table_->inflight()));
    reg.gauge("fleet.shards_done").set(static_cast<double>(table_->done()));
    reg.gauge("fleet.steals").set(static_cast<double>(table_->steals()));
  }
  reg.gauge("fleet.trials_done").set(static_cast<double>(trials_done_));
  reg.gauge("fleet.trials_total").set(static_cast<double>(merged_.trials));
  reg.gauge("fleet.payload_rejects").set(static_cast<double>(payload_rejects_));
  reg.gauge("fleet.duplicates_discarded")
      .set(static_cast<double>(duplicates_discarded_));
  reg.gauge("fleet.trials_per_s").set(fleet_trials_per_s_);
}

bool Coordinator::wait(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto complete = [&] { return table_ && table_->all_done(); };
  if (timeout.count() <= 0) {
    done_cv_.wait(lock, complete);
    return true;
  }
  return done_cv_.wait_for(lock, timeout, complete);
}

CampaignCheckpoint Coordinator::finish() {
  stopping_.store(true);
  // Closing the listener unblocks accept_retry; shutting down each live
  // connection unblocks its handler's recv_frame.
  if (const int lfd = listen_fd_.exchange(-1); lfd >= 0) {
    ::shutdown(lfd, SHUT_RDWR);
    obs::close_fd(lfd);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (scrape_thread_.joinable()) scrape_thread_.join();
  // Handlers remove themselves from conn_fds_ but never from handlers_, so
  // joining under the lock would deadlock; the vector is append-only and
  // accept_loop has exited, so its size is stable here.
  for (auto& t : handlers_)
    if (t.joinable()) t.join();
  handlers_.clear();
  serving_ = false;

  std::lock_guard<std::mutex> lock(mu_);
  return std::move(merged_);
}

FleetSnapshot Coordinator::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  FleetSnapshot s;
  for (const auto& w : workers_) s.workers_alive += w.alive;
  s.workers_seen = workers_.size();
  if (table_) {
    s.shards_pending = table_->pending();
    s.shards_inflight = table_->inflight();
    s.shards_done = table_->done();
    s.steals = table_->steals();
  }
  s.trials_done = trials_done_;
  s.trials_total = merged_.trials;
  s.payload_rejects = payload_rejects_;
  s.duplicates_discarded = duplicates_discarded_;
  s.trials_per_s = fleet_trials_per_s_;
  return s;
}

}  // namespace lore::fabric
