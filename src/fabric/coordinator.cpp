#include "src/fabric/coordinator.hpp"

#include <netinet/in.h>
#include <sys/socket.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "src/fabric/protocol.hpp"
#include "src/obs/flight.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/netutil.hpp"
#include "src/obs/scrape.hpp"
#include "src/obs/span.hpp"

namespace lore::fabric {

namespace {

std::string peer_address(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (getpeername(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0 ||
      addr.sin_family != AF_INET)
    return "127.0.0.1";
  char buf[16];
  const auto ip = ntohl(addr.sin_addr.s_addr);
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (ip >> 24) & 0xff, (ip >> 16) & 0xff,
                (ip >> 8) & 0xff, ip & 0xff);
  return buf;
}

}  // namespace

Coordinator::~Coordinator() {
  if (serving_ || listen_fd_.load() >= 0) finish();
}

bool Coordinator::bind(const CoordinatorConfig& cfg) {
  cfg_ = cfg;
  const auto sock = obs::listen_tcp(cfg.bind_address, cfg.port);
  if (!sock) return false;
  listen_fd_.store(sock->fd);
  listen_port_ = sock->port;
  return true;
}

void Coordinator::serve(const FabricJob& job) {
  std::size_t shards = cfg_.shard_count;
  if (shards == 0) shards = 4 * std::max(1u, cfg_.expected_workers);
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = job;
    table_.emplace(job.spec.trials, shards);
    merged_ = CampaignCheckpoint{};
    merged_.identity = job.spec.identity_hash();
    merged_.build_tag = checkpoint_build_tag();
    merged_.trials = job.spec.trials;
    seen_.assign(job.spec.trials, 0);
    trials_done_ = 0;
    // Capture the caller's ambient trace position: with the recorder live
    // this makes every assign a child of the caller's open root span.
    root_ctx_ = obs::current_trace_context();
    tracing_ = root_ctx_.valid() && obs::TraceRecorder::global().recording();
    publish_gauges_locked();
  }
  serving_ = true;
  stopping_.store(false);
  accept_thread_ = std::thread(&Coordinator::accept_loop, this);
  if (cfg_.scrape_interval.count() > 0)
    scrape_thread_ = std::thread(&Coordinator::scrape_loop, this);
}

void Coordinator::accept_loop() {
  for (;;) {
    const int fd = obs::accept_retry(listen_fd_.load());
    if (fd < 0) return;  // listener closed by finish()
    if (stopping_.load()) {
      obs::close_fd(fd);
      return;
    }
    std::string host = peer_address(fd);
    std::lock_guard<std::mutex> lock(mu_);
    conn_fds_.push_back(fd);
    handlers_.emplace_back(&Coordinator::handle_connection, this, fd, std::move(host));
  }
}

obs::Json Coordinator::next_directive_locked(std::optional<std::size_t>& held_shard) {
  held_shard.reset();
  // Every directive is stamped with this process's clock so workers can
  // estimate their offset from the directive round trip (protocol.hpp).
  obs::Json head = obs::Json::object();
  head["now_us"] = obs::TraceRecorder::now_us();
  if (!table_ || table_->all_done()) {
    head["type"] = "shutdown";
    return head;
  }
  const auto shard = table_->acquire(ShardTable::Clock::now(), cfg_.steal_after);
  if (!shard) {
    head["type"] = "wait";
    head["ms"] = static_cast<std::int64_t>(cfg_.wait_hint.count());
    return head;
  }
  held_shard = *shard;
  const TrialRange range = table_->info(*shard).range;
  head["type"] = "assign";
  head["shard"] = static_cast<std::int64_t>(*shard);
  head["kind"] = job_.kind;
  head["begin"] = static_cast<std::int64_t>(range.begin);
  head["end"] = static_cast<std::int64_t>(range.end);
  head["spec"] = spec_to_json(job_.spec);
  head["params"] = job_.params;
  if (tracing_) {
    head["trace"] = obs::trace_id_hex(root_ctx_.trace);
    head["parent_span"] = obs::span_id_hex(root_ctx_.span);
  }
  return head;
}

void Coordinator::handle_connection(int fd, std::string peer_host) {
  std::optional<std::size_t> held_shard;
  std::size_t worker_index = static_cast<std::size_t>(-1);

  for (;;) {
    std::optional<Frame> msg = recv_frame(fd);
    if (!msg) break;
    const std::string type = msg->type();

    Frame reply;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (type == "hello") {
        WorkerInfo info;
        if (const obs::Json* n = msg->head.find("worker"))
          if (n->type() == obs::Json::Type::kString) info.name = n->as_string();
        if (const obs::Json* p = msg->head.find("metrics_port"))
          if (p->is_number())
            info.metrics_port = static_cast<int>(p->as_int());
        if (const obs::Json* p = msg->head.find("pid"))
          if (p->is_number()) info.pid = static_cast<std::uint32_t>(p->as_int());
        if (const obs::Json* f = msg->head.find("flight"))
          if (f->type() == obs::Json::Type::kString) info.flight = f->as_string();
        info.host = std::move(peer_host);
        info.alive = true;
        worker_index = workers_.size();
        workers_.push_back(std::move(info));
      } else if (type == "result") {
        const obs::Json* s = msg->head.find("shard");
        const std::int64_t shard = s && s->is_number()
                                       ? s->as_int()
                                       : -1;
        const std::string source =
            "shard " + std::to_string(shard) + " from " +
            (worker_index < workers_.size() ? workers_[worker_index].name
                                            : std::string("<unknown>"));
        std::optional<CampaignCheckpoint> ck =
            decode_checkpoint(msg->body, job_.spec, source);
        if (ck && shard >= 0) {
          const std::size_t fresh = merge_checkpoint_entries(merged_, *ck, seen_);
          duplicates_discarded_ += ck->entries.size() - fresh;
          trials_done_ += fresh;
          table_->complete(static_cast<std::size_t>(shard));
          held_shard.reset();
          stitch_spans_locked(msg->head, worker_index);
          if (table_->all_done()) done_cv_.notify_all();
        } else {
          // Invalid payload (CRC, identity, truncation): count it, put the
          // shard back in play, and keep the worker — the next assign may
          // succeed.
          ++payload_rejects_;
          if (shard >= 0) table_->abandon(static_cast<std::size_t>(shard));
          held_shard.reset();
        }
      } else if (type == "error") {
        const obs::Json* m = msg->head.find("message");
        std::fprintf(stderr, "lore-fabric: worker error: %s\n",
                     m && m->type() == obs::Json::Type::kString
                         ? m->as_string().c_str()
                         : "(no message)");
        if (held_shard) table_->abandon(*held_shard);
        held_shard.reset();
      } else if (type != "ready") {
        break;  // protocol violation; drop the connection
      }
      reply.head = next_directive_locked(held_shard);
      publish_gauges_locked();
    }
    if (!send_frame(fd, reply)) break;
  }

  // Connection gone: release anything it still held so another worker can
  // pick it up (the SIGKILLed-worker re-dispatch path). Before re-dispatch,
  // salvage the dead worker's flight ring — the only forensic record of why
  // the shard needed re-dispatching in the first place.
  std::lock_guard<std::mutex> lock(mu_);
  if (held_shard && !stopping_.load())
    collect_flight_ring_locked(worker_index, *held_shard);
  if (held_shard && table_) table_->abandon(*held_shard);
  if (worker_index < workers_.size()) workers_[worker_index].alive = false;
  publish_gauges_locked();
  obs::close_fd(fd);
  std::erase(conn_fds_, fd);
}

void Coordinator::stitch_spans_locked(const obs::Json& head, std::size_t worker_index) {
  if (!tracing_) return;
  const obs::Json* tr = head.find("trace");
  const obs::Json* spans = head.find("spans");
  if (!tr || tr->type() != obs::Json::Type::kString || !spans) return;
  const obs::TraceId trace = obs::trace_id_from_hex(tr->as_string());
  if (!(trace == root_ctx_.trace)) return;  // a stray batch from another run
  double offset_us = 0.0;
  if (const obs::Json* o = head.find("offset_us"))
    if (o->is_number()) offset_us = o->as_double();
  const std::uint32_t pid =
      worker_index < workers_.size() ? workers_[worker_index].pid : 0;
  auto& recorder = obs::TraceRecorder::global();
  for (obs::TraceEvent& e : trace_events_from_json(*spans, trace)) {
    e.start_us += offset_us;  // worker clock -> coordinator clock
    e.pid = pid;
    recorder.record(std::move(e));
    ++spans_stitched_;
  }
}

void Coordinator::collect_flight_ring_locked(std::size_t worker_index,
                                             std::size_t shard) {
  if (worker_index >= workers_.size()) return;
  const WorkerInfo& w = workers_[worker_index];
  if (w.flight.empty()) return;
  ++flight_rings_collected_;
  std::string err;
  const auto dump = obs::decode_flight_file(w.flight, &err);
  if (!dump) {
    std::fprintf(stderr, "lore-fabric: worker %s died holding shard %zu; flight ring %s undecodable: %s\n",
                 w.name.c_str(), shard, w.flight.c_str(), err.c_str());
    return;
  }
  // The ring's own record stream names the shard that was inflight at death
  // (last shard_begin without a matching shard_end) — cross-check the table.
  long long ring_shard = -1;
  std::size_t open_spans = 0;
  for (const obs::FlightRecord& r : dump->records) {
    if (r.kind == obs::EventKind::kShardBegin)
      ring_shard = static_cast<long long>(r.a);
    else if (r.kind == obs::EventKind::kShardEnd &&
             ring_shard == static_cast<long long>(r.a))
      ring_shard = -1;
    if (r.kind == obs::EventKind::kSpanBegin) ++open_spans;
    if (r.kind == obs::EventKind::kSpanEnd && open_spans) --open_spans;
  }
  std::fprintf(stderr,
               "lore-fabric: collected flight ring %s from dead worker %s (pid %u): "
               "%zu records (%zu torn), inflight shard %lld, ~%zu open spans; "
               "re-dispatching shard %zu\n",
               w.flight.c_str(), w.name.c_str(), dump->pid, dump->records.size(),
               dump->torn_records, ring_shard, open_spans, shard);
}

void Coordinator::scrape_loop() {
  while (!stopping_.load()) {
    std::this_thread::sleep_for(cfg_.scrape_interval);
    if (stopping_.load()) return;

    // Snapshot scrape targets without holding the lock during network I/O.
    struct Target {
      std::size_t index;
      std::string host;
      int port;
    };
    std::vector<Target> targets;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (std::size_t i = 0; i < workers_.size(); ++i)
        if (workers_[i].alive && workers_[i].metrics_port >= 0)
          targets.push_back({i, workers_[i].host, workers_[i].metrics_port});
    }

    // Each scrape is deadline-bounded (cfg_.scrape_timeout): a worker that
    // dies between accept and response — the SIGKILL-mid-scrape case — costs
    // one bounded failure, not a hung poll loop.
    const int timeout_ms = static_cast<int>(cfg_.scrape_timeout.count());
    double rate_sum = 0.0;
    std::vector<std::pair<std::size_t, double>> observed;
    std::vector<std::size_t> failed;
    const auto now = std::chrono::steady_clock::now();
    for (const Target& t : targets) {
      const auto doc = obs::scrape_metrics_json(
          t.host, static_cast<std::uint16_t>(t.port), timeout_ms);
      const auto v =
          doc ? obs::metric_value(*doc, "counters", "campaign.trials_completed")
              : std::nullopt;
      if (v)
        observed.push_back({t.index, *v});
      else
        failed.push_back(t.index);
    }

    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [i, trials] : observed) {
      WorkerInfo& w = workers_[i];
      w.scrape_failures = 0;
      w.stale = false;
      if (w.last_scrape.time_since_epoch().count() != 0) {
        const double dt = std::chrono::duration<double>(now - w.last_scrape).count();
        if (dt > 0 && trials >= w.last_trials)
          rate_sum += (trials - w.last_trials) / dt;
      }
      w.last_trials = trials;
      w.last_scrape = now;
    }
    for (std::size_t i : failed) {
      WorkerInfo& w = workers_[i];
      ++w.scrape_failures;
      if (w.scrape_failures >= cfg_.stale_after) w.stale = true;
    }
    fleet_trials_per_s_ = rate_sum;
    publish_gauges_locked();
  }
}

void Coordinator::publish_gauges_locked() {
  auto& reg = obs::MetricsRegistry::global();
  std::size_t alive = 0, stale = 0;
  for (const auto& w : workers_) {
    alive += w.alive;
    stale += w.alive && w.stale;
  }
  reg.gauge("fleet.workers_alive").set(static_cast<double>(alive));
  reg.gauge("fleet.workers_seen").set(static_cast<double>(workers_.size()));
  reg.gauge("fleet.workers_stale").set(static_cast<double>(stale));
  reg.gauge("fleet.spans_stitched").set(static_cast<double>(spans_stitched_));
  reg.gauge("fleet.flight_rings_collected")
      .set(static_cast<double>(flight_rings_collected_));
  if (table_) {
    reg.gauge("fleet.shards_pending").set(static_cast<double>(table_->pending()));
    reg.gauge("fleet.shards_inflight").set(static_cast<double>(table_->inflight()));
    reg.gauge("fleet.shards_done").set(static_cast<double>(table_->done()));
    reg.gauge("fleet.steals").set(static_cast<double>(table_->steals()));
  }
  reg.gauge("fleet.trials_done").set(static_cast<double>(trials_done_));
  reg.gauge("fleet.trials_total").set(static_cast<double>(merged_.trials));
  reg.gauge("fleet.payload_rejects").set(static_cast<double>(payload_rejects_));
  reg.gauge("fleet.duplicates_discarded")
      .set(static_cast<double>(duplicates_discarded_));
  reg.gauge("fleet.trials_per_s").set(fleet_trials_per_s_);
}

bool Coordinator::wait(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto complete = [&] { return table_ && table_->all_done(); };
  if (timeout.count() <= 0) {
    done_cv_.wait(lock, complete);
    return true;
  }
  return done_cv_.wait_for(lock, timeout, complete);
}

CampaignCheckpoint Coordinator::finish() {
  stopping_.store(true);
  // Closing the listener unblocks accept_retry; shutting down each live
  // connection unblocks its handler's recv_frame.
  if (const int lfd = listen_fd_.exchange(-1); lfd >= 0) {
    ::shutdown(lfd, SHUT_RDWR);
    obs::close_fd(lfd);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (scrape_thread_.joinable()) scrape_thread_.join();
  // Handlers remove themselves from conn_fds_ but never from handlers_, so
  // joining under the lock would deadlock; the vector is append-only and
  // accept_loop has exited, so its size is stable here.
  for (auto& t : handlers_)
    if (t.joinable()) t.join();
  handlers_.clear();
  serving_ = false;

  std::lock_guard<std::mutex> lock(mu_);
  return std::move(merged_);
}

FleetSnapshot Coordinator::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  FleetSnapshot s;
  for (const auto& w : workers_) {
    s.workers_alive += w.alive;
    s.workers_stale += w.alive && w.stale;
  }
  s.workers_seen = workers_.size();
  if (table_) {
    s.shards_pending = table_->pending();
    s.shards_inflight = table_->inflight();
    s.shards_done = table_->done();
    s.steals = table_->steals();
  }
  s.trials_done = trials_done_;
  s.trials_total = merged_.trials;
  s.payload_rejects = payload_rejects_;
  s.duplicates_discarded = duplicates_discarded_;
  s.trials_per_s = fleet_trials_per_s_;
  s.spans_stitched = spans_stitched_;
  s.flight_rings_collected = flight_rings_collected_;
  return s;
}

}  // namespace lore::fabric
