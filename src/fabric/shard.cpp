#include "src/fabric/shard.hpp"

namespace lore::fabric {

ShardTable::ShardTable(std::size_t trials, std::size_t shard_count) {
  for (const TrialRange& r : shard_trial_ranges(trials, shard_count))
    shards_.push_back(ShardInfo{r});
}

std::optional<std::size_t> ShardTable::acquire(Clock::time_point now,
                                               std::chrono::milliseconds steal_after) {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i].state != ShardState::kPending) continue;
    shards_[i].state = ShardState::kInflight;
    ++shards_[i].dispatches;
    ++shards_[i].holders;
    shards_[i].last_dispatch = now;
    return i;
  }
  // Nothing pending: steal the longest-overdue straggler, if any.
  std::optional<std::size_t> victim;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const ShardInfo& s = shards_[i];
    if (s.state != ShardState::kInflight) continue;
    if (now - s.last_dispatch < steal_after) continue;
    if (!victim || s.last_dispatch < shards_[*victim].last_dispatch) victim = i;
  }
  if (victim) {
    ++shards_[*victim].dispatches;
    ++shards_[*victim].holders;
    shards_[*victim].last_dispatch = now;
    ++steals_;
  }
  return victim;
}

void ShardTable::complete(std::size_t shard) {
  if (shard >= shards_.size()) return;
  shards_[shard].state = ShardState::kDone;
}

void ShardTable::abandon(std::size_t shard) {
  if (shard >= shards_.size()) return;
  ShardInfo& s = shards_[shard];
  if (s.holders > 0) --s.holders;
  if (s.state == ShardState::kInflight && s.holders == 0) s.state = ShardState::kPending;
}

std::size_t ShardTable::count(ShardState state) const {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s.state == state;
  return n;
}

}  // namespace lore::fabric
