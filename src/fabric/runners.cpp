#include "src/fabric/runners.hpp"

#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "src/arch/pipeline.hpp"

namespace lore::fabric {

namespace {

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::map<std::string, ShardRunner>& registry() {
  static std::map<std::string, ShardRunner> r;
  return r;
}

std::optional<arch::FaultTarget> target_from_params(const obs::Json& params) {
  const obs::Json* t =
      params.type() == obs::Json::Type::kObject ? params.find("target") : nullptr;
  const std::string name =
      t && t->type() == obs::Json::Type::kString ? t->as_string() : "register";
  if (name == "register") return arch::FaultTarget::kRegister;
  if (name == "memory") return arch::FaultTarget::kMemory;
  if (name == "instruction") return arch::FaultTarget::kInstruction;
  return std::nullopt;
}

// Rebuilding a workload and its golden trace is far more expensive than one
// shard, and the coordinator re-dispatches shards of the same campaign to the
// same worker repeatedly — so cache the last (kind-independent) workload and
// its injector. FaultInjector holds a reference into the workload, so both
// live in one heap-stable holder.
struct InjectorCache {
  std::string key;
  std::unique_ptr<arch::Workload> workload;
  std::unique_ptr<arch::FaultInjector> injector;
};

std::string params_cache_key(const obs::Json& params) {
  return params.dump();
}

const InjectorCache& cached_injector(const obs::Json& params) {
  static std::mutex m;
  static InjectorCache cache;
  std::lock_guard<std::mutex> lock(m);
  const std::string key = params_cache_key(params);
  if (cache.key != key || !cache.injector) {
    std::optional<arch::Workload> w = workload_from_params(params);
    if (!w) throw std::runtime_error("fabric: unknown workload in shard params");
    cache.workload = std::make_unique<arch::Workload>(std::move(*w));
    cache.injector = std::make_unique<arch::FaultInjector>(*cache.workload);
    cache.key = key;
  }
  return cache;
}

const arch::Workload& cached_workload(const obs::Json& params) {
  return *cached_injector(params).workload;
}

CampaignCheckpoint run_fault_shard(const ShardJob& job) {
  const std::optional<arch::FaultTarget> target = target_from_params(job.params);
  if (!target) throw std::runtime_error("fabric: unknown fault target in shard params");
  const InjectorCache& cache = cached_injector(job.params);
  return cache.injector->campaign_shard(job.spec, job.range, *target);
}

CampaignCheckpoint run_pipeline_shard(const ShardJob& job) {
  return arch::pipeline_campaign_shard(cached_workload(job.params), job.spec, job.range);
}

void ensure_builtin_runners() {
  static std::once_flag once;
  std::call_once(once, [] {
    std::lock_guard<std::mutex> lock(registry_mutex());
    registry().emplace("arch.fault", run_fault_shard);
    registry().emplace("arch.pipeline", run_pipeline_shard);
  });
}

}  // namespace

void register_runner(const std::string& kind, ShardRunner runner) {
  ensure_builtin_runners();
  std::lock_guard<std::mutex> lock(registry_mutex());
  registry()[kind] = std::move(runner);
}

ShardRunner find_runner(const std::string& kind) {
  ensure_builtin_runners();
  std::lock_guard<std::mutex> lock(registry_mutex());
  auto it = registry().find(kind);
  return it == registry().end() ? ShardRunner{} : it->second;
}

std::optional<arch::Workload> workload_from_params(const obs::Json& params) {
  if (params.type() != obs::Json::Type::kObject) return std::nullopt;
  const obs::Json* w = params.find("workload");
  const std::string name =
      w && w->type() == obs::Json::Type::kString ? w->as_string() : "dot_product";
  auto int_or = [&](const char* field, std::int64_t fallback) {
    const obs::Json* v = params.find(field);
    return v && v->is_number() ? v->as_int() : fallback;
  };
  const auto scale = static_cast<std::size_t>(int_or("scale", 16));
  const auto seed = static_cast<std::uint64_t>(int_or("wseed", 7));
  if (name == "dot_product") return arch::make_dot_product(scale, seed);
  if (name == "matmul") return arch::make_matmul(scale, seed);
  if (name == "bubble_sort") return arch::make_bubble_sort(scale, seed);
  if (name == "checksum") return arch::make_checksum(scale, seed);
  if (name == "fibonacci") return arch::make_fibonacci(scale);
  if (name == "find_max") return arch::make_find_max(scale, seed);
  if (name == "random_program") return arch::make_random_program(scale, seed);
  return std::nullopt;
}

std::optional<CampaignSpec> resolve_job_spec(const std::string& kind,
                                             const obs::Json& params,
                                             const CampaignSpec& spec) {
  if (kind == "arch.fault") {
    const std::optional<arch::FaultTarget> target = target_from_params(params);
    if (!target) return std::nullopt;
    try {
      return cached_injector(params).injector->resolved_spec(spec, *target);
    } catch (const std::exception&) {
      return std::nullopt;
    }
  }
  if (kind == "arch.pipeline") {
    try {
      return arch::pipeline_campaign_spec(cached_workload(params), spec);
    } catch (const std::exception&) {
      return std::nullopt;
    }
  }
  return std::nullopt;
}

std::optional<CampaignResult<arch::FaultRecord>> records_from_checkpoint(
    const std::string& kind, const CampaignSpec& spec, const CampaignCheckpoint& ck) {
  if (kind == "arch.fault") return arch::FaultInjector::records_from_checkpoint(spec, ck);
  if (kind == "arch.pipeline") return arch::pipeline_records_from_checkpoint(spec, ck);
  return std::nullopt;
}

}  // namespace lore::fabric
