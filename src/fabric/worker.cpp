#include "src/fabric/worker.hpp"

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <optional>
#include <thread>
#include <vector>

#include "src/fabric/protocol.hpp"
#include "src/fabric/runners.hpp"
#include "src/obs/flight.hpp"
#include "src/obs/netutil.hpp"
#include "src/obs/ring.hpp"
#include "src/obs/serve.hpp"
#include "src/obs/span.hpp"

namespace lore::fabric {

namespace {

int connect_with_retry(const WorkerConfig& cfg) {
  for (unsigned attempt = 0;; ++attempt) {
    const int fd = obs::connect_tcp(cfg.host, cfg.port);
    if (fd >= 0) return fd;
    if (attempt + 1 >= cfg.connect_attempts) return -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

ShardJob job_from_assign(const obs::Json& head) {
  ShardJob job;
  job.kind = head.at("kind").as_string();
  if (const obs::Json* p = head.find("params")) job.params = *p;
  job.spec = spec_from_json(head.at("spec"));
  job.range.begin = static_cast<std::size_t>(head.at("begin").as_int());
  job.range.end = static_cast<std::size_t>(head.at("end").as_int());
  return job;
}

/// NTP-lite: the coordinator stamps every directive with its own now_us; the
/// worker brackets the round trip (its send -> its receive) and models the
/// coordinator's stamp as taken at the midpoint. offset = coordinator clock
/// minus worker clock, in microseconds; add it to a worker timestamp to land
/// on the coordinator's timeline.
struct ClockOffset {
  double offset_us = 0.0;
  bool valid = false;

  void observe(const obs::Json& head, double t_send_us, double t_recv_us) {
    const obs::Json* now = head.find("now_us");
    if (!now || !now->is_number()) return;
    offset_us = now->as_double() - 0.5 * (t_send_us + t_recv_us);
    valid = true;
  }
};

}  // namespace

int run_worker(const WorkerConfig& cfg) {
  // Crash forensics: `LORE_FLIGHT_DIR` (set by the driver before spawning)
  // gives every worker process its own mmap-backed ring that survives
  // SIGKILL; the coordinator collects it when this process dies mid-shard.
  const std::optional<std::string> flight_path = obs::FlightRecorder::init_from_env();

  const int fd = connect_with_retry(cfg);
  if (fd < 0) {
    std::fprintf(stderr, "lore-fabric: worker cannot reach coordinator %s:%u\n",
                 cfg.host.c_str(), static_cast<unsigned>(cfg.port));
    return 1;
  }

  // Worker-local scrape endpoint: the coordinator polls it for
  // campaign.trials_completed to publish fleet throughput.
  obs::MetricsServer metrics;
  int bound_metrics_port = -1;
  if (cfg.metrics_port >= 0) {
    obs::ServeConfig sc;
    sc.port = static_cast<std::uint16_t>(cfg.metrics_port);
    if (metrics.start(sc)) bound_metrics_port = metrics.port();
  }

  Frame hello = make_frame("hello");
  hello.head["schema"] = kSchema;
  hello.head["worker"] =
      cfg.name.empty() ? "w" + std::to_string(getpid()) : cfg.name;
  hello.head["pid"] = static_cast<std::int64_t>(getpid());
  hello.head["metrics_port"] = static_cast<std::int64_t>(bound_metrics_port);
  if (flight_path) hello.head["flight"] = *flight_path;
  double t_send = obs::TraceRecorder::now_us();
  if (!send_frame(fd, hello)) {
    obs::close_fd(fd);
    return 1;
  }

  ClockOffset clock;
  int rc = 0;
  for (;;) {
    std::optional<Frame> directive = recv_frame(fd);
    const double t_recv = obs::TraceRecorder::now_us();
    if (!directive) {
      rc = 1;  // connection lost mid-conversation
      break;
    }
    clock.observe(directive->head, t_send, t_recv);
    const std::string type = directive->type();
    if (type == "shutdown") break;

    if (type == "wait") {
      const obs::Json* ms = directive->head.find("ms");
      const std::int64_t sleep_ms =
          ms && ms->is_number() ? ms->as_int() : 25;
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
      t_send = obs::TraceRecorder::now_us();
      if (!send_frame(fd, make_frame("ready"))) {
        rc = 1;
        break;
      }
      continue;
    }

    if (type != "assign") {
      std::fprintf(stderr, "lore-fabric: worker got unknown directive \"%s\"\n",
                   type.c_str());
      rc = 1;
      break;
    }

    const std::int64_t shard = directive->head.at("shard").as_int();

    // Adopt the coordinator's trace context, if the assign carries one: the
    // shard span below becomes a child of the coordinator's root span, and
    // every chunk span / ring event inside the runner nests under it.
    obs::TraceId trace;
    obs::SpanId parent_span = 0;
    if (const obs::Json* t = directive->head.find("trace"))
      if (t->type() == obs::Json::Type::kString)
        trace = obs::trace_id_from_hex(t->as_string());
    if (const obs::Json* p = directive->head.find("parent_span"))
      if (p->type() == obs::Json::Type::kString)
        parent_span = obs::span_id_from_hex(p->as_string());
    const bool traced = trace.valid();

    auto& recorder = obs::TraceRecorder::global();
    std::size_t events_before = 0;
    if (traced) {
      recorder.set_enabled(true);
      events_before = recorder.event_count();
    }

    Frame reply;
    try {
      ShardJob job = job_from_assign(directive->head);
      if (cfg.threads != 0) job.spec.threads = cfg.threads;
      const ShardRunner runner = find_runner(job.kind);
      if (!runner)
        throw std::runtime_error("unknown campaign kind \"" + job.kind + "\"");
      CampaignCheckpoint ck;
      {
        std::optional<obs::TraceContextScope> scope;
        if (traced) scope.emplace(obs::TraceContext{trace, parent_span});
        obs::Span shard_span("fabric.shard/" + std::to_string(shard), "fabric");
        if (obs::event_stream_enabled())
          obs::emit_event(obs::EventKind::kShardBegin,
                          static_cast<std::uint64_t>(shard), 0.0, job.kind);
        ck = runner(job);
        if (obs::event_stream_enabled())
          obs::emit_event(obs::EventKind::kShardEnd,
                          static_cast<std::uint64_t>(shard),
                          shard_span.elapsed_us(), job.kind);
      }
      reply = make_frame("result");
      reply.head["shard"] = shard;
      reply.body = encode_checkpoint(ck);
      if (traced) {
        // Ship exactly this shard's spans: everything recorded since the
        // assign that belongs to the adopted trace (a re-dispatched shard on
        // the same worker would otherwise ship its first run's spans twice).
        const std::vector<obs::TraceEvent> all = recorder.events();
        std::vector<obs::TraceEvent> batch;
        for (std::size_t i = events_before; i < all.size(); ++i)
          if (all[i].trace == trace) batch.push_back(all[i]);
        reply.head["trace"] = obs::trace_id_hex(trace);
        reply.head["spans"] = trace_events_to_json(batch);
        if (clock.valid) reply.head["offset_us"] = clock.offset_us;
      }
    } catch (const std::exception& e) {
      reply = make_frame("error");
      reply.head["shard"] = shard;
      reply.head["message"] = std::string(e.what());
    }
    t_send = obs::TraceRecorder::now_us();
    if (!send_frame(fd, reply)) {
      rc = 1;
      break;
    }
  }

  obs::close_fd(fd);
  metrics.stop();
  obs::FlightRecorder::global().close();
  return rc;
}

}  // namespace lore::fabric
