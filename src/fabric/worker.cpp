#include "src/fabric/worker.hpp"

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <thread>

#include "src/fabric/protocol.hpp"
#include "src/fabric/runners.hpp"
#include "src/obs/netutil.hpp"
#include "src/obs/serve.hpp"

namespace lore::fabric {

namespace {

int connect_with_retry(const WorkerConfig& cfg) {
  for (unsigned attempt = 0;; ++attempt) {
    const int fd = obs::connect_tcp(cfg.host, cfg.port);
    if (fd >= 0) return fd;
    if (attempt + 1 >= cfg.connect_attempts) return -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

ShardJob job_from_assign(const obs::Json& head) {
  ShardJob job;
  job.kind = head.at("kind").as_string();
  if (const obs::Json* p = head.find("params")) job.params = *p;
  job.spec = spec_from_json(head.at("spec"));
  job.range.begin = static_cast<std::size_t>(head.at("begin").as_int());
  job.range.end = static_cast<std::size_t>(head.at("end").as_int());
  return job;
}

}  // namespace

int run_worker(const WorkerConfig& cfg) {
  const int fd = connect_with_retry(cfg);
  if (fd < 0) {
    std::fprintf(stderr, "lore-fabric: worker cannot reach coordinator %s:%u\n",
                 cfg.host.c_str(), static_cast<unsigned>(cfg.port));
    return 1;
  }

  // Worker-local scrape endpoint: the coordinator polls it for
  // campaign.trials_completed to publish fleet throughput.
  obs::MetricsServer metrics;
  int bound_metrics_port = -1;
  if (cfg.metrics_port >= 0) {
    obs::ServeConfig sc;
    sc.port = static_cast<std::uint16_t>(cfg.metrics_port);
    if (metrics.start(sc)) bound_metrics_port = metrics.port();
  }

  Frame hello = make_frame("hello");
  hello.head["schema"] = kSchema;
  hello.head["worker"] =
      cfg.name.empty() ? "w" + std::to_string(getpid()) : cfg.name;
  hello.head["pid"] = static_cast<std::int64_t>(getpid());
  hello.head["metrics_port"] = static_cast<std::int64_t>(bound_metrics_port);
  if (!send_frame(fd, hello)) {
    obs::close_fd(fd);
    return 1;
  }

  int rc = 0;
  for (;;) {
    std::optional<Frame> directive = recv_frame(fd);
    if (!directive) {
      rc = 1;  // connection lost mid-conversation
      break;
    }
    const std::string type = directive->type();
    if (type == "shutdown") break;

    if (type == "wait") {
      const obs::Json* ms = directive->head.find("ms");
      const std::int64_t sleep_ms =
          ms && ms->is_number() ? ms->as_int() : 25;
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
      if (!send_frame(fd, make_frame("ready"))) {
        rc = 1;
        break;
      }
      continue;
    }

    if (type != "assign") {
      std::fprintf(stderr, "lore-fabric: worker got unknown directive \"%s\"\n",
                   type.c_str());
      rc = 1;
      break;
    }

    const std::int64_t shard = directive->head.at("shard").as_int();
    Frame reply;
    try {
      ShardJob job = job_from_assign(directive->head);
      if (cfg.threads != 0) job.spec.threads = cfg.threads;
      const ShardRunner runner = find_runner(job.kind);
      if (!runner)
        throw std::runtime_error("unknown campaign kind \"" + job.kind + "\"");
      const CampaignCheckpoint ck = runner(job);
      reply = make_frame("result");
      reply.head["shard"] = shard;
      reply.body = encode_checkpoint(ck);
    } catch (const std::exception& e) {
      reply = make_frame("error");
      reply.head["shard"] = shard;
      reply.head["message"] = std::string(e.what());
    }
    if (!send_frame(fd, reply)) {
      rc = 1;
      break;
    }
  }

  obs::close_fd(fd);
  metrics.stop();
  return rc;
}

}  // namespace lore::fabric
