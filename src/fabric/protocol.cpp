#include "src/fabric/protocol.hpp"

#include "src/obs/netutil.hpp"

namespace lore::fabric {

std::string Frame::type() const {
  const obs::Json* t =
      head.type() == obs::Json::Type::kObject ? head.find("type") : nullptr;
  return t && t->type() == obs::Json::Type::kString ? t->as_string() : std::string();
}

Frame make_frame(const std::string& type) {
  Frame f;
  f.head = obs::Json::object();
  f.head["type"] = type;
  return f;
}

namespace {

void put_u32_le(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

std::uint32_t get_u32_le(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

bool send_frame(int fd, const Frame& frame) {
  const std::string head = frame.head.dump();
  if (head.size() > kMaxHeadBytes || frame.body.size() > kMaxBodyBytes) return false;
  std::string wire;
  wire.reserve(8 + head.size() + frame.body.size());
  put_u32_le(wire, static_cast<std::uint32_t>(head.size()));
  put_u32_le(wire, static_cast<std::uint32_t>(frame.body.size()));
  wire += head;
  wire += frame.body;
  return obs::send_all(fd, wire.data(), wire.size());
}

std::optional<Frame> recv_frame(int fd) {
  unsigned char prefix[8];
  if (!obs::recv_all(fd, prefix, sizeof prefix)) return std::nullopt;
  const std::uint32_t head_len = get_u32_le(prefix);
  const std::uint32_t body_len = get_u32_le(prefix + 4);
  if (head_len > kMaxHeadBytes || body_len > kMaxBodyBytes) return std::nullopt;

  std::string head(head_len, '\0');
  if (head_len && !obs::recv_all(fd, head.data(), head_len)) return std::nullopt;
  Frame f;
  f.body.resize(body_len);
  if (body_len && !obs::recv_all(fd, f.body.data(), body_len)) return std::nullopt;
  try {
    f.head = obs::Json::parse(head);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (f.head.type() != obs::Json::Type::kObject) return std::nullopt;
  return f;
}

obs::Json spec_to_json(const CampaignSpec& spec) {
  obs::Json j = obs::Json::object();
  j["trials"] = static_cast<std::int64_t>(spec.trials);
  j["base_seed"] = static_cast<std::int64_t>(spec.base_seed);
  j["domain"] = spec.domain;
  j["threads"] = static_cast<std::int64_t>(spec.threads);
  j["max_retries"] = static_cast<std::int64_t>(spec.max_retries);
  j["retry_backoff_ms"] = static_cast<std::int64_t>(spec.retry_backoff.count());
  return j;
}

obs::Json trace_events_to_json(const std::vector<obs::TraceEvent>& events,
                               std::size_t max) {
  obs::Json arr = obs::Json::array();
  const std::size_t skip = events.size() > max ? events.size() - max : 0;
  for (std::size_t i = skip; i < events.size(); ++i) {
    const obs::TraceEvent& e = events[i];
    obs::Json ev = obs::Json::object();
    ev["name"] = e.name;
    ev["cat"] = e.category;
    ev["ts"] = e.start_us;
    ev["dur"] = e.dur_us;
    ev["tid"] = static_cast<std::int64_t>(e.tid);
    ev["depth"] = static_cast<std::int64_t>(e.depth);
    ev["span"] = obs::span_id_hex(e.span);
    ev["parent"] = obs::span_id_hex(e.parent);
    arr.push_back(std::move(ev));
  }
  return arr;
}

std::vector<obs::TraceEvent> trace_events_from_json(const obs::Json& arr,
                                                    const obs::TraceId& trace) {
  std::vector<obs::TraceEvent> out;
  if (arr.type() != obs::Json::Type::kArray) return out;
  for (const obs::Json& ev : arr.items()) {
    if (ev.type() != obs::Json::Type::kObject) continue;
    const obs::Json* name = ev.find("name");
    const obs::Json* ts = ev.find("ts");
    const obs::Json* dur = ev.find("dur");
    const obs::Json* span = ev.find("span");
    if (!name || name->type() != obs::Json::Type::kString || !ts || !ts->is_number() ||
        !dur || !dur->is_number() || !span ||
        span->type() != obs::Json::Type::kString)
      continue;
    obs::TraceEvent e;
    e.name = name->as_string();
    if (const obs::Json* cat = ev.find("cat"))
      if (cat->type() == obs::Json::Type::kString) e.category = cat->as_string();
    e.start_us = ts->as_double();
    e.dur_us = dur->as_double();
    if (const obs::Json* tid = ev.find("tid"))
      if (tid->is_number()) e.tid = static_cast<std::uint32_t>(tid->as_int());
    if (const obs::Json* depth = ev.find("depth"))
      if (depth->is_number()) e.depth = static_cast<std::uint32_t>(depth->as_int());
    e.span = obs::span_id_from_hex(span->as_string());
    if (e.span == 0) continue;  // a span without identity cannot be stitched
    if (const obs::Json* parent = ev.find("parent"))
      if (parent->type() == obs::Json::Type::kString)
        e.parent = obs::span_id_from_hex(parent->as_string());
    e.trace = trace;
    out.push_back(std::move(e));
  }
  return out;
}

CampaignSpec spec_from_json(const obs::Json& j) {
  CampaignSpec spec;
  spec.trials = static_cast<std::size_t>(j.at("trials").as_int());
  spec.base_seed = static_cast<std::uint64_t>(j.at("base_seed").as_int());
  spec.domain = j.at("domain").as_string();
  spec.threads = static_cast<unsigned>(j.at("threads").as_int());
  spec.max_retries = static_cast<unsigned>(j.at("max_retries").as_int());
  spec.retry_backoff = std::chrono::milliseconds(j.at("retry_backoff_ms").as_int());
  return spec;
}

}  // namespace lore::fabric
