// Shard table — the coordinator's view of a campaign split into contiguous
// trial ranges (DESIGN.md §12). Owns only bookkeeping, no I/O, and is not
// internally synchronized: the coordinator serializes access under its own
// lock, which keeps this class trivially unit-testable.
//
// Lifecycle of a shard:  pending → inflight → done, with two backward edges:
//   * abandon()  — a holder died or delivered an invalid payload; when the
//     last holder drops, the shard returns to pending.
//   * stealing   — acquire() hands an inflight shard whose last dispatch is
//     older than `steal_after` to a second worker (a straggler re-dispatch).
//     Both keep running; the first valid result wins and the merge layer
//     discards the loser's duplicate trial indices.
#pragma once

#include <chrono>
#include <cstddef>
#include <optional>
#include <vector>

#include "src/common/campaign.hpp"

namespace lore::fabric {

enum class ShardState : std::uint8_t { kPending, kInflight, kDone };

struct ShardInfo {
  TrialRange range;
  ShardState state = ShardState::kPending;
  /// Times this shard has been handed out (1 = normal, >1 = stolen).
  unsigned dispatches = 0;
  /// Live connections currently working on it.
  unsigned holders = 0;
  std::chrono::steady_clock::time_point last_dispatch{};
};

class ShardTable {
 public:
  using Clock = std::chrono::steady_clock;

  ShardTable(std::size_t trials, std::size_t shard_count);

  std::size_t size() const { return shards_.size(); }
  const ShardInfo& info(std::size_t shard) const { return shards_[shard]; }

  /// Next shard to dispatch: any pending shard first; otherwise the
  /// longest-overdue inflight straggler (last dispatch older than
  /// `steal_after`). Marks it inflight on return. nullopt when nothing is
  /// dispatchable right now.
  std::optional<std::size_t> acquire(Clock::time_point now,
                                     std::chrono::milliseconds steal_after);

  /// A valid result was merged for this shard.
  void complete(std::size_t shard);

  /// One holder gave up (died, or its payload failed validation). Returns
  /// the shard to pending when no other worker still runs it.
  void abandon(std::size_t shard);

  std::size_t pending() const { return count(ShardState::kPending); }
  std::size_t inflight() const { return count(ShardState::kInflight); }
  std::size_t done() const { return count(ShardState::kDone); }
  bool all_done() const { return done() == shards_.size(); }
  /// Total number of straggler re-dispatches handed out so far.
  std::size_t steals() const { return steals_; }

 private:
  std::size_t count(ShardState s) const;

  std::vector<ShardInfo> shards_;
  std::size_t steals_ = 0;
};

}  // namespace lore::fabric
