// `lore.fabric.v1` — the wire protocol of the sharded campaign fabric
// (DESIGN.md §12). A frame is two little-endian u32 length prefixes followed
// by a JSON head (src/obs/json) and an opaque binary body:
//
//   u32 head_len | u32 body_len | head (JSON object) | body (raw bytes)
//
// The head always carries a "type" member; the body is empty for every type
// except "result", where it holds the shard's LORECKP1 checkpoint payload
// (CRC + campaign-identity verified by the receiver through
// `decode_checkpoint`). Conversation, always worker-initiated:
//
//   worker → hello    {type, schema, worker, pid, metrics_port, flight?}
//   worker → ready    {type}                       (after a wait directive)
//   worker → result   {type, shard,
//                      trace?, spans?, offset_us?} + LORECKP1 body
//   worker → error    {type, shard, message}
//   coord  → assign   {type, shard, kind, begin, end, spec, params,
//                      now_us, trace?, parent_span?}
//   coord  → wait     {type, ms, now_us}
//   coord  → shutdown {type, now_us}
//
// Distributed tracing rides the same frames (DESIGN.md §15): when the
// coordinator is recording, `assign` carries the campaign's 128-bit trace id
// plus the root span id, the worker runs the shard under that context, and
// its `result` ships the shard's span batch back (ids as fixed-width hex —
// the JSON model's integers are signed 64-bit) together with a clock-offset
// estimate derived from the `now_us` echo on every directive.
//
// The coordinator answers every worker frame with exactly one directive, so
// the socket never carries more than one unacknowledged message per side and
// a blocking read loop on either end is a complete implementation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include <vector>

#include "src/common/campaign.hpp"
#include "src/obs/json.hpp"
#include "src/obs/span.hpp"

namespace lore::fabric {

inline constexpr const char* kSchema = "lore.fabric.v1";

/// Sanity caps: a head larger than 1 MiB or a body larger than 1 GiB means a
/// desynchronized or hostile peer, not a real message.
inline constexpr std::uint32_t kMaxHeadBytes = 1u << 20;
inline constexpr std::uint32_t kMaxBodyBytes = 1u << 30;

struct Frame {
  obs::Json head;
  std::string body;

  /// head["type"] or "" when absent/not a string.
  std::string type() const;
};

/// Build a frame with `{"type": type}` as its head.
Frame make_frame(const std::string& type);

/// Serialize + write the whole frame. False when the peer is gone.
bool send_frame(int fd, const Frame& frame);

/// Blocking read of one complete frame. nullopt on orderly EOF, a truncated
/// frame (peer died mid-message), an oversized length prefix, or a head that
/// does not parse as a JSON object — callers treat all of these as
/// connection loss.
std::optional<Frame> recv_frame(int fd);

/// Campaign identity + execution policy a worker needs to run a shard.
obs::Json spec_to_json(const CampaignSpec& spec);
CampaignSpec spec_from_json(const obs::Json& j);

/// Cap on spans per `result` head: 2048 encoded spans stay well inside the
/// 1 MiB head cap; overflow drops the oldest spans (the shard span closes
/// last and must survive).
inline constexpr std::size_t kMaxSpanBatch = 2048;

/// Completed spans -> JSON array for a `result` head. Encodes at most `max`
/// events, preferring the newest (see kMaxSpanBatch); span/parent ids travel
/// as 16-digit hex strings.
obs::Json trace_events_to_json(const std::vector<obs::TraceEvent>& events,
                               std::size_t max = kMaxSpanBatch);

/// Inverse. Every decoded event is stamped with `trace` (the batch-level
/// trace id from the head). Malformed entries — wrong type, missing keys,
/// bad hex — are skipped, not fatal: a truncated batch yields fewer spans,
/// never a poisoned trace.
std::vector<obs::TraceEvent> trace_events_from_json(const obs::Json& arr,
                                                    const obs::TraceId& trace);

}  // namespace lore::fabric
