// `lore.fabric.v1` — the wire protocol of the sharded campaign fabric
// (DESIGN.md §12). A frame is two little-endian u32 length prefixes followed
// by a JSON head (src/obs/json) and an opaque binary body:
//
//   u32 head_len | u32 body_len | head (JSON object) | body (raw bytes)
//
// The head always carries a "type" member; the body is empty for every type
// except "result", where it holds the shard's LORECKP1 checkpoint payload
// (CRC + campaign-identity verified by the receiver through
// `decode_checkpoint`). Conversation, always worker-initiated:
//
//   worker → hello    {type, schema, worker, pid, metrics_port}
//   worker → ready    {type}                       (after a wait directive)
//   worker → result   {type, shard}                + LORECKP1 body
//   worker → error    {type, shard, message}
//   coord  → assign   {type, shard, kind, begin, end, spec, params}
//   coord  → wait     {type, ms}
//   coord  → shutdown {type}
//
// The coordinator answers every worker frame with exactly one directive, so
// the socket never carries more than one unacknowledged message per side and
// a blocking read loop on either end is a complete implementation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "src/common/campaign.hpp"
#include "src/obs/json.hpp"

namespace lore::fabric {

inline constexpr const char* kSchema = "lore.fabric.v1";

/// Sanity caps: a head larger than 1 MiB or a body larger than 1 GiB means a
/// desynchronized or hostile peer, not a real message.
inline constexpr std::uint32_t kMaxHeadBytes = 1u << 20;
inline constexpr std::uint32_t kMaxBodyBytes = 1u << 30;

struct Frame {
  obs::Json head;
  std::string body;

  /// head["type"] or "" when absent/not a string.
  std::string type() const;
};

/// Build a frame with `{"type": type}` as its head.
Frame make_frame(const std::string& type);

/// Serialize + write the whole frame. False when the peer is gone.
bool send_frame(int fd, const Frame& frame);

/// Blocking read of one complete frame. nullopt on orderly EOF, a truncated
/// frame (peer died mid-message), an oversized length prefix, or a head that
/// does not parse as a JSON object — callers treat all of these as
/// connection loss.
std::optional<Frame> recv_frame(int fd);

/// Campaign identity + execution policy a worker needs to run a shard.
obs::Json spec_to_json(const CampaignSpec& spec);
CampaignSpec spec_from_json(const obs::Json& j);

}  // namespace lore::fabric
