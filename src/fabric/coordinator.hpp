// Fabric coordinator — owns the shard table, speaks `lore.fabric.v1` to N
// worker processes, validates + merges their LORECKP1 shard payloads, and
// publishes fleet-level gauges (DESIGN.md §12).
//
// Lifecycle is split into `bind()` (socket only, spawns NO threads) and
// `serve()` (accept/handler/scrape threads) so callers can fork local worker
// processes in between while the parent is still single-threaded — the only
// fork() discipline that is safe under TSan and sane anywhere else.
//
// Bit-identity argument: the coordinator never executes trials, it only
// partitions [0, trials) into contiguous ranges and merges entry lists keyed
// by global trial index. Workers seed each trial from
// trial_seed(base_seed, global_index), so any partition — and any duplicated
// work from straggler re-dispatch, deduplicated here by first-result-wins —
// reassembles into exactly the single-process result.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/common/campaign.hpp"
#include "src/fabric/shard.hpp"
#include "src/obs/json.hpp"
#include "src/obs/span.hpp"

namespace lore::fabric {

struct CoordinatorConfig {
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral (read the bound port back with `port()`).
  std::uint16_t port = 0;
  /// Trial ranges to carve the campaign into; 0 = 4 x expected_workers
  /// (over-decomposition keeps the fleet busy when shards finish unevenly).
  std::size_t shard_count = 0;
  unsigned expected_workers = 1;
  /// Age after which an inflight shard becomes stealable (straggler
  /// re-dispatch; first valid result wins).
  std::chrono::milliseconds steal_after{3000};
  /// Backoff hint sent to an idle worker when nothing is dispatchable.
  std::chrono::milliseconds wait_hint{25};
  /// Fleet telemetry: poll each worker's /metrics.json this often and
  /// publish fleet.* gauges. <= 0 disables the scrape thread.
  std::chrono::milliseconds scrape_interval{250};
  /// Per-scrape socket deadline: a worker that dies mid-scrape fails the
  /// poll within this bound instead of hanging the scrape thread.
  std::chrono::milliseconds scrape_timeout{500};
  /// Consecutive failed scrapes after which a worker is marked stale
  /// (`fleet.workers_stale`); one success clears it.
  unsigned stale_after = 2;
};

/// The campaign to distribute. `spec` must already carry its resolved
/// identity (domain filled — see resolve_job_spec / FaultInjector::
/// resolved_spec / pipeline_campaign_spec): the coordinator validates every
/// incoming payload against `spec.identity_hash()` and workers recompute the
/// same identity from (kind, params).
struct FabricJob {
  std::string kind;
  obs::Json params;
  CampaignSpec spec;
};

/// Point-in-time fleet state (also published as `fleet.*` gauges).
struct FleetSnapshot {
  std::size_t workers_alive = 0;
  std::size_t workers_seen = 0;
  std::size_t shards_pending = 0;
  std::size_t shards_inflight = 0;
  std::size_t shards_done = 0;
  std::size_t trials_done = 0;
  std::size_t trials_total = 0;
  std::size_t payload_rejects = 0;
  std::size_t duplicates_discarded = 0;
  std::size_t steals = 0;
  double trials_per_s = 0.0;
  std::size_t workers_stale = 0;
  /// Remote spans merged into the coordinator's TraceRecorder so far.
  std::size_t spans_stitched = 0;
  /// Flight rings decoded from workers that died holding a shard.
  std::size_t flight_rings_collected = 0;
};

class Coordinator {
 public:
  Coordinator() = default;
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Bind + listen. Spawns no threads — fork workers after this, then call
  /// serve(). False when the socket cannot be bound.
  bool bind(const CoordinatorConfig& cfg);
  /// The bound port (valid after bind()).
  std::uint16_t port() const { return listen_port_; }
  /// The listening fd, so forked children can close their inherited copy.
  int listen_fd() const { return listen_fd_.load(); }

  /// Start accepting workers and dispatching `job`'s shards.
  ///
  /// Tracing: when the global TraceRecorder is recording AND the calling
  /// thread has a valid ambient TraceContext (open a root Span inside a
  /// TraceContextScope before calling), every assign carries that context,
  /// workers run their shards as child spans of it, and their span batches
  /// are stitched back into the recorder on this process's timeline — one
  /// merged fleet trace, exported via LORE_TRACE or GET /trace.json.
  void serve(const FabricJob& job);

  /// Block until every trial is merged, or `timeout` elapses (<= 0 waits
  /// forever). True when the campaign completed.
  bool wait(std::chrono::milliseconds timeout = std::chrono::milliseconds{0});

  /// Stop serving (workers get `shutdown`, sockets close, threads join) and
  /// return the merged checkpoint. Call after wait(); a merge of an
  /// incomplete campaign returns whatever arrived.
  CampaignCheckpoint finish();

  FleetSnapshot snapshot() const;

 private:
  struct WorkerInfo {
    std::string name;
    std::string host;       // peer address, for /metrics scraping
    int metrics_port = -1;  // worker-local scrape endpoint; < 0 = none
    std::uint32_t pid = 0;  // reported in hello; stamps stitched spans
    std::string flight;     // worker's flight-ring path (hello), "" = none
    bool alive = false;
    bool stale = false;     // >= cfg.stale_after consecutive scrape failures
    unsigned scrape_failures = 0;
    // Scrape baselines for the fleet trials/s estimate.
    double last_trials = 0.0;
    std::chrono::steady_clock::time_point last_scrape{};
  };

  void accept_loop();
  void handle_connection(int fd, std::string peer_host);
  void scrape_loop();
  /// One directive for a worker that just spoke (lock must be held).
  obs::Json next_directive_locked(std::optional<std::size_t>& held_shard);
  void publish_gauges_locked();
  /// Merge a result's span batch into the global TraceRecorder (lock held).
  void stitch_spans_locked(const obs::Json& head, std::size_t worker_index);
  /// Decode + report the flight ring of a worker that died holding `shard`
  /// (lock held). The post-mortem half of straggler re-dispatch.
  void collect_flight_ring_locked(std::size_t worker_index, std::size_t shard);

  CoordinatorConfig cfg_;
  FabricJob job_;
  /// Atomic: finish() invalidates it while the accept thread still reads it.
  std::atomic<int> listen_fd_{-1};
  std::uint16_t listen_port_ = 0;

  mutable std::mutex mu_;
  std::condition_variable done_cv_;
  std::optional<ShardTable> table_;
  CampaignCheckpoint merged_;
  std::vector<std::uint8_t> seen_;
  std::vector<WorkerInfo> workers_;
  std::vector<int> conn_fds_;
  std::size_t trials_done_ = 0;
  std::size_t payload_rejects_ = 0;
  std::size_t duplicates_discarded_ = 0;
  double fleet_trials_per_s_ = 0.0;
  std::size_t spans_stitched_ = 0;
  std::size_t flight_rings_collected_ = 0;
  /// Ambient trace context captured in serve(); valid + recording => assigns
  /// carry it and results' span batches are stitched.
  obs::TraceContext root_ctx_;
  bool tracing_ = false;

  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::thread scrape_thread_;
  std::vector<std::thread> handlers_;
  bool serving_ = false;
};

}  // namespace lore::fabric
