#include "src/fabric/spawn.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/fabric/worker.hpp"

extern char** environ;

namespace lore::fabric {

pid_t fork_local_worker(std::uint16_t port, const SpawnOptions& opts,
                        int close_in_child) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  // Child. Only async-signal-unsafe work the parent's single-threadedness
  // permits; no return to the caller's stack.
  if (close_in_child >= 0) close(close_in_child);
  WorkerConfig cfg;
  cfg.host = opts.host;
  cfg.port = port;
  cfg.threads = opts.threads;
  cfg.metrics_port = opts.metrics_port;
  const int rc = run_worker(cfg);
  _exit(rc);
}

pid_t spawn_self_worker(std::uint16_t port, const SpawnOptions& opts) {
  // Build the child environment BEFORE forking: between fork and execve in a
  // multi-threaded parent only async-signal-safe calls are allowed, and
  // malloc isn't one of them.
  std::vector<std::string> env_store;
  for (char** e = environ; e && *e; ++e) {
    if (std::strncmp(*e, "LORE_FABRIC_", 12) == 0) continue;
    if (std::strncmp(*e, "LORE_SERVE=", 11) == 0) continue;
    env_store.push_back(*e);
  }
  env_store.push_back("LORE_FABRIC_WORKER=" + opts.host + ":" + std::to_string(port));
  env_store.push_back("LORE_FABRIC_THREADS=" + std::to_string(opts.threads));
  env_store.push_back("LORE_FABRIC_METRICS_PORT=" + std::to_string(opts.metrics_port));
  std::vector<char*> envp;
  envp.reserve(env_store.size() + 1);
  for (auto& s : env_store) envp.push_back(s.data());
  envp.push_back(nullptr);
  char self[] = "/proc/self/exe";
  char* argv[] = {self, nullptr};

  const pid_t pid = fork();
  if (pid != 0) return pid;
  execve(self, argv, envp.data());
  _exit(127);  // execve failed
}

void maybe_run_worker_from_env() {
  const char* target = std::getenv("LORE_FABRIC_WORKER");
  if (!target || !*target) return;
  const char* colon = std::strrchr(target, ':');
  if (!colon) {
    std::fprintf(stderr, "lore-fabric: bad LORE_FABRIC_WORKER \"%s\"\n", target);
    std::exit(2);
  }
  WorkerConfig cfg;
  cfg.host.assign(target, colon - target);
  cfg.port = static_cast<std::uint16_t>(std::atoi(colon + 1));
  if (const char* t = std::getenv("LORE_FABRIC_THREADS"))
    cfg.threads = static_cast<unsigned>(std::atoi(t));
  if (const char* m = std::getenv("LORE_FABRIC_METRICS_PORT"))
    cfg.metrics_port = std::atoi(m);
  std::exit(run_worker(cfg));
}

int wait_worker(pid_t pid) {
  int status = 0;
  if (waitpid(pid, &status, 0) < 0) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

void kill_worker(pid_t pid) {
  kill(pid, SIGKILL);
  int status = 0;
  waitpid(pid, &status, 0);
}

}  // namespace lore::fabric
