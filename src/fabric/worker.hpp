// Fabric worker — one process executing campaign shards on behalf of a
// coordinator (DESIGN.md §12). Connects out, introduces itself with a
// `hello`, then loops: receive a directive, act, answer. All campaign code
// runs through the kind registry in runners.hpp, so the worker itself knows
// nothing about fault models or pipelines.
#pragma once

#include <cstdint>
#include <string>

namespace lore::fabric {

struct WorkerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Name reported in `hello` (diagnostics); defaults to "w<pid>".
  std::string name;
  /// Thread override for shard execution; 0 keeps the spec's thread count.
  unsigned threads = 0;
  /// Worker-local /metrics port: -2 = no server, >= 0 = serve on that port
  /// (0 = ephemeral). The bound port is reported in `hello` so the
  /// coordinator can scrape fleet throughput.
  int metrics_port = -2;
  /// Connect retries while the coordinator's listener comes up.
  unsigned connect_attempts = 50;
};

/// Run the worker loop until the coordinator sends `shutdown` or the
/// connection drops. Returns 0 on orderly shutdown, nonzero on failure to
/// connect or a protocol error.
int run_worker(const WorkerConfig& cfg);

}  // namespace lore::fabric
