#include "src/arch/crossbar.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lore::arch {

CrossbarAccelerator::CrossbarAccelerator(const ml::Mlp& network, double g_max)
    : g_max_(g_max) {
  assert(network.num_layers() > 0 && g_max > 0.0);
  for (std::size_t l = 0; l < network.num_layers(); ++l) {
    ml::Matrix w = network.layer_weights(l);
    // Conductance clipping: weights outside the programmable range saturate.
    for (double& v : w.flat()) v = std::clamp(v, -g_max_, g_max_);
    weights_.push_back(std::move(w));
    const auto b = network.layer_biases(l);
    biases_.emplace_back(b.begin(), b.end());
  }
}

std::size_t CrossbarAccelerator::num_cells() const {
  std::size_t n = 0;
  for (const auto& w : weights_) n += w.rows() * w.cols();
  return n;
}

double CrossbarAccelerator::cell_weight(const CrossbarFault& fault) const {
  assert(fault.layer < weights_.size());
  return weights_[fault.layer](fault.col, fault.row);
}

double CrossbarAccelerator::stuck_value(const CrossbarFault& fault) const {
  return fault.type == CrossbarFaultType::kStuckAtLow ? -g_max_ : g_max_;
}

std::vector<double> CrossbarAccelerator::infer(std::span<const double> input,
                                               const CrossbarFault* fault) const {
  assert(input.size() == weights_.front().cols());
  std::vector<double> current(input.begin(), input.end());
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    const auto& w = weights_[l];
    std::vector<double> next(w.rows());
    for (std::size_t o = 0; o < w.rows(); ++o) {
      double acc = biases_[l][o];
      for (std::size_t i = 0; i < w.cols(); ++i) {
        double g = w(o, i);
        if (fault != nullptr && fault->layer == l && fault->col == o && fault->row == i)
          g = stuck_value(*fault);
        acc += g * current[i];
      }
      next[o] = acc;
    }
    const bool is_output = l + 1 == weights_.size();
    if (!is_output)
      for (double& v : next) v = std::max(0.0, v);  // ReLU hidden layers
    current = std::move(next);
  }
  return current;
}

int CrossbarAccelerator::classify(std::span<const double> input,
                                  const CrossbarFault* fault) const {
  const auto out = infer(input, fault);
  return static_cast<int>(std::max_element(out.begin(), out.end()) - out.begin());
}

CrossbarFault CrossbarAccelerator::random_fault(lore::Rng& rng) const {
  CrossbarFault f;
  f.layer = rng.uniform_index(weights_.size());
  f.col = rng.uniform_index(weights_[f.layer].rows());
  f.row = rng.uniform_index(weights_[f.layer].cols());
  f.type = rng.bernoulli(0.5) ? CrossbarFaultType::kStuckAtLow
                              : CrossbarFaultType::kStuckAtHigh;
  return f;
}

double fault_criticality(const CrossbarAccelerator& accel, const CrossbarFault& fault,
                         const ml::Matrix& eval_inputs) {
  assert(eval_inputs.rows() > 0);
  std::size_t flips = 0;
  for (std::size_t r = 0; r < eval_inputs.rows(); ++r) {
    const int clean = accel.classify(eval_inputs.row(r));
    const int faulty = accel.classify(eval_inputs.row(r), &fault);
    flips += clean != faulty;
  }
  return static_cast<double>(flips) / static_cast<double>(eval_inputs.rows());
}

std::vector<std::vector<double>> mean_line_activations(const CrossbarAccelerator& accel,
                                                       const ml::Mlp& network,
                                                       const ml::Matrix& inputs) {
  std::vector<std::vector<double>> activity(accel.num_layers());
  for (std::size_t l = 0; l < accel.num_layers(); ++l)
    activity[l].assign(accel.layer_rows(l), 0.0);
  for (std::size_t r = 0; r < inputs.rows(); ++r) {
    const auto layers = network.forward_layers(inputs.row(r));
    for (std::size_t l = 0; l < accel.num_layers(); ++l)
      for (std::size_t i = 0; i < activity[l].size(); ++i)
        activity[l][i] += std::abs(layers[l][i]);
  }
  for (auto& layer : activity)
    for (auto& a : layer) a /= static_cast<double>(inputs.rows());
  return activity;
}

std::vector<double> crossbar_fault_features(
    const CrossbarAccelerator& accel, const CrossbarFault& fault,
    const std::vector<std::vector<double>>& line_activity) {
  const double w = accel.cell_weight(fault);
  const double stuck = accel.stuck_value(fault);
  // Column L1 norm: how much signal the struck output line carries.
  double col_l1 = 0.0;
  const std::size_t fan_in = accel.layer_rows(fault.layer);
  for (std::size_t i = 0; i < fan_in; ++i) {
    CrossbarFault probe = fault;
    probe.row = i;
    col_l1 += std::abs(accel.cell_weight(probe));
  }
  const bool is_output_layer = fault.layer + 1 == accel.num_layers();
  const double activity = line_activity[fault.layer][fault.row];
  return {std::abs(w),
          std::abs(stuck - w),
          fault.type == CrossbarFaultType::kStuckAtHigh ? 1.0 : 0.0,
          static_cast<double>(fault.layer) /
              static_cast<double>(std::max<std::size_t>(1, accel.num_layers() - 1)),
          static_cast<double>(fan_in),
          col_l1,
          is_output_layer ? 1.0 : 0.0,
          activity,
          std::abs(stuck - w) * activity};
}

ml::Dataset crossbar_fault_dataset(const CrossbarAccelerator& accel,
                                   const ml::Mlp& network, const ml::Matrix& eval_inputs,
                                   std::size_t samples, double threshold, lore::Rng& rng) {
  const auto activity = mean_line_activations(accel, network, eval_inputs);
  ml::Dataset d;
  for (std::size_t s = 0; s < samples; ++s) {
    const auto fault = accel.random_fault(rng);
    const double crit = fault_criticality(accel, fault, eval_inputs);
    d.add(crossbar_fault_features(accel, fault, activity), crit > threshold ? 1 : 0, crit);
  }
  return d;
}

}  // namespace lore::arch
