#include "src/arch/features.hpp"

#include <algorithm>
#include <array>
#include <cassert>

namespace lore::arch {

std::vector<double> register_features(const Workload& w, std::size_t reg) {
  assert(reg < kNumRegisters);
  // Dynamic counts from a clean run.
  Cpu cpu(w.memory_words);
  cpu.load_program(w.program);
  for (const auto& [addr, value] : w.memory_init) cpu.set_mem(addr, value);
  cpu.run(w.max_cycles);
  const double reads = static_cast<double>(cpu.register_reads()[reg]);
  const double writes = static_cast<double>(cpu.register_writes()[reg]);
  const double cycles = static_cast<double>(std::max<std::uint64_t>(1, cpu.cycles()));

  // Static usage.
  double fanout = 0.0, addr_use = 0.0, branch_use = 0.0, reader_fraction = 0.0;
  for (const auto& ins : w.program) {
    const auto sources = source_registers(ins);
    const bool reads_reg =
        std::find(sources.begin(), sources.end(), static_cast<unsigned>(reg)) != sources.end();
    if (reads_reg) {
      fanout += 1.0;
      reader_fraction += 1.0;
      if (is_memory(ins.op) && ins.rs1 == reg) addr_use += 1.0;
      if (is_branch(ins.op)) branch_use += 1.0;
    }
  }
  reader_fraction /= static_cast<double>(std::max<std::size_t>(1, w.program.size()));

  return {reads / cycles,
          writes / cycles,
          reads / std::max(1.0, writes),
          fanout,
          addr_use,
          branch_use,
          reader_fraction};
}

std::vector<double> instruction_features(const Program& p, std::size_t idx) {
  assert(idx < p.size());
  const auto& ins = p[idx];

  // Static result fan-out until redefinition (straight-line approximation).
  double fanout = 0.0;
  if (writes_register(ins.op)) {
    for (std::size_t j = idx + 1; j < p.size(); ++j) {
      const auto sources = source_registers(p[j]);
      if (std::find(sources.begin(), sources.end(), static_cast<unsigned>(ins.rd)) !=
          sources.end())
        fanout += 1.0;
      if (writes_register(p[j].op) && p[j].rd == ins.rd) break;  // redefined
    }
  }
  // Distance to the next store / branch after this instruction (observability
  // latency proxies). Capped at 32.
  auto distance_to = [&](auto pred) {
    for (std::size_t j = idx + 1; j < p.size() && j - idx <= 32; ++j)
      if (pred(p[j].op)) return static_cast<double>(j - idx);
    return 32.0;
  };

  return {ins.op == Opcode::kNop || ins.op == Opcode::kHalt ? 1.0 : 0.0,
          writes_register(ins.op) ? 1.0 : 0.0,
          is_memory(ins.op) ? 1.0 : 0.0,
          is_branch(ins.op) ? 1.0 : 0.0,
          static_cast<double>(source_registers(ins).size()),
          static_cast<double>(static_cast<unsigned>(ins.op)) / 18.0,
          fanout,
          distance_to([](Opcode op) { return op == Opcode::kSt; }),
          distance_to([](Opcode op) { return is_branch(op); }),
          static_cast<double>(idx) / static_cast<double>(p.size())};
}

ml::FeatureGraph build_program_graph(const Program& p) {
  ml::FeatureGraph g(kInstructionFeatureDim);
  for (std::size_t i = 0; i < p.size(); ++i) g.add_node(instruction_features(p, i));

  // Data-dependency edges, both directions: def -> use (type 0) carries
  // producer context; use -> def (type 1) tells a producer where its value
  // flows — the direction that determines SDC-proneness (a result consumed
  // by a store corrupts memory; one consumed by a branch diverts control).
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (!writes_register(p[i].op)) continue;
    for (std::size_t j = i + 1; j < p.size(); ++j) {
      const auto sources = source_registers(p[j]);
      if (std::find(sources.begin(), sources.end(), static_cast<unsigned>(p[i].rd)) !=
          sources.end()) {
        g.add_edge(i, j, 0);
        g.add_edge(j, i, 1);
      }
      if (writes_register(p[j].op) && p[j].rd == p[i].rd) break;
    }
  }
  // Control adjacency, both directions: fall-through/branch target forward
  // (type 2) and backward (type 3).
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (i + 1 < p.size() && p[i].op != Opcode::kJmp && p[i].op != Opcode::kHalt) {
      g.add_edge(i, i + 1, 2);
      g.add_edge(i + 1, i, 3);
    }
    if (is_branch(p[i].op) && p[i].imm >= 0 &&
        static_cast<std::size_t>(p[i].imm) < p.size()) {
      g.add_edge(i, static_cast<std::size_t>(p[i].imm), 2);
      g.add_edge(static_cast<std::size_t>(p[i].imm), i, 3);
    }
  }
  g.finalize();
  return g;
}

ml::Dataset register_vulnerability_dataset(const Workload& w,
                                           const std::vector<FaultRecord>& register_campaign,
                                           double threshold) {
  std::vector<std::size_t> fails(kNumRegisters, 0), totals(kNumRegisters, 0);
  for (const auto& r : register_campaign) {
    assert(r.site.target == FaultTarget::kRegister);
    ++totals[r.site.index];
    fails[r.site.index] += r.outcome == Outcome::kSdc || r.outcome == Outcome::kCrash ||
                           r.outcome == Outcome::kHang;
  }
  ml::Dataset d;
  for (std::size_t reg = 0; reg < kNumRegisters; ++reg) {
    if (totals[reg] == 0) continue;
    const double failure_rate =
        static_cast<double>(fails[reg]) / static_cast<double>(totals[reg]);
    d.add(register_features(w, reg), failure_rate > threshold ? 1 : 0, failure_rate);
  }
  return d;
}

std::vector<int> instruction_vulnerability_labels(
    const Program& p, const std::vector<FaultRecord>& instruction_campaign,
    double threshold) {
  std::vector<std::size_t> fails(p.size(), 0), totals(p.size(), 0);
  for (const auto& r : instruction_campaign) {
    assert(r.site.target == FaultTarget::kInstruction);
    if (r.site.index >= p.size()) continue;
    ++totals[r.site.index];
    fails[r.site.index] += r.outcome == Outcome::kSdc || r.outcome == Outcome::kCrash ||
                           r.outcome == Outcome::kHang;
  }
  std::vector<int> labels(p.size(), 0);
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (totals[i] == 0) continue;
    labels[i] =
        static_cast<double>(fails[i]) / static_cast<double>(totals[i]) > threshold ? 1 : 0;
  }
  return labels;
}

std::vector<int> instruction_outcome_labels(const Program& p,
                                            const std::vector<FaultRecord>& campaign) {
  std::vector<std::array<std::size_t, 3>> counts(p.size(), {0, 0, 0});
  for (const auto& r : campaign) {
    if (r.site.target != FaultTarget::kInstruction || r.site.index >= p.size()) continue;
    switch (r.outcome) {
      case Outcome::kBenign: ++counts[r.site.index][0]; break;
      case Outcome::kSdc: ++counts[r.site.index][1]; break;
      case Outcome::kCrash:
      case Outcome::kHang: ++counts[r.site.index][2]; break;
      case Outcome::kDetected: break;
    }
  }
  std::vector<int> labels(p.size(), -1);
  for (std::size_t i = 0; i < p.size(); ++i) {
    const auto& c = counts[i];
    const std::size_t total = c[0] + c[1] + c[2];
    if (total == 0) continue;
    labels[i] = static_cast<int>(std::max_element(c.begin(), c.end()) - c.begin());
  }
  return labels;
}

FaultSiteFeaturizer::FaultSiteFeaturizer(const Workload& w, std::uint64_t golden_cycles) {
  inv_cycles_ = golden_cycles > 0 ? 1.0 / static_cast<double>(golden_cycles) : 0.0;
  // Same live data window as FaultInjector::random_site.
  std::size_t mem_hi = w.output_base + w.output_words;
  for (const auto& [addr, value] : w.memory_init) mem_hi = std::max(mem_hi, addr + 1);
  inv_mem_ = mem_hi > 0 ? 1.0 / static_cast<double>(mem_hi) : 0.0;
  inv_prog_ = w.program.empty() ? 0.0 : 1.0 / static_cast<double>(w.program.size());
  reg_features_.reserve(kNumRegisters * kRegisterFeatureDim);
  for (std::size_t reg = 0; reg < kNumRegisters; ++reg) {
    const auto f = register_features(w, reg);
    reg_features_.insert(reg_features_.end(), f.begin(), f.end());
  }
}

void FaultSiteFeaturizer::featurize(const FaultSite& site, std::span<double> out) const {
  assert(out.size() >= kFaultSiteFeatureDim);
  std::fill(out.begin(), out.begin() + kFaultSiteFeatureDim, 0.0);
  double inv_index = 0.0;
  switch (site.target) {
    case FaultTarget::kRegister: inv_index = 1.0 / static_cast<double>(kNumRegisters); break;
    case FaultTarget::kMemory: inv_index = inv_mem_; break;
    case FaultTarget::kInstruction: inv_index = inv_prog_; break;
  }
  out[static_cast<std::size_t>(site.target)] = 1.0;
  out[3] = static_cast<double>(site.index) * inv_index;
  out[4] = static_cast<double>(site.bit) / 32.0;
  out[5] = static_cast<double>(site.cycle) * inv_cycles_;
  if (site.target == FaultTarget::kRegister && site.index < kNumRegisters) {
    const double* rf = reg_features_.data() + site.index * kRegisterFeatureDim;
    std::copy(rf, rf + kRegisterFeatureDim, out.begin() + 6);
  }
}

}  // namespace lore::arch
