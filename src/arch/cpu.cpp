#include "src/arch/cpu.hpp"

#include <algorithm>
#include <cassert>

namespace lore::arch {

Cpu::Cpu(std::size_t memory_words)
    : regs_(kNumRegisters, 0),
      memory_(memory_words, 0),
      reg_reads_(kNumRegisters, 0),
      reg_writes_(kNumRegisters, 0) {}

void Cpu::load_program(Program program) {
  program_ = std::move(program);
  inst_counts_.assign(program_.size(), 0);
  reset();
}

void Cpu::reset(bool clear_memory) {
  std::fill(regs_.begin(), regs_.end(), 0);
  std::fill(reg_reads_.begin(), reg_reads_.end(), 0);
  std::fill(reg_writes_.begin(), reg_writes_.end(), 0);
  std::fill(inst_counts_.begin(), inst_counts_.end(), 0);
  if (clear_memory) std::fill(memory_.begin(), memory_.end(), 0);
  pc_ = 0;
  cycles_ = 0;
  state_ = RunState::kRunning;
}

std::uint32_t Cpu::reg(std::size_t index) const {
  assert(index < kNumRegisters);
  return regs_[index];
}

void Cpu::set_reg(std::size_t index, std::uint32_t value) {
  assert(index < kNumRegisters);
  regs_[index] = value;
}

std::uint32_t Cpu::mem(std::size_t word) const {
  assert(word < memory_.size());
  return memory_[word];
}

void Cpu::set_mem(std::size_t word, std::uint32_t value) {
  assert(word < memory_.size());
  memory_[word] = value;
}

void Cpu::flip_register_bit(std::size_t reg_index, unsigned bit) {
  assert(reg_index < kNumRegisters && bit < 32);
  regs_[reg_index] ^= (1u << bit);
}

void Cpu::flip_memory_bit(std::size_t word, unsigned bit) {
  assert(word < memory_.size() && bit < 32);
  const std::uint32_t before = memory_[word];
  memory_[word] = before ^ (1u << bit);
  if (write_log_)
    write_log_->push_back({static_cast<std::uint32_t>(word), before, memory_[word]});
}

void Cpu::restore_registers(std::span<const std::uint32_t> regs) {
  assert(regs.size() == kNumRegisters);
  std::copy(regs.begin(), regs.end(), regs_.begin());
}

template <bool Profile>
RunState Cpu::step_impl() {
  if (state_ != RunState::kRunning) return state_;
  if (pc_ >= program_.size()) {
    state_ = RunState::kTrapped;
    return state_;
  }
  const Instruction ins = program_[pc_];
  if constexpr (Profile) ++inst_counts_[pc_];
  ++cycles_;
  std::uint32_t next_pc = pc_ + 1;

  // Architectural effects are identical with profiling on or off; the lambdas
  // only gate the usage tallies. Operand read order (rs1 before rs2) is part
  // of the profile contract and preserved by evaluating explicitly below.
  const auto read_reg = [&](unsigned r) -> std::uint32_t {
    if constexpr (Profile) ++reg_reads_[r];
    return regs_[r];
  };
  const auto write_reg = [&](unsigned r, std::uint32_t v) {
    if constexpr (Profile) ++reg_writes_[r];
    regs_[r] = v;
  };
  auto branch_to = [&](std::int32_t target) {
    if (target < 0 || static_cast<std::size_t>(target) > program_.size()) {
      state_ = RunState::kTrapped;
      return;
    }
    next_pc = static_cast<std::uint32_t>(target);
  };

  switch (ins.op) {
    case Opcode::kNop: break;
    case Opcode::kAdd: write_reg(ins.rd, read_reg(ins.rs1) + read_reg(ins.rs2)); break;
    case Opcode::kSub: write_reg(ins.rd, read_reg(ins.rs1) - read_reg(ins.rs2)); break;
    case Opcode::kMul: write_reg(ins.rd, read_reg(ins.rs1) * read_reg(ins.rs2)); break;
    case Opcode::kAnd: write_reg(ins.rd, read_reg(ins.rs1) & read_reg(ins.rs2)); break;
    case Opcode::kOr: write_reg(ins.rd, read_reg(ins.rs1) | read_reg(ins.rs2)); break;
    case Opcode::kXor: write_reg(ins.rd, read_reg(ins.rs1) ^ read_reg(ins.rs2)); break;
    case Opcode::kShl: write_reg(ins.rd, read_reg(ins.rs1) << (read_reg(ins.rs2) & 31u)); break;
    case Opcode::kShr: write_reg(ins.rd, read_reg(ins.rs1) >> (read_reg(ins.rs2) & 31u)); break;
    case Opcode::kAddi:
      write_reg(ins.rd, read_reg(ins.rs1) + static_cast<std::uint32_t>(ins.imm));
      break;
    case Opcode::kLi: write_reg(ins.rd, static_cast<std::uint32_t>(ins.imm)); break;
    case Opcode::kLd: {
      const std::uint32_t addr = read_reg(ins.rs1) + static_cast<std::uint32_t>(ins.imm);
      if (addr >= memory_.size()) {
        state_ = RunState::kTrapped;
        return state_;
      }
      write_reg(ins.rd, memory_[addr]);
      break;
    }
    case Opcode::kSt: {
      const std::uint32_t addr = read_reg(ins.rs1) + static_cast<std::uint32_t>(ins.imm);
      if (addr >= memory_.size()) {
        state_ = RunState::kTrapped;
        return state_;
      }
      const std::uint32_t value = read_reg(ins.rs2);
      if (write_log_) write_log_->push_back({addr, memory_[addr], value});
      memory_[addr] = value;
      break;
    }
    case Opcode::kBeq:
      if (read_reg(ins.rs1) == read_reg(ins.rs2)) branch_to(ins.imm);
      break;
    case Opcode::kBne:
      if (read_reg(ins.rs1) != read_reg(ins.rs2)) branch_to(ins.imm);
      break;
    case Opcode::kBlt:
      if (static_cast<std::int32_t>(read_reg(ins.rs1)) <
          static_cast<std::int32_t>(read_reg(ins.rs2)))
        branch_to(ins.imm);
      break;
    case Opcode::kJmp: branch_to(ins.imm); break;
    case Opcode::kHalt: state_ = RunState::kHalted; return state_;
  }
  if (state_ == RunState::kRunning) pc_ = next_pc;
  return state_;
}

RunState Cpu::step() { return step_impl<true>(); }

RunState Cpu::step_fast() { return step_impl<false>(); }

RunState Cpu::run(std::uint64_t max_cycles) {
  while (state_ == RunState::kRunning) {
    if (cycles_ >= max_cycles) {
      state_ = RunState::kTimedOut;
      break;
    }
    step_impl<true>();
  }
  return state_;
}

RunState Cpu::run_fast(std::uint64_t max_cycles) {
  while (state_ == RunState::kRunning) {
    if (cycles_ >= max_cycles) {
      state_ = RunState::kTimedOut;
      break;
    }
    step_impl<false>();
  }
  return state_;
}

}  // namespace lore::arch
