#include "src/arch/workloads.hpp"

#include <cassert>
#include <sstream>

namespace lore::arch {
namespace {

Program must_assemble(const std::string& src) {
  std::string err;
  auto prog = assemble(src, &err);
  assert(prog.has_value() && "workload assembly failed");
  return *prog;
}

}  // namespace

Workload make_dot_product(std::size_t n, std::uint64_t seed) {
  assert(n >= 1);
  lore::Rng rng(seed);
  Workload w;
  w.name = "dot_product";
  const std::size_t base_a = 0, base_b = n, out = 2 * n;
  for (std::size_t i = 0; i < n; ++i) {
    w.memory_init.emplace_back(base_a + i, static_cast<std::uint32_t>(rng.uniform_index(1000)));
    w.memory_init.emplace_back(base_b + i, static_cast<std::uint32_t>(rng.uniform_index(1000)));
  }
  w.output_base = out;
  w.output_words = 1;
  std::ostringstream s;
  s << "  li r1, 0\n"                 // index
    << "  li r2, " << n << "\n"       // limit
    << "  li r3, 0\n"                 // acc
    << "loop:\n"
    << "  ld r4, " << base_a << "(r1)\n"
    << "  ld r5, " << base_b << "(r1)\n"
    << "  mul r6, r4, r5\n"
    << "  add r3, r3, r6\n"
    << "  addi r1, r1, 1\n"
    << "  blt r1, r2, loop\n"
    << "  li r7, " << out << "\n"
    << "  st r3, 0(r7)\n"
    << "  halt\n";
  w.program = must_assemble(s.str());
  w.max_cycles = 40 * n + 100;
  return w;
}

Workload make_matmul(std::size_t n, std::uint64_t seed) {
  assert(n >= 1);
  lore::Rng rng(seed);
  Workload w;
  w.name = "matmul";
  const std::size_t base_a = 0, base_b = n * n, base_c = 2 * n * n;
  for (std::size_t i = 0; i < n * n; ++i) {
    w.memory_init.emplace_back(base_a + i, static_cast<std::uint32_t>(rng.uniform_index(50)));
    w.memory_init.emplace_back(base_b + i, static_cast<std::uint32_t>(rng.uniform_index(50)));
  }
  w.output_base = base_c;
  w.output_words = n * n;
  std::ostringstream s;
  // r1=i, r2=j, r3=k, r4=n, r10=acc
  s << "  li r4, " << n << "\n"
    << "  li r1, 0\n"
    << "i_loop:\n"
    << "  li r2, 0\n"
    << "j_loop:\n"
    << "  li r10, 0\n"
    << "  li r3, 0\n"
    << "k_loop:\n"
    << "  mul r5, r1, r4\n"       // i*n
    << "  add r5, r5, r3\n"       // + k
    << "  ld r6, " << base_a << "(r5)\n"
    << "  mul r7, r3, r4\n"       // k*n
    << "  add r7, r7, r2\n"       // + j
    << "  ld r8, " << base_b << "(r7)\n"
    << "  mul r9, r6, r8\n"
    << "  add r10, r10, r9\n"
    << "  addi r3, r3, 1\n"
    << "  blt r3, r4, k_loop\n"
    << "  mul r5, r1, r4\n"
    << "  add r5, r5, r2\n"
    << "  st r10, " << base_c << "(r5)\n"
    << "  addi r2, r2, 1\n"
    << "  blt r2, r4, j_loop\n"
    << "  addi r1, r1, 1\n"
    << "  blt r1, r4, i_loop\n"
    << "  halt\n";
  w.program = must_assemble(s.str());
  w.max_cycles = 60 * n * n * n + 1000;
  return w;
}

Workload make_bubble_sort(std::size_t n, std::uint64_t seed) {
  assert(n >= 2);
  lore::Rng rng(seed);
  Workload w;
  w.name = "bubble_sort";
  for (std::size_t i = 0; i < n; ++i)
    w.memory_init.emplace_back(i, static_cast<std::uint32_t>(rng.uniform_index(100000)));
  w.output_base = 0;
  w.output_words = n;
  std::ostringstream s;
  // r1=i (outer), r2=j (inner), r3=n-1-i bound, r4=n-1
  s << "  li r4, " << n - 1 << "\n"
    << "  li r1, 0\n"
    << "outer:\n"
    << "  li r2, 0\n"
    << "  sub r3, r4, r1\n"
    << "inner:\n"
    << "  ld r5, 0(r2)\n"
    << "  ld r6, 1(r2)\n"
    << "  blt r5, r6, no_swap\n"
    << "  beq r5, r6, no_swap\n"
    << "  st r6, 0(r2)\n"
    << "  st r5, 1(r2)\n"
    << "no_swap:\n"
    << "  addi r2, r2, 1\n"
    << "  blt r2, r3, inner\n"
    << "  addi r1, r1, 1\n"
    << "  blt r1, r4, outer\n"
    << "  halt\n";
  w.program = must_assemble(s.str());
  w.max_cycles = 30 * n * n + 500;
  return w;
}

Workload make_checksum(std::size_t n, std::uint64_t seed) {
  assert(n >= 1);
  lore::Rng rng(seed);
  Workload w;
  w.name = "checksum";
  for (std::size_t i = 0; i < n; ++i)
    w.memory_init.emplace_back(i, static_cast<std::uint32_t>(rng.next_u64()));
  const std::size_t out = n;
  w.output_base = out;
  w.output_words = 1;
  std::ostringstream s;
  // acc = rotl(acc,1) ^ data[i], rotl via shl/shr/or.
  s << "  li r1, 0\n"      // index
    << "  li r2, " << n << "\n"
    << "  li r3, 0\n"      // acc
    << "  li r8, 1\n"
    << "  li r9, 31\n"
    << "loop:\n"
    << "  shl r4, r3, r8\n"
    << "  shr r5, r3, r9\n"
    << "  or r3, r4, r5\n"
    << "  ld r6, 0(r1)\n"
    << "  xor r3, r3, r6\n"
    << "  addi r1, r1, 1\n"
    << "  blt r1, r2, loop\n"
    << "  li r7, " << out << "\n"
    << "  st r3, 0(r7)\n"
    << "  halt\n";
  w.program = must_assemble(s.str());
  w.max_cycles = 30 * n + 100;
  return w;
}

Workload make_fibonacci(std::size_t n) {
  assert(n >= 2);
  Workload w;
  w.name = "fibonacci";
  const std::size_t out = 0;
  w.output_base = out;
  w.output_words = 1;
  std::ostringstream s;
  s << "  li r1, 0\n"   // fib(0)
    << "  li r2, 1\n"   // fib(1)
    << "  li r3, 1\n"   // i: after the loop body runs k times, r2 = fib(1+k)
    << "  li r4, " << n << "\n"
    << "loop:\n"
    << "  add r5, r1, r2\n"
    << "  add r1, r2, r0\n"
    << "  add r2, r5, r0\n"
    << "  addi r3, r3, 1\n"
    << "  blt r3, r4, loop\n"
    << "  li r6, " << out << "\n"
    << "  st r2, 0(r6)\n"
    << "  halt\n";
  w.program = must_assemble(s.str());
  w.max_cycles = 10 * n + 100;
  return w;
}

Workload make_find_max(std::size_t n, std::uint64_t seed) {
  assert(n >= 1);
  lore::Rng rng(seed);
  Workload w;
  w.name = "find_max";
  for (std::size_t i = 0; i < n; ++i)
    w.memory_init.emplace_back(i, static_cast<std::uint32_t>(rng.uniform_index(1u << 30)));
  const std::size_t out = n;
  w.output_base = out;
  w.output_words = 1;
  std::ostringstream s;
  s << "  li r1, 1\n"       // index
    << "  li r2, " << n << "\n"
    << "  ld r3, 0(r0)\n"   // current max = data[0]
    << "loop:\n"
    << "  ld r4, 0(r1)\n"
    << "  blt r4, r3, keep\n"
    << "  add r3, r4, r0\n"
    << "keep:\n"
    << "  addi r1, r1, 1\n"
    << "  blt r1, r2, loop\n"
    << "  li r5, " << out << "\n"
    << "  st r3, 0(r5)\n"
    << "  halt\n";
  w.program = must_assemble(s.str());
  w.max_cycles = 20 * n + 100;
  return w;
}

Workload make_random_program(std::size_t num_instructions, std::uint64_t seed) {
  assert(num_instructions >= 16);
  lore::Rng rng(seed);
  Workload w;
  w.name = "random_program_" + std::to_string(seed % 1000);
  constexpr std::size_t kDataWords = 48;
  constexpr std::size_t kOutWords = 8;
  for (std::size_t i = 0; i < kDataWords; ++i)
    w.memory_init.emplace_back(i, static_cast<std::uint32_t>(rng.next_u64()));
  w.output_base = kDataWords;
  w.output_words = kOutWords;

  Program prog;
  // Seed registers with immediates and loads.
  for (unsigned r = 1; r < kNumRegisters; ++r) {
    if (rng.bernoulli(0.5)) {
      prog.push_back(li(r, static_cast<std::int32_t>(rng.uniform_index(1000))));
    } else {
      prog.push_back(ld(r, 0, static_cast<std::int32_t>(rng.uniform_index(kDataWords))));
    }
  }
  const Opcode alu_ops[] = {Opcode::kAdd, Opcode::kSub, Opcode::kMul, Opcode::kAnd,
                            Opcode::kOr,  Opcode::kXor, Opcode::kShl, Opcode::kShr};
  std::size_t stores_emitted = 0;
  while (prog.size() + 2 < num_instructions) {
    const double dice = rng.uniform();
    auto reg = [&] { return static_cast<unsigned>(1 + rng.uniform_index(kNumRegisters - 1)); };
    if (dice < 0.62) {
      const Opcode op = alu_ops[rng.uniform_index(8)];
      prog.push_back(Instruction{op, static_cast<std::uint8_t>(reg()),
                                 static_cast<std::uint8_t>(reg()),
                                 static_cast<std::uint8_t>(reg()), 0});
    } else if (dice < 0.74) {
      prog.push_back(ld(reg(), 0, static_cast<std::int32_t>(rng.uniform_index(kDataWords))));
    } else if (dice < 0.90) {
      // Store into the output window (r0 stays 0 as the base).
      prog.push_back(st(reg(), 0,
                        static_cast<std::int32_t>(kDataWords + stores_emitted % kOutWords)));
      ++stores_emitted;
    } else {
      // Forward branch skipping 1-3 instructions: always terminates.
      const auto skip = 1 + rng.uniform_index(3);
      const auto target = static_cast<std::int32_t>(prog.size() + 1 + skip);
      if (static_cast<std::size_t>(target) + 2 < num_instructions)
        prog.push_back(blt(reg(), reg(), target));
    }
  }
  // Flush a couple of registers into the output and stop.
  prog.push_back(st(1, 0, static_cast<std::int32_t>(kDataWords)));
  prog.push_back(halt());
  w.program = std::move(prog);
  w.max_cycles = 4 * num_instructions + 100;
  w.memory_words = 256;
  return w;
}

std::vector<Workload> standard_workloads(std::size_t scale, std::uint64_t seed) {
  lore::Rng rng(seed);
  std::vector<Workload> out;
  out.push_back(make_dot_product(8 * scale, rng.next_u64()));
  out.push_back(make_matmul(2 + scale, rng.next_u64()));
  out.push_back(make_bubble_sort(6 * scale, rng.next_u64()));
  out.push_back(make_checksum(10 * scale, rng.next_u64()));
  out.push_back(make_fibonacci(10 * scale));
  out.push_back(make_find_max(12 * scale, rng.next_u64()));
  return out;
}

}  // namespace lore::arch
