// A compact RISC-style ISA and assembler. This is the architectural
// substrate for Sec. III of the paper: fault-injection campaigns run real
// programs on this machine, and the ML experiments (E5-E8) predict
// per-register / per-instruction vulnerability from its execution.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace lore::arch {

inline constexpr std::size_t kNumRegisters = 16;

enum class Opcode : std::uint8_t {
  kNop,
  kAdd, kSub, kMul, kAnd, kOr, kXor, kShl, kShr,  // rd = rs1 op rs2
  kAddi, kLi,                                      // immediates
  kLd, kSt,                                        // rd = mem[rs1+imm] / mem[rs1+imm] = rs2
  kBeq, kBne, kBlt,                                // branch to imm when rs1 ? rs2
  kJmp,                                            // pc = imm
  kHalt,
};

/// One instruction. Fields unused by an opcode are zero.
struct Instruction {
  Opcode op = Opcode::kNop;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::int32_t imm = 0;
};

using Program = std::vector<Instruction>;

/// Instruction factories (the programmatic assembler).
Instruction nop();
Instruction add(unsigned rd, unsigned rs1, unsigned rs2);
Instruction sub(unsigned rd, unsigned rs1, unsigned rs2);
Instruction mul(unsigned rd, unsigned rs1, unsigned rs2);
Instruction and_(unsigned rd, unsigned rs1, unsigned rs2);
Instruction or_(unsigned rd, unsigned rs1, unsigned rs2);
Instruction xor_(unsigned rd, unsigned rs1, unsigned rs2);
Instruction shl(unsigned rd, unsigned rs1, unsigned rs2);
Instruction shr(unsigned rd, unsigned rs1, unsigned rs2);
Instruction addi(unsigned rd, unsigned rs1, std::int32_t imm);
Instruction li(unsigned rd, std::int32_t imm);
Instruction ld(unsigned rd, unsigned rs1, std::int32_t offset);
Instruction st(unsigned rs2, unsigned rs1, std::int32_t offset);
Instruction beq(unsigned rs1, unsigned rs2, std::int32_t target);
Instruction bne(unsigned rs1, unsigned rs2, std::int32_t target);
Instruction blt(unsigned rs1, unsigned rs2, std::int32_t target);
Instruction jmp(std::int32_t target);
Instruction halt();

/// True for opcodes that write a destination register.
bool writes_register(Opcode op);
/// True for control-flow opcodes.
bool is_branch(Opcode op);
/// True for loads/stores.
bool is_memory(Opcode op);
/// Source registers actually read by the instruction (0, 1, or 2 entries).
std::vector<unsigned> source_registers(const Instruction& ins);
std::string opcode_name(Opcode op);
std::string to_string(const Instruction& ins);

/// Text assembler: one instruction per line, `; comments`, labels as
/// `name:` and branch targets by label. Returns nullopt + error message via
/// `error` on malformed input.
std::optional<Program> assemble(const std::string& source, std::string* error = nullptr);

}  // namespace lore::arch
