#include "src/arch/avf_report.hpp"

#include <cassert>
#include <map>

#include "src/common/table.hpp"

namespace lore::arch {
namespace {

void account(StructureAvf& row, const FaultRecord& record) {
  ++row.injections;
  switch (record.outcome) {
    case Outcome::kBenign: ++row.mix.benign; break;
    case Outcome::kSdc: ++row.mix.sdc; break;
    case Outcome::kCrash: ++row.mix.crash; break;
    case Outcome::kHang: ++row.mix.hang; break;
    case Outcome::kDetected: ++row.mix.detected; break;
  }
}

std::vector<StructureAvf> finalize(std::map<std::string, StructureAvf>&& rows) {
  std::vector<StructureAvf> out;
  out.reserve(rows.size());
  for (auto& [name, row] : rows) {
    row.structure = name;
    row.avf = row.mix.fraction_failure();
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace

std::vector<StructureAvf> avf_by_register(const std::vector<FaultRecord>& campaign) {
  std::map<std::string, StructureAvf> rows;
  for (const auto& record : campaign) {
    assert(record.site.target == FaultTarget::kRegister);
    account(rows["r" + std::to_string(record.site.index)], record);
  }
  return finalize(std::move(rows));
}

std::vector<StructureAvf> avf_by_instruction_class(const Program& p,
                                                   const std::vector<FaultRecord>& campaign) {
  auto classify = [&](std::size_t index) -> std::string {
    if (index >= p.size()) return "other";
    const Opcode op = p[index].op;
    if (is_memory(op)) return "memory";
    if (is_branch(op)) return "branch";
    if (op == Opcode::kLi || op == Opcode::kAddi) return "immediate";
    if (writes_register(op)) return "alu";
    return "other";
  };
  std::map<std::string, StructureAvf> rows;
  for (const auto& record : campaign) {
    assert(record.site.target == FaultTarget::kInstruction);
    account(rows[classify(record.site.index)], record);
  }
  return finalize(std::move(rows));
}

std::vector<StructureAvf> avf_by_bit_range(const std::vector<FaultRecord>& campaign) {
  auto classify = [](unsigned bit) -> std::string {
    if (bit < 8) return "bits[0:7]";
    if (bit < 24) return "bits[8:23]";
    return "bits[24:31]";
  };
  std::map<std::string, StructureAvf> rows;
  for (const auto& record : campaign) {
    assert(record.site.target == FaultTarget::kRegister);
    account(rows[classify(record.site.bit)], record);
  }
  return finalize(std::move(rows));
}

std::string render_avf_report(const std::vector<StructureAvf>& rows) {
  lore::Table t({"structure", "injections", "benign", "sdc", "crash", "hang", "avf"});
  for (const auto& r : rows) {
    t.add_row({r.structure, std::to_string(r.injections), std::to_string(r.mix.benign),
               std::to_string(r.mix.sdc), std::to_string(r.mix.crash),
               std::to_string(r.mix.hang), lore::fmt_sig(r.avf, 3)});
  }
  return t.to_string();
}

}  // namespace lore::arch
