#include "src/arch/pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdio>

#include "src/arch/fault.hpp"
#include "src/common/kernels.hpp"
#include "src/common/parallel.hpp"
#include "src/obs/obs.hpp"

namespace lore::arch {

PipelineCpu::PipelineCpu(std::size_t memory_words)
    : regs_(kNumRegisters, 0), memory_(memory_words, 0) {}

void PipelineCpu::load_program(Program program) {
  program_ = std::move(program);
  reset();
}

void PipelineCpu::reset(bool clear_memory) {
  std::fill(regs_.begin(), regs_.end(), 0);
  if (clear_memory) std::fill(memory_.begin(), memory_.end(), 0);
  pc_ = 0;
  cycles_ = 0;
  retired_ = 0;
  stalls_ = 0;
  flushes_ = 0;
  state_ = RunState::kRunning;
  halt_seen_ = false;
  if_id_ = {};
  id_ex_ = {};
  ex_mem_ = {};
  mem_wb_ = {};
}

std::uint32_t PipelineCpu::reg(std::size_t index) const {
  assert(index < kNumRegisters);
  return regs_[index];
}

std::uint32_t PipelineCpu::mem(std::size_t word) const {
  assert(word < memory_.size());
  return memory_[word];
}

void PipelineCpu::set_mem(std::size_t word, std::uint32_t value) {
  assert(word < memory_.size());
  memory_[word] = value;
}

PipelineCpu::Snapshot PipelineCpu::capture() const {
  Snapshot snap;
  snap.cycles = cycles_;
  snap.pc = pc_;
  snap.retired = retired_;
  snap.stalls = stalls_;
  snap.flushes = flushes_;
  snap.state = state_;
  snap.halt_seen = halt_seen_;
  snap.if_id = if_id_;
  snap.id_ex = id_ex_;
  snap.ex_mem = ex_mem_;
  snap.mem_wb = mem_wb_;
  std::copy(regs_.begin(), regs_.end(), snap.regs.begin());
  return snap;
}

void PipelineCpu::restore(const Snapshot& snap) {
  cycles_ = snap.cycles;
  pc_ = snap.pc;
  retired_ = snap.retired;
  stalls_ = snap.stalls;
  flushes_ = snap.flushes;
  state_ = snap.state;
  halt_seen_ = snap.halt_seen;
  if_id_ = snap.if_id;
  id_ex_ = snap.id_ex;
  ex_mem_ = snap.ex_mem;
  mem_wb_ = snap.mem_wb;
  std::copy(snap.regs.begin(), snap.regs.end(), regs_.begin());
}

RunState PipelineCpu::step() {
  if (state_ != RunState::kRunning) return state_;
  ++cycles_;

  // ---- WB: retire the oldest instruction.
  if (mem_wb_.valid) {
    if (writes_register(mem_wb_.ins.op)) regs_[mem_wb_.ins.rd] = mem_wb_.value;
    ++retired_;
    if (mem_wb_.ins.op == Opcode::kHalt) {
      state_ = RunState::kHalted;
      return state_;
    }
  }

  // ---- MEM: memory access on the EX/MEM latch.
  MemWb new_wb{};
  if (ex_mem_.valid) {
    new_wb.valid = true;
    new_wb.ins = ex_mem_.ins;
    switch (ex_mem_.ins.op) {
      case Opcode::kLd:
        if (ex_mem_.alu >= memory_.size()) {
          state_ = RunState::kTrapped;
          return state_;
        }
        new_wb.value = memory_[ex_mem_.alu];
        break;
      case Opcode::kSt:
        if (ex_mem_.alu >= memory_.size()) {
          state_ = RunState::kTrapped;
          return state_;
        }
        if (write_log_)
          write_log_->push_back({ex_mem_.alu, memory_[ex_mem_.alu], ex_mem_.store_val});
        memory_[ex_mem_.alu] = ex_mem_.store_val;
        break;
      default:
        new_wb.value = ex_mem_.alu;
        break;
    }
  }

  // ---- EX: compute on the ID/EX latch; resolve branches.
  ExMem new_mem{};
  bool redirect = false;
  std::uint32_t redirect_pc = 0;
  if (id_ex_.valid) {
    new_mem.valid = true;
    new_mem.ins = id_ex_.ins;
    new_mem.store_val = id_ex_.store_val;
    const Instruction& ins = id_ex_.ins;
    const std::uint32_t a = id_ex_.a, b = id_ex_.b;
    auto branch_to = [&](std::int32_t target) {
      if (target < 0 || static_cast<std::size_t>(target) > program_.size()) {
        state_ = RunState::kTrapped;
        return false;
      }
      redirect = true;
      redirect_pc = static_cast<std::uint32_t>(target);
      return true;
    };
    switch (ins.op) {
      case Opcode::kAdd: new_mem.alu = a + b; break;
      case Opcode::kSub: new_mem.alu = a - b; break;
      case Opcode::kMul: new_mem.alu = a * b; break;
      case Opcode::kAnd: new_mem.alu = a & b; break;
      case Opcode::kOr: new_mem.alu = a | b; break;
      case Opcode::kXor: new_mem.alu = a ^ b; break;
      case Opcode::kShl: new_mem.alu = a << (b & 31u); break;
      case Opcode::kShr: new_mem.alu = a >> (b & 31u); break;
      case Opcode::kAddi: new_mem.alu = a + static_cast<std::uint32_t>(ins.imm); break;
      case Opcode::kLi: new_mem.alu = static_cast<std::uint32_t>(ins.imm); break;
      case Opcode::kLd:
      case Opcode::kSt: new_mem.alu = a + static_cast<std::uint32_t>(ins.imm); break;
      case Opcode::kBeq:
        if (a == b && !branch_to(ins.imm)) return state_;
        break;
      case Opcode::kBne:
        if (a != b && !branch_to(ins.imm)) return state_;
        break;
      case Opcode::kBlt:
        if (static_cast<std::int32_t>(a) < static_cast<std::int32_t>(b) &&
            !branch_to(ins.imm))
          return state_;
        break;
      case Opcode::kJmp:
        if (!branch_to(ins.imm)) return state_;
        break;
      case Opcode::kNop:
      case Opcode::kHalt: break;
    }
  }

  // ---- ID: decode + forwarded operand read; load-use hazard detection.
  // Forwarding reads the values computed THIS cycle: new_mem carries the
  // instruction that just finished EX (1 ahead), new_wb the one that just
  // finished MEM (2 ahead, including load data); 3-ahead writers already
  // retired into the register file at the top of this function.
  auto read_forwarded = [&](unsigned r) -> std::uint32_t {
    if (new_mem.valid && writes_register(new_mem.ins.op) &&
        new_mem.ins.op != Opcode::kLd && new_mem.ins.rd == r)
      return new_mem.alu;
    if (new_wb.valid && writes_register(new_wb.ins.op) && new_wb.ins.rd == r)
      return new_wb.value;
    return regs_[r];
  };
  bool stall = false;
  IdEx new_ex{};
  if (if_id_.valid) {
    const Instruction& ins = if_id_.ins;
    const auto sources = source_registers(ins);
    // Load-use hazard: a load one ahead (its EX ran this cycle) has no data
    // until its MEM completes next cycle — the consumer stalls once, after
    // which new_wb forwarding serves the value.
    if (new_mem.valid && new_mem.ins.op == Opcode::kLd) {
      for (unsigned r : sources)
        if (new_mem.ins.rd == r) stall = true;
    }
    if (!stall) {
      new_ex.valid = true;
      new_ex.ins = ins;
      // Operand assignment mirrors the functional CPU's field usage.
      new_ex.a = sources.empty() ? 0 : read_forwarded(ins.rs1);
      switch (ins.op) {
        case Opcode::kAdd: case Opcode::kSub: case Opcode::kMul: case Opcode::kAnd:
        case Opcode::kOr: case Opcode::kXor: case Opcode::kShl: case Opcode::kShr:
        case Opcode::kBeq: case Opcode::kBne: case Opcode::kBlt:
          new_ex.b = read_forwarded(ins.rs2);
          break;
        default:
          new_ex.b = 0;
          break;
      }
      if (ins.op == Opcode::kSt) new_ex.store_val = read_forwarded(ins.rs2);
    }
  }

  // ---- IF: fetch (unless stalled / redirected).
  IfId new_id{};
  if (!stall && !halt_seen_ && pc_ < program_.size()) {
    new_id.valid = true;
    new_id.ins = program_[pc_];
    ++pc_;
    if (new_id.ins.op == Opcode::kHalt) halt_seen_ = true;
  }

  // ---- Latch update with control hazards.
  if (redirect) {
    // EX resolved a taken branch: everything younger (ID result + fetch) is
    // wrong-path.
    new_ex = IdEx{};
    new_id = IfId{};
    pc_ = redirect_pc;
    halt_seen_ = false;  // wrong-path halt no longer in flight
    flushes_ += 2;
  } else if (stall) {
    new_id = if_id_;  // hold the stalled instruction
    ++stalls_;
  }
  mem_wb_ = new_wb;
  ex_mem_ = new_mem;
  id_ex_ = new_ex;
  if_id_ = new_id;

  // Drained with nothing left to fetch and no halt retired: fell off the end.
  if (!mem_wb_.valid && !ex_mem_.valid && !id_ex_.valid && !if_id_.valid &&
      (halt_seen_ ? false : pc_ >= program_.size()))
    state_ = RunState::kTrapped;
  return state_;
}

RunState PipelineCpu::run(std::uint64_t max_cycles) {
  while (state_ == RunState::kRunning) {
    if (cycles_ >= max_cycles) {
      state_ = RunState::kTimedOut;
      break;
    }
    step();
  }
  return state_;
}

void PipelineCpu::apply_fault(const PipelineFaultSite& site) {
  switch (site.field) {
    case LatchField::kPc:
      // Keep the PC in (or just past) the program so fetch semantics stay
      // defined; out-of-range fetch simply drains to a trap.
      pc_ ^= (1u << (site.bit % 8));
      break;
    case LatchField::kIfIdInstr:
      if (if_id_.valid) corrupt_instruction_field(if_id_.ins, site.bit);
      break;
    case LatchField::kIdExOperandA:
      if (id_ex_.valid) id_ex_.a ^= (1u << (site.bit % 32));
      break;
    case LatchField::kIdExOperandB:
      if (id_ex_.valid) id_ex_.b ^= (1u << (site.bit % 32));
      break;
    case LatchField::kExMemAlu:
      if (ex_mem_.valid) ex_mem_.alu ^= (1u << (site.bit % 32));
      break;
    case LatchField::kMemWbValue:
      if (mem_wb_.valid) mem_wb_.value ^= (1u << (site.bit % 32));
      break;
  }
}

RunState PipelineCpu::run_with_fault(std::uint64_t max_cycles,
                                     const PipelineFaultSite& site) {
  while (state_ == RunState::kRunning) {
    if (cycles_ >= max_cycles) {
      state_ = RunState::kTimedOut;
      break;
    }
    if (cycles_ == site.cycle) apply_fault(site);
    step();
  }
  return state_;
}

bool pipeline_matches_golden(const Workload& w) {
  const auto golden = run_golden(w);
  PipelineCpu cpu(w.memory_words);
  cpu.load_program(w.program);
  for (const auto& [addr, value] : w.memory_init) cpu.set_mem(addr, value);
  if (cpu.run(4 * w.max_cycles + 64) != RunState::kHalted) return false;
  for (std::size_t i = 0; i < w.output_words; ++i)
    if (cpu.mem(w.output_base + i) != golden.output[i]) return false;
  return true;
}

Outcome pipeline_inject(const Workload& w, const PipelineFaultSite& site) {
  const auto golden = run_golden(w);
  PipelineCpu cpu(w.memory_words);
  cpu.load_program(w.program);
  for (const auto& [addr, value] : w.memory_init) cpu.set_mem(addr, value);
  const auto state = cpu.run_with_fault(4 * w.max_cycles + 64, site);
  if (state == RunState::kTrapped) return Outcome::kCrash;
  if (state == RunState::kTimedOut) return Outcome::kHang;
  for (std::size_t i = 0; i < w.output_words; ++i)
    if (cpu.mem(w.output_base + i) != golden.output[i]) return Outcome::kSdc;
  return Outcome::kBenign;
}

namespace {

/// Same wire format as the FaultInjector campaign records (field-wise, layout
/// independent).
struct PipelineRecordCodec {
  static void encode(lore::ByteWriter& w, const FaultRecord& r) {
    w.put_u8(static_cast<std::uint8_t>(r.site.target));
    w.put_u64(r.site.index);
    w.put_u32(r.site.bit);
    w.put_u64(r.site.cycle);
    w.put_u8(static_cast<std::uint8_t>(r.outcome));
    w.put_u64(static_cast<std::uint64_t>(r.active_instruction));
    w.put_u64(r.trial_seed);
  }
  static FaultRecord decode(lore::ByteReader& r) {
    FaultRecord rec;
    rec.site.target = static_cast<FaultTarget>(r.get_u8());
    rec.site.index = static_cast<std::size_t>(r.get_u64());
    rec.site.bit = r.get_u32();
    rec.site.cycle = r.get_u64();
    rec.outcome = static_cast<Outcome>(r.get_u8());
    rec.active_instruction = static_cast<std::int64_t>(r.get_u64());
    rec.trial_seed = r.get_u64();
    return rec;
  }
};

}  // namespace

// Batched pipeline trial hot path — the same snapshot + store-undo-log
// scheme as the functional FaultInjector (see fault.cpp): one instrumented
// clean pipeline run records periodic `PipelineCpu::Snapshot`s and the
// ordered store log; each trial restores the nearest snapshot onto a
// thread-local scratch machine, runs `run_with_fault` from there, classifies
// against the (hoisted) golden output, and unwinds the stores. The reference
// `pipeline_inject` re-runs the functional golden AND a cold pipeline per
// trial — the batched path pays both exactly once per campaign.

namespace {

/// ~1024 snapshots over the clean pipeline run plus the ordered store log.
struct PipeTrace {
  struct Snap {
    PipelineCpu::Snapshot state;
    std::size_t write_count = 0;
  };
  std::vector<Snap> snaps;
  std::vector<MemWrite> writes;
  std::uint64_t stride = 1;
};

std::atomic<std::uint64_t> g_pipe_context_serial{0};

PipeTrace build_pipeline_trace(const Workload& w, std::uint64_t budget,
                               std::uint64_t total_cycles) {
  PipeTrace trace;
  trace.stride = std::max<std::uint64_t>(1, (total_cycles + 1023) / 1024);
  PipelineCpu cpu(w.memory_words);
  cpu.load_program(w.program);
  for (const auto& [addr, value] : w.memory_init) cpu.set_mem(addr, value);
  cpu.set_write_log(&trace.writes);
  std::uint64_t next_snap = 0;
  while (cpu.state() == RunState::kRunning && cpu.cycles() <= budget) {
    if (cpu.cycles() == next_snap) {
      trace.snaps.push_back({cpu.capture(), trace.writes.size()});
      next_snap += trace.stride;
    }
    cpu.step();
  }
  cpu.set_write_log(nullptr);
  return trace;
}

struct PipeBatchContext {
  const Workload& workload;
  const GoldenRun& golden;
  std::uint64_t budget;
  PipeTrace trace;
  std::uint64_t id = ++g_pipe_context_serial;
};

/// Per-thread scratch machine holding the workload baseline between trials.
struct PipeScratch {
  std::uint64_t ctx_id = 0;
  PipelineCpu cpu{1};
  std::vector<MemWrite> undo;
};

PipeScratch& pipe_scratch_for(const PipeBatchContext& ctx) {
  thread_local PipeScratch scratch;
  if (scratch.ctx_id != ctx.id) {
    scratch.cpu = PipelineCpu(ctx.workload.memory_words);
    scratch.cpu.load_program(ctx.workload.program);
    for (const auto& [addr, value] : ctx.workload.memory_init)
      scratch.cpu.set_mem(addr, value);
    scratch.undo.clear();
    scratch.undo.reserve(256);
    scratch.ctx_id = ctx.id;
  }
  return scratch;
}

Outcome pipeline_inject_batched(const PipeBatchContext& ctx, PipeScratch& scratch,
                                const PipelineFaultSite& site) {
  PipelineCpu& cpu = scratch.cpu;
  auto& undo = scratch.undo;
  undo.clear();

  const std::size_t snap_index = std::min<std::size_t>(
      static_cast<std::size_t>(site.cycle / ctx.trace.stride), ctx.trace.snaps.size() - 1);
  const PipeTrace::Snap& snap = ctx.trace.snaps[snap_index];

  // Baseline memory -> snapshot memory via the clean-run store prefix;
  // applies are undo-logged manually, later stores through the write log.
  for (std::size_t k = 0; k < snap.write_count; ++k) {
    const MemWrite& w = ctx.trace.writes[k];
    undo.push_back({w.addr, cpu.mem(w.addr), w.after});
    cpu.set_mem(w.addr, w.after);
  }
  cpu.restore(snap.state);
  cpu.set_write_log(&undo);

  // run_with_fault applies the site at `cycles_ == site.cycle` at loop top —
  // restoring any earlier loop-top state reproduces the reference trajectory.
  const auto state = cpu.run_with_fault(ctx.budget, site);

  Outcome outcome;
  if (state == RunState::kTrapped) {
    outcome = Outcome::kCrash;
  } else if (state == RunState::kTimedOut) {
    outcome = Outcome::kHang;
  } else {
    const auto mismatches = lore::kernels::count_mismatch_u32(
        cpu.memory().subspan(ctx.workload.output_base, ctx.workload.output_words),
        std::span<const std::uint32_t>(ctx.golden.output));
    outcome = mismatches ? Outcome::kSdc : Outcome::kBenign;
  }

  cpu.set_write_log(nullptr);
  for (auto it = undo.rbegin(); it != undo.rend(); ++it) cpu.set_mem(it->addr, it->before);
  return outcome;
}

/// Clean pipeline run: the cycle budget injection times are drawn from.
std::uint64_t pipeline_probe_cycles(const Workload& w) {
  PipelineCpu probe(w.memory_words);
  probe.load_program(w.program);
  for (const auto& [addr, value] : w.memory_init) probe.set_mem(addr, value);
  probe.run(4 * w.max_cycles + 64);
  return probe.cycles();
}

constexpr LatchField kCampaignFields[] = {
    LatchField::kPc,           LatchField::kIfIdInstr,  LatchField::kIdExOperandA,
    LatchField::kIdExOperandB, LatchField::kExMemAlu,   LatchField::kMemWbValue};

/// The campaign's site distribution — shared verbatim by the single-process
/// engine and the fabric shard entry point, so both draw the identical site
/// from a trial's stream.
PipelineFaultSite draw_pipeline_site(lore::Rng& rng, std::uint64_t total_cycles) {
  PipelineFaultSite site;
  site.field = kCampaignFields[rng.uniform_index(6)];
  site.bit = static_cast<unsigned>(rng.uniform_index(32));
  site.cycle = rng.uniform_index(total_cycles) + 1;
  return site;
}

FaultRecord make_pipeline_record(const PipelineFaultSite& site, Outcome outcome,
                                 std::uint64_t seed) {
  FaultRecord rec;
  rec.site.target = FaultTarget::kRegister;  // closest legacy category
  rec.site.index = static_cast<std::size_t>(site.field);
  rec.site.bit = site.bit;
  rec.site.cycle = site.cycle;
  rec.outcome = outcome;
  rec.trial_seed = seed;
  return rec;
}

lore::CampaignSpec pipeline_spec_with_domain(const Workload& w,
                                             const lore::CampaignSpec& spec,
                                             std::uint64_t total_cycles) {
  if (!spec.domain.empty()) return spec;
  lore::CampaignSpec s = spec;
  char buf[64];
  std::snprintf(buf, sizeof buf, "arch.pipeline/%zu-%llu", w.program.size(),
                static_cast<unsigned long long>(total_cycles));
  s.domain = buf;
  return s;
}

}  // namespace

CampaignSpec pipeline_campaign_spec(const Workload& w, const CampaignSpec& spec) {
  return pipeline_spec_with_domain(w, spec, pipeline_probe_cycles(w));
}

CampaignCheckpoint pipeline_campaign_shard(const Workload& w, const CampaignSpec& spec,
                                           lore::TrialRange range) {
  LORE_OBS_SPAN(span, "campaign.pipeline_shard");
  const std::uint64_t total_cycles = pipeline_probe_cycles(w);
  const lore::CampaignSpec s = pipeline_spec_with_domain(w, spec, total_cycles);
  const std::uint64_t budget = 4 * w.max_cycles + 64;
  if (lore::campaign_batch_enabled()) {
    const GoldenRun golden = run_golden(w);
    const PipeBatchContext ctx{w, golden, budget,
                               build_pipeline_trace(w, budget, total_cycles)};
    return lore::run_campaign_shard<FaultRecord, PipelineRecordCodec>(
        s, range, [&](std::size_t t, lore::Rng& rng, const lore::CancelToken&) {
          const PipelineFaultSite site = draw_pipeline_site(rng, total_cycles);
          return make_pipeline_record(
              site, pipeline_inject_batched(ctx, pipe_scratch_for(ctx), site),
              lore::trial_seed(s.base_seed, t));
        });
  }
  return lore::run_campaign_shard<FaultRecord, PipelineRecordCodec>(
      s, range, [&](std::size_t t, lore::Rng& rng, const lore::CancelToken&) {
        const PipelineFaultSite site = draw_pipeline_site(rng, total_cycles);
        return make_pipeline_record(site, pipeline_inject(w, site),
                                    lore::trial_seed(s.base_seed, t));
      });
}

CampaignResult<FaultRecord> pipeline_records_from_checkpoint(
    const CampaignSpec& spec, const CampaignCheckpoint& ck) {
  return lore::result_from_checkpoint<FaultRecord, PipelineRecordCodec>(spec, ck);
}

CampaignResult<FaultRecord> pipeline_campaign_run(const Workload& w,
                                                  const CampaignSpec& spec) {
  LORE_OBS_SPAN(span, "campaign.pipeline");
  LORE_OBS_TIMER(timer, "campaign.pipeline_us");
  const std::uint64_t total_cycles = pipeline_probe_cycles(w);
  const lore::CampaignSpec s = pipeline_spec_with_domain(w, spec, total_cycles);

  const std::uint64_t budget = 4 * w.max_cycles + 64;
  lore::CampaignResult<FaultRecord> result;
  if (lore::campaign_uses_batch(s)) {
    // Golden output and the instrumented clean-run trace are hoisted out of
    // the trial loop; the reference body recomputes both per trial.
    const GoldenRun golden = run_golden(w);
    const PipeBatchContext ctx{w, golden, budget,
                               build_pipeline_trace(w, budget, total_cycles)};
    result = lore::run_campaign_batched<FaultRecord, PipelineRecordCodec>(
        s, [&](std::size_t t, lore::Rng& rng, const lore::CancelToken&) {
          const PipelineFaultSite site = draw_pipeline_site(rng, total_cycles);
          return make_pipeline_record(
              site, pipeline_inject_batched(ctx, pipe_scratch_for(ctx), site),
              lore::trial_seed(s.base_seed, t));
        });
  } else {
    result = lore::run_campaign<FaultRecord, PipelineRecordCodec>(
        s, [&](std::size_t t, lore::Rng& rng, const lore::CancelToken& cancel) {
          cancel.throw_if_cancelled();
          const PipelineFaultSite site = draw_pipeline_site(rng, total_cycles);
          return make_pipeline_record(site, pipeline_inject(w, site),
                                      lore::trial_seed(s.base_seed, t));
        });
  }
  if (result.report.complete()) {
    count_campaign_outcomes("campaign.pipeline", result.records);
  } else {
    std::vector<FaultRecord> ok;
    ok.reserve(result.report.completed);
    for (std::size_t i = 0; i < result.records.size(); ++i)
      if (result.status[i] == lore::TrialStatus::kOk) ok.push_back(result.records[i]);
    count_campaign_outcomes("campaign.pipeline", ok);
  }
  return result;
}

std::vector<FaultRecord> pipeline_campaign(const Workload& w, const CampaignSpec& spec) {
  return pipeline_campaign_run(w, spec).records;
}

std::vector<FaultRecord> pipeline_campaign(const Workload& w, std::size_t trials,
                                           std::uint64_t base_seed, unsigned threads) {
  CampaignSpec spec;
  spec.trials = trials;
  spec.base_seed = base_seed;
  spec.threads = threads;
  return pipeline_campaign(w, spec);
}

double architectural_corruption_factor(const std::vector<FaultRecord>& campaign) {
  if (campaign.empty()) return 0.0;
  std::size_t corrupting = 0;
  for (const auto& r : campaign) corrupting += r.outcome != Outcome::kBenign;
  return static_cast<double>(corrupting) / static_cast<double>(campaign.size());
}

}  // namespace lore::arch
