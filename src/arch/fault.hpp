// Fault injection and outcome classification (Sec. III). A campaign runs a
// workload once to obtain the golden result, then re-runs it many times, each
// time flipping one bit of architectural state (register file, memory, or an
// instruction encoding) at a random cycle, and classifies the outcome as
// benign / SDC / crash / hang — the four categories of [24].
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/arch/cpu.hpp"
#include "src/arch/workloads.hpp"
#include "src/common/campaign.hpp"
#include "src/common/rng.hpp"

namespace lore::ml {
class Predictor;
}  // namespace lore::ml

namespace lore::arch {

enum class FaultTarget : std::uint8_t { kRegister, kMemory, kInstruction };

struct FaultSite {
  FaultTarget target = FaultTarget::kRegister;
  std::size_t index = 0;   // register id / memory word / instruction index
  unsigned bit = 0;        // bit position (register & memory: 0-31)
  std::uint64_t cycle = 0; // injection time

  friend bool operator==(const FaultSite&, const FaultSite&) = default;
};

enum class Outcome : std::uint8_t { kBenign, kSdc, kCrash, kHang, kDetected };

std::string outcome_name(Outcome o);

/// Corrupt one bit of a packed instruction encoding
/// (op:5 | rd:4 | rs1:4 | rs2:4 | imm:15), keeping fields in range. Shared by
/// the functional and pipeline fault injectors.
void corrupt_instruction_field(Instruction& ins, unsigned bit);

struct FaultRecord {
  FaultSite site;
  Outcome outcome = Outcome::kBenign;
  /// Static instruction executing at injection time (for per-instruction
  /// attribution; -1 if the program already finished).
  std::int64_t active_instruction = -1;
  /// Per-trial RNG seed the site was drawn from (0 for hand-built sites).
  /// `FaultInjector::replay_trial(seed, target)` regenerates this exact
  /// trial in isolation — see DESIGN.md, "Replaying a single campaign trial".
  std::uint64_t trial_seed = 0;

  friend bool operator==(const FaultRecord&, const FaultRecord&) = default;
};

struct GoldenRun {
  std::vector<std::uint32_t> output;
  std::uint64_t cycles = 0;
};

/// Run the workload cleanly and capture the reference output.
GoldenRun run_golden(const Workload& w);

/// Knobs for `FaultInjector::campaign_run_pruned`.
struct PruneCampaignOptions {
  /// Fraction of predicted-benign trials executed anyway as audits
  /// (< 0 = LORE_PRUNE_AUDIT environment variable, default 0.05;
  /// 1.0 = audit everything, outcomes bit-identical to `campaign_run`).
  double audit_fraction = -1.0;
  /// P(benign) at or above which a trial is pruned
  /// (< 0 = the predictor config's benign_threshold).
  double benign_threshold = -1.0;
  /// Feed every Nth executed non-audit trial back into the predictor as a
  /// training observation (0 = audits only). Audited trials always feed
  /// back.
  std::size_t feedback_stride = 8;
  /// Optional shared breaker: trips when the audit-measured false-benign
  /// rate crosses its alert threshold, disabling pruning for later chunks.
  PruneController* controller = nullptr;
};

class FaultInjector {
 public:
  explicit FaultInjector(const Workload& workload);

  const GoldenRun& golden() const { return golden_; }

  /// Run with a single bit flip at the given site; classify the outcome.
  FaultRecord inject(const FaultSite& site) const;

  /// Random site over live state: register bits and touched memory words,
  /// uniformly in time over the golden cycle count.
  FaultSite random_site(lore::Rng& rng, FaultTarget target) const;

  /// Spec-driven campaign over the given target kind on the resilient
  /// runtime: checkpoint/resume, per-trial deadlines with retry, partial
  /// reports (see src/common/campaign.hpp). Per-trial counter-based seeding
  /// makes the records bit-identical for every thread count — and across
  /// interrupt/resume — and each record carries the seed that replays it.
  /// `spec.domain` is filled with a workload fingerprint when empty, so a
  /// checkpoint can never be resumed against a different workload.
  CampaignResult<FaultRecord> campaign_run(const CampaignSpec& spec,
                                           FaultTarget target) const;

  /// Convenience: records of `campaign_run` (the common complete-run case).
  std::vector<FaultRecord> campaign(const CampaignSpec& spec, FaultTarget target) const;

  /// `campaign_run` with the online predict-and-prune stage (DESIGN.md §13):
  /// each chunk's fault sites are regenerated from the trial seeds,
  /// featurized (FaultSiteFeaturizer), and scored against the predictor's
  /// current snapshot; predicted-benign trials are skipped as
  /// `TrialStatus::kPruned` except for the seeded audit fraction. Executed
  /// trials feed back into the predictor, so the model improves while the
  /// campaign runs. Falls back to the full (never-pruning) engine when the
  /// batched fast path is off or the spec is not plain.
  CampaignResult<FaultRecord> campaign_run_pruned(const CampaignSpec& spec,
                                                  FaultTarget target,
                                                  ml::Predictor& predictor,
                                                  const PruneCampaignOptions& opt = {}) const;

  /// Copy of `spec` with the workload-fingerprint domain filled in when
  /// empty — the exact identity `campaign_run` executes under, which the
  /// fabric coordinator validates incoming shard payloads against.
  CampaignSpec resolved_spec(const CampaignSpec& spec, FaultTarget target) const;

  /// Fabric worker entry point: run trials [range.begin, range.end) of the
  /// campaign — identical per-trial seeding and trial bodies to
  /// `campaign_run`, batched hot path included — and return them as a
  /// LORECKP1-ready checkpoint payload (DESIGN.md §12).
  CampaignCheckpoint campaign_shard(const CampaignSpec& spec, TrialRange range,
                                    FaultTarget target) const;

  /// Decode a merged fabric checkpoint (or any resume checkpoint of this
  /// campaign kind) into records, using the same wire codec `campaign_run`
  /// checkpoints with.
  static CampaignResult<FaultRecord> records_from_checkpoint(
      const CampaignSpec& spec, const CampaignCheckpoint& ck);

  /// Positional convenience over the spec entry point (no checkpointing).
  std::vector<FaultRecord> campaign(std::size_t trials, FaultTarget target,
                                    std::uint64_t base_seed, unsigned threads = 0) const;

  /// Re-run one campaign trial from its recorded `FaultRecord::trial_seed`.
  FaultRecord replay_trial(std::uint64_t seed, FaultTarget target) const;

 private:
  // Batched campaign hot path (see fault.cpp): one instrumented golden
  // replay per campaign yields periodic snapshots + an ordered store log;
  // each trial then restores the nearest snapshot onto a thread-local
  // scratch Cpu instead of re-running the golden prefix from scratch.
  // Bit-identical to `inject()` — enforced by the `simd`-labelled
  // differential tests.
  struct TraceSnap;
  struct GoldenTrace;
  struct BatchContext;
  struct BatchScratch;
  GoldenTrace build_golden_trace() const;
  static BatchScratch& scratch_for(const BatchContext& ctx);
  FaultRecord inject_batched(const BatchContext& ctx, BatchScratch& scratch,
                             const FaultSite& site) const;

  void prepare_cpu(Cpu& cpu) const;

  const Workload& workload_;
  GoldenRun golden_;
};

/// Architectural vulnerability factor: fraction of injections whose outcome
/// is a failure (SDC, crash, or hang).
double avf(const std::vector<FaultRecord>& records);

/// Per-structure outcome mix.
struct OutcomeMix {
  std::size_t benign = 0, sdc = 0, crash = 0, hang = 0, detected = 0;
  std::size_t total() const { return benign + sdc + crash + hang + detected; }
  double fraction_sdc() const;
  double fraction_failure() const;
};

OutcomeMix summarize(const std::vector<FaultRecord>& records);

/// Report a finished campaign's outcome mix to the global metrics registry
/// as counters `<prefix>.trials` and `<prefix>.outcome.{masked,sdc,crash,
/// hang,detected}`. No-op when observability is disabled.
void count_campaign_outcomes(const char* prefix, const std::vector<FaultRecord>& records);

}  // namespace lore::arch
