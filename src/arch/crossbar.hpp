// Memristor-crossbar DNN substrate with fault injection ([28], Sec. III-C1):
// crossbars compute matrix-vector products in analog; manufacturing and
// endurance faults leave cells stuck at low/high conductance. Protecting
// every cell with redundant columns is expensive — [28] trained a small
// neural network to predict which faults are *critical* to the DNN's
// accuracy and protected only those, cutting redundancy by ~93 %.
#pragma once

#include <cstdint>

#include "src/common/rng.hpp"
#include "src/ml/dataset.hpp"
#include "src/ml/mlp.hpp"

namespace lore::arch {

/// Conductance-domain fault at one crossbar cell.
enum class CrossbarFaultType : std::uint8_t { kStuckAtLow, kStuckAtHigh };

struct CrossbarFault {
  std::size_t layer = 0;
  std::size_t row = 0;      // input line
  std::size_t col = 0;      // output line
  CrossbarFaultType type = CrossbarFaultType::kStuckAtLow;
};

/// A DNN deployed on crossbars: one crossbar per MLP layer, weights stored
/// as differential conductances clipped to [-g_max, g_max].
class CrossbarAccelerator {
 public:
  /// Map a trained MLP onto crossbars (copies the weights).
  CrossbarAccelerator(const ml::Mlp& network, double g_max = 2.0);

  std::size_t num_layers() const { return weights_.size(); }
  std::size_t layer_rows(std::size_t layer) const { return weights_[layer].cols(); }
  std::size_t layer_cols(std::size_t layer) const { return weights_[layer].rows(); }
  /// Total programmable cells.
  std::size_t num_cells() const;

  /// Inference with an optional fault applied. Activation mirrors the source
  /// network (ReLU hidden, linear output).
  std::vector<double> infer(std::span<const double> input,
                            const CrossbarFault* fault = nullptr) const;

  int classify(std::span<const double> input, const CrossbarFault* fault = nullptr) const;

  /// The weight a fault overrides and the value it is stuck at.
  double cell_weight(const CrossbarFault& fault) const;
  double stuck_value(const CrossbarFault& fault) const;

  /// Uniformly random fault location/polarity.
  CrossbarFault random_fault(lore::Rng& rng) const;

 private:
  std::vector<ml::Matrix> weights_;   // per layer: out x in
  std::vector<std::vector<double>> biases_;
  double g_max_;
};

/// Fraction of evaluation inputs whose prediction a fault flips.
double fault_criticality(const CrossbarAccelerator& accel, const CrossbarFault& fault,
                         const ml::Matrix& eval_inputs);

inline constexpr std::size_t kCrossbarFaultFeatureDim = 9;

/// Mean absolute activation of every input line of every layer over an
/// input set — one clean profiling pass, reused by the fault features.
std::vector<std::vector<double>> mean_line_activations(const CrossbarAccelerator& accel,
                                                       const ml::Mlp& network,
                                                       const ml::Matrix& inputs);

/// Features of a fault for the criticality predictor: |w|, |stuck - w|
/// (the conductance error magnitude), polarity, layer index (normalized),
/// fan-in of the struck column, column weight L1 norm, output-layer flag,
/// mean activity of the struck input line, and the expected output
/// perturbation |stuck - w| * activity (the dominant predictor).
std::vector<double> crossbar_fault_features(
    const CrossbarAccelerator& accel, const CrossbarFault& fault,
    const std::vector<std::vector<double>>& line_activity);

/// Build a labeled criticality dataset by sampling `samples` random faults;
/// label 1 when criticality > threshold. Targets carry raw criticality.
/// `network` is the source MLP (for activation profiling).
ml::Dataset crossbar_fault_dataset(const CrossbarAccelerator& accel,
                                   const ml::Mlp& network, const ml::Matrix& eval_inputs,
                                   std::size_t samples, double threshold, lore::Rng& rng);

}  // namespace lore::arch
