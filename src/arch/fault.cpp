#include "src/arch/fault.hpp"

#include <array>
#include <atomic>
#include <cassert>
#include <cstdio>

#include "src/arch/features.hpp"
#include "src/common/kernels.hpp"
#include "src/common/parallel.hpp"
#include "src/ml/predictor.hpp"
#include "src/obs/obs.hpp"

namespace lore::arch {

/// Campaign outcome counters under `prefix` ("masked" is the paper's name
/// for architecturally benign injections). Counts are derived from the
/// merged record list, so they inherit the engine's bit-identical-for-any-
/// thread-count guarantee.
void count_campaign_outcomes(const char* prefix, const std::vector<FaultRecord>& records) {
  if (!obs::kCompiledIn || !obs::enabled()) return;
  const OutcomeMix mix = summarize(records);
  auto& registry = obs::MetricsRegistry::global();
  const std::string base(prefix);
  registry.counter(base + ".trials").add(records.size());
  registry.counter(base + ".outcome.masked").add(mix.benign);
  registry.counter(base + ".outcome.sdc").add(mix.sdc);
  registry.counter(base + ".outcome.crash").add(mix.crash);
  registry.counter(base + ".outcome.hang").add(mix.hang);
  registry.counter(base + ".outcome.detected").add(mix.detected);
}

std::string outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kBenign: return "benign";
    case Outcome::kSdc: return "sdc";
    case Outcome::kCrash: return "crash";
    case Outcome::kHang: return "hang";
    case Outcome::kDetected: return "detected";
  }
  return "?";
}

void corrupt_instruction_field(Instruction& ins, unsigned bit) {
  const unsigned b = bit % 32;
  if (b < 5) {
    ins.op = static_cast<Opcode>((static_cast<unsigned>(ins.op) ^ (1u << b)) %
                                 (static_cast<unsigned>(Opcode::kHalt) + 1));
  } else if (b < 9) {
    ins.rd = static_cast<std::uint8_t>((ins.rd ^ (1u << (b - 5))) % kNumRegisters);
  } else if (b < 13) {
    ins.rs1 = static_cast<std::uint8_t>((ins.rs1 ^ (1u << (b - 9))) % kNumRegisters);
  } else if (b < 17) {
    ins.rs2 = static_cast<std::uint8_t>((ins.rs2 ^ (1u << (b - 13))) % kNumRegisters);
  } else {
    ins.imm ^= (1 << (b - 17));
  }
}

GoldenRun run_golden(const Workload& w) {
  Cpu cpu(w.memory_words);
  cpu.load_program(w.program);
  for (const auto& [addr, value] : w.memory_init) cpu.set_mem(addr, value);
  [[maybe_unused]] const auto state = cpu.run(w.max_cycles);
  assert(state == RunState::kHalted && "golden run must complete");
  GoldenRun g;
  g.cycles = cpu.cycles();
  g.output.reserve(w.output_words);
  for (std::size_t i = 0; i < w.output_words; ++i)
    g.output.push_back(cpu.mem(w.output_base + i));
  return g;
}

FaultInjector::FaultInjector(const Workload& workload)
    : workload_(workload), golden_(run_golden(workload)) {}

void FaultInjector::prepare_cpu(Cpu& cpu) const {
  cpu.load_program(workload_.program);
  for (const auto& [addr, value] : workload_.memory_init) cpu.set_mem(addr, value);
}

FaultRecord FaultInjector::inject(const FaultSite& site) const {
  Cpu cpu(workload_.memory_words);
  prepare_cpu(cpu);

  FaultRecord rec;
  rec.site = site;

  // Run to the injection cycle.
  while (cpu.state() == RunState::kRunning && cpu.cycles() < site.cycle) cpu.step();
  rec.active_instruction =
      cpu.state() == RunState::kRunning ? static_cast<std::int64_t>(cpu.pc()) : -1;

  if (cpu.state() == RunState::kRunning || cpu.state() == RunState::kHalted) {
    switch (site.target) {
      case FaultTarget::kRegister:
        cpu.flip_register_bit(site.index, site.bit);
        break;
      case FaultTarget::kMemory:
        cpu.flip_memory_bit(site.index, site.bit);
        break;
      case FaultTarget::kInstruction: {
        // Corrupt one field of the static instruction's packed encoding.
        auto& prog = cpu.mutable_program();
        if (site.index < prog.size())
          corrupt_instruction_field(prog[site.index], site.bit);
        break;
      }
    }
  }

  const auto state = cpu.run(workload_.max_cycles);
  switch (state) {
    case RunState::kTrapped:
      rec.outcome = Outcome::kCrash;
      return rec;
    case RunState::kTimedOut:
      rec.outcome = Outcome::kHang;
      return rec;
    default:
      break;
  }
  for (std::size_t i = 0; i < workload_.output_words; ++i) {
    if (cpu.mem(workload_.output_base + i) != golden_.output[i]) {
      rec.outcome = Outcome::kSdc;
      return rec;
    }
  }
  rec.outcome = Outcome::kBenign;
  return rec;
}

FaultSite FaultInjector::random_site(lore::Rng& rng, FaultTarget target) const {
  FaultSite site;
  site.target = target;
  site.cycle = rng.uniform_index(golden_.cycles) + 1;
  switch (target) {
    case FaultTarget::kRegister:
      site.index = rng.uniform_index(kNumRegisters);
      site.bit = static_cast<unsigned>(rng.uniform_index(32));
      break;
    case FaultTarget::kMemory: {
      // Restrict to the workload's live data window (init + outputs).
      std::size_t hi = workload_.output_base + workload_.output_words;
      for (const auto& [addr, value] : workload_.memory_init) hi = std::max(hi, addr + 1);
      site.index = rng.uniform_index(hi);
      site.bit = static_cast<unsigned>(rng.uniform_index(32));
      break;
    }
    case FaultTarget::kInstruction:
      site.index = rng.uniform_index(workload_.program.size());
      site.bit = static_cast<unsigned>(rng.uniform_index(32));
      break;
  }
  return site;
}

namespace {

/// Field-wise checkpoint codec for FaultRecord (stable across struct padding
/// and layout changes; the format is what's versioned, not the struct).
struct FaultRecordCodec {
  static void encode(lore::ByteWriter& w, const FaultRecord& r) {
    w.put_u8(static_cast<std::uint8_t>(r.site.target));
    w.put_u64(r.site.index);
    w.put_u32(r.site.bit);
    w.put_u64(r.site.cycle);
    w.put_u8(static_cast<std::uint8_t>(r.outcome));
    w.put_u64(static_cast<std::uint64_t>(r.active_instruction));
    w.put_u64(r.trial_seed);
  }
  static FaultRecord decode(lore::ByteReader& r) {
    FaultRecord rec;
    rec.site.target = static_cast<FaultTarget>(r.get_u8());
    rec.site.index = static_cast<std::size_t>(r.get_u64());
    rec.site.bit = r.get_u32();
    rec.site.cycle = r.get_u64();
    rec.outcome = static_cast<Outcome>(r.get_u8());
    rec.active_instruction = static_cast<std::int64_t>(r.get_u64());
    rec.trial_seed = r.get_u64();
    return rec;
  }
};

/// Workload fingerprint folded into the campaign identity: golden output,
/// cycle count, program size, and the fault target. Distinguishes any two
/// campaigns whose records could differ.
std::string fault_campaign_domain(const char* kind, const GoldenRun& golden,
                                  std::size_t program_size, int target) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  mix(golden.cycles);
  for (const auto word : golden.output) mix(word);
  mix(program_size);
  mix(static_cast<std::uint64_t>(target));
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s/%016llx", kind,
                static_cast<unsigned long long>(h));
  return buf;
}

/// Outcome counters must only cover trials that produced a record; failed or
/// skipped slots hold value-initialized records and would masquerade as
/// benign injections.
void count_completed_outcomes(const char* prefix,
                              const lore::CampaignResult<FaultRecord>& result) {
  if (result.report.complete()) {
    count_campaign_outcomes(prefix, result.records);
    return;
  }
  std::vector<FaultRecord> ok;
  ok.reserve(result.report.completed);
  for (std::size_t i = 0; i < result.records.size(); ++i)
    if (result.status[i] == lore::TrialStatus::kOk) ok.push_back(result.records[i]);
  count_campaign_outcomes(prefix, ok);
}

}  // namespace

// ---------------------------------------------------------------------------
// Batched trial hot path. The reference `inject()` constructs and golden-
// replays a fresh Cpu per trial: five vector allocations, a 16 KiB memory
// zero, and up to `site.cycle` interpreted cycles before the fault even
// lands. The batched path pays the golden work once per campaign — an
// instrumented golden replay records periodic architectural snapshots plus
// the full ordered store log — and then each trial on a thread-local scratch
// Cpu is: apply the golden store prefix up to the nearest snapshot (logging
// undos), restore registers/PC from the snapshot, interpret at most
// `stride` cycles to the injection point, flip, run to completion with the
// profiling-free interpreter, classify, and unwind the store log so scratch
// memory is back at the workload baseline. Trajectories are bit-identical to
// the reference by construction: pre-injection state is the golden
// trajectory either way, and injection/classification code is shared.
// The differential suite in tests/common/ holds this equal to `inject()`
// across dispatch modes, chunk sizes, and thread counts.

/// Architectural state at one golden cycle boundary. `write_count` indexes
/// into GoldenTrace::writes: applying writes [0, write_count) to the baseline
/// memory image reproduces golden memory at `cycles`.
struct FaultInjector::TraceSnap {
  std::uint64_t cycles = 0;
  std::uint32_t pc = 0;
  RunState state = RunState::kRunning;
  std::size_t write_count = 0;
  std::array<std::uint32_t, kNumRegisters> regs{};
};

/// One instrumented golden replay: snapshots every `stride` cycles (at most
/// ~1024 of them) and the ordered log of every retired store.
struct FaultInjector::GoldenTrace {
  std::vector<TraceSnap> snaps;
  std::vector<MemWrite> writes;
  std::uint64_t stride = 1;
};

namespace {

/// Campaign-scoped identity for the thread-local scratch state. ThreadPool
/// workers are fresh per campaign, but the serial path runs on the caller's
/// thread which persists across campaigns — the id forces a rebuild whenever
/// the scratch meets a different campaign context.
std::atomic<std::uint64_t> g_batch_context_serial{0};

}  // namespace

struct FaultInjector::BatchContext {
  const Workload& workload;
  const GoldenRun& golden;
  GoldenTrace trace;
  std::uint64_t id = ++g_batch_context_serial;
};

/// Per-thread scratch: one live Cpu holding the workload baseline between
/// trials, plus the undo log that maintains that invariant.
struct FaultInjector::BatchScratch {
  std::uint64_t ctx_id = 0;
  Cpu cpu{1};
  std::vector<MemWrite> undo;
};

FaultInjector::GoldenTrace FaultInjector::build_golden_trace() const {
  GoldenTrace trace;
  // <= ~1024 snapshots regardless of workload length; pre-injection replay
  // from the nearest snapshot is then at most `stride` cycles.
  trace.stride = std::max<std::uint64_t>(1, (golden_.cycles + 1023) / 1024);
  Cpu cpu(workload_.memory_words);
  prepare_cpu(cpu);
  cpu.set_write_log(&trace.writes);
  std::uint64_t next_snap = 0;
  while (cpu.state() == RunState::kRunning && cpu.cycles() <= workload_.max_cycles) {
    if (cpu.cycles() == next_snap) {
      TraceSnap snap;
      snap.cycles = cpu.cycles();
      snap.pc = cpu.pc();
      snap.state = cpu.state();
      snap.write_count = trace.writes.size();
      for (std::size_t r = 0; r < kNumRegisters; ++r)
        snap.regs[r] = cpu.reg(r);
      trace.snaps.push_back(snap);
      next_snap += trace.stride;
    }
    cpu.step_fast();
  }
  cpu.set_write_log(nullptr);
  return trace;
}

FaultInjector::BatchScratch& FaultInjector::scratch_for(const BatchContext& ctx) {
  thread_local BatchScratch scratch;
  if (scratch.ctx_id != ctx.id) {
    scratch.cpu = Cpu(ctx.workload.memory_words);
    scratch.cpu.load_program(ctx.workload.program);
    for (const auto& [addr, value] : ctx.workload.memory_init)
      scratch.cpu.set_mem(addr, value);
    scratch.undo.clear();
    scratch.undo.reserve(256);
    scratch.ctx_id = ctx.id;
  }
  return scratch;
}

FaultRecord FaultInjector::inject_batched(const BatchContext& ctx, BatchScratch& scratch,
                                          const FaultSite& site) const {
  FaultRecord rec;
  rec.site = site;
  Cpu& cpu = scratch.cpu;
  auto& undo = scratch.undo;
  undo.clear();

  // Nearest snapshot at or before the injection cycle (clamped: the golden
  // run may halt before the last stride boundary).
  const std::size_t snap_index = std::min<std::size_t>(
      static_cast<std::size_t>(site.cycle / ctx.trace.stride), ctx.trace.snaps.size() - 1);
  const TraceSnap& snap = ctx.trace.snaps[snap_index];

  // Scratch memory holds the baseline image; the golden store prefix brings
  // it to the snapshot cycle. Applies are undo-logged manually (`set_mem` is
  // the restore primitive and never logs); every later mutation — replayed
  // stores, post-injection stores, injected memory flips — logs through the
  // Cpu's write log.
  for (std::size_t k = 0; k < snap.write_count; ++k) {
    const MemWrite& w = ctx.trace.writes[k];
    undo.push_back({w.addr, cpu.mem(w.addr), w.after});
    cpu.set_mem(w.addr, w.after);
  }
  cpu.restore_registers(snap.regs);
  cpu.set_pc(snap.pc);
  cpu.set_cycles(snap.cycles);
  cpu.set_state(snap.state);
  cpu.set_write_log(&undo);

  // Run to the injection cycle — the same loop (and so the same reachable
  // states) as the reference inject().
  while (cpu.state() == RunState::kRunning && cpu.cycles() < site.cycle) cpu.step_fast();
  rec.active_instruction =
      cpu.state() == RunState::kRunning ? static_cast<std::int64_t>(cpu.pc()) : -1;

  Instruction saved_instruction{};
  bool program_touched = false;
  if (cpu.state() == RunState::kRunning || cpu.state() == RunState::kHalted) {
    switch (site.target) {
      case FaultTarget::kRegister:
        cpu.flip_register_bit(site.index, site.bit);
        break;
      case FaultTarget::kMemory:
        cpu.flip_memory_bit(site.index, site.bit);
        break;
      case FaultTarget::kInstruction: {
        auto& prog = cpu.mutable_program();
        if (site.index < prog.size()) {
          saved_instruction = prog[site.index];
          corrupt_instruction_field(prog[site.index], site.bit);
          program_touched = true;
        }
        break;
      }
    }
  }

  const auto state = cpu.run_fast(workload_.max_cycles);
  switch (state) {
    case RunState::kTrapped:
      rec.outcome = Outcome::kCrash;
      break;
    case RunState::kTimedOut:
      rec.outcome = Outcome::kHang;
      break;
    default: {
      const auto mismatches = lore::kernels::count_mismatch_u32(
          cpu.memory().subspan(workload_.output_base, workload_.output_words),
          std::span<const std::uint32_t>(golden_.output));
      rec.outcome = mismatches ? Outcome::kSdc : Outcome::kBenign;
      break;
    }
  }

  // Teardown: pristine program, baseline memory (regs/PC/cycles/state are
  // overwritten from a snapshot at the next trial's start).
  if (program_touched) cpu.mutable_program()[site.index] = saved_instruction;
  cpu.set_write_log(nullptr);
  for (auto it = undo.rbegin(); it != undo.rend(); ++it) cpu.set_mem(it->addr, it->before);
  return rec;
}

lore::CampaignSpec FaultInjector::resolved_spec(const lore::CampaignSpec& spec,
                                                FaultTarget target) const {
  lore::CampaignSpec s = spec;
  if (s.domain.empty())
    s.domain = fault_campaign_domain("arch.fault", golden_, workload_.program.size(),
                                     static_cast<int>(target));
  return s;
}

lore::CampaignCheckpoint FaultInjector::campaign_shard(const lore::CampaignSpec& spec,
                                                       lore::TrialRange range,
                                                       FaultTarget target) const {
  LORE_OBS_SPAN(span, "campaign.arch_shard");
  const lore::CampaignSpec s = resolved_spec(spec, target);
  if (lore::campaign_batch_enabled()) {
    const BatchContext ctx{workload_, golden_, build_golden_trace()};
    return lore::run_campaign_shard<FaultRecord, FaultRecordCodec>(
        s, range, [&](std::size_t t, lore::Rng& rng, const lore::CancelToken&) {
          FaultRecord rec =
              inject_batched(ctx, scratch_for(ctx), random_site(rng, target));
          rec.trial_seed = lore::trial_seed(s.base_seed, t);
          return rec;
        });
  }
  return lore::run_campaign_shard<FaultRecord, FaultRecordCodec>(
      s, range, [&](std::size_t t, lore::Rng& rng, const lore::CancelToken&) {
        FaultRecord rec = inject(random_site(rng, target));
        rec.trial_seed = lore::trial_seed(s.base_seed, t);
        return rec;
      });
}

lore::CampaignResult<FaultRecord> FaultInjector::records_from_checkpoint(
    const lore::CampaignSpec& spec, const lore::CampaignCheckpoint& ck) {
  return lore::result_from_checkpoint<FaultRecord, FaultRecordCodec>(spec, ck);
}

lore::CampaignResult<FaultRecord> FaultInjector::campaign_run(
    const lore::CampaignSpec& spec, FaultTarget target) const {
  LORE_OBS_SPAN(span, "campaign.arch");
  LORE_OBS_TIMER(timer, "campaign.arch_us");
  const lore::CampaignSpec s = resolved_spec(spec, target);
  lore::CampaignResult<FaultRecord> result;
  if (lore::campaign_uses_batch(s)) {
    const BatchContext ctx{workload_, golden_, build_golden_trace()};
    result = lore::run_campaign_batched<FaultRecord, FaultRecordCodec>(
        s, [&](std::size_t t, lore::Rng& rng, const lore::CancelToken&) {
          FaultRecord rec = inject_batched(ctx, scratch_for(ctx), random_site(rng, target));
          rec.trial_seed = lore::trial_seed(s.base_seed, t);
          return rec;
        });
  } else {
    result = lore::run_campaign<FaultRecord, FaultRecordCodec>(
        s, [&](std::size_t t, lore::Rng& rng, const lore::CancelToken& cancel) {
          cancel.throw_if_cancelled();
          FaultRecord rec = inject(random_site(rng, target));
          rec.trial_seed = lore::trial_seed(s.base_seed, t);
          return rec;
        });
  }
  count_completed_outcomes("campaign.arch", result);
  return result;
}

lore::CampaignResult<FaultRecord> FaultInjector::campaign_run_pruned(
    const lore::CampaignSpec& spec, FaultTarget target, ml::Predictor& predictor,
    const PruneCampaignOptions& opt) const {
  const lore::CampaignSpec s = resolved_spec(spec, target);
  // The reference engine never prunes; keep its exact semantics.
  if (!lore::campaign_uses_batch(s)) return campaign_run(spec, target);

  LORE_OBS_SPAN(span, "campaign.arch_pruned");
  LORE_OBS_TIMER(timer, "campaign.arch_us");
  const BatchContext ctx{workload_, golden_, build_golden_trace()};
  const FaultSiteFeaturizer featurizer(workload_, golden_.cycles);
  const double threshold = opt.benign_threshold >= 0.0
                               ? opt.benign_threshold
                               : predictor.config().benign_threshold;

  lore::PruneHooks<FaultRecord> hooks;
  hooks.audit_fraction = opt.audit_fraction;
  hooks.controller = opt.controller;
  hooks.predict = [&](std::size_t begin, std::size_t end,
                      std::span<const std::uint64_t> seeds,
                      std::span<std::uint8_t> benign) {
    (void)begin;
    (void)end;
    const auto snap = predictor.snapshot();
    if (!snap) return;  // no validated model yet — nothing is predicted benign
    const std::size_t n = seeds.size();
    // The engine holds an ArenaScope for the chunk; these live until chunk end.
    Arena& arena = Arena::for_thread();
    const auto features = arena.alloc<double>(n * kFaultSiteFeatureDim);
    const auto p_benign = arena.alloc<double>(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Regenerate trial i's site from its seed: the first draws of the same
      // stream the trial body would consume, so prediction and execution see
      // the same descriptor.
      lore::Rng rng(seeds[i]);
      const FaultSite site = random_site(rng, target);
      featurizer.featurize(
          site, features.subspan(i * kFaultSiteFeatureDim, kFaultSiteFeatureDim));
    }
    snap->predict_benign(features.data(), n, p_benign, /*threads=*/1);
    for (std::size_t i = 0; i < n; ++i) benign[i] = p_benign[i] >= threshold ? 1 : 0;
  };
  hooks.is_benign = [](const FaultRecord& r) { return r.outcome == Outcome::kBenign; };
  hooks.on_executed = [&](std::size_t index, const FaultRecord& rec, bool predicted,
                          bool audited) {
    (void)predicted;
    if (!audited && (opt.feedback_stride == 0 || index % opt.feedback_stride != 0))
      return;
    double f[kFaultSiteFeatureDim];
    featurizer.featurize(rec.site, f);
    predictor.observe(std::span<const double>(f, kFaultSiteFeatureDim),
                      rec.outcome == Outcome::kBenign);
  };

  auto result = lore::run_campaign_pruned<FaultRecord, FaultRecordCodec>(
      s,
      [&](std::size_t t, lore::Rng& rng, const lore::CancelToken&) {
        FaultRecord rec = inject_batched(ctx, scratch_for(ctx), random_site(rng, target));
        rec.trial_seed = lore::trial_seed(s.base_seed, t);
        return rec;
      },
      hooks);
  count_completed_outcomes("campaign.arch", result);
  return result;
}

std::vector<FaultRecord> FaultInjector::campaign(const lore::CampaignSpec& spec,
                                                 FaultTarget target) const {
  return campaign_run(spec, target).records;
}

std::vector<FaultRecord> FaultInjector::campaign(std::size_t trials, FaultTarget target,
                                                 std::uint64_t base_seed,
                                                 unsigned threads) const {
  lore::CampaignSpec spec;
  spec.trials = trials;
  spec.base_seed = base_seed;
  spec.threads = threads;
  return campaign(spec, target);
}

FaultRecord FaultInjector::replay_trial(std::uint64_t seed, FaultTarget target) const {
  lore::Rng rng(seed);
  FaultRecord rec = inject(random_site(rng, target));
  rec.trial_seed = seed;
  return rec;
}

double avf(const std::vector<FaultRecord>& records) {
  if (records.empty()) return 0.0;
  std::size_t failures = 0;
  for (const auto& r : records)
    failures += r.outcome == Outcome::kSdc || r.outcome == Outcome::kCrash ||
                r.outcome == Outcome::kHang;
  return static_cast<double>(failures) / static_cast<double>(records.size());
}

double OutcomeMix::fraction_sdc() const {
  const auto t = total();
  return t ? static_cast<double>(sdc) / static_cast<double>(t) : 0.0;
}

double OutcomeMix::fraction_failure() const {
  const auto t = total();
  return t ? static_cast<double>(sdc + crash + hang) / static_cast<double>(t) : 0.0;
}

OutcomeMix summarize(const std::vector<FaultRecord>& records) {
  OutcomeMix mix;
  for (const auto& r : records) {
    switch (r.outcome) {
      case Outcome::kBenign: ++mix.benign; break;
      case Outcome::kSdc: ++mix.sdc; break;
      case Outcome::kCrash: ++mix.crash; break;
      case Outcome::kHang: ++mix.hang; break;
      case Outcome::kDetected: ++mix.detected; break;
    }
  }
  return mix;
}

}  // namespace lore::arch
