#include "src/arch/fault.hpp"

#include <cassert>
#include <cstdio>

#include "src/common/parallel.hpp"
#include "src/obs/obs.hpp"

namespace lore::arch {

/// Campaign outcome counters under `prefix` ("masked" is the paper's name
/// for architecturally benign injections). Counts are derived from the
/// merged record list, so they inherit the engine's bit-identical-for-any-
/// thread-count guarantee.
void count_campaign_outcomes(const char* prefix, const std::vector<FaultRecord>& records) {
  if (!obs::kCompiledIn || !obs::enabled()) return;
  const OutcomeMix mix = summarize(records);
  auto& registry = obs::MetricsRegistry::global();
  const std::string base(prefix);
  registry.counter(base + ".trials").add(records.size());
  registry.counter(base + ".outcome.masked").add(mix.benign);
  registry.counter(base + ".outcome.sdc").add(mix.sdc);
  registry.counter(base + ".outcome.crash").add(mix.crash);
  registry.counter(base + ".outcome.hang").add(mix.hang);
  registry.counter(base + ".outcome.detected").add(mix.detected);
}

std::string outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kBenign: return "benign";
    case Outcome::kSdc: return "sdc";
    case Outcome::kCrash: return "crash";
    case Outcome::kHang: return "hang";
    case Outcome::kDetected: return "detected";
  }
  return "?";
}

void corrupt_instruction_field(Instruction& ins, unsigned bit) {
  const unsigned b = bit % 32;
  if (b < 5) {
    ins.op = static_cast<Opcode>((static_cast<unsigned>(ins.op) ^ (1u << b)) %
                                 (static_cast<unsigned>(Opcode::kHalt) + 1));
  } else if (b < 9) {
    ins.rd = static_cast<std::uint8_t>((ins.rd ^ (1u << (b - 5))) % kNumRegisters);
  } else if (b < 13) {
    ins.rs1 = static_cast<std::uint8_t>((ins.rs1 ^ (1u << (b - 9))) % kNumRegisters);
  } else if (b < 17) {
    ins.rs2 = static_cast<std::uint8_t>((ins.rs2 ^ (1u << (b - 13))) % kNumRegisters);
  } else {
    ins.imm ^= (1 << (b - 17));
  }
}

GoldenRun run_golden(const Workload& w) {
  Cpu cpu(w.memory_words);
  cpu.load_program(w.program);
  for (const auto& [addr, value] : w.memory_init) cpu.set_mem(addr, value);
  [[maybe_unused]] const auto state = cpu.run(w.max_cycles);
  assert(state == RunState::kHalted && "golden run must complete");
  GoldenRun g;
  g.cycles = cpu.cycles();
  g.output.reserve(w.output_words);
  for (std::size_t i = 0; i < w.output_words; ++i)
    g.output.push_back(cpu.mem(w.output_base + i));
  return g;
}

FaultInjector::FaultInjector(const Workload& workload)
    : workload_(workload), golden_(run_golden(workload)) {}

void FaultInjector::prepare_cpu(Cpu& cpu) const {
  cpu.load_program(workload_.program);
  for (const auto& [addr, value] : workload_.memory_init) cpu.set_mem(addr, value);
}

FaultRecord FaultInjector::inject(const FaultSite& site) const {
  Cpu cpu(workload_.memory_words);
  prepare_cpu(cpu);

  FaultRecord rec;
  rec.site = site;

  // Run to the injection cycle.
  while (cpu.state() == RunState::kRunning && cpu.cycles() < site.cycle) cpu.step();
  rec.active_instruction =
      cpu.state() == RunState::kRunning ? static_cast<std::int64_t>(cpu.pc()) : -1;

  if (cpu.state() == RunState::kRunning || cpu.state() == RunState::kHalted) {
    switch (site.target) {
      case FaultTarget::kRegister:
        cpu.flip_register_bit(site.index, site.bit);
        break;
      case FaultTarget::kMemory:
        cpu.flip_memory_bit(site.index, site.bit);
        break;
      case FaultTarget::kInstruction: {
        // Corrupt one field of the static instruction's packed encoding.
        auto& prog = cpu.mutable_program();
        if (site.index < prog.size())
          corrupt_instruction_field(prog[site.index], site.bit);
        break;
      }
    }
  }

  const auto state = cpu.run(workload_.max_cycles);
  switch (state) {
    case RunState::kTrapped:
      rec.outcome = Outcome::kCrash;
      return rec;
    case RunState::kTimedOut:
      rec.outcome = Outcome::kHang;
      return rec;
    default:
      break;
  }
  for (std::size_t i = 0; i < workload_.output_words; ++i) {
    if (cpu.mem(workload_.output_base + i) != golden_.output[i]) {
      rec.outcome = Outcome::kSdc;
      return rec;
    }
  }
  rec.outcome = Outcome::kBenign;
  return rec;
}

FaultSite FaultInjector::random_site(lore::Rng& rng, FaultTarget target) const {
  FaultSite site;
  site.target = target;
  site.cycle = rng.uniform_index(golden_.cycles) + 1;
  switch (target) {
    case FaultTarget::kRegister:
      site.index = rng.uniform_index(kNumRegisters);
      site.bit = static_cast<unsigned>(rng.uniform_index(32));
      break;
    case FaultTarget::kMemory: {
      // Restrict to the workload's live data window (init + outputs).
      std::size_t hi = workload_.output_base + workload_.output_words;
      for (const auto& [addr, value] : workload_.memory_init) hi = std::max(hi, addr + 1);
      site.index = rng.uniform_index(hi);
      site.bit = static_cast<unsigned>(rng.uniform_index(32));
      break;
    }
    case FaultTarget::kInstruction:
      site.index = rng.uniform_index(workload_.program.size());
      site.bit = static_cast<unsigned>(rng.uniform_index(32));
      break;
  }
  return site;
}

namespace {

/// Field-wise checkpoint codec for FaultRecord (stable across struct padding
/// and layout changes; the format is what's versioned, not the struct).
struct FaultRecordCodec {
  static void encode(lore::ByteWriter& w, const FaultRecord& r) {
    w.put_u8(static_cast<std::uint8_t>(r.site.target));
    w.put_u64(r.site.index);
    w.put_u32(r.site.bit);
    w.put_u64(r.site.cycle);
    w.put_u8(static_cast<std::uint8_t>(r.outcome));
    w.put_u64(static_cast<std::uint64_t>(r.active_instruction));
    w.put_u64(r.trial_seed);
  }
  static FaultRecord decode(lore::ByteReader& r) {
    FaultRecord rec;
    rec.site.target = static_cast<FaultTarget>(r.get_u8());
    rec.site.index = static_cast<std::size_t>(r.get_u64());
    rec.site.bit = r.get_u32();
    rec.site.cycle = r.get_u64();
    rec.outcome = static_cast<Outcome>(r.get_u8());
    rec.active_instruction = static_cast<std::int64_t>(r.get_u64());
    rec.trial_seed = r.get_u64();
    return rec;
  }
};

/// Workload fingerprint folded into the campaign identity: golden output,
/// cycle count, program size, and the fault target. Distinguishes any two
/// campaigns whose records could differ.
std::string fault_campaign_domain(const char* kind, const GoldenRun& golden,
                                  std::size_t program_size, int target) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  mix(golden.cycles);
  for (const auto word : golden.output) mix(word);
  mix(program_size);
  mix(static_cast<std::uint64_t>(target));
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s/%016llx", kind,
                static_cast<unsigned long long>(h));
  return buf;
}

/// Outcome counters must only cover trials that produced a record; failed or
/// skipped slots hold value-initialized records and would masquerade as
/// benign injections.
void count_completed_outcomes(const char* prefix,
                              const lore::CampaignResult<FaultRecord>& result) {
  if (result.report.complete()) {
    count_campaign_outcomes(prefix, result.records);
    return;
  }
  std::vector<FaultRecord> ok;
  ok.reserve(result.report.completed);
  for (std::size_t i = 0; i < result.records.size(); ++i)
    if (result.status[i] == lore::TrialStatus::kOk) ok.push_back(result.records[i]);
  count_campaign_outcomes(prefix, ok);
}

}  // namespace

lore::CampaignResult<FaultRecord> FaultInjector::campaign_run(
    const lore::CampaignSpec& spec, FaultTarget target) const {
  LORE_OBS_SPAN(span, "campaign.arch");
  LORE_OBS_TIMER(timer, "campaign.arch_us");
  lore::CampaignSpec s = spec;
  if (s.domain.empty())
    s.domain = fault_campaign_domain("arch.fault", golden_, workload_.program.size(),
                                     static_cast<int>(target));
  auto result = lore::run_campaign<FaultRecord, FaultRecordCodec>(
      s, [&](std::size_t t, lore::Rng& rng, const lore::CancelToken& cancel) {
        cancel.throw_if_cancelled();
        FaultRecord rec = inject(random_site(rng, target));
        rec.trial_seed = lore::trial_seed(s.base_seed, t);
        return rec;
      });
  count_completed_outcomes("campaign.arch", result);
  return result;
}

std::vector<FaultRecord> FaultInjector::campaign(const lore::CampaignSpec& spec,
                                                 FaultTarget target) const {
  return campaign_run(spec, target).records;
}

std::vector<FaultRecord> FaultInjector::campaign(std::size_t trials, FaultTarget target,
                                                 std::uint64_t base_seed,
                                                 unsigned threads) const {
  lore::CampaignSpec spec;
  spec.trials = trials;
  spec.base_seed = base_seed;
  spec.threads = threads;
  return campaign(spec, target);
}

std::vector<FaultRecord> FaultInjector::campaign(std::size_t trials, FaultTarget target,
                                                 lore::Rng& rng, unsigned threads) const {
  return campaign(trials, target, rng.next_u64(), threads);
}

FaultRecord FaultInjector::replay_trial(std::uint64_t seed, FaultTarget target) const {
  lore::Rng rng(seed);
  FaultRecord rec = inject(random_site(rng, target));
  rec.trial_seed = seed;
  return rec;
}

double avf(const std::vector<FaultRecord>& records) {
  if (records.empty()) return 0.0;
  std::size_t failures = 0;
  for (const auto& r : records)
    failures += r.outcome == Outcome::kSdc || r.outcome == Outcome::kCrash ||
                r.outcome == Outcome::kHang;
  return static_cast<double>(failures) / static_cast<double>(records.size());
}

double OutcomeMix::fraction_sdc() const {
  const auto t = total();
  return t ? static_cast<double>(sdc) / static_cast<double>(t) : 0.0;
}

double OutcomeMix::fraction_failure() const {
  const auto t = total();
  return t ? static_cast<double>(sdc + crash + hang) / static_cast<double>(t) : 0.0;
}

OutcomeMix summarize(const std::vector<FaultRecord>& records) {
  OutcomeMix mix;
  for (const auto& r : records) {
    switch (r.outcome) {
      case Outcome::kBenign: ++mix.benign; break;
      case Outcome::kSdc: ++mix.sdc; break;
      case Outcome::kCrash: ++mix.crash; break;
      case Outcome::kHang: ++mix.hang; break;
      case Outcome::kDetected: ++mix.detected; break;
    }
  }
  return mix;
}

}  // namespace lore::arch
