#include "src/arch/symptom.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lore::arch {
namespace {

int argmax(std::span<const double> v) {
  return static_cast<int>(std::max_element(v.begin(), v.end()) - v.begin());
}

}  // namespace

std::vector<std::size_t> ewma_symptom_epochs(const std::vector<double>& series,
                                             double alpha, double k_sigma,
                                             std::size_t warmup) {
  EwmaSymptomDetector detector(alpha, k_sigma, warmup);
  std::vector<std::size_t> anomalous;
  for (std::size_t i = 0; i < series.size(); ++i)
    if (detector.update(series[i])) anomalous.push_back(i);
  return anomalous;
}

std::vector<double> activation_statistics(const std::vector<std::vector<double>>& layers) {
  std::vector<double> stats;
  stats.reserve(4 * layers.size());
  for (const auto& layer : layers) {
    double mean = 0.0, maxabs = 0.0;
    double top1 = -1e30, top2 = -1e30;
    for (double v : layer) {
      mean += v;
      maxabs = std::max(maxabs, std::abs(v));
      if (v > top1) {
        top2 = top1;
        top1 = v;
      } else if (v > top2) {
        top2 = v;
      }
    }
    mean /= static_cast<double>(std::max<std::size_t>(1, layer.size()));
    double var = 0.0;
    for (double v : layer) var += (v - mean) * (v - mean);
    var /= static_cast<double>(std::max<std::size_t>(1, layer.size()));
    stats.push_back(mean);
    stats.push_back(std::sqrt(var));
    stats.push_back(maxabs);
    // Top-2 margin: collapses when a fault pushes the decision near a flip.
    stats.push_back(layer.size() > 1 ? top1 - top2 : 0.0);
  }
  return stats;
}

std::vector<double> flatten_activations(const std::vector<std::vector<double>>& layers) {
  std::vector<double> flat;
  std::size_t total = 0;
  for (const auto& layer : layers) total += layer.size();
  flat.reserve(total);
  for (const auto& layer : layers) flat.insert(flat.end(), layer.begin(), layer.end());
  return flat;
}

std::pair<std::vector<double>, bool> ActivationAnomalyDetector::faulty_inference(
    const ml::Mlp& mission, std::span<const double> input, lore::Rng& rng) const {
  auto layers = mission.forward_layers(input);
  const int clean_pred = argmax(layers.back());

  // Fault into the last hidden layer - the worst case for a classifier: a
  // high-magnitude spike there feeds the logits directly, so most injected
  // faults are harmful (matching the SDC-heavy fault mix [30] protects
  // against).
  const std::size_t num_acts = layers.size();
  assert(num_acts >= 3 && "mission network needs at least one hidden layer");
  const std::size_t layer = num_acts - 2;
  const std::size_t unit = rng.uniform_index(layers[layer].size());
  layers[layer][unit] = rng.bernoulli(0.5) ? cfg_.fault_magnitude : -cfg_.fault_magnitude;

  const auto out = mission.forward_from_layer(layer, layers[layer]);
  layers.back() = out;
  const bool changed = argmax(out) != clean_pred;
  return {flatten_activations(layers), changed};
}

void ActivationAnomalyDetector::train(const ml::Mlp& mission, const ml::Matrix& inputs) {
  lore::Rng rng(cfg_.seed);
  ml::Matrix x;
  std::vector<int> y;
  for (std::size_t s = 0; s < cfg_.train_samples; ++s) {
    const auto row = inputs.row(rng.uniform_index(inputs.rows()));
    if (rng.bernoulli(0.5)) {
      // Clean inference.
      x.push_row(flatten_activations(mission.forward_layers(row)));
      y.push_back(0);
    } else {
      auto [stats, changed] = faulty_inference(mission, row, rng);
      x.push_row(stats);
      // Label positives only when the fault actually flips the prediction:
      // benign faults should not raise alarms ([30]'s criterion).
      y.push_back(changed ? 1 : 0);
    }
  }
  detector_ = ml::MlpClassifier(cfg_.detector);
  detector_.fit(x, y);
  trained_ = true;
}

bool ActivationAnomalyDetector::flags(const std::vector<std::vector<double>>& layers) const {
  assert(trained_);
  return detector_.predict(flatten_activations(layers)) == 1;
}

double ActivationAnomalyDetector::overhead_fraction(const ml::Mlp& mission) const {
  return static_cast<double>(detector_.network().parameter_count()) /
         static_cast<double>(mission.parameter_count());
}

ActivationAnomalyDetector::Evaluation ActivationAnomalyDetector::evaluate(
    const ml::Mlp& mission, const ml::Matrix& inputs, std::size_t samples,
    std::uint64_t seed) const {
  assert(trained_);
  lore::Rng rng(seed);
  std::vector<int> truth, pred;
  for (std::size_t s = 0; s < samples; ++s) {
    const auto row = inputs.row(rng.uniform_index(inputs.rows()));
    if (rng.bernoulli(0.5)) {
      truth.push_back(0);
      pred.push_back(detector_.predict(
                         flatten_activations(mission.forward_layers(row))) == 1);
    } else {
      auto [stats, changed] = faulty_inference(mission, row, rng);
      truth.push_back(changed ? 1 : 0);
      pred.push_back(detector_.predict(stats) == 1);
    }
  }
  const auto conf = ml::binary_confusion(truth, pred);
  return {conf.recall(), conf.precision(), overhead_fraction(mission)};
}

std::vector<double> InputPerturbationMonitor::monitor_features(
    std::span<const double> input) {
  // Sensor frames are nominally drawn from a {-1, +1} alphabet plus noise;
  // the per-component deviation from that alphabet estimates the noise level
  // without knowing which prototype produced the frame.
  double mean_dev = 0.0, max_dev = 0.0, mean_abs = 0.0;
  std::vector<double> devs;
  devs.reserve(input.size());
  for (double v : input) {
    const double dev = std::abs(std::abs(v) - 1.0);
    devs.push_back(dev);
    mean_dev += dev;
    max_dev = std::max(max_dev, dev);
    mean_abs += std::abs(v);
  }
  const auto n = static_cast<double>(input.size());
  mean_dev /= n;
  mean_abs /= n;
  double var_dev = 0.0;
  for (double d : devs) var_dev += (d - mean_dev) * (d - mean_dev);
  var_dev /= n;
  return {mean_dev, std::sqrt(var_dev), max_dev, mean_abs};
}

void InputPerturbationMonitor::train(const ml::Mlp& mission, const ml::Matrix& clean_inputs) {
  lore::Rng rng(cfg_.seed);
  ml::Matrix x;
  std::vector<int> y;
  std::vector<double> perturbed(clean_inputs.cols());
  for (std::size_t s = 0; s < cfg_.train_samples; ++s) {
    const auto row = clean_inputs.row(rng.uniform_index(clean_inputs.rows()));
    const int clean_pred = argmax(mission.forward(row));
    const double noise = rng.uniform(0.0, cfg_.max_noise);
    for (std::size_t c = 0; c < perturbed.size(); ++c)
      perturbed[c] = row[c] + rng.normal(0.0, noise);
    const bool fails = argmax(mission.forward(perturbed)) != clean_pred;
    x.push_row(monitor_features(perturbed));
    y.push_back(fails ? 1 : 0);
  }
  monitor_ = ml::MlpClassifier(cfg_.monitor);
  monitor_.fit(x, y);
  trained_ = true;
}

double InputPerturbationMonitor::warning_score(std::span<const double> input) const {
  assert(trained_);
  const auto p = monitor_.predict_proba(monitor_features(input));
  return p.size() > 1 ? p[1] : 0.0;
}

double InputPerturbationMonitor::speedup_vs_mission(const ml::Mlp& mission) const {
  return static_cast<double>(mission.parameter_count()) /
         static_cast<double>(monitor_.network().parameter_count());
}

InputPerturbationMonitor::Evaluation InputPerturbationMonitor::evaluate(
    const ml::Mlp& mission, const ml::Matrix& clean_inputs, std::size_t samples,
    std::uint64_t seed) const {
  assert(trained_);
  lore::Rng rng(seed);
  std::vector<int> truth, pred;
  std::vector<double> score;
  std::vector<double> perturbed(clean_inputs.cols());
  for (std::size_t s = 0; s < samples; ++s) {
    const auto row = clean_inputs.row(rng.uniform_index(clean_inputs.rows()));
    const int clean_pred = argmax(mission.forward(row));
    const double noise = rng.uniform(0.0, cfg_.max_noise);
    for (std::size_t c = 0; c < perturbed.size(); ++c)
      perturbed[c] = row[c] + rng.normal(0.0, noise);
    truth.push_back(argmax(mission.forward(perturbed)) != clean_pred ? 1 : 0);
    const double w = warning_score(perturbed);
    score.push_back(w);
    pred.push_back(w > 0.5 ? 1 : 0);
  }
  const auto conf = ml::binary_confusion(truth, pred);
  return {conf.recall(), conf.precision(), ml::roc_auc(truth, score),
          speedup_vs_mission(mission)};
}

}  // namespace lore::arch
