// Benchmark kernels for the fault-injection campaigns, written in the LORE
// ISA. Each workload carries its memory image and declares where the result
// lives, so outcome classification can diff architectural results against a
// golden run. Scale parameters support the scale-dependent soft-error
// experiment (E6 / [21]).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/arch/isa.hpp"
#include "src/common/rng.hpp"

namespace lore::arch {

struct Workload {
  std::string name;
  Program program;
  /// Initial memory image as (word address, value) pairs.
  std::vector<std::pair<std::size_t, std::uint32_t>> memory_init;
  /// Architectural result: the golden run's memory[output_base .. +words).
  std::size_t output_base = 0;
  std::size_t output_words = 1;
  /// Cycle budget: beyond this a run counts as hung.
  std::uint64_t max_cycles = 200000;
  std::size_t memory_words = 4096;
};

/// result = sum(a[i] * b[i]); random vectors of length n.
Workload make_dot_product(std::size_t n, std::uint64_t seed);
/// c = a * b for n x n matrices (row-major).
Workload make_matmul(std::size_t n, std::uint64_t seed);
/// In-place ascending bubble sort of n random words.
Workload make_bubble_sort(std::size_t n, std::uint64_t seed);
/// Rolling xor/rotate checksum over n words.
Workload make_checksum(std::size_t n, std::uint64_t seed);
/// Iterative Fibonacci mod 2^32 up to index n.
Workload make_fibonacci(std::size_t n);
/// Largest element search over n random words.
Workload make_find_max(std::size_t n, std::uint64_t seed);

/// The standard suite at a given data scale.
std::vector<Workload> standard_workloads(std::size_t scale, std::uint64_t seed);

/// Random synthetic program: ALU/memory mix with occasional forward
/// branches, memory-safe addressing, stores spread across the output
/// window. Used for program-population experiments (E7) where the standard
/// kernels are too small to train graph models on.
Workload make_random_program(std::size_t num_instructions, std::uint64_t seed);

}  // namespace lore::arch
