// Selective instruction replication (IPAS [27] / EDDI-style, Sec. III-C1).
// Protected instructions execute twice with shadow operands and compare; a
// soft error in one copy is caught at the first protected use. LORE models
// this with taint tracking: the injected bit marks its register/memory word
// tainted, taint propagates through dataflow, and detection fires when a
// protected instruction reads a tainted operand (the shadow copy would
// disagree there).
#pragma once

#include <vector>

#include "src/arch/fault.hpp"
#include "src/ml/model.hpp"

namespace lore::arch {

class SelectiveReplication {
 public:
  /// `protected_instructions[i]` marks static instruction i as replicated.
  SelectiveReplication(const Workload& workload, std::vector<bool> protected_instructions);

  std::size_t protected_count() const;

  /// Execution-time overhead factor (>= 1): replicated dynamic instructions
  /// run twice plus one compare.
  double slowdown() const;

  /// Taint-simulate one injection under protection; true when the fault is
  /// caught before it can corrupt the output.
  bool detects(const FaultSite& site) const;

  /// Outcome under protection: Detected when caught, otherwise the baseline
  /// outcome of the unprotected run.
  Outcome protected_outcome(const FaultSite& site, const FaultInjector& injector) const;

 private:
  const Workload& workload_;
  std::vector<bool> protected_;
  double slowdown_ = 1.0;
};

/// Protection policies for the E8 comparison.
std::vector<bool> protect_all(const Program& p);
std::vector<bool> protect_none(const Program& p);
/// Heuristic: protect memory and branch instructions (classic symptom
/// surface), ignoring dataflow.
std::vector<bool> protect_heuristic(const Program& p);
/// ML policy: classify each instruction with a trained model over
/// instruction_features; protect those predicted vulnerable.
std::vector<bool> protect_by_model(const Program& p, const ml::Classifier& model);

/// Budget-constrained policy: protect the k instructions with the highest
/// scores (used to compare ranking quality across selectors at equal cost).
std::vector<bool> protect_top_k(const Program& p, std::span<const double> scores,
                                std::size_t k);

struct ReplicationEvaluation {
  double coverage = 0.0;      // caught / originally-failing
  double slowdown = 1.0;
  std::size_t protected_count = 0;
};

/// Evaluate a policy against a fresh campaign of `trials` register faults.
ReplicationEvaluation evaluate_policy(const Workload& w, const std::vector<bool>& policy,
                                      std::size_t trials, lore::Rng& rng);

}  // namespace lore::arch
