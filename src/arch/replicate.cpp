#include "src/arch/replicate.hpp"

#include <algorithm>
#include <cassert>

#include "src/arch/features.hpp"

namespace lore::arch {

SelectiveReplication::SelectiveReplication(const Workload& workload,
                                           std::vector<bool> protected_instructions)
    : workload_(workload), protected_(std::move(protected_instructions)) {
  assert(protected_.size() == workload_.program.size());
  // Dynamic cost from a clean run: each protected dynamic instruction costs
  // two extra cycles (shadow copy + compare).
  Cpu cpu(workload_.memory_words);
  cpu.load_program(workload_.program);
  for (const auto& [addr, value] : workload_.memory_init) cpu.set_mem(addr, value);
  cpu.run(workload_.max_cycles);
  const auto counts = cpu.instruction_counts();
  std::uint64_t total = 0, extra = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    total += counts[i];
    if (protected_[i]) extra += 2 * counts[i];
  }
  slowdown_ = total ? 1.0 + static_cast<double>(extra) / static_cast<double>(total) : 1.0;
}

std::size_t SelectiveReplication::protected_count() const {
  return static_cast<std::size_t>(std::count(protected_.begin(), protected_.end(), true));
}

double SelectiveReplication::slowdown() const { return slowdown_; }

bool SelectiveReplication::detects(const FaultSite& site) const {
  Cpu cpu(workload_.memory_words);
  cpu.load_program(workload_.program);
  for (const auto& [addr, value] : workload_.memory_init) cpu.set_mem(addr, value);

  std::vector<bool> reg_taint(kNumRegisters, false);
  std::vector<bool> mem_taint(workload_.memory_words, false);
  bool instruction_corrupted = false;
  std::size_t corrupted_instruction = 0;

  // Run cleanly to the injection point.
  while (cpu.state() == RunState::kRunning && cpu.cycles() < site.cycle) cpu.step();
  if (cpu.state() != RunState::kRunning) return false;  // program already done

  switch (site.target) {
    case FaultTarget::kRegister:
      cpu.flip_register_bit(site.index, site.bit);
      reg_taint[site.index] = true;
      break;
    case FaultTarget::kMemory:
      cpu.flip_memory_bit(site.index, site.bit);
      mem_taint[site.index] = true;
      break;
    case FaultTarget::kInstruction:
      // Same packed-field corruption as FaultInjector: mark the static
      // instruction as producing tainted results.
      instruction_corrupted = true;
      corrupted_instruction = site.index;
      break;
  }

  // Continue with taint propagation. (For instruction faults the semantic
  // change is not re-simulated here; taint conservatively tracks where the
  // wrong value flows, which is what replication-compare observes.)
  std::uint64_t guard = 0;
  while (cpu.state() == RunState::kRunning && ++guard < workload_.max_cycles) {
    const std::uint32_t pc = cpu.pc();
    if (pc >= workload_.program.size()) break;
    const Instruction& ins = cpu.program()[pc];
    const bool is_protected = protected_[pc];

    // Source taint (including the memory word a load reads).
    bool src_tainted = false;
    for (unsigned r : source_registers(ins)) src_tainted |= reg_taint[r];
    std::uint32_t mem_addr = 0;
    bool mem_valid = false;
    if (is_memory(ins.op)) {
      mem_addr = cpu.reg(ins.rs1) + static_cast<std::uint32_t>(ins.imm);
      mem_valid = mem_addr < workload_.memory_words;
      if (ins.op == Opcode::kLd && mem_valid) src_tainted |= mem_taint[mem_addr];
    }
    const bool self_corrupted = instruction_corrupted && pc == corrupted_instruction;

    // Detection: a protected instruction re-executes on shadow state and
    // compares — any tainted operand or corrupted encoding disagrees.
    if (is_protected && (src_tainted || self_corrupted)) return true;

    // Propagate.
    if (writes_register(ins.op)) reg_taint[ins.rd] = src_tainted || self_corrupted;
    if (ins.op == Opcode::kSt && mem_valid)
      mem_taint[mem_addr] = reg_taint[ins.rs2] || reg_taint[ins.rs1] || self_corrupted;
    // Tainted branch operand diverges control flow; this simple tracker
    // cannot follow both worlds — treat as escaped (undetected).
    if (is_branch(ins.op) && (src_tainted || self_corrupted)) return false;

    cpu.step();
  }
  return false;
}

Outcome SelectiveReplication::protected_outcome(const FaultSite& site,
                                                const FaultInjector& injector) const {
  if (detects(site)) return Outcome::kDetected;
  return injector.inject(site).outcome;
}

std::vector<bool> protect_all(const Program& p) { return std::vector<bool>(p.size(), true); }

std::vector<bool> protect_none(const Program& p) { return std::vector<bool>(p.size(), false); }

std::vector<bool> protect_heuristic(const Program& p) {
  std::vector<bool> out(p.size(), false);
  for (std::size_t i = 0; i < p.size(); ++i)
    out[i] = is_memory(p[i].op) || is_branch(p[i].op);
  return out;
}

std::vector<bool> protect_by_model(const Program& p, const ml::Classifier& model) {
  std::vector<bool> out(p.size(), false);
  for (std::size_t i = 0; i < p.size(); ++i)
    out[i] = model.predict(instruction_features(p, i)) == 1;
  return out;
}

std::vector<bool> protect_top_k(const Program& p, std::span<const double> scores,
                                std::size_t k) {
  assert(scores.size() == p.size());
  std::vector<std::size_t> order(p.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] > scores[b]; });
  std::vector<bool> out(p.size(), false);
  for (std::size_t i = 0; i < std::min(k, order.size()); ++i) out[order[i]] = true;
  return out;
}

ReplicationEvaluation evaluate_policy(const Workload& w, const std::vector<bool>& policy,
                                      std::size_t trials, lore::Rng& rng) {
  FaultInjector injector(w);
  SelectiveReplication repl(w, policy);
  std::size_t failing = 0, caught = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    const auto site = injector.random_site(rng, FaultTarget::kRegister);
    const auto baseline = injector.inject(site).outcome;
    const bool fails = baseline == Outcome::kSdc || baseline == Outcome::kCrash ||
                       baseline == Outcome::kHang;
    if (!fails) continue;
    ++failing;
    caught += repl.detects(site);
  }
  ReplicationEvaluation e;
  e.coverage = failing ? static_cast<double>(caught) / static_cast<double>(failing) : 1.0;
  e.slowdown = repl.slowdown();
  e.protected_count = repl.protected_count();
  return e;
}

}  // namespace lore::arch
