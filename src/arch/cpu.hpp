// Functional CPU model with observable architectural state. Fault injection
// flips bits in registers / memory / instruction encodings mid-run, matching
// the "faults into the flip-flops" methodology the paper discusses for
// architecture-level vulnerability analysis (Sec. III-B1, gemV [19]).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/arch/isa.hpp"

namespace lore::arch {

enum class RunState : std::uint8_t {
  kRunning,
  kHalted,       // clean completion via HALT
  kTrapped,      // invalid memory access / invalid PC (crash)
  kTimedOut,     // exceeded the cycle budget (hang)
};

/// One logged mutation of a memory word (a `St` retire or an injected bit
/// flip). The batched fault-injection engine keeps scratch memory equal to a
/// baseline image between trials by replaying a trial's log in reverse and
/// writing each `before` back — so a 4096-word memory costs O(stores) to
/// restore instead of O(words).
struct MemWrite {
  std::uint32_t addr;
  std::uint32_t before;
  std::uint32_t after;
};

class Cpu {
 public:
  explicit Cpu(std::size_t memory_words = 4096);

  void load_program(Program program);
  /// Reset registers/PC/cycles; memory contents are preserved unless
  /// `clear_memory`.
  void reset(bool clear_memory = false);

  /// Execute one instruction. Returns the new run state.
  RunState step();
  /// Run until halt/trap or `max_cycles`.
  RunState run(std::uint64_t max_cycles);

  /// `step()` without the per-register / per-instruction usage counters.
  /// Architectural state (registers, memory, PC, cycles, run state) evolves
  /// bit-identically to `step()`; only the profiling side tallies are
  /// skipped. The campaign hot path uses this — profiling features are a
  /// golden-run product, never a per-trial one.
  RunState step_fast();
  /// `run()` on top of `step_fast()`.
  RunState run_fast(std::uint64_t max_cycles);

  /// Record every memory-word mutation (St stores and injected memory-bit
  /// flips — NOT `set_mem`, which is the restore primitive itself) into
  /// `log`. Pass nullptr to stop logging. The log is append-only; callers
  /// own truncation.
  void set_write_log(std::vector<MemWrite>* log) { write_log_ = log; }

  /// Bulk-restore architectural state from a snapshot. These write exactly
  /// the named field; no counters, logs, or derived state are touched.
  void restore_registers(std::span<const std::uint32_t> regs);
  void set_pc(std::uint32_t pc) { pc_ = pc; }
  void set_cycles(std::uint64_t cycles) { cycles_ = cycles; }
  void set_state(RunState state) { state_ = state; }

  RunState state() const { return state_; }
  std::uint64_t cycles() const { return cycles_; }
  std::uint32_t pc() const { return pc_; }

  std::uint32_t reg(std::size_t index) const;
  void set_reg(std::size_t index, std::uint32_t value);
  std::uint32_t mem(std::size_t word) const;
  void set_mem(std::size_t word, std::uint32_t value);
  std::size_t memory_words() const { return memory_.size(); }
  std::span<const std::uint32_t> memory() const { return memory_; }

  const Program& program() const { return program_; }
  /// Mutable access for instruction-encoding faults.
  Program& mutable_program() { return program_; }

  /// Flip one bit of a register (bit < 32).
  void flip_register_bit(std::size_t reg, unsigned bit);
  /// Flip one bit of a memory word.
  void flip_memory_bit(std::size_t word, unsigned bit);

  /// Per-register dynamic usage counters (reads/writes so far), useful for
  /// vulnerability features.
  std::span<const std::uint64_t> register_reads() const { return reg_reads_; }
  std::span<const std::uint64_t> register_writes() const { return reg_writes_; }
  /// Count of dynamic executions per static instruction index.
  std::span<const std::uint64_t> instruction_counts() const { return inst_counts_; }

 private:
  /// Shared interpreter body; `Profile` compiles the usage counters in/out.
  template <bool Profile>
  RunState step_impl();

  Program program_;
  std::vector<std::uint32_t> regs_;
  std::vector<std::uint32_t> memory_;
  std::uint32_t pc_ = 0;
  std::uint64_t cycles_ = 0;
  RunState state_ = RunState::kRunning;
  std::vector<std::uint64_t> reg_reads_;
  std::vector<std::uint64_t> reg_writes_;
  std::vector<std::uint64_t> inst_counts_;
  std::vector<MemWrite>* write_log_ = nullptr;
};

}  // namespace lore::arch
