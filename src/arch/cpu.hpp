// Functional CPU model with observable architectural state. Fault injection
// flips bits in registers / memory / instruction encodings mid-run, matching
// the "faults into the flip-flops" methodology the paper discusses for
// architecture-level vulnerability analysis (Sec. III-B1, gemV [19]).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/arch/isa.hpp"

namespace lore::arch {

enum class RunState : std::uint8_t {
  kRunning,
  kHalted,       // clean completion via HALT
  kTrapped,      // invalid memory access / invalid PC (crash)
  kTimedOut,     // exceeded the cycle budget (hang)
};

class Cpu {
 public:
  explicit Cpu(std::size_t memory_words = 4096);

  void load_program(Program program);
  /// Reset registers/PC/cycles; memory contents are preserved unless
  /// `clear_memory`.
  void reset(bool clear_memory = false);

  /// Execute one instruction. Returns the new run state.
  RunState step();
  /// Run until halt/trap or `max_cycles`.
  RunState run(std::uint64_t max_cycles);

  RunState state() const { return state_; }
  std::uint64_t cycles() const { return cycles_; }
  std::uint32_t pc() const { return pc_; }

  std::uint32_t reg(std::size_t index) const;
  void set_reg(std::size_t index, std::uint32_t value);
  std::uint32_t mem(std::size_t word) const;
  void set_mem(std::size_t word, std::uint32_t value);
  std::size_t memory_words() const { return memory_.size(); }
  std::span<const std::uint32_t> memory() const { return memory_; }

  const Program& program() const { return program_; }
  /// Mutable access for instruction-encoding faults.
  Program& mutable_program() { return program_; }

  /// Flip one bit of a register (bit < 32).
  void flip_register_bit(std::size_t reg, unsigned bit);
  /// Flip one bit of a memory word.
  void flip_memory_bit(std::size_t word, unsigned bit);

  /// Per-register dynamic usage counters (reads/writes so far), useful for
  /// vulnerability features.
  std::span<const std::uint64_t> register_reads() const { return reg_reads_; }
  std::span<const std::uint64_t> register_writes() const { return reg_writes_; }
  /// Count of dynamic executions per static instruction index.
  std::span<const std::uint64_t> instruction_counts() const { return inst_counts_; }

 private:
  std::uint32_t read_reg(unsigned r);
  void write_reg(unsigned r, std::uint32_t v);

  Program program_;
  std::vector<std::uint32_t> regs_;
  std::vector<std::uint32_t> memory_;
  std::uint32_t pc_ = 0;
  std::uint64_t cycles_ = 0;
  RunState state_ = RunState::kRunning;
  std::vector<std::uint64_t> reg_reads_;
  std::vector<std::uint64_t> reg_writes_;
  std::vector<std::uint64_t> inst_counts_;
};

}  // namespace lore::arch
