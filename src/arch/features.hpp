// Feature extraction for the architecture-level ML experiments:
//  - per-register features for flip-flop vulnerability prediction (E5, [20]);
//  - per-instruction features for IPAS-style classification (E8, [27]);
//  - the heterogeneous program graph of [24] (E7): instruction nodes with
//    data-dependency and control-adjacency edges.
#pragma once

#include <span>
#include <vector>

#include "src/arch/fault.hpp"
#include "src/arch/workloads.hpp"
#include "src/ml/dataset.hpp"
#include "src/ml/graph.hpp"

namespace lore::arch {

/// Number of per-register features.
inline constexpr std::size_t kRegisterFeatureDim = 7;

/// Features of one architectural register for a workload: dynamic read/write
/// counts, read/write ratio, static fan-out, address/branch usage flags, and
/// the fraction of instructions reading it.
std::vector<double> register_features(const Workload& w, std::size_t reg);

/// Number of per-instruction features.
inline constexpr std::size_t kInstructionFeatureDim = 10;

/// Features of one static instruction: opcode class indicators, operand
/// counts, static result fan-out before redefinition, distance to the next
/// store/branch (fault-to-observable latency proxies), position.
std::vector<double> instruction_features(const Program& p, std::size_t idx);

/// Build the heterogeneous program graph: one node per instruction with
/// instruction_features; edge type 0 = data dependency (def -> first uses),
/// edge type 1 = control adjacency (fall-through / branch target).
ml::FeatureGraph build_program_graph(const Program& p);

/// Labeled per-register vulnerability dataset from an injection campaign:
/// a register is "vulnerable" (label 1) when the failure fraction of
/// injections into it exceeds `threshold`.
ml::Dataset register_vulnerability_dataset(const Workload& w,
                                           const std::vector<FaultRecord>& register_campaign,
                                           double threshold);

/// Per-instruction labels from an instruction-encoding campaign: label 1 when
/// the instruction's injections fail more often than `threshold`. Entries
/// with no observations get label 0.
std::vector<int> instruction_vulnerability_labels(
    const Program& p, const std::vector<FaultRecord>& instruction_campaign, double threshold);

/// Number of fault-site features (see FaultSiteFeaturizer).
inline constexpr std::size_t kFaultSiteFeatureDim = 6 + kRegisterFeatureDim;

/// Fault-descriptor featurization for the online predict-and-prune campaign
/// loop (DESIGN.md §13). Construction precomputes everything expensive once
/// per workload (per-register feature table, normalization constants);
/// `featurize` is then allocation-free and cheap enough to score every trial
/// of a chunk before execution. Feature layout:
///   [0..2]  target one-hot (register / memory / instruction)
///   [3]     site index normalized by the target's site count
///   [4]     bit position / 32
///   [5]     injection cycle / golden cycle count
///   [6..]   the target register's `register_features` (zero for memory and
///           instruction targets)
class FaultSiteFeaturizer {
 public:
  FaultSiteFeaturizer(const Workload& w, std::uint64_t golden_cycles);

  /// Write kFaultSiteFeatureDim features for `site` into `out`.
  void featurize(const FaultSite& site, std::span<double> out) const;

 private:
  double inv_cycles_ = 0.0;
  double inv_mem_ = 0.0;
  double inv_prog_ = 0.0;
  std::vector<double> reg_features_;  // kNumRegisters x kRegisterFeatureDim
};

/// Per-instruction SDC-proneness labels (for the graph experiment, E7):
/// classes are the argmax outcome of injections attributed to the
/// instruction: 0=benign-dominant, 1=SDC-dominant, 2=crash/hang-dominant.
/// Instructions with no attributed injections get label -1 (unlabeled).
std::vector<int> instruction_outcome_labels(const Program& p,
                                            const std::vector<FaultRecord>& campaign);

}  // namespace lore::arch
