// Structured AVF reporting (gemV-style [19]): break an injection campaign
// down per architectural structure — per register, per instruction class,
// per outcome — so the vulnerable parts of the design are visible at a
// glance and selective protection has a target list.
#pragma once

#include <string>
#include <vector>

#include "src/arch/fault.hpp"

namespace lore::arch {

struct StructureAvf {
  std::string structure;
  std::size_t injections = 0;
  OutcomeMix mix;
  double avf = 0.0;  // failure fraction
};

/// Per-register AVF from a register-target campaign.
std::vector<StructureAvf> avf_by_register(const std::vector<FaultRecord>& campaign);

/// Per-opcode-class AVF from an instruction-target campaign over `p`.
/// Classes: alu / memory / branch / immediate / other.
std::vector<StructureAvf> avf_by_instruction_class(const Program& p,
                                                   const std::vector<FaultRecord>& campaign);

/// Per-bit-range AVF (low byte / mid / high byte of the 32-bit word) from a
/// register campaign — high bits of addresses crash, low bits of data SDC.
std::vector<StructureAvf> avf_by_bit_range(const std::vector<FaultRecord>& campaign);

/// Render a report as an aligned text table.
std::string render_avf_report(const std::vector<StructureAvf>& rows);

}  // namespace lore::arch
