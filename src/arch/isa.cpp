#include "src/arch/isa.hpp"

#include <cassert>
#include <cctype>
#include <sstream>
#include <unordered_map>

namespace lore::arch {
namespace {

Instruction make(Opcode op, unsigned rd, unsigned rs1, unsigned rs2, std::int32_t imm) {
  assert(rd < kNumRegisters && rs1 < kNumRegisters && rs2 < kNumRegisters);
  return Instruction{op, static_cast<std::uint8_t>(rd), static_cast<std::uint8_t>(rs1),
                     static_cast<std::uint8_t>(rs2), imm};
}

}  // namespace

Instruction nop() { return make(Opcode::kNop, 0, 0, 0, 0); }
Instruction add(unsigned rd, unsigned rs1, unsigned rs2) { return make(Opcode::kAdd, rd, rs1, rs2, 0); }
Instruction sub(unsigned rd, unsigned rs1, unsigned rs2) { return make(Opcode::kSub, rd, rs1, rs2, 0); }
Instruction mul(unsigned rd, unsigned rs1, unsigned rs2) { return make(Opcode::kMul, rd, rs1, rs2, 0); }
Instruction and_(unsigned rd, unsigned rs1, unsigned rs2) { return make(Opcode::kAnd, rd, rs1, rs2, 0); }
Instruction or_(unsigned rd, unsigned rs1, unsigned rs2) { return make(Opcode::kOr, rd, rs1, rs2, 0); }
Instruction xor_(unsigned rd, unsigned rs1, unsigned rs2) { return make(Opcode::kXor, rd, rs1, rs2, 0); }
Instruction shl(unsigned rd, unsigned rs1, unsigned rs2) { return make(Opcode::kShl, rd, rs1, rs2, 0); }
Instruction shr(unsigned rd, unsigned rs1, unsigned rs2) { return make(Opcode::kShr, rd, rs1, rs2, 0); }
Instruction addi(unsigned rd, unsigned rs1, std::int32_t imm) { return make(Opcode::kAddi, rd, rs1, 0, imm); }
Instruction li(unsigned rd, std::int32_t imm) { return make(Opcode::kLi, rd, 0, 0, imm); }
Instruction ld(unsigned rd, unsigned rs1, std::int32_t offset) { return make(Opcode::kLd, rd, rs1, 0, offset); }
Instruction st(unsigned rs2, unsigned rs1, std::int32_t offset) { return make(Opcode::kSt, 0, rs1, rs2, offset); }
Instruction beq(unsigned rs1, unsigned rs2, std::int32_t target) { return make(Opcode::kBeq, 0, rs1, rs2, target); }
Instruction bne(unsigned rs1, unsigned rs2, std::int32_t target) { return make(Opcode::kBne, 0, rs1, rs2, target); }
Instruction blt(unsigned rs1, unsigned rs2, std::int32_t target) { return make(Opcode::kBlt, 0, rs1, rs2, target); }
Instruction jmp(std::int32_t target) { return make(Opcode::kJmp, 0, 0, 0, target); }
Instruction halt() { return make(Opcode::kHalt, 0, 0, 0, 0); }

bool writes_register(Opcode op) {
  switch (op) {
    case Opcode::kAdd: case Opcode::kSub: case Opcode::kMul: case Opcode::kAnd:
    case Opcode::kOr: case Opcode::kXor: case Opcode::kShl: case Opcode::kShr:
    case Opcode::kAddi: case Opcode::kLi: case Opcode::kLd:
      return true;
    default:
      return false;
  }
}

bool is_branch(Opcode op) {
  return op == Opcode::kBeq || op == Opcode::kBne || op == Opcode::kBlt ||
         op == Opcode::kJmp;
}

bool is_memory(Opcode op) { return op == Opcode::kLd || op == Opcode::kSt; }

std::vector<unsigned> source_registers(const Instruction& ins) {
  switch (ins.op) {
    case Opcode::kAdd: case Opcode::kSub: case Opcode::kMul: case Opcode::kAnd:
    case Opcode::kOr: case Opcode::kXor: case Opcode::kShl: case Opcode::kShr:
    case Opcode::kBeq: case Opcode::kBne: case Opcode::kBlt:
      return {ins.rs1, ins.rs2};
    case Opcode::kAddi: case Opcode::kLd:
      return {ins.rs1};
    case Opcode::kSt:
      return {ins.rs1, ins.rs2};
    default:
      return {};
  }
}

std::string opcode_name(Opcode op) {
  switch (op) {
    case Opcode::kNop: return "nop";
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kShl: return "shl";
    case Opcode::kShr: return "shr";
    case Opcode::kAddi: return "addi";
    case Opcode::kLi: return "li";
    case Opcode::kLd: return "ld";
    case Opcode::kSt: return "st";
    case Opcode::kBeq: return "beq";
    case Opcode::kBne: return "bne";
    case Opcode::kBlt: return "blt";
    case Opcode::kJmp: return "jmp";
    case Opcode::kHalt: return "halt";
  }
  return "?";
}

std::string to_string(const Instruction& ins) {
  std::ostringstream os;
  os << opcode_name(ins.op);
  switch (ins.op) {
    case Opcode::kAdd: case Opcode::kSub: case Opcode::kMul: case Opcode::kAnd:
    case Opcode::kOr: case Opcode::kXor: case Opcode::kShl: case Opcode::kShr:
      os << " r" << +ins.rd << ", r" << +ins.rs1 << ", r" << +ins.rs2;
      break;
    case Opcode::kAddi:
      os << " r" << +ins.rd << ", r" << +ins.rs1 << ", " << ins.imm;
      break;
    case Opcode::kLi:
      os << " r" << +ins.rd << ", " << ins.imm;
      break;
    case Opcode::kLd:
      os << " r" << +ins.rd << ", " << ins.imm << "(r" << +ins.rs1 << ")";
      break;
    case Opcode::kSt:
      os << " r" << +ins.rs2 << ", " << ins.imm << "(r" << +ins.rs1 << ")";
      break;
    case Opcode::kBeq: case Opcode::kBne: case Opcode::kBlt:
      os << " r" << +ins.rs1 << ", r" << +ins.rs2 << ", " << ins.imm;
      break;
    case Opcode::kJmp:
      os << " " << ins.imm;
      break;
    default:
      break;
  }
  return os.str();
}

namespace {

struct Token {
  std::string text;
};

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : line) {
    if (c == ';') break;  // comment
    if (std::isspace(static_cast<unsigned char>(c)) || c == ',' || c == '(' || c == ')') {
      if (!cur.empty()) out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

bool parse_reg(const std::string& t, unsigned* reg) {
  if (t.size() < 2 || (t[0] != 'r' && t[0] != 'R')) return false;
  const int v = std::stoi(t.substr(1));
  if (v < 0 || v >= static_cast<int>(kNumRegisters)) return false;
  *reg = static_cast<unsigned>(v);
  return true;
}

}  // namespace

std::optional<Program> assemble(const std::string& source, std::string* error) {
  auto fail = [&](const std::string& msg) -> std::optional<Program> {
    if (error) *error = msg;
    return std::nullopt;
  };

  // Pass 1: collect labels and raw token lines.
  std::unordered_map<std::string, std::int32_t> labels;
  std::vector<std::vector<std::string>> lines;
  std::istringstream is(source);
  std::string raw;
  while (std::getline(is, raw)) {
    auto tokens = tokenize(raw);
    if (tokens.empty()) continue;
    while (!tokens.empty() && tokens[0].back() == ':') {
      labels[tokens[0].substr(0, tokens[0].size() - 1)] =
          static_cast<std::int32_t>(lines.size());
      tokens.erase(tokens.begin());
    }
    if (!tokens.empty()) lines.push_back(std::move(tokens));
  }

  auto parse_target = [&](const std::string& t, std::int32_t* target) {
    if (auto it = labels.find(t); it != labels.end()) {
      *target = it->second;
      return true;
    }
    try {
      *target = std::stoi(t);
      return true;
    } catch (...) {
      return false;
    }
  };

  // Pass 2: encode.
  Program prog;
  for (std::size_t ln = 0; ln < lines.size(); ++ln) {
    const auto& t = lines[ln];
    const std::string& op = t[0];
    unsigned a = 0, b = 0, c = 0;
    std::int32_t imm = 0;
    auto bad = [&] { return fail("line " + std::to_string(ln) + ": malformed '" + op + "'"); };

    if (op == "nop") { prog.push_back(nop()); continue; }
    if (op == "halt") { prog.push_back(halt()); continue; }
    if (op == "jmp") {
      if (t.size() != 2 || !parse_target(t[1], &imm)) return bad();
      prog.push_back(jmp(imm));
      continue;
    }
    if (op == "li") {
      if (t.size() != 3 || !parse_reg(t[1], &a)) return bad();
      try { imm = std::stoi(t[2]); } catch (...) { return bad(); }
      prog.push_back(li(a, imm));
      continue;
    }
    if (op == "addi") {
      if (t.size() != 4 || !parse_reg(t[1], &a) || !parse_reg(t[2], &b)) return bad();
      try { imm = std::stoi(t[3]); } catch (...) { return bad(); }
      prog.push_back(addi(a, b, imm));
      continue;
    }
    if (op == "ld" || op == "st") {
      // ld rd, off(rs1)  -> tokens: [ld, rd, off, rs1]
      if (t.size() != 4 || !parse_reg(t[1], &a) || !parse_reg(t[3], &b)) return bad();
      try { imm = std::stoi(t[2]); } catch (...) { return bad(); }
      prog.push_back(op == "ld" ? ld(a, b, imm) : st(a, b, imm));
      continue;
    }
    if (op == "beq" || op == "bne" || op == "blt") {
      if (t.size() != 4 || !parse_reg(t[1], &a) || !parse_reg(t[2], &b) ||
          !parse_target(t[3], &imm))
        return bad();
      if (op == "beq") prog.push_back(beq(a, b, imm));
      else if (op == "bne") prog.push_back(bne(a, b, imm));
      else prog.push_back(blt(a, b, imm));
      continue;
    }
    // Three-register ALU ops.
    static const std::unordered_map<std::string, Opcode> kAlu = {
        {"add", Opcode::kAdd}, {"sub", Opcode::kSub}, {"mul", Opcode::kMul},
        {"and", Opcode::kAnd}, {"or", Opcode::kOr},   {"xor", Opcode::kXor},
        {"shl", Opcode::kShl}, {"shr", Opcode::kShr}};
    if (auto it = kAlu.find(op); it != kAlu.end()) {
      if (t.size() != 4 || !parse_reg(t[1], &a) || !parse_reg(t[2], &b) ||
          !parse_reg(t[3], &c))
        return bad();
      prog.push_back(Instruction{it->second, static_cast<std::uint8_t>(a),
                                 static_cast<std::uint8_t>(b), static_cast<std::uint8_t>(c), 0});
      continue;
    }
    return fail("line " + std::to_string(ln) + ": unknown opcode '" + op + "'");
  }
  return prog;
}

}  // namespace lore::arch
