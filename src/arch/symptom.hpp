// Symptom-based error detection (Sec. III-C2):
//  - ActivationAnomalyDetector watches intermediate activations of a mission
//    DNN and flags corrupted inferences ([30]: a small two-hidden-layer MLP
//    detecting misclassification-causing faults with high recall/precision
//    at a few percent compute overhead);
//  - InputPerturbationMonitor is the WarningNet-style ([32]) early-warning
//    model: a small network running alongside the mission task that predicts
//    from the raw input whether noise/environmental perturbation will make
//    the task fail.
#pragma once

#include <cstdint>

#include "src/common/rng.hpp"
#include "src/ml/dataset.hpp"
#include "src/ml/metrics.hpp"
#include "src/ml/mlp.hpp"
#include "src/obs/health.hpp"

namespace lore::arch {

/// Streaming EWMA k-sigma detector for scalar telemetry series (temperature,
/// error rate, throughput). The implementation lives in the obs layer because
/// the self-monitoring health loop (DESIGN.md §10) runs below this library in
/// the link order; this alias is the architecture-level name for the same
/// Sec. III-B3 symptom machinery.
using EwmaSymptomDetector = lore::obs::EwmaDetector;

/// Indices of anomalous epochs in `series` under EWMA k-sigma detection —
/// the batch convenience over EwmaSymptomDetector for offline fleet logs.
std::vector<std::size_t> ewma_symptom_epochs(const std::vector<double>& series,
                                             double alpha = 0.3, double k_sigma = 4.0,
                                             std::size_t warmup = 3);

/// Per-layer activation statistics (mean, std, max-abs, top-2 margin) — a
/// compact summary used for reporting and by lightweight monitors.
std::vector<double> activation_statistics(const std::vector<std::vector<double>>& layers);

/// Concatenated raw activations of every layer — the detector's input
/// representation ([30] feeds intermediate outputs directly; unit identity
/// matters for predicting whether a fault flips the prediction).
std::vector<double> flatten_activations(const std::vector<std::vector<double>>& layers);

struct AnomalyDetectorConfig {
  /// Corrupted-activation magnitude (simulates a high-exponent bit flip).
  double fault_magnitude = 50.0;
  std::size_t train_samples = 2400;
  ml::MlpConfig detector{.hidden = {20, 20}, .epochs = 300};
  std::uint64_t seed = 61;
};

class ActivationAnomalyDetector {
 public:
  explicit ActivationAnomalyDetector(AnomalyDetectorConfig cfg = {}) : cfg_(cfg) {}

  /// Train against a mission network over its input distribution. Positive
  /// class = "this inference carries a fault that changes the prediction".
  void train(const ml::Mlp& mission, const ml::Matrix& inputs);

  /// Flag an inference given its layer activations.
  bool flags(const std::vector<std::vector<double>>& layers) const;

  /// Compute overhead: detector parameters / mission parameters.
  double overhead_fraction(const ml::Mlp& mission) const;

  struct Evaluation {
    double recall = 0.0;     // of misclassification-causing faults
    double precision = 0.0;
    double overhead = 0.0;
  };
  /// Held-out evaluation with fresh fault injections.
  Evaluation evaluate(const ml::Mlp& mission, const ml::Matrix& inputs,
                      std::size_t samples, std::uint64_t seed) const;

 private:
  /// Inject one activation fault; returns (stats, prediction_changed).
  std::pair<std::vector<double>, bool> faulty_inference(const ml::Mlp& mission,
                                                        std::span<const double> input,
                                                        lore::Rng& rng) const;

  AnomalyDetectorConfig cfg_;
  ml::MlpClassifier detector_{ml::MlpConfig{}};
  bool trained_ = false;
};

struct WarningNetConfig {
  std::size_t train_samples = 900;
  /// Perturbation strengths sampled during training (uniform 0..max).
  double max_noise = 3.0;
  ml::MlpConfig monitor{.hidden = {8}, .epochs = 250};
  std::uint64_t seed = 67;
};

/// Early-warning input monitor: predicts task failure from the (possibly
/// perturbed) input itself, before/alongside the mission inference.
class InputPerturbationMonitor {
 public:
  explicit InputPerturbationMonitor(WarningNetConfig cfg = {}) : cfg_(cfg) {}

  void train(const ml::Mlp& mission, const ml::Matrix& clean_inputs);

  /// Probability-like warning score for an input.
  double warning_score(std::span<const double> input) const;
  bool warns(std::span<const double> input) const { return warning_score(input) > 0.5; }

  /// Speed advantage: mission parameter count / monitor parameter count
  /// (WarningNet's "1/20th of the time" claim is a parameter-ratio proxy).
  double speedup_vs_mission(const ml::Mlp& mission) const;

  struct Evaluation {
    double recall = 0.0;      // at the 0.5 warning threshold
    double precision = 0.0;
    /// Ranking quality of the warning score over failures: the headline
    /// metric for an early-warning system whose alarm threshold is tuned
    /// downstream (failure base rates are low by construction).
    double auc = 0.5;
    double speedup = 0.0;
  };
  Evaluation evaluate(const ml::Mlp& mission, const ml::Matrix& clean_inputs,
                      std::size_t samples, std::uint64_t seed) const;

  /// Noise-level features of a sensor frame: statistics of the deviation
  /// from the nominal {-1, +1} signal alphabet.
  static std::vector<double> monitor_features(std::span<const double> input);

 private:
  WarningNetConfig cfg_;
  ml::MlpClassifier monitor_{ml::MlpConfig{}};
  bool trained_ = false;
};

}  // namespace lore::arch
