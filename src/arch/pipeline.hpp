// Cycle-accurate 5-stage in-order pipeline (IF/ID/EX/MEM/WB) with injectable
// pipeline-stage latches. Section V's error model says "a cycle is erroneous
// if any register of a pipeline stage contains a wrong value"; this machine
// makes that statement concrete: faults strike the actual latch fields
// (fetched instruction, read operands, ALU result, writeback value, PC), and
// the architectural outcome is measured against a golden run — linking the
// architecture layer to the per-cycle error probability p that the Section V
// analysis abstracts.
#pragma once

#include <array>
#include <cstdint>

#include "src/arch/cpu.hpp"
#include "src/arch/fault.hpp"
#include "src/arch/workloads.hpp"

namespace lore::arch {

/// The injectable latch fields of the pipeline.
enum class LatchField : std::uint8_t {
  kPc,            // fetch program counter
  kIfIdInstr,     // fetched instruction encoding (packed-field corruption)
  kIdExOperandA,  // first read operand value
  kIdExOperandB,  // second read operand / store data
  kExMemAlu,      // ALU result / memory address
  kMemWbValue,    // writeback value
};

struct PipelineFaultSite {
  LatchField field = LatchField::kExMemAlu;
  unsigned bit = 0;         // bit position (instruction field bits for kIfIdInstr)
  std::uint64_t cycle = 0;  // injection time
};

class PipelineCpu {
 public:
  // Pipeline-stage latches. Public because Snapshot (the batched campaign
  // engine's restore unit) carries them; injection still goes through
  // run_with_fault, never by poking latches directly.
  struct IfId {
    bool valid = false;
    Instruction ins{};
  };
  struct IdEx {
    bool valid = false;
    Instruction ins{};
    std::uint32_t a = 0, b = 0;       // operand values after forwarding
    std::uint32_t store_val = 0;      // rs2 value for stores
  };
  struct ExMem {
    bool valid = false;
    Instruction ins{};
    std::uint32_t alu = 0;            // result or memory address
    std::uint32_t store_val = 0;
  };
  struct MemWb {
    bool valid = false;
    Instruction ins{};
    std::uint32_t value = 0;
  };

  /// Full machine state minus memory (register file, PC, latches, counters).
  /// Memory is deliberately excluded: the batched campaign engine restores it
  /// via an undo log of `MemWrite`s, which is O(stores) instead of O(words).
  struct Snapshot {
    std::uint64_t cycles = 0;
    std::uint32_t pc = 0;
    std::uint64_t retired = 0;
    std::uint64_t stalls = 0;
    std::uint64_t flushes = 0;
    RunState state = RunState::kRunning;
    bool halt_seen = false;
    IfId if_id{};
    IdEx id_ex{};
    ExMem ex_mem{};
    MemWb mem_wb{};
    std::array<std::uint32_t, kNumRegisters> regs{};
  };

  explicit PipelineCpu(std::size_t memory_words = 4096);

  void load_program(Program program);
  void reset(bool clear_memory = false);

  /// Advance one clock cycle.
  RunState step();
  RunState run(std::uint64_t max_cycles);
  /// Run and inject one latch fault at the site's cycle.
  RunState run_with_fault(std::uint64_t max_cycles, const PipelineFaultSite& site);

  RunState state() const { return state_; }
  std::uint64_t cycles() const { return cycles_; }
  std::uint32_t reg(std::size_t index) const;
  std::uint32_t mem(std::size_t word) const;
  void set_mem(std::size_t word, std::uint32_t value);
  std::size_t memory_words() const { return memory_.size(); }
  std::span<const std::uint32_t> memory() const { return memory_; }

  /// Capture / restore everything but memory (see Snapshot).
  Snapshot capture() const;
  void restore(const Snapshot& snap);

  /// Record every retired store (and nothing else — `set_mem` is the restore
  /// primitive) into `log`; nullptr stops logging.
  void set_write_log(std::vector<MemWrite>* log) { write_log_ = log; }

  /// Dynamic instruction count retired (for CPI accounting).
  std::uint64_t instructions_retired() const { return retired_; }
  double cpi() const {
    return retired_ ? static_cast<double>(cycles_) / static_cast<double>(retired_) : 0.0;
  }
  std::uint64_t stall_cycles() const { return stalls_; }
  std::uint64_t flush_cycles() const { return flushes_; }

 private:
  void apply_fault(const PipelineFaultSite& site);

  Program program_;
  std::vector<std::uint32_t> regs_;
  std::vector<std::uint32_t> memory_;
  std::uint32_t pc_ = 0;
  std::uint64_t cycles_ = 0;
  std::uint64_t retired_ = 0;
  std::uint64_t stalls_ = 0;
  std::uint64_t flushes_ = 0;
  RunState state_ = RunState::kRunning;
  bool halt_seen_ = false;  // stop fetching once HALT enters the pipe

  IfId if_id_{};
  IdEx id_ex_{};
  ExMem ex_mem_{};
  MemWb mem_wb_{};
  std::vector<MemWrite>* write_log_ = nullptr;
};

/// Run a workload on the pipeline and compare architectural results against
/// the functional CPU's golden run; returns true when they agree.
bool pipeline_matches_golden(const Workload& w);

/// Outcome of a single pipeline-latch fault on a workload.
Outcome pipeline_inject(const Workload& w, const PipelineFaultSite& site);

/// Campaign of random latch faults on the resilient runtime (checkpoint/
/// resume, deadlines, partial reports — src/common/campaign.hpp); returns the
/// outcome records plus the campaign report. The FaultSite in each record
/// carries the field in `index` and bit/cycle. Counter-based per-trial
/// seeding: bit-identical for every thread count and across interrupt/resume.
CampaignResult<FaultRecord> pipeline_campaign_run(const Workload& w,
                                                  const CampaignSpec& spec);

/// Convenience: records of `pipeline_campaign_run`.
std::vector<FaultRecord> pipeline_campaign(const Workload& w, const CampaignSpec& spec);

/// Copy of `spec` with the campaign's domain fingerprint filled in when
/// empty — the identity the fabric coordinator validates shard payloads
/// against (runs the clean pipeline probe to learn the cycle count).
CampaignSpec pipeline_campaign_spec(const Workload& w, const CampaignSpec& spec);

/// Fabric worker entry point: run trials [range.begin, range.end) of the
/// latch-fault campaign — identical per-trial seeding and site distribution
/// to `pipeline_campaign_run` — returned as a LORECKP1-ready checkpoint
/// payload (DESIGN.md §12).
CampaignCheckpoint pipeline_campaign_shard(const Workload& w, const CampaignSpec& spec,
                                           TrialRange range);

/// Decode a merged fabric checkpoint of this campaign kind into records.
CampaignResult<FaultRecord> pipeline_records_from_checkpoint(
    const CampaignSpec& spec, const CampaignCheckpoint& ck);

/// Positional convenience over the spec entry point (no checkpointing).
std::vector<FaultRecord> pipeline_campaign(const Workload& w, std::size_t trials,
                                           std::uint64_t base_seed, unsigned threads = 0);

/// Derived quantity for Section V: the probability that a random single-bit
/// latch upset corrupts architectural state (i.e. the fraction of non-benign
/// outcomes). Multiplying a raw per-cycle upset rate by this factor yields
/// the effective per-cycle error probability p of the Sec. V model.
double architectural_corruption_factor(const std::vector<FaultRecord>& campaign);

}  // namespace lore::arch
