// Concrete cross-layer environment for the Fig. 1 loop: the agent controls a
// core's V-f level under a stochastically varying workload; the reward fuses
// models from three abstraction layers — energy (circuit), soft-error rate
// (architecture), and wear-out MTTF (device) — through the resiliency model
// registry. This is the "run-time cross-layer reliability improvement" the
// paper calls out as the key open challenge (Sec. VI-A), built from LORE's
// own substrates.
#pragma once

#include "src/core/framework.hpp"
#include "src/device/lifetime.hpp"
#include "src/os/platform.hpp"
#include "src/os/ser.hpp"

namespace lore::core {

struct CrossLayerConfig {
  std::size_t temp_bins = 6;
  std::size_t load_bins = 4;
  double temp_lo_k = 315.0;
  double temp_hi_k = 400.0;
  double temp_limit_k = 365.0;
  /// Reward weights over the layer models.
  double w_energy = 1.0;
  double w_ser = 2.0;
  double w_mttf = 1.5;
  double w_temp = 6.0;
  /// Workload arrival: demanded utilization random walk.
  double load_volatility = 0.15;
  double control_dt_s = 0.05;
  std::uint64_t seed = 101;
};

class CrossLayerEnvironment final : public ReliabilityEnvironment {
 public:
  explicit CrossLayerEnvironment(CrossLayerConfig cfg = {});

  std::size_t num_states() const override;
  std::size_t num_actions() const override { return platform_.ladder().size(); }
  std::size_t reset() override;
  StepResult step(std::size_t action) override;
  std::string name() const override { return "crosslayer-vf"; }

  const ResiliencyModelRegistry& registry() const { return registry_; }
  double temperature_k() const { return platform_.core(0).temperature_k; }
  double demanded_load() const { return demanded_load_; }

 private:
  std::size_t encode() const;

  CrossLayerConfig cfg_;
  os::Platform platform_;
  os::SerModel ser_{};
  ResiliencyModelRegistry registry_;
  lore::Rng rng_;
  double demanded_load_ = 0.5;
};

}  // namespace lore::core
