// The paper's Fig. 1 in code: a learning-based reliability manager is an
// agent observing states, taking actions (optimization knobs), and optimizing
// a reward built from resiliency models (MTTF, MWTF, SER, temperature). This
// module provides the generic loop; concrete environments live next door
// (crosslayer.hpp) and in src/os (the DVFS governor is the same pattern
// specialized for the simulator).
#pragma once

#include <functional>
#include <memory>
#include <map>
#include <string>
#include <vector>

#include "src/ml/qlearning.hpp"

namespace lore::core {

/// A discrete reliability-management environment.
class ReliabilityEnvironment {
 public:
  virtual ~ReliabilityEnvironment() = default;

  virtual std::size_t num_states() const = 0;
  virtual std::size_t num_actions() const = 0;
  /// Reset to an initial state; returns it.
  virtual std::size_t reset() = 0;

  struct StepResult {
    std::size_t next_state = 0;
    double reward = 0.0;
    bool terminal = false;
  };
  virtual StepResult step(std::size_t action) = 0;
  virtual std::string name() const = 0;
};

/// Registry of resiliency models (Fig. 1's "resiliency models" box): named
/// providers mapping an observation vector to a reliability figure of merit.
class ResiliencyModelRegistry {
 public:
  using Model = std::function<double(std::span<const double>)>;

  void register_model(const std::string& name, Model model);
  bool has(const std::string& name) const;
  double evaluate(const std::string& name, std::span<const double> observation) const;
  std::vector<std::string> names() const;

 private:
  std::map<std::string, Model> models_;
};

struct TrainingReport {
  /// Mean reward per episode over training (the learning curve).
  std::vector<double> episode_rewards;

  /// Mean reward over the first / last `window` episodes — the improvement
  /// the Fig. 1 loop is supposed to deliver.
  double early_mean(std::size_t window = 10) const;
  double late_mean(std::size_t window = 10) const;
};

/// The learning controller of Fig. 1: tabular Q-learning over the
/// environment (the survey's most common choice for run-time management).
class LearningController {
 public:
  explicit LearningController(ml::QLearnerConfig cfg = {}) : cfg_(cfg) {}

  /// Train for `episodes` of at most `steps_per_episode` steps.
  TrainingReport train(ReliabilityEnvironment& env, std::size_t episodes,
                       std::size_t steps_per_episode);

  /// Greedy action for a state (after training).
  std::size_t policy(std::size_t state) const;
  /// Average reward of running the greedy policy.
  double evaluate(ReliabilityEnvironment& env, std::size_t episodes,
                  std::size_t steps_per_episode) const;

  bool trained() const { return learner_ != nullptr; }

 private:
  ml::QLearnerConfig cfg_;
  std::unique_ptr<ml::QLearner> learner_;
};

}  // namespace lore::core
