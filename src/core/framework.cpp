#include "src/core/framework.hpp"

#include <cassert>
#include <numeric>

namespace lore::core {

void ResiliencyModelRegistry::register_model(const std::string& name, Model model) {
  assert(model != nullptr);
  models_[name] = std::move(model);
}

bool ResiliencyModelRegistry::has(const std::string& name) const {
  return models_.count(name) > 0;
}

double ResiliencyModelRegistry::evaluate(const std::string& name,
                                         std::span<const double> observation) const {
  const auto it = models_.find(name);
  assert(it != models_.end());
  return it->second(observation);
}

std::vector<std::string> ResiliencyModelRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(models_.size());
  for (const auto& [name, model] : models_) out.push_back(name);
  return out;
}

double TrainingReport::early_mean(std::size_t window) const {
  if (episode_rewards.empty()) return 0.0;
  const std::size_t n = std::min(window, episode_rewards.size());
  return std::accumulate(episode_rewards.begin(),
                         episode_rewards.begin() + static_cast<std::ptrdiff_t>(n), 0.0) /
         static_cast<double>(n);
}

double TrainingReport::late_mean(std::size_t window) const {
  if (episode_rewards.empty()) return 0.0;
  const std::size_t n = std::min(window, episode_rewards.size());
  return std::accumulate(episode_rewards.end() - static_cast<std::ptrdiff_t>(n),
                         episode_rewards.end(), 0.0) /
         static_cast<double>(n);
}

TrainingReport LearningController::train(ReliabilityEnvironment& env, std::size_t episodes,
                                         std::size_t steps_per_episode) {
  learner_ = std::make_unique<ml::QLearner>(env.num_states(), env.num_actions(), cfg_);
  TrainingReport report;
  report.episode_rewards.reserve(episodes);
  for (std::size_t e = 0; e < episodes; ++e) {
    std::size_t state = env.reset();
    double total = 0.0;
    std::size_t steps = 0;
    for (; steps < steps_per_episode; ++steps) {
      const auto action = learner_->select_action(state);
      const auto result = env.step(action);
      learner_->update(state, action, result.reward, result.next_state, 0, result.terminal);
      total += result.reward;
      state = result.next_state;
      if (result.terminal) break;
    }
    learner_->end_episode();
    report.episode_rewards.push_back(total / static_cast<double>(std::max<std::size_t>(1, steps)));
  }
  return report;
}

std::size_t LearningController::policy(std::size_t state) const {
  assert(trained());
  return learner_->best_action(state);
}

double LearningController::evaluate(ReliabilityEnvironment& env, std::size_t episodes,
                                    std::size_t steps_per_episode) const {
  assert(trained());
  double total = 0.0;
  std::size_t count = 0;
  for (std::size_t e = 0; e < episodes; ++e) {
    std::size_t state = env.reset();
    for (std::size_t s = 0; s < steps_per_episode; ++s) {
      const auto result = env.step(learner_->best_action(state));
      total += result.reward;
      ++count;
      state = result.next_state;
      if (result.terminal) break;
    }
  }
  return count ? total / static_cast<double>(count) : 0.0;
}

}  // namespace lore::core
