#include "src/core/crosslayer.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lore::core {

CrossLayerEnvironment::CrossLayerEnvironment(CrossLayerConfig cfg)
    : cfg_(cfg), platform_({os::make_big_core()}), rng_(cfg.seed) {
  // Register the per-layer resiliency models (Fig. 1's model box).
  // Observation layout: {voltage, freq_ghz, temperature_k, utilization}.
  registry_.register_model("energy", [](std::span<const double> obs) {
    return obs[0] * obs[0] * obs[1] * obs[3];  // dynamic CV^2 f proxy
  });
  registry_.register_model("ser", [this](std::span<const double> obs) {
    const os::VfLevel level{obs[0], obs[1]};
    return ser_.rate_per_s(level, platform_.ladder());
  });
  registry_.register_model("mttf", [](std::span<const double> obs) {
    static const auto mechanisms = device::standard_mechanisms();
    device::LifetimeCondition cond;
    cond.vdd = obs[0];
    cond.temperature = obs[2];
    cond.duty_cycle = std::max(0.05, obs[3]);
    cond.toggle_rate_ghz = obs[1] * obs[3];
    return device::combined_mttf_years(mechanisms, cond);
  });
}

std::size_t CrossLayerEnvironment::num_states() const {
  return cfg_.temp_bins * cfg_.load_bins * platform_.ladder().size();
}

std::size_t CrossLayerEnvironment::encode() const {
  const double tn = (platform_.core(0).temperature_k - cfg_.temp_lo_k) /
                    (cfg_.temp_hi_k - cfg_.temp_lo_k);
  auto tb = static_cast<std::ptrdiff_t>(tn * static_cast<double>(cfg_.temp_bins));
  tb = std::clamp<std::ptrdiff_t>(tb, 0, static_cast<std::ptrdiff_t>(cfg_.temp_bins) - 1);
  auto lb = static_cast<std::ptrdiff_t>(demanded_load_ * static_cast<double>(cfg_.load_bins));
  lb = std::clamp<std::ptrdiff_t>(lb, 0, static_cast<std::ptrdiff_t>(cfg_.load_bins) - 1);
  return (static_cast<std::size_t>(tb) * cfg_.load_bins + static_cast<std::size_t>(lb)) *
             platform_.ladder().size() +
         platform_.core(0).vf_index;
}

std::size_t CrossLayerEnvironment::reset() {
  platform_ = os::Platform({os::make_big_core()});
  demanded_load_ = rng_.uniform(0.2, 0.9);
  return encode();
}

ReliabilityEnvironment::StepResult CrossLayerEnvironment::step(std::size_t action) {
  assert(action < platform_.ladder().size());
  platform_.set_vf(0, action);

  // Workload random walk.
  demanded_load_ =
      std::clamp(demanded_load_ + rng_.normal(0.0, cfg_.load_volatility), 0.05, 1.0);
  // Delivered utilization: demand scaled by how much capacity the level has
  // relative to the top level (too-slow levels leave work undone AND run at
  // full utilization).
  const auto& level = platform_.ladder()[action];
  const double capacity_ratio = level.freq_ghz / platform_.max_freq_ghz();
  const double utilization = std::min(1.0, demanded_load_ / capacity_ratio);
  const double undone = std::max(0.0, demanded_load_ - capacity_ratio);

  platform_.step(cfg_.control_dt_s, {utilization});

  const double obs[] = {level.voltage, level.freq_ghz, platform_.core(0).temperature_k,
                        utilization};
  const double energy = registry_.evaluate("energy", obs);
  const double ser = registry_.evaluate("ser", obs);
  const double mttf = registry_.evaluate("mttf", obs);
  const double temp_excess =
      std::max(0.0, platform_.core(0).temperature_k - cfg_.temp_limit_k) / 10.0;

  StepResult r;
  // Reward: cheap, reliable (low SER / long MTTF), cool, and keeping up with
  // demand. log-MTTF keeps the scale comparable across mechanisms.
  r.reward = -cfg_.w_energy * energy - cfg_.w_ser * std::log10(ser / 1e-6) -
             cfg_.w_temp * temp_excess + cfg_.w_mttf * std::log10(std::max(1e-3, mttf)) -
             4.0 * undone;
  r.next_state = encode();
  r.terminal = false;
  return r;
}

}  // namespace lore::core
