#include "src/device/transistor.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lore::device {

double Transistor::vth(const OperatingPoint& op) const {
  // Threshold drops with temperature, rises with aging-induced shift.
  return p_.vth0 - p_.vth_temp_coeff * (op.temperature - kT0) + op.delta_vth;
}

bool Transistor::in_cutoff(const OperatingPoint& op) const {
  return op.vdd - vth(op) <= 0.0;
}

double Transistor::saturation_current(const OperatingPoint& op) const {
  const double overdrive = op.vdd - vth(op);
  if (overdrive <= 0.0) return 0.0;
  // Mobility degradation with channel temperature.
  const double mobility_scale =
      std::pow(op.temperature / kT0, -p_.mobility_temp_exp);
  return p_.k_per_um * p_.width_um * mobility_scale * std::pow(overdrive, p_.alpha);
}

double Transistor::effective_resistance(const OperatingPoint& op) const {
  const double id = saturation_current(op);
  // Clamp to a large-but-finite resistance: a cutoff device still leaks.
  constexpr double kMaxResistance = 1e9;
  if (id <= 0.0) return kMaxResistance;
  return std::min(kMaxResistance, op.vdd / id);
}

StageTiming GateStage::timing(const Transistor& dev, double in_slew_ps, double load_ff,
                              const OperatingPoint& op) const {
  assert(in_slew_ps >= 0.0 && load_ff >= 0.0);
  const double r_ohm = dev.effective_resistance(op);
  const double c_farad = (load_ff + p_.parasitic_cap_ff) * 1e-15;
  const double rc_ps = r_ohm * c_farad * 1e12;
  StageTiming t;
  // Elmore-style 50% delay plus the input-slew shift of the switching point.
  t.delay_ps = 0.69 * rc_ps + p_.slew_sensitivity * in_slew_ps;
  // 10-90 output transition of a single-pole stage, mildly degraded by slow
  // inputs (the stage conducts partially during the input ramp).
  t.out_slew_ps = 2.2 * rc_ps + 0.05 * in_slew_ps;
  return t;
}

StageTiming GateStage::rise(double in_slew_ps, double load_ff,
                            const OperatingPoint& op) const {
  return timing(Transistor(p_.pullup), in_slew_ps, load_ff, op);
}

StageTiming GateStage::fall(double in_slew_ps, double load_ff,
                            const OperatingPoint& op) const {
  return timing(Transistor(p_.pulldown), in_slew_ps, load_ff, op);
}

double GateStage::switching_energy(double in_slew_ps, double load_ff,
                                   const OperatingPoint& op) const {
  const double c_farad = (load_ff + p_.parasitic_cap_ff) * 1e-15;
  const double dynamic = 0.5 * c_farad * op.vdd * op.vdd;
  // Short-circuit energy: both networks conduct while the input crosses the
  // threshold band; grows with input slew and drive strength.
  const Transistor nmos(p_.pulldown);
  const double i_peak = nmos.saturation_current(op);
  const double short_circuit = 0.1 * i_peak * op.vdd * (in_slew_ps * 1e-12);
  return dynamic + short_circuit;
}

}  // namespace lore::device
