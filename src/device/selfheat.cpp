#include "src/device/selfheat.hpp"

#include <cassert>
#include <cmath>

namespace lore::device {

double SelfHeatingModel::thermal_resistance(const TransistorParams& device) const {
  assert(device.width_um > 0.0);
  const double confinement =
      1.0 + p_.confinement_per_fin * static_cast<double>(device.num_fins > 0 ? device.num_fins - 1 : 0);
  return p_.rth_base_k_per_w * confinement / device.width_um;
}

double SelfHeatingModel::temperature_rise(const GateStage& stage,
                                          const ActivityProfile& activity,
                                          const OperatingPoint& op) const {
  assert(activity.toggle_rate_ghz >= 0.0);
  // Average dissipated power: energy per toggle times toggle frequency.
  const double energy_j = stage.switching_energy(activity.in_slew_ps, activity.load_ff, op);
  const double avg_power_w = energy_j * activity.toggle_rate_ghz * 1e9;
  // The channel heats through the *drive* devices; use the pull-down as the
  // representative geometry (NMOS carries the larger current density).
  const double rth = thermal_resistance(stage.params().pulldown);
  // Low-pass of the toggle train: bursts shorter than tau do not fully heat.
  const double duty_smoothing =
      1.0 - std::exp(-activity.toggle_rate_ghz * p_.tau_ns);
  return rth * avg_power_w * duty_smoothing;
}

}  // namespace lore::device
