// Transistor aging models: NBTI (reaction-diffusion power law) and HCI.
// In the paper these are the "confidential physics-based models" that
// foundries calibrate and do not share (Sec. II); LORE implements an open
// parameterization that serves as ground truth for the HDC mimicry
// experiment (E4) and feeds the lifetime models.
#pragma once

#include "src/device/transistor.hpp"

namespace lore::device {

/// Stress history summary for an aging evaluation.
struct StressCondition {
  double vdd = 0.8;              // stress voltage (V)
  double temperature = 330.0;    // channel temperature including SHE (K)
  double duty_cycle = 0.5;       // fraction of time the device is under stress
  double toggle_rate_ghz = 0.5;  // switching activity (drives HCI)
  double years = 5.0;            // stress duration
};

struct NbtiParams {
  double a = 0.006;        // technology prefactor (V at 1 year reference)
  double n = 1.0 / 6.0;    // reaction-diffusion time exponent
  double ea_ev = 0.08;     // activation energy (eV)
  double gamma = 2.2;      // voltage acceleration exponent
  double vref = 0.8;       // reference stress voltage
};

/// Negative bias temperature instability: threshold shift of PMOS devices
/// under negative gate bias. Partial-recovery captured by the duty factor.
class NbtiModel {
 public:
  explicit NbtiModel(NbtiParams params = {}) : p_(params) {}

  /// Threshold voltage shift (V, >= 0) after the given stress.
  double delta_vth(const StressCondition& stress) const;

 private:
  NbtiParams p_;
};

struct HciParams {
  double b = 0.0035;       // prefactor (V at reference condition, 1 year)
  double n = 0.5;          // time exponent (diffusion-limited)
  double gamma = 3.0;      // drain-voltage acceleration
  double vref = 0.8;
  double toggle_ref_ghz = 1.0;  // HCI damage scales with switching events
  double ea_ev = -0.02;    // weakly negative: HCI worsens at low temperature
};

/// Hot-carrier injection: damage accumulates per switching event.
class HciModel {
 public:
  explicit HciModel(HciParams params = {}) : p_(params) {}

  double delta_vth(const StressCondition& stress) const;

 private:
  HciParams p_;
};

/// Combined aging: NBTI + HCI threshold shifts (independent mechanisms,
/// first-order additive).
class AgingModel {
 public:
  AgingModel() = default;
  AgingModel(NbtiParams nbti, HciParams hci) : nbti_(nbti), hci_(hci) {}

  double delta_vth(const StressCondition& stress) const {
    return nbti_.delta_vth(stress) + hci_.delta_vth(stress);
  }
  const NbtiModel& nbti() const { return nbti_; }
  const HciModel& hci() const { return hci_; }

 private:
  NbtiModel nbti_;
  HciModel hci_;
};

/// Convert years to seconds (Julian year).
constexpr double years_to_seconds(double years) { return years * 365.25 * 86400.0; }

}  // namespace lore::device
