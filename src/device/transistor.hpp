// Analytical transistor and gate-delay model — the "simulated SPICE"
// substrate (DESIGN.md substitution #1). Foundry-calibrated physics models
// are proprietary (Sec. II of the paper); this alpha-power-law model plays
// their role: it is the ground truth that characterization sweeps query and
// that the ML models must learn to mimic.
#pragma once

#include <cstddef>

namespace lore::device {

/// Boltzmann constant in eV/K, used by every Arrhenius term in this module.
inline constexpr double kBoltzmannEv = 8.617333262e-5;
/// Reference temperature for parameter extraction (K).
inline constexpr double kT0 = 300.0;

enum class ChannelType { kNmos, kPmos };

/// Parameters of the alpha-power-law MOSFET model (Sakurai-Newton style).
struct TransistorParams {
  ChannelType channel = ChannelType::kNmos;
  double vth0 = 0.35;          // zero-bias threshold voltage at kT0 (V)
  double alpha = 1.3;          // velocity-saturation exponent
  double k_per_um = 6.0e-4;    // transconductance per um of width (A/V^alpha)
  double width_um = 0.5;       // drawn width
  std::size_t num_fins = 2;    // fin count (confinement proxy for SHE)
  double vth_temp_coeff = 8e-4;    // dVth/dT magnitude (V/K); Vth drops with T
  double mobility_temp_exp = 1.5;  // mobility ~ (T/T0)^-exp
};

/// Operating condition for a single evaluation.
struct OperatingPoint {
  double vdd = 0.8;            // supply (V)
  double temperature = 300.0;  // channel temperature (K)
  double delta_vth = 0.0;      // aging-induced threshold shift (V, >= 0)
};

class Transistor {
 public:
  explicit Transistor(TransistorParams params) : p_(params) {}

  const TransistorParams& params() const { return p_; }

  /// Effective threshold voltage including temperature and aging shifts.
  double vth(const OperatingPoint& op) const;
  /// Saturation drain current (A). Zero when gate overdrive <= 0.
  double saturation_current(const OperatingPoint& op) const;
  /// Effective switching resistance Vdd / Id_sat (ohm); large when the
  /// device barely turns on.
  double effective_resistance(const OperatingPoint& op) const;
  /// True when the operating point leaves no gate overdrive (cutoff).
  bool in_cutoff(const OperatingPoint& op) const;

 private:
  TransistorParams p_;
};

/// First-order gate-stage delay model built on a pull-up/pull-down pair.
/// Delay and output slew follow the classic RC + input-slew degradation form
/// used by NLDM characterization.
struct GateStageParams {
  TransistorParams pulldown{};  // NMOS
  TransistorParams pullup{.channel = ChannelType::kPmos, .k_per_um = 3.0e-4};
  double parasitic_cap_ff = 1.2;   // output diffusion capacitance (fF)
  double input_cap_ff = 0.9;       // gate input pin capacitance (fF)
  /// Fraction of the input transition time that delays the switch point.
  double slew_sensitivity = 0.18;
};

struct StageTiming {
  double delay_ps = 0.0;       // 50%-to-50% propagation delay
  double out_slew_ps = 0.0;    // 10%-90% output transition
};

class GateStage {
 public:
  explicit GateStage(GateStageParams params) : p_(params) {}

  const GateStageParams& params() const { return p_; }

  /// Rising-output timing (pull-up path) for the given input slew (ps) and
  /// output load (fF) at the operating point.
  StageTiming rise(double in_slew_ps, double load_ff, const OperatingPoint& op) const;
  /// Falling-output timing (pull-down path).
  StageTiming fall(double in_slew_ps, double load_ff, const OperatingPoint& op) const;

  /// Energy of one output toggle (J): dynamic CV^2 plus a short-circuit term
  /// growing with input slew. Used by the self-heating model.
  double switching_energy(double in_slew_ps, double load_ff, const OperatingPoint& op) const;

  double input_cap_ff() const { return p_.input_cap_ff; }

 private:
  StageTiming timing(const Transistor& dev, double in_slew_ps, double load_ff,
                     const OperatingPoint& op) const;

  GateStageParams p_;
};

}  // namespace lore::device
