#include "src/device/lifetime.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/common/stats.hpp"

namespace lore::device {
namespace {

/// Arrhenius acceleration factor relative to a reference temperature
/// (higher T -> shorter life).
double arrhenius(double ea_ev, double temperature, double ref_temperature) {
  return std::exp(ea_ev / kBoltzmannEv * (1.0 / temperature - 1.0 / ref_temperature));
}

}  // namespace

double ElectromigrationModel::mttf_years(const LifetimeCondition& c) const {
  assert(c.current_density > 0.0 && c.temperature > 0.0);
  return p_.mttf_ref_years * std::pow(c.current_density, -p_.current_exponent) *
         arrhenius(p_.ea_ev, c.temperature, p_.ref_temperature_k);
}

double TddbModel::mttf_years(const LifetimeCondition& c) const {
  assert(c.temperature > 0.0);
  return p_.mttf_ref_years * std::exp(-p_.voltage_gamma * (c.vdd - p_.vref)) *
         arrhenius(p_.ea_ev, c.temperature, p_.ref_temperature_k);
}

double ThermalCyclingModel::mttf_years(const LifetimeCondition& c) const {
  assert(c.thermal_cycle_amplitude >= 0.0);
  if (c.thermal_cycles_per_day <= 0.0 || c.thermal_cycle_amplitude <= 0.0)
    return 1e6;  // no cycling: mechanism effectively absent
  const double nf = p_.cycles_to_failure_ref *
                    std::pow(c.thermal_cycle_amplitude / p_.delta_t_ref,
                             -p_.coffin_manson_exponent);
  return nf / (c.thermal_cycles_per_day * 365.25);
}

double NbtiLifetimeModel::mttf_years(const LifetimeCondition& c) const {
  StressCondition unit_stress{.vdd = c.vdd,
                              .temperature = c.temperature,
                              .duty_cycle = c.duty_cycle,
                              .toggle_rate_ghz = c.toggle_rate_ghz,
                              .years = 1.0};
  const double dvth_at_1y = nbti_.delta_vth(unit_stress);
  if (dvth_at_1y <= 0.0) return 1e6;
  // Power law dVth = k * t^n  =>  t_fail = (crit/k)^(1/n); k folds in duty,
  // so recompute via the 1-year evaluation: k = dvth_at_1y.
  return std::pow(p_.critical_delta_vth / dvth_at_1y, 1.0 / nbti_params_.n);
}

double HciLifetimeModel::mttf_years(const LifetimeCondition& c) const {
  StressCondition unit_stress{.vdd = c.vdd,
                              .temperature = c.temperature,
                              .duty_cycle = c.duty_cycle,
                              .toggle_rate_ghz = c.toggle_rate_ghz,
                              .years = 1.0};
  const double dvth_at_1y = hci_.delta_vth(unit_stress);
  if (dvth_at_1y <= 0.0) return 1e6;
  return std::pow(p_.critical_delta_vth / dvth_at_1y, 1.0 / hci_params_.n);
}

std::vector<std::unique_ptr<WearoutMechanism>> standard_mechanisms() {
  std::vector<std::unique_ptr<WearoutMechanism>> out;
  out.push_back(std::make_unique<ElectromigrationModel>());
  out.push_back(std::make_unique<TddbModel>());
  out.push_back(std::make_unique<ThermalCyclingModel>());
  out.push_back(std::make_unique<NbtiLifetimeModel>());
  out.push_back(std::make_unique<HciLifetimeModel>());
  return out;
}

double combined_mttf_years(const std::vector<std::unique_ptr<WearoutMechanism>>& mechanisms,
                           const LifetimeCondition& c) {
  assert(!mechanisms.empty());
  double rate = 0.0;
  for (const auto& m : mechanisms) {
    const double mttf = m->mttf_years(c);
    assert(mttf > 0.0);
    rate += 1.0 / mttf;
  }
  return 1.0 / rate;
}

MonteCarloLifetimeResult monte_carlo_lifetime(
    const std::vector<std::unique_ptr<WearoutMechanism>>& mechanisms,
    const LifetimeCondition& c, std::size_t trials, double weibull_shape, lore::Rng& rng) {
  assert(trials > 0 && weibull_shape > 0.0);
  // Weibull mean = scale * Gamma(1 + 1/shape); invert for the scale.
  const double gamma_factor = std::tgamma(1.0 + 1.0 / weibull_shape);
  std::vector<double> scales;
  scales.reserve(mechanisms.size());
  for (const auto& m : mechanisms) scales.push_back(m->mttf_years(c) / gamma_factor);

  std::vector<double> lifetimes(trials);
  for (std::size_t t = 0; t < trials; ++t) {
    double first_failure = 1e30;
    for (double scale : scales)
      first_failure = std::min(first_failure, rng.weibull(weibull_shape, scale));
    lifetimes[t] = first_failure;
  }
  MonteCarloLifetimeResult r;
  r.mean_years = lore::mean(lifetimes);
  r.p10_years = lore::quantile(lifetimes, 0.10);
  r.p50_years = lore::quantile(lifetimes, 0.50);
  return r;
}

}  // namespace lore::device
