// Device-level lifetime (wear-out) models and MTTF combination, per the
// paper's Sec. IV-B1 list: electromigration (EM, Black's equation), time-
// dependent dielectric breakdown (TDDB), thermal cycling (TC, Coffin-Manson),
// NBTI, and HCI. These feed the OS-level lifetime-reliability manager.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/device/aging.hpp"

namespace lore::device {

/// Operating summary of one component (core / functional unit) over which
/// lifetime is evaluated.
struct LifetimeCondition {
  double temperature = 330.0;        // average junction temperature (K)
  double vdd = 0.8;                  // operating voltage (V)
  double current_density = 1.0;      // normalized interconnect J / J_ref
  double thermal_cycle_amplitude = 10.0;  // ΔT of repeated cycles (K)
  double thermal_cycles_per_day = 24.0;   // power/idle cycles frequency
  double duty_cycle = 0.5;           // active-stress fraction (NBTI)
  double toggle_rate_ghz = 0.5;      // switching activity (HCI)
};

/// A wear-out mechanism maps a condition to a characteristic MTTF in years.
class WearoutMechanism {
 public:
  virtual ~WearoutMechanism() = default;
  virtual double mttf_years(const LifetimeCondition& c) const = 0;
  virtual std::string name() const = 0;
};

struct EmParams {
  double mttf_ref_years = 80.0;  // MTTF at J=J_ref and the reference temperature
  double ref_temperature_k = 345.0;  // qualification temperature of the ref MTTF
  double current_exponent = 2.0;     // Black's n
  double ea_ev = 0.9;
};

/// Electromigration via Black's equation: MTTF ∝ J^-n · exp(Ea/kT).
class ElectromigrationModel final : public WearoutMechanism {
 public:
  explicit ElectromigrationModel(EmParams p = {}) : p_(p) {}
  double mttf_years(const LifetimeCondition& c) const override;
  std::string name() const override { return "EM"; }

 private:
  EmParams p_;
};

struct TddbParams {
  double mttf_ref_years = 120.0;  // at vref and the reference temperature
  double ref_temperature_k = 345.0;
  double voltage_gamma = 9.0;     // exponential voltage acceleration (1/V)
  double vref = 0.8;
  double ea_ev = 0.75;
};

/// Time-dependent dielectric breakdown: strong voltage + temperature
/// acceleration of gate-oxide failure.
class TddbModel final : public WearoutMechanism {
 public:
  explicit TddbModel(TddbParams p = {}) : p_(p) {}
  double mttf_years(const LifetimeCondition& c) const override;
  std::string name() const override { return "TDDB"; }

 private:
  TddbParams p_;
};

struct ThermalCyclingParams {
  double cycles_to_failure_ref = 1.5e6;  // at ΔT_ref
  double delta_t_ref = 20.0;             // reference cycle amplitude (K)
  double coffin_manson_exponent = 2.35;
};

/// Thermal cycling via Coffin-Manson: N_f ∝ (ΔT)^-q; MTTF = N_f / f_cycle.
class ThermalCyclingModel final : public WearoutMechanism {
 public:
  explicit ThermalCyclingModel(ThermalCyclingParams p = {}) : p_(p) {}
  double mttf_years(const LifetimeCondition& c) const override;
  std::string name() const override { return "TC"; }

 private:
  ThermalCyclingParams p_;
};

struct VthLifetimeParams {
  double critical_delta_vth = 0.05;  // failure criterion (V)
};

/// NBTI lifetime: time until the reaction-diffusion ΔVth crosses the critical
/// threshold, inverted from the NbtiModel power law.
class NbtiLifetimeModel final : public WearoutMechanism {
 public:
  NbtiLifetimeModel(NbtiParams nbti = {}, VthLifetimeParams p = {})
      : nbti_(nbti), nbti_params_(nbti), p_(p) {}
  double mttf_years(const LifetimeCondition& c) const override;
  std::string name() const override { return "NBTI"; }

 private:
  NbtiModel nbti_;
  NbtiParams nbti_params_;
  VthLifetimeParams p_;
};

/// HCI lifetime: same criterion against the HCI ΔVth power law.
class HciLifetimeModel final : public WearoutMechanism {
 public:
  HciLifetimeModel(HciParams hci = {}, VthLifetimeParams p = {})
      : hci_(hci), hci_params_(hci), p_(p) {}
  double mttf_years(const LifetimeCondition& c) const override;
  std::string name() const override { return "HCI"; }

 private:
  HciModel hci_;
  HciParams hci_params_;
  VthLifetimeParams p_;
};

/// Build the standard five-mechanism set with default parameters.
std::vector<std::unique_ptr<WearoutMechanism>> standard_mechanisms();

/// Combined MTTF under the sum-of-failure-rates (competing exponential)
/// approximation: 1 / Σ (1/MTTF_i).
double combined_mttf_years(const std::vector<std::unique_ptr<WearoutMechanism>>& mechanisms,
                           const LifetimeCondition& c);

struct MonteCarloLifetimeResult {
  double mean_years = 0.0;
  double p10_years = 0.0;   // 10th percentile (early failures)
  double p50_years = 0.0;
};

/// Monte Carlo system lifetime: per mechanism sample a Weibull with the given
/// shape whose mean equals the mechanism MTTF; system fails at the earliest
/// mechanism failure. More faithful than sum-of-rates for shape != 1.
MonteCarloLifetimeResult monte_carlo_lifetime(
    const std::vector<std::unique_ptr<WearoutMechanism>>& mechanisms,
    const LifetimeCondition& c, std::size_t trials, double weibull_shape, lore::Rng& rng);

}  // namespace lore::device
