// Transistor self-heating (SHE) model, Sec. II / Fig. 2-3 of the paper.
// Heat generated in a confined 3D channel (nanosheet / ribbon FET) cannot
// dissipate and raises the channel temperature above chip temperature. The
// experienced SHE depends on transistor geometry AND on how the cell is used
// in the circuit (input slew, load capacitance, switching activity), which is
// why per-instance characterization (Fig. 2) shows a wide temperature spread
// even with few distinct cell types.
#pragma once

#include "src/device/transistor.hpp"

namespace lore::device {

struct SelfHeatingParams {
  /// Baseline thermal resistance channel->ambient for a 1um planar device
  /// (K/W). Confined geometries scale this up steeply.
  double rth_base_k_per_w = 2.5e6;
  /// Extra confinement factor per fin beyond the first: fewer escape paths.
  double confinement_per_fin = 0.35;
  /// Thermal time constant (ns); activity above 1/tau effectively averages.
  double tau_ns = 90.0;
};

/// Activity profile of one cell instance in its circuit context.
struct ActivityProfile {
  double toggle_rate_ghz = 0.5;   // output toggles per ns
  double in_slew_ps = 20.0;       // input transition time seen by the cell
  double load_ff = 3.0;           // capacitive load driven by the cell
};

class SelfHeatingModel {
 public:
  explicit SelfHeatingModel(SelfHeatingParams params = {}) : p_(params) {}

  /// Effective thermal resistance of a device (K/W), growing with fin count
  /// (confinement) and shrinking with width (more parallel heat paths).
  double thermal_resistance(const TransistorParams& device) const;

  /// Steady-state channel temperature rise above chip temperature (K) for a
  /// gate stage with the given activity at the operating point.
  double temperature_rise(const GateStage& stage, const ActivityProfile& activity,
                          const OperatingPoint& op) const;

 private:
  SelfHeatingParams p_;
};

}  // namespace lore::device
