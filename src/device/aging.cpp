#include "src/device/aging.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lore::device {

double NbtiModel::delta_vth(const StressCondition& stress) const {
  assert(stress.years >= 0.0 && stress.duty_cycle >= 0.0 && stress.duty_cycle <= 1.0);
  if (stress.years <= 0.0 || stress.duty_cycle <= 0.0) return 0.0;
  // Reaction-diffusion power law with Arrhenius temperature acceleration and
  // exponential voltage acceleration. Effective stress time = duty * t.
  const double time_term = std::pow(stress.duty_cycle * stress.years, p_.n);
  const double volt_term = std::exp(p_.gamma * (stress.vdd - p_.vref));
  const double temp_term =
      std::exp(-p_.ea_ev / kBoltzmannEv * (1.0 / stress.temperature - 1.0 / kT0));
  return p_.a * time_term * volt_term * temp_term;
}

double HciModel::delta_vth(const StressCondition& stress) const {
  assert(stress.years >= 0.0);
  if (stress.years <= 0.0 || stress.toggle_rate_ghz <= 0.0) return 0.0;
  const double time_term = std::pow(stress.years, p_.n);
  const double activity_term = std::sqrt(stress.toggle_rate_ghz / p_.toggle_ref_ghz);
  const double volt_term = std::exp(p_.gamma * (stress.vdd - p_.vref));
  const double temp_term =
      std::exp(-p_.ea_ev / kBoltzmannEv * (1.0 / stress.temperature - 1.0 / kT0));
  return p_.b * time_term * activity_term * volt_term * temp_term;
}

}  // namespace lore::device
