#include "src/obs/ring.hpp"

#include <cstdlib>

#include "src/obs/flight.hpp"
#include "src/obs/span.hpp"

namespace lore::obs {

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kTrialCompleted: return "trial_completed";
    case EventKind::kTrialTimeout: return "trial_timeout";
    case EventKind::kTrialRetry: return "trial_retry";
    case EventKind::kTrialFailed: return "trial_failed";
    case EventKind::kCheckpointWritten: return "checkpoint_written";
    case EventKind::kSpanBegin: return "span_begin";
    case EventKind::kSpanEnd: return "span_end";
    case EventKind::kAlert: return "alert";
    case EventKind::kTrialsPruned: return "trials_pruned";
    case EventKind::kShardBegin: return "shard_begin";
    case EventKind::kShardEnd: return "shard_end";
  }
  return "?";
}

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

EventRing::EventRing(std::size_t capacity) {
  const std::size_t cap = round_up_pow2(capacity < 2 ? 2 : capacity);
  mask_ = cap - 1;
  cells_ = std::make_unique<Cell[]>(cap);
  for (std::size_t i = 0; i < cap; ++i)
    cells_[i].seq.store(i, std::memory_order_relaxed);
}

bool EventRing::try_push(const Event& e) {
  Cell* cell;
  std::uint64_t pos = head_.load(std::memory_order_relaxed);
  for (;;) {
    cell = &cells_[pos & mask_];
    const std::uint64_t seq = cell->seq.load(std::memory_order_acquire);
    const auto dif =
        static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
    if (dif == 0) {
      if (head_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed))
        break;  // claimed this cell
    } else if (dif < 0) {
      // The cell one lap back has not been consumed: the ring is full. Never
      // block the hot path — account the drop and move on.
      dropped_.fetch_add(1, std::memory_order_relaxed);
      if (Counter* c = drop_counter_.load(std::memory_order_acquire)) c->add(1);
      return false;
    } else {
      pos = head_.load(std::memory_order_relaxed);
    }
  }
  cell->event = e;
  cell->seq.store(pos + 1, std::memory_order_release);
  pushed_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool EventRing::try_pop(Event& out) {
  Cell* cell;
  std::uint64_t pos = tail_.load(std::memory_order_relaxed);
  for (;;) {
    cell = &cells_[pos & mask_];
    const std::uint64_t seq = cell->seq.load(std::memory_order_acquire);
    const auto dif =
        static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos + 1);
    if (dif == 0) {
      if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed))
        break;
    } else if (dif < 0) {
      return false;  // empty
    } else {
      pos = tail_.load(std::memory_order_relaxed);
    }
  }
  out = cell->event;
  cell->seq.store(pos + mask_ + 1, std::memory_order_release);
  return true;
}

std::size_t EventRing::drain(std::vector<Event>& out, std::size_t max) {
  std::size_t n = 0;
  Event e;
  while (n < max && try_pop(e)) {
    out.push_back(e);
    ++n;
  }
  return n;
}

EventRing& EventRing::global() {
  static EventRing ring([] {
    if (const char* v = std::getenv("LORE_EVENT_RING")) {
      const long cap = std::atol(v);
      if (cap > 1) return static_cast<std::size_t>(cap);
    }
    return std::size_t{8192};
  }());
  return ring;
}

bool event_stream_enabled() {
  return EventRing::global().enabled() || FlightRecorder::global().active();
}

void emit_event(EventKind kind, std::uint64_t a, double value,
                std::string_view label) {
  Event e;
  e.kind = kind;
  e.tid = TraceRecorder::thread_id();
  e.t_us = TraceRecorder::now_us();
  e.a = a;
  e.value = value;
  e.span = current_trace_context().span;
  if (!label.empty()) e.set_label(label);
  if (EventRing::global().enabled()) EventRing::global().try_push(e);
  FlightRecorder& flight = FlightRecorder::global();
  if (flight.active()) flight.record(kind, a, value, e.span, label);
}

}  // namespace lore::obs
