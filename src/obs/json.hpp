// Minimal JSON document model for the observability sinks: build a value,
// dump it deterministically (objects keep insertion order), parse it back.
// Covers the full JSON grammar we emit — objects, arrays, strings with
// escapes, integers, doubles, booleans, null — with nothing beyond the
// standard library, so `BENCH_*.json`, metric exports, and Chrome traces
// round-trip without an external dependency.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <type_traits>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lore::obs {

class Json;
using JsonMembers = std::vector<std::pair<std::string, Json>>;

/// Thrown by Json::parse on malformed input. Carries the byte offset where
/// the parser gave up so callers holding the original text (e.g. the
/// scenario-spec file loader) can convert it to a line:column diagnostic;
/// the what() string keeps the established "json parse error at byte N"
/// form for callers that only catch std::runtime_error.
class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(std::size_t offset, const std::string& what)
      : std::runtime_error("json parse error at byte " + std::to_string(offset) + ": " +
                           what),
        offset_(offset) {}

  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  template <typename T,
            typename = std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>>>
  Json(T v) : type_(Type::kInt), int_(static_cast<std::int64_t>(v)) {}
  Json(double v) : type_(Type::kDouble), double_(v) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}

  static Json object() { Json j; j.type_ = Type::kObject; return j; }
  static Json array() { Json j; j.type_ = Type::kArray; return j; }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_number() const { return type_ == Type::kInt || type_ == Type::kDouble; }

  bool as_bool() const { expect(Type::kBool); return bool_; }
  std::int64_t as_int() const;
  /// Numeric value of either number flavour.
  double as_double() const;
  const std::string& as_string() const { expect(Type::kString); return string_; }

  // --- array ---
  void push_back(Json v) { expect(Type::kArray); array_.push_back(std::move(v)); }
  std::size_t size() const;
  const Json& at(std::size_t i) const { expect(Type::kArray); return array_.at(i); }
  const std::vector<Json>& items() const { expect(Type::kArray); return array_; }

  // --- object ---
  /// Insert-or-get member; insertion order is preserved by dump().
  Json& operator[](const std::string& key);
  const Json* find(const std::string& key) const;
  bool has(const std::string& key) const { return find(key) != nullptr; }
  /// Member access that throws on a missing key (parse-side convenience).
  const Json& at(const std::string& key) const;
  const JsonMembers& members() const { expect(Type::kObject); return object_; }

  /// Serialize. `indent` < 0 means compact single-line output; otherwise
  /// pretty-print with that many spaces per level.
  std::string dump(int indent = -1) const;

  /// Parse a complete JSON document; throws std::runtime_error with a byte
  /// offset on malformed input or trailing garbage.
  static Json parse(std::string_view text);

 private:
  void expect(Type t) const {
    if (type_ != t) throw std::runtime_error("json: wrong type access");
  }
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  JsonMembers object_;
};

}  // namespace lore::obs
