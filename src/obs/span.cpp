#include "src/obs/span.hpp"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>

#include "src/obs/export.hpp"
#include "src/obs/ring.hpp"

namespace lore::obs {
namespace {

std::chrono::steady_clock::time_point process_start() {
  static const auto start = std::chrono::steady_clock::now();
  return start;
}

thread_local std::uint32_t t_span_depth = 0;
thread_local TraceContext t_trace_ctx{};

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

/// Per-process id seed: pid + monotonic clock + an ASLR-randomized address,
/// so forked workers and re-executed processes never collide in practice.
std::uint64_t process_id_seed() {
  static const std::uint64_t seed = [] {
    std::uint64_t s = static_cast<std::uint64_t>(::getpid());
    s = splitmix64(s ^ static_cast<std::uint64_t>(
                           std::chrono::steady_clock::now().time_since_epoch().count()));
    s = splitmix64(s ^ reinterpret_cast<std::uintptr_t>(&seed));
    return s;
  }();
  return seed;
}

std::uint64_t next_id() {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t x =
      splitmix64(process_id_seed() + counter.fetch_add(1, std::memory_order_relaxed));
  return x ? x : 1;  // 0 is reserved for "no id"
}

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

TraceId make_trace_id() { return TraceId{next_id(), next_id()}; }

SpanId make_span_id() { return next_id(); }

TraceContext current_trace_context() { return t_trace_ctx; }

TraceContextScope::TraceContextScope(const TraceContext& ctx) : prev_(t_trace_ctx) {
  t_trace_ctx = ctx;
}

TraceContextScope::~TraceContextScope() { t_trace_ctx = prev_; }

std::string span_id_hex(SpanId id) {
  char buf[17];
  for (int i = 15; i >= 0; --i) {
    buf[i] = "0123456789abcdef"[id & 0xf];
    id >>= 4;
  }
  buf[16] = '\0';
  return buf;
}

std::string trace_id_hex(const TraceId& id) {
  return span_id_hex(id.hi) + span_id_hex(id.lo);
}

SpanId span_id_from_hex(std::string_view s) {
  if (s.size() != 16) return 0;
  SpanId id = 0;
  for (char c : s) {
    const int n = hex_nibble(c);
    if (n < 0) return 0;
    id = (id << 4) | static_cast<SpanId>(n);
  }
  return id;
}

TraceId trace_id_from_hex(std::string_view s) {
  if (s.size() != 32) return TraceId{};
  const SpanId hi = span_id_from_hex(s.substr(0, 16));
  const SpanId lo = span_id_from_hex(s.substr(16, 16));
  // A half that parses to 0 from non-zero digits is indistinguishable from a
  // parse failure; all-zero halves are legal only in the invalid id anyway.
  return TraceId{hi, lo};
}

void TraceRecorder::record(TraceEvent event) {
  std::lock_guard lock(mu_);
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::lock_guard lock(mu_);
  return events_;
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard lock(mu_);
  return events_.size();
}

void TraceRecorder::clear() {
  std::lock_guard lock(mu_);
  events_.clear();
}

TraceRecorder& TraceRecorder::global() {
  // Leaked on purpose: spans may close during static destruction, and the
  // atexit flush below reads the recorder after main() returns.
  static TraceRecorder* recorder = [] {
    auto* r = new TraceRecorder();
    if (std::getenv("LORE_TRACE") != nullptr) {
      r->set_enabled(true);
      std::atexit([] { flush_trace_if_requested(); });
    }
    return r;
  }();
  return *recorder;
}

double TraceRecorder::now_us() {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                   process_start())
      .count();
}

std::uint32_t TraceRecorder::thread_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Span::Span(std::string name, std::string category)
    : name_(std::move(name)),
      category_(std::move(category)),
      start_us_(TraceRecorder::now_us()),
      depth_(t_span_depth),
      active_(TraceRecorder::global().recording()) {
  ++t_span_depth;
  const bool stream = event_stream_enabled();
  if (active_ || stream) {
    // Generate an identity and become the ambient parent for nested spans
    // (and for events emitted while this span is open).
    id_ = make_span_id();
    prev_ctx_ = t_trace_ctx;
    parent_ = prev_ctx_.span;
    trace_ = prev_ctx_.trace;
    t_trace_ctx = TraceContext{trace_, id_};
    ctx_pushed_ = true;
  }
#ifndef LORE_OBS_DISABLED
  // Mirror span boundaries onto the live event streams (ring + flight
  // recorder); the Chrome-trace recorder above stays the durable sink.
  // `a` carries the parent id, the record's own span field carries id_.
  if (stream) emit_event(EventKind::kSpanBegin, parent_, 0.0, name_);
#endif
}

Span::~Span() {
  --t_span_depth;
#ifndef LORE_OBS_DISABLED
  if (event_stream_enabled())
    emit_event(EventKind::kSpanEnd, parent_, TraceRecorder::now_us() - start_us_, name_);
#endif
  if (ctx_pushed_) t_trace_ctx = prev_ctx_;
  if (!active_) return;
  TraceEvent event;
  event.name = std::move(name_);
  event.category = std::move(category_);
  event.start_us = start_us_;
  event.dur_us = TraceRecorder::now_us() - start_us_;
  event.tid = TraceRecorder::thread_id();
  event.depth = depth_;
  event.trace = trace_;
  event.span = id_;
  event.parent = parent_;
  TraceRecorder::global().record(std::move(event));
}

std::uint32_t Span::current_depth() { return t_span_depth; }

ScopedTimer::ScopedTimer(Histogram& hist)
    : hist_(enabled() ? &hist : nullptr) {
  if (hist_) start_us_ = TraceRecorder::now_us();
}

ScopedTimer::ScopedTimer(MetricsRegistry& registry, const std::string& name)
    : hist_(enabled() ? &registry.histogram(name) : nullptr) {
  if (hist_) start_us_ = TraceRecorder::now_us();
}

ScopedTimer::~ScopedTimer() {
  if (hist_) hist_->observe(TraceRecorder::now_us() - start_us_);
}

}  // namespace lore::obs
