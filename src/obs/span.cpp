#include "src/obs/span.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>

#include "src/obs/export.hpp"
#include "src/obs/ring.hpp"

namespace lore::obs {
namespace {

std::chrono::steady_clock::time_point process_start() {
  static const auto start = std::chrono::steady_clock::now();
  return start;
}

thread_local std::uint32_t t_span_depth = 0;

}  // namespace

void TraceRecorder::record(TraceEvent event) {
  std::lock_guard lock(mu_);
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::lock_guard lock(mu_);
  return events_;
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard lock(mu_);
  return events_.size();
}

void TraceRecorder::clear() {
  std::lock_guard lock(mu_);
  events_.clear();
}

TraceRecorder& TraceRecorder::global() {
  // Leaked on purpose: spans may close during static destruction, and the
  // atexit flush below reads the recorder after main() returns.
  static TraceRecorder* recorder = [] {
    auto* r = new TraceRecorder();
    if (std::getenv("LORE_TRACE") != nullptr) {
      r->set_enabled(true);
      std::atexit([] { flush_trace_if_requested(); });
    }
    return r;
  }();
  return *recorder;
}

double TraceRecorder::now_us() {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                   process_start())
      .count();
}

std::uint32_t TraceRecorder::thread_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Span::Span(std::string name, std::string category)
    : name_(std::move(name)),
      category_(std::move(category)),
      start_us_(TraceRecorder::now_us()),
      depth_(t_span_depth),
      active_(TraceRecorder::global().recording()) {
  ++t_span_depth;
#ifndef LORE_OBS_DISABLED
  // Mirror span boundaries onto the live event ring (advisory stream for the
  // Aggregator); the Chrome-trace recorder above stays the durable sink.
  if (EventRing::global().enabled())
    emit_event(EventKind::kSpanBegin, depth_, 0.0, name_);
#endif
}

Span::~Span() {
  --t_span_depth;
#ifndef LORE_OBS_DISABLED
  if (EventRing::global().enabled())
    emit_event(EventKind::kSpanEnd, depth_, TraceRecorder::now_us() - start_us_, name_);
#endif
  if (!active_) return;
  TraceEvent event;
  event.name = std::move(name_);
  event.category = std::move(category_);
  event.start_us = start_us_;
  event.dur_us = TraceRecorder::now_us() - start_us_;
  event.tid = TraceRecorder::thread_id();
  event.depth = depth_;
  TraceRecorder::global().record(std::move(event));
}

std::uint32_t Span::current_depth() { return t_span_depth; }

ScopedTimer::ScopedTimer(Histogram& hist)
    : hist_(enabled() ? &hist : nullptr) {
  if (hist_) start_us_ = TraceRecorder::now_us();
}

ScopedTimer::ScopedTimer(MetricsRegistry& registry, const std::string& name)
    : hist_(enabled() ? &registry.histogram(name) : nullptr) {
  if (hist_) start_us_ = TraceRecorder::now_us();
}

ScopedTimer::~ScopedTimer() {
  if (hist_) hist_->observe(TraceRecorder::now_us() - start_us_);
}

}  // namespace lore::obs
