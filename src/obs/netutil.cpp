#include "src/obs/netutil.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

namespace lore::obs {

std::optional<ListenSocket> listen_tcp(const std::string& bind_address,
                                       std::uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, bind_address.c_str(), &addr.sin_addr) != 1 ||
      ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, backlog) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  return ListenSocket{fd, ntohs(addr.sin_port)};
}

int connect_tcp(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int accept_retry(int listen_fd) {
  for (;;) {
    const int client = ::accept(listen_fd, nullptr, nullptr);
    if (client >= 0 || errno != EINTR) return client;
  }
}

bool set_socket_timeout(int fd, int timeout_ms) {
  timeval tv{};
  if (timeout_ms > 0) {
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  }
  const bool rcv = ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) == 0;
  const bool snd = ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv) == 0;
  return rcv && snd;
}

long recv_retry(int fd, void* buf, std::size_t n) {
  for (;;) {
    const ssize_t r = ::recv(fd, buf, n, 0);
    if (r >= 0 || errno != EINTR) return static_cast<long>(r);
  }
}

bool send_all(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd, p + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (w == 0) return false;
    off += static_cast<std::size_t>(w);
  }
  return true;
}

bool recv_all(int fd, void* buf, std::size_t n) {
  char* p = static_cast<char*>(buf);
  std::size_t off = 0;
  while (off < n) {
    const long r = recv_retry(fd, p + off, n - off);
    if (r <= 0) return false;
    off += static_cast<std::size_t>(r);
  }
  return true;
}

void close_fd(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace lore::obs
