#include "src/obs/scrape.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include "src/obs/netutil.hpp"

namespace lore::obs {

std::optional<std::string> http_get(const std::string& host, std::uint16_t port,
                                    const std::string& path, int timeout_ms) {
  const int fd = connect_tcp(host, port);
  if (fd < 0) return std::nullopt;
  if (timeout_ms > 0) set_socket_timeout(fd, timeout_ms);
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (!send_all(fd, request.data(), request.size())) {
    close_fd(fd);
    return std::nullopt;
  }
  ::shutdown(fd, SHUT_WR);

  std::string response;
  char buf[1 << 12];
  for (;;) {
    const long n = recv_retry(fd, buf, sizeof buf);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  close_fd(fd);

  // "HTTP/1.0 200 OK\r\n...headers...\r\n\r\nbody"
  if (response.rfind("HTTP/", 0) != 0) return std::nullopt;
  const auto status_at = response.find(' ');
  if (status_at == std::string::npos || response.size() < status_at + 2 ||
      response[status_at + 1] != '2')
    return std::nullopt;
  const auto body_at = response.find("\r\n\r\n");
  if (body_at == std::string::npos) return std::nullopt;
  return response.substr(body_at + 4);
}

std::optional<Json> scrape_metrics_json(const std::string& host, std::uint16_t port,
                                        int timeout_ms) {
  const auto body = http_get(host, port, "/metrics.json", timeout_ms);
  if (!body) return std::nullopt;
  try {
    return Json::parse(*body);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::optional<double> metric_value(const Json& metrics_doc, const std::string& kind,
                                   const std::string& name) {
  if (metrics_doc.type() != Json::Type::kObject) return std::nullopt;
  const Json* section = metrics_doc.find(kind);
  if (!section || section->type() != Json::Type::kObject) return std::nullopt;
  const Json* value = section->find(name);
  if (!value || !value->is_number()) return std::nullopt;
  return value->as_double();
}

}  // namespace lore::obs
