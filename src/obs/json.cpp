#include "src/obs/json.hpp"

#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace lore::obs {

std::int64_t Json::as_int() const {
  if (type_ == Type::kInt) return int_;
  if (type_ == Type::kDouble) return static_cast<std::int64_t>(double_);
  throw std::runtime_error("json: wrong type access");
}

double Json::as_double() const {
  if (type_ == Type::kInt) return static_cast<double>(int_);
  if (type_ == Type::kDouble) return double_;
  throw std::runtime_error("json: wrong type access");
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  throw std::runtime_error("json: wrong type access");
}

Json& Json::operator[](const std::string& key) {
  if (type_ == Type::kNull) type_ = Type::kObject;  // convenient building
  expect(Type::kObject);
  for (auto& [k, v] : object_)
    if (k == key) return v;
  object_.emplace_back(key, Json());
  return object_.back().second;
}

const Json* Json::find(const std::string& key) const {
  expect(Type::kObject);
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* v = find(key);
  if (!v) throw std::runtime_error("json: missing key '" + key + "'");
  return *v;
}

namespace {

void escape_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through verbatim
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {  // JSON has no inf/nan; encode as null
    out += "null";
    return;
  }
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);  // shortest round-trip
  out.append(buf, res.ptr);
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull: out += "null"; return;
    case Type::kBool: out += bool_ ? "true" : "false"; return;
    case Type::kInt: out += std::to_string(int_); return;
    case Type::kDouble: append_double(out, double_); return;
    case Type::kString: escape_string(out, string_); return;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i) out += ',';
        newline_indent(out, indent, depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += ']';
      return;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i) out += ',';
        newline_indent(out, indent, depth + 1);
        escape_string(out, object_[i].first);
        out += indent < 0 ? ":" : ": ";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonParseError(pos_, what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') ++pos_;
      else break;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect_char(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json(nullptr);
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect_char('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect_char(':');
      obj[key] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect_char('}');
      return obj;
    }
  }

  Json parse_array() {
    expect_char('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect_char(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect_char('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("dangling escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Encode the code point as UTF-8 (surrogate pairs are passed
          // through as two 3-byte sequences; our emitter never produces
          // them for the data we export).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") fail("bad number");
    if (!is_double) {
      std::int64_t v = 0;
      const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), v);
      if (res.ec == std::errc() && res.ptr == tok.data() + tok.size()) return Json(v);
      // fall through to double on overflow
    }
    double d = 0.0;
    const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (res.ec != std::errc() || res.ptr != tok.data() + tok.size()) fail("bad number");
    return Json(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace lore::obs
