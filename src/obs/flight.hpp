// Crash-safe flight recorder — `lore.flight.v1` (DESIGN.md §15). An
// mmap-backed on-disk ring of fixed-width 64-byte records mirroring the
// `lore.events.v1` vocabulary (plus span begin/end), written by an
// async-signal-safe producer so the last moments of a dying process survive
// it:
//
//   - SIGKILL / power loss: the mapping lives in the page cache, so every
//     completed record persists; the header stays "torn" (sealed = 0) and the
//     decoder recovers records by per-record CRC.
//   - SIGSEGV/SIGABRT/SIGBUS/SIGILL/SIGFPE: the installed handler seals the
//     header (signal number + timestamp) and re-raises, so the decoder can
//     say *what* killed the process and *when* on its own timeline.
//   - Clean exit: close() seals the header as clean.
//
// Layout: one 4 KiB header page followed by `capacity` 64-byte records. The
// writer claims a slot with one atomic fetch_add on the header's cursor,
// fills the record, and writes its CRC last — a record is valid iff its CRC
// matches, so a write interrupted by death is detectably torn, never
// silently wrong. `scripts/lore_postmortem.py` and `decode_flight_file`
// both decode any ring, sealed or torn.
//
// The recorder is inert (one relaxed load per emit site) until open() — the
// fabric worker opens one per process under `LORE_FLIGHT_DIR`, benches and
// tests may point `LORE_FLIGHT` at a file directly.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/ring.hpp"

namespace lore::obs {

inline constexpr char kFlightMagic[8] = {'L', 'O', 'R', 'E', 'F', 'L', 'T', '1'};
inline constexpr std::uint32_t kFlightVersion = 1;
inline constexpr std::size_t kFlightHeaderBytes = 4096;
inline constexpr std::size_t kFlightRecordBytes = 64;
inline constexpr std::size_t kFlightDefaultCapacity = 4096;

/// Header seal states.
enum : std::uint32_t {
  kFlightTorn = 0,          // process died uncatchably (SIGKILL) or is live
  kFlightSealedClean = 1,   // close() ran
  kFlightSealedSignal = 2,  // a fatal-signal handler sealed it
};

class FlightRecorder {
 public:
  FlightRecorder() = default;
  ~FlightRecorder() { close(); }
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Create/truncate `path` and map it. `capacity` is rounded up to a power
  /// of two records. False on any filesystem failure (recorder stays inert).
  bool open(const std::string& path, std::size_t capacity = kFlightDefaultCapacity);
  /// Seal clean + unmap. Safe to call twice.
  void close();

  bool active() const { return active_.load(std::memory_order_acquire); }
  const std::string& path() const { return path_; }
  /// Total records ever written (monotonic; wraps the ring at capacity).
  std::uint64_t cursor() const;
  std::size_t capacity() const { return capacity_; }

  /// Append one record. Async-signal-safe after open(): one atomic
  /// fetch_add, a bounded memcpy into the mapping, a table-driven CRC.
  void record(EventKind kind, std::uint64_t a, double value, std::uint64_t span,
              std::string_view label);

  /// Seal the header with a signal number (async-signal-safe). Used by the
  /// installed fatal-signal handlers; idempotent.
  void seal(int sig);

  /// Install SIGSEGV/SIGABRT/SIGBUS/SIGILL/SIGFPE handlers that seal the
  /// global recorder and re-raise with the default action. Returns false if
  /// sigaction fails. Installing twice is harmless.
  static bool install_signal_handlers();

  /// Open the global recorder from the environment: `LORE_FLIGHT` names the
  /// ring file, else `LORE_FLIGHT_DIR` names a directory (ring becomes
  /// `<dir>/flight-<pid>.ring`); `LORE_FLIGHT_EVENTS` overrides capacity.
  /// Also installs the signal handlers. Returns the opened path, or nullopt
  /// when the environment asks for nothing (or open fails).
  static std::optional<std::string> init_from_env();

  /// The process-wide recorder every emit_event dual-routes to.
  static FlightRecorder& global();

 private:
  std::atomic<bool> active_{false};
  std::string path_;
  void* map_ = nullptr;
  std::size_t map_bytes_ = 0;
  std::size_t capacity_ = 0;
};

/// One decoded record (valid CRC only).
struct FlightRecord {
  std::uint64_t seq = 0;
  double t_us = 0.0;
  std::uint64_t a = 0;
  double value = 0.0;
  std::uint64_t span = 0;
  EventKind kind = EventKind::kTrialCompleted;
  std::uint16_t tid = 0;
  std::string label;
};

/// A decoded `lore.flight.v1` ring.
struct FlightRingDump {
  std::uint32_t version = 0;
  std::uint32_t pid = 0;
  std::uint32_t sealed = kFlightTorn;
  int seal_signal = 0;
  double seal_t_us = 0.0;
  std::uint64_t capacity = 0;
  std::uint64_t cursor = 0;
  std::size_t torn_records = 0;          // CRC-invalid slots skipped
  std::vector<FlightRecord> records;     // oldest -> newest
};

/// Decode a ring file — sealed or torn. nullopt (with `err` filled when
/// non-null) on an unreadable file or a foreign/corrupt header.
std::optional<FlightRingDump> decode_flight_file(const std::string& path,
                                                 std::string* err = nullptr);

}  // namespace lore::obs
