#include "src/obs/aggregate.hpp"

#include <algorithm>

#include "src/obs/span.hpp"

namespace lore::obs {

Json interval_to_json(const IntervalStats& iv) {
  Json j = Json::object();
  j["seq"] = iv.seq;
  j["t_start_us"] = iv.t_start_us;
  j["t_end_us"] = iv.t_end_us;
  j["dt_s"] = iv.dt_s;
  j["events"] = iv.events;
  j["events_dropped"] = iv.events_dropped;
  Json kinds = Json::object();
  for (std::size_t k = 0; k < kEventKindCount; ++k)
    kinds[event_kind_name(static_cast<EventKind>(k))] = iv.per_kind[k];
  j["per_kind"] = std::move(kinds);
  j["trials_completed"] = iv.trials_completed;
  j["timeouts"] = iv.timeouts;
  j["retries"] = iv.retries;
  j["failures"] = iv.failures;
  j["checkpoints"] = iv.checkpoints;
  j["trials_per_s"] = iv.trials_per_s;
  j["events_per_s"] = iv.events_per_s;
  j["timeout_rate"] = iv.timeout_rate;
  j["queue_depth"] = iv.queue_depth;
  j["alerts"] = static_cast<std::uint64_t>(iv.alerts);
  return j;
}

#ifndef LORE_OBS_DISABLED

Aggregator::Aggregator(AggregatorConfig cfg, MetricsRegistry& registry,
                       EventRing& ring)
    : cfg_(cfg), registry_(registry), ring_(ring), health_(cfg.health) {
  last_tick_us_ = TraceRecorder::now_us();
  last_dropped_ = ring_.dropped();
}

Aggregator::~Aggregator() { stop(); }

void Aggregator::start() {
  if (running_) return;
  ring_.set_drop_counter(&registry_.counter("obs.events_dropped"));
  ring_.set_enabled(true);
  running_ = true;
  if (cfg_.interval.count() > 0) {
    stop_requested_ = false;
    thread_ = std::thread([this] { loop(); });
  }
}

void Aggregator::stop() {
  if (!running_) return;
  {
    std::lock_guard lock(stop_mu_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  tick();  // flush the tail interval so nothing emitted so far is lost
  ring_.set_enabled(false);
  ring_.set_drop_counter(nullptr);
  running_ = false;
}

void Aggregator::loop() {
  std::unique_lock lock(stop_mu_);
  for (;;) {
    if (stop_cv_.wait_for(lock, cfg_.interval, [this] { return stop_requested_; }))
      return;  // final flush happens in stop()
    lock.unlock();
    tick();
    lock.lock();
  }
}

IntervalStats Aggregator::tick() {
  std::lock_guard lock(mu_);
  return tick_locked();
}

IntervalStats Aggregator::tick_locked() {
  const double now = TraceRecorder::now_us();
  IntervalStats iv;
  iv.seq = seq_++;
  iv.t_start_us = last_tick_us_;
  iv.t_end_us = now;
  iv.dt_s = (now - last_tick_us_) / 1e6;
  last_tick_us_ = now;

  // 1. Event stream: drain the ring and tally per kind.
  scratch_.clear();
  ring_.drain(scratch_, cfg_.max_events_per_tick);
  iv.events = scratch_.size();
  for (const Event& e : scratch_) {
    const auto k = static_cast<std::size_t>(e.kind);
    if (k < kEventKindCount) ++iv.per_kind[k];
  }
  const std::uint64_t dropped_now = ring_.dropped();
  iv.events_dropped = dropped_now - last_dropped_;
  last_dropped_ = dropped_now;

  // 2. Exact counter deltas from the registry (monotonic totals -> interval
  // deltas; unlike the ring these can never be dropped).
  const Snapshot snap = registry_.snapshot();
  const auto prev = [&](const std::string& name) -> std::uint64_t {
    const auto it = std::lower_bound(
        last_counters_.begin(), last_counters_.end(), name,
        [](const auto& p, const std::string& n) { return p.first < n; });
    return it != last_counters_.end() && it->first == name ? it->second : 0;
  };
  const auto delta = [&](const std::string& name) -> std::uint64_t {
    const std::uint64_t cur = snap.counter_value(name);
    const std::uint64_t old = prev(name);
    return cur >= old ? cur - old : cur;  // a registry reset restarts deltas
  };
  iv.trials_completed =
      delta("campaign.trials_completed") + delta("parallel.trials_completed");
  iv.timeouts = delta("campaign.timeouts");
  iv.retries = delta("campaign.retries");
  iv.failures = delta("campaign.trial_failures");
  iv.checkpoints = delta("campaign.checkpoints");
  for (const auto& h : snap.histograms) {
    if (h.name != "parallel.queue_depth") continue;
    const std::uint64_t dc = h.count >= last_queue_count_ ? h.count - last_queue_count_ : h.count;
    const double ds = h.count >= last_queue_count_ ? h.sum - last_queue_sum_ : h.sum;
    if (dc > 0) iv.queue_depth = ds / static_cast<double>(dc);
    last_queue_count_ = h.count;
    last_queue_sum_ = h.sum;
  }
  last_counters_ = snap.counters;

  if (iv.dt_s > 0.0) {
    iv.trials_per_s = static_cast<double>(iv.trials_completed) / iv.dt_s;
    iv.events_per_s = static_cast<double>(iv.events) / iv.dt_s;
  }
  const std::uint64_t attempted = iv.trials_completed + iv.timeouts + iv.failures;
  if (attempted > 0)
    iv.timeout_rate = static_cast<double>(iv.timeouts) / static_cast<double>(attempted);

  // 3. Health loop: feed the interval, publish gauges, raise alert events.
  HealthSample sample;
  sample.interval_seq = iv.seq;
  sample.dt_s = iv.dt_s;
  sample.trials_attempted = attempted;
  sample.trials_per_s = iv.trials_per_s;
  sample.timeout_rate = iv.timeout_rate;
  sample.queue_depth = iv.queue_depth;
  const auto alerts = health_.update(sample);
  iv.alerts = alerts.size();

  registry_.gauge("agg.intervals").set(static_cast<double>(iv.seq + 1));
  registry_.gauge("agg.trials_per_s").set(iv.trials_per_s);
  registry_.gauge("agg.events_per_s").set(iv.events_per_s);
  registry_.gauge("agg.timeout_rate").set(iv.timeout_rate);
  registry_.gauge("agg.queue_depth").set(iv.queue_depth);
  registry_.counter("obs.events").add(iv.events);
  registry_.gauge("health.state")
      .set(health_.state() == HealthState::kDegraded ? 1.0 : 0.0);
  registry_.gauge("health.timeout_rate").set(iv.timeout_rate);
  registry_.gauge("health.trials_per_s").set(iv.trials_per_s);
  if (!alerts.empty()) {
    registry_.counter("health.alerts").add(alerts.size());
    for (const auto& a : alerts) {
      Event e;
      e.kind = EventKind::kAlert;
      e.tid = TraceRecorder::thread_id();
      e.t_us = iv.t_end_us;
      e.a = a.interval_seq;
      e.value = a.value;
      e.set_label(a.signal);
      ring_.try_push(e);  // picked up (and counted) by the next interval
    }
  }

  history_.push_back(iv);
  while (history_.size() > cfg_.history) history_.pop_front();
  return iv;
}

std::vector<IntervalStats> Aggregator::history() const {
  std::lock_guard lock(mu_);
  return {history_.begin(), history_.end()};
}

IntervalStats Aggregator::latest() const {
  std::lock_guard lock(mu_);
  return history_.empty() ? IntervalStats{} : history_.back();
}

std::uint64_t Aggregator::intervals() const {
  std::lock_guard lock(mu_);
  return seq_;
}

Json Aggregator::intervals_json() const {
  Json doc = Json::object();
  doc["schema"] = "lore.intervals.v1";
  Json arr = Json::array();
  for (const auto& iv : history()) arr.push_back(interval_to_json(iv));
  doc["intervals"] = std::move(arr);
  return doc;
}

#else  // LORE_OBS_DISABLED: the pipeline compiles down to inert stubs.

Aggregator::Aggregator(AggregatorConfig cfg, MetricsRegistry& registry,
                       EventRing& ring)
    : cfg_(cfg), registry_(registry), ring_(ring), health_(cfg.health) {}
Aggregator::~Aggregator() = default;
void Aggregator::start() {}
void Aggregator::stop() {}
void Aggregator::loop() {}
IntervalStats Aggregator::tick() { return {}; }
IntervalStats Aggregator::tick_locked() { return {}; }
std::vector<IntervalStats> Aggregator::history() const { return {}; }
IntervalStats Aggregator::latest() const { return {}; }
std::uint64_t Aggregator::intervals() const { return 0; }

Json Aggregator::intervals_json() const {
  Json doc = Json::object();
  doc["schema"] = "lore.intervals.v1";
  doc["intervals"] = Json::array();
  return doc;
}

#endif  // LORE_OBS_DISABLED

}  // namespace lore::obs
