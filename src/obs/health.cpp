#include "src/obs/health.hpp"

#include <algorithm>
#include <cmath>

namespace lore::obs {

bool EwmaDetector::update(double x) {
  bool anomalous = false;
  if (warmed_up()) {
    const double s = sigma();
    // Guard against a degenerate flat history: a zero-variance stream makes
    // any deviation infinite-sigma, so require a small absolute floor.
    const double band = k_sigma_ * std::max(s, 1e-12);
    anomalous = std::abs(x - mean_) > band;
  }
  if (n_ == 0) {
    mean_ = x;
    var_ = 0.0;
  } else {
    const double d = x - mean_;
    mean_ += alpha_ * d;
    var_ = (1.0 - alpha_) * (var_ + alpha_ * d * d);
  }
  ++n_;
  return anomalous;
}

double EwmaDetector::sigma() const { return std::sqrt(std::max(var_, 0.0)); }

void EwmaDetector::reset() {
  mean_ = 0.0;
  var_ = 0.0;
  n_ = 0;
}

const char* health_state_name(HealthState s) {
  return s == HealthState::kOk ? "ok" : "degraded";
}

std::vector<HealthAlert> HealthMonitor::update(const HealthSample& s) {
  std::lock_guard lock(mu_);
  if (!detectors_init_) {
    throughput_ = EwmaDetector(cfg_.ewma_alpha, cfg_.k_sigma, cfg_.warmup_intervals);
    detectors_init_ = true;
  }

  std::vector<HealthAlert> raised;
  const auto raise = [&](const char* signal, double value, double threshold) {
    raised.push_back({signal, value, threshold, s.interval_seq});
  };

  // Absolute symptoms first: a timeout-rate spike or a saturated pool is
  // degradation regardless of history.
  if (s.trials_attempted > 0 && s.timeout_rate > cfg_.timeout_rate_alert)
    raise("health.timeout_rate", s.timeout_rate, cfg_.timeout_rate_alert);
  if (cfg_.queue_depth_alert > 0.0 && s.queue_depth > cfg_.queue_depth_alert)
    raise("health.queue_depth", s.queue_depth, cfg_.queue_depth_alert);

  // Throughput collapse is relative: compare against the EWMA of *busy*
  // intervals only, so an idle pipeline (campaign finished, nothing running)
  // does not read as a collapse.
  if (s.trials_attempted > 0) {
    const bool was_warm = throughput_.warmed_up();
    const double baseline = throughput_.mean();
    throughput_.update(s.trials_per_s);
    if (was_warm && baseline > 0.0 &&
        s.trials_per_s < cfg_.throughput_collapse_ratio * baseline)
      raise("health.throughput", s.trials_per_s,
            cfg_.throughput_collapse_ratio * baseline);
  }

  if (raised.empty()) {
    if (state_ == HealthState::kDegraded &&
        ++clean_streak_ >= cfg_.recovery_intervals) {
      state_ = HealthState::kOk;
      clean_streak_ = 0;
      recent_.clear();
    }
  } else {
    state_ = HealthState::kDegraded;
    clean_streak_ = 0;
    alerts_total_ += raised.size();
    recent_.insert(recent_.end(), raised.begin(), raised.end());
    // Keep the episode log bounded; the newest alerts are the diagnosis.
    constexpr std::size_t kMaxRecent = 32;
    if (recent_.size() > kMaxRecent)
      recent_.erase(recent_.begin(),
                    recent_.begin() + static_cast<std::ptrdiff_t>(recent_.size() - kMaxRecent));
  }
  return raised;
}

HealthStatus HealthMonitor::status() const {
  std::lock_guard lock(mu_);
  return {state_, alerts_total_, recent_};
}

void HealthMonitor::reset() {
  std::lock_guard lock(mu_);
  throughput_.reset();
  detectors_init_ = false;
  state_ = HealthState::kOk;
  clean_streak_ = 0;
  alerts_total_ = 0;
  recent_.clear();
}

}  // namespace lore::obs
