#include "src/obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace lore::obs {

Json metrics_to_json(const Snapshot& snap) {
  Json doc = Json::object();
  doc["schema"] = "lore.metrics.v1";
  Json counters = Json::object();
  for (const auto& [name, value] : snap.counters) counters[name] = value;
  doc["counters"] = std::move(counters);
  Json gauges = Json::object();
  for (const auto& [name, value] : snap.gauges) gauges[name] = value;
  doc["gauges"] = std::move(gauges);
  Json histograms = Json::object();
  for (const auto& h : snap.histograms) {
    Json hj = Json::object();
    hj["count"] = h.count;
    hj["sum"] = h.sum;
    hj["min"] = h.min;
    hj["max"] = h.max;
    hj["p50"] = h.p50;
    hj["p95"] = h.p95;
    hj["p99"] = h.p99;
    Json bounds = Json::array();
    for (double b : h.upper_bounds) bounds.push_back(b);
    hj["upper_bounds"] = std::move(bounds);
    Json buckets = Json::array();
    for (auto c : h.buckets) buckets.push_back(c);
    hj["buckets"] = std::move(buckets);
    histograms[h.name] = std::move(hj);
  }
  doc["histograms"] = std::move(histograms);
  return doc;
}

Snapshot snapshot_from_json(const Json& doc) {
  if (!doc.has("schema") || doc.at("schema").as_string() != "lore.metrics.v1")
    throw std::runtime_error("snapshot_from_json: not a lore.metrics.v1 document");
  Snapshot snap;
  for (const auto& [name, value] : doc.at("counters").members())
    snap.counters.emplace_back(name, static_cast<std::uint64_t>(value.as_int()));
  for (const auto& [name, value] : doc.at("gauges").members())
    snap.gauges.emplace_back(name, value.as_double());
  for (const auto& [name, value] : doc.at("histograms").members()) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.count = static_cast<std::uint64_t>(value.at("count").as_int());
    hs.sum = value.at("sum").as_double();
    hs.min = value.at("min").as_double();
    hs.max = value.at("max").as_double();
    hs.p50 = value.at("p50").as_double();
    hs.p95 = value.at("p95").as_double();
    hs.p99 = value.at("p99").as_double();
    for (const auto& b : value.at("upper_bounds").items())
      hs.upper_bounds.push_back(b.as_double());
    for (const auto& c : value.at("buckets").items())
      hs.buckets.push_back(static_cast<std::uint64_t>(c.as_int()));
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

namespace {

std::string fmt_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void append_aligned(std::string& out, const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths;
  for (const auto& row : rows) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  }
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      out += row[i];
      if (i + 1 < row.size())
        out.append(widths[i] - row[i].size() + 2, ' ');
    }
    out += '\n';
  }
}

}  // namespace

std::string summary_table(const Snapshot& snap) {
  std::string out;
  if (!snap.counters.empty()) {
    out += "counters\n";
    std::vector<std::vector<std::string>> rows;
    for (const auto& [name, value] : snap.counters)
      rows.push_back({"  " + name, std::to_string(value)});
    append_aligned(out, rows);
  }
  if (!snap.gauges.empty()) {
    out += "gauges\n";
    std::vector<std::vector<std::string>> rows;
    for (const auto& [name, value] : snap.gauges)
      rows.push_back({"  " + name, fmt_double(value)});
    append_aligned(out, rows);
  }
  if (!snap.histograms.empty()) {
    out += "histograms\n";
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"  name", "count", "mean", "p50", "p95", "p99", "max"});
    for (const auto& h : snap.histograms) {
      const double mean = h.count ? h.sum / static_cast<double>(h.count) : 0.0;
      rows.push_back({"  " + h.name, std::to_string(h.count), fmt_double(mean),
                      fmt_double(h.p50), fmt_double(h.p95), fmt_double(h.p99),
                      fmt_double(h.max)});
    }
    append_aligned(out, rows);
  }
  if (out.empty()) out = "(no metrics recorded)\n";
  return out;
}

namespace {

/// `campaign.trials_completed` -> `lore_campaign_trials_completed`.
std::string prom_name(const std::string& name) {
  std::string out = "lore_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::string prometheus_text(const Snapshot& snap) {
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    const std::string n = prom_name(name);
    out += "# TYPE " + n + " counter\n";
    out += n + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string n = prom_name(name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " " + fmt_double(value) + "\n";
  }
  for (const auto& h : snap.histograms) {
    const std::string n = prom_name(h.name);
    out += "# TYPE " + n + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      cumulative += h.buckets[i];
      const std::string le =
          i < h.upper_bounds.size() ? fmt_double(h.upper_bounds[i]) : "+Inf";
      out += n + "_bucket{le=\"" + le + "\"} " + std::to_string(cumulative) + "\n";
    }
    out += n + "_sum " + fmt_double(h.sum) + "\n";
    out += n + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

Json chrome_trace_json(const std::vector<TraceEvent>& events) {
  Json doc = Json::object();
  Json list = Json::array();
  for (const auto& e : events) {
    Json ev = Json::object();
    ev["name"] = e.name;
    ev["cat"] = e.category.empty() ? std::string("lore") : e.category;
    ev["ph"] = "X";  // complete event: begin + duration in one record
    ev["ts"] = e.start_us;
    ev["dur"] = e.dur_us;
    // pid 0 means "this process"; remote spans stitched in by the fabric
    // coordinator carry the worker's real pid so Perfetto draws one lane per
    // process of the fleet.
    ev["pid"] = e.pid ? e.pid : 1;
    ev["tid"] = e.tid;
    Json args = Json::object();
    args["depth"] = static_cast<std::uint64_t>(e.depth);
    if (e.span != 0) {
      args["trace"] = trace_id_hex(e.trace);
      args["span"] = span_id_hex(e.span);
      args["parent"] = span_id_hex(e.parent);
    }
    ev["args"] = std::move(args);
    list.push_back(std::move(ev));
  }
  doc["traceEvents"] = std::move(list);
  doc["displayTimeUnit"] = "ms";
  return doc;
}

bool write_chrome_trace(const std::string& path, const TraceRecorder& recorder) {
  std::ofstream out(path);
  if (!out) return false;
  out << chrome_trace_json(recorder.events()).dump(2) << '\n';
  return static_cast<bool>(out);
}

bool flush_trace_if_requested() {
  const char* path = std::getenv("LORE_TRACE");
  if (!path || !*path) return false;
  return write_chrome_trace(path, TraceRecorder::global());
}

}  // namespace lore::obs
