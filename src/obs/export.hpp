// Pluggable sinks for the observability subsystem: turn a metrics Snapshot
// into JSON or an aligned text table, and a span buffer into the Chrome
// `chrome://tracing` / Perfetto JSON trace format. All output is
// deterministic for deterministic inputs (instruments sorted by name, object
// keys in fixed order).
#pragma once

#include <string>

#include "src/obs/json.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/span.hpp"

namespace lore::obs {

/// Snapshot -> JSON document:
/// {"schema":"lore.metrics.v1","counters":{...},"gauges":{...},
///  "histograms":{name:{count,sum,min,max,p50,p95,p99,upper_bounds,buckets}}}
Json metrics_to_json(const Snapshot& snap);

/// Inverse of metrics_to_json (round-trip support for tests and tooling).
/// Throws std::runtime_error on a document with a different schema tag.
Snapshot snapshot_from_json(const Json& doc);

/// Human-readable aligned table of every instrument (the plain-text sink).
std::string summary_table(const Snapshot& snap);

/// Snapshot -> Prometheus text exposition format (0.0.4), the `/metrics`
/// endpoint of the live pipeline (serve.hpp). Instrument names are prefixed
/// `lore_` and sanitized to [a-zA-Z0-9_:]; histograms are exported with full
/// cumulative `_bucket{le=...}` series plus `_sum`/`_count`.
std::string prometheus_text(const Snapshot& snap);

/// Span buffer -> Chrome trace document ({"traceEvents":[...],...}); load
/// the dumped file in chrome://tracing or ui.perfetto.dev.
Json chrome_trace_json(const std::vector<TraceEvent>& events);

/// Write the global recorder's events to `path` as a Chrome trace.
/// Returns false (and writes nothing) when the file cannot be opened.
bool write_chrome_trace(const std::string& path, const TraceRecorder& recorder);

/// If the `LORE_TRACE` environment variable names a file, dump the global
/// recorder there and return true. Benches call this at exit.
bool flush_trace_if_requested();

}  // namespace lore::obs
