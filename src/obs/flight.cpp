#include "src/obs/flight.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "src/obs/span.hpp"

namespace lore::obs {
namespace {

// On-disk header, one page. Fields past `reserved` are sealing metadata
// written at most once. The cursor is the only concurrently-mutated word;
// std::atomic<u64> is layout-compatible with the raw u64 a decoder reads.
struct FlightHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t record_size;
  std::uint64_t capacity;
  std::atomic<std::uint64_t> cursor;
  std::uint32_t pid;
  std::int32_t seal_signal;
  std::uint32_t sealed;
  std::uint32_t reserved;
  double seal_t_us;
};
static_assert(sizeof(FlightHeader) <= kFlightHeaderBytes);
static_assert(sizeof(std::atomic<std::uint64_t>) == sizeof(std::uint64_t));

/// Trivially-copyable mirror of FlightHeader for decoding a file image.
struct FlightHeaderRaw {
  char magic[8];
  std::uint32_t version;
  std::uint32_t record_size;
  std::uint64_t capacity;
  std::uint64_t cursor;
  std::uint32_t pid;
  std::int32_t seal_signal;
  std::uint32_t sealed;
  std::uint32_t reserved;
  double seal_t_us;
};
static_assert(sizeof(FlightHeaderRaw) == sizeof(FlightHeader));

// Raw record layout; crc covers bytes [0, 60).
struct FlightSlot {
  std::uint64_t seq;
  double t_us;
  std::uint64_t a;
  double value;
  std::uint64_t span;
  std::uint8_t kind;
  std::uint8_t pad;
  std::uint16_t tid;
  char label[16];
  std::uint32_t crc;
};
static_assert(sizeof(FlightSlot) == kFlightRecordBytes);

/// CRC-32 (IEEE, reflected) with a table built at namespace scope so the
/// record() path — and the signal path — never computes it lazily.
struct CrcTable {
  std::uint32_t t[256];
  CrcTable() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
  }
};
const CrcTable kCrc;

std::uint32_t crc32(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = 0xffffffffu;
  for (std::size_t i = 0; i < n; ++i) c = kCrc.t[(c ^ p[i]) & 0xff] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

constexpr int kFatalSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGILL, SIGFPE};

extern "C" void flight_fatal_handler(int sig) {
  FlightRecorder::global().seal(sig);
  // Restore the default action and re-raise so the process still dies with
  // the right wait status (and a core, where enabled).
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

bool FlightRecorder::open(const std::string& path, std::size_t capacity) {
  close();
  const std::size_t cap = round_up_pow2(capacity < 64 ? 64 : capacity);
  const std::size_t bytes = kFlightHeaderBytes + cap * kFlightRecordBytes;
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    ::close(fd);
    return false;
  }
  void* map = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED) return false;

  std::memset(map, 0, kFlightHeaderBytes);
  auto* h = new (map) FlightHeader{};
  std::memcpy(h->magic, kFlightMagic, sizeof h->magic);
  h->version = kFlightVersion;
  h->record_size = kFlightRecordBytes;
  h->capacity = cap;
  h->cursor.store(0, std::memory_order_relaxed);
  h->pid = static_cast<std::uint32_t>(::getpid());
  h->sealed = kFlightTorn;

  map_ = map;
  map_bytes_ = bytes;
  capacity_ = cap;
  path_ = path;
  active_.store(true, std::memory_order_release);
  return true;
}

void FlightRecorder::close() {
  if (!map_) return;
  active_.store(false, std::memory_order_release);
  auto* h = static_cast<FlightHeader*>(map_);
  if (h->sealed == kFlightTorn) {
    h->seal_t_us = TraceRecorder::now_us();
    h->sealed = kFlightSealedClean;
  }
  ::munmap(map_, map_bytes_);
  map_ = nullptr;
  map_bytes_ = 0;
  capacity_ = 0;
}

std::uint64_t FlightRecorder::cursor() const {
  if (!map_) return 0;
  return static_cast<const FlightHeader*>(map_)->cursor.load(std::memory_order_acquire);
}

void FlightRecorder::record(EventKind kind, std::uint64_t a, double value,
                            std::uint64_t span, std::string_view label) {
  if (!active_.load(std::memory_order_acquire)) return;
  auto* h = static_cast<FlightHeader*>(map_);
  const std::uint64_t seq = h->cursor.fetch_add(1, std::memory_order_relaxed);
  auto* slots = reinterpret_cast<FlightSlot*>(static_cast<char*>(map_) + kFlightHeaderBytes);
  FlightSlot& s = slots[seq & (capacity_ - 1)];
  s.crc = 0;  // invalidate first so a death mid-fill reads as torn, not stale
  s.seq = seq;
  s.t_us = TraceRecorder::now_us();
  s.a = a;
  s.value = value;
  s.span = span;
  s.kind = static_cast<std::uint8_t>(kind);
  s.pad = 0;
  s.tid = static_cast<std::uint16_t>(TraceRecorder::thread_id());
  const std::size_t n = label.size() < sizeof(s.label) - 1 ? label.size() : sizeof(s.label) - 1;
  std::memcpy(s.label, label.data(), n);
  std::memset(s.label + n, 0, sizeof(s.label) - n);
  s.crc = crc32(&s, offsetof(FlightSlot, crc));
}

void FlightRecorder::seal(int sig) {
  if (!map_) return;
  auto* h = static_cast<FlightHeader*>(map_);
  if (h->sealed != kFlightTorn) return;
  h->seal_signal = sig;
  h->seal_t_us = TraceRecorder::now_us();
  h->sealed = kFlightSealedSignal;
}

bool FlightRecorder::install_signal_handlers() {
  struct sigaction sa{};
  sa.sa_handler = flight_fatal_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  bool ok = true;
  for (int sig : kFatalSignals) ok = ::sigaction(sig, &sa, nullptr) == 0 && ok;
  return ok;
}

std::optional<std::string> FlightRecorder::init_from_env() {
  std::string path;
  if (const char* p = std::getenv("LORE_FLIGHT"); p && *p) {
    path = p;
  } else if (const char* d = std::getenv("LORE_FLIGHT_DIR"); d && *d) {
    path = std::string(d) + "/flight-" + std::to_string(::getpid()) + ".ring";
  } else {
    return std::nullopt;
  }
  std::size_t cap = kFlightDefaultCapacity;
  if (const char* c = std::getenv("LORE_FLIGHT_EVENTS"); c && *c) {
    const long v = std::atol(c);
    if (v > 0) cap = static_cast<std::size_t>(v);
  }
  if (!global().open(path, cap)) {
    std::fprintf(stderr, "lore: cannot open flight ring %s\n", path.c_str());
    return std::nullopt;
  }
  install_signal_handlers();
  return path;
}

FlightRecorder& FlightRecorder::global() {
  // Leaked: the signal handler and atexit-ordered emit sites may touch it
  // during shutdown.
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

std::optional<FlightRingDump> decode_flight_file(const std::string& path,
                                                 std::string* err) {
  const auto fail = [&](const std::string& why) -> std::optional<FlightRingDump> {
    if (err) *err = why;
    return std::nullopt;
  };
  std::ifstream in(path, std::ios::binary);
  if (!in) return fail("cannot open " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (bytes.size() < kFlightHeaderBytes) return fail("short header");
  FlightHeaderRaw h;
  std::memcpy(&h, bytes.data(), sizeof h);
  if (std::memcmp(h.magic, kFlightMagic, sizeof h.magic) != 0)
    return fail("bad magic (not a lore.flight.v1 ring)");
  if (h.version != kFlightVersion) return fail("unsupported version");
  if (h.record_size != kFlightRecordBytes) return fail("unexpected record size");
  const std::uint64_t cap = h.capacity;
  if (cap == 0 || (cap & (cap - 1)) != 0 ||
      bytes.size() < kFlightHeaderBytes + cap * kFlightRecordBytes)
    return fail("truncated ring body");

  FlightRingDump dump;
  dump.version = h.version;
  dump.pid = h.pid;
  dump.sealed = h.sealed;
  dump.seal_signal = h.seal_signal;
  dump.seal_t_us = h.seal_t_us;
  dump.capacity = cap;
  dump.cursor = h.cursor;

  const char* body = bytes.data() + kFlightHeaderBytes;
  const std::uint64_t live = dump.cursor < cap ? dump.cursor : cap;
  const std::uint64_t first_seq = dump.cursor < cap ? 0 : dump.cursor - cap;
  for (std::uint64_t seq = first_seq; seq < first_seq + live; ++seq) {
    FlightSlot s;
    std::memcpy(&s, body + (seq & (cap - 1)) * kFlightRecordBytes, sizeof s);
    if (s.seq != seq || crc32(&s, offsetof(FlightSlot, crc)) != s.crc) {
      // Torn write (death mid-record) or a slot lapped by a newer seq whose
      // own write was itself torn. Either way: skip, count.
      ++dump.torn_records;
      continue;
    }
    FlightRecord r;
    r.seq = s.seq;
    r.t_us = s.t_us;
    r.a = s.a;
    r.value = s.value;
    r.span = s.span;
    r.kind = static_cast<EventKind>(s.kind);
    r.tid = s.tid;
    r.label.assign(s.label, strnlen(s.label, sizeof s.label));
    dump.records.push_back(std::move(r));
  }
  return dump;
}

}  // namespace lore::obs
