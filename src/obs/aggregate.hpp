// Background aggregation for the live telemetry pipeline (DESIGN.md §10).
//
// An `Aggregator` periodically (or on manual `tick()`) does three things:
//  1. drains the global `EventRing` and tallies the interval's events per
//     kind (`lore.events.v1` event stream -> per-interval counts);
//  2. snapshots `MetricsRegistry::global()` and differences the campaign /
//     parallel counters against the previous snapshot, turning monotonic
//     totals into per-interval deltas and rates (trials/s, timeout ratio,
//     mean queue depth);
//  3. feeds the interval into the `HealthMonitor`, publishes the `agg.*` and
//     `health.*` gauges back into the registry, and emits `kAlert` events
//     for any symptom the health loop raises.
//
// A bounded history of intervals is kept for the `/intervals.json` endpoint,
// the bench artifacts (`BENCH_*.json` gains an `intervals` array), and
// `scripts/lore_top.py`. With `interval == 0` no thread is spawned and the
// owner drives `tick()` manually (tests, deterministic flushes).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "src/obs/health.hpp"
#include "src/obs/json.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/ring.hpp"

namespace lore::obs {

/// One finished aggregation interval of the live pipeline.
struct IntervalStats {
  std::uint64_t seq = 0;
  double t_start_us = 0.0;  // TraceRecorder::now_us timeline
  double t_end_us = 0.0;
  double dt_s = 0.0;

  // Event-stream view (from the ring; subject to drop accounting).
  std::uint64_t events = 0;
  std::uint64_t events_dropped = 0;  // drops observed during this interval
  std::uint64_t per_kind[kEventKindCount] = {};

  // Exact counter deltas (from the registry; never dropped).
  std::uint64_t trials_completed = 0;  // campaign + parallel_for_trials
  std::uint64_t timeouts = 0;          // timed-out attempts
  std::uint64_t retries = 0;
  std::uint64_t failures = 0;
  std::uint64_t checkpoints = 0;

  // Derived rates.
  double trials_per_s = 0.0;
  double events_per_s = 0.0;
  double timeout_rate = 0.0;  // timeouts / (completed + timeouts + failures)
  double queue_depth = 0.0;   // mean submit-time queue depth this interval

  std::size_t alerts = 0;  // health alerts raised by this interval
};

struct AggregatorConfig {
  /// Aggregation period; 0 = no background thread, manual tick() only.
  std::chrono::milliseconds interval{500};
  /// Intervals retained for /intervals.json and the bench artifact.
  std::size_t history = 240;
  /// Events drained per tick at most (bounds tick latency under floods).
  std::size_t max_events_per_tick = 65536;
  HealthConfig health;
};

class Aggregator {
 public:
  explicit Aggregator(AggregatorConfig cfg = {},
                      MetricsRegistry& registry = MetricsRegistry::global(),
                      EventRing& ring = EventRing::global());
  ~Aggregator();

  Aggregator(const Aggregator&) = delete;
  Aggregator& operator=(const Aggregator&) = delete;

  /// Enable the ring, attach the drop counter, and (when interval > 0)
  /// spawn the aggregation thread. Idempotent.
  void start();
  /// Final tick, then stop the thread and disable the ring.
  void stop();
  bool running() const { return running_.load(std::memory_order_relaxed); }

  /// Aggregate everything since the previous tick into one interval.
  /// Thread-safe (serialized against the background thread).
  IntervalStats tick();

  std::vector<IntervalStats> history() const;
  IntervalStats latest() const;
  std::uint64_t intervals() const;

  const HealthMonitor& health() const { return health_; }
  HealthStatus health_status() const { return health_.status(); }

  /// {"schema":"lore.intervals.v1","intervals":[...]} of the retained
  /// history, oldest first. Deterministic field order.
  Json intervals_json() const;

 private:
  void loop();
  IntervalStats tick_locked();

  AggregatorConfig cfg_;
  MetricsRegistry& registry_;
  EventRing& ring_;
  HealthMonitor health_;

  mutable std::mutex mu_;          // guards history_ + tick state
  std::deque<IntervalStats> history_;
  std::uint64_t seq_ = 0;
  double last_tick_us_ = 0.0;
  std::uint64_t last_dropped_ = 0;
  std::vector<std::pair<std::string, std::uint64_t>> last_counters_;
  double last_queue_sum_ = 0.0;
  std::uint64_t last_queue_count_ = 0;
  std::vector<Event> scratch_;

  std::thread thread_;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;      // guarded by stop_mu_
  std::atomic<bool> running_{false};
};

/// JSON object of one interval (shared by intervals_json and bench_util).
Json interval_to_json(const IntervalStats& iv);

}  // namespace lore::obs
