// RAII trace spans and timers. A `Span` marks a named region of work; on
// destruction it records one complete event (name, category, start, duration,
// thread, nesting depth) into a `TraceRecorder`, whose buffer exports to the
// Chrome `chrome://tracing` / Perfetto JSON format (export.hpp). A
// `ScopedTimer` is the metrics-side sibling: it feeds the elapsed time of a
// scope into a registry histogram so hot-path latencies get percentiles.
//
// Recording is off unless the `LORE_TRACE` environment variable names an
// output file (or `TraceRecorder::set_enabled(true)` is called), so spans on
// hot paths cost one branch when tracing is disabled.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/metrics.hpp"

namespace lore::obs {

/// 128-bit trace identity: one per distributed unit of work (a fabric
/// campaign, a scenario run). Zero means "no trace" — spans still record
/// locally, they just cannot be stitched across processes.
struct TraceId {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  bool valid() const { return (hi | lo) != 0; }
  friend bool operator==(const TraceId&, const TraceId&) = default;
};

/// 64-bit span identity, unique within a trace. 0 = none.
using SpanId = std::uint64_t;

/// The ambient trace position of the calling thread: which trace we are in
/// and which span is the innermost open one (the parent of any span opened
/// next). Propagated across threads with TraceContextScope and across
/// processes in `lore.fabric.v1` frame heads.
struct TraceContext {
  TraceId trace;
  SpanId span = 0;
  bool valid() const { return trace.valid(); }
};

/// Process-unique random ids (splitmix64 over a pid/clock/ASLR seed). Ids
/// are intentionally non-deterministic: spans are advisory telemetry, the
/// determinism contract covers only trial results and counters.
TraceId make_trace_id();
SpanId make_span_id();

/// Thread-local ambient context (zero-initialized per thread).
TraceContext current_trace_context();

/// RAII installer of a thread's ambient context — use to adopt a remote
/// parent (fabric worker shards) or to carry the spawning thread's context
/// into a parallel_for body. Restores the previous context on destruction.
class TraceContextScope {
 public:
  explicit TraceContextScope(const TraceContext& ctx);
  ~TraceContextScope();
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext prev_;
};

/// Wire encoding of ids: fixed-width lowercase hex (ids are 64-bit, the JSON
/// model's integers are signed — hex strings dodge the sign bit).
std::string span_id_hex(SpanId id);
std::string trace_id_hex(const TraceId& id);
/// Inverses; malformed input parses to 0 / the invalid TraceId.
SpanId span_id_from_hex(std::string_view s);
TraceId trace_id_from_hex(std::string_view s);

/// One completed span, in Chrome-trace "complete event" terms.
struct TraceEvent {
  std::string name;
  std::string category;
  double start_us = 0.0;  // relative to process start
  double dur_us = 0.0;
  std::uint32_t tid = 0;  // dense per-process thread id, not the OS id
  std::uint32_t depth = 0;  // nesting level at the span's open
  TraceId trace;          // distributed trace this span belongs to (may be 0)
  SpanId span = 0;        // this span's id (0 when ids were not generated)
  SpanId parent = 0;      // enclosing span at open (0 = root)
  std::uint32_t pid = 0;  // 0 = this process; set when stitching remote spans
};

/// Thread-safe append-only buffer of completed spans.
class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  bool recording() const { return recording_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { recording_.store(on, std::memory_order_relaxed); }

  void record(TraceEvent event);
  std::vector<TraceEvent> events() const;
  std::size_t event_count() const;
  void clear();

  /// Process-wide recorder; starts enabled iff `LORE_TRACE` is set.
  static TraceRecorder& global();

  /// Monotonic microseconds since process start (first call anchors zero).
  static double now_us();
  /// Dense thread id: 0 for the first thread that asks, 1 for the next, ...
  static std::uint32_t thread_id();

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::atomic<bool> recording_{false};
};

/// RAII span over the global recorder. Nesting is tracked per thread, so
/// concurrent campaign workers each get their own well-formed stack.
class Span {
 public:
  explicit Span(std::string name, std::string category = "lore");
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  double elapsed_us() const { return TraceRecorder::now_us() - start_us_; }

  /// This span's id (0 when neither the recorder nor an event stream was
  /// enabled at construction, so no identity was generated).
  SpanId id() const { return id_; }
  SpanId parent() const { return parent_; }
  TraceId trace() const { return trace_; }

  /// Current nesting depth on the calling thread (0 = no open span).
  static std::uint32_t current_depth();

 private:
  std::string name_;
  std::string category_;
  double start_us_;
  std::uint32_t depth_;
  bool active_;  // false when recording was off at construction
  SpanId id_ = 0;
  SpanId parent_ = 0;
  TraceId trace_;
  TraceContext prev_ctx_;
  bool ctx_pushed_ = false;
};

/// RAII timer that observes the scope's wall time (µs) into a histogram.
/// Resolve the histogram once and reuse it in loops; the per-scope cost is
/// two clock reads and one lock-free observe.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist);
  /// Convenience: registry histogram `name` with the default time buckets.
  ScopedTimer(MetricsRegistry& registry, const std::string& name);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* hist_;  // null when obs is disabled at construction
  double start_us_ = 0.0;
};

}  // namespace lore::obs
