// RAII trace spans and timers. A `Span` marks a named region of work; on
// destruction it records one complete event (name, category, start, duration,
// thread, nesting depth) into a `TraceRecorder`, whose buffer exports to the
// Chrome `chrome://tracing` / Perfetto JSON format (export.hpp). A
// `ScopedTimer` is the metrics-side sibling: it feeds the elapsed time of a
// scope into a registry histogram so hot-path latencies get percentiles.
//
// Recording is off unless the `LORE_TRACE` environment variable names an
// output file (or `TraceRecorder::set_enabled(true)` is called), so spans on
// hot paths cost one branch when tracing is disabled.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/metrics.hpp"

namespace lore::obs {

/// One completed span, in Chrome-trace "complete event" terms.
struct TraceEvent {
  std::string name;
  std::string category;
  double start_us = 0.0;  // relative to process start
  double dur_us = 0.0;
  std::uint32_t tid = 0;  // dense per-process thread id, not the OS id
  std::uint32_t depth = 0;  // nesting level at the span's open
};

/// Thread-safe append-only buffer of completed spans.
class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  bool recording() const { return recording_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { recording_.store(on, std::memory_order_relaxed); }

  void record(TraceEvent event);
  std::vector<TraceEvent> events() const;
  std::size_t event_count() const;
  void clear();

  /// Process-wide recorder; starts enabled iff `LORE_TRACE` is set.
  static TraceRecorder& global();

  /// Monotonic microseconds since process start (first call anchors zero).
  static double now_us();
  /// Dense thread id: 0 for the first thread that asks, 1 for the next, ...
  static std::uint32_t thread_id();

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::atomic<bool> recording_{false};
};

/// RAII span over the global recorder. Nesting is tracked per thread, so
/// concurrent campaign workers each get their own well-formed stack.
class Span {
 public:
  explicit Span(std::string name, std::string category = "lore");
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  double elapsed_us() const { return TraceRecorder::now_us() - start_us_; }

  /// Current nesting depth on the calling thread (0 = no open span).
  static std::uint32_t current_depth();

 private:
  std::string name_;
  std::string category_;
  double start_us_;
  std::uint32_t depth_;
  bool active_;  // false when recording was off at construction
};

/// RAII timer that observes the scope's wall time (µs) into a histogram.
/// Resolve the histogram once and reuse it in loops; the per-scope cost is
/// two clock reads and one lock-free observe.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist);
  /// Convenience: registry histogram `name` with the default time buckets.
  ScopedTimer(MetricsRegistry& registry, const std::string& name);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* hist_;  // null when obs is disabled at construction
  double start_us_ = 0.0;
};

}  // namespace lore::obs
