// Self-monitoring health loop (DESIGN.md §10): the paper's symptom-based
// detection (Sec. III-B3, WarningNet [32]) applied to the repository's own
// telemetry. The Aggregator feeds each finished interval into a
// `HealthMonitor`, which combines absolute thresholds (timeout ratio, pool
// saturation) with streaming EWMA z-score detectors (throughput collapse,
// generic spikes) to classify the running campaign as ok or degraded, set the
// `health.*` gauges, and raise `kAlert` events. `src/arch/symptom` re-exports
// the EWMA detector as `EwmaSymptomDetector` so the same machinery watches
// simulated fleet telemetry at the architecture layer.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace lore::obs {

/// Streaming anomaly detector: exponentially weighted moving estimates of
/// mean and variance, flagging samples more than `k_sigma` standard
/// deviations away from the running mean. The first `warmup` samples only
/// train the estimates (a cold detector never alerts). Deterministic: state
/// is a pure function of the fed sequence.
class EwmaDetector {
 public:
  explicit EwmaDetector(double alpha = 0.3, double k_sigma = 4.0,
                        std::size_t warmup = 3)
      : alpha_(alpha), k_sigma_(k_sigma), warmup_(warmup) {}

  /// Feed one sample; returns true when it is anomalous (pre-update test,
  /// post-warmup). The sample always updates the estimates afterwards, so a
  /// sustained shift eventually becomes the new normal.
  bool update(double x);

  double mean() const { return mean_; }
  double sigma() const;
  std::size_t samples() const { return n_; }
  bool warmed_up() const { return n_ >= warmup_; }
  void reset();

 private:
  double alpha_;
  double k_sigma_;
  std::size_t warmup_;
  double mean_ = 0.0;
  double var_ = 0.0;
  std::size_t n_ = 0;
};

/// Thresholds of the health loop. Absolute limits catch outright failure
/// modes; the EWMA terms catch relative degradation of a previously healthy
/// run.
struct HealthConfig {
  /// Alert when the interval's timeout ratio (timed-out attempts over
  /// attempted trials) exceeds this.
  double timeout_rate_alert = 0.10;
  /// Alert when the mean submit-time queue depth of the interval exceeds
  /// this (pool saturation); 0 disables.
  double queue_depth_alert = 0.0;
  /// Alert when interval throughput falls below this fraction of the EWMA
  /// mean while trials are still being attempted (throughput collapse).
  double throughput_collapse_ratio = 0.25;
  /// EWMA smoothing and z-score threshold for the relative detectors.
  double ewma_alpha = 0.3;
  double k_sigma = 4.0;
  /// Intervals before the relative detectors may alert.
  std::size_t warmup_intervals = 3;
  /// Consecutive clean intervals required to leave the degraded state.
  std::size_t recovery_intervals = 3;
};

enum class HealthState : std::uint8_t { kOk = 0, kDegraded = 1 };

const char* health_state_name(HealthState s);

/// One raised alert: which signal tripped, at what value, against what
/// threshold, on which aggregation interval.
struct HealthAlert {
  std::string signal;  // e.g. "health.timeout_rate"
  double value = 0.0;
  double threshold = 0.0;
  std::uint64_t interval_seq = 0;
};

struct HealthStatus {
  HealthState state = HealthState::kOk;
  std::uint64_t alerts_total = 0;
  /// Alerts of the most recent degraded episode (cleared on recovery).
  std::vector<HealthAlert> recent;
};

/// The per-interval signals the monitor consumes (filled by the Aggregator
/// from counter deltas and drained events; see aggregate.hpp).
struct HealthSample {
  std::uint64_t interval_seq = 0;
  double dt_s = 0.0;               // interval wall length
  std::uint64_t trials_attempted = 0;  // completed + timed-out + failed
  double trials_per_s = 0.0;
  double timeout_rate = 0.0;       // timed-out attempts / attempted
  double queue_depth = 0.0;        // mean submit-time queue depth, 0 if idle
};

/// Threshold + EWMA symptom detector over the live interval series.
/// Thread-safe; normally driven by the Aggregator thread and read by the
/// /healthz handler.
class HealthMonitor {
 public:
  explicit HealthMonitor(HealthConfig cfg = {}) : cfg_(cfg) {}

  /// Feed one interval; returns the alerts it raised (empty = clean).
  std::vector<HealthAlert> update(const HealthSample& s);

  HealthStatus status() const;
  HealthState state() const { return status().state; }
  const HealthConfig& config() const { return cfg_; }
  void reset();

 private:
  HealthConfig cfg_;
  mutable std::mutex mu_;
  EwmaDetector throughput_{0.3, 4.0, 3};
  bool detectors_init_ = false;
  HealthState state_ = HealthState::kOk;
  std::size_t clean_streak_ = 0;
  std::uint64_t alerts_total_ = 0;
  std::vector<HealthAlert> recent_;
};

}  // namespace lore::obs
