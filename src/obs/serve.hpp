// Std-only TCP exposition server for the live telemetry pipeline
// (DESIGN.md §10). Serves, over plain HTTP/1.0 on a loopback (by default)
// socket:
//
//   GET /metrics        Prometheus text exposition of the current registry
//   GET /metrics.json   the existing `lore.metrics.v1` JSON document
//   GET /intervals.json the Aggregator's per-interval history
//                       (`lore.intervals.v1`)
//   GET /trace.json     the global TraceRecorder's span buffer as a Chrome
//                       trace — on a fabric coordinator, the merged fleet
//                       trace so far
//   GET /healthz        200 {"status":"ok"} or 503 {"status":"degraded",...}
//                       from the self-monitoring health loop
//
// The server is deliberately minimal — one accept thread, one request per
// connection, no keep-alive — because its job is a scrape target for
// `curl`, Prometheus, and `scripts/lore_top.py`, not a web framework.
// Opt-in: nothing listens unless `Pipeline::start` is given a port (the
// benches wire `LORE_SERVE=<port>`); a campaign's results and counters are
// bit-identical with the server on or off.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "src/obs/aggregate.hpp"
#include "src/obs/metrics.hpp"

namespace lore::obs {

struct ServeConfig {
  /// TCP port to bind; 0 picks an ephemeral port (see MetricsServer::port).
  std::uint16_t port = 0;
  /// Bind address; loopback by default so a bench never listens publicly
  /// unless explicitly asked to.
  std::string bind_address = "127.0.0.1";
};

class MetricsServer {
 public:
  /// `aggregator` may be null (then /intervals.json serves an empty history
  /// and /healthz is always ok).
  explicit MetricsServer(Aggregator* aggregator = nullptr,
                         MetricsRegistry& registry = MetricsRegistry::global());
  ~MetricsServer();

  MetricsServer(const MetricsServer&) = delete;
  MetricsServer& operator=(const MetricsServer&) = delete;

  /// Bind + listen + spawn the accept thread. Returns false when the socket
  /// cannot be bound or the pipeline is compiled out (-DLORE_OBS=OFF).
  bool start(const ServeConfig& cfg = {});
  void stop();
  bool running() const { return running_; }
  /// The actually bound port (resolves port 0), 0 when not running.
  std::uint16_t port() const { return port_; }

 private:
  void accept_loop();
  std::string handle_request(const std::string& request_line) const;

  Aggregator* aggregator_;
  MetricsRegistry& registry_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};  // read by the accept thread
};

/// The opt-in live half of `src/obs` as one switch: a global Aggregator
/// (+ health loop) and, when a port is configured, the exposition server.
struct PipelineConfig {
  AggregatorConfig aggregator;
  /// Port for the exposition server; negative = aggregator only, no server.
  int port = -1;
  std::string bind_address = "127.0.0.1";
};

class Pipeline {
 public:
  Pipeline() = default;
  ~Pipeline() { stop(); }

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Start the aggregator (and server when cfg.port >= 0). Returns false when
  /// already running, the pipeline is compiled out, or the server cannot
  /// bind (in which case nothing is left running).
  bool start(const PipelineConfig& cfg = {});
  void stop();
  bool running() const { return aggregator_ != nullptr; }

  Aggregator* aggregator() { return aggregator_.get(); }
  MetricsServer* server() { return server_.get(); }

  /// The process-wide pipeline (benches, LORE_SERVE).
  static Pipeline& global();

 private:
  std::unique_ptr<Aggregator> aggregator_;
  std::unique_ptr<MetricsServer> server_;
};

/// `LORE_SERVE=<port>` -> start the global pipeline with the exposition
/// server on that port (0 = ephemeral). Unset/empty/invalid -> false, and
/// nothing starts. Prints one stderr line with the bound port on success.
bool start_pipeline_from_env();

}  // namespace lore::obs
