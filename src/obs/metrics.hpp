// First-party observability: a thread-safe registry of named counters,
// gauges, and fixed-bucket histograms. This is the Fig. 1 manager's own
// instrument panel — every layer (campaign engines, STA, characterization,
// rollback Monte Carlo, the RL governor) reports through it, and the sinks in
// export.hpp turn a snapshot into JSON, a Chrome trace, or a text table.
//
// Deliberately dependency-free (std only) so that even `lore_common` — the
// bottom of the library stack — can link against it and instrument the
// parallel campaign engine without a cycle.
//
// Determinism contract: counter values are sums of integer increments, so a
// campaign that runs the same trials produces bit-identical counters for any
// thread count. Gauges are last-writer-wins and must only be set from
// deterministic (serial) call sites. Histogram *values* fed from wall-clock
// timers are inherently nondeterministic; their bucket layout and count are
// not, and determinism tests compare counters only.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lore::obs {

/// Monotonic event counter. All operations are lock-free relaxed atomics:
/// increments commute, so the total is scheduling-independent.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-writer-wins instantaneous value (temperature, reward, epsilon, ...).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `upper_bounds` are the inclusive upper edges of
/// the finite buckets; one overflow bucket catches everything above the last
/// edge. Observation is lock-free; percentiles are estimated by linear
/// interpolation inside the bucket holding the requested rank, clamped to
/// the observed [min, max].
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double x);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  double min() const;  // +inf when empty
  double max() const;  // -inf when empty
  /// Quantile estimate for q in [0, 1] (0 when empty).
  double percentile(double q) const;

  const std::vector<double>& upper_bounds() const { return bounds_; }
  /// Finite buckets followed by the overflow bucket (size = bounds + 1).
  std::vector<std::uint64_t> bucket_counts() const;

  void reset();

  /// `n` geometrically spaced edges covering [lo, hi] (lo > 0).
  static std::vector<double> exponential_bounds(double lo, double hi, std::size_t n);
  /// `n` evenly spaced edges covering [lo, hi].
  static std::vector<double> linear_bounds(double lo, double hi, std::size_t n);
  /// Default edges for microsecond timings: 1 us .. 10 s, geometric.
  static std::vector<double> default_time_bounds_us();

 private:
  std::vector<double> bounds_;                      // sorted upper edges
  std::vector<std::atomic<std::uint64_t>> buckets_; // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Point-in-time copy of one histogram, with precomputed quantiles.
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  std::vector<double> upper_bounds;
  std::vector<std::uint64_t> buckets;
};

/// Point-in-time copy of a whole registry, sorted by instrument name (the
/// export formats inherit that deterministic order).
struct Snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;

  bool empty() const { return counters.empty() && gauges.empty() && histograms.empty(); }
  /// Counter value by name (0 when absent) — convenience for tests/benches.
  std::uint64_t counter_value(const std::string& name) const;
};

/// Named-instrument registry. Lookup takes a mutex; the returned references
/// are stable for the registry's lifetime, so hot paths resolve once and
/// then update lock-free.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `upper_bounds` is used only on first registration (empty = default time
  /// buckets); later calls with the same name return the existing histogram
  /// unchanged — first registration wins. Re-registering a name with a
  /// *different* non-empty bucket layout is almost always a bug (the caller
  /// expects its layout but observes into another), so the mismatch is
  /// detected and warned about on stderr, once per name.
  Histogram& histogram(const std::string& name, std::vector<double> upper_bounds = {});

  Snapshot snapshot() const;
  /// Zero every instrument (registrations and cached references survive).
  void reset();

  /// The process-wide registry all built-in instrumentation reports to.
  static MetricsRegistry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, bool> histogram_layout_warned_;  // once-per-name
};

/// Runtime switch for all built-in instrumentation (macros in obs.hpp and
/// the instrumented hot paths consult it). Initialized once from the
/// `LORE_OBS` environment variable: "0", "off", or "false" disable.
bool enabled();
/// Override the environment (used by `--quiet` bench mode and tests).
void set_enabled(bool on);

}  // namespace lore::obs
