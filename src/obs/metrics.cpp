#include "src/obs/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace lore::obs {
namespace {

/// Relaxed CAS-min/max for atomic doubles (observe() races are benign).
void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void Histogram::observe(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, x);
  atomic_min(min_, x);
  atomic_max(max_, x);
}

double Histogram::mean() const {
  const auto n = count();
  return n ? sum() / static_cast<double>(n) : 0.0;
}

double Histogram::min() const { return min_.load(std::memory_order_relaxed); }
double Histogram::max() const { return max_.load(std::memory_order_relaxed); }

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

double Histogram::percentile(double q) const {
  const auto counts = bucket_counts();
  std::uint64_t total = 0;
  for (auto c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);

  std::uint64_t below = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const std::uint64_t upto = below + counts[i];
    if (static_cast<double>(upto) >= rank) {
      // Interpolate the rank position across this bucket's edge span; the
      // open edges (below the first bound / above the last) fall back to the
      // observed extremes.
      const double lo = i == 0 ? min() : bounds_[i - 1];
      const double hi = i < bounds_.size() ? bounds_[i] : max();
      const double within =
          (rank - static_cast<double>(below)) / static_cast<double>(counts[i]);
      const double v = lo + (hi - lo) * std::clamp(within, 0.0, 1.0);
      return std::clamp(v, min(), max());
    }
    below = upto;
  }
  return max();
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

std::vector<double> Histogram::exponential_bounds(double lo, double hi, std::size_t n) {
  assert(lo > 0.0 && hi > lo && n >= 2);
  std::vector<double> edges(n);
  const double ratio = std::pow(hi / lo, 1.0 / static_cast<double>(n - 1));
  double v = lo;
  for (std::size_t i = 0; i < n; ++i, v *= ratio) edges[i] = v;
  edges.back() = hi;
  return edges;
}

std::vector<double> Histogram::linear_bounds(double lo, double hi, std::size_t n) {
  assert(hi > lo && n >= 2);
  std::vector<double> edges(n);
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) edges[i] = lo + step * static_cast<double>(i);
  edges.back() = hi;
  return edges;
}

std::vector<double> Histogram::default_time_bounds_us() {
  return exponential_bounds(1.0, 1e7, 29);  // 1 us .. 10 s, ~1.78x per bucket
}

std::uint64_t Snapshot::counter_value(const std::string& name) const {
  for (const auto& [n, v] : counters)
    if (n == name) return v;
  return 0;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  std::lock_guard lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    if (upper_bounds.empty()) upper_bounds = Histogram::default_time_bounds_us();
    slot = std::make_unique<Histogram>(std::move(upper_bounds));
  } else if (!upper_bounds.empty() && upper_bounds != slot->upper_bounds()) {
    // First-registration-wins is the contract, but a caller that asked for a
    // different layout will silently observe into buckets it did not expect;
    // surface the mismatch once per name instead of ignoring it.
    bool& warned = histogram_layout_warned_[name];
    if (!warned) {
      warned = true;
      std::fprintf(stderr,
                   "lore: obs: histogram '%s' re-registered with a different "
                   "bucket layout (%zu vs %zu edges); keeping the first "
                   "registration's buckets\n",
                   name.c_str(), upper_bounds.size(), slot->upper_bounds().size());
    }
  }
  return *slot;
}

Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mu_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) snap.counters.emplace_back(name, c->value());
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace_back(name, g->value());
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.count = h->count();
    hs.sum = h->sum();
    hs.min = hs.count ? h->min() : 0.0;
    hs.max = hs.count ? h->max() : 0.0;
    hs.p50 = h->percentile(0.50);
    hs.p95 = h->percentile(0.95);
    hs.p99 = h->percentile(0.99);
    hs.upper_bounds = h->upper_bounds();
    hs.buckets = h->bucket_counts();
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

namespace {

bool env_enabled() {
  const char* v = std::getenv("LORE_OBS");
  if (!v) return true;
  return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
           std::strcmp(v, "false") == 0);
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{env_enabled()};
  return flag;
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }
void set_enabled(bool on) { enabled_flag().store(on, std::memory_order_relaxed); }

}  // namespace lore::obs
