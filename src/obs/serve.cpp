#include "src/obs/serve.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/obs/export.hpp"
#include "src/obs/netutil.hpp"

#ifndef LORE_OBS_DISABLED
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace lore::obs {

MetricsServer::MetricsServer(Aggregator* aggregator, MetricsRegistry& registry)
    : aggregator_(aggregator), registry_(registry) {}

MetricsServer::~MetricsServer() { stop(); }

#ifndef LORE_OBS_DISABLED

bool MetricsServer::start(const ServeConfig& cfg) {
  if (running_) return false;
  const auto sock = listen_tcp(cfg.bind_address, cfg.port);
  if (!sock) return false;
  port_ = sock->port;
  listen_fd_ = sock->fd;
  running_ = true;
  thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void MetricsServer::stop() {
  if (!running_) return;
  running_ = false;  // accept_loop polls this between accepts
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  port_ = 0;
}

void MetricsServer::accept_loop() {
  while (running_) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (!running_) return;
    if (ready <= 0 || !(pfd.revents & POLLIN)) continue;
    const int client = accept_retry(listen_fd_);
    if (client < 0) continue;

    // One short request per connection: read until the end of the request
    // line (we route on the method + path alone).
    std::string req;
    char buf[1024];
    while (req.find("\r\n") == std::string::npos && req.size() < 8192) {
      const long n = recv_retry(client, buf, sizeof buf);
      if (n <= 0) break;
      req.append(buf, static_cast<std::size_t>(n));
    }
    const auto eol = req.find("\r\n");
    const std::string response =
        handle_request(eol == std::string::npos ? req : req.substr(0, eol));
    send_all(client, response.data(), response.size());
    ::shutdown(client, SHUT_RDWR);
    ::close(client);
  }
}

namespace {

std::string http_response(int status, const char* reason,
                          const std::string& content_type,
                          const std::string& body) {
  std::string out = "HTTP/1.0 " + std::to_string(status) + " " + reason + "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

std::string MetricsServer::handle_request(const std::string& request_line) const {
  // "GET /path HTTP/1.x" -> path
  if (request_line.rfind("GET ", 0) != 0)
    return http_response(405, "Method Not Allowed", "text/plain",
                         "only GET is supported\n");
  const auto path_start = 4u;
  const auto path_end = request_line.find(' ', path_start);
  std::string path = request_line.substr(
      path_start, path_end == std::string::npos ? std::string::npos
                                                : path_end - path_start);
  const auto query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  if (path == "/metrics")
    return http_response(200, "OK",
                         "text/plain; version=0.0.4; charset=utf-8",
                         prometheus_text(registry_.snapshot()));
  if (path == "/metrics.json")
    return http_response(200, "OK", "application/json",
                         metrics_to_json(registry_.snapshot()).dump(2) + "\n");
  if (path == "/intervals.json") {
    const Json doc = aggregator_ ? aggregator_->intervals_json() : [] {
      Json d = Json::object();
      d["schema"] = "lore.intervals.v1";
      d["intervals"] = Json::array();
      return d;
    }();
    return http_response(200, "OK", "application/json", doc.dump(2) + "\n");
  }
  if (path == "/trace.json")
    return http_response(
        200, "OK", "application/json",
        chrome_trace_json(TraceRecorder::global().events()).dump(2) + "\n");
  if (path == "/healthz") {
    const HealthStatus st =
        aggregator_ ? aggregator_->health_status() : HealthStatus{};
    Json body = Json::object();
    body["status"] = health_state_name(st.state);
    body["alerts_total"] = st.alerts_total;
    Json alerts = Json::array();
    for (const auto& a : st.recent) {
      Json aj = Json::object();
      aj["signal"] = a.signal;
      aj["value"] = a.value;
      aj["threshold"] = a.threshold;
      aj["interval"] = a.interval_seq;
      alerts.push_back(std::move(aj));
    }
    body["alerts"] = std::move(alerts);
    const bool ok = st.state == HealthState::kOk;
    return http_response(ok ? 200 : 503, ok ? "OK" : "Service Unavailable",
                         "application/json", body.dump(2) + "\n");
  }
  return http_response(404, "Not Found", "text/plain",
                       "unknown path; try /metrics, /metrics.json, "
                       "/intervals.json, /trace.json, or /healthz\n");
}

bool Pipeline::start(const PipelineConfig& cfg) {
  if (aggregator_) return false;
  aggregator_ = std::make_unique<Aggregator>(cfg.aggregator);
  aggregator_->start();
  if (cfg.port >= 0) {
    server_ = std::make_unique<MetricsServer>(aggregator_.get());
    ServeConfig scfg;
    scfg.port = static_cast<std::uint16_t>(cfg.port);
    scfg.bind_address = cfg.bind_address;
    if (!server_->start(scfg)) {
      server_.reset();
      aggregator_->stop();
      aggregator_.reset();
      return false;
    }
  }
  return true;
}

void Pipeline::stop() {
  if (server_) {
    server_->stop();
    server_.reset();
  }
  if (aggregator_) {
    aggregator_->stop();
    aggregator_.reset();
  }
}

bool start_pipeline_from_env() {
  const char* v = std::getenv("LORE_SERVE");
  if (!v || !*v) return false;
  char* end = nullptr;
  const long port = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || port < 0 || port > 65535) {
    std::fprintf(stderr, "lore: ignoring invalid LORE_SERVE=%s\n", v);
    return false;
  }
  PipelineConfig cfg;
  cfg.port = static_cast<int>(port);
  if (!Pipeline::global().start(cfg)) {
    std::fprintf(stderr, "lore: cannot serve /metrics on port %ld\n", port);
    return false;
  }
  std::fprintf(stderr, "lore: serving /metrics on http://127.0.0.1:%u\n",
               Pipeline::global().server()->port());
  return true;
}

#else  // LORE_OBS_DISABLED: the whole pipeline compiles out.

bool MetricsServer::start(const ServeConfig&) { return false; }
void MetricsServer::stop() {}
void MetricsServer::accept_loop() {}
std::string MetricsServer::handle_request(const std::string&) const { return {}; }

bool Pipeline::start(const PipelineConfig&) { return false; }
void Pipeline::stop() {}

bool start_pipeline_from_env() { return false; }

#endif  // LORE_OBS_DISABLED

Pipeline& Pipeline::global() {
  static Pipeline pipeline;
  return pipeline;
}

}  // namespace lore::obs
