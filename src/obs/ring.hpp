// Bounded lock-free MPMC event ring — the transport of the live telemetry
// pipeline (DESIGN.md §10). Hot paths (campaign workers, parallel_for trials,
// spans) push fixed-size structured events; the background Aggregator drains
// them into per-interval rates. The ring NEVER blocks a producer: when it is
// full the event is dropped and accounted (`dropped()`, surfaced as the
// `obs.events_dropped` counter), so a stalled or absent consumer costs the
// hot path one failed CAS, not a stall.
//
// The queue is the classic bounded MPMC design of per-cell sequence numbers
// (Vyukov): each cell carries a ticket; producers claim a position with one
// CAS on the head, write the payload, and release the cell by bumping its
// sequence; consumers mirror the dance on the tail. Payloads are plain
// structs, so a push is one CAS + one 64-byte copy.
//
// Determinism contract: events carry wall-clock timestamps and are advisory
// telemetry only — nothing in the ring feeds back into trial execution, so
// campaign results and campaign counters are bit-identical whether the ring
// is enabled, disabled, full, or compiled out.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

#include "src/obs/metrics.hpp"

namespace lore::obs {

/// Structured event kinds of the `lore.events.v1` schema.
enum class EventKind : std::uint8_t {
  kTrialCompleted = 0,  // a = trial index, value = attempt wall time (us)
  kTrialTimeout,        // a = trial index (one timed-out attempt)
  kTrialRetry,          // a = trial index, value = attempt number
  kTrialFailed,         // a = trial index (one attempt threw)
  kCheckpointWritten,   // a = entries in the snapshot, value = write time (us)
  kSpanBegin,           // label = span name, a = parent span id
  kSpanEnd,             // label = span name, a = parent span id, value = duration (us)
  kAlert,               // label = signal name, value = offending value
  kTrialsPruned,        // a = trials pruned in a chunk, value = chunk's first trial
  kShardBegin,          // a = fabric shard id
  kShardEnd,            // a = fabric shard id, value = shard wall time (us)
};

inline constexpr std::size_t kEventKindCount = 11;

const char* event_kind_name(EventKind k);

/// One fixed-size telemetry event. `a` and `value` are kind-specific (see
/// EventKind); `label` is a truncated name for span/alert events. `span` is
/// the ambient span id at the emit site (0 = none) — the causal link from a
/// trial-level event to the chunk/shard/stage span it happened under.
struct Event {
  EventKind kind = EventKind::kTrialCompleted;
  std::uint32_t tid = 0;  // dense thread id (TraceRecorder::thread_id)
  double t_us = 0.0;      // TraceRecorder::now_us timeline
  std::uint64_t a = 0;
  double value = 0.0;
  std::uint64_t span = 0;
  char label[24] = {};

  void set_label(std::string_view s) {
    const std::size_t n = s.size() < sizeof(label) - 1 ? s.size() : sizeof(label) - 1;
    std::memcpy(label, s.data(), n);
    label[n] = '\0';
  }
};

/// Bounded lock-free MPMC ring of Events. Capacity is rounded up to a power
/// of two. Producers and consumers may be arbitrary threads.
class EventRing {
 public:
  explicit EventRing(std::size_t capacity);
  EventRing(const EventRing&) = delete;
  EventRing& operator=(const EventRing&) = delete;

  /// Non-blocking push. Returns false (and counts a drop) when full.
  bool try_push(const Event& e);
  /// Non-blocking pop. Returns false when empty.
  bool try_pop(Event& out);
  /// Pop up to `max` events into `out` (appended). Returns the number popped.
  std::size_t drain(std::vector<Event>& out, std::size_t max);

  std::size_t capacity() const { return mask_ + 1; }
  std::uint64_t pushed() const { return pushed_.load(std::memory_order_relaxed); }
  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Producer gate: emit sites check this one relaxed load before building an
  /// event, so an idle pipeline costs the hot path a single branch.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Mirror drops into a registry counter (`obs.events_dropped`); the pointer
  /// must outlive the ring's producers. Null detaches.
  void set_drop_counter(Counter* c) { drop_counter_.store(c, std::memory_order_release); }

  /// The process-wide ring all built-in emit sites push to. Capacity comes
  /// from `LORE_EVENT_RING` (default 8192 events).
  static EventRing& global();

 private:
  struct Cell {
    std::atomic<std::uint64_t> seq;
    Event event;
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_;
  alignas(64) std::atomic<std::uint64_t> head_{0};  // next enqueue ticket
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // next dequeue ticket
  alignas(64) std::atomic<std::uint64_t> pushed_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<bool> enabled_{false};
  std::atomic<Counter*> drop_counter_{nullptr};
};

/// True when any live event stream wants events: the global ring is enabled
/// or a flight recorder is open. The one-branch producer gate used by
/// LORE_OBS_EVENT and Span's event mirror.
bool event_stream_enabled();

/// Build + push one event onto every enabled stream — the global ring and,
/// when one is open, the crash-safe flight recorder (flight.hpp). Timestamp,
/// thread id, and the ambient span id are filled in. Call sites should use
/// the LORE_OBS_EVENT macro (obs.hpp), which short-circuits on
/// `event_stream_enabled()` and compiles out under -DLORE_OBS=OFF.
void emit_event(EventKind kind, std::uint64_t a = 0, double value = 0.0,
                std::string_view label = {});

}  // namespace lore::obs
