// Umbrella header + instrumentation macros for the observability subsystem.
//
// Instrument hot paths with the LORE_OBS_* macros rather than direct registry
// calls: when the library is configured with -DLORE_OBS=OFF (which defines
// LORE_OBS_DISABLED), every macro compiles to nothing, making the
// instrumentation zero-cost by construction. With the default build the
// macros still honour the runtime switch (`LORE_OBS=0` env or
// obs::set_enabled(false)), which reduces them to one predictable branch.
//
// The live half of the subsystem (DESIGN.md §10) — the event ring, the
// Aggregator, the health loop, and the /metrics exposition server — follows
// the same rule: LORE_OBS_EVENT costs one relaxed load while no pipeline is
// running, and -DLORE_OBS=OFF compiles the pipeline down to inert stubs.
#pragma once

#include "src/obs/aggregate.hpp"
#include "src/obs/export.hpp"
#include "src/obs/flight.hpp"
#include "src/obs/health.hpp"
#include "src/obs/json.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/ring.hpp"
#include "src/obs/serve.hpp"
#include "src/obs/span.hpp"

namespace lore::obs {

/// True when the instrumentation macros are compiled in (build-time switch).
#ifdef LORE_OBS_DISABLED
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

}  // namespace lore::obs

#ifdef LORE_OBS_DISABLED

// sizeof keeps the argument unevaluated (truly zero-cost) while still
// "using" locals that exist only to feed the instrumentation.
#define LORE_OBS_COUNT(name, n) ((void)sizeof(n))
#define LORE_OBS_GAUGE(name, v) ((void)sizeof(v))
#define LORE_OBS_OBSERVE(name, v) ((void)sizeof(v))
#define LORE_OBS_TIMER(var, name) ((void)0)
#define LORE_OBS_SPAN(var, name) ((void)0)
#define LORE_OBS_EVENT(kind, a, value) ((void)sizeof(a), (void)sizeof(value))

#else

/// Bump counter `name` by `n` on the global registry.
#define LORE_OBS_COUNT(name, n)                                         \
  do {                                                                  \
    if (::lore::obs::enabled())                                         \
      ::lore::obs::MetricsRegistry::global().counter(name).add(         \
          static_cast<std::uint64_t>(n));                               \
  } while (0)

/// Set gauge `name` to `v`. Call only from deterministic (serial) sites.
#define LORE_OBS_GAUGE(name, v)                                         \
  do {                                                                  \
    if (::lore::obs::enabled())                                         \
      ::lore::obs::MetricsRegistry::global().gauge(name).set(           \
          static_cast<double>(v));                                      \
  } while (0)

/// Observe value `v` into histogram `name` (default time buckets).
#define LORE_OBS_OBSERVE(name, v)                                       \
  do {                                                                  \
    if (::lore::obs::enabled())                                         \
      ::lore::obs::MetricsRegistry::global().histogram(name).observe(   \
          static_cast<double>(v));                                      \
  } while (0)

/// Declare a scoped timer `var` feeding histogram `name` (µs).
#define LORE_OBS_TIMER(var, name) \
  ::lore::obs::ScopedTimer var(::lore::obs::MetricsRegistry::global(), name)

/// Declare a trace span `var` named `name` on the global recorder.
#define LORE_OBS_SPAN(var, name) ::lore::obs::Span var(name)

/// Push one structured event onto every enabled stream (the global ring and
/// the flight recorder) — one relaxed-load branch while neither is active,
/// one CAS + 64-byte copy per active stream while one is.
#define LORE_OBS_EVENT(kind, a, value)                                  \
  do {                                                                  \
    if (::lore::obs::event_stream_enabled())                            \
      ::lore::obs::emit_event((kind), (a), (value));                    \
  } while (0)

#endif  // LORE_OBS_DISABLED
