// Umbrella header + instrumentation macros for the observability subsystem.
//
// Instrument hot paths with the LORE_OBS_* macros rather than direct registry
// calls: when the library is configured with -DLORE_OBS=OFF (which defines
// LORE_OBS_DISABLED), every macro compiles to nothing, making the
// instrumentation zero-cost by construction. With the default build the
// macros still honour the runtime switch (`LORE_OBS=0` env or
// obs::set_enabled(false)), which reduces them to one predictable branch.
#pragma once

#include "src/obs/export.hpp"
#include "src/obs/json.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/span.hpp"

namespace lore::obs {

/// True when the instrumentation macros are compiled in (build-time switch).
#ifdef LORE_OBS_DISABLED
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

}  // namespace lore::obs

#ifdef LORE_OBS_DISABLED

// sizeof keeps the argument unevaluated (truly zero-cost) while still
// "using" locals that exist only to feed the instrumentation.
#define LORE_OBS_COUNT(name, n) ((void)sizeof(n))
#define LORE_OBS_GAUGE(name, v) ((void)sizeof(v))
#define LORE_OBS_OBSERVE(name, v) ((void)sizeof(v))
#define LORE_OBS_TIMER(var, name) ((void)0)
#define LORE_OBS_SPAN(var, name) ((void)0)

#else

/// Bump counter `name` by `n` on the global registry.
#define LORE_OBS_COUNT(name, n)                                         \
  do {                                                                  \
    if (::lore::obs::enabled())                                         \
      ::lore::obs::MetricsRegistry::global().counter(name).add(         \
          static_cast<std::uint64_t>(n));                               \
  } while (0)

/// Set gauge `name` to `v`. Call only from deterministic (serial) sites.
#define LORE_OBS_GAUGE(name, v)                                         \
  do {                                                                  \
    if (::lore::obs::enabled())                                         \
      ::lore::obs::MetricsRegistry::global().gauge(name).set(           \
          static_cast<double>(v));                                      \
  } while (0)

/// Observe value `v` into histogram `name` (default time buckets).
#define LORE_OBS_OBSERVE(name, v)                                       \
  do {                                                                  \
    if (::lore::obs::enabled())                                         \
      ::lore::obs::MetricsRegistry::global().histogram(name).observe(   \
          static_cast<double>(v));                                      \
  } while (0)

/// Declare a scoped timer `var` feeding histogram `name` (µs).
#define LORE_OBS_TIMER(var, name) \
  ::lore::obs::ScopedTimer var(::lore::obs::MetricsRegistry::global(), name)

/// Declare a trace span `var` named `name` on the global recorder.
#define LORE_OBS_SPAN(var, name) ::lore::obs::Span var(name)

#endif  // LORE_OBS_DISABLED
