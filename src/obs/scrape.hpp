// Minimal HTTP/1.0 scrape client — the consumer side of serve.cpp, used by
// the campaign fabric's coordinator to poll each worker's /metrics.json and
// publish fleet-level aggregates (DESIGN.md §12). One request per
// connection, std-only, same netutil discipline as the server.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "src/obs/json.hpp"

namespace lore::obs {

/// GET `path` from host:port. Returns the response body on any 2xx status,
/// nullopt on connect failure, read error, or non-2xx. `timeout_ms` > 0
/// bounds every send/recv on the connection, so a peer that dies mid-scrape
/// (worker SIGKILLed between accept and response) fails the poll instead of
/// hanging it; <= 0 keeps the old unbounded blocking reads.
std::optional<std::string> http_get(const std::string& host, std::uint16_t port,
                                    const std::string& path, int timeout_ms = 0);

/// GET + parse /metrics.json (`lore.metrics.v1`). nullopt when the endpoint
/// is unreachable, times out, or the body is not valid JSON.
std::optional<Json> scrape_metrics_json(const std::string& host, std::uint16_t port,
                                        int timeout_ms = 0);

/// Convenience over a scraped `lore.metrics.v1` document: numeric value of
/// counter/gauge `name`, or nullopt when absent.
std::optional<double> metric_value(const Json& metrics_doc, const std::string& kind,
                                   const std::string& name);

}  // namespace lore::obs
