// Shared POSIX TCP helpers for every std-only socket user in LORE: the
// /metrics exposition server (serve.cpp), its scrape client (scrape.cpp),
// and the campaign fabric's coordinator/worker transport (src/fabric). One
// place owns the fiddly parts — SO_REUSEADDR, ephemeral-port resolution,
// EINTR retries, short reads/writes — so no caller duplicates them.
//
// Unlike the LORE_OBS_* instrumentation macros, these helpers do NOT compile
// out under -DLORE_OBS=OFF (like the Json model, they carry no observability
// state): the campaign fabric's transport keeps working in every preset.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace lore::obs {

/// A bound + listening TCP socket. `port` is the actually-bound port, so
/// requesting port 0 yields the kernel-chosen ephemeral port here.
struct ListenSocket {
  int fd = -1;
  std::uint16_t port = 0;
};

/// socket + SO_REUSEADDR + bind + listen + getsockname. Returns nullopt when
/// any step fails (address unparsable, port taken, ...); never leaks the fd.
std::optional<ListenSocket> listen_tcp(const std::string& bind_address,
                                       std::uint16_t port, int backlog = 16);

/// Blocking connect to host:port (IPv4 dotted quad). Returns the connected
/// fd, or -1 on failure. Retries EINTR.
int connect_tcp(const std::string& host, std::uint16_t port);

/// accept(2) retrying EINTR. Returns the client fd or -1 on a real error.
int accept_retry(int listen_fd);

/// recv(2) retrying EINTR. Returns bytes read, 0 on orderly EOF, -1 on error
/// (including a receive timeout installed by set_socket_timeout).
long recv_retry(int fd, void* buf, std::size_t n);

/// Bound every subsequent send/recv on `fd` to `timeout_ms` (SO_RCVTIMEO +
/// SO_SNDTIMEO); a blocked call then fails with EAGAIN instead of hanging on
/// a dead peer. <= 0 clears the bound. Returns false if setsockopt fails.
bool set_socket_timeout(int fd, int timeout_ms);

/// Write all of `data`, retrying EINTR and short writes (MSG_NOSIGNAL so a
/// dead peer surfaces as an error, not SIGPIPE). True when every byte went.
bool send_all(int fd, const void* data, std::size_t n);

/// Read exactly `n` bytes, retrying EINTR and short reads. False on EOF or
/// error before `n` bytes arrive.
bool recv_all(int fd, void* buf, std::size_t n);

/// close(2), ignoring errors; safe on -1.
void close_fd(int fd);

}  // namespace lore::obs
