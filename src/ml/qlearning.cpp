#include "src/ml/qlearning.hpp"

#include <algorithm>
#include <cassert>
#include <span>

namespace lore::ml {

QLearner::QLearner(std::size_t num_states, std::size_t num_actions, Config cfg)
    : num_states_(num_states),
      num_actions_(num_actions),
      cfg_(cfg),
      epsilon_(cfg.epsilon),
      table_(num_states * num_actions, 0.0),
      rng_(cfg.seed) {
  assert(num_states > 0 && num_actions > 0);
}

std::size_t QLearner::select_action(std::size_t state) {
  assert(state < num_states_);
  if (rng_.bernoulli(epsilon_)) return static_cast<std::size_t>(rng_.uniform_index(num_actions_));
  return best_action(state);
}

std::size_t QLearner::best_action(std::size_t state) const {
  assert(state < num_states_);
  const auto* row = table_.data() + state * num_actions_;
  return static_cast<std::size_t>(std::max_element(row, row + num_actions_) - row);
}

void QLearner::update(std::size_t state, std::size_t action, double reward,
                      std::size_t next_state, std::size_t next_action, bool terminal) {
  assert(state < num_states_ && action < num_actions_ && next_state < num_states_);
  double target = reward;
  if (!terminal) {
    const double future = cfg_.sarsa ? q(next_state, next_action) : max_q(next_state);
    target += cfg_.gamma * future;
  }
  double& cell = table_[state * num_actions_ + action];
  cell += cfg_.alpha * (target - cell);
}

void QLearner::end_episode() {
  epsilon_ = std::max(cfg_.epsilon_min, epsilon_ * cfg_.epsilon_decay);
}

double QLearner::q(std::size_t state, std::size_t action) const {
  assert(state < num_states_ && action < num_actions_);
  return table_[state * num_actions_ + action];
}

double QLearner::max_q(std::size_t state) const {
  const auto* row = table_.data() + state * num_actions_;
  return *std::max_element(row, row + num_actions_);
}

GridDiscretizer::GridDiscretizer(std::vector<Dim> dims) : dims_(std::move(dims)) {
  total_ = 1;
  for (const auto& d : dims_) {
    assert(d.bins > 0 && d.hi > d.lo);
    total_ *= d.bins;
  }
}

std::size_t GridDiscretizer::encode(std::span<const double> obs) const {
  assert(obs.size() == dims_.size());
  std::size_t state = 0;
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    const auto& d = dims_[i];
    const double t = (obs[i] - d.lo) / (d.hi - d.lo);
    auto bin = static_cast<std::ptrdiff_t>(t * static_cast<double>(d.bins));
    bin = std::clamp<std::ptrdiff_t>(bin, 0, static_cast<std::ptrdiff_t>(d.bins) - 1);
    state = state * d.bins + static_cast<std::size_t>(bin);
  }
  return state;
}

}  // namespace lore::ml
