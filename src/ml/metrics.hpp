// Evaluation metrics for the classifiers/regressors used across LORE's
// reliability experiments (coverage, recall of symptom detectors, etc.).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace lore::ml {

/// Fraction of matching labels.
double accuracy(std::span<const int> truth, std::span<const int> pred);

/// Confusion counts for binary problems treating `positive` as the positive
/// class (e.g. "vulnerable" / "SDC").
struct BinaryConfusion {
  std::size_t tp = 0, fp = 0, tn = 0, fn = 0;

  double precision() const;
  double recall() const;
  double f1() const;
  double false_positive_rate() const;
};

BinaryConfusion binary_confusion(std::span<const int> truth, std::span<const int> pred,
                                 int positive = 1);

/// K-class confusion matrix, row = truth, col = predicted.
std::vector<std::vector<std::size_t>> confusion_matrix(std::span<const int> truth,
                                                       std::span<const int> pred,
                                                       std::size_t num_classes);

double mse(std::span<const double> truth, std::span<const double> pred);
double mae(std::span<const double> truth, std::span<const double> pred);
double rmse(std::span<const double> truth, std::span<const double> pred);
/// Coefficient of determination; 1 is perfect, 0 matches predicting the mean.
double r2_score(std::span<const double> truth, std::span<const double> pred);

/// Area under ROC from scores (higher score = more positive). Ties averaged.
double roc_auc(std::span<const int> truth, std::span<const double> score, int positive = 1);

}  // namespace lore::ml
