// Ensemble learners: random forest, AdaBoost (SAMME), and stochastic
// gradient-boosted trees. [21] found boosting "more consistently accurate"
// than MLP/NB/SVM for scale-dependent soft-error prediction; E6 reproduces
// that comparison.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "src/common/rng.hpp"
#include "src/ml/model.hpp"
#include "src/ml/tree.hpp"

namespace lore::ml {

struct RandomForestConfig {
  std::size_t num_trees = 50;
  TreeConfig tree;            // tree.max_features 0 -> sqrt(p) chosen at fit
  double bootstrap_fraction = 1.0;
  std::uint64_t seed = 11;
};

class RandomForestClassifier final : public Classifier {
 public:
  using Config = RandomForestConfig;

  explicit RandomForestClassifier(Config cfg = {}) : cfg_(cfg) {}

  void fit(const Matrix& x, std::span<const int> y) override;
  int predict(std::span<const double> x) const override;
  std::vector<double> predict_proba(std::span<const double> x) const override;
  std::string name() const override { return "random-forest"; }

 private:
  Config cfg_;
  std::vector<DecisionTree> trees_;
  std::size_t num_classes_ = 0;
};

struct AdaBoostConfig {
  std::size_t num_rounds = 60;
  TreeConfig tree{.max_depth = 2};
  std::uint64_t seed = 13;
};

/// Multi-class AdaBoost (SAMME) over shallow CARTs.
class AdaBoostClassifier final : public Classifier {
 public:
  using Config = AdaBoostConfig;

  explicit AdaBoostClassifier(Config cfg = {}) : cfg_(cfg) {}

  void fit(const Matrix& x, std::span<const int> y) override;
  int predict(std::span<const double> x) const override;
  std::vector<double> predict_proba(std::span<const double> x) const override;
  std::string name() const override { return "adaboost"; }

 private:
  Config cfg_;
  std::vector<DecisionTree> stumps_;
  std::vector<double> alpha_;
  std::size_t num_classes_ = 0;
};

struct GradientBoostingRegressorConfig {
  std::size_t num_rounds = 100;
  double learning_rate = 0.1;
  double subsample = 0.7;      // stochastic GB row fraction
  TreeConfig tree{.max_depth = 3};
  std::uint64_t seed = 17;
};

/// Stochastic gradient boosting with squared loss (regression).
class GradientBoostingRegressor final : public Regressor {
 public:
  using Config = GradientBoostingRegressorConfig;

  explicit GradientBoostingRegressor(Config cfg = {}) : cfg_(cfg) {}

  void fit(const Matrix& x, std::span<const double> y) override;
  double predict(std::span<const double> x) const override;
  std::string name() const override { return "gbdt-reg"; }

 private:
  Config cfg_;
  double base_ = 0.0;
  std::vector<DecisionTree> trees_;
};

/// Gradient-boosted binary classifier (logistic loss); multi-class handled
/// one-vs-rest by GradientBoostingClassifier.
struct GradientBoostingClassifierConfig {
  std::size_t num_rounds = 80;
  double learning_rate = 0.15;
  double subsample = 0.7;
  TreeConfig tree{.max_depth = 3};
  std::uint64_t seed = 19;
};

class GradientBoostingClassifier final : public Classifier {
 public:
  using Config = GradientBoostingClassifierConfig;

  explicit GradientBoostingClassifier(Config cfg = {}) : cfg_(cfg) {}

  void fit(const Matrix& x, std::span<const int> y) override;
  int predict(std::span<const double> x) const override;
  std::vector<double> predict_proba(std::span<const double> x) const override;
  std::string name() const override { return "gbdt"; }

  /// Batched raw margins of head `head` for a row-major [n x feature_dim]
  /// query block: the flattened forest (packed once at fit) is traversed by
  /// the node-batch kernel with Arena scratch, bit-identical to per-sample
  /// score() (DESIGN.md §13).
  void margin_batch(std::size_t head, const double* x, std::size_t n,
                    std::span<double> out, unsigned threads = 0) const;
  std::vector<int> predict_batch(const Matrix& x) const override;

  std::size_t feature_dim() const { return feature_dim_; }
  std::size_t head_count() const { return trees_.size(); }

 private:
  /// Raw additive score for one one-vs-rest head.
  double score(std::size_t cls, std::span<const double> x) const;

  Config cfg_;
  std::size_t num_classes_ = 0;
  std::size_t feature_dim_ = 0;
  std::vector<double> base_;                       // per class
  std::vector<std::vector<DecisionTree>> trees_;   // [class][round]
  std::vector<kernels::TreeSoa> packed_;           // per head, built at fit
};

}  // namespace lore::ml
