// Gaussian naive Bayes — baseline in the scale-dependent soft-error behaviour
// comparison ([21], Sec. III-B1), where boosting should beat it.
#pragma once

#include <span>
#include <vector>

#include "src/ml/model.hpp"

namespace lore::ml {

class GaussianNaiveBayes final : public Classifier {
 public:
  void fit(const Matrix& x, std::span<const int> y) override;
  int predict(std::span<const double> x) const override;
  std::vector<double> predict_proba(std::span<const double> x) const override;
  std::string name() const override { return "naive-bayes"; }

 private:
  std::vector<double> log_prior_;           // per class
  std::vector<std::vector<double>> mean_;   // [class][feature]
  std::vector<std::vector<double>> var_;    // [class][feature]
};

}  // namespace lore::ml
