// Online vulnerability-prediction service (DESIGN.md §13).
//
// The paper's ML-assisted fault injection needs a model *inside* the
// campaign loop: score a chunk of fault descriptors, skip the
// predicted-benign ones, keep training on the trials that do execute. The
// pieces here:
//
//  * `PredictorSnapshot` — an immutable trained model (knn / linear SVM /
//    gbdt, all with the batched inference hot path) plus its validation
//    pedigree. Campaign workers grab a shared_ptr and score against it with
//    zero locking while the trainer builds the next version.
//  * `Predictor` — the mutable service: a bounded observation buffer fed by
//    completed trials (`observe`), periodic retraining on that buffer
//    (`train_if_due` / a background trainer thread), a seeded holdout split
//    for validation, and an atomic snapshot swap that only happens on a
//    validation win — a worse candidate never replaces a better live model.
//
// Labels are binary: 1 = benign (the outcome pruning wants to skip),
// 0 = anything else (SDC/crash/hang/detected).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "src/ml/ensemble.hpp"
#include "src/ml/knn.hpp"
#include "src/ml/svm.hpp"

namespace lore::ml {

enum class PredictorModel : std::uint8_t { kKnn, kSvm, kGbdt };

const char* predictor_model_name(PredictorModel m);

struct PredictorConfig {
  PredictorModel model = PredictorModel::kGbdt;
  /// P(benign) at or above which a trial counts as predicted-benign.
  double benign_threshold = 0.9;
  /// Observations buffered before the first training may run.
  std::size_t min_train_samples = 64;
  /// New observations between `train_if_due` trainings.
  std::size_t retrain_interval = 256;
  /// Fraction of the buffer held out (seeded split) for validation; when the
  /// holdout would be empty the candidate validates on its training set.
  double holdout_fraction = 0.25;
  /// A candidate must reach this holdout accuracy AND at least the live
  /// snapshot's accuracy to be swapped in.
  double min_validation_accuracy = 0.6;
  /// Observation ring capacity (oldest samples overwritten first).
  std::size_t max_buffer = 8192;
  std::uint64_t seed = 1;
  // Per-family hyperparameters (only the configured family's are used).
  std::size_t knn_k = 5;
  LinearSvmConfig svm{};
  GradientBoostingClassifierConfig gbdt{};
};

/// One trained, immutable model version. Thread-safe by construction: all
/// state is written before publication and never mutated after.
class PredictorSnapshot {
 public:
  std::uint64_t version() const { return version_; }
  double validation_accuracy() const { return validation_accuracy_; }
  std::size_t trained_on() const { return trained_on_; }
  PredictorModel family() const { return family_; }

  /// p_benign[r] = model probability that row r of the row-major
  /// [n x feature_dim] block is benign — knn: benign vote share; svm:
  /// 1/(1+exp(-2*margin)); gbdt: 1/(1+exp(-margin)). Batched kernels with
  /// Arena scratch throughout (zero per-query heap allocation).
  void predict_benign(const double* x, std::size_t n, std::span<double> p_benign,
                      unsigned threads = 0) const;

 private:
  friend class Predictor;
  PredictorModel family_ = PredictorModel::kGbdt;
  std::uint64_t version_ = 0;
  double validation_accuracy_ = 0.0;
  std::size_t trained_on_ = 0;
  KnnClassifier knn_;
  LinearSvm svm_;
  GradientBoostingClassifier gbdt_;
};

class Predictor {
 public:
  explicit Predictor(PredictorConfig cfg = {});
  ~Predictor();

  Predictor(const Predictor&) = delete;
  Predictor& operator=(const Predictor&) = delete;

  /// The live model, or nullptr before the first validation win.
  std::shared_ptr<const PredictorSnapshot> snapshot() const;

  /// Record one completed trial: its feature row and whether its outcome was
  /// benign. Thread-safe; O(dim) under a mutex.
  void observe(std::span<const double> features, bool benign);

  /// Train + validate + maybe swap when at least `retrain_interval` new
  /// observations arrived since the last training (and the buffer holds
  /// `min_train_samples`). Returns true when a new snapshot went live.
  bool train_if_due();
  /// Unconditional train + validate + maybe swap (still requires
  /// `min_train_samples` buffered). Returns true when a new snapshot went
  /// live.
  bool train_now();

  /// Background trainer thread: polls `train_if_due` every `interval` until
  /// `stop_background` (or destruction). Idempotent.
  void start_background(std::chrono::milliseconds interval = std::chrono::milliseconds(50));
  void stop_background();

  const PredictorConfig& config() const { return cfg_; }
  std::size_t observed() const;   // total observe() calls
  std::size_t buffered() const;   // samples currently held
  std::size_t trainings() const;  // candidates trained
  std::uint64_t version() const;  // live snapshot version (0 = none)

 private:
  bool train_candidate();

  PredictorConfig cfg_;

  mutable std::mutex mu_;  // guards buffer state + snapshot pointer
  std::shared_ptr<const PredictorSnapshot> snap_;
  std::vector<double> features_;  // ring storage, dim-strided
  std::vector<std::uint8_t> labels_;
  std::size_t dim_ = 0;
  std::size_t count_ = 0;      // samples currently in the ring
  std::size_t write_pos_ = 0;  // next ring slot
  std::size_t observed_total_ = 0;
  std::size_t observed_at_last_train_ = 0;
  std::size_t trainings_ = 0;
  std::uint64_t next_version_ = 1;

  std::mutex bg_mu_;  // guards the trainer thread handle + wakeups
  std::condition_variable bg_cv_;
  bool bg_stop_ = false;
  std::thread bg_;
};

}  // namespace lore::ml
