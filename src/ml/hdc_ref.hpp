// Scalar reference kernels for the HDC engine.
//
// These are the original one-int8-per-component loops the bit-packed engine
// in `src/ml/hdc` replaced. They are kept (a) as the oracle for differential
// tests — the packed kernels must be bit-identical to these for the same RNG
// seed — and (b) as the body of the `LORE_HDC_SCALAR` reference mode, where
// every `Hypervector` operation round-trips through these loops instead of
// the word-parallel path.
//
// Every function that consumes randomness draws from the Rng in component
// index order, exactly once per component, which is the contract that makes
// packed and scalar streams interchangeable.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/rng.hpp"

namespace lore::ml::hdcref {

/// One bipolar component per int8, values in {-1, +1}.
using Components = std::vector<std::int8_t>;

/// i.i.d. random bipolar vector; one bernoulli(0.5) draw per component.
Components random(std::size_t dim, lore::Rng& rng);

/// Elementwise multiply (binding).
Components bind(const Components& a, const Components& b);

/// Cyclic rotation: out[(i + k) % dim] = in[i].
Components permute(const Components& a, std::size_t k);

/// Cosine similarity in [-1, 1].
double similarity(const Components& a, const Components& b);

/// Hamming distance fraction, defined as 0.5 * (1 - similarity).
double hamming(const Components& a, const Components& b);

/// Flip each component independently with probability p; one bernoulli(p)
/// draw per component (no draws when p <= 0).
Components with_component_errors(const Components& a, double p, lore::Rng& rng);

/// sums[i] += weight * a[i].
void accumulate(std::vector<std::int32_t>& sums, const Components& a, int weight);

/// Majority threshold; zero sums tie-break with one bernoulli(0.5) draw, in
/// index order, when an rng is supplied (else -1, matching the packed path).
Components threshold(const std::vector<std::int32_t>& sums, lore::Rng* rng);

}  // namespace lore::ml::hdcref
