// Model selection utilities (the paper's Sec. VI-C open challenge: "system
// designers can easily identify the ML models for their application-platform
// configuration"): k-fold cross-validation over a set of classifier
// factories, returning per-model accuracy statistics.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/ml/dataset.hpp"
#include "src/ml/model.hpp"

namespace lore::ml {

/// Cross-validated accuracy of one classifier (freshly constructed per fold).
struct CvScore {
  std::string model;
  double mean_accuracy = 0.0;
  double stddev_accuracy = 0.0;
  std::size_t folds = 0;
};

using ClassifierFactory = std::function<std::unique_ptr<Classifier>()>;

/// k-fold CV of a single factory.
CvScore cross_validate(const ClassifierFactory& factory, const Dataset& data,
                       std::size_t folds, lore::Rng& rng);

/// Evaluate a family of candidates; results sorted best-first.
std::vector<CvScore> select_model(const std::vector<ClassifierFactory>& candidates,
                                  const Dataset& data, std::size_t folds, lore::Rng& rng);

/// The standard LORE candidate set (one of each family with default
/// hyperparameters) for quick baselining.
std::vector<ClassifierFactory> standard_classifier_candidates();

}  // namespace lore::ml
