#include "src/ml/model_selection.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/ml/ensemble.hpp"
#include "src/ml/knn.hpp"
#include "src/ml/linear.hpp"
#include "src/ml/metrics.hpp"
#include "src/ml/mlp.hpp"
#include "src/ml/naive_bayes.hpp"
#include "src/ml/svm.hpp"

namespace lore::ml {

CvScore cross_validate(const ClassifierFactory& factory, const Dataset& data,
                       std::size_t folds, lore::Rng& rng) {
  assert(folds >= 2 && data.size() >= folds);
  const auto fold_indices = kfold_indices(data.size(), folds, rng);

  std::vector<double> scores;
  scores.reserve(folds);
  std::string name;
  for (std::size_t f = 0; f < folds; ++f) {
    std::vector<std::size_t> train_idx;
    for (std::size_t g = 0; g < folds; ++g)
      if (g != f) train_idx.insert(train_idx.end(), fold_indices[g].begin(),
                                   fold_indices[g].end());
    const auto train = data.subset(train_idx);
    const auto test = data.subset(fold_indices[f]);
    auto model = factory();
    name = model->name();
    model->fit(train.x, train.labels);
    scores.push_back(accuracy(test.labels, model->predict_batch(test.x)));
  }

  CvScore out;
  out.model = name;
  out.folds = folds;
  double sum = 0.0;
  for (double s : scores) sum += s;
  out.mean_accuracy = sum / static_cast<double>(folds);
  double var = 0.0;
  for (double s : scores) var += (s - out.mean_accuracy) * (s - out.mean_accuracy);
  out.stddev_accuracy = std::sqrt(var / static_cast<double>(folds));
  return out;
}

std::vector<CvScore> select_model(const std::vector<ClassifierFactory>& candidates,
                                  const Dataset& data, std::size_t folds, lore::Rng& rng) {
  std::vector<CvScore> out;
  out.reserve(candidates.size());
  const std::uint64_t fold_seed = rng.next_u64();
  for (const auto& factory : candidates) {
    // Same fold split per candidate: paired comparison.
    lore::Rng fold_rng(fold_seed);
    out.push_back(cross_validate(factory, data, folds, fold_rng));
  }
  std::sort(out.begin(), out.end(),
            [](const CvScore& a, const CvScore& b) { return a.mean_accuracy > b.mean_accuracy; });
  return out;
}

std::vector<ClassifierFactory> standard_classifier_candidates() {
  return {
      [] { return std::make_unique<KnnClassifier>(5); },
      [] { return std::make_unique<GaussianNaiveBayes>(); },
      [] { return std::make_unique<LinearSvm>(); },
      [] { return std::make_unique<LogisticRegression>(); },
      [] { return std::make_unique<DecisionTreeClassifier>(); },
      [] { return std::make_unique<RandomForestClassifier>(RandomForestConfig{.num_trees = 30, .tree = {}}); },
      [] { return std::make_unique<AdaBoostClassifier>(); },
      [] {
        return std::make_unique<GradientBoostingClassifier>(
            GradientBoostingClassifierConfig{.num_rounds = 40});
      },
      [] { return std::make_unique<MlpClassifier>(MlpConfig{.hidden = {16}, .epochs = 120}); },
  };
}

}  // namespace lore::ml
