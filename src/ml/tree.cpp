#include "src/ml/tree.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace lore::ml {
namespace {

/// Weighted Gini impurity of a class-count vector.
double gini(std::span<const double> class_weight, double total) {
  if (total <= 0.0) return 0.0;
  double s = 0.0;
  for (double w : class_weight) {
    const double p = w / total;
    s += p * p;
  }
  return 1.0 - s;
}

}  // namespace

void DecisionTree::fit_classifier(const Matrix& x, std::span<const int> y,
                                  std::span<const double> weights, std::size_t num_classes,
                                  const TreeConfig& cfg) {
  assert(x.rows() == y.size() && x.rows() > 0 && num_classes > 0);
  nodes_.clear();
  is_classifier_ = true;
  std::vector<std::size_t> indices(x.rows());
  std::iota(indices.begin(), indices.end(), 0);
  lore::Rng rng(cfg.seed);
  build(x, y, {}, weights, indices, 0, indices.size(), 0, cfg, num_classes, rng);
}

void DecisionTree::fit_regressor(const Matrix& x, std::span<const double> y,
                                 const TreeConfig& cfg) {
  assert(x.rows() == y.size() && x.rows() > 0);
  nodes_.clear();
  is_classifier_ = false;
  std::vector<std::size_t> indices(x.rows());
  std::iota(indices.begin(), indices.end(), 0);
  lore::Rng rng(cfg.seed);
  build(x, {}, y, {}, indices, 0, indices.size(), 0, cfg, 0, rng);
}

std::size_t DecisionTree::build(const Matrix& x, std::span<const int> y_cls,
                                std::span<const double> y_reg,
                                std::span<const double> weights,
                                std::vector<std::size_t>& indices, std::size_t begin,
                                std::size_t end, std::size_t depth, const TreeConfig& cfg,
                                std::size_t num_classes, lore::Rng& rng) {
  const std::size_t n = end - begin;
  const std::size_t node_id = nodes_.size();
  nodes_.emplace_back();
  nodes_[node_id].depth = depth;

  auto weight_of = [&](std::size_t row) {
    return weights.empty() ? 1.0 : weights[row];
  };

  // Leaf statistics.
  if (is_classifier_) {
    std::vector<double> dist(num_classes, 0.0);
    double total = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      dist[static_cast<std::size_t>(y_cls[indices[i]])] += weight_of(indices[i]);
      total += weight_of(indices[i]);
    }
    if (total > 0.0)
      for (auto& d : dist) d /= total;
    nodes_[node_id].distribution = std::move(dist);
  } else {
    double sum = 0.0;
    for (std::size_t i = begin; i < end; ++i) sum += y_reg[indices[i]];
    nodes_[node_id].value = sum / static_cast<double>(n);
  }

  // Stopping conditions.
  const bool pure = [&] {
    if (is_classifier_) {
      for (double d : nodes_[node_id].distribution)
        if (d >= 1.0 - 1e-12) return true;
      return false;
    }
    double lo = y_reg[indices[begin]], hi = lo;
    for (std::size_t i = begin; i < end; ++i) {
      lo = std::min(lo, y_reg[indices[i]]);
      hi = std::max(hi, y_reg[indices[i]]);
    }
    return hi - lo < 1e-12;
  }();
  if (depth >= cfg.max_depth || n < cfg.min_samples_split || pure) return node_id;

  // Candidate features (subsample for forests).
  const std::size_t p = x.cols();
  std::vector<std::size_t> feats;
  if (cfg.max_features == 0 || cfg.max_features >= p) {
    feats.resize(p);
    std::iota(feats.begin(), feats.end(), 0);
  } else {
    feats = rng.sample_indices(p, cfg.max_features);
  }

  // Exhaustive best-split search over sorted feature values.
  int best_feature = -1;
  double best_threshold = 0.0;
  double best_score = -1e30;
  std::vector<std::size_t> local(indices.begin() + static_cast<std::ptrdiff_t>(begin),
                                 indices.begin() + static_cast<std::ptrdiff_t>(end));
  for (auto f : feats) {
    std::sort(local.begin(), local.end(),
              [&](std::size_t a, std::size_t b) { return x(a, f) < x(b, f); });
    if (is_classifier_) {
      std::vector<double> left_w(num_classes, 0.0), right_w(num_classes, 0.0);
      double left_total = 0.0, right_total = 0.0;
      for (auto row : local) {
        right_w[static_cast<std::size_t>(y_cls[row])] += weight_of(row);
        right_total += weight_of(row);
      }
      const double parent_impurity = gini(right_w, right_total);
      for (std::size_t i = 0; i + 1 < local.size(); ++i) {
        const auto row = local[i];
        const double w = weight_of(row);
        left_w[static_cast<std::size_t>(y_cls[row])] += w;
        left_total += w;
        right_w[static_cast<std::size_t>(y_cls[row])] -= w;
        right_total -= w;
        if (x(row, f) == x(local[i + 1], f)) continue;  // can't split between equal values
        if (i + 1 < cfg.min_samples_leaf || local.size() - i - 1 < cfg.min_samples_leaf)
          continue;
        const double total = left_total + right_total;
        const double score = parent_impurity -
                             (left_total / total) * gini(left_w, left_total) -
                             (right_total / total) * gini(right_w, right_total);
        if (score > best_score) {
          best_score = score;
          best_feature = static_cast<int>(f);
          best_threshold = 0.5 * (x(row, f) + x(local[i + 1], f));
        }
      }
    } else {
      // Variance reduction via running sums.
      double right_sum = 0.0, right_sq = 0.0;
      for (auto row : local) {
        right_sum += y_reg[row];
        right_sq += y_reg[row] * y_reg[row];
      }
      double left_sum = 0.0, left_sq = 0.0;
      const double n_total = static_cast<double>(local.size());
      const double parent_sse = right_sq - right_sum * right_sum / n_total;
      for (std::size_t i = 0; i + 1 < local.size(); ++i) {
        const auto row = local[i];
        left_sum += y_reg[row];
        left_sq += y_reg[row] * y_reg[row];
        right_sum -= y_reg[row];
        right_sq -= y_reg[row] * y_reg[row];
        if (x(row, f) == x(local[i + 1], f)) continue;
        const auto nl = static_cast<double>(i + 1);
        const auto nr = n_total - nl;
        if (i + 1 < cfg.min_samples_leaf || local.size() - i - 1 < cfg.min_samples_leaf)
          continue;
        const double sse = (left_sq - left_sum * left_sum / nl) +
                           (right_sq - right_sum * right_sum / nr);
        const double score = parent_sse - sse;
        if (score > best_score) {
          best_score = score;
          best_feature = static_cast<int>(f);
          best_threshold = 0.5 * (x(row, f) + x(local[i + 1], f));
        }
      }
    }
  }

  if (best_feature < 0 || best_score <= 1e-12) return node_id;  // no useful split

  // Partition indices in place.
  const auto mid = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end), [&](std::size_t row) {
        return x(row, static_cast<std::size_t>(best_feature)) <= best_threshold;
      });
  const auto mid_idx = static_cast<std::size_t>(mid - indices.begin());
  if (mid_idx == begin || mid_idx == end) return node_id;  // degenerate partition

  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  const std::size_t left = build(x, y_cls, y_reg, weights, indices, begin, mid_idx,
                                 depth + 1, cfg, num_classes, rng);
  const std::size_t right = build(x, y_cls, y_reg, weights, indices, mid_idx, end,
                                  depth + 1, cfg, num_classes, rng);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

std::size_t DecisionTree::find_leaf(std::span<const double> x) const {
  assert(!nodes_.empty());
  std::size_t id = 0;
  while (nodes_[id].feature >= 0) {
    const auto f = static_cast<std::size_t>(nodes_[id].feature);
    assert(f < x.size());
    id = x[f] <= nodes_[id].threshold ? nodes_[id].left : nodes_[id].right;
  }
  return id;
}

std::span<const double> DecisionTree::leaf_distribution(std::span<const double> x) const {
  assert(is_classifier_);
  return nodes_[find_leaf(x)].distribution;
}

int DecisionTree::predict_class(std::span<const double> x) const {
  const auto dist = leaf_distribution(x);
  return static_cast<int>(std::max_element(dist.begin(), dist.end()) - dist.begin());
}

double DecisionTree::predict_value(std::span<const double> x) const {
  assert(!is_classifier_);
  return nodes_[find_leaf(x)].value;
}

std::size_t DecisionTree::depth() const {
  std::size_t d = 0;
  for (const auto& n : nodes_) d = std::max(d, n.depth);
  return d;
}

void DecisionTree::pack_into(kernels::TreeSoa& soa) const {
  assert(!nodes_.empty());
  const auto off = static_cast<std::int32_t>(soa.node_count());
  soa.root.push_back(off);
  for (const Node& n : nodes_) {
    soa.feature.push_back(n.feature);
    soa.threshold.push_back(n.threshold);
    soa.left.push_back(static_cast<std::int32_t>(n.left) + off);
    soa.right.push_back(static_cast<std::int32_t>(n.right) + off);
    soa.value.push_back(n.value);
  }
}

void DecisionTreeClassifier::fit(const Matrix& x, std::span<const int> y) {
  std::size_t num_classes = 0;
  for (int label : y) num_classes = std::max<std::size_t>(num_classes, static_cast<std::size_t>(label) + 1);
  tree_.fit_classifier(x, y, {}, num_classes, cfg_);
}

int DecisionTreeClassifier::predict(std::span<const double> x) const {
  return tree_.predict_class(x);
}

std::vector<double> DecisionTreeClassifier::predict_proba(std::span<const double> x) const {
  const auto d = tree_.leaf_distribution(x);
  return {d.begin(), d.end()};
}

void DecisionTreeRegressor::fit(const Matrix& x, std::span<const double> y) {
  tree_.fit_regressor(x, y, cfg_);
}

double DecisionTreeRegressor::predict(std::span<const double> x) const {
  return tree_.predict_value(x);
}

}  // namespace lore::ml
