// Tabular reinforcement learning (Q-learning and SARSA) with epsilon-greedy
// exploration — the learning controller of Fig. 1 and the engine behind the
// DVFS/thermal governors of Sec. IV ([39],[40],[43],[44],[47]).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "src/common/rng.hpp"

namespace lore::ml {

struct QLearnerConfig {
  double alpha = 0.1;           // learning rate
  double gamma = 0.9;           // discount
  double epsilon = 0.2;         // initial exploration rate
  double epsilon_decay = 0.995; // multiplied per episode
  double epsilon_min = 0.01;
  bool sarsa = false;           // on-policy (SARSA) vs off-policy (Q-learning)
  std::uint64_t seed = 31;
};

/// Discrete-state, discrete-action value learner.
class QLearner {
 public:
  using Config = QLearnerConfig;

  QLearner(std::size_t num_states, std::size_t num_actions, Config cfg = {});

  /// Epsilon-greedy action selection.
  std::size_t select_action(std::size_t state);
  /// Greedy (exploitation-only) action.
  std::size_t best_action(std::size_t state) const;

  /// TD update. `next_action` is only used in SARSA mode (pass the action
  /// actually chosen for the next step); Q-learning ignores it.
  void update(std::size_t state, std::size_t action, double reward, std::size_t next_state,
              std::size_t next_action = 0, bool terminal = false);

  /// Call at episode boundaries to decay exploration.
  void end_episode();

  double q(std::size_t state, std::size_t action) const;
  double max_q(std::size_t state) const;
  double epsilon() const { return epsilon_; }
  std::size_t num_states() const { return num_states_; }
  std::size_t num_actions() const { return num_actions_; }

 private:
  std::size_t num_states_, num_actions_;
  Config cfg_;
  double epsilon_;
  std::vector<double> table_;  // num_states × num_actions
  lore::Rng rng_;
};

/// Uniform grid discretizer mapping a continuous observation vector to a
/// single tabular state index.
class GridDiscretizer {
 public:
  struct Dim {
    double lo, hi;
    std::size_t bins;
  };

  explicit GridDiscretizer(std::vector<Dim> dims);

  std::size_t num_states() const { return total_; }
  std::size_t encode(std::span<const double> obs) const;

 private:
  std::vector<Dim> dims_;
  std::size_t total_;
};

}  // namespace lore::ml
