// Linear models: ordinary least squares / ridge regression (solved in closed
// form via Cholesky on the normal equations) and logistic regression
// (gradient descent). These are the "simple supervised" baselines the paper
// cites for reliability estimation (Sec. IV).
#pragma once

#include <span>
#include <vector>

#include "src/ml/model.hpp"

namespace lore::ml {

/// Ridge regression; lambda = 0 gives OLS (with tiny jitter for stability).
class RidgeRegression final : public Regressor {
 public:
  explicit RidgeRegression(double lambda = 1e-6) : lambda_(lambda) {}

  void fit(const Matrix& x, std::span<const double> y) override;
  double predict(std::span<const double> x) const override;
  std::string name() const override { return "ridge"; }

  std::span<const double> weights() const { return w_; }
  double bias() const { return b_; }

 private:
  double lambda_;
  std::vector<double> w_;
  double b_ = 0.0;
};

struct LogisticRegressionConfig {
  double learning_rate = 0.5;
  double l2 = 1e-4;
  std::size_t epochs = 300;
};

/// Binary logistic regression with L2 regularization, full-batch gradient
/// descent with simple backtracking-free fixed schedule.
class LogisticRegression final : public Classifier {
 public:
  using Config = LogisticRegressionConfig;

  explicit LogisticRegression(Config cfg = {}) : cfg_(cfg) {}

  void fit(const Matrix& x, std::span<const int> y) override;
  int predict(std::span<const double> x) const override;
  std::vector<double> predict_proba(std::span<const double> x) const override;
  std::string name() const override { return "logreg"; }

  /// P(class = 1 | x).
  double positive_probability(std::span<const double> x) const;

 private:
  Config cfg_;
  std::vector<double> w_;
  double b_ = 0.0;
};

/// Solve (A + lambda I) w = b for symmetric positive definite A via Cholesky.
/// Exposed for reuse by other closed-form learners; returns empty on failure.
std::vector<double> solve_spd(Matrix a, std::vector<double> b, double jitter = 1e-10);

}  // namespace lore::ml
