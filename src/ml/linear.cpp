#include "src/ml/linear.hpp"

#include <cassert>
#include <cmath>

namespace lore::ml {

std::vector<double> solve_spd(Matrix a, std::vector<double> b, double jitter) {
  assert(a.rows() == a.cols() && a.rows() == b.size());
  const std::size_t n = a.rows();
  // In-place Cholesky: a becomes lower-triangular L.
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j) + jitter;
    for (std::size_t k = 0; k < j; ++k) d -= a(j, k) * a(j, k);
    if (d <= 0.0) return {};
    const double l = std::sqrt(d);
    a(j, j) = l;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= a(i, k) * a(j, k);
      a(i, j) = s / l;
    }
  }
  // Forward substitution: L y = b.
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= a(i, k) * b[k];
    b[i] = s / a(i, i);
  }
  // Back substitution: L^T w = y.
  for (std::size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= a(k, ii) * b[k];
    b[ii] = s / a(ii, ii);
  }
  return b;
}

void RidgeRegression::fit(const Matrix& x, std::span<const double> y) {
  assert(x.rows() == y.size() && x.rows() > 0);
  const std::size_t n = x.rows(), p = x.cols();
  // Center targets and features so the bias falls out of the normal equations.
  std::vector<double> x_mean(p, 0.0);
  double y_mean = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < p; ++c) x_mean[c] += x(r, c);
    y_mean += y[r];
  }
  for (auto& m : x_mean) m /= static_cast<double>(n);
  y_mean /= static_cast<double>(n);

  Matrix gram(p, p);
  std::vector<double> xty(p, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < p; ++c) {
      const double xc = x(r, c) - x_mean[c];
      xty[c] += xc * (y[r] - y_mean);
      for (std::size_t c2 = c; c2 < p; ++c2) gram(c, c2) += xc * (x(r, c2) - x_mean[c2]);
    }
  }
  for (std::size_t c = 0; c < p; ++c) {
    gram(c, c) += lambda_;
    for (std::size_t c2 = c + 1; c2 < p; ++c2) gram(c2, c) = gram(c, c2);
  }
  w_ = solve_spd(std::move(gram), std::move(xty));
  if (w_.empty()) w_.assign(p, 0.0);  // degenerate design: predict the mean
  b_ = y_mean;
  for (std::size_t c = 0; c < p; ++c) b_ -= w_[c] * x_mean[c];
}

double RidgeRegression::predict(std::span<const double> x) const {
  assert(x.size() == w_.size());
  return b_ + dot(w_, x);
}

namespace {
double sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }
}  // namespace

void LogisticRegression::fit(const Matrix& x, std::span<const int> y) {
  assert(x.rows() == y.size() && x.rows() > 0);
  const std::size_t n = x.rows(), p = x.cols();
  w_.assign(p, 0.0);
  b_ = 0.0;
  std::vector<double> grad(p);
  const double inv_n = 1.0 / static_cast<double>(n);
  for (std::size_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
    std::fill(grad.begin(), grad.end(), 0.0);
    double grad_b = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      const auto row = x.row(r);
      const double err = sigmoid(b_ + dot(w_, row)) - static_cast<double>(y[r] == 1);
      axpy(grad, err, row);
      grad_b += err;
    }
    const double lr = cfg_.learning_rate / (1.0 + 0.01 * static_cast<double>(epoch));
    for (std::size_t c = 0; c < p; ++c)
      w_[c] -= lr * (grad[c] * inv_n + cfg_.l2 * w_[c]);
    b_ -= lr * grad_b * inv_n;
  }
}

double LogisticRegression::positive_probability(std::span<const double> x) const {
  assert(x.size() == w_.size());
  return sigmoid(b_ + dot(w_, x));
}

int LogisticRegression::predict(std::span<const double> x) const {
  return positive_probability(x) >= 0.5 ? 1 : 0;
}

std::vector<double> LogisticRegression::predict_proba(std::span<const double> x) const {
  const double p1 = positive_probability(x);
  return {1.0 - p1, p1};
}

}  // namespace lore::ml
