// k-nearest-neighbour classifier — one of the "simple ML models" the paper
// cites for flip-flop vulnerability prediction ([20], Sec. III-B1).
//
// Two inference paths (DESIGN.md §13):
//  * the per-sample reference (`predict`/`predict_proba`): squared-distance
//    scan + partial sort under the (distance, index) total order;
//  * the batched hot path (`predict_batch`/`class_votes_batch`): the training
//    set lives in a packed panel (built once at fit), queries stream through
//    the blocked L2 + top-k kernels with Arena scratch — zero per-query heap
//    allocation, runtime-dispatched scalar/AVX2, bit-identical to the
//    reference by the shared total order.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/kernels.hpp"
#include "src/ml/model.hpp"

namespace lore::ml {

/// Reusable distance/index/vote scratch for the per-sample path, so replay
/// loops don't allocate a fresh distance vector per call (the buffers warm up
/// on first use and are reused verbatim afterwards).
struct KnnScratch {
  std::vector<double> dist;
  std::vector<std::uint32_t> idx;
  std::vector<double> votes;
};

class KnnClassifier final : public Classifier {
 public:
  explicit KnnClassifier(std::size_t k = 5) : k_(k) {}

  void fit(const Matrix& x, std::span<const int> y) override;
  int predict(std::span<const double> x) const override;
  std::vector<double> predict_proba(std::span<const double> x) const override;
  std::string name() const override { return "knn"; }

  /// Allocation-free per-sample variants: all working storage comes from
  /// `scratch`, which the caller keeps across calls.
  int predict(std::span<const double> x, KnnScratch& scratch) const;
  std::vector<double> predict_proba(std::span<const double> x, KnnScratch& scratch) const;

  /// Batched hot path over a row-major [n x cols] query block.
  std::vector<int> predict_batch(const Matrix& x) const override;
  void predict_batch(const double* x, std::size_t n, std::span<int> out,
                     unsigned threads = 0) const;
  /// out[r] = fraction of the k nearest training rows labeled `cls` (the
  /// vote share the Predictor thresholds into a benign probability).
  void class_votes_batch(const double* x, std::size_t n, int cls, std::span<double> out,
                         unsigned threads = 0) const;

  std::size_t feature_dim() const { return train_x_.cols(); }
  std::size_t num_classes() const { return num_classes_; }

 private:
  /// Reference neighbour selection: fills `scratch.idx[0..k)` with the k
  /// nearest training rows under the (squared distance, index) total order.
  void neighbours_into(std::span<const double> x, KnnScratch& scratch) const;

  std::size_t k_;
  Matrix train_x_;
  std::vector<int> train_y_;
  std::size_t num_classes_ = 0;
  std::vector<double> panel_;  // training rows in panel layout (built at fit)
};

}  // namespace lore::ml
