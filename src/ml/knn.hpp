// k-nearest-neighbour classifier — one of the "simple ML models" the paper
// cites for flip-flop vulnerability prediction ([20], Sec. III-B1).
#pragma once

#include <span>
#include <vector>

#include "src/ml/model.hpp"

namespace lore::ml {

class KnnClassifier final : public Classifier {
 public:
  explicit KnnClassifier(std::size_t k = 5) : k_(k) {}

  void fit(const Matrix& x, std::span<const int> y) override;
  int predict(std::span<const double> x) const override;
  std::vector<double> predict_proba(std::span<const double> x) const override;
  std::string name() const override { return "knn"; }

 private:
  /// Indices of the k nearest training rows to `x`.
  std::vector<std::size_t> neighbours(std::span<const double> x) const;

  std::size_t k_;
  Matrix train_x_;
  std::vector<int> train_y_;
  std::size_t num_classes_ = 0;
};

}  // namespace lore::ml
