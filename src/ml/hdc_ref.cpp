#include "src/ml/hdc_ref.hpp"

#include <cassert>

namespace lore::ml::hdcref {

Components random(std::size_t dim, lore::Rng& rng) {
  Components v(dim);
  for (std::size_t i = 0; i < dim; ++i) v[i] = rng.bernoulli(0.5) ? 1 : -1;
  return v;
}

Components bind(const Components& a, const Components& b) {
  assert(a.size() == b.size());
  Components out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    out[i] = static_cast<std::int8_t>(a[i] * b[i]);
  return out;
}

Components permute(const Components& a, std::size_t k) {
  Components out(a.size());
  if (a.empty()) return out;
  k %= a.size();
  for (std::size_t i = 0; i < a.size(); ++i) out[(i + k) % a.size()] = a[i];
  return out;
}

double similarity(const Components& a, const Components& b) {
  assert(a.size() == b.size() && !a.empty());
  std::int64_t s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return static_cast<double>(s) / static_cast<double>(a.size());
}

double hamming(const Components& a, const Components& b) {
  return 0.5 * (1.0 - similarity(a, b));
}

Components with_component_errors(const Components& a, double p, lore::Rng& rng) {
  Components out = a;
  if (p <= 0.0) return out;
  for (std::size_t i = 0; i < out.size(); ++i)
    if (rng.bernoulli(p)) out[i] = static_cast<std::int8_t>(-out[i]);
  return out;
}

void accumulate(std::vector<std::int32_t>& sums, const Components& a, int weight) {
  assert(a.size() == sums.size());
  for (std::size_t i = 0; i < sums.size(); ++i) sums[i] += weight * a[i];
}

Components threshold(const std::vector<std::int32_t>& sums, lore::Rng* rng) {
  Components out(sums.size());
  for (std::size_t i = 0; i < sums.size(); ++i) {
    if (sums[i] > 0) out[i] = 1;
    else if (sums[i] < 0) out[i] = -1;
    else out[i] = (rng && rng->bernoulli(0.5)) ? 1 : -1;
  }
  return out;
}

}  // namespace lore::ml::hdcref
