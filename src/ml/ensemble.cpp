#include "src/ml/ensemble.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/common/parallel.hpp"

namespace lore::ml {
namespace {

std::size_t count_classes(std::span<const int> y) {
  std::size_t k = 0;
  for (int label : y) k = std::max<std::size_t>(k, static_cast<std::size_t>(label) + 1);
  return k;
}

}  // namespace

void RandomForestClassifier::fit(const Matrix& x, std::span<const int> y) {
  assert(x.rows() == y.size() && x.rows() > 0);
  num_classes_ = count_classes(y);
  trees_.clear();
  trees_.reserve(cfg_.num_trees);
  lore::Rng rng(cfg_.seed);

  TreeConfig tree_cfg = cfg_.tree;
  if (tree_cfg.max_features == 0)
    tree_cfg.max_features = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::sqrt(static_cast<double>(x.cols()))));

  const auto n_boot = std::max<std::size_t>(
      1, static_cast<std::size_t>(cfg_.bootstrap_fraction * static_cast<double>(x.rows())));
  for (std::size_t t = 0; t < cfg_.num_trees; ++t) {
    std::vector<std::size_t> sample(n_boot);
    for (auto& s : sample) s = static_cast<std::size_t>(rng.uniform_index(x.rows()));
    Matrix bx = x.gather_rows(sample);
    std::vector<int> by(n_boot);
    for (std::size_t i = 0; i < n_boot; ++i) by[i] = y[sample[i]];
    tree_cfg.seed = rng.next_u64();
    DecisionTree tree;
    tree.fit_classifier(bx, by, {}, num_classes_, tree_cfg);
    trees_.push_back(std::move(tree));
  }
}

std::vector<double> RandomForestClassifier::predict_proba(std::span<const double> x) const {
  assert(!trees_.empty());
  std::vector<double> agg(num_classes_, 0.0);
  for (const auto& tree : trees_) {
    const auto d = tree.leaf_distribution(x);
    for (std::size_t c = 0; c < num_classes_; ++c) agg[c] += d[c];
  }
  for (auto& a : agg) a /= static_cast<double>(trees_.size());
  return agg;
}

int RandomForestClassifier::predict(std::span<const double> x) const {
  const auto p = predict_proba(x);
  return static_cast<int>(std::max_element(p.begin(), p.end()) - p.begin());
}

void AdaBoostClassifier::fit(const Matrix& x, std::span<const int> y) {
  assert(x.rows() == y.size() && x.rows() > 0);
  num_classes_ = count_classes(y);
  stumps_.clear();
  alpha_.clear();
  const std::size_t n = x.rows();
  std::vector<double> w(n, 1.0 / static_cast<double>(n));
  lore::Rng rng(cfg_.seed);

  for (std::size_t round = 0; round < cfg_.num_rounds; ++round) {
    TreeConfig tc = cfg_.tree;
    tc.seed = rng.next_u64();
    DecisionTree stump;
    stump.fit_classifier(x, y, w, num_classes_, tc);

    double err = 0.0;
    std::vector<bool> wrong(n);
    for (std::size_t i = 0; i < n; ++i) {
      wrong[i] = stump.predict_class(x.row(i)) != y[i];
      if (wrong[i]) err += w[i];
    }
    const double k = static_cast<double>(num_classes_);
    if (err >= 1.0 - 1.0 / k) continue;             // worse than chance: skip round
    err = std::max(err, 1e-10);
    // SAMME weight with multi-class correction term.
    const double alpha = std::log((1.0 - err) / err) + std::log(k - 1.0);
    stumps_.push_back(std::move(stump));
    alpha_.push_back(alpha);
    if (err < 1e-9) break;                          // perfect learner: done

    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (wrong[i]) w[i] *= std::exp(alpha);
      sum += w[i];
    }
    for (auto& wi : w) wi /= sum;
  }

  if (stumps_.empty()) {
    // All rounds degenerate: fall back to a single unweighted tree.
    TreeConfig tc = cfg_.tree;
    DecisionTree stump;
    stump.fit_classifier(x, y, {}, num_classes_, tc);
    stumps_.push_back(std::move(stump));
    alpha_.push_back(1.0);
  }
}

std::vector<double> AdaBoostClassifier::predict_proba(std::span<const double> x) const {
  std::vector<double> votes(num_classes_, 0.0);
  for (std::size_t t = 0; t < stumps_.size(); ++t)
    votes[static_cast<std::size_t>(stumps_[t].predict_class(x))] += alpha_[t];
  double sum = 0.0;
  for (double v : votes) sum += v;
  if (sum > 0.0)
    for (auto& v : votes) v /= sum;
  return votes;
}

int AdaBoostClassifier::predict(std::span<const double> x) const {
  const auto p = predict_proba(x);
  return static_cast<int>(std::max_element(p.begin(), p.end()) - p.begin());
}

void GradientBoostingRegressor::fit(const Matrix& x, std::span<const double> y) {
  assert(x.rows() == y.size() && x.rows() > 0);
  trees_.clear();
  const std::size_t n = x.rows();
  base_ = 0.0;
  for (double t : y) base_ += t;
  base_ /= static_cast<double>(n);

  std::vector<double> pred(n, base_);
  std::vector<double> residual(n);
  lore::Rng rng(cfg_.seed);
  const auto n_sub = std::max<std::size_t>(
      2, static_cast<std::size_t>(cfg_.subsample * static_cast<double>(n)));

  for (std::size_t round = 0; round < cfg_.num_rounds; ++round) {
    for (std::size_t i = 0; i < n; ++i) residual[i] = y[i] - pred[i];
    const auto rows = rng.sample_indices(n, n_sub);
    Matrix bx = x.gather_rows(rows);
    std::vector<double> br(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) br[i] = residual[rows[i]];

    TreeConfig tc = cfg_.tree;
    tc.seed = rng.next_u64();
    DecisionTree tree;
    tree.fit_regressor(bx, br, tc);
    for (std::size_t i = 0; i < n; ++i)
      pred[i] += cfg_.learning_rate * tree.predict_value(x.row(i));
    trees_.push_back(std::move(tree));
  }
}

double GradientBoostingRegressor::predict(std::span<const double> x) const {
  double s = base_;
  for (const auto& tree : trees_) s += cfg_.learning_rate * tree.predict_value(x);
  return s;
}

void GradientBoostingClassifier::fit(const Matrix& x, std::span<const int> y) {
  assert(x.rows() == y.size() && x.rows() > 0);
  num_classes_ = count_classes(y);
  const std::size_t n = x.rows();
  const std::size_t heads = num_classes_ <= 2 ? 1 : num_classes_;
  trees_.assign(heads, {});
  base_.assign(heads, 0.0);
  lore::Rng rng(cfg_.seed);
  const auto n_sub = std::max<std::size_t>(
      2, static_cast<std::size_t>(cfg_.subsample * static_cast<double>(n)));

  for (std::size_t head = 0; head < heads; ++head) {
    const int positive = heads == 1 ? 1 : static_cast<int>(head);
    double pos_frac = 0.0;
    for (int label : y) pos_frac += label == positive;
    pos_frac = std::clamp(pos_frac / static_cast<double>(n), 1e-6, 1.0 - 1e-6);
    base_[head] = std::log(pos_frac / (1.0 - pos_frac));

    std::vector<double> score(n, base_[head]);
    std::vector<double> grad(n);
    for (std::size_t round = 0; round < cfg_.num_rounds; ++round) {
      for (std::size_t i = 0; i < n; ++i) {
        const double p = 1.0 / (1.0 + std::exp(-score[i]));
        grad[i] = static_cast<double>(y[i] == positive) - p;  // negative gradient
      }
      const auto rows = rng.sample_indices(n, n_sub);
      Matrix bx = x.gather_rows(rows);
      std::vector<double> bg(rows.size());
      for (std::size_t i = 0; i < rows.size(); ++i) bg[i] = grad[rows[i]];

      TreeConfig tc = cfg_.tree;
      tc.seed = rng.next_u64();
      DecisionTree tree;
      tree.fit_regressor(bx, bg, tc);
      for (std::size_t i = 0; i < n; ++i)
        score[i] += cfg_.learning_rate * tree.predict_value(x.row(i));
      trees_[head].push_back(std::move(tree));
    }
  }

  // Flatten every head's forest once so batched inference never touches the
  // pointer-heavy DecisionTree storage.
  feature_dim_ = x.cols();
  packed_.assign(heads, {});
  for (std::size_t head = 0; head < heads; ++head)
    for (const auto& tree : trees_[head]) tree.pack_into(packed_[head]);
}

void GradientBoostingClassifier::margin_batch(std::size_t head, const double* x,
                                              std::size_t n, std::span<double> out,
                                              unsigned threads) const {
  assert(head < packed_.size() && out.size() >= n);
  if (n == 0) return;
  const std::size_t p = feature_dim_;
  // Row-major traversal — a row's features share a cache line, where panel
  // layout strides them 32 bytes apart and needs gathers to win them back.
  parallel_for_chunks(n, threads, 256, [&](std::size_t begin, std::size_t end) {
    const std::size_t rows = end - begin;
    for (std::size_t r = begin; r < end; ++r) out[r] = base_[head];
    kernels::tree_accumulate_rows(out.subspan(begin, rows), packed_[head],
                                  x + begin * p, rows, p, cfg_.learning_rate);
  });
}

std::vector<int> GradientBoostingClassifier::predict_batch(const Matrix& x) const {
  const std::size_t n = x.rows();
  std::vector<int> out(n);
  if (n == 0) return out;
  const std::size_t heads = packed_.size();
  if (heads == 1) {
    // Binary: argmax of {1-p, p} is exactly margin > 0.
    std::vector<double> margin(n);
    margin_batch(0, x.flat().data(), n, margin);
    for (std::size_t r = 0; r < n; ++r) out[r] = margin[r] > 0.0 ? 1 : 0;
    return out;
  }
  std::vector<std::vector<double>> margin(heads, std::vector<double>(n));
  for (std::size_t h = 0; h < heads; ++h) margin_batch(h, x.flat().data(), n, margin[h]);
  // Replicate the reference softmax + first-max argmax arithmetic exactly on
  // the (bit-identical) margins so degenerate ties resolve the same way.
  std::vector<double> s(heads);
  for (std::size_t r = 0; r < n; ++r) {
    double hi = -1e30;
    for (std::size_t h = 0; h < heads; ++h) {
      s[h] = margin[h][r];
      hi = std::max(hi, s[h]);
    }
    double sum = 0.0;
    for (auto& v : s) {
      v = std::exp(v - hi);
      sum += v;
    }
    for (auto& v : s) v /= sum;
    out[r] = static_cast<int>(std::max_element(s.begin(), s.end()) - s.begin());
  }
  return out;
}

double GradientBoostingClassifier::score(std::size_t head, std::span<const double> x) const {
  double s = base_[head];
  for (const auto& tree : trees_[head]) s += cfg_.learning_rate * tree.predict_value(x);
  return s;
}

std::vector<double> GradientBoostingClassifier::predict_proba(std::span<const double> x) const {
  if (trees_.size() == 1) {
    const double p1 = 1.0 / (1.0 + std::exp(-score(0, x)));
    std::vector<double> p(std::max<std::size_t>(num_classes_, 2), 0.0);
    p[0] = 1.0 - p1;
    p[1] = p1;
    return p;
  }
  std::vector<double> s(trees_.size());
  double hi = -1e30;
  for (std::size_t h = 0; h < trees_.size(); ++h) {
    s[h] = score(h, x);
    hi = std::max(hi, s[h]);
  }
  double sum = 0.0;
  for (auto& v : s) {
    v = std::exp(v - hi);
    sum += v;
  }
  for (auto& v : s) v /= sum;
  return s;
}

int GradientBoostingClassifier::predict(std::span<const double> x) const {
  const auto p = predict_proba(x);
  return static_cast<int>(std::max_element(p.begin(), p.end()) - p.begin());
}

}  // namespace lore::ml
