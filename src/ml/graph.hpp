// Graph learning for SDC-proneness prediction ([24], Sec. III-B2): a program
// is a heterogeneous graph of instructions; structural features are learned
// by aggregating neighbour features with attention, then a classifier head
// predicts the fault outcome per node.
//
// Implementation note: this is a light, dependency-free variant of a graph
// attention network. Attention coefficients are computed from feature
// similarity (parameter-free scaled dot-product attention over the
// neighbourhood); K rounds of attention-weighted propagation produce node
// embeddings, and a trained MLP head maps embeddings to outcome classes.
// The inductive property of [24] is preserved: the head is applied to
// embeddings of graphs never seen in training.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/ml/matrix.hpp"
#include "src/ml/mlp.hpp"

namespace lore::ml {

/// Directed graph with typed edges and per-node dense features.
class FeatureGraph {
 public:
  explicit FeatureGraph(std::size_t feature_dim) : feature_dim_(feature_dim) {}

  /// Returns the new node's id.
  std::size_t add_node(std::span<const double> features);
  void add_edge(std::size_t from, std::size_t to, int edge_type = 0);

  std::size_t num_nodes() const { return features_.rows(); }
  std::size_t num_edges() const { return edge_to_.size(); }
  std::size_t feature_dim() const { return feature_dim_; }
  std::span<const double> node_features(std::size_t node) const { return features_.row(node); }
  /// In-neighbours of `node` as (source, edge_type).
  std::span<const std::pair<std::size_t, int>> in_neighbours(std::size_t node) const;
  int num_edge_types() const { return num_edge_types_; }

  /// Must be called after all edges are added, before embedding.
  void finalize();

 private:
  std::size_t feature_dim_;
  Matrix features_;
  std::vector<std::size_t> edge_from_, edge_to_;
  std::vector<int> edge_type_;
  std::vector<std::vector<std::pair<std::size_t, int>>> in_adj_;
  int num_edge_types_ = 1;
  bool finalized_ = false;
};

struct GraphAttentionEmbedderConfig {
  std::size_t hops = 2;
  /// Scaled dot-product attention temperature.
  double temperature = 1.0;
  /// Weight multiplier on the self-loop attention logit.
  double self_weight = 1.0;
};

/// Attention-based propagation producing fixed-size node embeddings.
class GraphAttentionEmbedder {
 public:
  using Config = GraphAttentionEmbedderConfig;

  explicit GraphAttentionEmbedder(Config cfg = {}) : cfg_(cfg) {}

  /// Embedding dim = feature_dim * (hops + 1): concatenation of the node's
  /// own features with each propagation round's aggregate.
  std::size_t embedding_dim(const FeatureGraph& g) const {
    return g.feature_dim() * (cfg_.hops + 1);
  }
  /// Compute embeddings for every node of the graph.
  Matrix embed(const FeatureGraph& g) const;

 private:
  Config cfg_;
};

struct GraphNodeClassifierConfig {
  GraphAttentionEmbedderConfig embedder;
  MlpConfig head{.hidden = {32}, .epochs = 250};
};

/// End-to-end node classifier: embedder + MLP head. Inductive — fit on
/// several graphs, predict on unseen ones.
class GraphNodeClassifier {
 public:
  using Config = GraphNodeClassifierConfig;

  explicit GraphNodeClassifier(Config cfg = {}) : cfg_(cfg), embedder_(cfg.embedder) {}

  /// Train on (graph, per-node labels) pairs; label -1 marks unlabeled nodes.
  void fit(const std::vector<const FeatureGraph*>& graphs,
           const std::vector<std::vector<int>>& labels);
  std::vector<int> predict(const FeatureGraph& g) const;
  std::vector<std::vector<double>> predict_proba(const FeatureGraph& g) const;

 private:
  Config cfg_;
  GraphAttentionEmbedder embedder_;
  MlpClassifier head_{Mlp::Config{}};
  bool fitted_ = false;
};

}  // namespace lore::ml
