// Dense row-major matrix used throughout the ML substrate. Deliberately
// small: the learners LORE needs (MLP, GBDT, SVM, ...) operate on feature
// matrices of at most a few thousand rows, so clarity beats BLAS.
#pragma once

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace lore::ml {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  std::span<double> row(std::size_t r) {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  std::span<double> flat() { return data_; }
  std::span<const double> flat() const { return data_; }

  /// Append a row (must match cols, or set cols if matrix is empty).
  void push_row(std::span<const double> row);

  Matrix transposed() const;
  /// this (r×k) * other (k×c) -> (r×c).
  Matrix matmul(const Matrix& other) const;
  /// Matrix-vector product.
  std::vector<double> matvec(std::span<const double> v) const;

  Matrix& operator+=(const Matrix& o);
  Matrix& operator-=(const Matrix& o);
  Matrix& operator*=(double s);

  /// Submatrix of the given row indices (gather).
  Matrix gather_rows(std::span<const std::size_t> indices) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Dot product of equal-length spans.
double dot(std::span<const double> a, std::span<const double> b);
/// Euclidean (L2) distance.
double l2_distance(std::span<const double> a, std::span<const double> b);
/// In-place a += s * b.
void axpy(std::span<double> a, double s, std::span<const double> b);

}  // namespace lore::ml
