// Common interfaces for the supervised learners. The architecture-level
// experiments sweep several model families over the same injection data
// (Sec. III-B of the paper), so a uniform fit/predict surface matters.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/ml/dataset.hpp"
#include "src/ml/matrix.hpp"

namespace lore::ml {

/// Multi-class classifier. Labels are dense ints in [0, num_classes).
class Classifier {
 public:
  virtual ~Classifier() = default;

  virtual void fit(const Matrix& x, std::span<const int> y) = 0;
  virtual int predict(std::span<const double> x) const = 0;
  /// Per-class probabilities (or scores normalized to sum 1).
  virtual std::vector<double> predict_proba(std::span<const double> x) const;
  virtual std::string name() const = 0;

  /// Predicted class per row. The base implementation is the per-sample
  /// reference loop; learners with a batched inference hot path (knn, svm,
  /// gbdt — DESIGN.md §13) override it, staying bit-identical to this loop
  /// (pinned by tests/ml/predict_batch_test).
  virtual std::vector<int> predict_batch(const Matrix& x) const;
  void fit(const Dataset& d) { fit(d.x, d.labels); }
};

/// Real-valued regressor.
class Regressor {
 public:
  virtual ~Regressor() = default;

  virtual void fit(const Matrix& x, std::span<const double> y) = 0;
  virtual double predict(std::span<const double> x) const = 0;
  virtual std::string name() const = 0;

  std::vector<double> predict_batch(const Matrix& x) const;
  void fit(const Dataset& d) { fit(d.x, d.targets); }
};

}  // namespace lore::ml
