// Labeled dataset container, feature scaling, and train/test splitting.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "src/common/rng.hpp"
#include "src/ml/matrix.hpp"

namespace lore::ml {

/// Feature matrix with integer class labels and/or real-valued targets.
/// Either labels or targets (or both) may be populated.
struct Dataset {
  Matrix x;
  std::vector<int> labels;       // classification targets
  std::vector<double> targets;   // regression targets

  std::size_t size() const { return x.rows(); }
  std::size_t features() const { return x.cols(); }

  void add(std::span<const double> features_row, int label);
  void add(std::span<const double> features_row, double target);
  void add(std::span<const double> features_row, int label, double target);

  /// Number of distinct classes (max label + 1); 0 when unlabeled.
  std::size_t num_classes() const;

  /// Subset by row indices.
  Dataset subset(std::span<const std::size_t> indices) const;
};

/// Shuffled split; test_fraction in (0, 1).
std::pair<Dataset, Dataset> train_test_split(const Dataset& d, double test_fraction,
                                             lore::Rng& rng);

/// Disjoint index folds for k-fold cross-validation.
std::vector<std::vector<std::size_t>> kfold_indices(std::size_t n, std::size_t k,
                                                    lore::Rng& rng);

/// Per-feature standardization to zero mean / unit variance.
class StandardScaler {
 public:
  void fit(const Matrix& x);
  Matrix transform(const Matrix& x) const;
  void transform_inplace(std::span<double> row) const;
  Matrix fit_transform(const Matrix& x);
  bool fitted() const { return !mean_.empty(); }

 private:
  std::vector<double> mean_;
  std::vector<double> inv_std_;
};

/// Per-feature min-max scaling to [0, 1].
class MinMaxScaler {
 public:
  void fit(const Matrix& x);
  Matrix transform(const Matrix& x) const;
  void transform_inplace(std::span<double> row) const;
  bool fitted() const { return !lo_.empty(); }

 private:
  std::vector<double> lo_;
  std::vector<double> inv_range_;
};

}  // namespace lore::ml
