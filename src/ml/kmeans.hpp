// k-means clustering (unsupervised learning per Sec. IV's taxonomy; [23]
// applied unsupervised techniques to fault-injection trial datasets).
#pragma once

#include <span>
#include <vector>

#include "src/common/rng.hpp"
#include "src/ml/matrix.hpp"

namespace lore::ml {

struct KMeansConfig {
  std::size_t k = 4;
  std::size_t max_iters = 100;
  std::uint64_t seed = 29;
};

class KMeans {
 public:
  using Config = KMeansConfig;

  explicit KMeans(Config cfg = {}) : cfg_(cfg) {}

  /// Lloyd's algorithm with k-means++ seeding. Returns iterations used.
  std::size_t fit(const Matrix& x);

  std::size_t assign(std::span<const double> x) const;
  std::vector<std::size_t> assign_batch(const Matrix& x) const;
  const Matrix& centroids() const { return centroids_; }
  /// Total within-cluster sum of squared distances at convergence.
  double inertia() const { return inertia_; }

 private:
  Config cfg_;
  Matrix centroids_;
  double inertia_ = 0.0;
};

}  // namespace lore::ml
