// CART decision trees (classification via Gini, regression via variance
// reduction). Gradient-boosted trees built on these are the workhorse of the
// paper's resiliency-analysis citations ([21] stochastic gradient boosting,
// [22] GBDT error-pattern mining).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "src/common/kernels.hpp"
#include "src/common/rng.hpp"
#include "src/ml/model.hpp"

namespace lore::ml {

struct TreeConfig {
  std::size_t max_depth = 8;
  std::size_t min_samples_leaf = 2;
  std::size_t min_samples_split = 4;
  /// Number of candidate features per split; 0 = all (set by forests).
  std::size_t max_features = 0;
  std::uint64_t seed = 7;
};

/// A trained CART, flat-array node storage.
class DecisionTree {
 public:
  /// Fit a classification tree. `weights` may be empty (uniform).
  void fit_classifier(const Matrix& x, std::span<const int> y,
                      std::span<const double> weights, std::size_t num_classes,
                      const TreeConfig& cfg);
  /// Fit a regression tree on real targets.
  void fit_regressor(const Matrix& x, std::span<const double> y, const TreeConfig& cfg);

  /// For classification trees: class distribution at the leaf.
  std::span<const double> leaf_distribution(std::span<const double> x) const;
  int predict_class(std::span<const double> x) const;
  /// For regression trees: leaf mean.
  double predict_value(std::span<const double> x) const;

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t depth() const;

  /// Append this tree's nodes (regression payloads) to a flattened
  /// structure-of-arrays forest for the batched traversal kernel
  /// (kernels::tree_accumulate_rows). Node ids are rebased past the
  /// forest's current nodes; the tree's root index lands on `soa.root`.
  void pack_into(kernels::TreeSoa& soa) const;

 private:
  struct Node {
    int feature = -1;        // -1 marks a leaf
    double threshold = 0.0;  // go left when x[feature] <= threshold
    std::size_t left = 0, right = 0;
    double value = 0.0;                  // regression leaf mean
    std::vector<double> distribution;   // classification leaf class probs
    std::size_t depth = 0;
  };

  std::size_t find_leaf(std::span<const double> x) const;
  std::size_t build(const Matrix& x, std::span<const int> y_cls,
                    std::span<const double> y_reg, std::span<const double> weights,
                    std::vector<std::size_t>& indices, std::size_t begin, std::size_t end,
                    std::size_t depth, const TreeConfig& cfg, std::size_t num_classes,
                    lore::Rng& rng);

  std::vector<Node> nodes_;
  bool is_classifier_ = false;
};

/// Classifier facade over DecisionTree.
class DecisionTreeClassifier final : public Classifier {
 public:
  explicit DecisionTreeClassifier(TreeConfig cfg = {}) : cfg_(cfg) {}
  void fit(const Matrix& x, std::span<const int> y) override;
  int predict(std::span<const double> x) const override;
  std::vector<double> predict_proba(std::span<const double> x) const override;
  std::string name() const override { return "decision-tree"; }

 private:
  TreeConfig cfg_;
  DecisionTree tree_;
};

/// Regressor facade over DecisionTree.
class DecisionTreeRegressor final : public Regressor {
 public:
  explicit DecisionTreeRegressor(TreeConfig cfg = {}) : cfg_(cfg) {}
  void fit(const Matrix& x, std::span<const double> y) override;
  double predict(std::span<const double> x) const override;
  std::string name() const override { return "decision-tree-reg"; }

 private:
  TreeConfig cfg_;
  DecisionTree tree_;
};

}  // namespace lore::ml
