#include "src/ml/matrix.hpp"

#include <cmath>

#include "src/common/kernels.hpp"

namespace lore::ml {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  for (const auto& r : rows) {
    std::vector<double> tmp(r);
    push_row(tmp);
  }
}

void Matrix::push_row(std::span<const double> row) {
  if (rows_ == 0 && cols_ == 0) cols_ = row.size();
  assert(row.size() == cols_);
  data_.insert(data_.end(), row.begin(), row.end());
  ++rows_;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::matmul(const Matrix& other) const {
  assert(cols_ == other.rows_);
  // i-k-j ordering: the inner loop streams one row of `other` and one row of
  // `out` sequentially (unit stride on both sides), which is the
  // cache-friendly orientation for row-major storage. The inner loop is the
  // shared axpy kernel; zero multipliers skip a whole row pass.
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    auto out_row = out.row(r);
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      kernels::axpy(out_row, a, other.row(k));
    }
  }
  return out;
}

std::vector<double> Matrix::matvec(std::span<const double> v) const {
  assert(v.size() == cols_);
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = dot(row(r), v);
  return out;
}

Matrix& Matrix::operator+=(const Matrix& o) {
  assert(rows_ == o.rows_ && cols_ == o.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& o) {
  assert(rows_ == o.rows_ && cols_ == o.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (auto& x : data_) x *= s;
  return *this;
}

Matrix Matrix::gather_rows(std::span<const std::size_t> indices) const {
  Matrix out(indices.size(), cols_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const auto src = row(indices[i]);
    auto dst = out.row(i);
    for (std::size_t c = 0; c < cols_; ++c) dst[c] = src[c];
  }
  return out;
}

// The element loops live in src/common/kernels.hpp so the dense ML substrate
// and other kernel users share one implementation (and one accumulation
// order — results here are bit-identical to the pre-hoist versions).
double dot(std::span<const double> a, std::span<const double> b) {
  return kernels::dot(a, b);
}

double l2_distance(std::span<const double> a, std::span<const double> b) {
  return std::sqrt(kernels::l2_distance_sq(a, b));
}

void axpy(std::span<double> a, double s, std::span<const double> b) {
  kernels::axpy(a, s, b);
}

}  // namespace lore::ml
