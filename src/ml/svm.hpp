// Linear support vector machine trained with the Pegasos stochastic
// sub-gradient solver. SVMs appear twice in the paper: flip-flop
// vulnerability prediction ([20]) and IPAS instruction classification ([27]).
#pragma once

#include <span>
#include <vector>

#include "src/common/rng.hpp"
#include "src/ml/model.hpp"

namespace lore::ml {

struct LinearSvmConfig {
  double lambda = 1e-3;       // regularization strength
  std::size_t epochs = 40;    // passes over the data
  std::uint64_t seed = 1;
};

class LinearSvm final : public Classifier {
 public:
  using Config = LinearSvmConfig;

  explicit LinearSvm(Config cfg = {}) : cfg_(cfg) {}

  void fit(const Matrix& x, std::span<const int> y) override;
  int predict(std::span<const double> x) const override;
  std::vector<double> predict_proba(std::span<const double> x) const override;
  std::string name() const override { return "linear-svm"; }

  /// Signed margin; positive means class 1.
  double decision(std::span<const double> x) const;

  /// Batched margins for a row-major [n x w.size()] query block: queries are
  /// packed into Arena panels and run through the blocked dot kernel
  /// (scalar/AVX2 runtime dispatch), bit-identical to per-sample decision().
  void decision_batch(const double* x, std::size_t n, std::span<double> out,
                      unsigned threads = 0) const;
  std::vector<int> predict_batch(const Matrix& x) const override;

  std::size_t feature_dim() const { return w_.size(); }

 private:
  Config cfg_;
  std::vector<double> w_;
  double b_ = 0.0;
};

}  // namespace lore::ml
