#include "src/ml/svm.hpp"

#include <cassert>
#include <cmath>

#include "src/common/kernels.hpp"
#include "src/common/parallel.hpp"

namespace lore::ml {

void LinearSvm::fit(const Matrix& x, std::span<const int> y) {
  assert(x.rows() == y.size() && x.rows() > 0);
  const std::size_t n = x.rows(), p = x.cols();
  w_.assign(p, 0.0);
  b_ = 0.0;
  lore::Rng rng(cfg_.seed);
  std::size_t t = 0;
  for (std::size_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
    for (std::size_t step = 0; step < n; ++step) {
      ++t;
      const auto r = static_cast<std::size_t>(rng.uniform_index(n));
      const auto row = x.row(r);
      const double label = y[r] == 1 ? 1.0 : -1.0;
      const double eta = 1.0 / (cfg_.lambda * static_cast<double>(t));
      const double margin = label * (dot(w_, row) + b_);
      for (auto& w : w_) w *= 1.0 - eta * cfg_.lambda;
      if (margin < 1.0) {
        axpy(w_, eta * label, row);
        b_ += eta * label;  // unregularized bias
      }
    }
  }
}

double LinearSvm::decision(std::span<const double> x) const {
  assert(x.size() == w_.size());
  return dot(w_, x) + b_;
}

void LinearSvm::decision_batch(const double* x, std::size_t n, std::span<double> out,
                               unsigned threads) const {
  assert(!w_.empty() && out.size() >= n);
  if (n == 0) return;
  const std::size_t p = w_.size();
  // Row-major interleaved dot — no packing: at campaign feature dims the
  // pack-then-reread traffic costs more than the dot itself.
  parallel_for_chunks(n, threads, 256, [&](std::size_t begin, std::size_t end) {
    const std::size_t rows = end - begin;
    kernels::dot_rows(out.subspan(begin, rows), w_, x + begin * p, rows, p);
    for (std::size_t r = begin; r < end; ++r) out[r] += b_;
  });
}

std::vector<int> LinearSvm::predict_batch(const Matrix& x) const {
  std::vector<double> margin(x.rows());
  decision_batch(x.flat().data(), x.rows(), margin);
  std::vector<int> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) out[r] = margin[r] > 0.0 ? 1 : 0;
  return out;
}

int LinearSvm::predict(std::span<const double> x) const { return decision(x) > 0.0 ? 1 : 0; }

std::vector<double> LinearSvm::predict_proba(std::span<const double> x) const {
  // Platt-style squashing of the margin (uncalibrated but monotone).
  const double p1 = 1.0 / (1.0 + std::exp(-2.0 * decision(x)));
  return {1.0 - p1, p1};
}

}  // namespace lore::ml
