#include "src/ml/kmeans.hpp"

#include <cassert>
#include <cmath>
#include <limits>

namespace lore::ml {

std::size_t KMeans::fit(const Matrix& x) {
  assert(x.rows() >= cfg_.k && cfg_.k > 0);
  lore::Rng rng(cfg_.seed);
  const std::size_t n = x.rows(), p = x.cols();

  // k-means++ seeding.
  centroids_ = Matrix(cfg_.k, p);
  std::vector<double> min_d2(n, std::numeric_limits<double>::max());
  std::size_t first = static_cast<std::size_t>(rng.uniform_index(n));
  for (std::size_t c = 0; c < p; ++c) centroids_(0, c) = x(first, c);
  for (std::size_t k = 1; k < cfg_.k; ++k) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = l2_distance(x.row(i), centroids_.row(k - 1));
      min_d2[i] = std::min(min_d2[i], d * d);
      total += min_d2[i];
    }
    double pick = rng.uniform() * total;
    std::size_t chosen = n - 1;
    for (std::size_t i = 0; i < n; ++i) {
      pick -= min_d2[i];
      if (pick <= 0.0) {
        chosen = i;
        break;
      }
    }
    for (std::size_t c = 0; c < p; ++c) centroids_(k, c) = x(chosen, c);
  }

  std::vector<std::size_t> labels(n, 0);
  std::size_t iter = 0;
  for (; iter < cfg_.max_iters; ++iter) {
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t best = assign(x.row(i));
      if (best != labels[i]) {
        labels[i] = best;
        changed = true;
      }
    }
    Matrix sums(cfg_.k, p);
    std::vector<std::size_t> counts(cfg_.k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      axpy(sums.row(labels[i]), 1.0, x.row(i));
      ++counts[labels[i]];
    }
    for (std::size_t k = 0; k < cfg_.k; ++k) {
      if (counts[k] == 0) {
        // Re-seed empty cluster at a random point.
        const auto r = static_cast<std::size_t>(rng.uniform_index(n));
        for (std::size_t c = 0; c < p; ++c) centroids_(k, c) = x(r, c);
        changed = true;
        continue;
      }
      for (std::size_t c = 0; c < p; ++c)
        centroids_(k, c) = sums(k, c) / static_cast<double>(counts[k]);
    }
    if (!changed) break;
  }

  inertia_ = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = l2_distance(x.row(i), centroids_.row(assign(x.row(i))));
    inertia_ += d * d;
  }
  return iter;
}

std::size_t KMeans::assign(std::span<const double> x) const {
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::max();
  for (std::size_t k = 0; k < centroids_.rows(); ++k) {
    const double d = l2_distance(centroids_.row(k), x);
    if (d < best_d) {
      best_d = d;
      best = k;
    }
  }
  return best;
}

std::vector<std::size_t> KMeans::assign_batch(const Matrix& x) const {
  std::vector<std::size_t> out;
  out.reserve(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) out.push_back(assign(x.row(i)));
  return out;
}

}  // namespace lore::ml
