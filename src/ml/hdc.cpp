#include "src/ml/hdc.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstdlib>

#include "src/common/parallel.hpp"
#include "src/ml/hdc_ref.hpp"
#include "src/obs/obs.hpp"

namespace lore::ml {

namespace {

bool scalar_mode_default() {
#ifdef LORE_HDC_SCALAR_DEFAULT
  constexpr bool build_default = true;
#else
  constexpr bool build_default = false;
#endif
  if (const char* env = std::getenv("LORE_HDC_SCALAR"))
    return !(env[0] == '\0' || (env[0] == '0' && env[1] == '\0'));
  return build_default;
}

std::atomic<bool>& scalar_mode_flag() {
  static std::atomic<bool> flag{scalar_mode_default()};
  return flag;
}

}  // namespace

bool hdc_scalar_reference_mode() {
  return scalar_mode_flag().load(std::memory_order_relaxed);
}

void set_hdc_scalar_reference_mode(bool on) {
  scalar_mode_flag().store(on, std::memory_order_relaxed);
}

Hypervector Hypervector::random(std::size_t dim, lore::Rng& rng) {
  // One bernoulli(0.5) per component in index order — the exact RNG stream
  // of the scalar reference, so packed and scalar agree bit-for-bit.
  if (hdc_scalar_reference_mode()) return pack(hdcref::random(dim, rng));
  Hypervector hv(dim);
  for (std::size_t w = 0; w < hv.words_.size(); ++w) {
    const std::size_t block =
        std::min<std::size_t>(kernels::kWordBits, dim - w * kernels::kWordBits);
    std::uint64_t word = 0;
    for (std::size_t b = 0; b < block; ++b)
      if (!rng.bernoulli(0.5)) word |= 1ULL << b;  // bernoulli true -> +1 -> clear
    hv.words_[w] = word;
  }
  return hv;
}

Hypervector Hypervector::pack(std::span<const std::int8_t> components) {
  Hypervector hv(components.size());
  for (std::size_t i = 0; i < components.size(); ++i)
    if (components[i] < 0)
      hv.words_[i / kernels::kWordBits] |= 1ULL << (i % kernels::kWordBits);
  return hv;
}

std::vector<std::int8_t> Hypervector::unpack() const {
  std::vector<std::int8_t> out(dim_);
  const std::size_t full = dim_ / kernels::kWordBits;
  for (std::size_t w = 0; w < full; ++w)
    kernels::unpack_sign_word(&out[w * kernels::kWordBits], words_[w]);
  if (const std::size_t rem = dim_ % kernels::kWordBits; rem != 0) {
    std::int8_t tail[kernels::kWordBits];
    kernels::unpack_sign_word(tail, words_[full]);
    std::copy_n(tail, rem, &out[full * kernels::kWordBits]);
  }
  return out;
}

Hypervector Hypervector::bind(const Hypervector& other) const {
  assert(dim() == other.dim());
  if (hdc_scalar_reference_mode())
    return pack(hdcref::bind(unpack(), other.unpack()));
  Hypervector out(dim_);
  kernels::xor_words(out.words_, words_, other.words_);
  return out;
}

Hypervector Hypervector::permute(std::size_t k) const {
  if (dim_ == 0) return Hypervector(0);
  if (hdc_scalar_reference_mode()) return pack(hdcref::permute(unpack(), k));
  Hypervector out(dim_);
  kernels::rotate_left_bits(out.words_, words_, dim_, k);
  return out;
}

double Hypervector::similarity(const Hypervector& other) const {
  assert(dim() == other.dim() && dim() > 0);
  LORE_OBS_COUNT("hdc.similarity_ops", 1);
  if (hdc_scalar_reference_mode())
    return hdcref::similarity(unpack(), other.unpack());
  // Differing sign bits contribute -1 to the dot product, agreeing bits +1:
  // dot = dim - 2 * popcount(a XOR b). The division matches the scalar
  // reference expression exactly, so the double result is bit-identical.
  const auto h = static_cast<std::int64_t>(kernels::xor_popcount(words_, other.words_));
  const std::int64_t s = static_cast<std::int64_t>(dim_) - 2 * h;
  return static_cast<double>(s) / static_cast<double>(dim_);
}

double Hypervector::hamming(const Hypervector& other) const {
  return 0.5 * (1.0 - similarity(other));
}

Hypervector Hypervector::with_component_errors(double p, lore::Rng& rng) const {
  if (hdc_scalar_reference_mode()) {
    auto out = hdcref::with_component_errors(unpack(), p, rng);
    return pack(out);
  }
  Hypervector out = *this;
  if (p <= 0.0) return out;
  std::uint64_t flips = 0;
  for (std::size_t i = 0; i < dim_; ++i) {
    if (rng.bernoulli(p)) {
      out.words_[i / kernels::kWordBits] ^= 1ULL << (i % kernels::kWordBits);
      ++flips;
    }
  }
  LORE_OBS_COUNT("hdc.component_flips", flips);
  return out;
}

void Accumulator::add(const Hypervector& hv) { add_weighted(hv, 1); }

void Accumulator::add_weighted(const Hypervector& hv, int weight) {
  assert(hv.dim() == dim_);
  dirty_ = true;
  ++count_;
  if (hdc_scalar_reference_mode()) {
    hdcref::accumulate(scalar_sums_, hv.unpack(), weight);
    return;
  }
  packed_weight_total_ += weight;
  if (weight == 0) return;
  // Carry-save bundle: each set bit of |weight| ripples the sign words into
  // the matching plane of the counter stack — word-parallel XOR/AND passes
  // instead of `dim` integer adds.
  auto& planes = weight > 0 ? pos_planes_ : neg_planes_;
  const auto mag = static_cast<std::uint64_t>(std::abs(static_cast<std::int64_t>(weight)));
  for (std::size_t bit = 0; mag >> bit != 0; ++bit)
    if ((mag >> bit) & 1)
      kernels::ripple_add_planes(planes, hv.words(), bit, carry_scratch_);
}

void Accumulator::materialize() const {
  if (!dirty_) return;
  // sum[i] = scalar-mode adds + Σw_packed − 2·(pos_count[i] − neg_count[i]),
  // where the counts are read off the bit planes (bit at plane p ⇒ 2^p).
  sums_cache_ = scalar_sums_;
  const std::size_t nwords = kernels::word_count(dim_);
  std::int64_t delta[kernels::kWordBits];
  for (std::size_t w = 0; w < nwords; ++w) {
    for (auto& d : delta) d = packed_weight_total_;
    for (std::size_t p = 0; p < pos_planes_.size(); ++p)
      for (std::uint64_t bits = pos_planes_[p][w]; bits != 0; bits &= bits - 1)
        delta[std::countr_zero(bits)] -= std::int64_t{2} << p;
    for (std::size_t p = 0; p < neg_planes_.size(); ++p)
      for (std::uint64_t bits = neg_planes_[p][w]; bits != 0; bits &= bits - 1)
        delta[std::countr_zero(bits)] += std::int64_t{2} << p;
    const std::size_t base = w * kernels::kWordBits;
    const std::size_t n = std::min<std::size_t>(kernels::kWordBits, dim_ - base);
    for (std::size_t b = 0; b < n; ++b)
      sums_cache_[base + b] += static_cast<std::int32_t>(delta[b]);
  }
  dirty_ = false;
}

std::span<const std::int32_t> Accumulator::sums() const {
  materialize();
  return sums_cache_;
}

Hypervector Accumulator::to_hypervector(lore::Rng* rng) const {
  materialize();
  if (hdc_scalar_reference_mode())
    return Hypervector::pack(hdcref::threshold(sums_cache_, rng));
  Hypervector out(dim_);  // starts all +1 (bits clear)
  for (std::size_t i = 0; i < dim_; ++i) {
    if (sums_cache_[i] < 0) out.set(i, -1);
    else if (sums_cache_[i] == 0 && !(rng && rng->bernoulli(0.5))) out.set(i, -1);
  }
  return out;
}

const Hypervector& ItemMemory::get(std::uint64_t symbol) {
  auto it = items_.find(symbol);
  if (it == items_.end())
    it = items_.emplace(symbol, Hypervector::random(dim_, rng_)).first;
  return it->second;
}

LevelEncoder::LevelEncoder(std::size_t dim, std::size_t levels, double lo, double hi,
                           std::uint64_t seed)
    : lo_(lo), hi_(hi) {
  assert(levels >= 2 && hi > lo && dim > 0);
  lore::Rng rng(seed);
  level_hvs_.reserve(levels);
  level_hvs_.push_back(Hypervector::random(dim, rng));
  // Flip dim/(2*(levels-1)) components per step: level 0 and level L-1 end up
  // ~orthogonal while adjacent levels stay highly correlated.
  const std::size_t flips_per_step = std::max<std::size_t>(1, dim / (2 * (levels - 1)));
  std::vector<std::size_t> perm(dim);
  for (std::size_t i = 0; i < dim; ++i) perm[i] = i;
  rng.shuffle(perm);
  std::size_t cursor = 0;
  for (std::size_t l = 1; l < levels; ++l) {
    Hypervector next = level_hvs_.back();
    for (std::size_t f = 0; f < flips_per_step && cursor < dim; ++f, ++cursor)
      next[perm[cursor]] = static_cast<std::int8_t>(-next[perm[cursor]]);
    level_hvs_.push_back(std::move(next));
  }
}

std::size_t LevelEncoder::level_of(double value) const {
  const double t = (value - lo_) / (hi_ - lo_);
  auto l = static_cast<std::ptrdiff_t>(t * static_cast<double>(level_hvs_.size()));
  l = std::clamp<std::ptrdiff_t>(l, 0, static_cast<std::ptrdiff_t>(level_hvs_.size()) - 1);
  return static_cast<std::size_t>(l);
}

const Hypervector& LevelEncoder::encode(double value) const {
  return level_hvs_[level_of(value)];
}

double LevelEncoder::level_center(std::size_t level) const {
  assert(level < level_hvs_.size());
  const double step = (hi_ - lo_) / static_cast<double>(level_hvs_.size());
  return lo_ + (static_cast<double>(level) + 0.5) * step;
}

RecordEncoder::RecordEncoder(std::vector<std::pair<double, double>> ranges, Config cfg)
    : cfg_(cfg) {
  assert(!ranges.empty());
  lore::Rng rng(cfg.seed);
  per_feature_.reserve(ranges.size());
  feature_ids_.reserve(ranges.size());
  for (std::size_t f = 0; f < ranges.size(); ++f) {
    per_feature_.emplace_back(cfg.dim, cfg.levels, ranges[f].first, ranges[f].second,
                              rng.next_u64());
    feature_ids_.push_back(Hypervector::random(cfg.dim, rng));
  }
}

Hypervector RecordEncoder::encode(std::span<const double> features) const {
  assert(features.size() == per_feature_.size());
  LORE_OBS_COUNT("hdc.encodes", 1);
  Accumulator acc(cfg_.dim);
  for (std::size_t f = 0; f < features.size(); ++f)
    acc.add(feature_ids_[f].bind(per_feature_[f].encode(features[f])));
  // Deterministic tie-break keeps encoding a pure function of the input.
  return acc.to_hypervector(nullptr);
}

void HdcClassifier::fit(const std::vector<std::vector<double>>& x, std::span<const int> y) {
  assert(x.size() == y.size() && !x.empty());
  std::size_t num_classes = 0;
  for (int label : y) num_classes = std::max<std::size_t>(num_classes, static_cast<std::size_t>(label) + 1);

  // Encoding is a pure function of the row, so rows fan out across the team;
  // each writes its own slot, keeping the result thread-count-invariant.
  std::vector<Hypervector> encoded(x.size());
  lore::parallel_for(x.size(), cfg_.threads,
                     [&](std::size_t i) { encoded[i] = encoder_->encode(x[i]); });

  std::vector<Accumulator> acc(num_classes, Accumulator(encoder_->dim()));
  for (std::size_t i = 0; i < x.size(); ++i)
    acc[static_cast<std::size_t>(y[i])].add(encoded[i]);

  lore::Rng rng(cfg_.seed);
  prototypes_.clear();
  for (auto& a : acc) prototypes_.push_back(a.to_hypervector(&rng));

  // Perceptron-style retraining: move prototypes toward mispredicted samples.
  // Predictions within a pass only read the prototypes fixed at pass start,
  // so the per-sample predicts run in parallel; the accumulator update stays
  // serial and in sample order (bit-identical for any thread count).
  std::vector<int> preds(x.size());
  for (std::size_t pass = 0; pass < cfg_.retrain_passes; ++pass) {
    lore::parallel_for(x.size(), cfg_.threads,
                       [&](std::size_t i) { preds[i] = predict_encoded(encoded[i]); });
    std::vector<Accumulator> adj(num_classes, Accumulator(encoder_->dim()));
    bool any_error = false;
    // Start accumulators at scaled prototypes so corrections shift, not replace.
    for (std::size_t c = 0; c < num_classes; ++c)
      adj[c].add_weighted(prototypes_[c], static_cast<int>(x.size() / num_classes + 1));
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (preds[i] != y[i]) {
        any_error = true;
        adj[static_cast<std::size_t>(y[i])].add_weighted(encoded[i], 1);
        adj[static_cast<std::size_t>(preds[i])].add_weighted(encoded[i], -1);
      }
    }
    if (!any_error) break;
    for (std::size_t c = 0; c < num_classes; ++c) prototypes_[c] = adj[c].to_hypervector(&rng);
  }
}

int HdcClassifier::predict_encoded(const Hypervector& query) const {
  assert(!prototypes_.empty());
  int best = 0;
  double best_sim = -2.0;
  for (std::size_t c = 0; c < prototypes_.size(); ++c) {
    const double s = prototypes_[c].similarity(query);
    if (s > best_sim) {
      best_sim = s;
      best = static_cast<int>(c);
    }
  }
  return best;
}

int HdcClassifier::predict(std::span<const double> x, double error_rate,
                           lore::Rng* rng) const {
  Hypervector q = encoder_->encode(x);
  if (error_rate > 0.0) {
    assert(rng != nullptr);
    q = q.with_component_errors(error_rate, *rng);
  }
  return predict_encoded(q);
}

std::vector<int> HdcClassifier::predict_batch(const std::vector<std::vector<double>>& x,
                                              double error_rate,
                                              std::uint64_t noise_seed) const {
  return lore::parallel_trials<int>(
      x.size(), noise_seed, cfg_.threads, [&](std::size_t i, lore::Rng& rng) {
        return predict(x[i], error_rate, error_rate > 0.0 ? &rng : nullptr);
      });
}

void HdcRegressor::fit(const std::vector<std::vector<double>>& x, std::span<const double> y) {
  assert(x.size() == y.size() && !x.empty());
  y_lo_ = *std::min_element(y.begin(), y.end());
  y_hi_ = *std::max_element(y.begin(), y.end());
  if (y_hi_ - y_lo_ < 1e-12) y_hi_ = y_lo_ + 1e-12;

  std::vector<Hypervector> encoded(x.size());
  lore::parallel_for(x.size(), cfg_.threads,
                     [&](std::size_t i) { encoded[i] = encoder_->encode(x[i]); });

  const std::size_t levels = cfg_.target_levels;
  std::vector<Accumulator> acc(levels, Accumulator(encoder_->dim()));
  level_present_.assign(levels, false);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double t = (y[i] - y_lo_) / (y_hi_ - y_lo_);
    auto l = static_cast<std::size_t>(std::min(t * static_cast<double>(levels),
                                               static_cast<double>(levels) - 1.0));
    acc[l].add(encoded[i]);
    level_present_[l] = true;
  }
  lore::Rng rng(cfg_.seed);
  level_prototypes_.clear();
  for (auto& a : acc) level_prototypes_.push_back(a.to_hypervector(&rng));
}

double HdcRegressor::predict(std::span<const double> x, double error_rate,
                             lore::Rng* rng) const {
  assert(!level_prototypes_.empty());
  Hypervector q = encoder_->encode(x);
  if (error_rate > 0.0) {
    assert(rng != nullptr);
    q = q.with_component_errors(error_rate, *rng);
  }
  // Softmax over similarities of populated levels; mix level centers.
  const std::size_t levels = level_prototypes_.size();
  const double step = (y_hi_ - y_lo_) / static_cast<double>(levels);
  double hi_sim = -2.0;
  std::vector<double> sims(levels, -2.0);
  for (std::size_t l = 0; l < levels; ++l) {
    if (!level_present_[l]) continue;
    sims[l] = level_prototypes_[l].similarity(q);
    hi_sim = std::max(hi_sim, sims[l]);
  }
  double wsum = 0.0, vsum = 0.0;
  for (std::size_t l = 0; l < levels; ++l) {
    if (!level_present_[l]) continue;
    const double w = std::exp((sims[l] - hi_sim) / cfg_.temperature);
    wsum += w;
    vsum += w * (y_lo_ + (static_cast<double>(l) + 0.5) * step);
  }
  return vsum / wsum;
}

std::vector<double> HdcRegressor::predict_batch(const std::vector<std::vector<double>>& x,
                                                double error_rate,
                                                std::uint64_t noise_seed) const {
  return lore::parallel_trials<double>(
      x.size(), noise_seed, cfg_.threads, [&](std::size_t i, lore::Rng& rng) {
        return predict(x[i], error_rate, error_rate > 0.0 ? &rng : nullptr);
      });
}

}  // namespace lore::ml
