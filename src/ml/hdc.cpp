#include "src/ml/hdc.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lore::ml {

Hypervector Hypervector::random(std::size_t dim, lore::Rng& rng) {
  Hypervector hv(dim);
  for (std::size_t i = 0; i < dim; ++i) hv.v_[i] = rng.bernoulli(0.5) ? 1 : -1;
  return hv;
}

Hypervector Hypervector::bind(const Hypervector& other) const {
  assert(dim() == other.dim());
  Hypervector out(dim());
  for (std::size_t i = 0; i < dim(); ++i)
    out.v_[i] = static_cast<std::int8_t>(v_[i] * other.v_[i]);
  return out;
}

Hypervector Hypervector::permute(std::size_t k) const {
  Hypervector out(dim());
  if (dim() == 0) return out;
  k %= dim();
  for (std::size_t i = 0; i < dim(); ++i) out.v_[(i + k) % dim()] = v_[i];
  return out;
}

double Hypervector::similarity(const Hypervector& other) const {
  assert(dim() == other.dim() && dim() > 0);
  std::int64_t s = 0;
  for (std::size_t i = 0; i < dim(); ++i) s += v_[i] * other.v_[i];
  return static_cast<double>(s) / static_cast<double>(dim());
}

double Hypervector::hamming(const Hypervector& other) const {
  return 0.5 * (1.0 - similarity(other));
}

Hypervector Hypervector::with_component_errors(double p, lore::Rng& rng) const {
  Hypervector out = *this;
  if (p <= 0.0) return out;
  for (std::size_t i = 0; i < dim(); ++i)
    if (rng.bernoulli(p)) out.v_[i] = static_cast<std::int8_t>(-out.v_[i]);
  return out;
}

void Accumulator::add(const Hypervector& hv) { add_weighted(hv, 1); }

void Accumulator::add_weighted(const Hypervector& hv, int weight) {
  assert(hv.dim() == sums_.size());
  for (std::size_t i = 0; i < sums_.size(); ++i) sums_[i] += weight * hv[i];
  ++count_;
}

Hypervector Accumulator::to_hypervector(lore::Rng* rng) const {
  Hypervector out(sums_.size());
  for (std::size_t i = 0; i < sums_.size(); ++i) {
    if (sums_[i] > 0) out[i] = 1;
    else if (sums_[i] < 0) out[i] = -1;
    else out[i] = (rng && rng->bernoulli(0.5)) ? 1 : -1;
  }
  return out;
}

const Hypervector& ItemMemory::get(std::uint64_t symbol) {
  auto it = items_.find(symbol);
  if (it == items_.end())
    it = items_.emplace(symbol, Hypervector::random(dim_, rng_)).first;
  return it->second;
}

LevelEncoder::LevelEncoder(std::size_t dim, std::size_t levels, double lo, double hi,
                           std::uint64_t seed)
    : lo_(lo), hi_(hi) {
  assert(levels >= 2 && hi > lo && dim > 0);
  lore::Rng rng(seed);
  level_hvs_.reserve(levels);
  level_hvs_.push_back(Hypervector::random(dim, rng));
  // Flip dim/(2*(levels-1)) components per step: level 0 and level L-1 end up
  // ~orthogonal while adjacent levels stay highly correlated.
  const std::size_t flips_per_step = std::max<std::size_t>(1, dim / (2 * (levels - 1)));
  std::vector<std::size_t> perm(dim);
  for (std::size_t i = 0; i < dim; ++i) perm[i] = i;
  rng.shuffle(perm);
  std::size_t cursor = 0;
  for (std::size_t l = 1; l < levels; ++l) {
    Hypervector next = level_hvs_.back();
    for (std::size_t f = 0; f < flips_per_step && cursor < dim; ++f, ++cursor)
      next[perm[cursor]] = static_cast<std::int8_t>(-next[perm[cursor]]);
    level_hvs_.push_back(std::move(next));
  }
}

std::size_t LevelEncoder::level_of(double value) const {
  const double t = (value - lo_) / (hi_ - lo_);
  auto l = static_cast<std::ptrdiff_t>(t * static_cast<double>(level_hvs_.size()));
  l = std::clamp<std::ptrdiff_t>(l, 0, static_cast<std::ptrdiff_t>(level_hvs_.size()) - 1);
  return static_cast<std::size_t>(l);
}

const Hypervector& LevelEncoder::encode(double value) const {
  return level_hvs_[level_of(value)];
}

double LevelEncoder::level_center(std::size_t level) const {
  assert(level < level_hvs_.size());
  const double step = (hi_ - lo_) / static_cast<double>(level_hvs_.size());
  return lo_ + (static_cast<double>(level) + 0.5) * step;
}

RecordEncoder::RecordEncoder(std::vector<std::pair<double, double>> ranges, Config cfg)
    : cfg_(cfg) {
  assert(!ranges.empty());
  lore::Rng rng(cfg.seed);
  per_feature_.reserve(ranges.size());
  feature_ids_.reserve(ranges.size());
  for (std::size_t f = 0; f < ranges.size(); ++f) {
    per_feature_.emplace_back(cfg.dim, cfg.levels, ranges[f].first, ranges[f].second,
                              rng.next_u64());
    feature_ids_.push_back(Hypervector::random(cfg.dim, rng));
  }
}

Hypervector RecordEncoder::encode(std::span<const double> features) const {
  assert(features.size() == per_feature_.size());
  Accumulator acc(cfg_.dim);
  for (std::size_t f = 0; f < features.size(); ++f)
    acc.add(feature_ids_[f].bind(per_feature_[f].encode(features[f])));
  // Deterministic tie-break keeps encoding a pure function of the input.
  return acc.to_hypervector(nullptr);
}

void HdcClassifier::fit(const std::vector<std::vector<double>>& x, std::span<const int> y) {
  assert(x.size() == y.size() && !x.empty());
  std::size_t num_classes = 0;
  for (int label : y) num_classes = std::max<std::size_t>(num_classes, static_cast<std::size_t>(label) + 1);

  std::vector<Hypervector> encoded;
  encoded.reserve(x.size());
  for (const auto& row : x) encoded.push_back(encoder_->encode(row));

  std::vector<Accumulator> acc(num_classes, Accumulator(encoder_->dim()));
  for (std::size_t i = 0; i < x.size(); ++i)
    acc[static_cast<std::size_t>(y[i])].add(encoded[i]);

  lore::Rng rng(cfg_.seed);
  prototypes_.clear();
  for (auto& a : acc) prototypes_.push_back(a.to_hypervector(&rng));

  // Perceptron-style retraining: move prototypes toward mispredicted samples.
  for (std::size_t pass = 0; pass < cfg_.retrain_passes; ++pass) {
    std::vector<Accumulator> adj(num_classes, Accumulator(encoder_->dim()));
    bool any_error = false;
    // Start accumulators at scaled prototypes so corrections shift, not replace.
    for (std::size_t c = 0; c < num_classes; ++c)
      adj[c].add_weighted(prototypes_[c], static_cast<int>(x.size() / num_classes + 1));
    for (std::size_t i = 0; i < x.size(); ++i) {
      const int pred = predict_encoded(encoded[i]);
      if (pred != y[i]) {
        any_error = true;
        adj[static_cast<std::size_t>(y[i])].add_weighted(encoded[i], 1);
        adj[static_cast<std::size_t>(pred)].add_weighted(encoded[i], -1);
      }
    }
    if (!any_error) break;
    for (std::size_t c = 0; c < num_classes; ++c) prototypes_[c] = adj[c].to_hypervector(&rng);
  }
}

int HdcClassifier::predict_encoded(const Hypervector& query) const {
  assert(!prototypes_.empty());
  int best = 0;
  double best_sim = -2.0;
  for (std::size_t c = 0; c < prototypes_.size(); ++c) {
    const double s = prototypes_[c].similarity(query);
    if (s > best_sim) {
      best_sim = s;
      best = static_cast<int>(c);
    }
  }
  return best;
}

int HdcClassifier::predict(std::span<const double> x, double error_rate,
                           lore::Rng* rng) const {
  Hypervector q = encoder_->encode(x);
  if (error_rate > 0.0) {
    assert(rng != nullptr);
    q = q.with_component_errors(error_rate, *rng);
  }
  return predict_encoded(q);
}

void HdcRegressor::fit(const std::vector<std::vector<double>>& x, std::span<const double> y) {
  assert(x.size() == y.size() && !x.empty());
  y_lo_ = *std::min_element(y.begin(), y.end());
  y_hi_ = *std::max_element(y.begin(), y.end());
  if (y_hi_ - y_lo_ < 1e-12) y_hi_ = y_lo_ + 1e-12;

  const std::size_t levels = cfg_.target_levels;
  std::vector<Accumulator> acc(levels, Accumulator(encoder_->dim()));
  level_present_.assign(levels, false);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double t = (y[i] - y_lo_) / (y_hi_ - y_lo_);
    auto l = static_cast<std::size_t>(std::min(t * static_cast<double>(levels),
                                               static_cast<double>(levels) - 1.0));
    acc[l].add(encoder_->encode(x[i]));
    level_present_[l] = true;
  }
  lore::Rng rng(cfg_.seed);
  level_prototypes_.clear();
  for (auto& a : acc) level_prototypes_.push_back(a.to_hypervector(&rng));
}

double HdcRegressor::predict(std::span<const double> x, double error_rate,
                             lore::Rng* rng) const {
  assert(!level_prototypes_.empty());
  Hypervector q = encoder_->encode(x);
  if (error_rate > 0.0) {
    assert(rng != nullptr);
    q = q.with_component_errors(error_rate, *rng);
  }
  // Softmax over similarities of populated levels; mix level centers.
  const std::size_t levels = level_prototypes_.size();
  const double step = (y_hi_ - y_lo_) / static_cast<double>(levels);
  double hi_sim = -2.0;
  std::vector<double> sims(levels, -2.0);
  for (std::size_t l = 0; l < levels; ++l) {
    if (!level_present_[l]) continue;
    sims[l] = level_prototypes_[l].similarity(q);
    hi_sim = std::max(hi_sim, sims[l]);
  }
  double wsum = 0.0, vsum = 0.0;
  for (std::size_t l = 0; l < levels; ++l) {
    if (!level_present_[l]) continue;
    const double w = std::exp((sims[l] - hi_sim) / cfg_.temperature);
    wsum += w;
    vsum += w * (y_lo_ + (static_cast<double>(l) + 0.5) * step);
  }
  return vsum / wsum;
}

}  // namespace lore::ml
