#include "src/ml/predictor.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/common/kernels.hpp"
#include "src/common/rng.hpp"
#include "src/obs/obs.hpp"

namespace lore::ml {

const char* predictor_model_name(PredictorModel m) {
  switch (m) {
    case PredictorModel::kKnn: return "knn";
    case PredictorModel::kSvm: return "linear-svm";
    case PredictorModel::kGbdt: return "gbdt";
  }
  return "?";
}

void PredictorSnapshot::predict_benign(const double* x, std::size_t n,
                                       std::span<double> p_benign,
                                       unsigned threads) const {
  assert(p_benign.size() >= n);
  switch (family_) {
    case PredictorModel::kKnn:
      knn_.class_votes_batch(x, n, /*cls=*/1, p_benign, threads);
      return;
    case PredictorModel::kSvm:
      svm_.decision_batch(x, n, p_benign, threads);
      // Same Platt-style squashing as LinearSvm::predict_proba.
      for (std::size_t r = 0; r < n; ++r)
        p_benign[r] = 1.0 / (1.0 + std::exp(-2.0 * p_benign[r]));
      return;
    case PredictorModel::kGbdt:
      gbdt_.margin_batch(/*head=*/0, x, n, p_benign, threads);
      for (std::size_t r = 0; r < n; ++r)
        p_benign[r] = 1.0 / (1.0 + std::exp(-p_benign[r]));
      return;
  }
}

Predictor::Predictor(PredictorConfig cfg) : cfg_(cfg) {
  assert(cfg_.max_buffer > 0 && cfg_.min_train_samples > 0);
}

Predictor::~Predictor() { stop_background(); }

std::shared_ptr<const PredictorSnapshot> Predictor::snapshot() const {
  std::lock_guard lock(mu_);
  return snap_;
}

void Predictor::observe(std::span<const double> features, bool benign) {
  std::lock_guard lock(mu_);
  if (dim_ == 0) dim_ = features.size();
  assert(features.size() == dim_ && dim_ > 0);
  if (count_ < cfg_.max_buffer) {
    features_.insert(features_.end(), features.begin(), features.end());
    labels_.push_back(benign ? 1 : 0);
    ++count_;
    write_pos_ = count_ % cfg_.max_buffer;
  } else {
    std::copy(features.begin(), features.end(), features_.begin() + write_pos_ * dim_);
    labels_[write_pos_] = benign ? 1 : 0;
    write_pos_ = (write_pos_ + 1) % cfg_.max_buffer;
  }
  ++observed_total_;
}

bool Predictor::train_if_due() {
  {
    std::lock_guard lock(mu_);
    if (count_ < cfg_.min_train_samples) return false;
    if (observed_total_ - observed_at_last_train_ < cfg_.retrain_interval &&
        snap_ != nullptr)
      return false;
  }
  return train_candidate();
}

bool Predictor::train_now() {
  {
    std::lock_guard lock(mu_);
    if (count_ < cfg_.min_train_samples) return false;
  }
  return train_candidate();
}

bool Predictor::train_candidate() {
  // Copy the buffer out under the lock, then train unlocked — observation and
  // scoring continue against the old snapshot while the candidate builds.
  Matrix x;
  std::vector<int> y;
  std::uint64_t version = 0;
  double live_accuracy = 0.0;
  {
    std::lock_guard lock(mu_);
    if (count_ < cfg_.min_train_samples || dim_ == 0) return false;
    x = Matrix(count_, dim_);
    std::copy(features_.begin(), features_.begin() + count_ * dim_, x.flat().begin());
    y.resize(count_);
    for (std::size_t i = 0; i < count_; ++i) y[i] = labels_[i];
    version = next_version_++;
    observed_at_last_train_ = observed_total_;
    ++trainings_;
    if (snap_) live_accuracy = snap_->validation_accuracy();
  }

  // Seeded holdout split: deterministic for (config seed, version).
  const std::size_t n = x.rows();
  auto holdout_count = static_cast<std::size_t>(cfg_.holdout_fraction * static_cast<double>(n));
  if (holdout_count >= n) holdout_count = n - 1;
  std::vector<std::uint8_t> is_holdout(n, 0);
  if (holdout_count > 0) {
    Rng rng(kernels::scalar::trial_seed_at(cfg_.seed, version));
    for (auto i : rng.sample_indices(n, holdout_count)) is_holdout[i] = 1;
  }
  Matrix train_x, val_x;
  std::vector<int> train_y, val_y;
  for (std::size_t i = 0; i < n; ++i) {
    if (is_holdout[i]) {
      val_x.push_row(x.row(i));
      val_y.push_back(y[i]);
    } else {
      train_x.push_row(x.row(i));
      train_y.push_back(y[i]);
    }
  }
  if (val_y.empty()) {
    val_x = train_x;
    val_y = train_y;
  }

  auto candidate = std::make_shared<PredictorSnapshot>();
  candidate->family_ = cfg_.model;
  candidate->version_ = version;
  candidate->trained_on_ = train_y.size();
  Classifier* model = nullptr;
  switch (cfg_.model) {
    case PredictorModel::kKnn:
      candidate->knn_ = KnnClassifier(cfg_.knn_k);
      model = &candidate->knn_;
      break;
    case PredictorModel::kSvm:
      candidate->svm_ = LinearSvm(cfg_.svm);
      model = &candidate->svm_;
      break;
    case PredictorModel::kGbdt:
      candidate->gbdt_ = GradientBoostingClassifier(cfg_.gbdt);
      model = &candidate->gbdt_;
      break;
  }
  model->fit(train_x, train_y);

  const auto preds = model->predict_batch(val_x);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < val_y.size(); ++i) correct += preds[i] == val_y[i];
  const double accuracy =
      static_cast<double>(correct) / static_cast<double>(val_y.size());
  candidate->validation_accuracy_ = accuracy;

  if (obs::kCompiledIn && obs::enabled()) {
    auto& registry = obs::MetricsRegistry::global();
    registry.counter("ml.predictor.trainings").add(1);
    registry.gauge("ml.predictor.validation_accuracy").set(accuracy);
  }

  // Swap only on a validation win: at least the floor AND no worse than the
  // live snapshot. A losing candidate is dropped on the floor.
  if (accuracy < cfg_.min_validation_accuracy || accuracy < live_accuracy) return false;
  {
    std::lock_guard lock(mu_);
    if (snap_ && snap_->validation_accuracy() > accuracy) return false;
    snap_ = std::move(candidate);
  }
  if (obs::kCompiledIn && obs::enabled()) {
    auto& registry = obs::MetricsRegistry::global();
    registry.counter("ml.predictor.swaps").add(1);
    registry.gauge("ml.predictor.version").set(static_cast<double>(version));
  }
  return true;
}

void Predictor::start_background(std::chrono::milliseconds interval) {
  std::lock_guard lock(bg_mu_);
  if (bg_.joinable()) return;
  bg_stop_ = false;
  bg_ = std::thread([this, interval] {
    std::unique_lock lk(bg_mu_);
    while (!bg_stop_) {
      bg_cv_.wait_for(lk, interval, [this] { return bg_stop_; });
      if (bg_stop_) break;
      lk.unlock();
      train_if_due();
      lk.lock();
    }
  });
}

void Predictor::stop_background() {
  std::thread t;
  {
    std::lock_guard lock(bg_mu_);
    bg_stop_ = true;
    t.swap(bg_);
  }
  bg_cv_.notify_all();
  if (t.joinable()) t.join();
}

std::size_t Predictor::observed() const {
  std::lock_guard lock(mu_);
  return observed_total_;
}

std::size_t Predictor::buffered() const {
  std::lock_guard lock(mu_);
  return count_;
}

std::size_t Predictor::trainings() const {
  std::lock_guard lock(mu_);
  return trainings_;
}

std::uint64_t Predictor::version() const {
  std::lock_guard lock(mu_);
  return snap_ ? snap_->version() : 0;
}

}  // namespace lore::ml
