#include "src/ml/model.hpp"

#include <cassert>

namespace lore::ml {

std::vector<double> Classifier::predict_proba(std::span<const double> x) const {
  // Default: hard one-hot of the predicted class. Learners with calibrated
  // scores override this.
  const int cls = predict(x);
  std::vector<double> p(static_cast<std::size_t>(cls) + 1, 0.0);
  p[static_cast<std::size_t>(cls)] = 1.0;
  return p;
}

std::vector<int> Classifier::predict_batch(const Matrix& x) const {
  std::vector<int> out;
  out.reserve(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) out.push_back(predict(x.row(r)));
  return out;
}

std::vector<double> Regressor::predict_batch(const Matrix& x) const {
  std::vector<double> out;
  out.reserve(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) out.push_back(predict(x.row(r)));
  return out;
}

}  // namespace lore::ml
