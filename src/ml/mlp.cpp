#include "src/ml/mlp.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace lore::ml {
namespace {

double activate(Activation a, double z) {
  switch (a) {
    case Activation::kRelu: return z > 0.0 ? z : 0.0;
    case Activation::kTanh: return std::tanh(z);
    case Activation::kSigmoid: return 1.0 / (1.0 + std::exp(-z));
    case Activation::kIdentity: return z;
  }
  return z;
}

double activate_grad(Activation a, double z, double fz) {
  switch (a) {
    case Activation::kRelu: return z > 0.0 ? 1.0 : 0.0;
    case Activation::kTanh: return 1.0 - fz * fz;
    case Activation::kSigmoid: return fz * (1.0 - fz);
    case Activation::kIdentity: return 1.0;
  }
  return 1.0;
}

}  // namespace

void Mlp::init(std::size_t inputs, std::size_t outputs, const Config& cfg) {
  assert(inputs > 0 && outputs > 0);
  cfg_ = cfg;
  layer_sizes_.clear();
  layer_sizes_.push_back(inputs);
  for (auto h : cfg.hidden) layer_sizes_.push_back(h);
  layer_sizes_.push_back(outputs);

  lore::Rng rng(cfg.seed);
  layers_.clear();
  for (std::size_t l = 0; l + 1 < layer_sizes_.size(); ++l) {
    const std::size_t in = layer_sizes_[l], out = layer_sizes_[l + 1];
    Layer layer;
    layer.w = Matrix(out, in);
    // He/Xavier-style scaling by fan-in.
    const double scale = std::sqrt(2.0 / static_cast<double>(in));
    for (std::size_t r = 0; r < out; ++r)
      for (std::size_t c = 0; c < in; ++c) layer.w(r, c) = rng.normal(0.0, scale);
    layer.b.assign(out, 0.0);
    layer.mw = Matrix(out, in);
    layer.vw = Matrix(out, in);
    layer.mb.assign(out, 0.0);
    layer.vb.assign(out, 0.0);
    layers_.push_back(std::move(layer));
  }
}

void Mlp::forward_cached(std::span<const double> x, std::vector<std::vector<double>>& acts,
                         std::vector<std::vector<double>>& pre) const {
  assert(x.size() == num_inputs());
  acts.assign(layers_.size() + 1, {});
  pre.assign(layers_.size(), {});
  acts[0].assign(x.begin(), x.end());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const auto& layer = layers_[l];
    pre[l] = layer.w.matvec(acts[l]);
    for (std::size_t i = 0; i < pre[l].size(); ++i) pre[l][i] += layer.b[i];
    acts[l + 1].resize(pre[l].size());
    const bool is_output = l + 1 == layers_.size();
    for (std::size_t i = 0; i < pre[l].size(); ++i)
      acts[l + 1][i] = is_output ? pre[l][i] : activate(cfg_.activation, pre[l][i]);
  }
}

std::vector<double> Mlp::forward(std::span<const double> x) const {
  std::vector<std::vector<double>> acts, pre;
  forward_cached(x, acts, pre);
  return acts.back();
}

std::vector<std::vector<double>> Mlp::forward_layers(std::span<const double> x) const {
  std::vector<std::vector<double>> acts, pre;
  forward_cached(x, acts, pre);
  return acts;
}

std::vector<double> Mlp::forward_from_layer(std::size_t layer,
                                            std::span<const double> activation) const {
  assert(layer <= layers_.size() && activation.size() == layer_sizes_[layer]);
  std::vector<double> current(activation.begin(), activation.end());
  for (std::size_t l = layer; l < layers_.size(); ++l) {
    auto pre = layers_[l].w.matvec(current);
    for (std::size_t i = 0; i < pre.size(); ++i) pre[i] += layers_[l].b[i];
    const bool is_output = l + 1 == layers_.size();
    current.resize(pre.size());
    for (std::size_t i = 0; i < pre.size(); ++i)
      current[i] = is_output ? pre[i] : activate(cfg_.activation, pre[i]);
  }
  return current;
}

void Mlp::adam_step(Layer& layer, const Matrix& gw, std::span<const double> gb,
                    std::size_t t) {
  constexpr double kBeta1 = 0.9, kBeta2 = 0.999, kEps = 1e-8;
  const double bc1 = 1.0 - std::pow(kBeta1, static_cast<double>(t));
  const double bc2 = 1.0 - std::pow(kBeta2, static_cast<double>(t));
  auto wflat = layer.w.flat();
  auto gwflat = gw.flat();
  auto mwflat = layer.mw.flat();
  auto vwflat = layer.vw.flat();
  for (std::size_t i = 0; i < wflat.size(); ++i) {
    const double g = gwflat[i] + cfg_.l2 * wflat[i];
    mwflat[i] = kBeta1 * mwflat[i] + (1.0 - kBeta1) * g;
    vwflat[i] = kBeta2 * vwflat[i] + (1.0 - kBeta2) * g * g;
    wflat[i] -= cfg_.learning_rate * (mwflat[i] / bc1) / (std::sqrt(vwflat[i] / bc2) + kEps);
  }
  for (std::size_t i = 0; i < layer.b.size(); ++i) {
    const double g = gb[i];
    layer.mb[i] = kBeta1 * layer.mb[i] + (1.0 - kBeta1) * g;
    layer.vb[i] = kBeta2 * layer.vb[i] + (1.0 - kBeta2) * g * g;
    layer.b[i] -= cfg_.learning_rate * (layer.mb[i] / bc1) / (std::sqrt(layer.vb[i] / bc2) + kEps);
  }
}

void Mlp::train(const Matrix& x, const Matrix& targets, bool softmax_ce) {
  assert(x.rows() == targets.rows() && x.rows() > 0);
  assert(x.cols() == num_inputs() && targets.cols() == num_outputs());
  const std::size_t n = x.rows();
  lore::Rng rng(cfg_.seed ^ 0xabcdef12345ULL);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  std::vector<std::vector<double>> acts, pre;
  std::vector<std::vector<double>> delta(layers_.size());
  std::vector<Matrix> gw(layers_.size());
  std::vector<std::vector<double>> gb(layers_.size());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    gw[l] = Matrix(layers_[l].w.rows(), layers_[l].w.cols());
    gb[l].assign(layers_[l].b.size(), 0.0);
  }

  std::size_t adam_t = 0;
  for (std::size_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t start = 0; start < n; start += cfg_.batch_size) {
      const std::size_t end = std::min(n, start + cfg_.batch_size);
      const double inv_batch = 1.0 / static_cast<double>(end - start);
      for (std::size_t l = 0; l < layers_.size(); ++l) {
        gw[l] *= 0.0;
        std::fill(gb[l].begin(), gb[l].end(), 0.0);
      }
      for (std::size_t bi = start; bi < end; ++bi) {
        const auto row = order[bi];
        forward_cached(x.row(row), acts, pre);

        // Output delta. For softmax-CE: softmax(out) - onehot; for MSE:
        // out - target. Both are plain differences thanks to matching
        // loss/link pairs.
        auto& out_delta = delta.back();
        out_delta.assign(acts.back().begin(), acts.back().end());
        if (softmax_ce) {
          const double hi = *std::max_element(out_delta.begin(), out_delta.end());
          double sum = 0.0;
          for (auto& v : out_delta) {
            v = std::exp(v - hi);
            sum += v;
          }
          for (auto& v : out_delta) v /= sum;
        }
        const auto target = targets.row(row);
        for (std::size_t i = 0; i < out_delta.size(); ++i) out_delta[i] -= target[i];

        // Backpropagate.
        for (std::size_t l = layers_.size(); l-- > 0;) {
          const auto& d = delta[l];
          // Accumulate gradients.
          for (std::size_t r = 0; r < layers_[l].w.rows(); ++r) {
            axpy(gw[l].row(r), d[r], acts[l]);
            gb[l][r] += d[r];
          }
          if (l == 0) break;
          auto& prev = delta[l - 1];
          prev.assign(layer_sizes_[l], 0.0);
          for (std::size_t r = 0; r < layers_[l].w.rows(); ++r) {
            const auto wrow = layers_[l].w.row(r);
            for (std::size_t c = 0; c < wrow.size(); ++c) prev[c] += wrow[c] * d[r];
          }
          for (std::size_t c = 0; c < prev.size(); ++c)
            prev[c] *= activate_grad(cfg_.activation, pre[l - 1][c], acts[l][c]);
        }
      }
      for (std::size_t l = 0; l < layers_.size(); ++l) {
        gw[l] *= inv_batch;
        for (auto& g : gb[l]) g *= inv_batch;
      }
      ++adam_t;
      for (std::size_t l = 0; l < layers_.size(); ++l) adam_step(layers_[l], gw[l], gb[l], adam_t);
    }
  }
}

std::size_t Mlp::parameter_count() const {
  std::size_t p = 0;
  for (const auto& layer : layers_) p += layer.w.rows() * layer.w.cols() + layer.b.size();
  return p;
}

void MlpRegressor::fit(const Matrix& x, std::span<const double> y) {
  assert(x.rows() == y.size());
  net_.init(x.cols(), 1, cfg_);
  Matrix targets(y.size(), 1);
  for (std::size_t i = 0; i < y.size(); ++i) targets(i, 0) = y[i];
  net_.train(x, targets, /*softmax_ce=*/false);
}

double MlpRegressor::predict(std::span<const double> x) const { return net_.forward(x)[0]; }

void MlpClassifier::fit(const Matrix& x, std::span<const int> y) {
  assert(x.rows() == y.size());
  num_classes_ = 0;
  for (int label : y) num_classes_ = std::max<std::size_t>(num_classes_, static_cast<std::size_t>(label) + 1);
  num_classes_ = std::max<std::size_t>(num_classes_, 2);
  net_.init(x.cols(), num_classes_, cfg_);
  Matrix targets(y.size(), num_classes_);
  for (std::size_t i = 0; i < y.size(); ++i) targets(i, static_cast<std::size_t>(y[i])) = 1.0;
  net_.train(x, targets, /*softmax_ce=*/true);
}

std::vector<double> MlpClassifier::predict_proba(std::span<const double> x) const {
  auto out = net_.forward(x);
  const double hi = *std::max_element(out.begin(), out.end());
  double sum = 0.0;
  for (auto& v : out) {
    v = std::exp(v - hi);
    sum += v;
  }
  for (auto& v : out) v /= sum;
  return out;
}

int MlpClassifier::predict(std::span<const double> x) const {
  const auto p = predict_proba(x);
  return static_cast<int>(std::max_element(p.begin(), p.end()) - p.begin());
}

void MlpVectorRegressor::fit(const Matrix& x, const Matrix& y) {
  assert(x.rows() == y.rows());
  net_.init(x.cols(), y.cols(), cfg_);
  net_.train(x, y, /*softmax_ce=*/false);
}

std::vector<double> MlpVectorRegressor::predict(std::span<const double> x) const {
  return net_.forward(x);
}

}  // namespace lore::ml
