#include "src/ml/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace lore::ml {

double accuracy(std::span<const int> truth, std::span<const int> pred) {
  assert(truth.size() == pred.size());
  if (truth.empty()) return 0.0;
  std::size_t hit = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) hit += truth[i] == pred[i];
  return static_cast<double>(hit) / static_cast<double>(truth.size());
}

double BinaryConfusion::precision() const {
  return tp + fp ? static_cast<double>(tp) / static_cast<double>(tp + fp) : 0.0;
}

double BinaryConfusion::recall() const {
  return tp + fn ? static_cast<double>(tp) / static_cast<double>(tp + fn) : 0.0;
}

double BinaryConfusion::f1() const {
  const double p = precision(), r = recall();
  return p + r > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
}

double BinaryConfusion::false_positive_rate() const {
  return fp + tn ? static_cast<double>(fp) / static_cast<double>(fp + tn) : 0.0;
}

BinaryConfusion binary_confusion(std::span<const int> truth, std::span<const int> pred,
                                 int positive) {
  assert(truth.size() == pred.size());
  BinaryConfusion c;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const bool t = truth[i] == positive;
    const bool p = pred[i] == positive;
    if (t && p) ++c.tp;
    else if (!t && p) ++c.fp;
    else if (t && !p) ++c.fn;
    else ++c.tn;
  }
  return c;
}

std::vector<std::vector<std::size_t>> confusion_matrix(std::span<const int> truth,
                                                       std::span<const int> pred,
                                                       std::size_t num_classes) {
  assert(truth.size() == pred.size());
  std::vector<std::vector<std::size_t>> m(num_classes, std::vector<std::size_t>(num_classes, 0));
  for (std::size_t i = 0; i < truth.size(); ++i) {
    assert(truth[i] >= 0 && static_cast<std::size_t>(truth[i]) < num_classes);
    assert(pred[i] >= 0 && static_cast<std::size_t>(pred[i]) < num_classes);
    ++m[static_cast<std::size_t>(truth[i])][static_cast<std::size_t>(pred[i])];
  }
  return m;
}

double mse(std::span<const double> truth, std::span<const double> pred) {
  assert(truth.size() == pred.size());
  if (truth.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double d = truth[i] - pred[i];
    s += d * d;
  }
  return s / static_cast<double>(truth.size());
}

double mae(std::span<const double> truth, std::span<const double> pred) {
  assert(truth.size() == pred.size());
  if (truth.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) s += std::abs(truth[i] - pred[i]);
  return s / static_cast<double>(truth.size());
}

double rmse(std::span<const double> truth, std::span<const double> pred) {
  return std::sqrt(mse(truth, pred));
}

double r2_score(std::span<const double> truth, std::span<const double> pred) {
  assert(truth.size() == pred.size());
  if (truth.size() < 2) return 0.0;
  double mean = 0.0;
  for (double t : truth) mean += t;
  mean /= static_cast<double>(truth.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ss_res += (truth[i] - pred[i]) * (truth[i] - pred[i]);
    ss_tot += (truth[i] - mean) * (truth[i] - mean);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double roc_auc(std::span<const int> truth, std::span<const double> score, int positive) {
  assert(truth.size() == score.size());
  // Rank-sum (Mann-Whitney) formulation with midranks for ties.
  std::vector<std::size_t> order(truth.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return score[a] < score[b]; });
  std::vector<double> rank(truth.size());
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && score[order[j + 1]] == score[order[i]]) ++j;
    const double mid = 0.5 * static_cast<double>(i + j) + 1.0;
    for (std::size_t k = i; k <= j; ++k) rank[order[k]] = mid;
    i = j + 1;
  }
  double pos_rank_sum = 0.0;
  std::size_t n_pos = 0;
  for (std::size_t k = 0; k < truth.size(); ++k) {
    if (truth[k] == positive) {
      pos_rank_sum += rank[k];
      ++n_pos;
    }
  }
  const std::size_t n_neg = truth.size() - n_pos;
  if (n_pos == 0 || n_neg == 0) return 0.5;
  const double u = pos_rank_sum - static_cast<double>(n_pos) * (static_cast<double>(n_pos) + 1.0) / 2.0;
  return u / (static_cast<double>(n_pos) * static_cast<double>(n_neg));
}

}  // namespace lore::ml
