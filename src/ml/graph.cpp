#include "src/ml/graph.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lore::ml {

std::size_t FeatureGraph::add_node(std::span<const double> features) {
  assert(features.size() == feature_dim_);
  assert(!finalized_);
  features_.push_row(features);
  return features_.rows() - 1;
}

void FeatureGraph::add_edge(std::size_t from, std::size_t to, int edge_type) {
  assert(from < num_nodes() && to < num_nodes());
  assert(!finalized_);
  edge_from_.push_back(from);
  edge_to_.push_back(to);
  edge_type_.push_back(edge_type);
  num_edge_types_ = std::max(num_edge_types_, edge_type + 1);
}

void FeatureGraph::finalize() {
  in_adj_.assign(num_nodes(), {});
  for (std::size_t e = 0; e < edge_to_.size(); ++e)
    in_adj_[edge_to_[e]].emplace_back(edge_from_[e], edge_type_[e]);
  finalized_ = true;
}

std::span<const std::pair<std::size_t, int>> FeatureGraph::in_neighbours(
    std::size_t node) const {
  assert(finalized_ && node < num_nodes());
  return in_adj_[node];
}

Matrix GraphAttentionEmbedder::embed(const FeatureGraph& g) const {
  const std::size_t n = g.num_nodes();
  const std::size_t d = g.feature_dim();
  Matrix out(n, embedding_dim(g));

  // Round 0: the node's own features.
  Matrix current(n, d);
  for (std::size_t v = 0; v < n; ++v) {
    const auto f = g.node_features(v);
    for (std::size_t c = 0; c < d; ++c) {
      current(v, c) = f[c];
      out(v, c) = f[c];
    }
  }

  Matrix next(n, d);
  for (std::size_t hop = 1; hop <= cfg_.hops; ++hop) {
    for (std::size_t v = 0; v < n; ++v) {
      const auto nbrs = g.in_neighbours(v);
      auto dst = next.row(v);
      std::fill(dst.begin(), dst.end(), 0.0);
      // Scaled dot-product attention between the node's current state and
      // each in-neighbour's, with a self-loop.
      const auto self = current.row(v);
      const double scale = 1.0 / (cfg_.temperature * std::sqrt(static_cast<double>(d)));
      std::vector<double> logits;
      logits.reserve(nbrs.size() + 1);
      logits.push_back(cfg_.self_weight * dot(self, self) * scale);
      for (const auto& [src, type] : nbrs) {
        // Edge type shifts the attention logit so different relationship
        // kinds (data dep, control dep, ...) attend differently.
        logits.push_back(dot(self, current.row(src)) * scale +
                         0.1 * static_cast<double>(type));
      }
      const double hi = *std::max_element(logits.begin(), logits.end());
      double sum = 0.0;
      for (auto& l : logits) {
        l = std::exp(l - hi);
        sum += l;
      }
      axpy(dst, logits[0] / sum, self);
      for (std::size_t i = 0; i < nbrs.size(); ++i)
        axpy(dst, logits[i + 1] / sum, current.row(nbrs[i].first));
    }
    for (std::size_t v = 0; v < n; ++v) {
      const auto src = next.row(v);
      for (std::size_t c = 0; c < d; ++c) {
        current(v, c) = src[c];
        out(v, hop * d + c) = src[c];
      }
    }
  }
  return out;
}

void GraphNodeClassifier::fit(const std::vector<const FeatureGraph*>& graphs,
                              const std::vector<std::vector<int>>& labels) {
  assert(graphs.size() == labels.size() && !graphs.empty());
  Matrix x;
  std::vector<int> y;
  for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
    const auto emb = embedder_.embed(*graphs[gi]);
    assert(labels[gi].size() == graphs[gi]->num_nodes());
    for (std::size_t v = 0; v < emb.rows(); ++v) {
      if (labels[gi][v] < 0) continue;  // unlabeled node
      x.push_row(emb.row(v));
      y.push_back(labels[gi][v]);
    }
  }
  assert(x.rows() > 0);
  head_ = MlpClassifier(cfg_.head);
  head_.fit(x, y);
  fitted_ = true;
}

std::vector<int> GraphNodeClassifier::predict(const FeatureGraph& g) const {
  assert(fitted_);
  const auto emb = embedder_.embed(g);
  return head_.predict_batch(emb);
}

std::vector<std::vector<double>> GraphNodeClassifier::predict_proba(
    const FeatureGraph& g) const {
  assert(fitted_);
  const auto emb = embedder_.embed(g);
  std::vector<std::vector<double>> out;
  out.reserve(emb.rows());
  for (std::size_t v = 0; v < emb.rows(); ++v) out.push_back(head_.predict_proba(emb.row(v)));
  return out;
}

}  // namespace lore::ml
