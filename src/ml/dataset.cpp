#include "src/ml/dataset.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lore::ml {

void Dataset::add(std::span<const double> features_row, int label) {
  x.push_row(features_row);
  labels.push_back(label);
}

void Dataset::add(std::span<const double> features_row, double target) {
  x.push_row(features_row);
  targets.push_back(target);
}

void Dataset::add(std::span<const double> features_row, int label, double target) {
  x.push_row(features_row);
  labels.push_back(label);
  targets.push_back(target);
}

std::size_t Dataset::num_classes() const {
  int hi = -1;
  for (int l : labels) hi = std::max(hi, l);
  return static_cast<std::size_t>(hi + 1);
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out;
  out.x = x.gather_rows(indices);
  if (!labels.empty()) {
    out.labels.reserve(indices.size());
    for (auto i : indices) out.labels.push_back(labels[i]);
  }
  if (!targets.empty()) {
    out.targets.reserve(indices.size());
    for (auto i : indices) out.targets.push_back(targets[i]);
  }
  return out;
}

std::pair<Dataset, Dataset> train_test_split(const Dataset& d, double test_fraction,
                                             lore::Rng& rng) {
  assert(test_fraction > 0.0 && test_fraction < 1.0);
  std::vector<std::size_t> idx(d.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  rng.shuffle(idx);
  const auto n_test = std::max<std::size_t>(
      1, static_cast<std::size_t>(test_fraction * static_cast<double>(d.size())));
  std::span<const std::size_t> all(idx);
  return {d.subset(all.subspan(n_test)), d.subset(all.subspan(0, n_test))};
}

std::vector<std::vector<std::size_t>> kfold_indices(std::size_t n, std::size_t k,
                                                    lore::Rng& rng) {
  assert(k >= 2 && k <= n);
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  rng.shuffle(idx);
  std::vector<std::vector<std::size_t>> folds(k);
  for (std::size_t i = 0; i < n; ++i) folds[i % k].push_back(idx[i]);
  return folds;
}

void StandardScaler::fit(const Matrix& x) {
  assert(x.rows() > 0);
  mean_.assign(x.cols(), 0.0);
  inv_std_.assign(x.cols(), 1.0);
  for (std::size_t r = 0; r < x.rows(); ++r)
    for (std::size_t c = 0; c < x.cols(); ++c) mean_[c] += x(r, c);
  for (auto& m : mean_) m /= static_cast<double>(x.rows());
  std::vector<double> var(x.cols(), 0.0);
  for (std::size_t r = 0; r < x.rows(); ++r)
    for (std::size_t c = 0; c < x.cols(); ++c) {
      const double d = x(r, c) - mean_[c];
      var[c] += d * d;
    }
  for (std::size_t c = 0; c < x.cols(); ++c) {
    const double sd = std::sqrt(var[c] / static_cast<double>(x.rows()));
    inv_std_[c] = sd > 1e-12 ? 1.0 / sd : 1.0;  // constant feature: leave centered
  }
}

Matrix StandardScaler::transform(const Matrix& x) const {
  assert(fitted() && x.cols() == mean_.size());
  Matrix out = x;
  for (std::size_t r = 0; r < out.rows(); ++r) transform_inplace(out.row(r));
  return out;
}

void StandardScaler::transform_inplace(std::span<double> row) const {
  assert(row.size() == mean_.size());
  for (std::size_t c = 0; c < row.size(); ++c) row[c] = (row[c] - mean_[c]) * inv_std_[c];
}

Matrix StandardScaler::fit_transform(const Matrix& x) {
  fit(x);
  return transform(x);
}

void MinMaxScaler::fit(const Matrix& x) {
  assert(x.rows() > 0);
  lo_.assign(x.cols(), 0.0);
  inv_range_.assign(x.cols(), 1.0);
  std::vector<double> hi(x.cols());
  for (std::size_t c = 0; c < x.cols(); ++c) {
    lo_[c] = hi[c] = x(0, c);
  }
  for (std::size_t r = 1; r < x.rows(); ++r)
    for (std::size_t c = 0; c < x.cols(); ++c) {
      lo_[c] = std::min(lo_[c], x(r, c));
      hi[c] = std::max(hi[c], x(r, c));
    }
  for (std::size_t c = 0; c < x.cols(); ++c) {
    const double range = hi[c] - lo_[c];
    inv_range_[c] = range > 1e-12 ? 1.0 / range : 1.0;
  }
}

Matrix MinMaxScaler::transform(const Matrix& x) const {
  assert(fitted() && x.cols() == lo_.size());
  Matrix out = x;
  for (std::size_t r = 0; r < out.rows(); ++r) transform_inplace(out.row(r));
  return out;
}

void MinMaxScaler::transform_inplace(std::span<double> row) const {
  assert(row.size() == lo_.size());
  for (std::size_t c = 0; c < row.size(); ++c) row[c] = (row[c] - lo_[c]) * inv_range_[c];
}

}  // namespace lore::ml
