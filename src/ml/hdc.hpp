// Brain-inspired hyperdimensional computing (Sec. II). Bipolar hypervectors
// with i.i.d. components give inherent robustness against component errors
// (the paper: ~40 % error rate costs only ~0.5 % accuracy), and HDC models
// can mimic confidential physics-based aging models ([18]) because the
// hypervector representation abstracts the underlying parameters.
//
// Representation: the sign of each component is bit-packed into uint64_t
// words (bit set = -1, clear = +1; component i lives in word i/64, bit i%64;
// tail bits past `dim` are kept zero). Bind is then a word-parallel XOR,
// Hamming/similarity is XOR + popcount, permute is a word-level rotate with
// carry, and bundling ripples sign words into carry-save bit-plane counters,
// unpacking to per-bit integer sums in word blocks only when thresholding —
// a ~64× cut in memory traffic over the one-int8-per-component layout. All
// randomness (random(), with_component_errors(), threshold tie-breaks) draws
// from the Rng once per component in index order, so packed results are
// bit-identical to the scalar reference in `src/ml/hdc_ref` for the same
// seed. The scalar path is retained behind `LORE_HDC_SCALAR` (env var, or
// the -DLORE_HDC_SCALAR=ON build default) for differential testing.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/kernels.hpp"
#include "src/common/rng.hpp"

namespace lore::ml {

/// True when Hypervector/Accumulator operations route through the scalar
/// reference kernels (`hdcref`) instead of the word-parallel path. Initial
/// value comes from the LORE_HDC_SCALAR environment variable (unset or "0" =
/// packed) or the LORE_HDC_SCALAR build option; results are bit-identical in
/// both modes, only the speed differs.
bool hdc_scalar_reference_mode();
void set_hdc_scalar_reference_mode(bool on);

/// Bipolar hypervector: components in {-1, +1}, sign-bit-packed into uint64
/// words (see header comment for the layout).
class Hypervector {
 public:
  /// Proxy for `hv[i]` assignment: packed storage cannot hand out an int8
  /// lvalue, so writes go through set(). Reads convert to the ±1 component.
  class ComponentRef {
   public:
    operator std::int8_t() const { return hv_->get(i_); }
    ComponentRef& operator=(std::int8_t v) {
      hv_->set(i_, v);
      return *this;
    }
    ComponentRef& operator=(const ComponentRef& o) {
      hv_->set(i_, static_cast<std::int8_t>(o));
      return *this;
    }

   private:
    friend class Hypervector;
    ComponentRef(Hypervector* hv, std::size_t i) : hv_(hv), i_(i) {}
    Hypervector* hv_;
    std::size_t i_;
  };

  Hypervector() = default;
  /// All components +1 (all sign bits clear).
  explicit Hypervector(std::size_t dim)
      : dim_(dim), words_(kernels::word_count(dim), 0) {}

  static Hypervector random(std::size_t dim, lore::Rng& rng);
  /// Pack an explicit ±1 component vector (negative -> sign bit set).
  static Hypervector pack(std::span<const std::int8_t> components);

  std::size_t dim() const { return dim_; }
  std::int8_t operator[](std::size_t i) const { return get(i); }
  ComponentRef operator[](std::size_t i) { return ComponentRef(this, i); }
  std::int8_t get(std::size_t i) const {
    return (words_[i / kernels::kWordBits] >> (i % kernels::kWordBits)) & 1 ? -1 : 1;
  }
  void set(std::size_t i, std::int8_t value) {
    const std::uint64_t mask = 1ULL << (i % kernels::kWordBits);
    if (value < 0) words_[i / kernels::kWordBits] |= mask;
    else words_[i / kernels::kWordBits] &= ~mask;
  }

  /// Elementwise multiply (binding). Self-inverse: a.bind(b).bind(b) == a.
  Hypervector bind(const Hypervector& other) const;
  /// Cyclic rotation by k (sequence/position encoding).
  Hypervector permute(std::size_t k) const;
  /// Cosine similarity in [-1, 1] (equals normalized Hamming agreement).
  double similarity(const Hypervector& other) const;
  /// Hamming distance fraction in [0, 1].
  double hamming(const Hypervector& other) const;
  /// Flip each component independently with probability p (hardware error
  /// injection for the robustness experiment).
  Hypervector with_component_errors(double p, lore::Rng& rng) const;

  /// Unpack to one int8 component per entry (the scalar reference layout).
  std::vector<std::int8_t> unpack() const;
  /// Raw packed words (tail bits past dim() are zero).
  std::span<const std::uint64_t> words() const { return words_; }

  bool operator==(const Hypervector& other) const {
    return dim_ == other.dim_ && words_ == other.words_;
  }

 private:
  std::size_t dim_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Integer accumulator for bundling many hypervectors then thresholding.
///
/// Packed-mode adds are carry-save: per weight bit, the sign words ripple
/// into a stack of bit-plane counters (one XOR + AND pass per live plane —
/// amortized O(dim/64) words per add instead of `dim` integer adds). The
/// exact per-component int32 sums are materialized lazily from
///   sum[i] = Σw − 2·(pos_planes[i] − neg_planes[i]) (+ scalar-mode adds),
/// so `sums()`/`to_hypervector()` observe exactly the integers the original
/// int8 loop would have produced. Not safe for concurrent use from multiple
/// threads (lazy cache); every current call site is thread-local.
class Accumulator {
 public:
  explicit Accumulator(std::size_t dim) : dim_(dim), scalar_sums_(dim, 0) {}

  void add(const Hypervector& hv);
  void add_weighted(const Hypervector& hv, int weight);
  std::size_t count() const { return count_; }
  /// Exact per-component sums (materialized from the bit planes on demand;
  /// the span is invalidated by the next add).
  std::span<const std::int32_t> sums() const;
  /// Majority threshold -> bipolar hypervector. Ties broken by rng if given.
  Hypervector to_hypervector(lore::Rng* rng = nullptr) const;

 private:
  void materialize() const;

  std::size_t dim_ = 0;
  std::size_t count_ = 0;
  /// Σ weight over packed-mode adds (sums decompose against this total).
  std::int64_t packed_weight_total_ = 0;
  /// Bit-plane counters of sign bits: pos_ for positive weights, neg_ for
  /// magnitudes of negative weights.
  std::vector<std::vector<std::uint64_t>> pos_planes_, neg_planes_;
  std::vector<std::uint64_t> carry_scratch_;
  /// Scalar-reference-mode adds bypass the planes and land here directly.
  std::vector<std::int32_t> scalar_sums_;
  mutable std::vector<std::int32_t> sums_cache_;
  mutable bool dirty_ = true;
};

/// Item memory: stable random hypervector per symbol id.
class ItemMemory {
 public:
  ItemMemory(std::size_t dim, std::uint64_t seed) : dim_(dim), rng_(seed) {}

  const Hypervector& get(std::uint64_t symbol);
  std::size_t dim() const { return dim_; }

 private:
  std::size_t dim_;
  lore::Rng rng_;
  std::unordered_map<std::uint64_t, Hypervector> items_;
};

/// Continuous-value encoder: `levels` hypervectors where adjacent levels are
/// highly correlated (incremental flipping), so nearby values map to nearby
/// hypervectors.
class LevelEncoder {
 public:
  LevelEncoder(std::size_t dim, std::size_t levels, double lo, double hi, std::uint64_t seed);

  const Hypervector& encode(double value) const;
  std::size_t level_of(double value) const;
  std::size_t levels() const { return level_hvs_.size(); }
  double level_center(std::size_t level) const;

 private:
  double lo_, hi_;
  std::vector<Hypervector> level_hvs_;
};

struct RecordEncoderConfig {
  std::size_t dim = 4096;
  std::size_t levels = 32;
  std::uint64_t seed = 37;
};

/// Record-based encoder for feature vectors: bind(feature-id HV, level HV of
/// value), bundle over features.
class RecordEncoder {
 public:
  using Config = RecordEncoderConfig;

  /// Feature ranges must be known up front ([lo, hi] per feature).
  RecordEncoder(std::vector<std::pair<double, double>> ranges, Config cfg = {});

  Hypervector encode(std::span<const double> features) const;
  std::size_t dim() const { return cfg_.dim; }

 private:
  Config cfg_;
  std::vector<LevelEncoder> per_feature_;
  std::vector<Hypervector> feature_ids_;
};

struct HdcClassifierConfig {
  std::size_t retrain_passes = 3;
  std::uint64_t seed = 41;
  /// Worker threads for fit()'s encode/retrain passes and predict_batch()
  /// (0 = all cores, 1 = serial). Results are bit-identical for any value.
  unsigned threads = 0;
};

/// Prototype-per-class HDC classifier with optional retraining passes.
class HdcClassifier {
 public:
  using Config = HdcClassifierConfig;

  HdcClassifier(const RecordEncoder* encoder, Config cfg = {})
      : encoder_(encoder), cfg_(cfg) {}

  void fit(const std::vector<std::vector<double>>& x, std::span<const int> y);
  /// Predict; if error_rate > 0 the encoded query suffers that fraction of
  /// component flips (needs rng).
  int predict(std::span<const double> x, double error_rate = 0.0,
              lore::Rng* rng = nullptr) const;
  int predict_encoded(const Hypervector& query) const;
  /// Batch predict across `cfg.threads` workers. When error_rate > 0, query
  /// i draws its flips from trial_seed(noise_seed, i), so the output is a
  /// pure function of (queries, noise_seed) — thread-count-invariant.
  std::vector<int> predict_batch(const std::vector<std::vector<double>>& x,
                                 double error_rate = 0.0,
                                 std::uint64_t noise_seed = 0) const;
  std::size_t num_classes() const { return prototypes_.size(); }

 private:
  const RecordEncoder* encoder_;
  Config cfg_;
  std::vector<Hypervector> prototypes_;
};

struct HdcRegressorConfig {
  std::size_t target_levels = 24;
  /// Softmax temperature over similarities when mixing level centers.
  double temperature = 0.05;
  std::uint64_t seed = 43;
  /// Worker threads for fit() encoding and predict_batch() (0 = all cores).
  unsigned threads = 0;
};

/// HDC regressor: discretizes the target into levels, learns a prototype per
/// level, predicts the similarity-weighted mean of level centers. Used to
/// mimic the "confidential" aging model (E4).
class HdcRegressor {
 public:
  using Config = HdcRegressorConfig;

  HdcRegressor(const RecordEncoder* encoder, Config cfg = {})
      : encoder_(encoder), cfg_(cfg) {}

  void fit(const std::vector<std::vector<double>>& x, std::span<const double> y);
  double predict(std::span<const double> x, double error_rate = 0.0,
                 lore::Rng* rng = nullptr) const;
  /// Batch predict; same trial-seeded noise contract as
  /// HdcClassifier::predict_batch.
  std::vector<double> predict_batch(const std::vector<std::vector<double>>& x,
                                    double error_rate = 0.0,
                                    std::uint64_t noise_seed = 0) const;

 private:
  const RecordEncoder* encoder_;
  Config cfg_;
  double y_lo_ = 0.0, y_hi_ = 1.0;
  std::vector<Hypervector> level_prototypes_;
  std::vector<bool> level_present_;
};

}  // namespace lore::ml
