// Brain-inspired hyperdimensional computing (Sec. II). Bipolar hypervectors
// with i.i.d. components give inherent robustness against component errors
// (the paper: ~40 % error rate costs only ~0.5 % accuracy), and HDC models
// can mimic confidential physics-based aging models ([18]) because the
// hypervector representation abstracts the underlying parameters.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/rng.hpp"

namespace lore::ml {

/// Bipolar hypervector: components in {-1, +1} stored as int8.
class Hypervector {
 public:
  Hypervector() = default;
  explicit Hypervector(std::size_t dim) : v_(dim, 1) {}

  static Hypervector random(std::size_t dim, lore::Rng& rng);

  std::size_t dim() const { return v_.size(); }
  std::int8_t operator[](std::size_t i) const { return v_[i]; }
  std::int8_t& operator[](std::size_t i) { return v_[i]; }

  /// Elementwise multiply (binding). Self-inverse: a.bind(b).bind(b) == a.
  Hypervector bind(const Hypervector& other) const;
  /// Cyclic rotation by k (sequence/position encoding).
  Hypervector permute(std::size_t k) const;
  /// Cosine similarity in [-1, 1] (equals normalized Hamming agreement).
  double similarity(const Hypervector& other) const;
  /// Hamming distance fraction in [0, 1].
  double hamming(const Hypervector& other) const;
  /// Flip each component independently with probability p (hardware error
  /// injection for the robustness experiment).
  Hypervector with_component_errors(double p, lore::Rng& rng) const;

 private:
  std::vector<std::int8_t> v_;
};

/// Integer accumulator for bundling many hypervectors then thresholding.
class Accumulator {
 public:
  explicit Accumulator(std::size_t dim) : sums_(dim, 0) {}

  void add(const Hypervector& hv);
  void add_weighted(const Hypervector& hv, int weight);
  std::size_t count() const { return count_; }
  /// Majority threshold -> bipolar hypervector. Ties broken by rng if given.
  Hypervector to_hypervector(lore::Rng* rng = nullptr) const;

 private:
  std::vector<std::int32_t> sums_;
  std::size_t count_ = 0;
};

/// Item memory: stable random hypervector per symbol id.
class ItemMemory {
 public:
  ItemMemory(std::size_t dim, std::uint64_t seed) : dim_(dim), rng_(seed) {}

  const Hypervector& get(std::uint64_t symbol);
  std::size_t dim() const { return dim_; }

 private:
  std::size_t dim_;
  lore::Rng rng_;
  std::unordered_map<std::uint64_t, Hypervector> items_;
};

/// Continuous-value encoder: `levels` hypervectors where adjacent levels are
/// highly correlated (incremental flipping), so nearby values map to nearby
/// hypervectors.
class LevelEncoder {
 public:
  LevelEncoder(std::size_t dim, std::size_t levels, double lo, double hi, std::uint64_t seed);

  const Hypervector& encode(double value) const;
  std::size_t level_of(double value) const;
  std::size_t levels() const { return level_hvs_.size(); }
  double level_center(std::size_t level) const;

 private:
  double lo_, hi_;
  std::vector<Hypervector> level_hvs_;
};

struct RecordEncoderConfig {
  std::size_t dim = 4096;
  std::size_t levels = 32;
  std::uint64_t seed = 37;
};

/// Record-based encoder for feature vectors: bind(feature-id HV, level HV of
/// value), bundle over features.
class RecordEncoder {
 public:
  using Config = RecordEncoderConfig;

  /// Feature ranges must be known up front ([lo, hi] per feature).
  RecordEncoder(std::vector<std::pair<double, double>> ranges, Config cfg = {});

  Hypervector encode(std::span<const double> features) const;
  std::size_t dim() const { return cfg_.dim; }

 private:
  Config cfg_;
  std::vector<LevelEncoder> per_feature_;
  std::vector<Hypervector> feature_ids_;
};

struct HdcClassifierConfig {
  std::size_t retrain_passes = 3;
  std::uint64_t seed = 41;
};

/// Prototype-per-class HDC classifier with optional retraining passes.
class HdcClassifier {
 public:
  using Config = HdcClassifierConfig;

  HdcClassifier(const RecordEncoder* encoder, Config cfg = {})
      : encoder_(encoder), cfg_(cfg) {}

  void fit(const std::vector<std::vector<double>>& x, std::span<const int> y);
  /// Predict; if error_rate > 0 the encoded query suffers that fraction of
  /// component flips (needs rng).
  int predict(std::span<const double> x, double error_rate = 0.0,
              lore::Rng* rng = nullptr) const;
  int predict_encoded(const Hypervector& query) const;
  std::size_t num_classes() const { return prototypes_.size(); }

 private:
  const RecordEncoder* encoder_;
  Config cfg_;
  std::vector<Hypervector> prototypes_;
};

struct HdcRegressorConfig {
  std::size_t target_levels = 24;
  /// Softmax temperature over similarities when mixing level centers.
  double temperature = 0.05;
  std::uint64_t seed = 43;
};

/// HDC regressor: discretizes the target into levels, learns a prototype per
/// level, predicts the similarity-weighted mean of level centers. Used to
/// mimic the "confidential" aging model (E4).
class HdcRegressor {
 public:
  using Config = HdcRegressorConfig;

  HdcRegressor(const RecordEncoder* encoder, Config cfg = {})
      : encoder_(encoder), cfg_(cfg) {}

  void fit(const std::vector<std::vector<double>>& x, std::span<const double> y);
  double predict(std::span<const double> x, double error_rate = 0.0,
                 lore::Rng* rng = nullptr) const;

 private:
  const RecordEncoder* encoder_;
  Config cfg_;
  double y_lo_ = 0.0, y_hi_ = 1.0;
  std::vector<Hypervector> level_prototypes_;
  std::vector<bool> level_present_;
};

}  // namespace lore::ml
