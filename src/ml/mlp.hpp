// Multi-layer perceptron with backpropagation and Adam. MLPs appear all over
// the paper: SER estimation ([43]), cross-layer SER model ([1]), core
// vulnerability factors ([2]), anomaly detectors ([30], WarningNet [32]), and
// the ML-based cell-library characterization ([9]) at the circuit level.
#pragma once

#include <span>
#include <vector>

#include "src/common/rng.hpp"
#include "src/ml/model.hpp"

namespace lore::ml {

enum class Activation { kRelu, kTanh, kSigmoid, kIdentity };

struct MlpConfig {
  std::vector<std::size_t> hidden = {16, 16};
  Activation activation = Activation::kRelu;
  double learning_rate = 1e-2;
  double l2 = 1e-5;
  std::size_t epochs = 200;
  std::size_t batch_size = 32;
  std::uint64_t seed = 23;
};

/// Raw network: hidden layers with a shared activation, linear output layer.
/// Loss is selected by the facades (MSE for regression, softmax cross-entropy
/// for classification).
class Mlp {
 public:
  using Config = MlpConfig;

  Mlp() = default;

  /// Build topology inputs -> hidden... -> outputs with random init.
  void init(std::size_t inputs, std::size_t outputs, const Config& cfg);

  /// Forward pass; returns raw (linear) outputs.
  std::vector<double> forward(std::span<const double> x) const;

  /// Forward pass exposing every layer's activation: result[0] is the input,
  /// result.back() the raw output. Used by symptom-based error detectors
  /// that watch intermediate activations ([30]).
  std::vector<std::vector<double>> forward_layers(std::span<const double> x) const;

  /// Resume the forward pass from a given layer activation (activation has
  /// the size of layer `layer`'s output; layer 0 = the input). Enables
  /// injecting activation faults between layers.
  std::vector<double> forward_from_layer(std::size_t layer,
                                         std::span<const double> activation) const;

  std::size_t num_layers() const { return layers_.size(); }
  /// Width of the activation entering layer `layer` (0 = input width).
  std::size_t layer_width(std::size_t layer) const { return layer_sizes_[layer]; }

  /// Trained weights of layer `layer` (out x in) — read access for deploying
  /// the network onto other substrates (e.g. memristor crossbars).
  const Matrix& layer_weights(std::size_t layer) const { return layers_[layer].w; }
  std::span<const double> layer_biases(std::size_t layer) const { return layers_[layer].b; }
  Activation activation() const { return cfg_.activation; }

  /// Train with targets being raw outputs (MSE) or one-hot rows (softmax-CE).
  void train(const Matrix& x, const Matrix& targets, bool softmax_ce);

  std::size_t num_inputs() const { return layer_sizes_.empty() ? 0 : layer_sizes_.front(); }
  std::size_t num_outputs() const { return layer_sizes_.empty() ? 0 : layer_sizes_.back(); }
  /// Trainable parameter count (weights + biases).
  std::size_t parameter_count() const;

 private:
  struct Layer {
    Matrix w;                 // out × in
    std::vector<double> b;    // out
    // Adam state.
    Matrix mw, vw;
    std::vector<double> mb, vb;
  };

  /// Forward keeping activations for backprop. acts[0] = input.
  void forward_cached(std::span<const double> x, std::vector<std::vector<double>>& acts,
                      std::vector<std::vector<double>>& pre) const;
  void adam_step(Layer& layer, const Matrix& gw, std::span<const double> gb, std::size_t t);

  Config cfg_;
  std::vector<std::size_t> layer_sizes_;
  std::vector<Layer> layers_;
};

class MlpRegressor final : public Regressor {
 public:
  explicit MlpRegressor(Mlp::Config cfg = {}) : cfg_(cfg) {}

  void fit(const Matrix& x, std::span<const double> y) override;
  double predict(std::span<const double> x) const override;
  std::string name() const override { return "mlp-reg"; }

  const Mlp& network() const { return net_; }

 private:
  Mlp::Config cfg_;
  Mlp net_;
};

class MlpClassifier final : public Classifier {
 public:
  explicit MlpClassifier(Mlp::Config cfg = {}) : cfg_(cfg) {}

  void fit(const Matrix& x, std::span<const int> y) override;
  int predict(std::span<const double> x) const override;
  std::vector<double> predict_proba(std::span<const double> x) const override;
  std::string name() const override { return "mlp"; }

  const Mlp& network() const { return net_; }

 private:
  Mlp::Config cfg_;
  Mlp net_;
  std::size_t num_classes_ = 0;
};

/// Multi-output regression wrapper (vector targets), used by the ML cell
/// characterizer which predicts whole delay tables at once.
class MlpVectorRegressor {
 public:
  explicit MlpVectorRegressor(Mlp::Config cfg = {}) : cfg_(cfg) {}

  void fit(const Matrix& x, const Matrix& y);
  std::vector<double> predict(std::span<const double> x) const;
  const Mlp& network() const { return net_; }

 private:
  Mlp::Config cfg_;
  Mlp net_;
};

}  // namespace lore::ml
