#include "src/ml/knn.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace lore::ml {

void KnnClassifier::fit(const Matrix& x, std::span<const int> y) {
  assert(x.rows() == y.size() && x.rows() > 0);
  train_x_ = x;
  train_y_.assign(y.begin(), y.end());
  num_classes_ = 0;
  for (int label : y) num_classes_ = std::max<std::size_t>(num_classes_, static_cast<std::size_t>(label) + 1);
}

std::vector<std::size_t> KnnClassifier::neighbours(std::span<const double> x) const {
  const std::size_t k = std::min(k_, train_x_.rows());
  std::vector<double> dist(train_x_.rows());
  for (std::size_t r = 0; r < train_x_.rows(); ++r) dist[r] = l2_distance(train_x_.row(r), x);
  std::vector<std::size_t> idx(train_x_.rows());
  std::iota(idx.begin(), idx.end(), 0);
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k), idx.end(),
                    [&](std::size_t a, std::size_t b) { return dist[a] < dist[b]; });
  idx.resize(k);
  return idx;
}

int KnnClassifier::predict(std::span<const double> x) const {
  const auto proba = predict_proba(x);
  return static_cast<int>(std::max_element(proba.begin(), proba.end()) - proba.begin());
}

std::vector<double> KnnClassifier::predict_proba(std::span<const double> x) const {
  assert(!train_y_.empty());
  std::vector<double> votes(num_classes_, 0.0);
  const auto nn = neighbours(x);
  for (auto i : nn) votes[static_cast<std::size_t>(train_y_[i])] += 1.0;
  for (auto& v : votes) v /= static_cast<double>(nn.size());
  return votes;
}

}  // namespace lore::ml
