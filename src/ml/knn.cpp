#include "src/ml/knn.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "src/common/arena.hpp"
#include "src/common/parallel.hpp"

namespace lore::ml {
namespace {

/// Queries per work chunk of the batched path; each query scans the whole
/// training panel, so chunks stay small to keep claims balanced.
constexpr std::size_t kQueryChunk = 16;

int argmax_first(std::span<const double> v) {
  return static_cast<int>(std::max_element(v.begin(), v.end()) - v.begin());
}

}  // namespace

void KnnClassifier::fit(const Matrix& x, std::span<const int> y) {
  assert(x.rows() == y.size() && x.rows() > 0);
  train_x_ = x;
  train_y_.assign(y.begin(), y.end());
  num_classes_ = 0;
  for (int label : y) num_classes_ = std::max<std::size_t>(num_classes_, static_cast<std::size_t>(label) + 1);
  panel_.assign(kernels::panel_size(x.rows(), x.cols()), 0.0);
  kernels::pack_row_panels(panel_, x.flat().data(), x.rows(), x.cols());
}

void KnnClassifier::neighbours_into(std::span<const double> x, KnnScratch& s) const {
  const std::size_t n = train_x_.rows();
  const std::size_t k = std::min(k_, n);
  s.dist.resize(n);
  for (std::size_t r = 0; r < n; ++r)
    s.dist[r] = kernels::l2_distance_sq(train_x_.row(r), x);
  s.idx.resize(n);
  std::iota(s.idx.begin(), s.idx.end(), 0u);
  // (distance, index) lexicographic: a unique total order, so the selected
  // set and its order match the batched top-k kernel exactly (squared
  // distance orders identically to the distance itself).
  std::partial_sort(s.idx.begin(), s.idx.begin() + static_cast<std::ptrdiff_t>(k),
                    s.idx.end(), [&](std::uint32_t a, std::uint32_t b) {
                      return s.dist[a] < s.dist[b] || (s.dist[a] == s.dist[b] && a < b);
                    });
  s.idx.resize(k);
}

int KnnClassifier::predict(std::span<const double> x) const {
  thread_local KnnScratch scratch;
  return predict(x, scratch);
}

std::vector<double> KnnClassifier::predict_proba(std::span<const double> x) const {
  thread_local KnnScratch scratch;
  return predict_proba(x, scratch);
}

int KnnClassifier::predict(std::span<const double> x, KnnScratch& scratch) const {
  assert(!train_y_.empty());
  neighbours_into(x, scratch);
  scratch.votes.assign(num_classes_, 0.0);
  for (auto i : scratch.idx) scratch.votes[static_cast<std::size_t>(train_y_[i])] += 1.0;
  for (auto& v : scratch.votes) v /= static_cast<double>(scratch.idx.size());
  return argmax_first(scratch.votes);
}

std::vector<double> KnnClassifier::predict_proba(std::span<const double> x,
                                                 KnnScratch& scratch) const {
  assert(!train_y_.empty());
  neighbours_into(x, scratch);
  std::vector<double> votes(num_classes_, 0.0);
  for (auto i : scratch.idx) votes[static_cast<std::size_t>(train_y_[i])] += 1.0;
  for (auto& v : votes) v /= static_cast<double>(scratch.idx.size());
  return votes;
}

void KnnClassifier::predict_batch(const double* x, std::size_t n, std::span<int> out,
                                  unsigned threads) const {
  assert(!train_y_.empty() && out.size() >= n);
  if (n == 0) return;
  const std::size_t rows = train_x_.rows(), cols = train_x_.cols();
  const std::size_t k = std::min(k_, rows);
  parallel_for_chunks(n, threads, kQueryChunk, [&](std::size_t begin, std::size_t end) {
    Arena& arena = Arena::for_thread();
    ArenaScope epoch(arena);
    const auto dist = arena.alloc<double>(kernels::kPanelLanes * rows);
    const auto idx = arena.alloc<std::uint32_t>(k);
    const auto votes = arena.alloc<double>(num_classes_);
    // Tiles of up to 4 queries share each pass over the training panel.
    for (std::size_t q = begin; q < end; q += kernels::kPanelLanes) {
      const std::size_t qn = std::min(kernels::kPanelLanes, end - q);
      kernels::l2_sq_blocked(dist, x + q * cols, qn, panel_, rows, cols);
      for (std::size_t qi = 0; qi < qn; ++qi) {
        kernels::top_k_select(dist.subspan(qi * rows, rows), idx);
        for (std::size_t c = 0; c < num_classes_; ++c) votes[c] = 0.0;
        for (auto i : idx) votes[static_cast<std::size_t>(train_y_[i])] += 1.0;
        for (auto& v : votes) v /= static_cast<double>(k);
        out[q + qi] = argmax_first(votes);
      }
    }
  });
}

void KnnClassifier::class_votes_batch(const double* x, std::size_t n, int cls,
                                      std::span<double> out, unsigned threads) const {
  assert(!train_y_.empty() && out.size() >= n);
  if (n == 0) return;
  const std::size_t rows = train_x_.rows(), cols = train_x_.cols();
  const std::size_t k = std::min(k_, rows);
  parallel_for_chunks(n, threads, kQueryChunk, [&](std::size_t begin, std::size_t end) {
    Arena& arena = Arena::for_thread();
    ArenaScope epoch(arena);
    const auto dist = arena.alloc<double>(kernels::kPanelLanes * rows);
    const auto idx = arena.alloc<std::uint32_t>(k);
    for (std::size_t q = begin; q < end; q += kernels::kPanelLanes) {
      const std::size_t qn = std::min(kernels::kPanelLanes, end - q);
      kernels::l2_sq_blocked(dist, x + q * cols, qn, panel_, rows, cols);
      for (std::size_t qi = 0; qi < qn; ++qi) {
        kernels::top_k_select(dist.subspan(qi * rows, rows), idx);
        double v = 0.0;
        for (auto i : idx) v += train_y_[i] == cls ? 1.0 : 0.0;
        out[q + qi] = v / static_cast<double>(k);
      }
    }
  });
}

std::vector<int> KnnClassifier::predict_batch(const Matrix& x) const {
  std::vector<int> out(x.rows());
  predict_batch(x.flat().data(), x.rows(), out);
  return out;
}

}  // namespace lore::ml
