#include "src/ml/naive_bayes.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lore::ml {

void GaussianNaiveBayes::fit(const Matrix& x, std::span<const int> y) {
  assert(x.rows() == y.size() && x.rows() > 0);
  std::size_t num_classes = 0;
  for (int label : y) num_classes = std::max<std::size_t>(num_classes, static_cast<std::size_t>(label) + 1);
  const std::size_t p = x.cols();

  std::vector<std::size_t> count(num_classes, 0);
  mean_.assign(num_classes, std::vector<double>(p, 0.0));
  var_.assign(num_classes, std::vector<double>(p, 0.0));
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto cls = static_cast<std::size_t>(y[r]);
    ++count[cls];
    for (std::size_t c = 0; c < p; ++c) mean_[cls][c] += x(r, c);
  }
  for (std::size_t k = 0; k < num_classes; ++k)
    if (count[k] > 0)
      for (auto& m : mean_[k]) m /= static_cast<double>(count[k]);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto cls = static_cast<std::size_t>(y[r]);
    for (std::size_t c = 0; c < p; ++c) {
      const double d = x(r, c) - mean_[cls][c];
      var_[cls][c] += d * d;
    }
  }
  // Variance smoothing proportional to the global feature scale keeps the
  // log-likelihood finite for constant features.
  double max_var = 1e-9;
  for (std::size_t k = 0; k < num_classes; ++k)
    for (std::size_t c = 0; c < p; ++c)
      if (count[k] > 0) max_var = std::max(max_var, var_[k][c] / static_cast<double>(count[k]));
  const double smoothing = 1e-9 * max_var + 1e-12;
  for (std::size_t k = 0; k < num_classes; ++k)
    for (std::size_t c = 0; c < p; ++c)
      var_[k][c] = (count[k] > 0 ? var_[k][c] / static_cast<double>(count[k]) : 1.0) + smoothing;

  log_prior_.assign(num_classes, -1e30);  // classes absent from training stay improbable
  for (std::size_t k = 0; k < num_classes; ++k)
    if (count[k] > 0)
      log_prior_[k] = std::log(static_cast<double>(count[k]) / static_cast<double>(x.rows()));
}

std::vector<double> GaussianNaiveBayes::predict_proba(std::span<const double> x) const {
  assert(!mean_.empty() && x.size() == mean_[0].size());
  std::vector<double> log_post(log_prior_);
  for (std::size_t k = 0; k < mean_.size(); ++k) {
    for (std::size_t c = 0; c < x.size(); ++c) {
      const double d = x[c] - mean_[k][c];
      log_post[k] += -0.5 * (std::log(2.0 * M_PI * var_[k][c]) + d * d / var_[k][c]);
    }
  }
  // Softmax over log posteriors.
  const double hi = *std::max_element(log_post.begin(), log_post.end());
  double sum = 0.0;
  for (auto& lp : log_post) {
    lp = std::exp(lp - hi);
    sum += lp;
  }
  for (auto& lp : log_post) lp /= sum;
  return log_post;
}

int GaussianNaiveBayes::predict(std::span<const double> x) const {
  const auto p = predict_proba(x);
  return static_cast<int>(std::max_element(p.begin(), p.end()) - p.begin());
}

}  // namespace lore::ml
