#include "src/circuit/logicsim.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace lore::circuit {

LogicSimulator::LogicSimulator(const Netlist* nl) : nl_(nl) {
  order_ = nl_->topological_order();
  po_nets_ = nl_->primary_outputs();
}

std::vector<bool> LogicSimulator::evaluate(const std::vector<bool>& pi_values,
                                           std::ptrdiff_t stuck_instance,
                                           bool stuck_value) const {
  assert(pi_values.size() == nl_->primary_inputs().size());
  std::vector<bool> nets(nl_->num_nets(), false);
  for (std::size_t i = 0; i < pi_values.size(); ++i)
    nets[nl_->primary_inputs()[i]] = pi_values[i];

  bool inputs[4] = {false, false, false, false};  // max fan-in of the library
  for (auto inst_id : order_) {
    const auto& inst = nl_->instance(inst_id);
    const auto& cell = nl_->library().cell(inst.cell_id);
    assert(inst.input_nets.size() <= 4);
    for (std::size_t pin = 0; pin < inst.input_nets.size(); ++pin)
      inputs[pin] = nets[inst.input_nets[pin]];
    bool value = evaluate_function(
        cell.function, std::span<const bool>(inputs, inst.input_nets.size()));
    if (static_cast<std::ptrdiff_t>(inst_id) == stuck_instance) value = stuck_value;
    nets[inst.output_net] = value;
  }
  return nets;
}

std::vector<bool> LogicSimulator::outputs(const std::vector<bool>& net_values) const {
  std::vector<bool> out;
  out.reserve(po_nets_.size());
  for (auto net : po_nets_) out.push_back(net_values[net]);
  return out;
}

std::vector<GateCriticality> stuck_at_campaign(const Netlist& nl, std::size_t vectors,
                                               lore::Rng& rng) {
  assert(vectors > 0);
  LogicSimulator sim(&nl);
  const std::size_t n_pi = nl.primary_inputs().size();
  std::vector<GateCriticality> out(nl.num_instances());
  std::vector<bool> pi(n_pi);

  for (std::size_t v = 0; v < vectors; ++v) {
    for (std::size_t i = 0; i < n_pi; ++i) pi[i] = rng.bernoulli(0.5);
    const auto golden = sim.outputs(sim.evaluate(pi));
    for (std::size_t g = 0; g < nl.num_instances(); ++g) {
      const auto s0 = sim.outputs(sim.evaluate(pi, static_cast<std::ptrdiff_t>(g), false));
      const auto s1 = sim.outputs(sim.evaluate(pi, static_cast<std::ptrdiff_t>(g), true));
      out[g].instance = g;
      out[g].stuck0_observability += s0 != golden ? 1.0 : 0.0;
      out[g].stuck1_observability += s1 != golden ? 1.0 : 0.0;
    }
  }
  for (auto& g : out) {
    g.stuck0_observability /= static_cast<double>(vectors);
    g.stuck1_observability /= static_cast<double>(vectors);
  }
  return out;
}

std::vector<double> gate_features(const Netlist& nl, std::size_t instance) {
  assert(instance < nl.num_instances());
  const auto& inst = nl.instance(instance);
  const auto& cell = nl.library().cell(inst.cell_id);

  // Logic depth from sources and distance to the nearest primary output, via
  // one forward and one backward pass (cached per call; callers batching many
  // instances should lift this, but netlists here are small).
  const auto order = nl.topological_order();
  std::vector<double> depth(nl.num_instances(), 0.0);
  for (auto id : order) {
    double d = 0.0;
    for (auto net : nl.instance(id).input_nets) {
      const int drv = nl.net(net).driver_instance;
      if (drv >= 0) d = std::max(d, depth[static_cast<std::size_t>(drv)] + 1.0);
    }
    depth[id] = d;
  }
  std::vector<double> to_po(nl.num_instances(), 1e9);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const auto id = *it;
    const auto& net = nl.net(nl.instance(id).output_net);
    if (net.is_primary_output) to_po[id] = 0.0;
    for (const auto& [sink, pin] : net.sinks)
      to_po[id] = std::min(to_po[id], to_po[sink] + 1.0);
  }
  if (to_po[instance] > 1e8) to_po[instance] = 64.0;  // dead cone

  return {static_cast<double>(inst.input_nets.size()),
          static_cast<double>(nl.net(inst.output_net).sinks.size()),
          depth[instance],
          to_po[instance],
          cell.drive_strength,
          cell.is_sequential() ? 1.0 : 0.0,
          cell.function == CellFunction::kXor2 || cell.function == CellFunction::kXnor2
              ? 1.0
              : 0.0,
          static_cast<double>(cell.stack_depth)};
}

ml::Dataset gate_criticality_dataset(const Netlist& nl,
                                     const std::vector<GateCriticality>& campaign,
                                     double threshold) {
  ml::Dataset d;
  for (const auto& g : campaign)
    d.add(gate_features(nl, g.instance), g.criticality() > threshold ? 1 : 0,
          g.criticality());
  return d;
}

}  // namespace lore::circuit
