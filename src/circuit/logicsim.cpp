#include "src/circuit/logicsim.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstring>
#include <limits>

namespace lore::circuit {

LogicSimulator::LogicSimulator(const Netlist* nl) : nl_(nl) {
  order_ = nl_->topological_order();
  po_nets_ = nl_->primary_outputs();
}

std::vector<bool> LogicSimulator::evaluate(const std::vector<bool>& pi_values,
                                           std::ptrdiff_t stuck_instance,
                                           bool stuck_value) const {
  assert(pi_values.size() == nl_->primary_inputs().size());
  std::vector<bool> nets(nl_->num_nets(), false);
  for (std::size_t i = 0; i < pi_values.size(); ++i)
    nets[nl_->primary_inputs()[i]] = pi_values[i];

  bool inputs[4] = {false, false, false, false};  // max fan-in of the library
  for (auto inst_id : order_) {
    const auto& inst = nl_->instance(inst_id);
    const auto& cell = nl_->library().cell(inst.cell_id);
    assert(inst.input_nets.size() <= 4);
    for (std::size_t pin = 0; pin < inst.input_nets.size(); ++pin)
      inputs[pin] = nets[inst.input_nets[pin]];
    bool value = evaluate_function(
        cell.function, std::span<const bool>(inputs, inst.input_nets.size()));
    if (static_cast<std::ptrdiff_t>(inst_id) == stuck_instance) value = stuck_value;
    nets[inst.output_net] = value;
  }
  return nets;
}

std::vector<bool> LogicSimulator::outputs(const std::vector<bool>& net_values) const {
  std::vector<bool> out;
  out.reserve(po_nets_.size());
  for (auto net : po_nets_) out.push_back(net_values[net]);
  return out;
}

namespace {

/// One campaign trial's worth of stuck-at evidence: 2 bits per gate (bit 0 =
/// stuck-at-0 flipped a PO, bit 1 = stuck-at-1 did), packed 4 gates per byte.
struct StuckAtTrialRecord {
  std::vector<std::uint8_t> bits;

  void set(std::size_t gate, bool s0_flip, bool s1_flip) {
    const std::size_t slot = 2 * gate;
    std::uint8_t& byte = bits[slot / 8];
    if (s0_flip) byte = static_cast<std::uint8_t>(byte | (1u << (slot % 8)));
    if (s1_flip) byte = static_cast<std::uint8_t>(byte | (1u << (slot % 8 + 1)));
  }
  bool s0(std::size_t gate) const { return (bits[gate / 4] >> (2 * gate % 8)) & 1u; }
  bool s1(std::size_t gate) const { return (bits[gate / 4] >> (2 * gate % 8 + 1)) & 1u; }
};

struct StuckAtTrialCodec {
  static void encode(lore::ByteWriter& w, const StuckAtTrialRecord& r) {
    w.put_u64(r.bits.size());
    w.put_bytes(r.bits.data(), r.bits.size());
  }
  static StuckAtTrialRecord decode(lore::ByteReader& r) {
    StuckAtTrialRecord rec;
    const std::uint64_t n = r.get_u64();
    rec.bits.resize(static_cast<std::size_t>(n));
    r.get_bytes(rec.bits.data(), rec.bits.size());
    return rec;
  }
};

/// Netlist/options fingerprint folded into the campaign identity so a
/// checkpoint can never be resumed against a different circuit or bias.
std::string stuck_at_domain(const Netlist& nl, const StuckAtOptions& options) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  mix(nl.num_instances());
  mix(nl.num_nets());
  mix(nl.primary_inputs().size());
  mix(nl.primary_outputs().size());
  for (std::size_t g = 0; g < nl.num_instances(); ++g) {
    const auto& inst = nl.instance(g);
    mix(static_cast<std::uint64_t>(inst.cell_id) << 32 | inst.output_net);
  }
  std::uint64_t bias_bits = 0;
  static_assert(sizeof bias_bits == sizeof options.one_bias);
  std::memcpy(&bias_bits, &options.one_bias, sizeof bias_bits);
  mix(bias_bits);
  char buf[64];
  std::snprintf(buf, sizeof buf, "circuit.stuckat/%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace

StuckAtResult stuck_at_campaign_run(const Netlist& nl, const lore::CampaignSpec& spec,
                                    const StuckAtOptions& options) {
  assert(spec.trials > 0);
  const LogicSimulator sim(&nl);  // shared read-only across worker threads
  const std::size_t n_pi = nl.primary_inputs().size();
  const std::size_t n_gates = nl.num_instances();
  const std::size_t record_bytes = (2 * n_gates + 7) / 8;

  lore::CampaignSpec s = spec;
  if (s.domain.empty()) s.domain = stuck_at_domain(nl, options);

  auto result = lore::run_campaign<StuckAtTrialRecord, StuckAtTrialCodec>(
      s, [&](std::size_t, lore::Rng& rng, const lore::CancelToken& cancel) {
        cancel.throw_if_cancelled();
        std::vector<bool> pi(n_pi);
        for (std::size_t i = 0; i < n_pi; ++i) pi[i] = rng.bernoulli(options.one_bias);
        const auto golden = sim.outputs(sim.evaluate(pi));
        StuckAtTrialRecord rec;
        rec.bits.assign(record_bytes, 0);
        for (std::size_t g = 0; g < n_gates; ++g) {
          if (g % 64 == 0) cancel.throw_if_cancelled();
          const auto gi = static_cast<std::ptrdiff_t>(g);
          const auto s0 = sim.outputs(sim.evaluate(pi, gi, false));
          const auto s1 = sim.outputs(sim.evaluate(pi, gi, true));
          rec.set(g, s0 != golden, s1 != golden);
        }
        return rec;
      });

  // Merge in trial order over the vectors that completed, so the outcome is a
  // pure function of (identity, completed set) — independent of scheduling.
  StuckAtResult out;
  out.report = result.report;
  out.criticality.resize(n_gates);
  std::size_t ok = 0;
  for (std::size_t t = 0; t < result.records.size(); ++t) {
    if (result.status[t] != lore::TrialStatus::kOk) continue;
    ++ok;
    const auto& rec = result.records[t];
    for (std::size_t g = 0; g < n_gates; ++g) {
      out.criticality[g].stuck0_observability += rec.s0(g) ? 1.0 : 0.0;
      out.criticality[g].stuck1_observability += rec.s1(g) ? 1.0 : 0.0;
    }
  }
  for (std::size_t g = 0; g < n_gates; ++g) {
    out.criticality[g].instance = g;
    if (ok) {
      out.criticality[g].stuck0_observability /= static_cast<double>(ok);
      out.criticality[g].stuck1_observability /= static_cast<double>(ok);
    }
  }
  return out;
}

std::vector<GateCriticality> stuck_at_campaign(const Netlist& nl,
                                               const lore::CampaignSpec& spec,
                                               const StuckAtOptions& options) {
  return stuck_at_campaign_run(nl, spec, options).criticality;
}

std::vector<double> gate_features(const Netlist& nl, std::size_t instance) {
  assert(instance < nl.num_instances());
  const auto& inst = nl.instance(instance);
  const auto& cell = nl.library().cell(inst.cell_id);

  // Logic depth from sources and distance to the nearest primary output, via
  // one forward and one backward pass (cached per call; callers batching many
  // instances should lift this, but netlists here are small).
  const auto order = nl.topological_order();
  std::vector<double> depth(nl.num_instances(), 0.0);
  for (auto id : order) {
    double d = 0.0;
    for (auto net : nl.instance(id).input_nets) {
      const int drv = nl.net(net).driver_instance;
      if (drv >= 0) d = std::max(d, depth[static_cast<std::size_t>(drv)] + 1.0);
    }
    depth[id] = d;
  }
  std::vector<double> to_po(nl.num_instances(), 1e9);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const auto id = *it;
    const auto& net = nl.net(nl.instance(id).output_net);
    if (net.is_primary_output) to_po[id] = 0.0;
    for (const auto& [sink, pin] : net.sinks)
      to_po[id] = std::min(to_po[id], to_po[sink] + 1.0);
  }
  if (to_po[instance] > 1e8) to_po[instance] = 64.0;  // dead cone

  return {static_cast<double>(inst.input_nets.size()),
          static_cast<double>(nl.net(inst.output_net).sinks.size()),
          depth[instance],
          to_po[instance],
          cell.drive_strength,
          cell.is_sequential() ? 1.0 : 0.0,
          cell.function == CellFunction::kXor2 || cell.function == CellFunction::kXnor2
              ? 1.0
              : 0.0,
          static_cast<double>(cell.stack_depth)};
}

ml::Dataset gate_criticality_dataset(const Netlist& nl,
                                     const std::vector<GateCriticality>& campaign,
                                     double threshold) {
  ml::Dataset d;
  for (const auto& g : campaign)
    d.add(gate_features(nl, g.instance), g.criticality() > threshold ? 1 : 0,
          g.criticality());
  return d;
}

}  // namespace lore::circuit
