// Static timing analysis over a Netlist: arrival-time/slew propagation,
// required times, slack, critical path, and SDF writing. Supports a pluggable
// per-instance delay source so the same engine runs the conventional corner
// flow and the per-instance SHE-aware flow of Fig. 3 (where the "delay"
// tables may actually hold temperatures — the paper's SDF trick).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/circuit/netlist.hpp"

namespace lore::circuit {

/// Worst-case (max of rise/fall) timing state at a net.
struct NetTiming {
  double arrival_ps = 0.0;
  double slew_ps = 0.0;
};

struct StaResult {
  std::vector<NetTiming> net_timing;           // indexed by net id
  std::vector<double> instance_delay_ps;       // worst arc delay used
  std::vector<double> instance_in_slew_ps;     // worst input slew seen
  std::vector<double> instance_load_ff;        // output load
  double worst_arrival_ps = 0.0;               // at any timing endpoint
  std::vector<std::size_t> critical_path;      // instance ids, input to endpoint

  /// Slack against a clock period (ns-free: both in ps).
  double worst_slack_ps(double clock_period_ps) const {
    return clock_period_ps - worst_arrival_ps;
  }
};

/// Delay source: given (instance, cell, input pin, input slew, load) produce
/// delay and output slew. Default reads the library tables of the netlist.
class DelayModel {
 public:
  virtual ~DelayModel() = default;
  virtual device::StageTiming arc_timing(const Netlist& nl, std::size_t instance,
                                         std::size_t pin, double in_slew_ps,
                                         double load_ff) const = 0;
};

/// Library-table delay model: worst of rise/fall from the cell's NLDM arcs.
class LibraryDelayModel final : public DelayModel {
 public:
  /// `scale` derates every delay (e.g. a flat worst-case guardband factor).
  explicit LibraryDelayModel(double scale = 1.0) : scale_(scale) {}
  device::StageTiming arc_timing(const Netlist& nl, std::size_t instance, std::size_t pin,
                                 double in_slew_ps, double load_ff) const override;

 private:
  double scale_;
};

/// Per-instance table delay model: each instance has its own arc tables
/// (the circuit-specific library of Fig. 3, one entry per instance).
class InstanceTableDelayModel final : public DelayModel {
 public:
  struct InstanceTables {
    std::vector<TimingArc> arcs;  // one per input pin
  };

  explicit InstanceTableDelayModel(std::vector<InstanceTables> tables)
      : tables_(std::move(tables)) {}

  device::StageTiming arc_timing(const Netlist& nl, std::size_t instance, std::size_t pin,
                                 double in_slew_ps, double load_ff) const override;

  const std::vector<InstanceTables>& tables() const { return tables_; }

 private:
  std::vector<InstanceTables> tables_;
};

struct StaConfig {
  double primary_input_slew_ps = 20.0;
  double primary_output_load_ff = 4.0;
};

class StaEngine {
 public:
  explicit StaEngine(StaConfig cfg = {}) : cfg_(cfg) {}

  /// Propagate arrivals/slews through the netlist with the given delay model.
  StaResult run(const Netlist& nl, const DelayModel& delays) const;

 private:
  StaConfig cfg_;
};

/// Write an SDF-like annotation file content. `values` is per-instance; the
/// label says what the values mean ("DELAY_PS" or "SHE_TEMP_K" — the Fig. 3
/// flow writes temperatures through the same format).
std::string write_sdf(const Netlist& nl, const std::vector<double>& values,
                      const std::string& value_label);

}  // namespace lore::circuit
