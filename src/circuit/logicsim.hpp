// Gate-level logic simulation and stuck-at fault campaigns — the circuit
// flavour of the paper's Sec. III-B1 ([20]: predicting the functional-failure
// criticality of circuit elements from structural features such as fan-in/
// fan-out and proximity to observable outputs, using a fraction of the fault-
// simulation budget).
#pragma once

#include <cstdint>

#include "src/circuit/netlist.hpp"
#include "src/common/campaign.hpp"
#include "src/common/rng.hpp"
#include "src/ml/dataset.hpp"

namespace lore::circuit {

/// Combinational logic simulator over a Netlist. Sequential cells pass D
/// through (single-cycle combinational frame).
class LogicSimulator {
 public:
  explicit LogicSimulator(const Netlist* nl);

  /// Evaluate all nets for one primary-input vector.
  /// `stuck_instance` >= 0 forces that instance's output to `stuck_value`.
  std::vector<bool> evaluate(const std::vector<bool>& pi_values,
                             std::ptrdiff_t stuck_instance = -1,
                             bool stuck_value = false) const;

  /// Primary-output values extracted from a net evaluation.
  std::vector<bool> outputs(const std::vector<bool>& net_values) const;

 private:
  const Netlist* nl_;
  std::vector<std::size_t> order_;
  std::vector<std::size_t> po_nets_;
};

/// Observability of one instance: fraction of random input vectors for which
/// a stuck-at fault at its output flips at least one primary output.
struct GateCriticality {
  std::size_t instance = 0;
  double stuck0_observability = 0.0;
  double stuck1_observability = 0.0;
  double criticality() const { return 0.5 * (stuck0_observability + stuck1_observability); }
};

/// Per-campaign options for the stuck-at sweep (designated-initializer
/// friendly; the execution/resilience knobs live in the CampaignSpec).
struct StuckAtOptions {
  /// Probability of a 1 on each primary input of a random vector.
  double one_bias = 0.5;
};

struct StuckAtResult {
  std::vector<GateCriticality> criticality;
  lore::CampaignReport report;
};

/// Exhaustive-per-gate random-vector fault simulation: each campaign trial is
/// one PI vector simulated against every gate in both stuck-at polarities —
/// the expensive ground truth ML replaces. Runs on the resilient campaign
/// runtime (spec.trials = vector count): parallel over vectors, bit-identical
/// for any thread count and across checkpoint/resume; observabilities are
/// normalized over the vectors that actually completed.
StuckAtResult stuck_at_campaign_run(const Netlist& nl, const lore::CampaignSpec& spec,
                                    const StuckAtOptions& options = {});

/// Convenience: criticalities of `stuck_at_campaign_run`.
std::vector<GateCriticality> stuck_at_campaign(const Netlist& nl,
                                               const lore::CampaignSpec& spec,
                                               const StuckAtOptions& options = {});

/// Structural features of one instance for criticality prediction: fan-in,
/// fan-out, logic depth from inputs, distance to the nearest primary output,
/// drive strength, function class flags — the feature family of [20].
inline constexpr std::size_t kGateFeatureDim = 8;
std::vector<double> gate_features(const Netlist& nl, std::size_t instance);

/// Labeled dataset: gate features with labels criticality > threshold, and
/// the raw criticality as the regression target.
ml::Dataset gate_criticality_dataset(const Netlist& nl,
                                     const std::vector<GateCriticality>& campaign,
                                     double threshold);

}  // namespace lore::circuit
