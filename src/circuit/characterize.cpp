#include "src/circuit/characterize.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "src/common/parallel.hpp"
#include "src/obs/obs.hpp"

namespace lore::circuit {
namespace {

/// Drain current of the switching network at output voltage v_out while the
/// input ramp sits at v_in. Velocity-saturated device with a linear region
/// near the rail; stacks divide the drive.
double drive_current(const device::Transistor& dev, std::size_t stack_depth, double v_in,
                     double v_ds, const device::OperatingPoint& op) {
  const double vth = dev.vth(op);
  const double overdrive = v_in - vth;
  if (overdrive <= 0.0 || v_ds <= 0.0) return 0.0;
  device::OperatingPoint gate_op = op;
  gate_op.vdd = v_in;  // gate at the instantaneous input voltage
  double i_sat = dev.saturation_current(gate_op);
  // Linear region when V_ds < V_dsat ~ overdrive.
  const double v_dsat = std::max(1e-6, overdrive);
  if (v_ds < v_dsat) i_sat *= v_ds / v_dsat * (2.0 - v_ds / v_dsat);
  return i_sat / static_cast<double>(std::max<std::size_t>(1, stack_depth));
}

}  // namespace

device::StageTiming Characterizer::simulate(const Cell& cell, bool rising_output,
                                            double in_slew_ps, double load_ff,
                                            const device::OperatingPoint& op) const {
  evaluations_.add(1);
  assert(in_slew_ps > 0.0 && load_ff >= 0.0);
  const auto& stage = cell.stage;
  const device::Transistor dev(rising_output ? stage.pullup : stage.pulldown);
  const double c_farad = (load_ff + stage.parasitic_cap_ff) * 1e-15;
  const double vdd = op.vdd;

  // Input ramp: 10%-90% transition = in_slew_ps, so the full 0-100% ramp is
  // in_slew_ps / 0.8; input starts moving at t=0.
  const double ramp_ps = in_slew_ps / 0.8;
  const double t50_in = 0.5 * ramp_ps;

  double v_out = rising_output ? 0.0 : vdd;
  const double dt_s = cfg_.timestep_ps * 1e-12;
  double t_ps = 0.0;
  double t50_out = -1.0, t10 = -1.0, t90 = -1.0;

  // Integrate until the output completes its swing (with a hard cap so
  // pathological corners terminate).
  const double t_max_ps = 1e6;
  while (t_ps < t_max_ps) {
    // Gate drive for the switching network: rising output means input fell
    // (PMOS gate pulled low) - model |Vgs| ramping 0 -> vdd over the ramp.
    const double ramp_pos = std::clamp(t_ps / ramp_ps, 0.0, 1.0);
    const double v_gate = vdd * ramp_pos;
    const double v_ds = rising_output ? vdd - v_out : v_out;
    const double i = drive_current(dev, cell.stack_depth, v_gate, v_ds, op);
    const double dv = i * dt_s / c_farad;
    v_out += rising_output ? dv : -dv;
    v_out = std::clamp(v_out, 0.0, vdd);
    t_ps += cfg_.timestep_ps;

    const double frac = rising_output ? v_out / vdd : 1.0 - v_out / vdd;
    if (t10 < 0.0 && frac >= 0.1) t10 = t_ps;
    if (t50_out < 0.0 && frac >= 0.5) t50_out = t_ps;
    if (frac >= 0.9) {
      t90 = t_ps;
      break;
    }
  }
  device::StageTiming timing;
  // Unfinished transitions clamp at the cap (grossly undersized drive).
  if (t50_out < 0.0) t50_out = t_max_ps;
  if (t10 < 0.0) t10 = t_max_ps;
  if (t90 < 0.0) t90 = t_max_ps;
  timing.delay_ps = t50_out - t50_in;
  timing.out_slew_ps = t90 - t10;
  return timing;
}

double Characterizer::she_rise(const Cell& cell, double in_slew_ps, double load_ff,
                               const device::OperatingPoint& op) const {
  const device::GateStage stage(cell.stage);
  const device::ActivityProfile activity{.toggle_rate_ghz = cfg_.she_reference_toggle_ghz,
                                         .in_slew_ps = in_slew_ps,
                                         .load_ff = load_ff};
  return she_.temperature_rise(stage, activity, op);
}

void Characterizer::characterize_cell(Cell& cell, const device::OperatingPoint& op,
                                      const lore::CancelToken* cancel) const {
  LORE_OBS_TIMER(timer, "characterize.cell_us");
  const auto& slews = cfg_.slew_axis_ps;
  const auto& loads = cfg_.load_axis_ff;
  cell.arcs.clear();
  for (std::size_t pin = 0; pin < cell.num_inputs(); ++pin) {
    TimingArc arc;
    arc.input_pin = pin;
    arc.rise_delay = TimingTable(slews, loads);
    arc.fall_delay = TimingTable(slews, loads);
    arc.rise_slew = TimingTable(slews, loads);
    arc.fall_slew = TimingTable(slews, loads);
    // Later pins are electrically closer to the output in the stack: small
    // deterministic derating distinguishes the arcs.
    const double pin_factor = 1.0 + 0.06 * static_cast<double>(pin);
    for (std::size_t si = 0; si < slews.size(); ++si) {
      if (cancel) cancel->throw_if_cancelled();
      for (std::size_t li = 0; li < loads.size(); ++li) {
        const auto rise = simulate(cell, true, slews[si], loads[li], op);
        const auto fall = simulate(cell, false, slews[si], loads[li], op);
        arc.rise_delay.at(si, li) = rise.delay_ps * pin_factor;
        arc.fall_delay.at(si, li) = fall.delay_ps * pin_factor;
        arc.rise_slew.at(si, li) = rise.out_slew_ps;
        arc.fall_slew.at(si, li) = fall.out_slew_ps;
      }
    }
    cell.arcs.push_back(std::move(arc));
  }
  // SHE table (Fig. 3 upper flow): temperature per grid condition.
  cell.she_temperature = TimingTable(slews, loads);
  for (std::size_t si = 0; si < slews.size(); ++si)
    for (std::size_t li = 0; li < loads.size(); ++li)
      cell.she_temperature.at(si, li) = she_rise(cell, slews[si], loads[li], op);
}

void Characterizer::characterize_library(CellLibrary& lib,
                                         const device::OperatingPoint& op,
                                         unsigned threads) const {
  LORE_OBS_SPAN(span, "circuit.characterize_library");
  LORE_OBS_TIMER(timer, "characterize.library_us");
  LORE_OBS_COUNT("characterize.cells", lib.size());
  // Each worker fills a disjoint cell's tables; the grids themselves are
  // deterministic functions of (cell, corner), so any schedule produces
  // bit-identical libraries.
  lore::parallel_for(lib.size(), threads,
                     [&](std::size_t i) { characterize_cell(lib.cell(i), op); });
  lib.set_corner(op);
}

namespace {

/// One cell's characterization result, flattened in a canonical order: per
/// arc the four tables' row-major values (pin factors already baked in), then
/// the SHE table. Pure doubles — the table axes are reconstructed from the
/// Characterizer config on apply.
struct CellTablesRecord {
  std::vector<double> values;
};

struct CellTablesCodec {
  static void encode(lore::ByteWriter& w, const CellTablesRecord& r) {
    w.put_u64(r.values.size());
    for (const double v : r.values) w.put_f64(v);
  }
  static CellTablesRecord decode(lore::ByteReader& r) {
    CellTablesRecord rec;
    const std::uint64_t n = r.get_u64();
    rec.values.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) rec.values.push_back(r.get_f64());
    return rec;
  }
};

void append_values(std::vector<double>& out, const TimingTable& t) {
  out.insert(out.end(), t.values().begin(), t.values().end());
}

/// Library/corner/config fingerprint folded into the campaign identity: any
/// change to the grid axes, timestep, corner, or cell set must invalidate a
/// checkpoint, because all of them change the produced tables.
std::string characterize_domain(const CellLibrary& lib, const device::OperatingPoint& op,
                                const CharacterizerConfig& cfg) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  const auto mix_f64 = [&mix](double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    mix(bits);
  };
  mix(lib.size());
  for (std::size_t i = 0; i < lib.size(); ++i) {
    const Cell& cell = lib.cell(i);
    mix(static_cast<std::uint64_t>(cell.function));
    mix(cell.num_inputs());
    mix(cell.stack_depth);
    mix_f64(cell.drive_strength);
  }
  for (const double v : cfg.slew_axis_ps) mix_f64(v);
  for (const double v : cfg.load_axis_ff) mix_f64(v);
  mix_f64(cfg.timestep_ps);
  mix_f64(cfg.she_reference_toggle_ghz);
  mix_f64(op.vdd);
  mix_f64(op.temperature);
  mix_f64(op.delta_vth);
  char buf[64];
  std::snprintf(buf, sizeof buf, "circuit.characterize/%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace

lore::CampaignReport Characterizer::characterize_library(
    CellLibrary& lib, const device::OperatingPoint& op,
    const lore::CampaignSpec& spec) const {
  LORE_OBS_SPAN(span, "circuit.characterize_library");
  LORE_OBS_TIMER(timer, "characterize.library_us");
  LORE_OBS_COUNT("characterize.cells", lib.size());

  lore::CampaignSpec s = spec;
  s.trials = lib.size();  // trial t characterizes cell t — the grid IS the campaign
  if (s.domain.empty()) s.domain = characterize_domain(lib, op, cfg_);

  auto result = lore::run_campaign_batched<CellTablesRecord, CellTablesCodec>(
      s, [&](std::size_t t, lore::Rng&, const lore::CancelToken& cancel) {
        Cell cell = lib.cell(t);  // work on a copy; apply only completed cells
        characterize_cell(cell, op, &cancel);
        CellTablesRecord rec;
        for (const TimingArc& arc : cell.arcs) {
          append_values(rec.values, arc.rise_delay);
          append_values(rec.values, arc.fall_delay);
          append_values(rec.values, arc.rise_slew);
          append_values(rec.values, arc.fall_slew);
        }
        append_values(rec.values, cell.she_temperature);
        return rec;
      });

  const auto& slews = cfg_.slew_axis_ps;
  const auto& loads = cfg_.load_axis_ff;
  const std::size_t grid = slews.size() * loads.size();
  for (std::size_t t = 0; t < result.records.size(); ++t) {
    if (result.status[t] != lore::TrialStatus::kOk) continue;
    Cell& cell = lib.cell(t);
    const auto& vals = result.records[t].values;
    assert(vals.size() == grid * (4 * cell.num_inputs() + 1));
    std::size_t off = 0;
    const auto take_table = [&](TimingTable& table) {
      table = TimingTable(slews, loads);
      std::copy_n(vals.begin() + static_cast<std::ptrdiff_t>(off), grid,
                  table.values().begin());
      off += grid;
    };
    cell.arcs.clear();
    for (std::size_t pin = 0; pin < cell.num_inputs(); ++pin) {
      TimingArc arc;
      arc.input_pin = pin;
      take_table(arc.rise_delay);
      take_table(arc.fall_delay);
      take_table(arc.rise_slew);
      take_table(arc.fall_slew);
      cell.arcs.push_back(std::move(arc));
    }
    take_table(cell.she_temperature);
  }
  lib.set_corner(op);
  return result.report;
}

}  // namespace lore::circuit
