#include "src/circuit/liberty.hpp"

#include <algorithm>
#include <cassert>

namespace lore::circuit {

TimingTable::TimingTable(std::vector<double> slew_axis_ps, std::vector<double> load_axis_ff)
    : slew_axis_(std::move(slew_axis_ps)),
      load_axis_(std::move(load_axis_ff)),
      values_(slew_axis_.size() * load_axis_.size(), 0.0) {
  assert(!slew_axis_.empty() && !load_axis_.empty());
  assert(std::is_sorted(slew_axis_.begin(), slew_axis_.end()));
  assert(std::is_sorted(load_axis_.begin(), load_axis_.end()));
}

double& TimingTable::at(std::size_t slew_idx, std::size_t load_idx) {
  assert(slew_idx < slew_axis_.size() && load_idx < load_axis_.size());
  return values_[slew_idx * load_axis_.size() + load_idx];
}

double TimingTable::at(std::size_t slew_idx, std::size_t load_idx) const {
  assert(slew_idx < slew_axis_.size() && load_idx < load_axis_.size());
  return values_[slew_idx * load_axis_.size() + load_idx];
}

namespace {

/// Index of the lower grid point and the interpolation fraction, clamped.
std::pair<std::size_t, double> locate(std::span<const double> axis, double x) {
  if (x <= axis.front()) return {0, 0.0};
  if (x >= axis.back()) return {axis.size() - 2, 1.0};
  const auto it = std::upper_bound(axis.begin(), axis.end(), x);
  const auto hi = static_cast<std::size_t>(it - axis.begin());
  const std::size_t lo = hi - 1;
  const double frac = (x - axis[lo]) / (axis[hi] - axis[lo]);
  return {lo, frac};
}

}  // namespace

double TimingTable::lookup(double slew_ps, double load_ff) const {
  assert(!values_.empty());
  if (slew_axis_.size() == 1 && load_axis_.size() == 1) return values_[0];
  const auto [si, sf] = slew_axis_.size() > 1
                            ? locate(slew_axis_, slew_ps)
                            : std::pair<std::size_t, double>{0, 0.0};
  const auto [li, lf] = load_axis_.size() > 1
                            ? locate(load_axis_, load_ff)
                            : std::pair<std::size_t, double>{0, 0.0};
  const std::size_t si1 = slew_axis_.size() > 1 ? si + 1 : si;
  const std::size_t li1 = load_axis_.size() > 1 ? li + 1 : li;
  const double v00 = at(si, li), v01 = at(si, li1);
  const double v10 = at(si1, li), v11 = at(si1, li1);
  return v00 * (1 - sf) * (1 - lf) + v01 * (1 - sf) * lf + v10 * sf * (1 - lf) +
         v11 * sf * lf;
}

double TimingTable::max_value() const {
  assert(!values_.empty());
  return *std::max_element(values_.begin(), values_.end());
}

std::size_t function_input_count(CellFunction fn) {
  switch (fn) {
    case CellFunction::kInv:
    case CellFunction::kBuf:
    case CellFunction::kDff: return 1;
    case CellFunction::kNand2:
    case CellFunction::kNor2:
    case CellFunction::kAnd2:
    case CellFunction::kOr2:
    case CellFunction::kXor2:
    case CellFunction::kXnor2: return 2;
    case CellFunction::kAoi21:
    case CellFunction::kOai21:
    case CellFunction::kMux2: return 3;
  }
  return 1;
}

bool evaluate_function(CellFunction fn, std::span<const bool> in) {
  assert(in.size() >= function_input_count(fn));
  switch (fn) {
    case CellFunction::kInv: return !in[0];
    case CellFunction::kBuf: return in[0];
    case CellFunction::kDff: return in[0];
    case CellFunction::kNand2: return !(in[0] && in[1]);
    case CellFunction::kNor2: return !(in[0] || in[1]);
    case CellFunction::kAnd2: return in[0] && in[1];
    case CellFunction::kOr2: return in[0] || in[1];
    case CellFunction::kXor2: return in[0] != in[1];
    case CellFunction::kXnor2: return in[0] == in[1];
    case CellFunction::kAoi21: return !((in[0] && in[1]) || in[2]);
    case CellFunction::kOai21: return !((in[0] || in[1]) && in[2]);
    case CellFunction::kMux2: return in[2] ? in[1] : in[0];
  }
  return false;
}

std::string function_name(CellFunction fn) {
  switch (fn) {
    case CellFunction::kInv: return "INV";
    case CellFunction::kBuf: return "BUF";
    case CellFunction::kNand2: return "NAND2";
    case CellFunction::kNor2: return "NOR2";
    case CellFunction::kAnd2: return "AND2";
    case CellFunction::kOr2: return "OR2";
    case CellFunction::kXor2: return "XOR2";
    case CellFunction::kXnor2: return "XNOR2";
    case CellFunction::kAoi21: return "AOI21";
    case CellFunction::kOai21: return "OAI21";
    case CellFunction::kMux2: return "MUX2";
    case CellFunction::kDff: return "DFF";
  }
  return "?";
}

std::size_t CellLibrary::add_cell(Cell cell) {
  cells_.push_back(std::move(cell));
  return cells_.size() - 1;
}

std::optional<std::size_t> CellLibrary::find(const std::string& cell_name) const {
  for (std::size_t i = 0; i < cells_.size(); ++i)
    if (cells_[i].name == cell_name) return i;
  return std::nullopt;
}

std::vector<double> default_slew_axis_ps() {
  return {5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0};
}

std::vector<double> default_load_axis_ff() {
  return {0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0};
}

namespace {

/// Structural complexity per function: stack depth of the worst path and the
/// number of internal stages (affects parasitics and delay).
struct FunctionShape {
  std::size_t stack_depth;
  double parasitic_factor;
};

FunctionShape function_shape(CellFunction fn) {
  switch (fn) {
    case CellFunction::kInv: return {1, 1.0};
    case CellFunction::kBuf: return {1, 1.6};
    case CellFunction::kNand2: return {2, 1.3};
    case CellFunction::kNor2: return {2, 1.4};
    case CellFunction::kAnd2: return {2, 1.9};
    case CellFunction::kOr2: return {2, 2.0};
    case CellFunction::kXor2: return {2, 2.6};
    case CellFunction::kXnor2: return {2, 2.7};
    case CellFunction::kAoi21: return {3, 1.8};
    case CellFunction::kOai21: return {3, 1.9};
    case CellFunction::kMux2: return {2, 2.3};
    case CellFunction::kDff: return {3, 3.2};
  }
  return {1, 1.0};
}

}  // namespace

CellLibrary make_skeleton_library(const std::string& name) {
  CellLibrary lib(name);
  const CellFunction functions[] = {
      CellFunction::kInv,   CellFunction::kBuf,   CellFunction::kNand2,
      CellFunction::kNor2,  CellFunction::kAnd2,  CellFunction::kOr2,
      CellFunction::kXor2,  CellFunction::kXnor2, CellFunction::kAoi21,
      CellFunction::kOai21, CellFunction::kMux2,  CellFunction::kDff};
  for (CellFunction fn : functions) {
    for (double drive : {1.0, 2.0, 4.0}) {
      Cell c;
      c.function = fn;
      c.drive_strength = drive;
      c.name = function_name(fn) + "_X" + std::to_string(static_cast<int>(drive));
      const auto shape = function_shape(fn);
      c.stack_depth = shape.stack_depth;
      // Stacked devices halve effective drive; upsizing restores it.
      c.stage.pulldown.width_um = 0.4 * drive;
      c.stage.pullup.width_um = 0.7 * drive;
      c.stage.pulldown.num_fins = 2 + static_cast<std::size_t>(drive / 2.0);
      c.stage.pullup.num_fins = 2 + static_cast<std::size_t>(drive / 2.0);
      c.stage.parasitic_cap_ff = 0.9 * shape.parasitic_factor * drive;
      c.stage.input_cap_ff = 0.8 + 0.45 * drive;
      c.input_cap_ff = c.stage.input_cap_ff;
      c.area_um2 = shape.parasitic_factor * (0.6 + 0.5 * drive);
      lib.add_cell(std::move(c));
    }
  }
  return lib;
}

}  // namespace lore::circuit
