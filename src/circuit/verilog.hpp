// Structural Verilog export of a Netlist — the interchange format a real
// EDA flow would hand to place-and-route after the Fig. 3 signoff.
#pragma once

#include <string>

#include "src/circuit/netlist.hpp"

namespace lore::circuit {

/// Render the netlist as a structural Verilog module. Nets are named n<id>,
/// primary inputs pi<k>, cell pins a/b/c -> y (d -> q for DFFs).
std::string write_verilog(const Netlist& nl, const std::string& module_name);

}  // namespace lore::circuit
