#include "src/circuit/she_flow.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lore::circuit {

std::vector<double> instance_she_rise(const Netlist& nl, const StaResult& sta,
                                      double she_reference_toggle_ghz) {
  assert(she_reference_toggle_ghz > 0.0);
  std::vector<double> rise(nl.num_instances(), 0.0);
  for (std::size_t i = 0; i < nl.num_instances(); ++i) {
    const auto& inst = nl.instance(i);
    const auto& cell = nl.library().cell(inst.cell_id);
    assert(cell.she_temperature.slew_points() > 0 && "library lacks SHE characterization");
    const double table_rise = cell.she_temperature.lookup(sta.instance_in_slew_ps[i],
                                                          sta.instance_load_ff[i]);
    rise[i] = table_rise * (inst.toggle_rate_ghz / she_reference_toggle_ghz);
  }
  return rise;
}

InstanceTableDelayModel build_exact_instance_library(const Netlist& nl,
                                                     const std::vector<double>& she_rise_k,
                                                     const Characterizer& characterizer,
                                                     const SheFlowConfig& cfg) {
  assert(she_rise_k.size() == nl.num_instances());
  std::vector<InstanceTableDelayModel::InstanceTables> tables(nl.num_instances());
  for (std::size_t i = 0; i < nl.num_instances(); ++i) {
    Cell scratch = nl.library().cell(nl.instance(i).cell_id);
    device::OperatingPoint op = nl.library().corner();
    op.temperature = cfg.chip_temperature + she_rise_k[i];
    characterizer.characterize_cell(scratch, op);
    tables[i].arcs = std::move(scratch.arcs);
  }
  return InstanceTableDelayModel(std::move(tables));
}

std::vector<double> MlLibraryCharacterizer::cell_features(const Cell& cell, double slew_ps,
                                                          double load_ff,
                                                          double temperature_k,
                                                          double delta_vth) {
  return {
      cell.drive_strength,
      static_cast<double>(cell.stack_depth),
      cell.stage.pulldown.width_um,
      cell.stage.pullup.width_um,
      static_cast<double>(cell.stage.pulldown.num_fins),
      cell.stage.parasitic_cap_ff,
      std::log(slew_ps),
      std::log(load_ff + 0.1),
      temperature_k - device::kT0,
      delta_vth * 100.0,
  };
}

void MlLibraryCharacterizer::train(const CellLibrary& lib, const Characterizer& characterizer,
                                   const device::OperatingPoint& base_op) {
  lore::Rng rng(cfg_.seed);
  const auto& grid = characterizer.config();
  const double slew_lo = grid.slew_axis_ps.front(), slew_hi = grid.slew_axis_ps.back();
  const double load_lo = grid.load_axis_ff.front(), load_hi = grid.load_axis_ff.back();

  ml::Matrix x, y;
  const std::size_t evals_before = characterizer.evaluations();
  for (std::size_t cell_id = 0; cell_id < lib.size(); ++cell_id) {
    const auto& cell = lib.cell(cell_id);
    for (std::size_t ts = 0; ts < cfg_.temperature_samples; ++ts) {
      device::OperatingPoint op = base_op;
      op.temperature = base_op.temperature + rng.uniform(0.0, cfg_.temperature_span);
      op.delta_vth = rng.uniform(0.0, 0.06);
      const std::size_t per_temp =
          std::max<std::size_t>(1, cfg_.samples_per_cell / cfg_.temperature_samples);
      for (std::size_t s = 0; s < per_temp; ++s) {
        // Log-uniform grid sampling matches the NLDM axis spacing.
        const double slew = std::exp(rng.uniform(std::log(slew_lo), std::log(slew_hi)));
        const double load = std::exp(rng.uniform(std::log(load_lo), std::log(load_hi)));
        const auto rise = characterizer.simulate(cell, true, slew, load, op);
        const auto fall = characterizer.simulate(cell, false, slew, load, op);
        x.push_row(cell_features(cell, slew, load, op.temperature, op.delta_vth));
        // Log targets: delays span orders of magnitude across cells/corners.
        const double t[] = {std::log(rise.delay_ps), std::log(fall.delay_ps),
                            std::log(rise.out_slew_ps), std::log(fall.out_slew_ps)};
        y.push_row(t);
      }
    }
  }
  training_evaluations_ = characterizer.evaluations() - evals_before;

  const ml::Matrix xs = scaler_.fit_transform(x);
  model_ = ml::MlpVectorRegressor(cfg_.mlp);
  model_.fit(xs, y);
  trained_ = true;
}

MlLibraryCharacterizer::Prediction MlLibraryCharacterizer::predict(
    const Cell& cell, double slew_ps, double load_ff, double temperature_k,
    double delta_vth) const {
  assert(trained_);
  auto features = cell_features(cell, slew_ps, load_ff, temperature_k, delta_vth);
  scaler_.transform_inplace(features);
  const auto out = model_.predict(features);
  return {std::exp(out[0]), std::exp(out[1]), std::exp(out[2]), std::exp(out[3])};
}

InstanceTableDelayModel MlLibraryCharacterizer::build_instance_library(
    const Netlist& nl, const std::vector<double>& she_rise_k, const SheFlowConfig& cfg,
    const CharacterizerConfig& grid) const {
  assert(trained_ && she_rise_k.size() == nl.num_instances());
  std::vector<InstanceTableDelayModel::InstanceTables> tables(nl.num_instances());
  for (std::size_t i = 0; i < nl.num_instances(); ++i) {
    const auto& cell = nl.library().cell(nl.instance(i).cell_id);
    const double temp = cfg.chip_temperature + she_rise_k[i];
    tables[i].arcs.reserve(cell.num_inputs());
    for (std::size_t pin = 0; pin < cell.num_inputs(); ++pin) {
      TimingArc arc;
      arc.input_pin = pin;
      arc.rise_delay = TimingTable(grid.slew_axis_ps, grid.load_axis_ff);
      arc.fall_delay = TimingTable(grid.slew_axis_ps, grid.load_axis_ff);
      arc.rise_slew = TimingTable(grid.slew_axis_ps, grid.load_axis_ff);
      arc.fall_slew = TimingTable(grid.slew_axis_ps, grid.load_axis_ff);
      const double pin_factor = 1.0 + 0.06 * static_cast<double>(pin);
      for (std::size_t si = 0; si < grid.slew_axis_ps.size(); ++si) {
        for (std::size_t li = 0; li < grid.load_axis_ff.size(); ++li) {
          const auto p = predict(cell, grid.slew_axis_ps[si], grid.load_axis_ff[li], temp,
                                 nl.library().corner().delta_vth);
          arc.rise_delay.at(si, li) = p.rise_delay_ps * pin_factor;
          arc.fall_delay.at(si, li) = p.fall_delay_ps * pin_factor;
          arc.rise_slew.at(si, li) = p.rise_slew_ps;
          arc.fall_slew.at(si, li) = p.fall_slew_ps;
        }
      }
      tables[i].arcs.push_back(std::move(arc));
    }
  }
  return InstanceTableDelayModel(std::move(tables));
}

double MlLibraryCharacterizer::validation_mape(const CellLibrary& lib,
                                               const Characterizer& characterizer,
                                               const device::OperatingPoint& base_op,
                                               std::size_t samples, std::uint64_t seed) const {
  assert(trained_ && samples > 0);
  lore::Rng rng(seed);
  const auto& grid = characterizer.config();
  double total = 0.0;
  for (std::size_t s = 0; s < samples; ++s) {
    const auto& cell = lib.cell(rng.uniform_index(lib.size()));
    device::OperatingPoint op = base_op;
    op.temperature = base_op.temperature + rng.uniform(0.0, cfg_.temperature_span);
    const double slew = std::exp(rng.uniform(std::log(grid.slew_axis_ps.front()),
                                             std::log(grid.slew_axis_ps.back())));
    const double load = std::exp(rng.uniform(std::log(grid.load_axis_ff.front()),
                                             std::log(grid.load_axis_ff.back())));
    const auto truth = characterizer.simulate(cell, true, slew, load, op);
    const auto pred = predict(cell, slew, load, op.temperature, op.delta_vth);
    total += std::abs(pred.rise_delay_ps - truth.delay_ps) / truth.delay_ps;
  }
  return total / static_cast<double>(samples);
}

GuardbandReport run_guardband_flow(const Netlist& nl, CellLibrary& lib,
                                   const Characterizer& characterizer,
                                   MlLibraryCharacterizer& ml_char, const SheFlowConfig& cfg,
                                   const StaEngine& sta) {
  GuardbandReport report;

  // Typical corner: chip temperature, no aging.
  device::OperatingPoint typical = lib.corner();
  typical.temperature = cfg.chip_temperature;
  typical.delta_vth = 0.0;
  characterizer.characterize_library(lib, typical);
  const auto sta_typical = sta.run(nl, LibraryDelayModel());
  report.typical_arrival_ps = sta_typical.worst_arrival_ps;

  // Conventional worst case: every cell at the max corner.
  device::OperatingPoint worst = typical;
  worst.temperature = cfg.worst_case_temperature;
  worst.delta_vth = cfg.worst_case_delta_vth;
  {
    // The netlist holds a pointer to `lib`, so characterize the worst corner
    // into it, run STA, then restore the typical tables by re-characterizing.
    CellLibrary worst_lib = lib;
    characterizer.characterize_library(worst_lib, worst);
    std::swap(lib, worst_lib);
    const auto sta_worst = sta.run(nl, LibraryDelayModel());
    report.worst_case_arrival_ps = sta_worst.worst_arrival_ps;
    std::swap(lib, worst_lib);
  }

  // SHE-aware: per-instance temperatures from the typical-corner STA.
  const auto she =
      instance_she_rise(nl, sta_typical, characterizer.config().she_reference_toggle_ghz);

  const std::size_t evals_before = characterizer.evaluations();
  const auto exact_model = build_exact_instance_library(nl, she, characterizer, cfg);
  report.exact_evaluations = characterizer.evaluations() - evals_before;
  report.she_exact_arrival_ps = sta.run(nl, exact_model).worst_arrival_ps;

  if (!ml_char.trained()) ml_char.train(lib, characterizer, typical);
  report.ml_training_evaluations = ml_char.training_evaluations();
  const auto ml_model = ml_char.build_instance_library(nl, she, cfg, characterizer.config());
  report.she_ml_arrival_ps = sta.run(nl, ml_model).worst_arrival_ps;
  return report;
}

}  // namespace lore::circuit
