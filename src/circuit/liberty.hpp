// Liberty-style standard cell library with NLDM lookup tables
// (input-slew × output-load grids). This is the data structure the Fig. 3
// flow manipulates: characterization fills the tables, the SHE flow swaps
// delay values for temperatures, and the ML characterizer regenerates
// instance-specific tables.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/device/transistor.hpp"

namespace lore::circuit {

/// 2-D lookup table over (input slew ps, output load fF) with bilinear
/// interpolation and clamped extrapolation.
class TimingTable {
 public:
  TimingTable() = default;
  TimingTable(std::vector<double> slew_axis_ps, std::vector<double> load_axis_ff);

  std::size_t slew_points() const { return slew_axis_.size(); }
  std::size_t load_points() const { return load_axis_.size(); }
  std::span<const double> slew_axis() const { return slew_axis_; }
  std::span<const double> load_axis() const { return load_axis_; }

  double& at(std::size_t slew_idx, std::size_t load_idx);
  double at(std::size_t slew_idx, std::size_t load_idx) const;

  /// Bilinear interpolation; out-of-range coordinates clamp to the grid.
  double lookup(double slew_ps, double load_ff) const;

  /// Flat view of all values (row-major by slew), for ML training targets.
  std::span<const double> values() const { return values_; }
  std::span<double> values() { return values_; }
  double max_value() const;

 private:
  std::vector<double> slew_axis_;
  std::vector<double> load_axis_;
  std::vector<double> values_;
};

/// Boolean function of a combinational cell (enough for STA + fault models).
enum class CellFunction { kInv, kBuf, kNand2, kNor2, kAnd2, kOr2, kXor2, kXnor2,
                          kAoi21, kOai21, kMux2, kDff };

/// Number of data inputs for a function.
std::size_t function_input_count(CellFunction fn);
/// Evaluate the function on input bits (DFF returns input 0 = D).
bool evaluate_function(CellFunction fn, std::span<const bool> inputs);
std::string function_name(CellFunction fn);

/// One timing arc: input pin -> output pin, rise/fall delay + output slew.
struct TimingArc {
  std::size_t input_pin = 0;
  TimingTable rise_delay;
  TimingTable fall_delay;
  TimingTable rise_slew;
  TimingTable fall_slew;
};

/// A characterized standard cell.
struct Cell {
  std::string name;
  CellFunction function = CellFunction::kInv;
  double drive_strength = 1.0;  // X1, X2, X4... scales transistor widths
  double area_um2 = 1.0;
  double input_cap_ff = 0.9;    // per input pin
  /// Electrical model used during characterization.
  device::GateStageParams stage;
  /// Number of stacked devices in the worst pull path (delay multiplier).
  std::size_t stack_depth = 1;
  std::vector<TimingArc> arcs;  // one per input pin
  /// Per-grid-point self-heating temperature rise (K), filled by the SHE
  /// characterization step of Fig. 3 (same axes as the delay tables).
  TimingTable she_temperature;

  std::size_t num_inputs() const { return function_input_count(function); }
  bool is_sequential() const { return function == CellFunction::kDff; }
};

/// A library: a set of characterized cells at one operating corner.
class CellLibrary {
 public:
  CellLibrary() = default;
  explicit CellLibrary(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  std::size_t size() const { return cells_.size(); }
  std::size_t add_cell(Cell cell);
  const Cell& cell(std::size_t id) const { return cells_[id]; }
  Cell& cell(std::size_t id) { return cells_[id]; }
  std::optional<std::size_t> find(const std::string& cell_name) const;

  /// Operating corner the library was characterized at.
  device::OperatingPoint corner() const { return corner_; }
  void set_corner(device::OperatingPoint op) { corner_ = op; }

 private:
  std::string name_;
  std::vector<Cell> cells_;
  device::OperatingPoint corner_{};
};

/// Default characterization axes (7 slews × 7 loads like commercial NLDM).
std::vector<double> default_slew_axis_ps();
std::vector<double> default_load_axis_ff();

/// Build the skeleton (uncharacterized) cells of LORE's technology library:
/// every function above at drive strengths X1/X2/X4.
CellLibrary make_skeleton_library(const std::string& name);

}  // namespace lore::circuit
