#include "src/circuit/aging_flow.hpp"

#include <algorithm>
#include <cassert>

namespace lore::circuit {

std::vector<double> instance_aging_dvth(const Netlist& nl,
                                        const std::vector<double>& she_rise_k,
                                        const device::AgingModel& model,
                                        const AgingFlowConfig& cfg) {
  assert(she_rise_k.size() == nl.num_instances());
  std::vector<double> dvth(nl.num_instances(), 0.0);
  for (std::size_t i = 0; i < nl.num_instances(); ++i) {
    const auto& inst = nl.instance(i);
    device::StressCondition stress;
    stress.vdd = nl.library().corner().vdd;
    stress.temperature = cfg.chip_temperature + she_rise_k[i];
    // Duty factor: fraction of cycles the cell holds a stressing input.
    stress.duty_cycle = std::clamp(0.3 + 0.5 * inst.toggle_rate_ghz / cfg.clock_ghz, 0.0, 1.0);
    stress.toggle_rate_ghz = inst.toggle_rate_ghz;
    stress.years = cfg.years;
    dvth[i] = model.delta_vth(stress);
  }
  return dvth;
}

InstanceTableDelayModel build_aged_instance_library(const Netlist& nl,
                                                    const std::vector<double>& she_rise_k,
                                                    const std::vector<double>& dvth,
                                                    const Characterizer& characterizer,
                                                    const AgingFlowConfig& cfg) {
  assert(she_rise_k.size() == nl.num_instances() && dvth.size() == nl.num_instances());
  std::vector<InstanceTableDelayModel::InstanceTables> tables(nl.num_instances());
  for (std::size_t i = 0; i < nl.num_instances(); ++i) {
    Cell scratch = nl.library().cell(nl.instance(i).cell_id);
    device::OperatingPoint op = nl.library().corner();
    op.temperature = cfg.chip_temperature + she_rise_k[i];
    op.delta_vth = dvth[i];
    characterizer.characterize_cell(scratch, op);
    tables[i].arcs = std::move(scratch.arcs);
  }
  return InstanceTableDelayModel(std::move(tables));
}

InstanceTableDelayModel build_aged_instance_library_ml(
    const MlLibraryCharacterizer& ml, const Netlist& nl,
    const std::vector<double>& she_rise_k, const std::vector<double>& dvth,
    const AgingFlowConfig& cfg, const CharacterizerConfig& grid) {
  assert(ml.trained());
  assert(she_rise_k.size() == nl.num_instances() && dvth.size() == nl.num_instances());
  std::vector<InstanceTableDelayModel::InstanceTables> tables(nl.num_instances());
  for (std::size_t i = 0; i < nl.num_instances(); ++i) {
    const auto& cell = nl.library().cell(nl.instance(i).cell_id);
    const double temp = cfg.chip_temperature + she_rise_k[i];
    tables[i].arcs.reserve(cell.num_inputs());
    for (std::size_t pin = 0; pin < cell.num_inputs(); ++pin) {
      TimingArc arc;
      arc.input_pin = pin;
      arc.rise_delay = TimingTable(grid.slew_axis_ps, grid.load_axis_ff);
      arc.fall_delay = TimingTable(grid.slew_axis_ps, grid.load_axis_ff);
      arc.rise_slew = TimingTable(grid.slew_axis_ps, grid.load_axis_ff);
      arc.fall_slew = TimingTable(grid.slew_axis_ps, grid.load_axis_ff);
      const double pin_factor = 1.0 + 0.06 * static_cast<double>(pin);
      for (std::size_t si = 0; si < grid.slew_axis_ps.size(); ++si) {
        for (std::size_t li = 0; li < grid.load_axis_ff.size(); ++li) {
          const auto p =
              ml.predict(cell, grid.slew_axis_ps[si], grid.load_axis_ff[li], temp, dvth[i]);
          arc.rise_delay.at(si, li) = p.rise_delay_ps * pin_factor;
          arc.fall_delay.at(si, li) = p.fall_delay_ps * pin_factor;
          arc.rise_slew.at(si, li) = p.rise_slew_ps;
          arc.fall_slew.at(si, li) = p.fall_slew_ps;
        }
      }
      tables[i].arcs.push_back(std::move(arc));
    }
  }
  return InstanceTableDelayModel(std::move(tables));
}

AgingGuardbandReport run_aging_flow(const Netlist& nl, CellLibrary& lib,
                                    const Characterizer& characterizer,
                                    const MlLibraryCharacterizer& ml,
                                    const device::AgingModel& model,
                                    const AgingFlowConfig& cfg, const StaEngine& sta) {
  assert(ml.trained());
  AgingGuardbandReport report;

  // Fresh timing + per-instance SHE context.
  const auto sta_fresh = sta.run(nl, LibraryDelayModel());
  report.fresh_arrival_ps = sta_fresh.worst_arrival_ps;
  const auto she =
      instance_she_rise(nl, sta_fresh, characterizer.config().she_reference_toggle_ghz);

  const auto dvth = instance_aging_dvth(nl, she, model, cfg);
  for (double v : dvth) {
    report.max_dvth = std::max(report.max_dvth, v);
    report.mean_dvth += v;
  }
  report.mean_dvth /= static_cast<double>(dvth.size());

  const auto exact = build_aged_instance_library(nl, she, dvth, characterizer, cfg);
  report.aged_exact_arrival_ps = sta.run(nl, exact).worst_arrival_ps;

  const auto fast =
      build_aged_instance_library_ml(ml, nl, she, dvth, cfg, characterizer.config());
  report.aged_ml_arrival_ps = sta.run(nl, fast).worst_arrival_ps;

  // ML fresh baseline: same flow with zero threshold shift.
  const std::vector<double> zero_dvth(nl.num_instances(), 0.0);
  const auto fresh_ml =
      build_aged_instance_library_ml(ml, nl, she, zero_dvth, cfg, characterizer.config());
  report.fresh_ml_arrival_ps = sta.run(nl, fresh_ml).worst_arrival_ps;

  // Conventional static aging corner: the worst observed dvth everywhere at
  // the worst observed temperature.
  {
    double max_temp = 0.0;
    for (double t : she) max_temp = std::max(max_temp, t);
    device::OperatingPoint worst = lib.corner();
    worst.temperature = cfg.chip_temperature + max_temp;
    worst.delta_vth = report.max_dvth;
    CellLibrary worst_lib = lib;
    characterizer.characterize_library(worst_lib, worst);
    std::swap(lib, worst_lib);
    report.worst_corner_arrival_ps = sta.run(nl, LibraryDelayModel()).worst_arrival_ps;
    std::swap(lib, worst_lib);
  }
  return report;
}

}  // namespace lore::circuit
