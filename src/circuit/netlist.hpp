// Gate-level netlist (DAG of standard-cell instances) plus synthetic circuit
// generators. The "core-like" generator stands in for the post-layout RISC-V
// core of Fig. 2 (DESIGN.md substitution #2 for the circuit level): pipelined
// ranks of flip-flops with combinational clouds between them and a long-tailed
// per-instance switching-activity profile.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/circuit/liberty.hpp"
#include "src/common/rng.hpp"

namespace lore::circuit {

struct Instance {
  std::string name;
  std::size_t cell_id = 0;
  std::vector<std::size_t> input_nets;
  std::size_t output_net = 0;
  /// Switching activity of this instance in its circuit context.
  double toggle_rate_ghz = 0.5;
};

struct Net {
  int driver_instance = -1;  // -1: primary input
  std::vector<std::pair<std::size_t, std::size_t>> sinks;  // (instance, pin)
  bool is_primary_output = false;
};

class Netlist {
 public:
  explicit Netlist(const CellLibrary* library) : lib_(library) {}

  const CellLibrary& library() const { return *lib_; }

  std::size_t add_primary_input();
  /// Create an instance of `cell_id` driven by `input_nets`; returns the
  /// instance id. A fresh output net is created automatically.
  std::size_t add_instance(std::size_t cell_id, std::vector<std::size_t> input_nets,
                           std::string name = {});
  void mark_primary_output(std::size_t net);
  void set_toggle_rate(std::size_t instance, double rate_ghz);

  std::size_t num_instances() const { return instances_.size(); }
  std::size_t num_nets() const { return nets_.size(); }
  const Instance& instance(std::size_t id) const { return instances_[id]; }
  const Net& net(std::size_t id) const { return nets_[id]; }
  const std::vector<std::size_t>& primary_inputs() const { return primary_inputs_; }
  std::vector<std::size_t> primary_outputs() const;

  /// Capacitive load on a net: sink pin caps + wire estimate by fanout.
  double net_load_ff(std::size_t net) const;

  /// Instances in topological order (inputs before consumers). Sequential
  /// cells (DFF) break combinational cycles: their outputs count as sources.
  std::vector<std::size_t> topological_order() const;

  /// Number of distinct cell types used (the paper notes only 59 in Fig. 2).
  std::size_t distinct_cell_types() const;

  /// Wire capacitance model parameters.
  static constexpr double kWireCapBaseFf = 0.25;
  static constexpr double kWireCapPerSinkFf = 0.35;

 private:
  const CellLibrary* lib_;
  std::vector<Instance> instances_;
  std::vector<Net> nets_;
  std::vector<std::size_t> primary_inputs_;
};

/// Random layered combinational logic.
struct RandomLogicConfig {
  std::size_t num_inputs = 16;
  std::size_t num_gates = 200;
  std::size_t max_fanin_window = 30;  // candidate drivers looked back
  std::uint64_t seed = 47;
};
Netlist generate_random_logic(const CellLibrary& lib, const RandomLogicConfig& cfg);

/// Pipelined core-like block: DFF ranks with combinational clouds, activity
/// drawn from a lognormal (few hot cells, many cold ones).
struct CoreLikeConfig {
  std::size_t pipeline_stages = 5;
  std::size_t regs_per_stage = 32;
  std::size_t gates_per_stage = 300;
  double clock_ghz = 1.0;
  /// Lognormal activity: sigma of log toggle rate.
  double activity_sigma = 1.0;
  std::uint64_t seed = 53;
};
Netlist generate_core_like(const CellLibrary& lib, const CoreLikeConfig& cfg);

}  // namespace lore::circuit
