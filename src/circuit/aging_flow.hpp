// Workload-dependent circuit aging estimation ([11],[12] and the HDC aging
// work [18], Sec. II): each instance ages according to its own stress — duty
// cycle, switching activity, and local temperature (chip + its own SHE) — so
// per-instance delta-Vth varies widely across a circuit. The flow mirrors
// the SHE flow: exact per-instance characterization at the aged threshold, or
// the ML library characterizer (whose feature vector already includes
// delta-Vth) regenerating aged tables by inference.
#pragma once

#include "src/circuit/she_flow.hpp"
#include "src/device/aging.hpp"

namespace lore::circuit {

struct AgingFlowConfig {
  /// Mission lifetime to evaluate (years).
  double years = 7.0;
  /// Chip temperature on top of which per-instance SHE adds (K).
  double chip_temperature = 330.0;
  /// Clock the activity duty factor is measured against (GHz).
  double clock_ghz = 1.0;
};

/// Per-instance threshold shift after the mission lifetime: stress comes
/// from the instance's own activity and its SHE-elevated temperature.
std::vector<double> instance_aging_dvth(const Netlist& nl,
                                        const std::vector<double>& she_rise_k,
                                        const device::AgingModel& model,
                                        const AgingFlowConfig& cfg);

/// Exact aged per-instance library: transient characterization at each
/// instance's (temperature, delta-Vth).
InstanceTableDelayModel build_aged_instance_library(const Netlist& nl,
                                                    const std::vector<double>& she_rise_k,
                                                    const std::vector<double>& dvth,
                                                    const Characterizer& characterizer,
                                                    const AgingFlowConfig& cfg);

/// ML-generated aged library (zero transient sims after training).
InstanceTableDelayModel build_aged_instance_library_ml(
    const MlLibraryCharacterizer& ml, const Netlist& nl,
    const std::vector<double>& she_rise_k, const std::vector<double>& dvth,
    const AgingFlowConfig& cfg, const CharacterizerConfig& grid);

struct AgingGuardbandReport {
  double fresh_arrival_ps = 0.0;
  double aged_exact_arrival_ps = 0.0;
  double aged_ml_arrival_ps = 0.0;
  /// ML library evaluated at dvth = 0 (same SHE temperatures): the ML-side
  /// fresh baseline. Systematic ML bias cancels in aged_ml / fresh_ml, which
  /// is how an ML signoff flow derives *relative* guardbands.
  double fresh_ml_arrival_ps = 0.0;
  /// Conventional static aging corner: every cell at the worst dvth.
  double worst_corner_arrival_ps = 0.0;
  double max_dvth = 0.0;
  double mean_dvth = 0.0;

  double exact_aging_guardband() const { return aged_exact_arrival_ps / fresh_arrival_ps; }
  double ml_aging_guardband() const { return aged_ml_arrival_ps / fresh_ml_arrival_ps; }
  double worst_corner_guardband() const { return worst_corner_arrival_ps / fresh_arrival_ps; }
};

/// Full comparison at one lifetime point. The library must be characterized
/// at the typical (fresh) corner; `ml` must be trained.
AgingGuardbandReport run_aging_flow(const Netlist& nl, CellLibrary& lib,
                                    const Characterizer& characterizer,
                                    const MlLibraryCharacterizer& ml,
                                    const device::AgingModel& model,
                                    const AgingFlowConfig& cfg, const StaEngine& sta);

}  // namespace lore::circuit
