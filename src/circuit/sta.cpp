#include "src/circuit/sta.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "src/obs/obs.hpp"

namespace lore::circuit {

device::StageTiming LibraryDelayModel::arc_timing(const Netlist& nl, std::size_t instance,
                                                  std::size_t pin, double in_slew_ps,
                                                  double load_ff) const {
  const auto& cell = nl.library().cell(nl.instance(instance).cell_id);
  assert(pin < cell.arcs.size() && "cell not characterized");
  const auto& arc = cell.arcs[pin];
  device::StageTiming t;
  const double rise = arc.rise_delay.lookup(in_slew_ps, load_ff);
  const double fall = arc.fall_delay.lookup(in_slew_ps, load_ff);
  if (rise >= fall) {
    t.delay_ps = rise * scale_;
    t.out_slew_ps = arc.rise_slew.lookup(in_slew_ps, load_ff);
  } else {
    t.delay_ps = fall * scale_;
    t.out_slew_ps = arc.fall_slew.lookup(in_slew_ps, load_ff);
  }
  return t;
}

device::StageTiming InstanceTableDelayModel::arc_timing(const Netlist& nl,
                                                        std::size_t instance,
                                                        std::size_t pin, double in_slew_ps,
                                                        double load_ff) const {
  (void)nl;
  assert(instance < tables_.size());
  assert(pin < tables_[instance].arcs.size());
  const auto& arc = tables_[instance].arcs[pin];
  device::StageTiming t;
  const double rise = arc.rise_delay.lookup(in_slew_ps, load_ff);
  const double fall = arc.fall_delay.lookup(in_slew_ps, load_ff);
  if (rise >= fall) {
    t.delay_ps = rise;
    t.out_slew_ps = arc.rise_slew.lookup(in_slew_ps, load_ff);
  } else {
    t.delay_ps = fall;
    t.out_slew_ps = arc.fall_slew.lookup(in_slew_ps, load_ff);
  }
  return t;
}

StaResult StaEngine::run(const Netlist& nl, const DelayModel& delays) const {
  LORE_OBS_SPAN(span, "circuit.sta.run");
  LORE_OBS_TIMER(timer, "sta.run_us");
  // Arc evaluations are tallied locally and added once at the end, so the
  // exported counter is a deterministic function of the netlist.
  std::size_t arc_evaluations = 0;
  StaResult r;
  r.net_timing.assign(nl.num_nets(), NetTiming{});
  r.instance_delay_ps.assign(nl.num_instances(), 0.0);
  r.instance_in_slew_ps.assign(nl.num_instances(), cfg_.primary_input_slew_ps);
  r.instance_load_ff.assign(nl.num_instances(), 0.0);
  std::vector<int> worst_fanin(nl.num_instances(), -1);  // driving instance on worst path

  for (auto pi : nl.primary_inputs()) {
    r.net_timing[pi].arrival_ps = 0.0;
    r.net_timing[pi].slew_ps = cfg_.primary_input_slew_ps;
  }

  const auto order = nl.topological_order();
  for (auto inst_id : order) {
    const auto& inst = nl.instance(inst_id);
    const auto& cell = nl.library().cell(inst.cell_id);
    double load = nl.net_load_ff(inst.output_net);
    if (nl.net(inst.output_net).sinks.empty()) load += cfg_.primary_output_load_ff;
    r.instance_load_ff[inst_id] = load;

    double out_arrival = 0.0, out_slew = cfg_.primary_input_slew_ps;
    double worst_delay = 0.0, worst_in_slew = cfg_.primary_input_slew_ps;
    int worst_src = -1;

    if (cell.is_sequential()) {
      // Launch from the clock edge: CLK->Q delay at the D-pin slew.
      const double in_slew = cfg_.primary_input_slew_ps;
      ++arc_evaluations;
      const auto t = delays.arc_timing(nl, inst_id, 0, in_slew, load);
      out_arrival = t.delay_ps;
      out_slew = t.out_slew_ps;
      worst_delay = t.delay_ps;
      worst_in_slew = in_slew;
    } else {
      for (std::size_t pin = 0; pin < inst.input_nets.size(); ++pin) {
        const auto& in_net = r.net_timing[inst.input_nets[pin]];
        ++arc_evaluations;
        const auto t = delays.arc_timing(nl, inst_id, pin, in_net.slew_ps, load);
        const double arrival = in_net.arrival_ps + t.delay_ps;
        if (arrival >= out_arrival) {
          out_arrival = arrival;
          out_slew = t.out_slew_ps;
          worst_delay = t.delay_ps;
          worst_in_slew = in_net.slew_ps;
          worst_src = nl.net(inst.input_nets[pin]).driver_instance;
        }
      }
    }
    r.net_timing[inst.output_net] = {out_arrival, out_slew};
    r.instance_delay_ps[inst_id] = worst_delay;
    r.instance_in_slew_ps[inst_id] = worst_in_slew;
    worst_fanin[inst_id] = worst_src;
  }

  // Timing endpoints: primary outputs and DFF D-pins.
  int endpoint_inst = -1;
  double endpoint_arrival = 0.0;
  auto consider = [&](std::size_t net) {
    const double a = r.net_timing[net].arrival_ps;
    if (a >= endpoint_arrival) {
      endpoint_arrival = a;
      endpoint_inst = nl.net(net).driver_instance;
    }
  };
  for (auto po : nl.primary_outputs()) consider(po);
  for (std::size_t i = 0; i < nl.num_instances(); ++i) {
    const auto& inst = nl.instance(i);
    if (nl.library().cell(inst.cell_id).is_sequential())
      for (auto net : inst.input_nets) consider(net);
  }
  r.worst_arrival_ps = endpoint_arrival;

  // Trace the critical path back through worst fan-ins.
  for (int cur = endpoint_inst; cur >= 0; cur = worst_fanin[static_cast<std::size_t>(cur)]) {
    r.critical_path.push_back(static_cast<std::size_t>(cur));
    if (nl.library().cell(nl.instance(static_cast<std::size_t>(cur)).cell_id).is_sequential())
      break;  // launched from a register: path starts here
  }
  std::reverse(r.critical_path.begin(), r.critical_path.end());
  LORE_OBS_COUNT("sta.runs", 1);
  LORE_OBS_COUNT("sta.arc_evaluations", arc_evaluations);
  return r;
}

std::string write_sdf(const Netlist& nl, const std::vector<double>& values,
                      const std::string& value_label) {
  assert(values.size() == nl.num_instances());
  std::ostringstream os;
  os << "(DELAYFILE\n  (SDFVERSION \"3.0\")\n  (DESIGN \"lore\")\n"
     << "  (VALUETYPE \"" << value_label << "\")\n";
  os.precision(6);
  for (std::size_t i = 0; i < nl.num_instances(); ++i) {
    const auto& inst = nl.instance(i);
    os << "  (CELL (CELLTYPE \"" << nl.library().cell(inst.cell_id).name << "\")"
       << " (INSTANCE " << inst.name << ")"
       << " (DELAY (ABSOLUTE (IOPATH * * (" << values[i] << ")))))\n";
  }
  os << ")\n";
  return os.str();
}

}  // namespace lore::circuit
