#include "src/circuit/liberty_io.hpp"

#include <cassert>
#include <sstream>

namespace lore::circuit {
namespace {

void emit_axis(std::ostringstream& os, const char* name, std::span<const double> axis) {
  os << "        " << name << "(\"";
  for (std::size_t i = 0; i < axis.size(); ++i)
    os << axis[i] << (i + 1 < axis.size() ? ", " : "");
  os << "\");\n";
}

void emit_table(std::ostringstream& os, const char* group, const TimingTable& table) {
  os << "      " << group << "(lore_template) {\n";
  emit_axis(os, "index_1", table.slew_axis());
  emit_axis(os, "index_2", table.load_axis());
  os << "        values(";
  for (std::size_t s = 0; s < table.slew_points(); ++s) {
    os << "\"";
    for (std::size_t l = 0; l < table.load_points(); ++l)
      os << table.at(s, l) << (l + 1 < table.load_points() ? ", " : "");
    os << "\"" << (s + 1 < table.slew_points() ? ", \\\n               " : "");
  }
  os << ");\n      }\n";
}

}  // namespace

std::string write_liberty(const CellLibrary& lib) {
  std::ostringstream os;
  os << "library (" << (lib.name().empty() ? "lore" : lib.name()) << ") {\n";
  os << "  time_unit : \"1ps\";\n  capacitive_load_unit (1, ff);\n";
  os << "  nom_voltage : " << lib.corner().vdd << ";\n";
  os << "  nom_temperature : " << lib.corner().temperature - 273.15 << ";\n";

  for (std::size_t c = 0; c < lib.size(); ++c) {
    const Cell& cell = lib.cell(c);
    os << "  cell (" << cell.name << ") {\n";
    os << "    area : " << cell.area_um2 << ";\n";
    static const char* kPins[] = {"A", "B", "C"};
    for (std::size_t pin = 0; pin < cell.num_inputs(); ++pin) {
      os << "    pin (" << (cell.is_sequential() ? "D" : kPins[pin]) << ") {\n";
      os << "      direction : input;\n";
      os << "      capacitance : " << cell.input_cap_ff << ";\n";
      os << "    }\n";
    }
    os << "    pin (" << (cell.is_sequential() ? "Q" : "Y") << ") {\n";
    os << "      direction : output;\n";
    for (const auto& arc : cell.arcs) {
      os << "      timing () {\n";
      os << "        related_pin : \""
         << (cell.is_sequential() ? "D" : kPins[arc.input_pin]) << "\";\n";
      std::ostringstream tables;
      emit_table(tables, "cell_rise", arc.rise_delay);
      emit_table(tables, "cell_fall", arc.fall_delay);
      emit_table(tables, "rise_transition", arc.rise_slew);
      emit_table(tables, "fall_transition", arc.fall_slew);
      os << tables.str();
      os << "      }\n";
    }
    os << "    }\n  }\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace lore::circuit
