// The Fig. 3 flow of the paper, end to end:
//
//  upper path: SHE characterization -> SHE values ride the SDF format ->
//              per-instance SHE temperatures in the circuit (Fig. 2 data);
//  lower path: a circuit-specific library with one entry per *instance*,
//              characterized at that instance's own SHE temperature. Exact
//              (transient-sim) generation is infeasible at scale, so an ML
//              model trained once on sampled characterizations regenerates
//              thousands of instance tables in seconds ([9]).
//
// The result: SHE-aware STA with guardbands strictly tighter than the
// worst-case corner while still covering the real per-instance temperatures.
#pragma once

#include <cstdint>

#include "src/circuit/characterize.hpp"
#include "src/circuit/sta.hpp"
#include "src/ml/mlp.hpp"

namespace lore::circuit {

struct SheFlowConfig {
  /// Chip (ambient-die) temperature on top of which SHE rises (K).
  double chip_temperature = 330.0;
  /// Worst-case corner temperature used by the conventional flow (K).
  double worst_case_temperature = 420.0;
  /// Aging threshold shift applied at the worst-case corner (V).
  double worst_case_delta_vth = 0.05;
};

/// Step 1 (upper Fig. 3 path): per-instance SHE temperature rise above chip
/// temperature, from the cell's SHE table at the instance's STA-derived slew
/// and load, scaled by the instance's switching activity.
std::vector<double> instance_she_rise(const Netlist& nl, const StaResult& sta,
                                      double she_reference_toggle_ghz);

/// Step 2a (lower path, exact): instance-specific tables characterized by
/// transient simulation at each instance's own temperature. Exhaustive and
/// slow — the scaling problem the paper calls "practically infeasible".
InstanceTableDelayModel build_exact_instance_library(const Netlist& nl,
                                                     const std::vector<double>& she_rise_k,
                                                     const Characterizer& characterizer,
                                                     const SheFlowConfig& cfg);

struct MlCharacterizerConfig {
  /// Temperatures sampled during training span chip temp .. chip+span (K).
  double temperature_span = 120.0;
  /// Grid conditions sampled per cell per temperature sample.
  std::size_t samples_per_cell = 60;
  std::size_t temperature_samples = 6;
  ml::MlpConfig mlp{.hidden = {48, 48}, .learning_rate = 3e-3, .epochs = 120,
                    .batch_size = 32};
  std::uint64_t seed = 59;
};

/// Step 2b (lower path, ML): learn (cell electrical features, slew, load,
/// temperature) -> (rise/fall delay, rise/fall slew) from a sampled set of
/// transient characterizations; then emit instance tables by inference.
class MlLibraryCharacterizer {
 public:
  explicit MlLibraryCharacterizer(MlCharacterizerConfig cfg = {}) : cfg_(cfg) {}

  /// Train on the library using the transient characterizer as ground truth.
  void train(const CellLibrary& lib, const Characterizer& characterizer,
             const device::OperatingPoint& base_op);

  bool trained() const { return trained_; }
  /// Transient simulations consumed during training (cost accounting).
  std::size_t training_evaluations() const { return training_evaluations_; }

  /// Predict the four timing numbers for one condition.
  struct Prediction {
    double rise_delay_ps, fall_delay_ps, rise_slew_ps, fall_slew_ps;
  };
  Prediction predict(const Cell& cell, double slew_ps, double load_ff,
                     double temperature_k, double delta_vth) const;

  /// Generate the full per-instance library by inference (fast path).
  InstanceTableDelayModel build_instance_library(const Netlist& nl,
                                                 const std::vector<double>& she_rise_k,
                                                 const SheFlowConfig& cfg,
                                                 const CharacterizerConfig& grid) const;

  /// Held-out relative error of the model on fresh conditions.
  double validation_mape(const CellLibrary& lib, const Characterizer& characterizer,
                         const device::OperatingPoint& base_op, std::size_t samples,
                         std::uint64_t seed) const;

 private:
  static std::vector<double> cell_features(const Cell& cell, double slew_ps, double load_ff,
                                           double temperature_k, double delta_vth);

  MlCharacterizerConfig cfg_;
  ml::MlpVectorRegressor model_{};
  ml::StandardScaler scaler_;
  bool trained_ = false;
  std::size_t training_evaluations_ = 0;
};

/// Full-flow guardband comparison (E2): worst arrival times under the
/// typical corner, the conventional worst-case corner, and the two SHE-aware
/// instance libraries.
struct GuardbandReport {
  double typical_arrival_ps = 0.0;
  double worst_case_arrival_ps = 0.0;
  double she_exact_arrival_ps = 0.0;
  double she_ml_arrival_ps = 0.0;
  std::size_t exact_evaluations = 0;  // transient sims for the exact library
  std::size_t ml_training_evaluations = 0;

  double worst_case_guardband() const { return worst_case_arrival_ps / typical_arrival_ps; }
  double she_guardband() const { return she_ml_arrival_ps / typical_arrival_ps; }
};

GuardbandReport run_guardband_flow(const Netlist& nl, CellLibrary& lib,
                                   const Characterizer& characterizer,
                                   MlLibraryCharacterizer& ml_char, const SheFlowConfig& cfg,
                                   const StaEngine& sta);

}  // namespace lore::circuit
