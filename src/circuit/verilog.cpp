#include "src/circuit/verilog.hpp"

#include <cassert>
#include <sstream>

namespace lore::circuit {
namespace {

const char* input_pin_name(std::size_t pin) {
  static const char* kNames[] = {"a", "b", "c", "d"};
  assert(pin < 4);
  return kNames[pin];
}

}  // namespace

std::string write_verilog(const Netlist& nl, const std::string& module_name) {
  std::ostringstream os;
  const auto pos = nl.primary_outputs();

  os << "module " << module_name << " (";
  for (std::size_t i = 0; i < nl.primary_inputs().size(); ++i) os << "pi" << i << ", ";
  for (std::size_t i = 0; i < pos.size(); ++i)
    os << "po" << i << (i + 1 < pos.size() ? ", " : "");
  os << ");\n";

  for (std::size_t i = 0; i < nl.primary_inputs().size(); ++i)
    os << "  input pi" << i << ";\n";
  for (std::size_t i = 0; i < pos.size(); ++i) os << "  output po" << i << ";\n";

  // Internal nets (everything that is not a PI; POs get assigns below).
  for (std::size_t n = 0; n < nl.num_nets(); ++n)
    if (nl.net(n).driver_instance >= 0) os << "  wire n" << n << ";\n";

  auto net_name = [&](std::size_t net) {
    if (nl.net(net).driver_instance < 0) {
      for (std::size_t i = 0; i < nl.primary_inputs().size(); ++i)
        if (nl.primary_inputs()[i] == net) return "pi" + std::to_string(i);
    }
    return "n" + std::to_string(net);
  };

  for (std::size_t i = 0; i < nl.num_instances(); ++i) {
    const auto& inst = nl.instance(i);
    const auto& cell = nl.library().cell(inst.cell_id);
    os << "  " << cell.name << " " << inst.name << " (";
    for (std::size_t pin = 0; pin < inst.input_nets.size(); ++pin)
      os << "." << (cell.is_sequential() ? "d" : input_pin_name(pin)) << "("
         << net_name(inst.input_nets[pin]) << "), ";
    os << "." << (cell.is_sequential() ? "q" : "y") << "(" << net_name(inst.output_net)
       << "));\n";
  }

  for (std::size_t i = 0; i < pos.size(); ++i)
    os << "  assign po" << i << " = " << net_name(pos[i]) << ";\n";
  os << "endmodule\n";
  return os.str();
}

}  // namespace lore::circuit
